package subwarpsim

import (
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
)

// Program is an executable instruction sequence in the simulator's
// SASS-like ISA.
type Program = isa.Program

// Assemble parses textual assembly into a program. The syntax matches
// Program.Disassemble plus labels and a ".regs N" directive; see the
// internal/isa documentation and examples/customkernel:
//
//	prog, err := subwarpsim.Assemble("saxpy", `
//	    .regs 16
//	    S2R R0, SR3          // global thread id
//	    SHL R1, R0, 2
//	    LDG R2, [R1+4096] &wr=sb0
//	    IMUL R3, R2, 3 &req=sb0
//	    STG [R1+8192], R3
//	    EXIT
//	`)
func Assemble(name, src string) (*Program, error) { return isa.Assemble(name, src) }

// Memory is the functional backing store kernels execute against.
type Memory = mem.Memory

// NewMemory returns an empty memory; unwritten words read as a
// deterministic hash of their address.
func NewMemory() *Memory { return mem.NewMemory() }
