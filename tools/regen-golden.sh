#!/bin/sh
# Regenerates the golden-metrics corpus under results/golden/ from the
# current simulator output, then re-runs the golden tests to confirm the
# refreshed corpus round-trips. Run from the repository root after any
# deliberate change to simulated behaviour, and commit the JSON diff
# alongside the change that caused it.
set -eu
cd "$(dirname "$0")/.."

go test ./internal/experiments -run 'TestGolden' -count=1 -v -args -update-golden
go test ./internal/experiments -run 'TestGolden' -count=1

echo "golden corpus refreshed:"
ls -l results/golden/
