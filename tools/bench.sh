#!/bin/sh
# bench.sh — reproducible performance run feeding BENCH_sim.json.
#
#   tools/bench.sh [label]          # default label: after
#
# Runs the fixed hot-loop benchmark set (whole-device throughput plus
# the internal/sm microbenchmarks) with -benchmem and merges the parsed
# results into BENCH_sim.json under the given label via
# tools/benchjson. The simulator itself is seedless-deterministic:
# every block derives its election RNG from sm*1000+block+1, so the
# stamp records that scheme rather than a user-settable seed.
set -eu

cd "$(dirname "$0")/.."

label="${1:-after}"
benchtime="${BENCHTIME:-1s}"
count="${BENCHCOUNT:-1}"

# The tracked set: whole-device throughput (the 1.4x acceptance
# number), the simulated-cycle rate, the three synthetic workload
# families (regular GEMM, irregular BFS, mixed-latency texture), and
# the zero-alloc hot-loop microbenchmarks. Figure-regeneration
# benchmarks stay out — they are experiment drivers, not perf
# regressions trackers.
pat='BenchmarkGPURunSequential|BenchmarkGPURunCompiled|BenchmarkGPURunInterpreted|BenchmarkGPURunGEMM|BenchmarkGPURunBFS|BenchmarkGPURunTexture|BenchmarkSimulationRate'
smpat='BenchmarkBlockStep|BenchmarkExecuteLoad'
# The cluster sweep pair is the PR 10 acceptance number: the same
# 24-key matrix sweep through a coordinator with 1 worker vs 3, where
# 3 workers' aggregate cache capacity must deliver >= 2x
# sim-cycles/wall-s. RepeatedKey tracks the hot repeated-key latency
# through the coordinator (routing + peer hop + memory-cache hit).
clpat='BenchmarkClusterSweep1Worker|BenchmarkClusterSweep3Workers|BenchmarkClusterRepeatedKey'

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "== bench: root suite ($pat) ==" >&2
go test -run '^$' -bench "$pat" -benchmem -benchtime "$benchtime" -count "$count" . | tee -a "$tmp"
echo "== bench: internal/sm ($smpat) ==" >&2
go test -run '^$' -bench "$smpat" -benchmem -benchtime "$benchtime" -count "$count" ./internal/sm | tee -a "$tmp"
echo "== bench: internal/cluster ($clpat) ==" >&2
go test -run '^$' -bench "$clpat" -benchmem -benchtime "$benchtime" -count "$count" ./internal/cluster | tee -a "$tmp"

go run ./tools/benchjson -label "$label" -out BENCH_sim.json \
    -seed "deterministic: block rng = sm*1000+block+1" < "$tmp"
