// Command calib reports each application profile's baseline
// characterisation (Fig. 3) and its Both,N>=0.5 speedup (Fig. 12a)
// against the paper's reference values.
package main

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// paper reference: Fig 3 (total%, div%) and Fig 12a Both,N>=0.5 (%).
var ref = map[string][3]float64{
	"AV1": {42, 12, 4}, "AV2": {28, 10, 3}, "BFV1": {50, 40, 15},
	"BFV2": {52, 45, 20}, "Coll1": {70, 12, 1}, "Coll2": {72, 18, 2},
	"Ctrl": {38, 16, 5}, "DDGI": {45, 22, 6}, "MC": {30, 12, 3}, "MW": {42, 24, 8},
}

func main() {
	fmt.Println("app      stall%(ref)  div%(ref)   Both05%(ref)  miss%")
	var sps []float64
	for _, app := range workload.Apps() {
		kb, err := workload.Megakernel(app)
		must(err)
		base, err := gpu.Run(config.Default(), kb)
		must(err)
		k2, err := workload.Megakernel(app)
		must(err)
		s2, err := gpu.Run(config.Default().WithSI(true, config.TriggerHalfStalled), k2)
		must(err)
		sp := stats.Speedup(base.Counters, s2.Counters)
		d := base.Derived()
		r := ref[app.Name]
		fmt.Printf("%-8s %5.1f (%3.0f)  %5.1f (%3.0f)  %6.1f (%4.0f)  %5.1f\n",
			app.Name, d.ExposedStallFrac*100, r[0], d.DivergentStallFrac*100, r[1],
			sp*100, r[2], d.L1DMissRate*100)
		sps = append(sps, sp)
	}
	fmt.Printf("mean Both,N>=0.5: %.1f%% (paper: 6.3%%)\n", stats.MeanSpeedup(sps)*100)
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
