// Command benchjson converts `go test -bench` text output into the
// machine-readable BENCH_sim.json the repo tracks performance with.
//
//	go test -run '^$' -bench . -benchmem . | \
//	    go run ./tools/benchjson -label after -out BENCH_sim.json
//
// Each invocation parses one benchmark run from stdin and merges it
// into -out under its -label, so "before" and "after" runs accumulate
// in the same file and re-running a label replaces that entry only.
// Standard ns/op, B/op, and allocs/op values get dedicated fields;
// every custom -ReportMetric unit (e.g. sim-cycles/op) lands in the
// entry's metrics map, and when a benchmark reports sim-cycles/op the
// derived sim_cycles_per_wall_second is computed from it and ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result line.
type Entry struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Zero is meaningful for both (-benchmem proves alloc-free paths),
	// so neither is omitempty.
	BytesPerOp float64 `json:"bytes_per_op"`
	AllocsPer  float64 `json:"allocs_per_op"`
	// Metrics holds custom testing.B.ReportMetric units verbatim.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// SimCyclesPerWallSecond is derived from sim-cycles/op and ns/op
	// when the benchmark reports simulated cycles.
	SimCyclesPerWallSecond float64 `json:"sim_cycles_per_wall_second,omitempty"`
}

// Run is one labelled benchmark run (e.g. "before" or "after").
type Run struct {
	Label     string  `json:"label"`
	Timestamp string  `json:"timestamp"`
	Commit    string  `json:"commit,omitempty"`
	Seed      string  `json:"seed,omitempty"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	CPU       string  `json:"cpu,omitempty"`
	Entries   []Entry `json:"entries"`
}

// File is the whole BENCH_sim.json document.
type File struct {
	Schema string         `json:"schema"`
	Runs   map[string]Run `json:"runs"`
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parseBench reads `go test -bench` output: result lines look like
//
//	BenchmarkName-8   	  5	122900000 ns/op	 10400000 B/op	5552 allocs/op
//
// i.e. name, iteration count, then value/unit pairs. The cpu: header
// line is captured for the run's environment stamp.
func parseBench(in *bufio.Scanner) ([]Entry, string, error) {
	var entries []Entry
	cpu := ""
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{
			// Strip the -GOMAXPROCS suffix so labels compare across machines.
			Name:       trimProcs(fields[0]),
			Iterations: iters,
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				e.NsPerOp = val
			case "B/op":
				e.BytesPerOp = val
			case "allocs/op":
				e.AllocsPer = val
			default:
				if e.Metrics == nil {
					e.Metrics = map[string]float64{}
				}
				e.Metrics[unit] = val
			}
		}
		if cycles, ok := e.Metrics["sim-cycles/op"]; ok && e.NsPerOp > 0 {
			e.SimCyclesPerWallSecond = cycles / (e.NsPerOp / 1e9)
		}
		entries = append(entries, e)
	}
	return entries, cpu, in.Err()
}

// trimProcs removes go test's trailing -N GOMAXPROCS suffix.
func trimProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func main() {
	label := flag.String("label", "", "run label to file results under (e.g. before, after)")
	out := flag.String("out", "BENCH_sim.json", "JSON file to merge the run into")
	seed := flag.String("seed", "", "determinism seed stamp recorded with the run")
	flag.Parse()
	if *label == "" {
		fail(fmt.Errorf("-label is required"))
	}

	entries, cpu, err := parseBench(bufio.NewScanner(os.Stdin))
	if err != nil {
		fail(err)
	}
	if len(entries) == 0 {
		fail(fmt.Errorf("no benchmark result lines on stdin"))
	}

	doc := File{Schema: "sisim-bench/v1", Runs: map[string]Run{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			fail(fmt.Errorf("existing %s is not valid bench JSON: %v", *out, err))
		}
		if doc.Runs == nil {
			doc.Runs = map[string]Run{}
		}
	} else if !os.IsNotExist(err) {
		fail(err)
	}

	doc.Runs[*label] = Run{
		Label:     *label,
		Timestamp: time.Now().UTC().Format(time.RFC3339),
		Commit:    gitCommit(),
		Seed:      *seed,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpu,
		Entries:   entries,
	}

	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("benchjson: wrote %d entries under %q to %s\n", len(entries), *label, *out)
}
