package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: subwarpsim
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkGPURunSequential-1   	       9	 122900000 ns/op	10400000 B/op	    5552 allocs/op
BenchmarkSimulationRate-1     	      57	  20000000 ns/op	     12161 sim-cycles/op	 3620 allocs/op
BenchmarkBlockStep-1          	 8000000	       147.2 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	subwarpsim	12.3s
`

func TestParseBench(t *testing.T) {
	entries, cpu, err := parseBench(bufio.NewScanner(strings.NewReader(sampleBench)))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) CPU @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(entries) != 3 {
		t.Fatalf("parsed %d entries, want 3", len(entries))
	}

	seq := entries[0]
	if seq.Name != "BenchmarkGPURunSequential" || seq.Iterations != 9 {
		t.Errorf("entry 0 = %+v", seq)
	}
	if seq.NsPerOp != 122900000 || seq.BytesPerOp != 10400000 || seq.AllocsPer != 5552 {
		t.Errorf("standard units misparsed: %+v", seq)
	}

	rate := entries[1]
	if got := rate.Metrics["sim-cycles/op"]; got != 12161 {
		t.Errorf("custom metric sim-cycles/op = %v, want 12161", got)
	}
	// 12161 cycles per 20ms op => ~608050 cycles per wall second.
	want := 12161 / (20000000.0 / 1e9)
	if rate.SimCyclesPerWallSecond != want {
		t.Errorf("derived rate = %v, want %v", rate.SimCyclesPerWallSecond, want)
	}

	if step := entries[2]; step.NsPerOp != 147.2 || step.AllocsPer != 0 {
		t.Errorf("fractional ns/op misparsed: %+v", step)
	}
	if step := entries[2]; step.SimCyclesPerWallSecond != 0 {
		t.Errorf("no sim-cycles/op metric must mean no derived rate: %+v", step)
	}
}

func TestTrimProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkBlockStep-1":   "BenchmarkBlockStep",
		"BenchmarkBlockStep-128": "BenchmarkBlockStep",
		"BenchmarkFig3":          "BenchmarkFig3",
		"BenchmarkSI-on-4":       "BenchmarkSI-on",
	} {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
