#!/bin/sh
# check.sh — the repo's local CI gate: formatting, vet, the full test
# suite, and a benchmark smoke run. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "ok"

echo "== go vet =="
go vet ./...
echo "ok"

echo "== go build =="
go build ./...
echo "ok"

echo "== go test =="
go test ./...

echo "== go test -race =="
# The whole suite again under the race detector: gpu.RunWorkers
# simulates SMs on concurrent goroutines and the experiments pool runs
# concurrent simulations, so every data race is a correctness bug here.
go test -race ./...

echo "== determinism smoke =="
# The parallel-vs-sequential differential tests, twice, under the race
# detector: bit-identical results must not depend on goroutine
# interleaving.
go test -race -count=2 -run 'TestParallelMatchesSequential|TestParallelTraceMatchesSequential' ./internal/gpu

echo "== compiled-mode gate =="
# The two-mode differential layer under the race detector: the compiled
# engine (pre-decoded streams + basic-block fast-forward) must be
# bit-identical to the per-cycle interpreter — counters, derived
# metrics, memory fingerprints, trace streams — over the golden corpus
# (both modes), the workload/policy matrix, randomized divergent
# kernels, and the fuzz seed corpus. The alloc pin covers the compiled
# steady-state loop itself; the compile-pass tests pin the lowering and
# its one-compile-per-program cache.
go test -race -count=1 -run 'TestCompiled|TestGolden' ./internal/gpu ./internal/experiments
go test -race -count=1 -run 'FuzzRun' ./internal/gpu

echo "== matrix gate =="
# The cross-matrix differential layer under the race detector: every
# workload-family x scheduler-policy x SI cell must be bit-identical
# across worker counts and across the compiled and interpreted engines,
# and the per-family invariants (SI transparency on divergence-free
# GEMM, idle-bucket conservation, schedule-independent work and memory
# images) must hold in every cell.
go test -race -count=1 -run 'TestMatrixDifferential|TestPropertyGEMMSITransparency|TestPropertyGeneratorInvariants' ./internal/gpu
go test -race -count=1 -run 'TestCompile|TestCompiledSteadyStateZeroAlloc' ./internal/isa ./internal/sm

echo "== service smoke =="
# Drive the real sisimd binary end to end: start it on an ephemeral
# port, POST a job twice, require the second response to come from the
# content-addressed cache, then SIGTERM and require a clean drain.
# The exposition test scrapes /metrics in both formats against the
# live daemon: the JSON document must keep its legacy keys and the
# Prometheus rendering must pass the grammar lint with every required
# series present (queue depth, cache hits/misses, per-stage latency,
# SI counters, build info).
go test -count=1 -run 'TestDaemonSmoke|TestDaemonMetricsExposition|TestDaemonVersionFlag' ./cmd/sisimd

echo "== observability gate =="
# The in-process plane: exposition lints, required series pinned,
# trace IDs propagate client header -> spans -> logs -> debug ring,
# and the serving config keeps Block.step allocation-free.
go test -count=1 -run 'TestMetricsContentNegotiation|TestTraceIDPropagationEndToEnd|TestDebugEvents|TestBreakerTransitionEvents' ./internal/server
go test -count=1 -run 'TestServingConfigZeroAlloc|TestBlockStepSteadyStateZeroAlloc' ./internal/sm

echo "== sandbox gate =="
# The untrusted-kernel pipeline end to end. First the static and
# dynamic layers in isolation: the admission fuzzer's seed corpus, the
# budget-kill bit-identity differentials (engines and worker counts),
# and the budget-aware cache keys. Then the live gauntlet: a
# race-enabled sisimd is fed the entire hostile corpus over
# POST /v1/submit — every program must be rejected with a structured
# reason or killed within its gas budget, the daemon must stay healthy
# and keep serving well-formed work, and the sample kernels in
# examples/submissions must run through sisim -submit, which applies
# the identical admission checks and budgets locally.
go test -race -count=1 ./internal/admission
go test -race -count=1 -run 'TestBudget|TestKeyBudget' \
    ./internal/gpu ./internal/simcache
go test -count=1 -run 'TestBudgetedSteadyStateZeroAlloc' ./internal/sm
go test -count=1 -run 'TestDaemonSubmitSandbox' -timeout 10m ./cmd/sisimd
go test -count=1 -run 'TestCLISubmitSamples|TestCLISubmitSandbox' ./cmd/sisim

echo "== chaos gate =="
# The fault-injection suites, twice each under the race detector, with
# two fixed chaos seeds: seeded fault schedules must replay
# byte-for-byte, injected faults must never produce a wrong result,
# and the chaos tests' goroutine-leak checks must stay quiet.
for seed in 1 7; do
    echo "-- SISIM_CHAOS_SEED=$seed --"
    SISIM_CHAOS_SEED=$seed go test -race -count=2 -run 'Chaos|Faults' \
        ./internal/server ./internal/simcache
done
SISIM_CHAOS_SEED=1 go test -race -count=1 ./internal/faults

echo "== cluster gate =="
# The cache-affine cluster layer, race-enabled. The in-process suite
# proves the routing invariants: consistent-hash affinity beats the
# single-node cache baseline on a working set larger than one node's
# LRU, a peer killed mid-sweep reroutes with aggregate batch results
# bit-identical to a single node's, saturated peers relay structured
# 429 backpressure, and with every peer dead the coordinator degrades
# to local serving. The daemon test then drives a real coordinator +
# 2-worker topology end to end — affinity hits through the
# coordinator, SIGKILL one worker, identical answers after — and the
# SIGTERM teardown requires a clean drain.
go test -race -count=1 ./internal/cluster
go test -count=1 -run 'TestDaemonCluster' ./cmd/sisimd

echo "== coverage floor =="
# Gate total statement coverage just below the current level so test
# debt cannot creep in silently. Raise the floor when coverage rises.
floor=75.0
go test -coverprofile=cover.out ./... > /dev/null
total=$(go tool cover -func=cover.out | awk '/^total:/ { sub(/%/, "", $3); print $3 }')
rm -f cover.out
if ! awk -v t="$total" -v f="$floor" 'BEGIN { exit !(t >= f) }'; then
    echo "total coverage ${total}% is below the ${floor}% floor" >&2
    exit 1
fi
echo "ok (${total}% >= ${floor}%)"

echo "== benchmark smoke =="
# One iteration of every benchmark (figure regeneration, throughput,
# and the zero-alloc hot-loop microbenchmarks) proves the whole bench
# harness still runs; timing is not asserted here.
go test -run '^$' -bench . -benchmem -benchtime 1x . ./internal/sm

echo "all checks passed"
