#!/bin/sh
# check.sh — the repo's local CI gate: formatting, vet, the full test
# suite, and a benchmark smoke run. Run from anywhere inside the repo.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi
echo "ok"

echo "== go vet =="
go vet ./...
echo "ok"

echo "== go build =="
go build ./...
echo "ok"

echo "== go test =="
go test ./...

echo "== benchmark smoke =="
# One iteration of the cheapest figure regeneration proves the bench
# harness still runs; timing is not asserted here.
go test -run '^$' -bench BenchmarkFig3 -benchtime 1x .

echo "all checks passed"
