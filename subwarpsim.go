// Package subwarpsim is a cycle-level simulator of an NVIDIA
// Turing-like GPU streaming multiprocessor implementing Subwarp
// Interleaving (Damani et al., "GPU Subwarp Interleaving", HPCA 2022).
//
// Subwarp Interleaving (SI) exploits warp divergence to hide memory
// latency: when a warp's active subwarp — a PC-aligned subset of its
// threads — suffers a load-to-use stall, the subwarp scheduler demotes
// it to a STALLED state and switches to another READY subwarp of the
// same warp, overlapping long-latency operations across divergent
// paths.
//
// The package exposes:
//
//   - the architecture configuration (Table I parameters plus SI
//     policy knobs): DefaultConfig, Config.WithSI;
//   - kernel construction: BuildMegakernel for the synthetic raytracing
//     application traces, BuildMicrobenchmark for the divergence
//     scaling microbenchmark, or hand-assembled programs via the
//     internal/isa builder;
//   - simulation: Run and Compare;
//   - the paper's evaluation harness: Experiments, ExperimentByID.
//
// A minimal session:
//
//	app, _ := subwarpsim.Application("BFV1")
//	kernel, _ := subwarpsim.BuildMegakernel(app)
//	base, _ := subwarpsim.Run(subwarpsim.DefaultConfig(), kernel)
//
//	kernel, _ = subwarpsim.BuildMegakernel(app)
//	si, _ := subwarpsim.Run(
//		subwarpsim.DefaultConfig().WithSI(true, subwarpsim.TriggerHalfStalled),
//		kernel)
//
//	fmt.Printf("SI speedup: %.1f%%\n",
//		100*subwarpsim.Speedup(base.Counters, si.Counters))
package subwarpsim

import (
	"context"

	"subwarpsim/internal/config"
	"subwarpsim/internal/experiments"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/trace"
	"subwarpsim/internal/workload"
)

// Config holds every architecture parameter of the simulated GPU; see
// DefaultConfig for the paper's Table I baseline.
type Config = config.Config

// SelectTrigger picks when the subwarp scheduler triggers
// subwarp-select on stalled warps (the paper's N knob).
type SelectTrigger = config.SelectTrigger

// Subwarp-select trigger policies (Section III-C3).
const (
	TriggerAnyStalled  = config.TriggerAnyStalled  // N > 0
	TriggerHalfStalled = config.TriggerHalfStalled // N >= 0.5
	TriggerAllStalled  = config.TriggerAllStalled  // N = 1
)

// SubwarpOrder selects which side of a divergent branch executes first.
type SubwarpOrder = config.SubwarpOrder

// Divergent-path activation orders (Section VI discusses sensitivity).
const (
	OrderTakenFirst       = config.OrderTakenFirst
	OrderFallthroughFirst = config.OrderFallthroughFirst
	OrderLargestFirst     = config.OrderLargestFirst
	OrderRandom           = config.OrderRandom
)

// DefaultConfig returns the Table I Turing-like baseline with SI
// disabled: 2 SMs x 4 processing blocks x 8 warp slots, 128 KB L1D,
// 64 KB L1I, 16 KB L0I, 600-cycle L1 miss latency.
func DefaultConfig() Config { return config.Default() }

// Kernel is one launch: a program plus its functional resources.
type Kernel = sm.Kernel

// Budget gas-meters a kernel launch (see Kernel.Budget): per-SM limits
// on simulated cycles, retired instructions, and memory footprint.
type Budget = sm.Budget

// BudgetError reports a deterministic gas kill; DeadlockError a
// structural deadlock. Both are the submission's fault, and both occur
// at bit-identical points across engines and worker counts.
type (
	BudgetError   = sm.BudgetError
	DeadlockError = sm.DeadlockError
)

// Result is the outcome of a simulation.
type Result = gpu.Result

// Counters are the raw event counts a simulation produces.
type Counters = stats.Counters

// Derived are normalized metrics (stall fractions, IPC, miss rates).
type Derived = stats.Derived

// Run simulates the kernel to completion under the configuration,
// simulating SMs concurrently on up to GOMAXPROCS goroutines. Results
// are bit-identical to a sequential run (see RunWorkers).
func Run(cfg Config, kernel *Kernel) (Result, error) { return gpu.Run(cfg, kernel) }

// RunWorkers simulates the kernel with an explicit bound on concurrent
// SM simulation goroutines: 0 means GOMAXPROCS, 1 simulates SMs
// sequentially. Counters, derived metrics, the final memory image, and
// trace streams are bit-identical for every worker count.
func RunWorkers(cfg Config, kernel *Kernel, workers int) (Result, error) {
	return gpu.RunWorkers(cfg, kernel, workers)
}

// RunContext is RunWorkers with cancellation: when ctx is cancelled or
// its deadline passes, every simulating SM returns promptly and the
// error wraps ctx.Err() (errors.Is-compatible with context.Canceled
// and context.DeadlineExceeded).
func RunContext(ctx context.Context, cfg Config, kernel *Kernel, workers int) (Result, error) {
	return gpu.RunContext(ctx, cfg, kernel, workers)
}

// Compare runs the kernel under two configurations on fresh state and
// returns both results and the speedup of test over base.
func Compare(base, test Config, mkKernel func() *Kernel) (Result, Result, float64, error) {
	return gpu.Compare(base, test, mkKernel)
}

// Speedup returns test's speedup over base as a fraction (0.063 means
// +6.3%).
func Speedup(base, test Counters) float64 { return stats.Speedup(base, test) }

// AppProfile parameterizes one synthetic raytracing application trace.
type AppProfile = workload.AppProfile

// Applications returns the ten raytracing trace profiles of Table II.
func Applications() []AppProfile { return workload.Apps() }

// ApplicationNames returns the trace names in paper order.
func ApplicationNames() []string { return workload.AppNames() }

// Application returns the named trace profile.
func Application(name string) (AppProfile, error) { return workload.ProfileByName(name) }

// BuildMegakernel assembles a raytracing megakernel (scene, BVH,
// camera, program) for the profile.
func BuildMegakernel(p AppProfile) (*Kernel, error) { return workload.Megakernel(p) }

// MicrobenchParams configures the Fig. 11 divergence microbenchmark.
type MicrobenchParams = workload.MicrobenchParams

// DefaultMicrobenchmark returns the Table III parameters for a subwarp
// size in {32, 16, 8, 4, 2, 1}.
func DefaultMicrobenchmark(subwarpSize int) MicrobenchParams {
	return workload.DefaultMicrobench(subwarpSize)
}

// BuildMicrobenchmark assembles the microbenchmark kernel.
func BuildMicrobenchmark(p MicrobenchParams) (*Kernel, error) { return workload.Microbench(p) }

// WorkloadGenerator describes one registered synthetic workload
// family (gemm, bfs, texture, ...): a named parameterless kernel
// constructor covering a control-flow shape beyond the raytracing
// traces.
type WorkloadGenerator = workload.Generator

// WorkloadGenerators returns the registered families sorted by name.
func WorkloadGenerators() []WorkloadGenerator { return workload.Generators() }

// WorkloadNames returns the registered family names, for CLI usage
// text and menus.
func WorkloadNames() []string { return workload.GeneratorNames() }

// BuildWorkload constructs a fresh kernel for the named family.
func BuildWorkload(name string) (*Kernel, error) { return workload.BuildByName(name) }

// SchedPolicy selects the warp-scheduler arbitration rule (see
// Config.SchedPolicy): LRR round-robin (the default), greedy-then-
// oldest, or a WaSP-style phase-offset scheduler.
type SchedPolicy = config.SchedPolicy

const (
	SchedLRR  = config.SchedLRR
	SchedGTO  = config.SchedGTO
	SchedWaSP = config.SchedWaSP
)

// ParseSchedPolicy maps a policy name ("lrr", "gto", "wasp") onto the
// config constant.
func ParseSchedPolicy(name string) (SchedPolicy, error) { return config.ParseSchedPolicy(name) }

// TraceRecorder collects structured simulation events for the
// observability layer. Attach one to Config.Trace before Run; leaving
// Config.Trace nil (the default) disables tracing with zero overhead.
type TraceRecorder = trace.Recorder

// TraceEvent is one recorded simulation event: (cycle, SM, block,
// warp, PC, lane mask, kind, argument).
type TraceEvent = trace.Event

// TraceKind identifies the type of a recorded event.
type TraceKind = trace.Kind

// TimelineOptions configures TraceRecorder.ASCIITimeline rendering.
type TimelineOptions = trace.TimelineOptions

// NewTraceRecorder returns a recorder capturing every event kind from
// every warp, up to the default event cap.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// Histogram is a power-of-two-bucketed latency distribution.
type Histogram = stats.Histogram

// TimeSeries accumulates windowed per-cycle samples (occupancy, live
// subwarps, IPC, TST fill).
type TimeSeries = stats.TimeSeries

// NewTimeSeries returns a time series with the given window length in
// cycles.
func NewTimeSeries(window int64) *TimeSeries { return stats.NewTimeSeries(window) }

// StallAttribution decomposes a run's idle cycles into the five
// exclusive buckets (load, fetch, switch, barrier, no-warp) as a
// printable table; the buckets sum exactly to Counters.IdleCycles.
func StallAttribution(c Counters) *stats.Table { return stats.StallAttribution(c) }

// Experiment regenerates one of the paper's tables or figures.
type Experiment = experiments.Experiment

// ExperimentReport is a regenerated artifact with tables and values.
type ExperimentReport = experiments.Report

// ExperimentOptions tunes experiment execution.
type ExperimentOptions = experiments.Options

// Experiments returns every paper artifact regenerator, in paper order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks up one experiment ("fig3", "table3", "fig12a",
// "fig12b", "fig13", "fig14", "fig15", "icache", "order", "yield").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }
