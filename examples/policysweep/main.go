// Policysweep: explore the subwarp scheduler's policy space on one
// application — the select trigger (N > 0, N >= 0.5, N = 1), the yield
// mode (SOS vs Both), and the TST size — the knobs Sections III-C and
// V-C of the paper study.
//
//	go run ./examples/policysweep           # defaults to Ctrl
//	go run ./examples/policysweep BFV2
package main

import (
	"fmt"
	"log"
	"os"

	"subwarpsim"
)

func main() {
	name := "Ctrl"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	app, err := subwarpsim.Application(name)
	if err != nil {
		log.Fatal(err)
	}

	mk := func() *subwarpsim.Kernel {
		k, err := subwarpsim.BuildMegakernel(app)
		if err != nil {
			log.Fatal(err)
		}
		return k
	}

	baseline := subwarpsim.DefaultConfig()
	base, err := subwarpsim.Run(baseline, mk())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s baseline: %d cycles, %.1f%% exposed load stalls\n\n",
		app.Name, base.Counters.Cycles, base.Derived().ExposedStallFrac*100)

	triggers := []struct {
		label string
		trig  subwarpsim.SelectTrigger
	}{
		{"N=1   ", subwarpsim.TriggerAllStalled},
		{"N>=0.5", subwarpsim.TriggerHalfStalled},
		{"N>0   ", subwarpsim.TriggerAnyStalled},
	}

	fmt.Println("trigger  mode  speedup  selects  yields  switch-cycles")
	for _, tr := range triggers {
		for _, yield := range []bool{false, true} {
			cfg := baseline.WithSI(yield, tr.trig)
			res, err := subwarpsim.Run(cfg, mk())
			if err != nil {
				log.Fatal(err)
			}
			mode := "SOS "
			if yield {
				mode = "Both"
			}
			fmt.Printf("%s   %s  %6.1f%%  %7d  %6d  %13d\n",
				tr.label, mode,
				subwarpsim.Speedup(base.Counters, res.Counters)*100,
				res.Counters.SubwarpSelects, res.Counters.SubwarpYields,
				res.Counters.SelectBusy)
		}
	}

	fmt.Println("\nTST size sensitivity (Both, N>=0.5):")
	for _, entries := range []int{2, 4, 6, 0} {
		cfg := baseline.WithSI(true, subwarpsim.TriggerHalfStalled)
		cfg.SI.MaxSubwarps = entries
		res, err := subwarpsim.Run(cfg, mk())
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d entries", entries)
		if entries == 0 {
			label = "unlimited"
		}
		fmt.Printf("  %-10s %6.1f%%  (TST overflows: %d)\n",
			label, subwarpsim.Speedup(base.Counters, res.Counters)*100,
			res.Counters.TSTOverflow)
	}
}
