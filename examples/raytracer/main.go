// Raytracer: drive the RT-core substrate directly — generate a
// procedural scene, build its BVH, and render a small image by tracing
// camera rays, writing out a PPM. The same traversal runs inside the
// simulator when a megakernel executes TRACE; here it runs standalone,
// and the per-pixel traversal step counts (the quantity that drives the
// simulated RT core's latency) are reported as a histogram.
//
//	go run ./examples/raytracer          # writes render.ppm
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"

	"subwarpsim"
)

const (
	width  = 256
	height = 192
)

// materialColors maps material indices to display colors; rays that
// miss fall through to a sky gradient.
var materialColors = [][3]uint8{
	{230, 90, 70},   // red clay
	{90, 180, 220},  // sky blue
	{240, 200, 80},  // amber
	{120, 210, 120}, // leaf green
	{200, 120, 220}, // violet
	{240, 240, 240}, // chalk
	{255, 160, 90},  // orange
	{130, 140, 230}, // periwinkle
}

func main() {
	sc, err := subwarpsim.GenerateScene(subwarpsim.SceneParams{
		Seed:         42,
		Triangles:    3000,
		Materials:    len(materialColors),
		Clusters:     24,
		Extent:       60,
		MaterialSkew: 0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scene: %s\n", sc.BVH.Stats())

	cam := subwarpsim.NewCamera(sc.BVH, width, height)

	img := make([]uint8, 0, width*height*3)
	stepHist := map[int]int{} // traversal steps bucketed by 10
	hits := 0
	for y := height - 1; y >= 0; y-- {
		for x := 0; x < width; x++ {
			ray := cam.PrimaryRay(uint32(y*width + x))
			hit := sc.BVH.Traverse(ray, 1e-4, subwarpsim.InfinityT)
			stepHist[hit.Steps/10]++
			var r, g, b uint8
			if hit.Ok {
				hits++
				c := materialColors[hit.Material%len(materialColors)]
				// Cheap depth shading: nearer hits are brighter.
				shade := 1 / (1 + float64(hit.T)*0.004)
				r = uint8(float64(c[0]) * shade)
				g = uint8(float64(c[1]) * shade)
				b = uint8(float64(c[2]) * shade)
			} else {
				// Sky gradient by row.
				t := float64(y) / float64(height)
				r = uint8(40 + 60*t)
				g = uint8(60 + 80*t)
				b = uint8(110 + 110*t)
			}
			img = append(img, r, g, b)
		}
	}

	if err := writePPM("render.ppm", img); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rendered %dx%d: %d/%d pixels hit geometry -> render.ppm\n",
		width, height, hits, width*height)

	fmt.Println("BVH traversal steps per ray (bucketed by 10):")
	for bucket := 0; bucket < 16; bucket++ {
		if n := stepHist[bucket]; n > 0 {
			fmt.Printf("  %3d-%3d: %6d rays\n", bucket*10, bucket*10+9, n)
		}
	}
}

func writePPM(path string, rgb []uint8) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	fmt.Fprintf(w, "P6\n%d %d\n255\n", width, height)
	if _, err := w.Write(rgb); err != nil {
		return err
	}
	return w.Flush()
}
