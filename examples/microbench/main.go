// Microbench: reproduce the Table III divergence scaling study through
// the public API — sweep the microbenchmark's SUBWARP_SIZE and measure
// Subwarp Interleaving's speedup at each divergence factor.
//
//	go run ./examples/microbench
package main

import (
	"fmt"
	"log"

	"subwarpsim"
)

func main() {
	baseline := subwarpsim.DefaultConfig()
	si := baseline.WithSI(false, subwarpsim.TriggerAnyStalled) // switch-on-stall

	fmt.Println("SUBWARP_SIZE  divergence  baseline-cycles  SI-cycles  speedup")
	for _, subwarpSize := range []int{32, 16, 8, 4, 2, 1} {
		params := subwarpsim.DefaultMicrobenchmark(subwarpSize)

		base, fast, speedup, err := subwarpsim.Compare(baseline, si, func() *subwarpsim.Kernel {
			k, err := subwarpsim.BuildMicrobenchmark(params)
			if err != nil {
				log.Fatal(err)
			}
			return k
		})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%12d  %10d  %15d  %9d  %6.2fx\n",
			subwarpSize, params.DivergenceFactor(),
			base.Counters.Cycles, fast.Counters.Cycles, 1+speedup)
	}
	fmt.Println("\nexpect near-linear scaling that tapers at 32-way divergence,")
	fmt.Println("where the 32 switch cases overflow the 16KB L0 instruction cache")
	fmt.Println("(Table III reports 1.98/3.95/7.84/15.22/12.66x on the paper's simulator)")
}
