// Customkernel: write a divergent kernel in the simulator's assembly
// language, run it under the baseline and under Subwarp Interleaving,
// and verify the architectural results are identical while the timing
// improves.
//
// The kernel is the if-then-else pattern of the paper's Fig. 9: odd
// lanes reduce one buffer, even lanes another, each with a
// load-to-use stall SI can overlap.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"subwarpsim"
)

const source = `
	.regs 24
	S2R R0, SR0              // lane id
	S2R R1, SR3              // global thread id
	SHL R2, R1, 7            // one cache line per thread
	MOVI R3, 1
	IAND R3, R0, R3          // parity picks the path
	ISETP.EQ P0, R3, 0
	BSSY B0, join
	@P0 BRA even
	// odd lanes: buffer A with a dependent chain
	IADD R4, R2, 0x100000
	LDG R5, [R4+0] &wr=sb0
	IMUL R6, R5, 3 &req=sb0
	BRA join
even:
	// even lanes: buffer B
	IADD R4, R2, 0x200000
	LDG R5, [R4+0] &wr=sb1
	IMUL R6, R5, 5 &req=sb1
	BRA join
join:
	BSYNC B0
	SHL R7, R1, 2
	IADD R7, R7, 0x300000    // actually MOVI+IADD; immediate form
	STG [R7+0], R6
	EXIT
`

func main() {
	prog, err := subwarpsim.Assemble("parity", source)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %q: %d instructions\n\n", prog.Name, prog.Len())

	run := func(cfg subwarpsim.Config) (subwarpsim.Result, *subwarpsim.Memory) {
		memory := subwarpsim.NewMemory()
		// Seed the two input buffers with known values.
		for tid := 0; tid < 8*32; tid++ {
			memory.Store(uint64(0x100000+tid*128), uint32(10+tid))
			memory.Store(uint64(0x200000+tid*128), uint32(20+tid))
		}
		kernel := &subwarpsim.Kernel{
			Program:     prog,
			NumWarps:    8,
			WarpsPerCTA: 1,
			Memory:      memory,
		}
		res, err := subwarpsim.Run(cfg, kernel)
		if err != nil {
			log.Fatal(err)
		}
		return res, memory
	}

	base, baseMem := run(subwarpsim.DefaultConfig())
	fast, fastMem := run(subwarpsim.DefaultConfig().WithSI(true, subwarpsim.TriggerAllStalled))

	// The architectural results must match bit for bit.
	mismatches := 0
	for tid := 0; tid < 8*32; tid++ {
		addr := uint64(0x300000 + tid*4)
		if baseMem.Load(addr) != fastMem.Load(addr) {
			mismatches++
		}
	}
	fmt.Printf("baseline: %5d cycles\n", base.Counters.Cycles)
	fmt.Printf("with SI : %5d cycles (%.1f%% faster, %d subwarp switches)\n",
		fast.Counters.Cycles,
		subwarpsim.Speedup(base.Counters, fast.Counters)*100,
		fast.Counters.SubwarpSelects)
	fmt.Printf("outputs : %d mismatches across %d threads\n", mismatches, 8*32)

	// Spot-check one thread's result: lane 1 of warp 0 is odd, so it
	// loaded buffer A (10+tid) and multiplied by 3.
	got := fastMem.Load(0x300000 + 1*4)
	fmt.Printf("thread 1: %d (want %d)\n", got, (10+1)*3)
}
