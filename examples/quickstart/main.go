// Quickstart: simulate one raytracing trace on the baseline Turing-like
// GPU and again with Subwarp Interleaving, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"subwarpsim"
)

func main() {
	// Pick one of the paper's application traces: Battlefield V's
	// reflection pass, the divergent-stall-heavy case SI targets.
	app, err := subwarpsim.Application("BFV1")
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the Table I Turing-like configuration, which serializes
	// divergent subwarps.
	baseline := subwarpsim.DefaultConfig()

	// Subwarp Interleaving in the paper's best configuration: yield
	// after long-latency operations ("Both"), select when at least half
	// the warps are stalled (N >= 0.5).
	si := baseline.WithSI(true, subwarpsim.TriggerHalfStalled)

	// Each Run consumes a fresh kernel (memory image, caches).
	base, fast, speedup, err := subwarpsim.Compare(baseline, si, func() *subwarpsim.Kernel {
		k, err := subwarpsim.BuildMegakernel(app)
		if err != nil {
			log.Fatal(err)
		}
		return k
	})
	if err != nil {
		log.Fatal(err)
	}

	db, df := base.Derived(), fast.Derived()
	fmt.Printf("trace: %s (%s, %s)\n", app.Name, app.App, app.Effect)
	fmt.Printf("  baseline: %7d cycles, %4.1f%% exposed load stalls (%4.1f%% divergent)\n",
		base.Counters.Cycles, db.ExposedStallFrac*100, db.DivergentStallFrac*100)
	fmt.Printf("  with SI : %7d cycles, %4.1f%% exposed load stalls (%4.1f%% divergent)\n",
		fast.Counters.Cycles, df.ExposedStallFrac*100, df.DivergentStallFrac*100)
	fmt.Printf("  speedup : %.1f%%\n", speedup*100)
	fmt.Printf("  subwarp scheduler: %d stalls demoted, %d selects, %d yields\n",
		fast.Counters.SubwarpStalls, fast.Counters.SubwarpSelects, fast.Counters.SubwarpYields)
}
