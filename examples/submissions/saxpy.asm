// saxpy: y[i] = a*x[i] + y[i] for one element per thread, with a = 3
// synthesized by repeated adds (the ISA has no multiply). x lives at
// byte offset 0, y at 64 KiB — both inside the declared footprint, so
// admission's static operand check and the memory gas budget accept it.
//
// Submit it to a daemon (see README "Submitting kernels") or run it
// locally with the identical admission checks and budgets:
//
//	sisim -submit examples/submissions/saxpy.asm
.regs 8
    S2R R0, SR3              // global thread id
    SHL R1, R0, 2            // byte address of element i
    LDG R2, [R1+0] &wr=sb0   // x[i]
    LDG R3, [R1+65536] &wr=sb1
    IADD R4, R2, R2 &req=sb0 // 2*x[i]
    IADD R4, R4, R2          // 3*x[i]
    IADD R4, R4, R3 &req=sb1 // 3*x[i] + y[i]
    STG [R1+65536], R4
    EXIT
