// divergent_reduce: each thread loads one word and conditionally
// doubles it — half of every warp takes the branch, the shape subwarp
// interleaving targets. The divergence is properly armed with
// BSSY/BSYNC, so admission's barrier-stack CFG check accepts it;
// try `sisim -submit ... -si` to watch the SI counters move.
//
//	sisim -submit examples/submissions/divergent_reduce.asm -si -yield
.regs 8
    S2R R0, SR0              // lane within the warp
    S2R R1, SR3              // global thread id
    SHL R2, R1, 2
    LDG R3, [R2+0] &wr=sb0
    ISETP.LT P0, R0, 16      // lanes 0..15 diverge from 16..31
    BSSY B0, join
    @P0 BRA double
    IADD R4, R3, 1 &req=sb0
    BRA join
double:
    IADD R4, R3, R3 &req=sb0
join:
    BSYNC B0
    STG [R2+131072], R4
    EXIT
