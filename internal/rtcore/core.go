package rtcore

// MissMaterial is the material index reported for rays that hit
// nothing; the megakernel dispatches its miss shader on it.
const MissMaterial = -1

// RayGen produces the ray for a given ray ID. Workloads bind camera
// rays and stochastically scattered bounce rays to IDs so the TRACE
// instruction's operand (a ray ID register) fully determines the ray.
type RayGen func(id uint32) Ray

// Core models one SM's RT-core: the SM enqueues TraceRay operations and
// the core answers after a latency proportional to the number of BVH
// nodes the traversal visits. Results are memoized per ray ID, mirroring
// that a given ray's traversal is deterministic.
type Core struct {
	bvh     *BVH
	gen     RayGen
	base    int64 // fixed overhead per trace (SM<->RT-core round trip)
	perStep int64 // cycles per BVH node visit
	cache   map[uint32]Hit

	traces     int64
	totalSteps int64
}

// NewCore builds an RT-core over the given hierarchy and ray generator.
// baseLatency is the fixed round-trip cost and stepLatency the cycles
// charged per traversal step.
func NewCore(bvh *BVH, gen RayGen, baseLatency, stepLatency int64) *Core {
	return &Core{
		bvh:     bvh,
		gen:     gen,
		base:    baseLatency,
		perStep: stepLatency,
		cache:   make(map[uint32]Hit),
	}
}

// Trace performs the traversal for rayID and returns the hit record
// along with the modeled latency in cycles.
func (c *Core) Trace(rayID uint32) (Hit, int64) {
	hit, ok := c.cache[rayID]
	if !ok {
		hit = c.bvh.Traverse(c.gen(rayID), 1e-4, InfinityT)
		c.cache[rayID] = hit
	}
	c.traces++
	c.totalSteps += int64(hit.Steps)
	return hit, c.base + c.perStep*int64(hit.Steps)
}

// Traces returns how many TraceRay operations were serviced.
func (c *Core) Traces() int64 { return c.traces }

// TotalSteps returns the cumulative BVH node visits across all traces.
func (c *Core) TotalSteps() int64 { return c.totalSteps }

// BVH exposes the hierarchy (for scene inspection tools).
func (c *Core) BVH() *BVH { return c.bvh }
