package rtcore

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := V(1, 2, 3)
	b := V(4, 5, 6)
	if got := a.Add(b); got != V(5, 7, 9) {
		t.Errorf("Add = %v", got)
	}
	if got := b.Sub(a); got != V(3, 3, 3) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != V(2, 4, 6) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := V(1, 0, 0).Cross(V(0, 1, 0)); got != V(0, 0, 1) {
		t.Errorf("Cross = %v, want (0,0,1)", got)
	}
	if got := V(3, 4, 0).Len(); got != 5 {
		t.Errorf("Len = %v, want 5", got)
	}
	n := V(0, 0, 10).Normalize()
	if math.Abs(float64(n.Len())-1) > 1e-6 || n.Z != 1 {
		t.Errorf("Normalize = %v", n)
	}
	if got := V(0, 0, 0).Normalize(); got != V(0, 0, 0) {
		t.Errorf("Normalize zero = %v", got)
	}
	if got := a.Min(V(2, 1, 5)); got != V(1, 1, 3) {
		t.Errorf("Min = %v", got)
	}
	if got := a.Max(V(2, 1, 5)); got != V(2, 2, 5) {
		t.Errorf("Max = %v", got)
	}
	for i, want := range []float32{1, 2, 3} {
		if got := a.Axis(i); got != want {
			t.Errorf("Axis(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestRayAt(t *testing.T) {
	r := NewRay(V(0, 0, 0), V(0, 0, 2))
	if got := r.At(3); got != V(0, 0, 3) {
		t.Errorf("At = %v (direction must be normalized)", got)
	}
}

func TestAABBHitRay(t *testing.T) {
	box := AABB{Min: V(-1, -1, -1), Max: V(1, 1, 1)}
	cases := []struct {
		name string
		ray  Ray
		want bool
	}{
		{"through center", NewRay(V(0, 0, -5), V(0, 0, 1)), true},
		{"away", NewRay(V(0, 0, -5), V(0, 0, -1)), false},
		{"miss offset", NewRay(V(5, 5, -5), V(0, 0, 1)), false},
		{"diagonal hit", NewRay(V(-5, -5, -5), V(1, 1, 1)), true},
		{"from inside", NewRay(V(0, 0, 0), V(1, 0, 0)), true},
		{"axis-parallel skim outside", NewRay(V(2, 0, -5), V(0, 0, 1)), false},
	}
	for _, c := range cases {
		if got := box.HitRay(c.ray, 1e-4, InfinityT); got != c.want {
			t.Errorf("%s: HitRay = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAABBOps(t *testing.T) {
	a := AABB{Min: V(0, 0, 0), Max: V(1, 1, 1)}
	b := AABB{Min: V(2, 2, 2), Max: V(3, 3, 3)}
	u := a.Union(b)
	if u.Min != V(0, 0, 0) || u.Max != V(3, 3, 3) {
		t.Errorf("Union = %v", u)
	}
	if got := a.Centroid(); got != V(0.5, 0.5, 0.5) {
		t.Errorf("Centroid = %v", got)
	}
	if !a.Contains(V(0.5, 0.5, 0.5)) || a.Contains(V(2, 0, 0)) {
		t.Error("Contains wrong")
	}
	if got := a.SurfaceArea(); got != 6 {
		t.Errorf("SurfaceArea = %v, want 6", got)
	}
	if EmptyAABB().SurfaceArea() != 0 {
		t.Error("empty box must have zero area")
	}
	wide := AABB{Min: V(0, 0, 0), Max: V(10, 1, 2)}
	if wide.LongestAxis() != 0 {
		t.Errorf("LongestAxis = %d, want 0", wide.LongestAxis())
	}
	empty := EmptyAABB()
	grown := empty.GrowPoint(V(1, 2, 3))
	if grown.Min != V(1, 2, 3) || grown.Max != V(1, 2, 3) {
		t.Errorf("GrowPoint from empty = %v", grown)
	}
}

func TestTriangleIntersect(t *testing.T) {
	tri := Triangle{V0: V(-1, -1, 0), V1: V(1, -1, 0), V2: V(0, 1, 0), Material: 3}
	// Straight-on hit through the centroid.
	if d, ok := tri.Intersect(NewRay(V(0, 0, -2), V(0, 0, 1)), 1e-4, InfinityT); !ok || math.Abs(float64(d)-2) > 1e-5 {
		t.Errorf("center hit: d=%v ok=%v", d, ok)
	}
	// Miss outside the triangle.
	if _, ok := tri.Intersect(NewRay(V(5, 5, -2), V(0, 0, 1)), 1e-4, InfinityT); ok {
		t.Error("offset ray should miss")
	}
	// Behind the origin.
	if _, ok := tri.Intersect(NewRay(V(0, 0, -2), V(0, 0, -1)), 1e-4, InfinityT); ok {
		t.Error("backwards ray should miss")
	}
	// Parallel to the plane.
	if _, ok := tri.Intersect(NewRay(V(0, 0, 1), V(1, 0, 0)), 1e-4, InfinityT); ok {
		t.Error("parallel ray should miss")
	}
	// tmax clipping.
	if _, ok := tri.Intersect(NewRay(V(0, 0, -2), V(0, 0, 1)), 1e-4, 1.0); ok {
		t.Error("hit beyond tmax should be rejected")
	}
	// Bounds and centroid.
	bb := tri.Bounds()
	if bb.Min != V(-1, -1, 0) || bb.Max != V(1, 1, 0) {
		t.Errorf("Bounds = %v", bb)
	}
	c := tri.Centroid()
	if math.Abs(float64(c.X)) > 1e-6 || math.Abs(float64(c.Y+1.0/3.0)) > 1e-6 {
		t.Errorf("Centroid = %v", c)
	}
}

// randomScene builds n random triangles in the unit-ish cube.
func randomScene(rng *rand.Rand, n int) []Triangle {
	tris := make([]Triangle, n)
	for i := range tris {
		base := V(rng.Float32()*10-5, rng.Float32()*10-5, rng.Float32()*10-5)
		tris[i] = Triangle{
			V0:       base,
			V1:       base.Add(V(rng.Float32(), rng.Float32(), rng.Float32())),
			V2:       base.Add(V(rng.Float32(), rng.Float32(), rng.Float32())),
			Material: rng.Intn(8),
		}
	}
	return tris
}

func TestBVHBuildInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 4, 5, 17, 100, 333} {
		bvh := BuildBVH(randomScene(rng, n))
		if bvh.NumTriangles() != n {
			t.Fatalf("n=%d: NumTriangles = %d", n, bvh.NumTriangles())
		}
		if err := bvh.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > maxLeafSize && bvh.Depth() < 2 {
			t.Errorf("n=%d: depth = %d, expected an actual tree", n, bvh.Depth())
		}
		if bvh.Stats() == "" {
			t.Error("empty Stats")
		}
	}
}

func TestBVHMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bvh := BuildBVH(randomScene(rng, 200))
	misses, hits := 0, 0
	for i := 0; i < 500; i++ {
		origin := V(rng.Float32()*20-10, rng.Float32()*20-10, rng.Float32()*20-10)
		dir := V(rng.Float32()*2-1, rng.Float32()*2-1, rng.Float32()*2-1)
		if dir.Len() == 0 {
			continue
		}
		ray := NewRay(origin, dir)
		got := bvh.Traverse(ray, 1e-4, InfinityT)
		want := bvh.BruteForce(ray, 1e-4, InfinityT)
		if got.Ok != want.Ok {
			t.Fatalf("ray %d: hit mismatch got %v want %v", i, got.Ok, want.Ok)
		}
		if got.Ok {
			hits++
			if math.Abs(float64(got.T-want.T)) > 1e-3 {
				t.Fatalf("ray %d: T mismatch got %v want %v", i, got.T, want.T)
			}
			if got.Material != want.Material {
				// Same T can belong to overlapping triangles with
				// different materials; only flag clear mismatches.
				if math.Abs(float64(got.T-want.T)) > 1e-5 {
					t.Fatalf("ray %d: material mismatch", i)
				}
			}
		} else {
			misses++
		}
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate test: hits=%d misses=%d", hits, misses)
	}
}

func TestBVHTraversalCheaperThanBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	bvh := BuildBVH(randomScene(rng, 1000))
	var bvhSteps, bruteSteps int
	for i := 0; i < 200; i++ {
		ray := NewRay(
			V(rng.Float32()*20-10, rng.Float32()*20-10, -20),
			V(rng.Float32()-0.5, rng.Float32()-0.5, 1),
		)
		bvhSteps += bvh.Traverse(ray, 1e-4, InfinityT).Steps
		bruteSteps += bvh.BruteForce(ray, 1e-4, InfinityT).Steps
	}
	if bvhSteps*2 >= bruteSteps {
		t.Errorf("BVH not pruning: %d steps vs brute %d", bvhSteps, bruteSteps)
	}
}

func TestEmptyBVHTraversal(t *testing.T) {
	bvh := BuildBVH(nil)
	hit := bvh.Traverse(NewRay(V(0, 0, 0), V(0, 0, 1)), 1e-4, InfinityT)
	if hit.Ok || hit.Steps != 1 || hit.Material != -1 {
		t.Errorf("empty scene hit = %+v", hit)
	}
	if err := bvh.Validate(); err != nil {
		t.Errorf("empty BVH should validate: %v", err)
	}
}

func TestCoreLatencyAndMemo(t *testing.T) {
	tri := Triangle{V0: V(-1, -1, 5), V1: V(1, -1, 5), V2: V(0, 1, 5), Material: 2}
	bvh := BuildBVH([]Triangle{tri})
	gen := func(id uint32) Ray {
		if id == 0 {
			return NewRay(V(0, 0, 0), V(0, 0, 1)) // hit
		}
		return NewRay(V(0, 0, 0), V(0, 0, -1)) // miss
	}
	core := NewCore(bvh, gen, 200, 24)
	hit, lat := core.Trace(0)
	if !hit.Ok || hit.Material != 2 {
		t.Fatalf("trace 0: %+v", hit)
	}
	if lat != 200+24*int64(hit.Steps) {
		t.Errorf("latency = %d, want base+steps*per", lat)
	}
	miss, _ := core.Trace(1)
	if miss.Ok || miss.Material != MissMaterial+0 && miss.Material != -1 {
		t.Fatalf("trace 1 should miss: %+v", miss)
	}
	// Memoized: same result object, counters still advance.
	hit2, lat2 := core.Trace(0)
	if hit2 != hit || lat2 != lat {
		t.Error("memoized trace differs")
	}
	if core.Traces() != 3 {
		t.Errorf("Traces = %d, want 3", core.Traces())
	}
	if core.TotalSteps() <= 0 {
		t.Error("TotalSteps should accumulate")
	}
	if core.BVH() != bvh {
		t.Error("BVH accessor")
	}
}

// Property: traversal and brute force agree on hit/miss for arbitrary
// rays against a fixed random scene.
func TestQuickTraversalOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bvh := BuildBVH(randomScene(rng, 64))
	f := func(ox, oy, oz, dx, dy, dz int8) bool {
		dir := V(float32(dx), float32(dy), float32(dz))
		if dir.Len() == 0 {
			return true
		}
		ray := NewRay(V(float32(ox)/8, float32(oy)/8, float32(oz)/8), dir)
		got := bvh.Traverse(ray, 1e-4, InfinityT)
		want := bvh.BruteForce(ray, 1e-4, InfinityT)
		if got.Ok != want.Ok {
			return false
		}
		return !got.Ok || math.Abs(float64(got.T-want.T)) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
