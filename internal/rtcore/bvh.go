package rtcore

import (
	"fmt"
	"math"
	"sort"
)

// Hit is the result of a ray traversal, the record the RT core returns
// to the SM.
type Hit struct {
	// Ok reports whether any triangle was hit.
	Ok bool
	// T is the hit distance along the ray.
	T float32
	// Tri is the index of the hit triangle in the BVH's primitive list.
	Tri int
	// Material is the hit triangle's material (shader selector).
	Material int
	// Steps counts BVH node visits performed during traversal; the RT
	// core's latency model charges per step.
	Steps int
}

// bvhNode is one node of the flattened hierarchy. Leaves reference a
// contiguous primitive range; interior nodes reference their right
// child (the left child is always the next node in the array).
type bvhNode struct {
	bounds    AABB
	right     int32 // interior: index of right child; leaves: -1
	firstPrim int32 // leaves: first primitive index
	primCount int32 // leaves: number of primitives; 0 for interior
}

func (n *bvhNode) isLeaf() bool { return n.primCount > 0 }

// maxLeafSize bounds primitives per leaf in median-split construction.
const maxLeafSize = 4

// BVH is a binary bounding volume hierarchy built by median split over
// the longest axis, the classic construction used by the acceleration
// structures DXR drivers build (the "Bounded Volume Hierarchy data
// structures as configured by their respective developers", §IV-B).
type BVH struct {
	tris  []Triangle
	nodes []bvhNode
	depth int
}

// BuildBVH constructs a hierarchy over the given triangles. The
// triangle slice is copied and reordered. An empty scene yields a BVH
// whose traversals always miss in one step.
func BuildBVH(tris []Triangle) *BVH {
	b := &BVH{tris: append([]Triangle(nil), tris...)}
	if len(b.tris) == 0 {
		b.nodes = []bvhNode{{bounds: EmptyAABB(), right: -1, primCount: 0}}
		return b
	}
	b.nodes = make([]bvhNode, 0, 2*len(b.tris))
	b.build(0, len(b.tris), 1)
	return b
}

// build emits the subtree over tris[lo:hi) and returns its node index.
func (b *BVH) build(lo, hi, depth int) int {
	if depth > b.depth {
		b.depth = depth
	}
	idx := len(b.nodes)
	b.nodes = append(b.nodes, bvhNode{})

	bounds := EmptyAABB()
	centroids := EmptyAABB()
	for i := lo; i < hi; i++ {
		bounds = bounds.Union(b.tris[i].Bounds())
		centroids = centroids.GrowPoint(b.tris[i].Centroid())
	}

	n := hi - lo
	axis := centroids.LongestAxis()
	flatCentroids := centroids.Max.Axis(axis)-centroids.Min.Axis(axis) < 1e-12
	// depth >= 60 force-terminates so traversal's fixed 64-entry stack
	// can never overflow (median split keeps depth ~log2(n) anyway).
	if n <= maxLeafSize || flatCentroids || depth >= 60 {
		b.nodes[idx] = bvhNode{bounds: bounds, right: -1, firstPrim: int32(lo), primCount: int32(n)}
		return idx
	}

	sub := b.tris[lo:hi]
	sort.Slice(sub, func(i, j int) bool {
		return sub[i].Centroid().Axis(axis) < sub[j].Centroid().Axis(axis)
	})
	mid := lo + n/2

	b.build(lo, mid, depth+1) // left child lands at idx+1
	right := b.build(mid, hi, depth+1)
	b.nodes[idx] = bvhNode{bounds: bounds, right: int32(right), primCount: 0}
	return idx
}

// NumTriangles returns the primitive count.
func (b *BVH) NumTriangles() int { return len(b.tris) }

// NumNodes returns the node count.
func (b *BVH) NumNodes() int { return len(b.nodes) }

// Depth returns the tree depth (1 for a single leaf or empty scene).
func (b *BVH) Depth() int {
	if b.depth == 0 {
		return 1
	}
	return b.depth
}

// Bounds returns the root bounding box.
func (b *BVH) Bounds() AABB { return b.nodes[0].bounds }

// Triangle returns primitive i after construction reordering.
func (b *BVH) Triangle(i int) Triangle { return b.tris[i] }

// Traverse finds the nearest hit along ray r in (tmin, tmax), counting
// node visits in Hit.Steps. Traversal uses an explicit stack (as a
// hardware unit would) and prunes by the best hit found so far.
func (b *BVH) Traverse(r Ray, tmin, tmax float32) Hit {
	hit := Hit{T: tmax, Tri: -1, Material: -1}
	if len(b.tris) == 0 {
		hit.Steps = 1
		return hit
	}
	var stack [64]int32
	sp := 0
	stack[sp] = 0
	sp++
	for sp > 0 {
		sp--
		idx := stack[sp]
		node := &b.nodes[idx]
		hit.Steps++
		if !node.bounds.HitRay(r, tmin, hit.T) {
			continue
		}
		if node.isLeaf() {
			for i := node.firstPrim; i < node.firstPrim+node.primCount; i++ {
				if t, ok := b.tris[i].Intersect(r, tmin, hit.T); ok {
					hit.Ok = true
					hit.T = t
					hit.Tri = int(i)
					hit.Material = b.tris[i].Material
				}
			}
			continue
		}
		// Push right then left so the left child (contiguous after its
		// parent) is popped, and therefore visited, first.
		stack[sp] = node.right
		sp++
		stack[sp] = idx + 1
		sp++
	}
	if !hit.Ok {
		hit.T = 0
	}
	return hit
}

// BruteForce intersects the ray against every triangle; used by tests
// as the traversal oracle.
func (b *BVH) BruteForce(r Ray, tmin, tmax float32) Hit {
	hit := Hit{T: tmax, Tri: -1, Material: -1}
	for i, tri := range b.tris {
		if t, ok := tri.Intersect(r, tmin, hit.T); ok {
			hit.Ok = true
			hit.T = t
			hit.Tri = i
			hit.Material = tri.Material
		}
	}
	if !hit.Ok {
		hit.T = 0
	}
	hit.Steps = len(b.tris)
	return hit
}

// Stats summarizes the hierarchy for reports.
func (b *BVH) Stats() string {
	return fmt.Sprintf("BVH{tris=%d nodes=%d depth=%d}", len(b.tris), len(b.nodes), b.Depth())
}

// Validate checks structural invariants: every child index in range,
// every leaf range within primitives, every child's bounds inside its
// parent's (with epsilon), and all primitives covered exactly once.
func (b *BVH) Validate() error {
	if len(b.nodes) == 0 {
		return fmt.Errorf("rtcore: BVH has no nodes")
	}
	covered := make([]bool, len(b.tris))
	var walk func(idx int32, parent AABB) error
	walk = func(idx int32, parent AABB) error {
		if idx < 0 || int(idx) >= len(b.nodes) {
			return fmt.Errorf("rtcore: node index %d out of range", idx)
		}
		n := &b.nodes[idx]
		if len(b.tris) > 0 && !aabbInside(n.bounds, parent) {
			return fmt.Errorf("rtcore: node %d bounds escape parent", idx)
		}
		if n.right < 0 && n.primCount == 0 {
			return nil // empty-scene sentinel leaf
		}
		if n.isLeaf() {
			for i := n.firstPrim; i < n.firstPrim+n.primCount; i++ {
				if i < 0 || int(i) >= len(b.tris) {
					return fmt.Errorf("rtcore: leaf %d prim %d out of range", idx, i)
				}
				if covered[i] {
					return fmt.Errorf("rtcore: prim %d covered twice", i)
				}
				covered[i] = true
				if !aabbInside(b.tris[i].Bounds(), n.bounds) {
					return fmt.Errorf("rtcore: prim %d escapes leaf %d", i, idx)
				}
			}
			return nil
		}
		if err := walk(idx+1, n.bounds); err != nil {
			return err
		}
		return walk(n.right, n.bounds)
	}
	root := EmptyAABB()
	if len(b.tris) > 0 {
		root = b.nodes[0].bounds
	}
	if err := walk(0, root); err != nil {
		return err
	}
	for i, c := range covered {
		if !c {
			return fmt.Errorf("rtcore: prim %d not covered by any leaf", i)
		}
	}
	return nil
}

func aabbInside(inner, outer AABB) bool {
	const eps = 1e-4
	return inner.Min.X >= outer.Min.X-eps && inner.Min.Y >= outer.Min.Y-eps &&
		inner.Min.Z >= outer.Min.Z-eps && inner.Max.X <= outer.Max.X+eps &&
		inner.Max.Y <= outer.Max.Y+eps && inner.Max.Z <= outer.Max.Z+eps
}

// InfinityT is a convenient tmax for camera rays.
const InfinityT = float32(math.MaxFloat32)
