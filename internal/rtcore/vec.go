// Package rtcore implements the RT-core substrate: a bounding volume
// hierarchy (BVH) over triangles with ray traversal, plus the RT-core
// timing model the SM's TRACE instruction offloads to.
//
// The paper's RT cores accelerate BVH traversal in hardware, returning
// hit/miss records to the SM and letting the SM overlap other work
// (Section II-B). Here the traversal is computed functionally — real
// AABB slab tests and Möller–Trumbore triangle intersection — and its
// step count (node visits) drives the modeled traversal latency, so
// scenes with deeper hierarchies genuinely take longer, reproducing the
// Amdahl effect the paper identifies (Section VI, second limiter).
package rtcore

import "math"

// Vec3 is a 3-component single-precision vector.
type Vec3 struct{ X, Y, Z float32 }

// V constructs a Vec3.
func V(x, y, z float32) Vec3 { return Vec3{x, y, z} }

// Add returns a + b.
func (a Vec3) Add(b Vec3) Vec3 { return Vec3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vec3) Sub(b Vec3) Vec3 { return Vec3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns a * s.
func (a Vec3) Scale(s float32) Vec3 { return Vec3{a.X * s, a.Y * s, a.Z * s} }

// Dot returns the dot product.
func (a Vec3) Dot(b Vec3) float32 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product.
func (a Vec3) Cross(b Vec3) Vec3 {
	return Vec3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Len returns the Euclidean length.
func (a Vec3) Len() float32 { return float32(math.Sqrt(float64(a.Dot(a)))) }

// Normalize returns a unit vector in a's direction; the zero vector is
// returned unchanged.
func (a Vec3) Normalize() Vec3 {
	l := a.Len()
	if l == 0 {
		return a
	}
	return a.Scale(1 / l)
}

// Min returns the component-wise minimum.
func (a Vec3) Min(b Vec3) Vec3 {
	return Vec3{min32(a.X, b.X), min32(a.Y, b.Y), min32(a.Z, b.Z)}
}

// Max returns the component-wise maximum.
func (a Vec3) Max(b Vec3) Vec3 {
	return Vec3{max32(a.X, b.X), max32(a.Y, b.Y), max32(a.Z, b.Z)}
}

// Axis returns component i (0=X, 1=Y, 2=Z).
func (a Vec3) Axis(i int) float32 {
	switch i {
	case 0:
		return a.X
	case 1:
		return a.Y
	default:
		return a.Z
	}
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// Ray is a half-line with precomputed inverse direction for slab tests.
type Ray struct {
	Origin Vec3
	Dir    Vec3
	invDir Vec3
}

// NewRay builds a ray; dir is normalized.
func NewRay(origin, dir Vec3) Ray {
	d := dir.Normalize()
	inv := Vec3{invComp(d.X), invComp(d.Y), invComp(d.Z)}
	return Ray{Origin: origin, Dir: d, invDir: inv}
}

func invComp(c float32) float32 {
	if c == 0 {
		return float32(math.Inf(1))
	}
	return 1 / c
}

// At returns the point origin + t*dir.
func (r Ray) At(t float32) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

// AABB is an axis-aligned bounding box.
type AABB struct{ Min, Max Vec3 }

// EmptyAABB returns an inverted box that unions correctly.
func EmptyAABB() AABB {
	inf := float32(math.Inf(1))
	return AABB{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// Union returns the smallest box containing both a and b.
func (a AABB) Union(b AABB) AABB {
	return AABB{Min: a.Min.Min(b.Min), Max: a.Max.Max(b.Max)}
}

// GrowPoint returns the box expanded to contain p.
func (a AABB) GrowPoint(p Vec3) AABB {
	return AABB{Min: a.Min.Min(p), Max: a.Max.Max(p)}
}

// Centroid returns the box center.
func (a AABB) Centroid() Vec3 { return a.Min.Add(a.Max).Scale(0.5) }

// Contains reports whether p is inside the box (inclusive).
func (a AABB) Contains(p Vec3) bool {
	return p.X >= a.Min.X && p.X <= a.Max.X &&
		p.Y >= a.Min.Y && p.Y <= a.Max.Y &&
		p.Z >= a.Min.Z && p.Z <= a.Max.Z
}

// SurfaceArea returns the box surface area (0 for inverted boxes).
func (a AABB) SurfaceArea() float32 {
	d := a.Max.Sub(a.Min)
	if d.X < 0 || d.Y < 0 || d.Z < 0 {
		return 0
	}
	return 2 * (d.X*d.Y + d.Y*d.Z + d.Z*d.X)
}

// LongestAxis returns the axis index (0..2) of the widest extent.
func (a AABB) LongestAxis() int {
	d := a.Max.Sub(a.Min)
	if d.X >= d.Y && d.X >= d.Z {
		return 0
	}
	if d.Y >= d.Z {
		return 1
	}
	return 2
}

// HitRay performs the slab test against ray r in [tmin, tmax]. The
// three axes are unrolled by hand — this is the hottest function in
// RT-heavy simulations — with the arithmetic kept in exactly the
// per-axis order of the textbook loop, so hit results (and therefore
// traversal step counts and simulated cycles) are unchanged.
func (a AABB) HitRay(r Ray, tmin, tmax float32) bool {
	t0 := (a.Min.X - r.Origin.X) * r.invDir.X
	t1 := (a.Max.X - r.Origin.X) * r.invDir.X
	if r.invDir.X < 0 {
		t0, t1 = t1, t0
	}
	if t0 > tmin {
		tmin = t0
	}
	if t1 < tmax {
		tmax = t1
	}
	if tmax < tmin {
		return false
	}

	t0 = (a.Min.Y - r.Origin.Y) * r.invDir.Y
	t1 = (a.Max.Y - r.Origin.Y) * r.invDir.Y
	if r.invDir.Y < 0 {
		t0, t1 = t1, t0
	}
	if t0 > tmin {
		tmin = t0
	}
	if t1 < tmax {
		tmax = t1
	}
	if tmax < tmin {
		return false
	}

	t0 = (a.Min.Z - r.Origin.Z) * r.invDir.Z
	t1 = (a.Max.Z - r.Origin.Z) * r.invDir.Z
	if r.invDir.Z < 0 {
		t0, t1 = t1, t0
	}
	if t0 > tmin {
		tmin = t0
	}
	if t1 < tmax {
		tmax = t1
	}
	return tmax >= tmin
}

// Triangle is a scene primitive carrying a material index; the material
// selects which shader the megakernel invokes on a hit.
type Triangle struct {
	V0, V1, V2 Vec3
	Material   int
}

// Bounds returns the triangle's bounding box.
func (t Triangle) Bounds() AABB {
	return EmptyAABB().GrowPoint(t.V0).GrowPoint(t.V1).GrowPoint(t.V2)
}

// Centroid returns the triangle centroid.
func (t Triangle) Centroid() Vec3 {
	return t.V0.Add(t.V1).Add(t.V2).Scale(1.0 / 3.0)
}

// epsilon for Möller–Trumbore degeneracy checks.
const mtEpsilon = 1e-7

// Intersect runs Möller–Trumbore: it returns the hit distance and true
// if ray r hits the triangle at t in (tmin, tmax).
func (t Triangle) Intersect(r Ray, tmin, tmax float32) (float32, bool) {
	e1 := t.V1.Sub(t.V0)
	e2 := t.V2.Sub(t.V0)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if det > -mtEpsilon && det < mtEpsilon {
		return 0, false // ray parallel to triangle plane
	}
	invDet := 1 / det
	s := r.Origin.Sub(t.V0)
	u := s.Dot(p) * invDet
	if u < 0 || u > 1 {
		return 0, false
	}
	q := s.Cross(e1)
	v := r.Dir.Dot(q) * invDet
	if v < 0 || u+v > 1 {
		return 0, false
	}
	d := e2.Dot(q) * invDet
	if d <= tmin || d >= tmax {
		return 0, false
	}
	return d, true
}
