package stats

import (
	"fmt"
	"io"
	"math/bits"
	"strings"
)

// histBuckets bounds the power-of-two bucket count; bucket 0 holds
// values <= 0 and bucket i holds values in [2^(i-1), 2^i - 1], so 40
// buckets cover every plausible cycle distance.
const histBuckets = 40

// Histogram is a power-of-two-bucketed distribution of non-negative
// integer samples (latencies, distances, residency durations). The
// zero value is ready to use; set Name for labeled rendering.
type Histogram struct {
	Name string

	buckets  [histBuckets]int64
	count    int64
	sum      int64
	min, max int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(v))
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// BucketBounds returns the inclusive value range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 0
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe adds one sample.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() int64 { return h.min }

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound of the bucket containing the q-th
// quantile (q in [0,1]). It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	seen := int64(0)
	for i, n := range h.buckets {
		seen += n
		if n > 0 && seen > target {
			_, hi := BucketBounds(i)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// EachBucket calls f for every bucket up to and including the last
// non-empty one, in ascending order, with the bucket's inclusive upper
// bound and its (non-cumulative) sample count. Exposition layers (the
// obs registry's Prometheus writer) build cumulative le-buckets on
// top of it.
func (h *Histogram) EachBucket(f func(hi int64, count int64)) {
	last := -1
	for i, n := range h.buckets {
		if n > 0 {
			last = i
		}
	}
	for i := 0; i <= last; i++ {
		_, hi := BucketBounds(i)
		f(hi, h.buckets[i])
	}
}

// Merge folds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	h.sum += o.sum
}

// String renders the non-empty buckets with proportional bars.
func (h *Histogram) String() string {
	var b strings.Builder
	name := h.Name
	if name == "" {
		name = "histogram"
	}
	fmt.Fprintf(&b, "%s (n=%d, mean=%.1f, p50<=%d, p99<=%d, max=%d)\n",
		name, h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	if h.count == 0 {
		return b.String()
	}
	peak := int64(0)
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		bar := int(40 * n / peak)
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(&b, "  [%8d,%8d]  %8d  %s\n", lo, hi, n, strings.Repeat("#", bar))
	}
	return b.String()
}

// SeriesWindow accumulates per-block-cycle samples over one fixed
// window of cycles. Weight counts sampled block-cycles; the sums divide
// by it to give per-block-cycle means.
type SeriesWindow struct {
	Weight       int64 // block-cycles sampled into this window
	OccupancySum int64 // sum of live resident warps
	SubwarpSum   int64 // sum of live subwarps across resident warps
	TSTFillSum   int64 // sum of occupied (stalled) TST subwarp entries
	Issued       int64 // instructions issued within the window
}

// Occupancy returns the mean live warps per block-cycle.
func (w SeriesWindow) Occupancy() float64 { return w.mean(w.OccupancySum) }

// Subwarps returns the mean live subwarps per block-cycle.
func (w SeriesWindow) Subwarps() float64 { return w.mean(w.SubwarpSum) }

// TSTFill returns the mean occupied TST entries per block-cycle.
func (w SeriesWindow) TSTFill() float64 { return w.mean(w.TSTFillSum) }

// IPC returns issued instructions per block-cycle.
func (w SeriesWindow) IPC() float64 { return w.mean(w.Issued) }

func (w SeriesWindow) mean(sum int64) float64 {
	if w.Weight == 0 {
		return 0
	}
	return float64(sum) / float64(w.Weight)
}

// TimeSeries aggregates per-cycle samples into fixed windows of
// Window cycles, producing occupancy / live-subwarp / IPC / TST-fill
// curves over simulated time.
type TimeSeries struct {
	Window int64
	wins   []SeriesWindow
}

// NewTimeSeries creates a series with the given window size in cycles
// (values < 1 become 1).
func NewTimeSeries(window int64) *TimeSeries {
	if window < 1 {
		window = 1
	}
	return &TimeSeries{Window: window}
}

func (ts *TimeSeries) win(cycle int64) *SeriesWindow {
	idx := int(cycle / ts.Window)
	for len(ts.wins) <= idx {
		ts.wins = append(ts.wins, SeriesWindow{})
	}
	return &ts.wins[idx]
}

// Add records one block-cycle sample at the given cycle.
func (ts *TimeSeries) Add(cycle int64, occupancy, subwarps, tstFill int, issued bool) {
	w := ts.win(cycle)
	w.Weight++
	w.OccupancySum += int64(occupancy)
	w.SubwarpSum += int64(subwarps)
	w.TSTFillSum += int64(tstFill)
	if issued {
		w.Issued++
	}
}

// AddRange records an idle span of block-cycles [from, to) during
// which the sampled quantities were constant, distributing the weight
// across the windows the span overlaps.
func (ts *TimeSeries) AddRange(from, to int64, occupancy, subwarps, tstFill int) {
	if from < 0 {
		from = 0
	}
	for from < to {
		end := (from/ts.Window + 1) * ts.Window
		if end > to {
			end = to
		}
		n := end - from
		w := ts.win(from)
		w.Weight += n
		w.OccupancySum += int64(occupancy) * n
		w.SubwarpSum += int64(subwarps) * n
		w.TSTFillSum += int64(tstFill) * n
		from = end
	}
}

// Merge folds o's windows into ts window-by-window. Both series must
// use the same Window length (the per-SM shard recorders created by
// trace.Recorder.Child guarantee this); mismatched windows panic, as
// resampling would silently distort the curves.
func (ts *TimeSeries) Merge(o *TimeSeries) {
	if o == nil || len(o.wins) == 0 {
		return
	}
	if o.Window != ts.Window {
		panic(fmt.Sprintf("stats: TimeSeries.Merge window mismatch (%d vs %d)", ts.Window, o.Window))
	}
	for i, ow := range o.wins {
		w := ts.win(int64(i) * ts.Window)
		w.Weight += ow.Weight
		w.OccupancySum += ow.OccupancySum
		w.SubwarpSum += ow.SubwarpSum
		w.TSTFillSum += ow.TSTFillSum
		w.Issued += ow.Issued
	}
}

// Windows returns the accumulated windows in time order; index i covers
// cycles [i*Window, (i+1)*Window).
func (ts *TimeSeries) Windows() []SeriesWindow { return ts.wins }

// Len returns the number of windows.
func (ts *TimeSeries) Len() int { return len(ts.wins) }

// WriteCSV renders the series as a CSV with one row per window.
func (ts *TimeSeries) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "window_start,block_cycles,occupancy,live_subwarps,ipc,tst_fill"); err != nil {
		return err
	}
	for i, win := range ts.wins {
		_, err := fmt.Fprintf(w, "%d,%d,%.4f,%.4f,%.4f,%.4f\n",
			int64(i)*ts.Window, win.Weight, win.Occupancy(), win.Subwarps(), win.IPC(), win.TSTFill())
		if err != nil {
			return err
		}
	}
	return nil
}
