package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero-value histogram should report zeros")
	}
	for _, v := range []int64{1, 2, 3, 100, 600} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 706 {
		t.Errorf("count=%d sum=%d, want 5/706", h.Count(), h.Sum())
	}
	if h.Min() != 1 || h.Max() != 600 {
		t.Errorf("min=%d max=%d, want 1/600", h.Min(), h.Max())
	}
	if math.Abs(h.Mean()-141.2) > 1e-9 {
		t.Errorf("mean = %v, want 141.2", h.Mean())
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      int64
		lo, hi int64
	}{
		{-5, 0, 0}, {0, 0, 0}, {1, 1, 1}, {2, 2, 3}, {3, 2, 3},
		{4, 4, 7}, {255, 128, 255}, {256, 256, 511},
	}
	for _, c := range cases {
		lo, hi := BucketBounds(bucketOf(c.v))
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketOf(%d) bounds = [%d,%d], want [%d,%d]", c.v, lo, hi, c.lo, c.hi)
		}
	}
	// Huge values clamp into the last bucket instead of panicking.
	var h Histogram
	h.Observe(1 << 62)
	if h.Count() != 1 {
		t.Error("huge value not observed")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(600)
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("p50 = %d, want 1", q)
	}
	if q := h.Quantile(1); q != 600 {
		t.Errorf("p100 = %d, want 600", q)
	}
	// Out-of-range q clamps rather than panicking.
	if h.Quantile(-1) != 1 || h.Quantile(2) != 600 {
		t.Error("quantile clamping wrong")
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(1)
	a.Observe(10)
	b.Observe(500)
	a.Merge(&b)
	if a.Count() != 3 || a.Min() != 1 || a.Max() != 500 || a.Sum() != 511 {
		t.Errorf("merge wrong: n=%d min=%d max=%d sum=%d", a.Count(), a.Min(), a.Max(), a.Sum())
	}
	var empty Histogram
	a.Merge(&empty) // no-op
	if a.Count() != 3 {
		t.Error("merging empty histogram changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 3 || empty.Min() != 1 {
		t.Error("merging into empty histogram lost state")
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Name = "load-to-use"
	h.Observe(600)
	s := h.String()
	if !strings.Contains(s, "load-to-use") || !strings.Contains(s, "#") {
		t.Errorf("render missing name or bar:\n%s", s)
	}
}

func TestTimeSeriesAdd(t *testing.T) {
	ts := NewTimeSeries(10)
	for c := int64(0); c < 25; c++ {
		ts.Add(c, 4, 8, 2, c%2 == 0)
	}
	if ts.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ts.Len())
	}
	w := ts.Windows()[0]
	if w.Weight != 10 || w.Occupancy() != 4 || w.Subwarps() != 8 || w.TSTFill() != 2 {
		t.Errorf("window 0 wrong: %+v", w)
	}
	if math.Abs(w.IPC()-0.5) > 1e-9 {
		t.Errorf("IPC = %v, want 0.5", w.IPC())
	}
}

func TestTimeSeriesAddRangeSplitsWindows(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.AddRange(5, 25, 3, 6, 1) // spans windows 0, 1, 2
	weights := []int64{5, 10, 5}
	for i, want := range weights {
		w := ts.Windows()[i]
		if w.Weight != want {
			t.Errorf("window %d weight = %d, want %d", i, w.Weight, want)
		}
		if w.Occupancy() != 3 || w.Subwarps() != 6 || w.TSTFill() != 1 {
			t.Errorf("window %d means wrong: %+v", i, w)
		}
		if w.IPC() != 0 {
			t.Errorf("idle range should have zero IPC, got %v", w.IPC())
		}
	}
	// Total weight is conserved.
	var total int64
	for _, w := range ts.Windows() {
		total += w.Weight
	}
	if total != 20 {
		t.Errorf("total weight = %d, want 20", total)
	}
}

func TestTimeSeriesZeroWindowClamped(t *testing.T) {
	ts := NewTimeSeries(0)
	if ts.Window != 1 {
		t.Errorf("Window = %d, want 1", ts.Window)
	}
	ts.Add(3, 1, 1, 1, true)
	if ts.Len() != 4 {
		t.Errorf("Len = %d, want 4", ts.Len())
	}
}

func TestTimeSeriesWriteCSV(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Add(0, 2, 4, 1, true)
	ts.Add(150, 3, 3, 0, false)
	var b strings.Builder
	if err := ts.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want header + 2 rows:\n%s", len(lines), b.String())
	}
	if lines[0] != "window_start,block_cycles,occupancy,live_subwarps,ipc,tst_fill" {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "100,1,3.0000") {
		t.Errorf("bad row %q", lines[2])
	}
}
