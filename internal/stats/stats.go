// Package stats collects and aggregates simulation counters.
//
// Counters are plain int64 fields so hot-path increments stay cheap;
// aggregation across processing blocks, SMs and runs happens through
// Merge. Derived metrics (speedups, normalized stall fractions — the
// quantities the paper's figures report) live on Derived.
package stats

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Counters is the set of raw event counts one simulation produces.
// Per-processing-block counters are summed into SM- and GPU-level
// totals via Merge; Cycles is maxed, since blocks run concurrently.
type Counters struct {
	// Cycles is the simulated execution time. On Merge the maximum is
	// kept: the kernel finishes when its slowest component finishes.
	Cycles int64

	// Issue statistics.
	IssuedInstrs  int64 // instructions issued to the datapath
	IssueCycles   int64 // cycles in which the block issued an instruction
	IdleCycles    int64 // cycles with no warp able to issue
	ActiveThreads int64 // sum over issued instructions of participating threads

	// Exposed stall characterisation (the paper's Fig. 3 metric):
	// cycles when no warp in the block can issue and at least one live
	// warp waits on an outstanding load/texture scoreboard.
	ExposedLoadStalls          int64
	ExposedLoadStallsDivergent int64 // subset attributed to divergent code blocks
	FetchStallCycles           int64 // cycles the issue-selected warp waited on instruction fetch
	ExposedFetchStalls         int64 // idle cycles attributable to instruction fetch misses
	BarrierStallCycles         int64 // idle cycles where all warps sat at BSYNC/blocked

	// Idle-cycle attribution: every idle cycle lands in exactly one of
	// these five buckets (priority load > fetch > switch > barrier >
	// no-warp), so their sum equals IdleCycles. StallAttribution renders
	// the decomposition as a paper-style (Fig. 3) table.
	IdleLoadCycles    int64 // a live warp waits on a load/texture scoreboard
	IdleFetchCycles   int64 // an instruction-fetch miss is in flight, no load stall
	IdleSwitchCycles  int64 // only subwarp switch latency / pending select in flight
	IdleBarrierCycles int64 // live warps blocked at convergence barriers
	IdleNoWarpCycles  int64 // no live resident warp had anything outstanding

	// Divergence statistics.
	DivergentBranches int64 // branch executions that splintered the warp
	Reconvergences    int64 // successful BSYNC reconvergence events
	MaxLiveSubwarps   int64 // maximum concurrently live subwarps observed in any warp

	// Subwarp Interleaving events.
	SubwarpStalls  int64 // subwarp-stall transitions (ACTIVE -> STALLED)
	SubwarpWakeups int64 // subwarp-wakeup transitions (STALLED -> READY)
	SubwarpSelects int64 // subwarp-select transitions (READY -> ACTIVE)
	SubwarpYields  int64 // subwarp-yield transitions (ACTIVE -> READY)
	SelectBusy     int64 // cycles spent paying the subwarp switch latency
	TSTOverflow    int64 // stall demotions rejected because the TST was full

	// Memory system.
	L1DAccesses  int64
	L1DMisses    int64
	L0IAccesses  int64
	L0IMisses    int64
	L1IAccesses  int64
	L1IMisses    int64
	LinesFetched int64 // coalesced data line requests issued

	// RT core.
	RTTraces         int64 // TraceRay operations issued
	RTTraversalSteps int64 // total BVH node visits performed by the RT core
}

// Merge folds o into c: counts add, Cycles and MaxLiveSubwarps take the
// maximum.
func (c *Counters) Merge(o Counters) {
	if o.Cycles > c.Cycles {
		c.Cycles = o.Cycles
	}
	if o.MaxLiveSubwarps > c.MaxLiveSubwarps {
		c.MaxLiveSubwarps = o.MaxLiveSubwarps
	}
	c.IssuedInstrs += o.IssuedInstrs
	c.IssueCycles += o.IssueCycles
	c.IdleCycles += o.IdleCycles
	c.ActiveThreads += o.ActiveThreads
	c.ExposedLoadStalls += o.ExposedLoadStalls
	c.ExposedLoadStallsDivergent += o.ExposedLoadStallsDivergent
	c.FetchStallCycles += o.FetchStallCycles
	c.ExposedFetchStalls += o.ExposedFetchStalls
	c.BarrierStallCycles += o.BarrierStallCycles
	c.IdleLoadCycles += o.IdleLoadCycles
	c.IdleFetchCycles += o.IdleFetchCycles
	c.IdleSwitchCycles += o.IdleSwitchCycles
	c.IdleBarrierCycles += o.IdleBarrierCycles
	c.IdleNoWarpCycles += o.IdleNoWarpCycles
	c.DivergentBranches += o.DivergentBranches
	c.Reconvergences += o.Reconvergences
	c.SubwarpStalls += o.SubwarpStalls
	c.SubwarpWakeups += o.SubwarpWakeups
	c.SubwarpSelects += o.SubwarpSelects
	c.SubwarpYields += o.SubwarpYields
	c.SelectBusy += o.SelectBusy
	c.TSTOverflow += o.TSTOverflow
	c.L1DAccesses += o.L1DAccesses
	c.L1DMisses += o.L1DMisses
	c.L0IAccesses += o.L0IAccesses
	c.L0IMisses += o.L0IMisses
	c.L1IAccesses += o.L1IAccesses
	c.L1IMisses += o.L1IMisses
	c.LinesFetched += o.LinesFetched
	c.RTTraces += o.RTTraces
	c.RTTraversalSteps += o.RTTraversalSteps
}

// Derived holds the normalized metrics the paper's figures report.
type Derived struct {
	Cycles             int64
	IPC                float64 // issued instructions per block-cycle
	ExposedStallFrac   float64 // exposed load-to-use stalls / kernel time (Fig. 3)
	DivergentStallFrac float64 // divergent exposed stalls / kernel time (Fig. 3)
	FetchStallFrac     float64 // exposed fetch stalls / kernel time
	SIMTEfficiency     float64 // active threads per issued instruction / 32
	L1DMissRate        float64
	L0IMissRate        float64
	AvgTraversalSteps  float64 // BVH node visits per traced ray
}

// Derive computes the normalized metrics from raw counters. blocks is
// the number of processing blocks the per-block counters were summed
// over; it converts summed per-block cycle counts into fractions of the
// (max) kernel time.
func (c Counters) Derive(blocks int) Derived {
	d := Derived{Cycles: c.Cycles}
	if c.Cycles > 0 && blocks > 0 {
		denom := float64(c.Cycles) * float64(blocks)
		d.IPC = float64(c.IssuedInstrs) / denom
		d.ExposedStallFrac = float64(c.ExposedLoadStalls) / denom
		d.DivergentStallFrac = float64(c.ExposedLoadStallsDivergent) / denom
		d.FetchStallFrac = float64(c.ExposedFetchStalls) / denom
	}
	if c.IssuedInstrs > 0 {
		d.SIMTEfficiency = float64(c.ActiveThreads) / float64(c.IssuedInstrs) / 32
	}
	if c.L1DAccesses > 0 {
		d.L1DMissRate = float64(c.L1DMisses) / float64(c.L1DAccesses)
	}
	if c.L0IAccesses > 0 {
		d.L0IMissRate = float64(c.L0IMisses) / float64(c.L0IAccesses)
	}
	if c.RTTraces > 0 {
		d.AvgTraversalSteps = float64(c.RTTraversalSteps) / float64(c.RTTraces)
	}
	return d
}

// Speedup returns the relative speedup of 'test' over 'base' as a
// fraction (0.063 == +6.3%). It returns 0 when test has no cycles.
func Speedup(base, test Counters) float64 {
	if test.Cycles <= 0 || base.Cycles <= 0 {
		return 0
	}
	return float64(base.Cycles)/float64(test.Cycles) - 1
}

// Reduction returns the fractional reduction of a metric from base to
// test (0.25 == 25% lower in test). Zero base yields zero.
func Reduction(base, test int64) float64 {
	if base <= 0 {
		return 0
	}
	return 1 - float64(test)/float64(base)
}

// MeanSpeedup aggregates per-application speedup fractions with the
// arithmetic mean of speedup percentages, matching how the paper reports
// "average speedup of 6.3%".
func MeanSpeedup(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range speedups {
		sum += s
	}
	return sum / float64(len(speedups))
}

// GeoMeanSpeedup is a misnamed alias of MeanSpeedup: despite the name
// it has always computed the arithmetic mean.
//
// Deprecated: use MeanSpeedup.
func GeoMeanSpeedup(speedups []float64) float64 { return MeanSpeedup(speedups) }

// StallAttribution decomposes a run's idle cycles into the five
// attribution buckets and renders a paper-style table. The bucket rows
// sum to IdleCycles by construction; the "% time" column is relative to
// all block-cycles (issue + idle).
func StallAttribution(c Counters) *Table {
	idle := c.IdleCycles
	total := c.IssueCycles + c.IdleCycles
	frac := func(n, d int64) string {
		if d == 0 {
			return "0.0%"
		}
		return Percent(float64(n) / float64(d))
	}
	tbl := NewTable("Idle-cycle attribution", "bucket", "cycles", "% idle", "% time")
	for _, row := range []struct {
		name string
		v    int64
	}{
		{"load-to-use stall", c.IdleLoadCycles},
		{"instruction fetch", c.IdleFetchCycles},
		{"subwarp switch", c.IdleSwitchCycles},
		{"barrier wait", c.IdleBarrierCycles},
		{"no warp", c.IdleNoWarpCycles},
	} {
		tbl.AddRow(row.name, fmt.Sprintf("%d", row.v), frac(row.v, idle), frac(row.v, total))
	}
	tbl.AddRow("total idle", fmt.Sprintf("%d", idle), frac(idle, idle), frac(idle, total))
	return tbl
}

// Percent formats a fraction as a percentage string, e.g. "6.3%".
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Table is a lightweight text table used by the experiment harness to
// print paper-style rows.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row. Short rows are padded with empty cells; rows
// longer than the header keep every cell and grow the rendered table
// (earlier versions silently truncated them).
func (t *Table) AddRow(cells ...string) {
	n := len(cells)
	if n < len(t.Header) {
		n = len(t.Header)
	}
	row := make([]string, n)
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// numCols returns the widest row length across header and data rows.
func (t *Table) numCols() int {
	n := len(t.Header)
	for _, r := range t.rows {
		if len(r) > n {
			n = len(r)
		}
	}
	return n
}

// numericPrefix parses the leading numeric value of a cell, accepting
// forms like "600", "-3", "+6.3%", "1234 cy". ok is false when the cell
// has no numeric prefix.
func numericPrefix(s string) (v float64, ok bool) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "+"))
	end := 0
	seenDot := false
	for i, r := range s {
		if r >= '0' && r <= '9' {
			end = i + 1
			continue
		}
		if r == '-' && i == 0 {
			continue
		}
		if r == '.' && !seenDot {
			seenDot = true
			continue
		}
		break
	}
	if end == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	return v, err == nil
}

// SortRows orders rows by the given column. When every non-empty cell
// in the column has a numeric prefix (plain counts, "6.3%", "600 cy"),
// rows order by value; otherwise ordering is lexicographic. Empty and
// missing cells sort last.
func (t *Table) SortRows(col int) {
	if col < 0 || col >= t.numCols() {
		return
	}
	cell := func(r []string) (string, bool) {
		if col >= len(r) || r[col] == "" {
			return "", false
		}
		return r[col], true
	}
	numeric := false
	for _, r := range t.rows {
		c, present := cell(r)
		if !present {
			continue
		}
		if _, ok := numericPrefix(c); !ok {
			numeric = false
			break
		}
		numeric = true
	}
	sort.SliceStable(t.rows, func(i, j int) bool {
		ci, iok := cell(t.rows[i])
		cj, jok := cell(t.rows[j])
		if iok != jok {
			return iok // rows with a value come first
		}
		if !iok {
			return false
		}
		if numeric {
			vi, _ := numericPrefix(ci)
			vj, _ := numericPrefix(cj)
			return vi < vj
		}
		return ci < cj
	})
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, t.numCols())
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
