// Package stats collects and aggregates simulation counters.
//
// Counters are plain int64 fields so hot-path increments stay cheap;
// aggregation across processing blocks, SMs and runs happens through
// Merge. Derived metrics (speedups, normalized stall fractions — the
// quantities the paper's figures report) live on Derived.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is the set of raw event counts one simulation produces.
// Per-processing-block counters are summed into SM- and GPU-level
// totals via Merge; Cycles is maxed, since blocks run concurrently.
type Counters struct {
	// Cycles is the simulated execution time. On Merge the maximum is
	// kept: the kernel finishes when its slowest component finishes.
	Cycles int64

	// Issue statistics.
	IssuedInstrs  int64 // instructions issued to the datapath
	IssueCycles   int64 // cycles in which the block issued an instruction
	IdleCycles    int64 // cycles with no warp able to issue
	ActiveThreads int64 // sum over issued instructions of participating threads

	// Exposed stall characterisation (the paper's Fig. 3 metric):
	// cycles when no warp in the block can issue and at least one live
	// warp waits on an outstanding load/texture scoreboard.
	ExposedLoadStalls          int64
	ExposedLoadStallsDivergent int64 // subset attributed to divergent code blocks
	FetchStallCycles           int64 // cycles the issue-selected warp waited on instruction fetch
	ExposedFetchStalls         int64 // idle cycles attributable to instruction fetch misses
	BarrierStallCycles         int64 // idle cycles where all warps sat at BSYNC/blocked

	// Divergence statistics.
	DivergentBranches int64 // branch executions that splintered the warp
	Reconvergences    int64 // successful BSYNC reconvergence events
	MaxLiveSubwarps   int64 // maximum concurrently live subwarps observed in any warp

	// Subwarp Interleaving events.
	SubwarpStalls  int64 // subwarp-stall transitions (ACTIVE -> STALLED)
	SubwarpWakeups int64 // subwarp-wakeup transitions (STALLED -> READY)
	SubwarpSelects int64 // subwarp-select transitions (READY -> ACTIVE)
	SubwarpYields  int64 // subwarp-yield transitions (ACTIVE -> READY)
	SelectBusy     int64 // cycles spent paying the subwarp switch latency
	TSTOverflow    int64 // stall demotions rejected because the TST was full

	// Memory system.
	L1DAccesses  int64
	L1DMisses    int64
	L0IAccesses  int64
	L0IMisses    int64
	L1IAccesses  int64
	L1IMisses    int64
	LinesFetched int64 // coalesced data line requests issued

	// RT core.
	RTTraces         int64 // TraceRay operations issued
	RTTraversalSteps int64 // total BVH node visits performed by the RT core
}

// Merge folds o into c: counts add, Cycles and MaxLiveSubwarps take the
// maximum.
func (c *Counters) Merge(o Counters) {
	if o.Cycles > c.Cycles {
		c.Cycles = o.Cycles
	}
	if o.MaxLiveSubwarps > c.MaxLiveSubwarps {
		c.MaxLiveSubwarps = o.MaxLiveSubwarps
	}
	c.IssuedInstrs += o.IssuedInstrs
	c.IssueCycles += o.IssueCycles
	c.IdleCycles += o.IdleCycles
	c.ActiveThreads += o.ActiveThreads
	c.ExposedLoadStalls += o.ExposedLoadStalls
	c.ExposedLoadStallsDivergent += o.ExposedLoadStallsDivergent
	c.FetchStallCycles += o.FetchStallCycles
	c.ExposedFetchStalls += o.ExposedFetchStalls
	c.BarrierStallCycles += o.BarrierStallCycles
	c.DivergentBranches += o.DivergentBranches
	c.Reconvergences += o.Reconvergences
	c.SubwarpStalls += o.SubwarpStalls
	c.SubwarpWakeups += o.SubwarpWakeups
	c.SubwarpSelects += o.SubwarpSelects
	c.SubwarpYields += o.SubwarpYields
	c.SelectBusy += o.SelectBusy
	c.TSTOverflow += o.TSTOverflow
	c.L1DAccesses += o.L1DAccesses
	c.L1DMisses += o.L1DMisses
	c.L0IAccesses += o.L0IAccesses
	c.L0IMisses += o.L0IMisses
	c.L1IAccesses += o.L1IAccesses
	c.L1IMisses += o.L1IMisses
	c.LinesFetched += o.LinesFetched
	c.RTTraces += o.RTTraces
	c.RTTraversalSteps += o.RTTraversalSteps
}

// Derived holds the normalized metrics the paper's figures report.
type Derived struct {
	Cycles             int64
	IPC                float64 // issued instructions per block-cycle
	ExposedStallFrac   float64 // exposed load-to-use stalls / kernel time (Fig. 3)
	DivergentStallFrac float64 // divergent exposed stalls / kernel time (Fig. 3)
	FetchStallFrac     float64 // exposed fetch stalls / kernel time
	SIMTEfficiency     float64 // active threads per issued instruction / 32
	L1DMissRate        float64
	L0IMissRate        float64
	AvgTraversalSteps  float64 // BVH node visits per traced ray
}

// Derive computes the normalized metrics from raw counters. blocks is
// the number of processing blocks the per-block counters were summed
// over; it converts summed per-block cycle counts into fractions of the
// (max) kernel time.
func (c Counters) Derive(blocks int) Derived {
	d := Derived{Cycles: c.Cycles}
	if c.Cycles > 0 && blocks > 0 {
		denom := float64(c.Cycles) * float64(blocks)
		d.IPC = float64(c.IssuedInstrs) / denom
		d.ExposedStallFrac = float64(c.ExposedLoadStalls) / denom
		d.DivergentStallFrac = float64(c.ExposedLoadStallsDivergent) / denom
		d.FetchStallFrac = float64(c.ExposedFetchStalls) / denom
	}
	if c.IssuedInstrs > 0 {
		d.SIMTEfficiency = float64(c.ActiveThreads) / float64(c.IssuedInstrs) / 32
	}
	if c.L1DAccesses > 0 {
		d.L1DMissRate = float64(c.L1DMisses) / float64(c.L1DAccesses)
	}
	if c.L0IAccesses > 0 {
		d.L0IMissRate = float64(c.L0IMisses) / float64(c.L0IAccesses)
	}
	if c.RTTraces > 0 {
		d.AvgTraversalSteps = float64(c.RTTraversalSteps) / float64(c.RTTraces)
	}
	return d
}

// Speedup returns the relative speedup of 'test' over 'base' as a
// fraction (0.063 == +6.3%). It returns 0 when test has no cycles.
func Speedup(base, test Counters) float64 {
	if test.Cycles <= 0 || base.Cycles <= 0 {
		return 0
	}
	return float64(base.Cycles)/float64(test.Cycles) - 1
}

// Reduction returns the fractional reduction of a metric from base to
// test (0.25 == 25% lower in test). Zero base yields zero.
func Reduction(base, test int64) float64 {
	if base <= 0 {
		return 0
	}
	return 1 - float64(test)/float64(base)
}

// GeoMeanSpeedup aggregates per-application speedup fractions with the
// arithmetic mean of speedup percentages, matching how the paper reports
// "average speedup of 6.3%".
func GeoMeanSpeedup(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range speedups {
		sum += s
	}
	return sum / float64(len(speedups))
}

// Percent formats a fraction as a percentage string, e.g. "6.3%".
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// Table is a lightweight text table used by the experiment harness to
// print paper-style rows.
type Table struct {
	Title  string
	Header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows added so far.
func (t *Table) NumRows() int { return len(t.rows) }

// SortRows orders rows by the given column (lexicographically).
func (t *Table) SortRows(col int) {
	if col < 0 || col >= len(t.Header) {
		return
	}
	sort.SliceStable(t.rows, func(i, j int) bool { return t.rows[i][col] < t.rows[j][col] })
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
