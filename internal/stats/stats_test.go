package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMergeAddsCounts(t *testing.T) {
	a := Counters{Cycles: 100, IssuedInstrs: 10, ExposedLoadStalls: 5, L1DMisses: 2}
	b := Counters{Cycles: 80, IssuedInstrs: 7, ExposedLoadStalls: 3, L1DMisses: 1}
	a.Merge(b)
	if a.Cycles != 100 {
		t.Errorf("Cycles = %d, want max 100", a.Cycles)
	}
	if a.IssuedInstrs != 17 || a.ExposedLoadStalls != 8 || a.L1DMisses != 3 {
		t.Errorf("sums wrong: %+v", a)
	}
}

func TestMergeTakesMaxCycles(t *testing.T) {
	a := Counters{Cycles: 50}
	a.Merge(Counters{Cycles: 200})
	if a.Cycles != 200 {
		t.Errorf("Cycles = %d, want 200", a.Cycles)
	}
}

func TestMergeTakesMaxSubwarps(t *testing.T) {
	a := Counters{MaxLiveSubwarps: 2}
	a.Merge(Counters{MaxLiveSubwarps: 7})
	a.Merge(Counters{MaxLiveSubwarps: 3})
	if a.MaxLiveSubwarps != 7 {
		t.Errorf("MaxLiveSubwarps = %d, want 7", a.MaxLiveSubwarps)
	}
}

func TestDerive(t *testing.T) {
	c := Counters{
		Cycles:                     1000,
		IssuedInstrs:               2000,
		ActiveThreads:              2000 * 16,
		ExposedLoadStalls:          400,
		ExposedLoadStallsDivergent: 100,
		L1DAccesses:                100,
		L1DMisses:                  25,
		RTTraces:                   10,
		RTTraversalSteps:           50,
	}
	d := c.Derive(4)
	if got, want := d.IPC, 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("IPC = %v, want %v", got, want)
	}
	if got, want := d.ExposedStallFrac, 0.1; math.Abs(got-want) > 1e-9 {
		t.Errorf("ExposedStallFrac = %v, want %v", got, want)
	}
	if got, want := d.DivergentStallFrac, 0.025; math.Abs(got-want) > 1e-9 {
		t.Errorf("DivergentStallFrac = %v, want %v", got, want)
	}
	if got, want := d.SIMTEfficiency, 0.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("SIMTEfficiency = %v, want %v", got, want)
	}
	if got, want := d.L1DMissRate, 0.25; math.Abs(got-want) > 1e-9 {
		t.Errorf("L1DMissRate = %v, want %v", got, want)
	}
	if got, want := d.AvgTraversalSteps, 5.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("AvgTraversalSteps = %v, want %v", got, want)
	}
}

func TestDeriveZeroSafe(t *testing.T) {
	var c Counters
	d := c.Derive(0)
	if d.IPC != 0 || d.ExposedStallFrac != 0 || d.L1DMissRate != 0 {
		t.Errorf("zero counters should derive zeros: %+v", d)
	}
}

func TestSpeedup(t *testing.T) {
	base := Counters{Cycles: 1063}
	test := Counters{Cycles: 1000}
	got := Speedup(base, test)
	if math.Abs(got-0.063) > 1e-9 {
		t.Errorf("Speedup = %v, want 0.063", got)
	}
	if Speedup(Counters{}, test) != 0 || Speedup(base, Counters{}) != 0 {
		t.Error("Speedup with zero cycles should be 0")
	}
	// Slowdown is negative.
	if Speedup(test, base) >= 0 {
		t.Error("slowdown should be negative")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 75); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("Reduction = %v, want 0.25", got)
	}
	if Reduction(0, 10) != 0 {
		t.Error("zero base should return 0")
	}
	if got := Reduction(100, 150); math.Abs(got+0.5) > 1e-9 {
		t.Errorf("increase should be negative, got %v", got)
	}
}

func TestMeanSpeedup(t *testing.T) {
	if MeanSpeedup(nil) != 0 {
		t.Error("empty mean should be 0")
	}
	got := MeanSpeedup([]float64{0.02, 0.04, 0.06})
	if math.Abs(got-0.04) > 1e-9 {
		t.Errorf("mean = %v, want 0.04", got)
	}
	// Deprecated alias must keep returning the same value.
	if GeoMeanSpeedup([]float64{0.02, 0.04, 0.06}) != got {
		t.Error("GeoMeanSpeedup alias diverged from MeanSpeedup")
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.063); got != "6.3%" {
		t.Errorf("Percent = %q, want 6.3%%", got)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Demo", "App", "Speedup")
	tbl.AddRow("BFV1", "19.8%")
	tbl.AddRow("AV1") // short row padded
	s := tbl.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "BFV1") || !strings.Contains(s, "19.8%") {
		t.Errorf("table missing content:\n%s", s)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tbl.NumRows())
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), s)
	}
}

func TestTableSortRows(t *testing.T) {
	tbl := NewTable("", "App", "X")
	tbl.AddRow("MW", "1")
	tbl.AddRow("AV1", "2")
	tbl.AddRow("Ctrl", "3")
	tbl.SortRows(0)
	s := tbl.String()
	if strings.Index(s, "AV1") > strings.Index(s, "Ctrl") || strings.Index(s, "Ctrl") > strings.Index(s, "MW") {
		t.Errorf("rows not sorted:\n%s", s)
	}
	tbl.SortRows(99) // out of range: no-op, must not panic
}

func TestTableAddRowGrows(t *testing.T) {
	tbl := NewTable("", "A", "B")
	tbl.AddRow("x", "y", "extra1", "extra2") // longer than the header
	s := tbl.String()
	for _, want := range []string{"x", "y", "extra1", "extra2"} {
		if !strings.Contains(s, want) {
			t.Errorf("long row lost cell %q:\n%s", want, s)
		}
	}
}

func TestTableSortRowsNumeric(t *testing.T) {
	tbl := NewTable("", "App", "Speedup")
	tbl.AddRow("a", "19.8%")
	tbl.AddRow("b", "2.0%")
	tbl.AddRow("c", "+100.0%")
	tbl.AddRow("d", "-3.5%")
	tbl.SortRows(1)
	s := tbl.String()
	order := []string{"-3.5%", "2.0%", "19.8%", "+100.0%"}
	last := -1
	for _, v := range order {
		at := strings.Index(s, v)
		if at < last {
			t.Fatalf("numeric sort wrong, want order %v:\n%s", order, s)
		}
		last = at
	}
}

func TestTableSortRowsNumericMissingCellsLast(t *testing.T) {
	tbl := NewTable("", "App", "Cycles")
	tbl.AddRow("short") // no cycles cell
	tbl.AddRow("b", "10")
	tbl.AddRow("a", "2")
	tbl.SortRows(1)
	s := tbl.String()
	if strings.Index(s, "a") > strings.Index(s, "b") || strings.Index(s, "short") < strings.Index(s, "b") {
		t.Errorf("missing cells should sort last:\n%s", s)
	}
}

func TestMergeIdleBuckets(t *testing.T) {
	a := Counters{IdleCycles: 10, IdleLoadCycles: 4, IdleFetchCycles: 3, IdleSwitchCycles: 1, IdleBarrierCycles: 1, IdleNoWarpCycles: 1}
	b := Counters{IdleCycles: 6, IdleLoadCycles: 2, IdleFetchCycles: 1, IdleSwitchCycles: 1, IdleBarrierCycles: 1, IdleNoWarpCycles: 1}
	a.Merge(b)
	sum := a.IdleLoadCycles + a.IdleFetchCycles + a.IdleSwitchCycles + a.IdleBarrierCycles + a.IdleNoWarpCycles
	if sum != a.IdleCycles {
		t.Errorf("bucket sum %d != IdleCycles %d after merge", sum, a.IdleCycles)
	}
}

func TestStallAttributionSums(t *testing.T) {
	c := Counters{
		Cycles: 1000, IdleCycles: 600,
		IdleLoadCycles: 300, IdleFetchCycles: 150, IdleSwitchCycles: 100,
		IdleBarrierCycles: 40, IdleNoWarpCycles: 10,
	}
	s := StallAttribution(c).String()
	for _, want := range []string{"load-to-use stall", "instruction fetch", "subwarp switch", "barrier wait", "no warp", "total idle", "100.0%"} {
		if !strings.Contains(s, want) {
			t.Errorf("attribution missing %q:\n%s", want, s)
		}
	}
}

func TestMergeZeroIdentity(t *testing.T) {
	a := Counters{Cycles: 100, IssuedInstrs: 10, MaxLiveSubwarps: 3}
	before := a
	a.Merge(Counters{})
	if a != before {
		t.Errorf("merging the zero value changed counters: %+v != %+v", a, before)
	}
}

// Property: merging is commutative for additive fields and max fields.
func TestQuickMergeCommutative(t *testing.T) {
	f := func(c1, c2 uint16, i1, i2 uint16) bool {
		a := Counters{Cycles: int64(c1), IssuedInstrs: int64(i1)}
		b := Counters{Cycles: int64(c2), IssuedInstrs: int64(i2)}
		x, y := a, b
		x.Merge(b)
		y.Merge(a)
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Speedup(base, test) inverts within rounding when swapped:
// (1+s)*(1+s') == 1.
func TestQuickSpeedupInverse(t *testing.T) {
	f := func(b, tc uint16) bool {
		base := Counters{Cycles: int64(b) + 1}
		test := Counters{Cycles: int64(tc) + 1}
		s1 := Speedup(base, test)
		s2 := Speedup(test, base)
		return math.Abs((1+s1)*(1+s2)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
