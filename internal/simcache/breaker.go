package simcache

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's state.
type BreakerState int32

const (
	// BreakerClosed: the protected backend is healthy; every operation
	// goes through.
	BreakerClosed BreakerState = iota
	// BreakerOpen: consecutive failures exceeded the threshold;
	// operations are skipped entirely until the cooldown passes.
	BreakerOpen
	// BreakerHalfOpen: the cooldown passed; exactly one probe
	// operation is allowed through to test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is the repo's degradation ladder (PR 4) distilled into a
// reusable component: closed -> open after TripAfter consecutive
// failures, open -> half-open after Cooldown, and half-open -> closed
// on a successful probe (or back to open when the probe fails, with a
// fresh cooldown). Resilient uses one to shed a dead disk into
// memory-only serving; internal/cluster uses one per peer so a dead
// worker degrades to "route around the ring" the same way — the
// ladder's shape (trip, cool down, probe, recover) is identical, only
// the protected resource differs.
//
// The zero value is usable: TripAfter defaults to 5, Cooldown to 5s,
// and Clock to time.Now. All methods are safe for concurrent use.
type Breaker struct {
	// TripAfter is the consecutive-failure count that opens the
	// breaker; 0 means 5.
	TripAfter int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe; 0 means 5s.
	Cooldown time.Duration
	// Clock substitutes time.Now in tests.
	Clock func() time.Time
	// OnStateChange, when set, is invoked (outside the breaker's lock)
	// after every transition. Set before the breaker is shared; must be
	// safe for concurrent use.
	OnStateChange func(from, to BreakerState)

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight

	trips, recoveries int64
}

func (b *Breaker) tripAfter() int {
	if b.TripAfter <= 0 {
		return 5
	}
	return b.TripAfter
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 5 * time.Second
	}
	return b.Cooldown
}

func (b *Breaker) now() time.Time {
	if b.Clock == nil {
		return time.Now()
	}
	return b.Clock()
}

// transition moves the breaker to a new state under the lock and
// returns the notifier to run after unlocking (nil when no observer).
func (b *Breaker) transition(to BreakerState) func() {
	from := b.state
	b.state = to
	if b.OnStateChange == nil || from == to {
		return nil
	}
	cb := b.OnStateChange
	return func() { cb(from, to) }
}

// State returns the breaker's current state (after applying any due
// open -> half-open transition).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	var notify func()
	if b.state == BreakerOpen && !b.now().Before(b.openedAt.Add(b.cooldown())) {
		notify = b.transition(BreakerHalfOpen)
		b.probing = false
	}
	s := b.state
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
	return s
}

// Allow reports whether an operation may proceed right now: always
// while closed, exactly one probe while half-open, never while open.
func (b *Breaker) Allow() bool {
	switch b.State() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		b.mu.Lock()
		defer b.mu.Unlock()
		if b.probing {
			return false
		}
		b.probing = true
		return true
	default:
		return false
	}
}

// Succeeded records a successful operation, closing a half-open
// breaker.
func (b *Breaker) Succeeded() {
	b.mu.Lock()
	var notify func()
	b.fails = 0
	if b.state == BreakerHalfOpen {
		notify = b.transition(BreakerClosed)
		b.probing = false
		b.recoveries++
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Failed records an operation that failed terminally (after any
// retries the caller performs).
func (b *Breaker) Failed() {
	b.mu.Lock()
	var notify func()
	switch b.state {
	case BreakerHalfOpen:
		// The probe failed: back to open, restart the cooldown.
		notify = b.transition(BreakerOpen)
		b.openedAt = b.now()
		b.probing = false
		b.trips++
	case BreakerClosed:
		b.fails++
		if b.fails >= b.tripAfter() {
			notify = b.transition(BreakerOpen)
			b.openedAt = b.now()
			b.trips++
		}
	}
	b.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Counts returns the lifetime trip and recovery totals.
func (b *Breaker) Counts() (trips, recoveries int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips, b.recoveries
}
