package simcache

import (
	"hash/fnv"
	"sync"
	"time"
)

// ResilientOptions tunes NewResilient. The zero value gives sane
// serving defaults.
type ResilientOptions struct {
	// Retries is the number of extra attempts after a failed backend
	// operation; 0 means 2 (three attempts total). Negative disables
	// retrying.
	Retries int
	// RetryBase is the backoff ceiling for the first retry; it doubles
	// per attempt up to RetryCap. Sleeps draw uniformly from
	// [0, ceiling) — "full jitter" — so synchronized clients spread
	// out. 0 means 2ms.
	RetryBase time.Duration
	// RetryCap bounds a single backoff sleep. 0 means 50ms.
	RetryCap time.Duration
	// RetryBudget caps the total backoff sleep one operation may
	// accumulate; when spent, the operation fails without further
	// attempts. 0 means 200ms.
	RetryBudget time.Duration
	// TripAfter is the consecutive-failure count that opens the
	// breaker. 0 means 5.
	TripAfter int
	// Cooldown is how long the breaker stays open before allowing a
	// half-open probe. 0 means 5s.
	Cooldown time.Duration
	// MemoryEntries bounds the in-memory LRU that fronts the disk and
	// carries the cache through degraded mode. 0 means 4096.
	MemoryEntries int
	// Seed drives the deterministic jitter sequence. 0 means 1.
	Seed uint64

	// Clock and Sleep substitute time.Now and time.Sleep in tests.
	Clock func() time.Time
	Sleep func(time.Duration)
}

func (o ResilientOptions) withDefaults() ResilientOptions {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 50 * time.Millisecond
	}
	if o.RetryBudget <= 0 {
		o.RetryBudget = 200 * time.Millisecond
	}
	if o.TripAfter <= 0 {
		o.TripAfter = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = 5 * time.Second
	}
	if o.MemoryEntries <= 0 {
		o.MemoryEntries = 4096
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	return o
}

// Resilient hardens a Disk backend for serving: an in-memory LRU
// fronts every operation, transient disk errors are retried with
// exponential backoff and full jitter under a per-operation budget,
// and a circuit breaker trips after consecutive failures so a dead
// disk degrades the cache to memory-only instead of taxing every
// request with doomed I/O and retry sleeps. After the cooldown a
// single half-open probe tests recovery; success closes the breaker
// again.
//
// The degradation is invisible to correctness: a cache may forget,
// never lie. Entries served from either layer carry the disk format's
// checksum guarantee, and a miss merely re-simulates (the determinism
// contract makes the result bit-identical).
type Resilient struct {
	disk *Disk
	mem  Cache
	o    ResilientOptions
	br   *Breaker // the degradation ladder (breaker.go)

	// OnStateChange, when set, is invoked (outside the layer's lock)
	// after every breaker transition, e.g. to feed an operational event
	// ring or a metric. Set before the cache is shared; must be safe
	// for concurrent use.
	OnStateChange func(from, to BreakerState)

	mu      sync.Mutex
	jitterN uint64 // deterministic jitter draw counter

	retries, diskErrors int64
	hits, misses        int64
}

// NewResilient wraps the disk backend. A nil disk yields a memory-only
// cache that reports itself permanently healthy.
func NewResilient(disk *Disk, opts ResilientOptions) *Resilient {
	opts = opts.withDefaults()
	r := &Resilient{
		disk: disk,
		mem:  NewMemory(opts.MemoryEntries),
		o:    opts,
	}
	r.br = &Breaker{
		TripAfter: opts.TripAfter,
		Cooldown:  opts.Cooldown,
		Clock:     opts.Clock,
		// Indirect so callers may set r.OnStateChange after construction
		// (the serving layer wires its hooks post-New).
		OnStateChange: func(from, to BreakerState) {
			if cb := r.OnStateChange; cb != nil {
				cb(from, to)
			}
		},
	}
	return r
}

// Disk exposes the wrapped disk backend (nil for memory-only), so the
// serving layer can attach its corrupt-eviction hook.
func (r *Resilient) Disk() *Disk { return r.disk }

// State returns the breaker's current state (after applying any due
// open -> half-open transition).
func (r *Resilient) State() BreakerState { return r.br.State() }

// Degraded reports that the disk backend is tripped (open or probing
// half-open): the cache is serving from memory only.
func (r *Resilient) Degraded() bool { return r.disk != nil && r.State() != BreakerClosed }

// allow reports whether a disk operation may proceed right now.
func (r *Resilient) allow() bool {
	if r.disk == nil {
		return false
	}
	return r.br.Allow()
}

// succeeded records a successful disk operation.
func (r *Resilient) succeeded() { r.br.Succeeded() }

// failed records a disk operation that exhausted its retries.
func (r *Resilient) failed() {
	r.mu.Lock()
	r.diskErrors++
	r.mu.Unlock()
	r.br.Failed()
}

// jitter returns the deterministic "random" fraction in [0,1) for the
// n-th backoff draw.
func (r *Resilient) jitter() float64 {
	r.mu.Lock()
	r.jitterN++
	n := r.jitterN
	r.mu.Unlock()
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(r.o.Seed >> (8 * i))
		buf[8+i] = byte(n >> (8 * i))
	}
	h.Write(buf[:])
	return float64(h.Sum64()>>11) / (1 << 53)
}

// withRetry runs op, retrying transient failures with exponential
// backoff and full jitter until the attempt count or the sleep budget
// runs out, then reports the breaker outcome.
func (r *Resilient) withRetry(op func() error) error {
	budget := r.o.RetryBudget
	ceiling := r.o.RetryBase
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil {
			r.succeeded()
			return nil
		}
		if attempt >= r.o.Retries || budget <= 0 {
			break
		}
		sleep := time.Duration(r.jitter() * float64(ceiling))
		if sleep > budget {
			sleep = budget
		}
		budget -= sleep
		r.o.Sleep(sleep)
		if ceiling *= 2; ceiling > r.o.RetryCap {
			ceiling = r.o.RetryCap
		}
		r.mu.Lock()
		r.retries++
		r.mu.Unlock()
	}
	r.failed()
	return err
}

// Get serves from the memory layer first, then — breaker permitting —
// from disk, promoting disk hits into memory.
func (r *Resilient) Get(k Key) (Entry, bool) {
	if e, ok := r.mem.Get(k); ok {
		r.mu.Lock()
		r.hits++
		r.mu.Unlock()
		return e, true
	}
	var (
		e  Entry
		ok bool
	)
	if r.allow() {
		err := r.withRetry(func() error {
			var gerr error
			e, ok, gerr = r.disk.TryGet(k)
			return gerr
		})
		if err == nil && ok {
			r.mem.Put(k, e)
			r.mu.Lock()
			r.hits++
			r.mu.Unlock()
			return e, true
		}
	}
	r.mu.Lock()
	r.misses++
	r.mu.Unlock()
	return Entry{}, false
}

// Put stores into the memory layer always, and into disk when the
// breaker permits.
func (r *Resilient) Put(k Key, e Entry) {
	r.mem.Put(k, e)
	if r.allow() {
		r.withRetry(func() error { return r.disk.TryPut(k, e) })
	}
}

// Len reports resident entries: disk when healthy (the superset),
// memory when degraded or memory-only.
func (r *Resilient) Len() int {
	if r.disk != nil && !r.Degraded() {
		return r.disk.Len()
	}
	return r.mem.Len()
}

// Stats merges this layer's traffic counts with the backend's
// corrupt-eviction count and the resilience counters. Hits/Misses are
// counted once per Get at this layer (not double-counted across the
// memory and disk tiers).
func (r *Resilient) Stats() Stats {
	var s Stats
	if r.disk != nil {
		s.Corrupt = r.disk.Stats().Corrupt
	}
	s.Evictions = r.mem.Stats().Evictions
	degraded := r.Degraded() // takes the breaker lock; compute before locking
	s.BreakerTrips, s.BreakerRecoveries = r.br.Counts()
	r.mu.Lock()
	defer r.mu.Unlock()
	s.Hits = r.hits
	s.Misses = r.misses
	s.Retries = r.retries
	s.DiskErrors = r.diskErrors
	s.Degraded = degraded
	return s
}
