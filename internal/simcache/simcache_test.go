package simcache

import (
	"os"
	"path/filepath"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/trace"
	"subwarpsim/internal/workload"
)

func microKernelKey(t *testing.T, cfg config.Config, size int, workloadID string) Key {
	t.Helper()
	k, err := workload.Microbench(workload.DefaultMicrobench(size))
	if err != nil {
		t.Fatal(err)
	}
	return KeyOf(cfg, k, workloadID)
}

func TestKeyDeterministicAndTraceBlind(t *testing.T) {
	cfg := config.Default()
	k1 := microKernelKey(t, cfg, 4, "micro/4")
	k2 := microKernelKey(t, cfg, 4, "micro/4")
	if k1 != k2 {
		t.Fatal("identical inputs must produce identical keys")
	}
	// Attaching the observability recorder must not change the key:
	// tracing does not change results.
	traced := cfg
	traced.Trace = trace.NewRecorder()
	if k3 := microKernelKey(t, traced, 4, "micro/4"); k3 != k1 {
		t.Error("Config.Trace leaked into the cache key")
	}
}

func TestKeySensitivity(t *testing.T) {
	base := microKernelKey(t, config.Default(), 4, "micro/4")
	for name, other := range map[string]Key{
		"SI policy":   microKernelKey(t, config.Default().WithSI(true, config.TriggerHalfStalled), 4, "micro/4"),
		"latency":     microKernelKey(t, func() config.Config { c := config.Default(); c.L1MissLatency = 300; return c }(), 4, "micro/4"),
		"program":     microKernelKey(t, config.Default(), 8, "micro/4"),
		"workload id": microKernelKey(t, config.Default(), 4, "micro/8"),
	} {
		if other == base {
			t.Errorf("changing %s must change the key", name)
		}
	}
}

// TestKeySchedPolicy pins the conditional keying rule: the default
// LRR policy must hash identically to a config that predates the
// SchedPolicy field (so the existing cache corpus stays valid), while
// GTO and WaSP — which change results — must key differently.
func TestKeySchedPolicy(t *testing.T) {
	base := microKernelKey(t, config.Default(), 4, "micro/4")

	lrr := config.Default()
	lrr.SchedPolicy = config.SchedLRR
	if k := microKernelKey(t, lrr, 4, "micro/4"); k != base {
		t.Error("explicit LRR must not change the key (cache-compatibility rule)")
	}

	seen := map[Key]string{base: "lrr"}
	for _, p := range []config.SchedPolicy{config.SchedGTO, config.SchedWaSP} {
		cfg := config.Default()
		cfg.SchedPolicy = p
		k := microKernelKey(t, cfg, 4, "micro/4")
		if prev, dup := seen[k]; dup {
			t.Errorf("policy %v collides with %s", p, prev)
		}
		seen[k] = p.String()
	}
}

func TestKeyParseRoundTrip(t *testing.T) {
	k := microKernelKey(t, config.Default(), 2, "micro/2")
	parsed, err := ParseKey(k.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != k {
		t.Error("ParseKey(String()) must round-trip")
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("bad hex must be rejected")
	}
}

func testEntry(cycles int64) Entry {
	return Entry{
		Policy: "baseline",
		Blocks: 8,
		Counters: stats.Counters{
			Cycles:       cycles,
			IssuedInstrs: 7 * cycles,
			IdleCycles:   cycles / 3,
		},
	}
}

func keyN(n byte) Key {
	var k Key
	k[0] = n
	return k
}

func TestMemoryHitMissEviction(t *testing.T) {
	c := NewMemory(2)
	if _, ok := c.Get(keyN(1)); ok {
		t.Fatal("empty cache must miss")
	}
	c.Put(keyN(1), testEntry(100))
	c.Put(keyN(2), testEntry(200))
	if got, ok := c.Get(keyN(1)); !ok || got.Counters.Cycles != 100 {
		t.Fatalf("Get(1) = %+v, %v", got, ok)
	}
	// Key 1 is now most recently used; inserting key 3 must evict key 2.
	c.Put(keyN(3), testEntry(300))
	if _, ok := c.Get(keyN(2)); ok {
		t.Error("LRU entry must be evicted")
	}
	if _, ok := c.Get(keyN(1)); !ok {
		t.Error("recently used entry must survive eviction")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 1 eviction, 2 hits, 2 misses", s)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestMemoryPutOverwrites(t *testing.T) {
	c := NewMemory(4)
	c.Put(keyN(1), testEntry(100))
	c.Put(keyN(1), testEntry(999))
	if got, _ := c.Get(keyN(1)); got.Counters.Cycles != 999 {
		t.Errorf("overwrite not applied: %+v", got)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestDiskRoundTrip(t *testing.T) {
	c := NewDisk(t.TempDir())
	want := testEntry(4242)
	c.Put(keyN(7), want)
	got, ok := c.Get(keyN(7))
	if !ok {
		t.Fatal("stored entry must be readable")
	}
	if got != want {
		t.Errorf("round trip changed the entry:\n  got  %+v\n  want %+v", got, want)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestDiskCorruptedEntryRejected(t *testing.T) {
	dir := t.TempDir()
	c := NewDisk(dir)
	c.Logf = t.Logf
	c.Put(keyN(9), testEntry(123))
	path := filepath.Join(dir, keyN(9).String()+".json")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte; the checksum no longer matches.
	raw[len(raw)-2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(keyN(9)); ok {
		t.Fatal("corrupted entry must not be served")
	}
	if s := c.Stats(); s.Corrupt != 1 {
		t.Errorf("corrupt count = %d, want 1", s.Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupted entry file must be removed")
	}
	// After the rejection a clean Put serves again.
	c.Put(keyN(9), testEntry(123))
	if _, ok := c.Get(keyN(9)); !ok {
		t.Error("rewritten entry must be served")
	}
}

func TestDiskTruncatedAndForeignFilesRejected(t *testing.T) {
	dir := t.TempDir()
	c := NewDisk(dir)
	c.Logf = t.Logf
	for name, content := range map[string]string{
		keyN(1).String() + ".json": "",                        // empty
		keyN(2).String() + ".json": diskMagic,                 // header only, no newline
		keyN(3).String() + ".json": "otherformat abc\n{}",     // wrong magic
		keyN(4).String() + ".json": diskMagic + " deadbeef\n", // bad checksum
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []Key{keyN(1), keyN(2), keyN(3), keyN(4)} {
		if _, ok := c.Get(k); ok {
			t.Errorf("malformed entry %s must be rejected", k)
		}
	}
	if s := c.Stats(); s.Corrupt != 4 {
		t.Errorf("corrupt count = %d, want 4", s.Corrupt)
	}
}

func TestDiskPersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	c1 := NewDisk(dir)
	c1.Put(keyN(5), testEntry(777))
	c2 := NewDisk(dir)
	if got, ok := c2.Get(keyN(5)); !ok || got.Counters.Cycles != 777 {
		t.Errorf("entry must survive across cache instances: %+v, %v", got, ok)
	}
}

// TestKeyBudget pins the budget-keying rule that closes the ISSUE 9
// collision: a budget-killed partial result must never be served for a
// request with a different (e.g. larger) budget, so enabled budgets
// are part of the content address — while nil or all-zero budgets hash
// exactly like the pre-budget encoding, keeping the existing cache
// corpus valid.
func TestKeyBudget(t *testing.T) {
	cfg := config.Default()
	mk := func(b *sm.Budget) Key {
		k, err := workload.Microbench(workload.DefaultMicrobench(4))
		if err != nil {
			t.Fatal(err)
		}
		k.Budget = b
		return KeyOf(cfg, k, "micro/4")
	}
	base := mk(nil)
	if k := mk(&sm.Budget{}); k != base {
		t.Error("an all-zero (unlimited) budget must not change the key")
	}
	small := mk(&sm.Budget{MaxCycles: 1000})
	large := mk(&sm.Budget{MaxCycles: 1_000_000})
	if small == base || large == base {
		t.Error("an enabled budget must change the key")
	}
	if small == large {
		t.Error("different budgets must not collide: a budget-killed partial result would be served for the larger budget")
	}
	if a, b := mk(&sm.Budget{MaxInstrs: 500}), mk(&sm.Budget{MaxMemBytes: 500}); a == b {
		t.Error("budgets differing only in resource must not collide")
	}
}
