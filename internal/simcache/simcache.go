// Package simcache is a content-addressed cache of simulation
// results. Entries are keyed by a canonical SHA-256 hash of everything
// that determines a run's outcome — the architecture configuration,
// the kernel program text, and the workload identity — and nothing
// that does not (the observability recorder, the worker count). The
// determinism contract established by gpu.RunWorkers makes the scheme
// sound: a simulation is a pure function of (config, program,
// workload), so replaying a stored Entry is bit-identical to
// re-simulating.
package simcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"sync"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
)

// keyVersion is folded into every key; bump it whenever the canonical
// encoding or the simulator's observable semantics change, so stale
// entries from older binaries can never alias fresh ones.
const keyVersion = "sisim-cache-v1"

// Key addresses one cached result: the SHA-256 of the canonical
// (config, program, workload) encoding.
type Key [sha256.Size]byte

// String returns the key as lowercase hex (the disk cache's file name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// RouteHash projects the key onto a 64-bit ring position (its first 8
// bytes, big-endian). SHA-256 output is uniformly distributed, so a
// fixed-window projection is as good a consistent-hashing input as
// rehashing, and the mapping is stable across processes — the property
// cluster routing needs so every coordinator agrees on a key's home
// node.
func (k Key) RouteHash() uint64 { return binary.BigEndian.Uint64(k[:8]) }

// ParseKey decodes a hex key string.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("simcache: bad key %q", s)
	}
	copy(k[:], b)
	return k, nil
}

// Entry is the cached outcome of one simulation: everything needed to
// replay a gpu.Result without the kernel or the configuration object.
type Entry struct {
	// Policy is the config's human-readable SI policy label, kept so
	// serving layers can echo it without rebuilding the config.
	Policy string `json:"policy"`
	// Blocks is the processing-block count, the denominator for derived
	// per-cycle fractions.
	Blocks int `json:"blocks"`
	// Counters is the full raw counter set of the run.
	Counters stats.Counters `json:"counters"`
}

// Derived computes the normalized metrics for the cached result.
func (e Entry) Derived() stats.Derived { return e.Counters.Derive(e.Blocks) }

// KeyOf computes the content address of a simulation. The hash covers,
// in a fixed canonical order:
//
//   - the key-format version;
//   - every architecture and SI policy field of the configuration
//     except Trace (observability does not change results) — written
//     as name=value pairs so a future field can never silently alias
//     an old encoding;
//   - the kernel's semantic content: program register footprint and
//     per-instruction disassembly (not the program name), warp counts,
//     and the functional memory image fingerprint;
//   - workloadID, the caller's name for how the kernel was built
//     (e.g. "app/BFV1" or "micro/4"), which stands in for generator
//     state the kernel object cannot expose (BVH geometry, ray
//     generator parameters).
func KeyOf(cfg config.Config, k *sm.Kernel, workloadID string) Key {
	h := sha256.New()
	writeCanonicalConfig(h, cfg)
	fmt.Fprintf(h, "program.regs=%d;", k.Program.RegsPerThread)
	for pc := 0; pc < k.Program.Len(); pc++ {
		fmt.Fprintf(h, "i%d=%s;", pc, k.Program.At(pc))
	}
	fmt.Fprintf(h, "warps=%d;warpsPerCTA=%d;", k.NumWarps, k.WarpsPerCTA)
	fmt.Fprintf(h, "mem=%#x;", k.Memory.Fingerprint())
	fmt.Fprintf(h, "workload=%s;", workloadID)
	// The gas budget changes the observable outcome (a budget-killed run
	// has different — partial — results than a larger-budget run of the
	// same program), so it is part of the content address. Keyed only
	// when metering is enabled, mirroring the SchedPolicy rule: every
	// pre-budget cache entry stays valid for unmetered runs.
	if b := k.Budget; b.Enabled() {
		fmt.Fprintf(h, "budget=%d,%d,%d;", b.MaxCycles, b.MaxInstrs, b.MaxMemBytes)
	}
	var key Key
	h.Sum(key[:0])
	return key
}

// writeCanonicalConfig streams every result-affecting config field in
// a fixed order. Config.Trace, Config.Faults, and Config.Compiled are
// deliberately excluded: none of them changes simulation results
// (compiled execution is bit-identical to the interpreter by
// contract), so a cached result serves both modes.
func writeCanonicalConfig(w io.Writer, c config.Config) {
	fmt.Fprintf(w, "v=%s;", keyVersion)
	fmt.Fprintf(w, "sms=%d;blocks=%d;slots=%d;", c.NumSMs, c.BlocksPerSM, c.WarpSlotsPerBlock)
	fmt.Fprintf(w, "l1d=%d;l1i=%d;l0i=%d;", c.L1DataBytes, c.L1InstrBytes, c.L0InstrBytes)
	fmt.Fprintf(w, "missLat=%d;hitLat=%d;texLat=%d;", c.L1MissLatency, c.L1DataHitLatency, c.TexExtraLatency)
	fmt.Fprintf(w, "line=%d;ibytes=%d;l0pen=%d;l1ipen=%d;", c.CacheLineBytes, c.InstrBytes, c.L0MissPenalty, c.L1IMissPenalty)
	fmt.Fprintf(w, "math=%d;regs=%d;nsb=%d;", c.MathLatency, c.RegFilePerBlock, c.ScoreboardsPerWarp)
	fmt.Fprintf(w, "rtStep=%d;rtBase=%d;", c.RTStepLatency, c.RTBaseLatency)
	fmt.Fprintf(w, "order=%d;", c.Order)
	fmt.Fprintf(w, "si=%t;yield=%t;yieldThresh=%d;trigger=%d;maxSub=%d;switch=%d;dws=%t;",
		c.SI.Enabled, c.SI.Yield, c.SI.YieldThreshold, c.SI.Trigger,
		c.SI.MaxSubwarps, c.SI.SwitchLatency, c.SI.DWS)
	// SchedPolicy is keyed only when it differs from LRR: the LRR
	// policy is bit-identical to the pre-zoo scheduler (pinned by the
	// golden corpus), so omitting the default keeps every previously
	// written cache entry valid, while any other policy — which does
	// change results — gets its own key space.
	if c.SchedPolicy != config.SchedLRR {
		fmt.Fprintf(w, "sched=%d;", c.SchedPolicy)
	}
}

// Stats counts cache traffic. Corrupt counts entries rejected (and
// discarded) because their stored checksum did not match. The
// resilience fields (retries, breaker transitions, disk errors,
// degraded) are populated only by caches that have those moving parts
// (NewResilient); plain backends report zeros.
type Stats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Corrupt   int64 `json:"corrupt_evictions"`

	// Retries counts backend operations re-attempted after a transient
	// error (each extra attempt is one retry).
	Retries int64 `json:"retries,omitempty"`
	// DiskErrors counts backend operations that failed even after
	// retrying.
	DiskErrors int64 `json:"disk_errors,omitempty"`
	// BreakerTrips counts closed/half-open -> open transitions;
	// BreakerRecoveries counts half-open -> closed transitions.
	BreakerTrips      int64 `json:"breaker_trips,omitempty"`
	BreakerRecoveries int64 `json:"breaker_recoveries,omitempty"`
	// Degraded reports that the breaker is not closed: the cache is
	// serving from memory only.
	Degraded bool `json:"degraded,omitempty"`
}

// HitRate returns hits/(hits+misses), 0 when empty.
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Cache stores simulation results by content address. Implementations
// are safe for concurrent use.
type Cache interface {
	// Get returns the entry for k and whether it was present.
	Get(k Key) (Entry, bool)
	// Put stores the entry for k, evicting older entries if needed.
	Put(k Key, e Entry)
	// Len returns the number of resident entries.
	Len() int
	// Stats returns a snapshot of traffic counters.
	Stats() Stats
}

// memory is a bounded in-memory LRU cache.
type memory struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used; values are *memEntry
	entries map[Key]*list.Element
	stats   Stats
}

type memEntry struct {
	key Key
	val Entry
}

// NewMemory returns an in-memory LRU cache bounded to maxEntries
// (minimum 1).
func NewMemory(maxEntries int) Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &memory{
		max:     maxEntries,
		order:   list.New(),
		entries: make(map[Key]*list.Element),
	}
}

func (m *memory) Get(k Key) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k]
	if !ok {
		m.stats.Misses++
		return Entry{}, false
	}
	m.order.MoveToFront(el)
	m.stats.Hits++
	return el.Value.(*memEntry).val, true
}

func (m *memory) Put(k Key, e Entry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[k]; ok {
		el.Value.(*memEntry).val = e
		m.order.MoveToFront(el)
		return
	}
	m.entries[k] = m.order.PushFront(&memEntry{key: k, val: e})
	for m.order.Len() > m.max {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memEntry).key)
		m.stats.Evictions++
	}
}

func (m *memory) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

func (m *memory) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
