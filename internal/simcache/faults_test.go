package simcache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"subwarpsim/internal/faults"
)

// fakeTime is a manual clock + sleep recorder for breaker/backoff
// tests: no real waiting, fully deterministic.
type fakeTime struct {
	mu    sync.Mutex
	now   time.Time
	slept time.Duration
}

func newFakeTime() *fakeTime {
	return &fakeTime{now: time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeTime) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeTime) Sleep(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.slept += d
}

func (f *fakeTime) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// newResilientForTest builds a Disk (with injected faults) fronted by
// a Resilient with a fake clock.
func newResilientForTest(t *testing.T, spec string, opts ResilientOptions) (*Resilient, *Disk, *fakeTime) {
	t.Helper()
	in, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDisk(t.TempDir())
	d.Faults = in
	d.Logf = t.Logf
	ft := newFakeTime()
	opts.Clock = ft.Now
	opts.Sleep = ft.Sleep
	return NewResilient(d, opts), d, ft
}

// TestRetryRecoversTransientReadErrors: the first two read attempts
// fail injected; the third succeeds, so a Get with two retries serves
// the entry and counts the retries.
func TestRetryRecoversTransientReadErrors(t *testing.T) {
	r, d, ft := newResilientForTest(t, "simcache.disk.read=error(n=2)", ResilientOptions{Retries: 2})
	if err := d.TryPut(keyN(1), testEntry(100)); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(keyN(1))
	if !ok || got.Counters.Cycles != 100 {
		t.Fatalf("Get after transient errors = %+v, %v; want the entry", got, ok)
	}
	s := r.Stats()
	if s.Retries != 2 || s.DiskErrors != 0 {
		t.Errorf("stats = %+v, want 2 retries and 0 disk errors", s)
	}
	if r.State() != BreakerClosed || s.Degraded {
		t.Error("recovered operation must leave the breaker closed")
	}
	if ft.slept == 0 {
		t.Error("retries must back off (recorded sleep is zero)")
	}
}

// TestRetryBudgetCapsSleep: backoff sleeps never exceed the budget
// even with many retries allowed.
func TestRetryBudgetCapsSleep(t *testing.T) {
	r, _, ft := newResilientForTest(t, "simcache.disk.read=error", ResilientOptions{
		Retries: 50, RetryBase: 40 * time.Millisecond, RetryCap: time.Second,
		RetryBudget: 100 * time.Millisecond, TripAfter: 1000,
	})
	r.Get(keyN(1))
	if ft.slept > 100*time.Millisecond {
		t.Errorf("slept %v, beyond the 100ms budget", ft.slept)
	}
	if s := r.Stats(); s.DiskErrors != 1 {
		t.Errorf("stats = %+v, want 1 disk error for the exhausted operation", s)
	}
}

// TestBreakerTripsToMemoryOnly: with the disk hard-down the breaker
// opens after TripAfter consecutive failed operations; afterwards the
// cache serves from memory without touching the disk at all.
func TestBreakerTripsToMemoryOnly(t *testing.T) {
	r, d, _ := newResilientForTest(t,
		"simcache.disk.read=error;simcache.disk.write=error",
		ResilientOptions{Retries: -1, TripAfter: 3, Cooldown: time.Hour})

	// Each Put hits the dead disk once; the third trips the breaker.
	for i := byte(1); i <= 3; i++ {
		r.Put(keyN(i), testEntry(int64(i)))
	}
	if got := r.State(); got != BreakerOpen {
		t.Fatalf("state after %d failures = %v, want open", 3, got)
	}
	if !r.Degraded() {
		t.Fatal("open breaker must report degraded")
	}

	// Degraded mode: memory still serves, and the disk is not touched.
	before := d.Faults.Hits()
	for i := byte(1); i <= 3; i++ {
		if e, ok := r.Get(keyN(i)); !ok || e.Counters.Cycles != int64(i) {
			t.Errorf("degraded Get(%d) = %+v, %v; want memory hit", i, e, ok)
		}
	}
	r.Put(keyN(9), testEntry(9))
	if e, ok := r.Get(keyN(9)); !ok || e.Counters.Cycles != 9 {
		t.Errorf("degraded Put/Get = %+v, %v", e, ok)
	}
	if after := d.Faults.Hits(); !reflect.DeepEqual(before, after) {
		t.Errorf("degraded mode still touched the disk: hits %v -> %v", before, after)
	}

	s := r.Stats()
	if s.BreakerTrips != 1 || s.DiskErrors != 3 || !s.Degraded {
		t.Errorf("stats = %+v, want 1 trip, 3 disk errors, degraded", s)
	}
}

// TestBreakerHalfOpenProbeRecovers: after the cooldown one probe goes
// through; with the fault schedule exhausted it succeeds and closes
// the breaker again.
func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	r, _, ft := newResilientForTest(t, "simcache.disk.write=error(n=2)",
		ResilientOptions{Retries: -1, TripAfter: 2, Cooldown: time.Minute})

	r.Put(keyN(1), testEntry(1))
	r.Put(keyN(2), testEntry(2))
	if got := r.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open after 2 failures", got)
	}

	// Still open before the cooldown: disk ops are skipped.
	r.Put(keyN(3), testEntry(3))
	if got := r.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open before cooldown", got)
	}

	ft.Advance(2 * time.Minute)
	if got := r.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", got)
	}
	// The n=2 error rule is spent, so the probe write succeeds.
	r.Put(keyN(4), testEntry(4))
	if got := r.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", got)
	}
	s := r.Stats()
	if s.BreakerRecoveries != 1 || s.Degraded {
		t.Errorf("stats = %+v, want 1 recovery, not degraded", s)
	}

	// The disk really has the probe's entry.
	if e, ok, err := r.disk.TryGet(keyN(4)); err != nil || !ok || e.Counters.Cycles != 4 {
		t.Errorf("probe write not on disk: %+v %v %v", e, ok, err)
	}
}

// TestBreakerHalfOpenProbeFailureReopens: a failing probe returns the
// breaker to open and restarts the cooldown.
func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	r, _, ft := newResilientForTest(t, "simcache.disk.write=error",
		ResilientOptions{Retries: -1, TripAfter: 1, Cooldown: time.Minute})
	r.Put(keyN(1), testEntry(1))
	if got := r.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	ft.Advance(time.Minute)
	r.Put(keyN(2), testEntry(2)) // probe fails (error rule is unlimited)
	if got := r.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	if s := r.Stats(); s.BreakerTrips != 2 {
		t.Errorf("trips = %d, want 2 (initial + failed probe)", s.BreakerTrips)
	}
}

// TestPartialWriteDetectedAsCorrupt: an injected torn write lands on
// disk, and the next read rejects it via the checksum, counts a
// corrupt eviction, and does NOT count a backend failure (the disk
// itself is healthy).
func TestPartialWriteDetectedAsCorrupt(t *testing.T) {
	r, d, _ := newResilientForTest(t, "simcache.disk.write=partial(n=1)", ResilientOptions{})
	r.Put(keyN(1), testEntry(111))
	// Drop the memory layer's copy so the Get must go to disk.
	r.mem = NewMemory(4)
	if _, ok := r.Get(keyN(1)); ok {
		t.Fatal("torn write must not be served")
	}
	if s := d.Stats(); s.Corrupt != 1 {
		t.Errorf("disk corrupt evictions = %d, want 1", s.Corrupt)
	}
	s := r.Stats()
	if s.Corrupt != 1 || s.DiskErrors != 0 || s.BreakerTrips != 0 {
		t.Errorf("stats = %+v: corruption must not trip the breaker", s)
	}
	// The evicted file is gone; a clean rewrite serves again.
	r.Put(keyN(1), testEntry(111))
	r.mem = NewMemory(4)
	if e, ok := r.Get(keyN(1)); !ok || e.Counters.Cycles != 111 {
		t.Errorf("rewritten entry = %+v, %v", e, ok)
	}
}

// TestCorruptReadDetected: bit corruption injected on the read path
// trips the checksum the same way.
func TestCorruptReadDetected(t *testing.T) {
	r, d, _ := newResilientForTest(t, "simcache.disk.read=corrupt(n=1)", ResilientOptions{})
	if err := d.TryPut(keyN(2), testEntry(7)); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(keyN(2)); ok {
		t.Fatal("corrupted read must not be served")
	}
	if s := r.Stats(); s.Corrupt != 1 {
		t.Errorf("stats = %+v, want 1 corrupt eviction", s)
	}
}

// TestCorruptEvictionLogsOnce: the offending key is logged exactly
// once even when corruption recurs.
func TestCorruptEvictionLogsOnce(t *testing.T) {
	dir := t.TempDir()
	d := NewDisk(dir)
	var logs []string
	d.Logf = func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	}
	path := filepath.Join(dir, keyN(3).String()+".json")
	for i := 0; i < 2; i++ {
		if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Get(keyN(3)); ok {
			t.Fatal("garbage must not be served")
		}
	}
	if len(logs) != 1 {
		t.Fatalf("corrupt key logged %d times, want once: %v", len(logs), logs)
	}
	if !strings.Contains(logs[0], keyN(3).String()) {
		t.Errorf("log %q must name the key", logs[0])
	}
	if s := d.Stats(); s.Corrupt != 2 {
		t.Errorf("corrupt evictions = %d, want 2 (counter keeps counting)", s.Corrupt)
	}
	// A different key gets its own line.
	if err := os.WriteFile(filepath.Join(dir, keyN(4).String()+".json"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	d.Get(keyN(4))
	if len(logs) != 2 {
		t.Errorf("second corrupt key logged %d times total, want 2", len(logs))
	}
}

// TestDiskIOErrorsAreNotMisses: a backend that fails (here: the cache
// "directory" is a regular file) surfaces errors from TryGet/TryPut
// rather than masquerading as misses, while plain Get/Put stay
// interface-compatible and swallow them.
func TestDiskIOErrorsAreNotMisses(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	d := NewDisk(filepath.Join(file, "cache"))
	if err := d.TryPut(keyN(1), testEntry(1)); err == nil {
		t.Error("TryPut into a file-backed path must error")
	}
	if _, ok := d.Get(keyN(1)); ok {
		t.Error("Get must degrade the error to a miss")
	}
}

// TestResilientMemoryOnly: a nil disk is a pure memory cache that is
// never degraded.
func TestResilientMemoryOnly(t *testing.T) {
	r := NewResilient(nil, ResilientOptions{MemoryEntries: 2})
	r.Put(keyN(1), testEntry(1))
	if e, ok := r.Get(keyN(1)); !ok || e.Counters.Cycles != 1 {
		t.Errorf("memory-only Get = %+v, %v", e, ok)
	}
	if r.Degraded() {
		t.Error("memory-only cache must not report degraded")
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1", r.Len())
	}
}

// TestFaultsReplayDeterministic is the replay guarantee at the cache
// layer: the same seed over the same operation sequence produces the
// identical outcome vector and the identical fault schedule,
// byte for byte.
func TestFaultsReplayDeterministic(t *testing.T) {
	spec := "seed=11;simcache.disk.read=error(p=0.4);simcache.disk.write=error(p=0.3)"
	run := func() (outcomes []string, events []faults.Event) {
		in, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDisk(t.TempDir())
		d.Faults = in
		d.Logf = t.Logf
		r := NewResilient(d, ResilientOptions{
			Retries: 1, TripAfter: 4, Cooldown: time.Hour,
			Clock: newFakeTime().Now, Sleep: func(time.Duration) {},
		})
		for i := 0; i < 30; i++ {
			k := keyN(byte(i % 7))
			if i%3 == 0 {
				r.Put(k, testEntry(int64(i)))
				outcomes = append(outcomes, fmt.Sprintf("put%d:%v", i, r.State()))
			} else {
				e, ok := r.Get(k)
				outcomes = append(outcomes, fmt.Sprintf("get%d:%v:%d:%v", i, ok, e.Counters.Cycles, r.State()))
			}
		}
		st := r.Stats()
		outcomes = append(outcomes, fmt.Sprintf("stats:%+v", st))
		return outcomes, in.Events()
	}
	o1, e1 := run()
	o2, e2 := run()
	if !reflect.DeepEqual(o1, o2) {
		t.Errorf("outcome vectors differ between identically-seeded runs:\n  a: %v\n  b: %v", o1, o2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Errorf("fault schedules differ between identically-seeded runs:\n  a: %+v\n  b: %+v", e1, e2)
	}
	if len(e1) == 0 {
		t.Error("chaos schedule fired no faults; the test is vacuous")
	}
}
