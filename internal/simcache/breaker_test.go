package simcache

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestBreakerLadder(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var transitions []string
	b := &Breaker{
		TripAfter: 3,
		Cooldown:  10 * time.Second,
		Clock:     clk.now,
		OnStateChange: func(from, to BreakerState) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	}

	if got := b.State(); got != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}

	// Two failures: still closed (TripAfter is 3).
	b.Failed()
	b.Failed()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 2 failures state = %v, want closed", got)
	}
	// A success resets the consecutive count.
	b.Succeeded()
	b.Failed()
	b.Failed()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("success must reset consecutive failures; state = %v", got)
	}

	// Third consecutive failure trips it.
	b.Failed()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after trip state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker must not allow")
	}

	// Cooldown elapses: half-open, exactly one probe.
	clk.advance(11 * time.Second)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("after cooldown state = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must allow one probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker must allow only one probe")
	}

	// Probe fails: back to open with a fresh cooldown.
	b.Failed()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after failed probe state = %v, want open", got)
	}
	clk.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown after failed probe must re-open a probe slot")
	}

	// Probe succeeds: closed again, recovery counted.
	b.Succeeded()
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after recovery state = %v, want closed", got)
	}
	trips, recoveries := b.Counts()
	if trips != 2 || recoveries != 1 {
		t.Fatalf("Counts() = (%d, %d), want (2, 1)", trips, recoveries)
	}

	want := []string{
		"closed->open",
		"open->half-open",
		"half-open->open",
		"open->half-open",
		"half-open->closed",
	}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition[%d] = %q, want %q (all: %v)", i, transitions[i], want[i], transitions)
		}
	}
}

func TestBreakerZeroValueDefaults(t *testing.T) {
	var b Breaker
	if !b.Allow() {
		t.Fatal("zero-value breaker must start closed and allow")
	}
	// Default TripAfter is 5.
	for i := 0; i < 4; i++ {
		b.Failed()
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after 4 failures state = %v, want closed (default TripAfter 5)", got)
	}
	b.Failed()
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after 5 failures state = %v, want open", got)
	}
}

func TestBreakerStateString(t *testing.T) {
	cases := map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
		BreakerState(9): "unknown",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("BreakerState(%d).String() = %q, want %q", s, got, want)
		}
	}
}

func TestKeyRouteHash(t *testing.T) {
	var k Key
	copy(k[:], []byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0xff})
	if got, want := k.RouteHash(), uint64(0x0102030405060708); got != want {
		t.Fatalf("RouteHash() = %#x, want %#x", got, want)
	}
	// Stable across calls and independent of bytes past the window.
	k[31] = 0xaa
	if got := k.RouteHash(); got != uint64(0x0102030405060708) {
		t.Fatalf("RouteHash() must depend only on the first 8 bytes; got %#x", got)
	}
}
