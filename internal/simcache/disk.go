package simcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// diskMagic is the first token of every cache file; files without it
// are rejected as corrupt.
const diskMagic = "sisimcache1"

// disk is a directory-backed cache: one file per key, named by the
// key's hex form. Each file is self-checking — a header line carrying
// the SHA-256 of the JSON payload — so truncated or bit-flipped
// entries are detected, rejected, and removed rather than served.
type disk struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// NewDisk returns a cache persisting entries under dir, creating it if
// needed. Unlike the in-memory cache it is unbounded: sweeping old
// entries is an operator concern (the files are plain content-named
// JSON).
func NewDisk(dir string) (Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("simcache: %w", err)
	}
	return &disk{dir: dir}, nil
}

func (d *disk) path(k Key) string { return filepath.Join(d.dir, k.String()+".json") }

func (d *disk) Get(k Key) (Entry, bool) {
	raw, err := os.ReadFile(d.path(k))
	if err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return Entry{}, false
	}
	e, err := decodeEntry(raw)
	if err != nil {
		// A corrupted entry must never be served; remove it so the next
		// Put can rewrite it cleanly.
		os.Remove(d.path(k))
		d.count(func(s *Stats) { s.Corrupt++; s.Misses++ })
		return Entry{}, false
	}
	d.count(func(s *Stats) { s.Hits++ })
	return e, true
}

func (d *disk) Put(k Key, e Entry) {
	raw, err := encodeEntry(e)
	if err != nil {
		return
	}
	// Write-then-rename keeps concurrent readers from ever observing a
	// half-written file.
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), d.path(k)); err != nil {
		os.Remove(tmp.Name())
	}
}

func (d *disk) Len() int {
	names, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(names)
}

func (d *disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *disk) count(f func(*Stats)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(&d.stats)
}

// encodeEntry renders "<magic> <sha256-of-payload>\n<payload JSON>".
func encodeEntry(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s\n", diskMagic, hex.EncodeToString(sum[:]))
	return append([]byte(header), payload...), nil
}

// decodeEntry verifies the checksum header and unmarshals the payload.
func decodeEntry(raw []byte) (Entry, error) {
	var e Entry
	header, payload, found := bytes.Cut(raw, []byte("\n"))
	if !found {
		return e, fmt.Errorf("simcache: entry missing header")
	}
	magic, sumHex, found := bytes.Cut(header, []byte(" "))
	if !found || string(magic) != diskMagic {
		return e, fmt.Errorf("simcache: bad entry magic %q", magic)
	}
	sum := sha256.Sum256(payload)
	if string(sumHex) != hex.EncodeToString(sum[:]) {
		return e, fmt.Errorf("simcache: entry checksum mismatch")
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, fmt.Errorf("simcache: entry payload: %w", err)
	}
	return e, nil
}
