package simcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"subwarpsim/internal/faults"
)

// diskMagic is the first token of every cache file; files without it
// are rejected as corrupt.
const diskMagic = "sisimcache1"

// Disk is a directory-backed cache: one file per key, named by the
// key's hex form. Each file is self-checking — a header line carrying
// the SHA-256 of the JSON payload — so truncated or bit-flipped
// entries are detected, rejected, and removed rather than served.
//
// Disk distinguishes three read outcomes: a hit, a miss (absent or
// corrupt — corrupt entries are evicted, counted, and logged once per
// key), and an I/O error (the backend itself failed). Plain Get/Put
// swallow I/O errors to satisfy Cache; TryGet/TryPut surface them so
// a resilience layer (NewResilient) can retry, count them, and trip a
// circuit breaker.
type Disk struct {
	dir string

	// Faults optionally injects deterministic failures at the
	// SiteDiskRead / SiteDiskWrite sites; nil injects nothing.
	Faults *faults.Injector

	// Logf receives the once-per-key corrupt-eviction reports; nil
	// means the process's default structured logger.
	Logf func(format string, args ...any)

	// OnCorrupt, when set, is invoked (outside the cache's lock) for
	// every corrupt eviction — including repeats of an already-logged
	// key — so the serving layer can count and ring-buffer them. Set
	// before the cache is shared; must be safe for concurrent use.
	OnCorrupt func(k Key, err error)

	mu     sync.Mutex
	stats  Stats
	logged map[Key]struct{}
}

// NewDisk returns a cache persisting entries under dir, creating it
// if possible. Construction never fails: an unusable directory (e.g.
// a read-only volume, or a path through a regular file) surfaces as
// per-operation I/O errors, which the resilience layer degrades on —
// the acceptance mode for serving with a broken disk is memory-only,
// not a dead process. Unlike the in-memory cache a Disk is unbounded:
// sweeping old entries is an operator concern (the files are plain
// content-named JSON).
func NewDisk(dir string) *Disk {
	os.MkdirAll(dir, 0o755) // best effort; ops report failures
	return &Disk{dir: dir, logged: make(map[Key]struct{})}
}

func (d *Disk) path(k Key) string { return filepath.Join(d.dir, k.String()+".json") }

// Get returns the entry for k, treating backend I/O errors as misses
// (standalone CLI behavior; the serving stack uses NewResilient over
// TryGet instead).
func (d *Disk) Get(k Key) (Entry, bool) {
	e, ok, err := d.TryGet(k)
	if err != nil {
		d.count(func(s *Stats) { s.Misses++ })
		return Entry{}, false
	}
	return e, ok
}

// TryGet returns the entry for k, whether it was present, and any
// backend I/O error. A missing entry and a corrupt (evicted) entry
// are both (zero, false, nil): the backend worked, the data was not
// servable, and retrying cannot help. Corrupt entries additionally
// increment the corrupt-evictions counter and are logged once per
// key.
func (d *Disk) TryGet(k Key) (Entry, bool, error) {
	if err := d.Faults.Fire(faults.SiteDiskRead); err != nil {
		return Entry{}, false, fmt.Errorf("simcache: read %s: %w", k, err)
	}
	raw, err := os.ReadFile(d.path(k))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			d.count(func(s *Stats) { s.Misses++ })
			return Entry{}, false, nil
		}
		return Entry{}, false, fmt.Errorf("simcache: read %s: %w", k, err)
	}
	raw = d.Faults.Mangle(faults.SiteDiskRead, raw)
	e, err := decodeEntry(raw)
	if err != nil {
		// A corrupted entry must never be served; remove it so the next
		// Put can rewrite it cleanly, and tell the operator — once per
		// key — what was thrown away.
		os.Remove(d.path(k))
		d.count(func(s *Stats) { s.Corrupt++; s.Misses++ })
		d.logCorrupt(k, err)
		return Entry{}, false, nil
	}
	d.count(func(s *Stats) { s.Hits++ })
	return e, true, nil
}

// logCorrupt reports a corrupt eviction: the OnCorrupt hook fires on
// every eviction, the log line once per key per process.
func (d *Disk) logCorrupt(k Key, err error) {
	d.mu.Lock()
	if d.logged == nil {
		d.logged = make(map[Key]struct{})
	}
	_, seen := d.logged[k]
	d.logged[k] = struct{}{}
	logf := d.Logf
	d.mu.Unlock()
	if d.OnCorrupt != nil {
		d.OnCorrupt(k, err)
	}
	if seen {
		return
	}
	if logf == nil {
		slog.Warn("simcache: evicted corrupt entry", "key", k.String(), "error", err)
		return
	}
	logf("simcache: evicted corrupt entry %s: %v", k, err)
}

// Put stores the entry for k, swallowing backend I/O errors
// (standalone CLI behavior; the serving stack uses NewResilient over
// TryPut instead).
func (d *Disk) Put(k Key, e Entry) { d.TryPut(k, e) }

// TryPut stores the entry for k, surfacing backend I/O errors.
// Write-then-rename keeps concurrent readers from ever observing a
// half-written file; an injected partial/corrupt write damages the
// renamed file's bytes, which the checksum rejects on the next read.
func (d *Disk) TryPut(k Key, e Entry) error {
	if err := d.Faults.Fire(faults.SiteDiskWrite); err != nil {
		return fmt.Errorf("simcache: write %s: %w", k, err)
	}
	raw, err := encodeEntry(e)
	if err != nil {
		return fmt.Errorf("simcache: encode %s: %w", k, err)
	}
	raw = d.Faults.Mangle(faults.SiteDiskWrite, raw)
	tmp, err := os.CreateTemp(d.dir, "put-*")
	if err != nil {
		return fmt.Errorf("simcache: write %s: %w", k, err)
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: write %s: %w", k, errors.Join(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), d.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("simcache: write %s: %w", k, err)
	}
	return nil
}

func (d *Disk) Len() int {
	names, err := filepath.Glob(filepath.Join(d.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(names)
}

func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

func (d *Disk) count(f func(*Stats)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	f(&d.stats)
}

// encodeEntry renders "<magic> <sha256-of-payload>\n<payload JSON>".
func encodeEntry(e Entry) ([]byte, error) {
	payload, err := json.Marshal(e)
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s\n", diskMagic, hex.EncodeToString(sum[:]))
	return append([]byte(header), payload...), nil
}

// decodeEntry verifies the checksum header and unmarshals the payload.
func decodeEntry(raw []byte) (Entry, error) {
	var e Entry
	header, payload, found := bytes.Cut(raw, []byte("\n"))
	if !found {
		return e, fmt.Errorf("simcache: entry missing header")
	}
	magic, sumHex, found := bytes.Cut(header, []byte(" "))
	if !found || string(magic) != diskMagic {
		return e, fmt.Errorf("simcache: bad entry magic %q", magic)
	}
	sum := sha256.Sum256(payload)
	if string(sumHex) != hex.EncodeToString(sum[:]) {
		return e, fmt.Errorf("simcache: entry checksum mismatch")
	}
	if err := json.Unmarshal(payload, &e); err != nil {
		return e, fmt.Errorf("simcache: entry payload: %w", err)
	}
	return e, nil
}
