package tst

import (
	"testing"

	"subwarpsim/internal/bits"
)

func newTable(max int) (*Table, *[bits.WarpSize]int) {
	var pcs [bits.WarpSize]int
	return New(&pcs, max), &pcs
}

func TestStateStrings(t *testing.T) {
	for _, s := range []State{Inactive, Active, Ready, Blocked, Stalled} {
		if s.String() == "" || s.String()[0] == 'S' && s != Stalled {
			// just exercise String; detailed check below
		}
	}
	if Stalled.String() != "STALLED" || Ready.String() != "READY" {
		t.Error("state names should match the paper's")
	}
}

func TestActivateAndMasks(t *testing.T) {
	tab, _ := newTable(32)
	tab.ActivateAll(bits.FirstN(8))
	if tab.Mask(Active) != bits.FirstN(8) {
		t.Errorf("Active mask = %v", tab.Mask(Active))
	}
	if tab.Live() != bits.FirstN(8) {
		t.Errorf("Live = %v", tab.Live())
	}
	if tab.State(0) != Active || tab.State(8) != Inactive {
		t.Error("per-lane states wrong")
	}
}

func TestLiveSubwarps(t *testing.T) {
	tab, pcs := newTable(32)
	tab.ActivateAll(bits.FirstN(4))
	if tab.LiveSubwarps() != 1 {
		t.Errorf("convergent warp: LiveSubwarps = %d", tab.LiveSubwarps())
	}
	pcs[0], pcs[1], pcs[2], pcs[3] = 10, 10, 20, 30
	if tab.LiveSubwarps() != 3 {
		t.Errorf("LiveSubwarps = %d, want 3", tab.LiveSubwarps())
	}
	tab.Exit(bits.FirstN(4))
	if tab.LiveSubwarps() != 0 {
		t.Errorf("exited warp: LiveSubwarps = %d", tab.LiveSubwarps())
	}
}

func TestStallAndWakeup(t *testing.T) {
	tab, _ := newTable(32)
	sub := bits.FirstN(4)
	tab.ActivateAll(sub)
	ok := tab.Stall(sub, 5, func(lane int) int { return 2 })
	if !ok {
		t.Fatal("stall rejected with empty table")
	}
	if tab.Mask(Stalled) != sub {
		t.Fatalf("Stalled mask = %v", tab.Mask(Stalled))
	}
	// Writeback of a different scoreboard does nothing.
	if tab.Writeback(0, 3) {
		t.Error("mismatched sbid should not wake")
	}
	// First matching writeback decrements; second wakes.
	if tab.Writeback(0, 5) {
		t.Error("count 2 -> 1, should not wake yet")
	}
	if !tab.Writeback(0, 5) {
		t.Error("count 1 -> 0, should wake")
	}
	if tab.State(0) != Ready {
		t.Errorf("lane 0 state = %v, want READY", tab.State(0))
	}
	if tab.State(1) != Stalled {
		t.Errorf("lane 1 must remain STALLED")
	}
	// A woken lane ignores further writebacks.
	if tab.Writeback(0, 5) {
		t.Error("Ready lane must not wake again")
	}
}

func TestStallZeroCountGoesReady(t *testing.T) {
	// A lane whose data already returned skips STALLED entirely.
	tab, _ := newTable(32)
	tab.ActivateAll(bits.FirstN(2))
	tab.Stall(bits.FirstN(2), 1, func(lane int) int {
		if lane == 0 {
			return 0
		}
		return 1
	})
	if tab.State(0) != Ready || tab.State(1) != Stalled {
		t.Errorf("states = %v/%v", tab.State(0), tab.State(1))
	}
}

func TestStallCapacity(t *testing.T) {
	// A 3-entry table supports 3 overlapping subwarps: 2 demoted plus
	// the active one, so the third demotion is rejected.
	tab, pcs := newTable(3)
	tab.ActivateAll(bits.FirstN(8))
	pcs[0], pcs[1] = 10, 10
	pcs[2], pcs[3] = 20, 20
	pcs[4], pcs[5] = 30, 30
	if !tab.Stall(bits.Mask(0b11), 1, func(int) int { return 1 }) {
		t.Fatal("first stall should fit")
	}
	if !tab.Stall(bits.Mask(0b1100), 2, func(int) int { return 1 }) {
		t.Fatal("second stall should fit")
	}
	if tab.StalledSubwarps() != 2 {
		t.Fatalf("StalledSubwarps = %d", tab.StalledSubwarps())
	}
	if tab.Stall(bits.Mask(0b110000), 3, func(int) int { return 1 }) {
		t.Fatal("third stall must be rejected (TST full)")
	}
	if tab.State(4) != Active {
		t.Error("rejected stall must leave lanes Active")
	}
	// Waking a group frees its entry.
	tab.Writeback(0, 1)
	tab.Writeback(1, 1)
	if tab.StalledSubwarps() != 1 {
		t.Fatalf("after wake StalledSubwarps = %d", tab.StalledSubwarps())
	}
	if !tab.Stall(bits.Mask(0b110000), 3, func(int) int { return 1 }) {
		t.Fatal("stall should fit after wakeup freed an entry")
	}
}

func TestStallCapacityTwoEntries(t *testing.T) {
	// K=2 means one demoted subwarp plus the active one.
	tab, pcs := newTable(2)
	tab.ActivateAll(bits.FirstN(4))
	pcs[0], pcs[1] = 10, 10
	pcs[2], pcs[3] = 20, 20
	if !tab.Stall(bits.Mask(0b11), 1, func(int) int { return 1 }) {
		t.Fatal("first stall should fit")
	}
	if tab.Stall(bits.Mask(0b1100), 2, func(int) int { return 1 }) {
		t.Fatal("second stall must be rejected with K=2")
	}
}

func TestStallEmptyMask(t *testing.T) {
	tab, _ := newTable(32)
	if tab.Stall(0, 1, func(int) int { return 1 }) {
		t.Error("empty stall should be rejected")
	}
}

func TestStallPanicsOnNonActive(t *testing.T) {
	tab, _ := newTable(32)
	defer func() {
		if recover() == nil {
			t.Error("stalling an Inactive lane should panic")
		}
	}()
	tab.Stall(bits.LaneMask(0), 1, func(int) int { return 1 })
}

func TestYield(t *testing.T) {
	tab, _ := newTable(32)
	tab.ActivateAll(bits.FirstN(4))
	tab.Yield(bits.FirstN(4))
	if tab.Mask(Ready) != bits.FirstN(4) {
		t.Errorf("Ready = %v after yield", tab.Mask(Ready))
	}
}

func TestSelectRoundRobin(t *testing.T) {
	tab, pcs := newTable(32)
	tab.ActivateAll(bits.FirstN(6))
	pcs[0], pcs[1] = 10, 10
	pcs[2], pcs[3] = 20, 20
	pcs[4], pcs[5] = 30, 30
	tab.Yield(bits.FirstN(6)) // all three subwarps Ready; rotor at PC 10

	// The yield advanced the rotor past PC 10, so selection starts at
	// the *next* subwarp and never immediately re-picks a yielder.
	s1, ok := tab.Select()
	if !ok || s1.PC != 20 || s1.Mask != bits.Mask(0b1100) {
		t.Fatalf("first select = %+v ok=%v", s1, ok)
	}
	if tab.State(2) != Active {
		t.Error("selected lanes must be Active")
	}
	tab.Yield(s1.Mask) // put it back

	s2, _ := tab.Select()
	if s2.PC != 30 {
		t.Fatalf("round robin should advance: got PC %d", s2.PC)
	}
	tab.Yield(s2.Mask)
	s3, _ := tab.Select()
	if s3.PC != 10 {
		t.Fatalf("wraparound select PC = %d, want 10", s3.PC)
	}
	tab.Yield(s3.Mask)
	s4, _ := tab.Select()
	if s4.PC != 20 {
		t.Fatalf("fourth select PC = %d, want 20", s4.PC)
	}
}

func TestSelectNoneReady(t *testing.T) {
	tab, _ := newTable(32)
	tab.ActivateAll(bits.FirstN(2))
	if _, ok := tab.Select(); ok {
		t.Error("no Ready lanes: select must fail")
	}
}

func TestReadySubwarpsSorted(t *testing.T) {
	tab, pcs := newTable(32)
	tab.ActivateAll(bits.FirstN(6))
	pcs[0], pcs[2], pcs[4] = 30, 10, 20
	pcs[1], pcs[3], pcs[5] = 30, 10, 20
	tab.Yield(bits.FirstN(6))
	subs := tab.ReadySubwarps()
	if len(subs) != 3 {
		t.Fatalf("len = %d", len(subs))
	}
	if subs[0].PC != 10 || subs[1].PC != 20 || subs[2].PC != 30 {
		t.Errorf("not sorted: %+v", subs)
	}
	if subs[0].Mask != bits.LaneMask(2).Set(3) {
		t.Errorf("grouping wrong: %+v", subs[0])
	}
}

func TestBlockAndRelease(t *testing.T) {
	tab, _ := newTable(32)
	tab.ActivateAll(bits.FirstN(4))
	tab.Block(bits.FirstN(4))
	if tab.Mask(Blocked) != bits.FirstN(4) {
		t.Error("Block failed")
	}
	tab.Release(bits.FirstN(4))
	if tab.Mask(Active) != bits.FirstN(4) {
		t.Error("Release failed")
	}
}

func TestReleasePanicsOnNonBlocked(t *testing.T) {
	tab, _ := newTable(32)
	tab.ActivateAll(bits.LaneMask(0))
	defer func() {
		if recover() == nil {
			t.Error("releasing an Active lane should panic")
		}
	}()
	tab.Release(bits.LaneMask(0))
}

func TestExitClearsScoreboardRecord(t *testing.T) {
	tab, _ := newTable(1)
	tab.ActivateAll(bits.LaneMask(0))
	tab.Stall(bits.LaneMask(0), 2, func(int) int { return 5 })
	tab.Exit(bits.LaneMask(0))
	if tab.StalledSubwarps() != 0 {
		t.Error("exit should free the demotion entry")
	}
	if tab.Writeback(0, 2) {
		t.Error("inactive lane must not wake")
	}
}

func TestCapacityClamping(t *testing.T) {
	tab, _ := newTable(0)
	if tab.MaxSubwarps() != 1 {
		t.Errorf("clamped min = %d", tab.MaxSubwarps())
	}
	tab2, _ := newTable(100)
	if tab2.MaxSubwarps() != 32 {
		t.Errorf("clamped max = %d", tab2.MaxSubwarps())
	}
}

// Figure 10a trace at the TST level: two 1-thread subwarps, the active
// one stalls, the other is selected, wakeups arrive.
func TestFig10aStateSequence(t *testing.T) {
	tab, pcs := newTable(32)
	tab.ActivateAll(bits.FirstN(2))

	// Step 1: divergence — t0 goes READY at the else path (PC 7),
	// t1 stays ACTIVE at PC 3.
	pcs[0], pcs[1] = 7, 3
	tab.SetState(0, Ready)
	if tab.State(0) != Ready || tab.State(1) != Active {
		t.Fatal("diverge step wrong")
	}

	// Step 4: t1 suffers a load-to-use stall on sb5.
	if !tab.Stall(bits.LaneMask(1), 5, func(int) int { return 1 }) {
		t.Fatal("stall rejected")
	}
	// Step 5-6: selection activates t0.
	sel, ok := tab.Select()
	if !ok || sel.Mask != bits.LaneMask(0) || sel.PC != 7 {
		t.Fatalf("select = %+v", sel)
	}
	// Step 7: t0 stalls on sb2.
	pcs[0] = 8
	if !tab.Stall(bits.LaneMask(0), 2, func(int) int { return 1 }) {
		t.Fatal("second stall rejected")
	}
	// Background: t1's texture returns; t1 wakes.
	if !tab.Writeback(1, 5) {
		t.Fatal("t1 should wake")
	}
	// Step 8: t1 selected again.
	sel, ok = tab.Select()
	if !ok || sel.Mask != bits.LaneMask(1) {
		t.Fatalf("reselect = %+v ok=%v", sel, ok)
	}
	// Step 9-10: t1 reaches BSYNC and blocks.
	pcs[1] = 10
	tab.Block(bits.LaneMask(1))
	if tab.State(1) != Blocked {
		t.Fatal("t1 should be BLOCKED")
	}
	// t0 wakes and is selected; warp continues.
	tab.Writeback(0, 2)
	sel, ok = tab.Select()
	if !ok || sel.Mask != bits.LaneMask(0) {
		t.Fatalf("final select = %+v", sel)
	}
}
