// Package tst implements the Thread Status Table and the per-thread
// state machine of Figures 7 and 8.
//
// The table tracks, per thread: its scheduling state; and — while
// STALLED — the ID and outstanding count of the count-based scoreboard
// it stalled on. Writeback broadcasts decrement matching recorded
// counts (Fig. 8b) and wake threads whose counts reach zero
// (subwarp-wakeup). Selection logic groups READY threads into
// PC-aligned subwarps and rotates among them (subwarp-select).
//
// The table is sized by a maximum number of concurrently demoted
// subwarps (NTST in Section III-C1): demotions beyond capacity are
// rejected and the requesting subwarp stays put, modeling the smaller
// TST configurations of the Fig. 15 sensitivity study.
package tst

import (
	"fmt"
	"sort"

	"subwarpsim/internal/bits"
)

// State is the scheduling status of one thread (Fig. 7).
type State uint8

const (
	// Inactive: before program entry or after thread exit.
	Inactive State = iota
	// Active: the thread belongs to the warp's currently executing
	// subwarp.
	Active
	// Ready: eligible for selection (lost a divergent-branch election,
	// was woken after a stall, or yielded).
	Ready
	// Blocked: waiting at a convergence barrier (unsuccessful BSYNC).
	Blocked
	// Stalled: demoted after a load-to-use stall; waiting for its
	// recorded scoreboard to count down (SI-only state).
	Stalled
)

func (s State) String() string {
	switch s {
	case Inactive:
		return "INACTIVE"
	case Active:
		return "ACTIVE"
	case Ready:
		return "READY"
	case Blocked:
		return "BLOCKED"
	case Stalled:
		return "STALLED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Table is one warp's thread status table. PCs live with the owning
// warp; the table reads them through the pointer supplied at creation
// so that grouping and selection see current values.
type Table struct {
	pcs         *[bits.WarpSize]int
	maxSubwarps int

	state   [bits.WarpSize]State
	scbdID  [bits.WarpSize]int8
	scbdCnt [bits.WarpSize]uint8

	lastSelectedPC int // round-robin pointer for selection
}

// New creates a table over the given per-thread PC array, supporting at
// most maxSubwarps concurrently demoted subwarps (1..32).
func New(pcs *[bits.WarpSize]int, maxSubwarps int) *Table {
	if maxSubwarps < 1 {
		maxSubwarps = 1
	}
	if maxSubwarps > bits.WarpSize {
		maxSubwarps = bits.WarpSize
	}
	t := &Table{pcs: pcs, maxSubwarps: maxSubwarps, lastSelectedPC: -1}
	for i := range t.scbdID {
		t.scbdID[i] = -1
	}
	return t
}

// MaxSubwarps returns the demotion capacity.
func (t *Table) MaxSubwarps() int { return t.maxSubwarps }

// State returns the state of one lane.
func (t *Table) State(lane int) State { return t.state[lane] }

// SetState transitions one lane; transitions that leave Stalled clear
// the recorded scoreboard fields.
func (t *Table) SetState(lane int, s State) {
	if t.state[lane] == Stalled && s != Stalled {
		t.scbdID[lane] = -1
		t.scbdCnt[lane] = 0
	}
	t.state[lane] = s
}

// Mask returns the lanes currently in state s.
func (t *Table) Mask(s State) bits.Mask {
	var m bits.Mask
	for lane := 0; lane < bits.WarpSize; lane++ {
		if t.state[lane] == s {
			m = m.Set(lane)
		}
	}
	return m
}

// Live returns the lanes not Inactive.
func (t *Table) Live() bits.Mask {
	var m bits.Mask
	for lane := 0; lane < bits.WarpSize; lane++ {
		if t.state[lane] != Inactive {
			m = m.Set(lane)
		}
	}
	return m
}

// LiveSubwarps returns the number of distinct PCs among live lanes:
// 0 for an exited warp, 1 when convergent, more when diverged.
func (t *Table) LiveSubwarps() int {
	return t.distinctPCs(t.Live())
}

func (t *Table) distinctPCs(m bits.Mask) int {
	var pcs []int
	m.ForEach(func(lane int) {
		pc := t.pcs[lane]
		for _, p := range pcs {
			if p == pc {
				return
			}
		}
		pcs = append(pcs, pc)
	})
	return len(pcs)
}

// StalledSubwarps returns how many distinct PC groups occupy TST
// demotion entries.
func (t *Table) StalledSubwarps() int {
	return t.distinctPCs(t.Mask(Stalled))
}

// Stall performs the subwarp-stall transition: every lane in mask moves
// from Active to Stalled, recording scoreboard sbid and the lane's
// outstanding count supplied by laneCount. Lanes whose count is already
// zero (their data returned while others' is pending) go straight to
// Ready.
//
// Stall returns false without any transition when the table has no free
// demotion entry (TST overflow): the caller leaves the subwarp Active
// and the warp simply waits, as the baseline would.
func (t *Table) Stall(mask bits.Mask, sbid int, laneCount func(lane int) int) bool {
	if mask.Empty() {
		return false
	}
	// A table with K entries supports K concurrently overlapping
	// subwarps: K-1 demoted into entries plus the one in the active
	// slot. The K-th stall is rejected, so that subwarp waits in place
	// (like the baseline) instead of freeing the slot for yet another
	// load stream.
	if t.StalledSubwarps() >= t.maxSubwarps-1 {
		return false
	}
	mask.ForEach(func(lane int) {
		if t.state[lane] != Active {
			panic(fmt.Sprintf("tst: subwarp-stall of lane %d in state %v", lane, t.state[lane]))
		}
		cnt := laneCount(lane)
		if cnt <= 0 {
			t.state[lane] = Ready
			return
		}
		if cnt > 255 {
			cnt = 255
		}
		t.state[lane] = Stalled
		t.scbdID[lane] = int8(sbid)
		t.scbdCnt[lane] = uint8(cnt)
	})
	return true
}

// Writeback is the subwarp-wakeup port of Fig. 8b: the writeback of a
// scoreboard-protected operand for one lane broadcasts its scoreboard
// ID; if the lane is Stalled on that ID its recorded count decrements,
// and at zero the lane wakes to Ready. It returns true when the lane
// woke.
func (t *Table) Writeback(lane, sbid int) bool {
	if t.state[lane] != Stalled || t.scbdID[lane] != int8(sbid) {
		return false
	}
	if t.scbdCnt[lane] > 0 {
		t.scbdCnt[lane]--
	}
	if t.scbdCnt[lane] == 0 {
		t.SetState(lane, Ready)
		return true
	}
	return false
}

// Yield performs the subwarp-yield transition: Active lanes in mask
// move to Ready, eagerly relinquishing the scheduling slot. The
// selection rotor advances to the yielded subwarp's current PC so the
// next Select prefers a different READY subwarp.
func (t *Table) Yield(mask bits.Mask) {
	mask.ForEach(func(lane int) {
		if t.state[lane] != Active {
			panic(fmt.Sprintf("tst: subwarp-yield of lane %d in state %v", lane, t.state[lane]))
		}
		t.state[lane] = Ready
	})
	if lane := mask.Lowest(); lane >= 0 {
		t.lastSelectedPC = t.pcs[lane]
	}
}

// ReadySubwarp describes one selectable PC-aligned group.
type ReadySubwarp struct {
	PC   int
	Mask bits.Mask
}

// ReadySubwarps returns the Ready lanes grouped by PC in ascending PC
// order.
func (t *Table) ReadySubwarps() []ReadySubwarp {
	groups := make(map[int]bits.Mask)
	t.Mask(Ready).ForEach(func(lane int) {
		groups[t.pcs[lane]] = groups[t.pcs[lane]].Set(lane)
	})
	out := make([]ReadySubwarp, 0, len(groups))
	for pc, m := range groups {
		out = append(out, ReadySubwarp{PC: pc, Mask: m})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PC < out[j].PC })
	return out
}

// Select performs subwarp-select: it picks the next Ready subwarp in
// round-robin PC order after the previously selected PC, transitions
// its lanes to Active, and returns it. ok is false when no lane is
// Ready.
func (t *Table) Select() (ReadySubwarp, bool) {
	subs := t.ReadySubwarps()
	if len(subs) == 0 {
		return ReadySubwarp{}, false
	}
	pick := subs[0]
	for _, s := range subs {
		if s.PC > t.lastSelectedPC {
			pick = s
			break
		}
	}
	pick.Mask.ForEach(func(lane int) { t.SetState(lane, Active) })
	t.lastSelectedPC = pick.PC
	return pick, true
}

// NoteActivated records which subwarp (by PC) currently executes, so
// that Select's round-robin prefers a *different* READY subwarp next —
// in particular, a subwarp that just yielded is least-preferred until
// the rotation returns to it.
func (t *Table) NoteActivated(pc int) { t.lastSelectedPC = pc }

// ActivateAll is program entry: every lane in mask becomes Active.
func (t *Table) ActivateAll(mask bits.Mask) {
	mask.ForEach(func(lane int) { t.state[lane] = Active })
}

// Exit transitions lanes to Inactive (thread exit).
func (t *Table) Exit(mask bits.Mask) {
	mask.ForEach(func(lane int) { t.SetState(lane, Inactive) })
}

// Block transitions lanes from Active to Blocked (unsuccessful BSYNC).
func (t *Table) Block(mask bits.Mask) {
	mask.ForEach(func(lane int) {
		if t.state[lane] != Active {
			panic(fmt.Sprintf("tst: block of lane %d in state %v", lane, t.state[lane]))
		}
		t.state[lane] = Blocked
	})
}

// Release transitions Blocked lanes to Active (barrier release).
func (t *Table) Release(mask bits.Mask) {
	mask.ForEach(func(lane int) {
		if t.state[lane] != Blocked {
			panic(fmt.Sprintf("tst: release of lane %d in state %v", lane, t.state[lane]))
		}
		t.state[lane] = Active
	})
}
