// Package tst implements the Thread Status Table and the per-thread
// state machine of Figures 7 and 8.
//
// The table tracks, per thread: its scheduling state; and — while
// STALLED — the ID and outstanding count of the count-based scoreboard
// it stalled on. Writeback broadcasts decrement matching recorded
// counts (Fig. 8b) and wake threads whose counts reach zero
// (subwarp-wakeup). Selection logic groups READY threads into
// PC-aligned subwarps and rotates among them (subwarp-select).
//
// The table is sized by a maximum number of concurrently demoted
// subwarps (NTST in Section III-C1): demotions beyond capacity are
// rejected and the requesting subwarp stays put, modeling the smaller
// TST configurations of the Fig. 15 sensitivity study.
package tst

import (
	"fmt"

	"subwarpsim/internal/bits"
)

// State is the scheduling status of one thread (Fig. 7).
type State uint8

const (
	// Inactive: before program entry or after thread exit.
	Inactive State = iota
	// Active: the thread belongs to the warp's currently executing
	// subwarp.
	Active
	// Ready: eligible for selection (lost a divergent-branch election,
	// was woken after a stall, or yielded).
	Ready
	// Blocked: waiting at a convergence barrier (unsuccessful BSYNC).
	Blocked
	// Stalled: demoted after a load-to-use stall; waiting for its
	// recorded scoreboard to count down (SI-only state).
	Stalled

	numStates = int(Stalled) + 1
)

func (s State) String() string {
	switch s {
	case Inactive:
		return "INACTIVE"
	case Active:
		return "ACTIVE"
	case Ready:
		return "READY"
	case Blocked:
		return "BLOCKED"
	case Stalled:
		return "STALLED"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Table is one warp's thread status table. PCs live with the owning
// warp; the table reads them through the pointer supplied at creation
// so that grouping and selection see current values.
type Table struct {
	pcs         *[bits.WarpSize]int
	maxSubwarps int

	state   [bits.WarpSize]State
	scbdID  [bits.WarpSize]int8
	scbdCnt [bits.WarpSize]uint8

	// masks caches, per state, the set of lanes currently in that
	// state. Every state write goes through setState to keep the cache
	// consistent, making Mask and Live O(1) on the scheduler's
	// per-cycle path instead of 32-iteration scans.
	masks [numStates]bits.Mask

	lastSelectedPC int // round-robin pointer for selection
}

// New creates a table over the given per-thread PC array, supporting at
// most maxSubwarps concurrently demoted subwarps (1..32).
func New(pcs *[bits.WarpSize]int, maxSubwarps int) *Table {
	if maxSubwarps < 1 {
		maxSubwarps = 1
	}
	if maxSubwarps > bits.WarpSize {
		maxSubwarps = bits.WarpSize
	}
	t := &Table{pcs: pcs, maxSubwarps: maxSubwarps, lastSelectedPC: -1}
	for i := range t.scbdID {
		t.scbdID[i] = -1
	}
	t.masks[Inactive] = bits.FullMask
	return t
}

// MaxSubwarps returns the demotion capacity.
func (t *Table) MaxSubwarps() int { return t.maxSubwarps }

// State returns the state of one lane.
func (t *Table) State(lane int) State { return t.state[lane] }

// SetState transitions one lane; transitions that leave Stalled clear
// the recorded scoreboard fields.
func (t *Table) SetState(lane int, s State) {
	if t.state[lane] == Stalled && s != Stalled {
		t.scbdID[lane] = -1
		t.scbdCnt[lane] = 0
	}
	t.setState(lane, s)
}

// setState moves one lane between states, keeping the cached per-state
// masks consistent. All state writes must go through here.
func (t *Table) setState(lane int, s State) {
	old := t.state[lane]
	if old == s {
		return
	}
	t.masks[old] = t.masks[old].Clear(lane)
	t.masks[s] = t.masks[s].Set(lane)
	t.state[lane] = s
}

// Mask returns the lanes currently in state s.
func (t *Table) Mask(s State) bits.Mask { return t.masks[s] }

// Live returns the lanes not Inactive.
func (t *Table) Live() bits.Mask {
	return bits.FullMask.Minus(t.masks[Inactive])
}

// LiveSubwarps returns the number of distinct PCs among live lanes:
// 0 for an exited warp, 1 when convergent, more when diverged.
func (t *Table) LiveSubwarps() int {
	return t.distinctPCs(t.Live())
}

// DivergedLive reports whether live lanes span more than one distinct
// PC, i.e. LiveSubwarps() > 1 without counting: it exits on the first
// PC mismatch. The scheduler's idle classification calls this every
// non-issuing cycle, where the full count would be wasted work.
func (t *Table) DivergedLive() bool {
	m := t.Live()
	if m.Empty() {
		return false
	}
	first := t.pcs[m.Lowest()]
	for it := m.DropLowest(); !it.Empty(); it = it.DropLowest() {
		if t.pcs[it.Lowest()] != first {
			return true
		}
	}
	return false
}

func (t *Table) distinctPCs(m bits.Mask) int {
	// A fixed-size stack array instead of an appended slice: this runs
	// inside the scheduler's per-cycle idle classification, which must
	// stay allocation-free.
	var seen [bits.WarpSize]int
	n := 0
	for it := m; !it.Empty(); it = it.DropLowest() {
		pc := t.pcs[it.Lowest()]
		dup := false
		for _, p := range seen[:n] {
			if p == pc {
				dup = true
				break
			}
		}
		if !dup {
			seen[n] = pc
			n++
		}
	}
	return n
}

// StalledSubwarps returns how many distinct PC groups occupy TST
// demotion entries.
func (t *Table) StalledSubwarps() int {
	return t.distinctPCs(t.Mask(Stalled))
}

// Stall performs the subwarp-stall transition: every lane in mask moves
// from Active to Stalled, recording scoreboard sbid and the lane's
// outstanding count supplied by laneCount. Lanes whose count is already
// zero (their data returned while others' is pending) go straight to
// Ready.
//
// Stall returns false without any transition when the table has no free
// demotion entry (TST overflow): the caller leaves the subwarp Active
// and the warp simply waits, as the baseline would.
func (t *Table) Stall(mask bits.Mask, sbid int, laneCount func(lane int) int) bool {
	if mask.Empty() {
		return false
	}
	// A table with K entries supports K concurrently overlapping
	// subwarps: K-1 demoted into entries plus the one in the active
	// slot. The K-th stall is rejected, so that subwarp waits in place
	// (like the baseline) instead of freeing the slot for yet another
	// load stream.
	if t.StalledSubwarps() >= t.maxSubwarps-1 {
		return false
	}
	for it := mask; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		if t.state[lane] != Active {
			panic(fmt.Sprintf("tst: subwarp-stall of lane %d in state %v", lane, t.state[lane]))
		}
		cnt := laneCount(lane)
		if cnt <= 0 {
			t.setState(lane, Ready)
			continue
		}
		if cnt > 255 {
			cnt = 255
		}
		t.setState(lane, Stalled)
		t.scbdID[lane] = int8(sbid)
		t.scbdCnt[lane] = uint8(cnt)
	}
	return true
}

// Writeback is the subwarp-wakeup port of Fig. 8b: the writeback of a
// scoreboard-protected operand for one lane broadcasts its scoreboard
// ID; if the lane is Stalled on that ID its recorded count decrements,
// and at zero the lane wakes to Ready. It returns true when the lane
// woke.
func (t *Table) Writeback(lane, sbid int) bool {
	if t.state[lane] != Stalled || t.scbdID[lane] != int8(sbid) {
		return false
	}
	if t.scbdCnt[lane] > 0 {
		t.scbdCnt[lane]--
	}
	if t.scbdCnt[lane] == 0 {
		t.SetState(lane, Ready)
		return true
	}
	return false
}

// Yield performs the subwarp-yield transition: Active lanes in mask
// move to Ready, eagerly relinquishing the scheduling slot. The
// selection rotor advances to the yielded subwarp's current PC so the
// next Select prefers a different READY subwarp.
func (t *Table) Yield(mask bits.Mask) {
	for it := mask; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		if t.state[lane] != Active {
			panic(fmt.Sprintf("tst: subwarp-yield of lane %d in state %v", lane, t.state[lane]))
		}
		t.setState(lane, Ready)
	}
	if lane := mask.Lowest(); lane >= 0 {
		t.lastSelectedPC = t.pcs[lane]
	}
}

// ReadySubwarp describes one selectable PC-aligned group.
type ReadySubwarp struct {
	PC   int
	Mask bits.Mask
}

// ReadySubwarps returns the Ready lanes grouped by PC in ascending PC
// order.
func (t *Table) ReadySubwarps() []ReadySubwarp {
	out := make([]ReadySubwarp, 0, 4)
	for it := t.masks[Ready]; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		pc := t.pcs[lane]
		found := false
		for i := range out {
			if out[i].PC == pc {
				out[i].Mask = out[i].Mask.Set(lane)
				found = true
				break
			}
		}
		if !found {
			out = append(out, ReadySubwarp{PC: pc, Mask: bits.LaneMask(lane)})
		}
	}
	for i := 1; i < len(out); i++ {
		g := out[i]
		j := i - 1
		for j >= 0 && out[j].PC > g.PC {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = g
	}
	return out
}

// Select performs subwarp-select: it picks the next Ready subwarp in
// round-robin PC order after the previously selected PC, transitions
// its lanes to Active, and returns it. ok is false when no lane is
// Ready.
//
// The pick — the smallest Ready PC strictly greater than the rotor,
// falling back to the smallest Ready PC — is computed directly from
// the lane masks; building the sorted ReadySubwarps slice here would
// put an allocation on the subwarp-switch path.
func (t *Table) Select() (ReadySubwarp, bool) {
	ready := t.masks[Ready]
	if ready.Empty() {
		return ReadySubwarp{}, false
	}
	minPC, nextPC := -1, -1
	for it := ready; !it.Empty(); it = it.DropLowest() {
		pc := t.pcs[it.Lowest()]
		if minPC < 0 || pc < minPC {
			minPC = pc
		}
		if pc > t.lastSelectedPC && (nextPC < 0 || pc < nextPC) {
			nextPC = pc
		}
	}
	pickPC := minPC
	if nextPC >= 0 {
		pickPC = nextPC
	}
	var m bits.Mask
	for it := ready; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		if t.pcs[lane] == pickPC {
			m = m.Set(lane)
			t.SetState(lane, Active)
		}
	}
	t.lastSelectedPC = pickPC
	return ReadySubwarp{PC: pickPC, Mask: m}, true
}

// NoteActivated records which subwarp (by PC) currently executes, so
// that Select's round-robin prefers a *different* READY subwarp next —
// in particular, a subwarp that just yielded is least-preferred until
// the rotation returns to it.
func (t *Table) NoteActivated(pc int) { t.lastSelectedPC = pc }

// ActivateAll is program entry: every lane in mask becomes Active.
func (t *Table) ActivateAll(mask bits.Mask) {
	for it := mask; !it.Empty(); it = it.DropLowest() {
		t.setState(it.Lowest(), Active)
	}
}

// Exit transitions lanes to Inactive (thread exit).
func (t *Table) Exit(mask bits.Mask) {
	for it := mask; !it.Empty(); it = it.DropLowest() {
		t.SetState(it.Lowest(), Inactive)
	}
}

// Block transitions lanes from Active to Blocked (unsuccessful BSYNC).
func (t *Table) Block(mask bits.Mask) {
	for it := mask; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		if t.state[lane] != Active {
			panic(fmt.Sprintf("tst: block of lane %d in state %v", lane, t.state[lane]))
		}
		t.setState(lane, Blocked)
	}
}

// Release transitions Blocked lanes to Active (barrier release).
func (t *Table) Release(mask bits.Mask) {
	for it := mask; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		if t.state[lane] != Blocked {
			panic(fmt.Sprintf("tst: release of lane %d in state %v", lane, t.state[lane]))
		}
		t.setState(lane, Active)
	}
}
