package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"subwarpsim/internal/bits"
)

// emit is a test shorthand filling in sm=0, block=0.
func emit(r *Recorder, cycle int64, warp int32, pc int32, mask bits.Mask, kind Kind, arg int32) {
	r.Emit(cycle, 0, 0, warp, pc, mask, kind, arg)
}

func TestRecorderStoresEvents(t *testing.T) {
	r := NewRecorder()
	emit(r, 5, 0, 10, bits.FullMask, KindIssue, 0)
	emit(r, 8, 0, 10, bits.FullMask, KindStall, 2)
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	ev := r.Events()[1]
	if ev.Cycle != 8 || ev.Kind != KindStall || ev.Arg != 2 || ev.PC != 10 {
		t.Errorf("bad event %+v", ev)
	}
	if !strings.Contains(ev.String(), "stall") {
		t.Errorf("String() = %q, want kind name", ev.String())
	}
}

func TestRecorderKindFilter(t *testing.T) {
	r := NewRecorder()
	r.SetKinds(KindStall, KindWakeup)
	emit(r, 1, 0, 0, bits.FullMask, KindIssue, 0)
	emit(r, 2, 0, 0, bits.FullMask, KindStall, 0)
	emit(r, 3, 0, 0, bits.FullMask, KindWakeup, 0)
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2 (issue filtered)", r.Len())
	}
	for _, ev := range r.Events() {
		if ev.Kind == KindIssue {
			t.Error("filtered kind stored")
		}
	}
}

func TestRecorderWarpFilter(t *testing.T) {
	r := NewRecorder()
	r.FilterWarps([]int{3})
	emit(r, 1, 2, 0, bits.FullMask, KindIssue, 0)
	emit(r, 1, 3, 0, bits.FullMask, KindIssue, 0)
	if r.Len() != 1 || r.Events()[0].Warp != 3 {
		t.Errorf("warp filter failed: %v", r.Events())
	}
	r.FilterWarps(nil) // clears
	emit(r, 2, 2, 0, bits.FullMask, KindIssue, 0)
	if r.Len() != 2 {
		t.Error("clearing the filter did not take effect")
	}
}

func TestRecorderLimitDrops(t *testing.T) {
	r := NewRecorder()
	r.SetLimit(2)
	for i := int64(0); i < 5; i++ {
		emit(r, i, 0, 0, bits.FullMask, KindIssue, 0)
	}
	if r.Len() != 2 || r.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d, want 2/3", r.Len(), r.Dropped())
	}
}

func TestRecorderHistogramPairing(t *testing.T) {
	r := NewRecorder()
	// A load sets sb2 at cycle 10; dependent use demotes at cycle 14;
	// writeback wakes the subwarp at cycle 610.
	emit(r, 10, 0, 5, bits.FullMask, KindScbdSet, 2)
	emit(r, 14, 0, 6, bits.FullMask, KindStall, 2)
	emit(r, 610, 0, 6, bits.LaneMask(0), KindWakeup, 2)
	if n := r.LoadToUse.Count(); n != 1 || r.LoadToUse.Max() != 4 {
		t.Errorf("load-to-use: n=%d max=%d, want 1/4", n, r.LoadToUse.Max())
	}
	if n := r.StallDur.Count(); n != 1 || r.StallDur.Max() != 596 {
		t.Errorf("stall duration: n=%d max=%d, want 1/596", n, r.StallDur.Max())
	}
	// Activation at 620, demotion at 700 closes a residency period.
	emit(r, 620, 0, 6, bits.FullMask, KindActivate, 0)
	emit(r, 700, 0, 7, bits.FullMask, KindStall, 1)
	if n := r.Residency.Count(); n != 1 || r.Residency.Max() != 80 {
		t.Errorf("residency: n=%d max=%d, want 1/80", n, r.Residency.Max())
	}
	if len(r.Histograms()) != 3 {
		t.Error("Histograms() should return 3 entries")
	}
}

func TestRecorderHistogramsIgnoreFilters(t *testing.T) {
	r := NewRecorder()
	r.SetKinds(KindIssue)    // store nothing relevant
	r.FilterWarps([]int{99}) // and no warps
	emit(r, 10, 0, 5, bits.FullMask, KindScbdSet, 2)
	emit(r, 14, 0, 6, bits.FullMask, KindStall, 2)
	if r.Len() != 0 {
		t.Error("filters should drop stored events")
	}
	if r.LoadToUse.Count() != 1 {
		t.Error("histograms must observe filtered events")
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	r := NewRecorder()
	emit(r, 0, 0, 0, bits.FullMask, KindIssue, 0)
	emit(r, 4, 0, 0, bits.FullMask, KindScbdSet, 1)
	emit(r, 8, 0, 0, bits.FullMask, KindStall, 1)
	emit(r, 8, 0, 8, bits.Mask(0xFFFF), KindSelectStart, 6)
	emit(r, 14, 0, 8, bits.Mask(0xFFFF), KindSelect, 0)
	emit(r, 600, 0, 0, bits.LaneMask(0), KindWakeup, 1)
	emit(r, 650, 0, 9, bits.FullMask, KindExit, 0)

	var b strings.Builder
	if err := r.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var names []string
	for _, ev := range out.TraceEvents {
		names = append(names, ev["name"].(string))
	}
	joined := strings.Join(names, "\n")
	for _, want := range []string{"subwarp-stall", "subwarp-select", "subwarp-wakeup", "select (switch latency)", "thread_name", "process_name"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q events:\n%s", want, joined)
		}
	}
	// Stall slice must span demotion to wakeup.
	for _, ev := range out.TraceEvents {
		if strings.HasPrefix(ev["name"].(string), "stalled") {
			if ts, dur := ev["ts"].(float64), ev["dur"].(float64); ts != 8 || dur != 592 {
				t.Errorf("stall slice ts=%v dur=%v, want 8/592", ts, dur)
			}
		}
	}
}

func TestASCIITimeline(t *testing.T) {
	r := NewRecorder()
	lo, hi := bits.Mask(0xFFFF), bits.FullMask.Minus(bits.Mask(0xFFFF))
	emit(r, 0, 0, 0, bits.FullMask, KindIssue, 0)
	emit(r, 10, 0, 0, lo, KindStall, 1)
	emit(r, 10, 0, 8, hi, KindActivate, 0)
	emit(r, 40, 0, 0, bits.LaneMask(lo.Lowest()), KindWakeup, 1)
	emit(r, 80, 0, 9, bits.FullMask, KindExit, 0)

	s := r.ASCIITimeline(TimelineOptions{Width: 20})
	if !strings.Contains(s, "w0") {
		t.Fatalf("timeline missing warp row:\n%s", s)
	}
	for _, glyph := range []string{"A", "S", "."} {
		if !strings.Contains(s, glyph) {
			t.Errorf("timeline missing state %q:\n%s", glyph, s)
		}
	}
	// Lanes 16-31 share one history -> a single collapsed row.
	if !strings.Contains(s, "16-31") {
		t.Errorf("identical lanes not collapsed:\n%s", s)
	}
}

func TestLaneRanges(t *testing.T) {
	cases := []struct {
		m    bits.Mask
		want string
	}{
		{0, "-"},
		{bits.LaneMask(0), "0"},
		{bits.Mask(0b1011), "0-1,3"},
		{bits.FullMask, "0-31"},
	}
	for _, c := range cases {
		if got := laneRanges(c.m); got != c.want {
			t.Errorf("laneRanges(%b) = %q, want %q", uint32(c.m), got, c.want)
		}
	}
}
