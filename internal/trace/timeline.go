package trace

import (
	"fmt"
	"sort"
	"strings"

	"subwarpsim/internal/bits"
)

// Timeline state glyphs, one per TST scheduling state:
// A=active, R=ready, S=stalled, B=blocked, .=inactive/exited,
// space=not yet launched.
const (
	glyphUnborn   = ' '
	glyphActive   = 'A'
	glyphReady    = 'R'
	glyphStalled  = 'S'
	glyphBlocked  = 'B'
	glyphInactive = '.'
)

// TimelineOptions configures ASCIITimeline rendering.
type TimelineOptions struct {
	// Width is the number of time columns (default 100).
	Width int
	// Warps restricts rendering to these global warp IDs; nil renders
	// every warp seen in the stream (capped at MaxWarps).
	Warps []int
	// MaxWarps caps the warp count when Warps is nil (default 8).
	MaxWarps int
}

// laneChange is one state transition of a single lane.
type laneChange struct {
	cycle int64
	glyph byte
}

// ASCIITimeline renders the recorded stream as a compressed per-warp
// subwarp-state chart, generalizing the paper's Fig. 10: lanes with
// identical state histories collapse into one row, and time is bucketed
// into Width columns. It needs the stream recorded with at least the
// subwarp state-transition kinds enabled (the NewRecorder default).
func (r *Recorder) ASCIITimeline(opt TimelineOptions) string {
	if opt.Width <= 0 {
		opt.Width = 100
	}
	if opt.MaxWarps <= 0 {
		opt.MaxWarps = 8
	}

	// Reconstruct per-warp, per-lane state-change tracks.
	tracks := map[int32]*[bits.WarpSize][]laneChange{}
	lastCycle := int64(1)
	mark := func(warp int32, mask bits.Mask, cycle int64, glyph byte) {
		tr, ok := tracks[warp]
		if !ok {
			tr = &[bits.WarpSize][]laneChange{}
			tracks[warp] = tr
		}
		mask.ForEach(func(lane int) {
			seq := tr[lane]
			if n := len(seq); n > 0 && seq[n-1].cycle == cycle {
				seq[n-1].glyph = glyph
			} else if n == 0 || seq[n-1].glyph != glyph {
				tr[lane] = append(seq, laneChange{cycle, glyph})
			}
		})
	}
	for _, ev := range r.events {
		if ev.Cycle >= lastCycle {
			lastCycle = ev.Cycle + 1
		}
		switch ev.Kind {
		case KindIssue, KindActivate, KindSelect, KindReconverge:
			mark(ev.Warp, ev.Mask, ev.Cycle, glyphActive)
		case KindStall:
			mark(ev.Warp, ev.Mask, ev.Cycle, glyphStalled)
		case KindWakeup, KindYield, KindDivergeReady:
			mark(ev.Warp, ev.Mask, ev.Cycle, glyphReady)
		case KindBarrierBlock:
			mark(ev.Warp, ev.Mask, ev.Cycle, glyphBlocked)
		case KindExit:
			mark(ev.Warp, ev.Mask, ev.Cycle, glyphInactive)
		}
	}

	warps := opt.Warps
	if warps == nil {
		for w := range tracks {
			warps = append(warps, int(w))
		}
		sort.Ints(warps)
		if len(warps) > opt.MaxWarps {
			warps = warps[:opt.MaxWarps]
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "subwarp state timeline (%d cycles, %d cycles/column)\n",
		lastCycle, (lastCycle+int64(opt.Width)-1)/int64(opt.Width))
	b.WriteString("A=active R=ready S=stalled B=blocked .=exited\n")
	for _, wid := range warps {
		tr, ok := tracks[int32(wid)]
		if !ok {
			continue
		}
		// Group lanes with identical histories into one row each.
		type row struct {
			lanes bits.Mask
			seq   []laneChange
		}
		var rows []row
	lanes:
		for lane := 0; lane < bits.WarpSize; lane++ {
			seq := tr[lane]
			if len(seq) == 0 {
				continue
			}
			for i := range rows {
				if sameHistory(rows[i].seq, seq) {
					rows[i].lanes = rows[i].lanes.Set(lane)
					continue lanes
				}
			}
			rows = append(rows, row{lanes: bits.LaneMask(lane), seq: seq})
		}
		for _, rw := range rows {
			fmt.Fprintf(&b, "w%-3d %-12s ", wid, laneRanges(rw.lanes))
			for col := 0; col < opt.Width; col++ {
				at := int64(col) * lastCycle / int64(opt.Width)
				b.WriteByte(glyphAt(rw.seq, at))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// glyphAt returns the state glyph in effect at the given cycle.
func glyphAt(seq []laneChange, cycle int64) byte {
	g := byte(glyphUnborn)
	for _, ch := range seq {
		if ch.cycle > cycle {
			break
		}
		g = ch.glyph
	}
	return g
}

func sameHistory(a, b []laneChange) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// laneRanges renders a mask as compact lane ranges, e.g. "0,2-5,31".
func laneRanges(m bits.Mask) string {
	lanes := m.Lanes()
	if len(lanes) == 0 {
		return "-"
	}
	var parts []string
	start, prev := lanes[0], lanes[0]
	flush := func() {
		if start == prev {
			parts = append(parts, fmt.Sprintf("%d", start))
		} else {
			parts = append(parts, fmt.Sprintf("%d-%d", start, prev))
		}
	}
	for _, l := range lanes[1:] {
		if l == prev+1 {
			prev = l
			continue
		}
		flush()
		start, prev = l, l
	}
	flush()
	return strings.Join(parts, ",")
}
