package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace_event JSON array, the
// format ui.perfetto.dev and chrome://tracing load directly. Timestamps
// are microseconds; we map one simulated cycle to 1us so Perfetto's
// time axis reads as cycles.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// openSlice is a duration event under construction.
type openSlice struct {
	name  string
	start int64
	args  map[string]any
}

// WriteChromeTrace renders the recorded stream as Chrome trace_event
// JSON: one process per SM, one thread track per warp, duration slices
// for subwarp residency / stall periods / subwarp-select latency /
// RT-core traversals / fetch misses, and instant markers for the
// remaining events. Time-series windows (when sampling was enabled)
// export as Perfetto counter tracks.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	emit := func(e chromeEvent) { out.TraceEvents = append(out.TraceEvents, e) }

	type track struct{ sm, block int }
	tracks := map[int32]track{}
	active := map[int32]*openSlice{}    // warp -> open residency slice
	selecting := map[int32]*openSlice{} // warp -> open select slice
	stalls := map[int64]*openSlice{}    // warp<<32|pc -> open stall slice
	lastCycle := int64(0)

	closeSlice := func(warp int32, s *openSlice, end int64) {
		if s == nil {
			return
		}
		dur := end - s.start
		if dur < 1 {
			dur = 1
		}
		t := tracks[warp]
		emit(chromeEvent{Name: s.name, Ph: "X", Ts: s.start, Dur: dur,
			Pid: t.sm, Tid: int(warp), Cat: "subwarp", Args: s.args})
	}

	for _, ev := range r.events {
		if ev.Cycle > lastCycle {
			lastCycle = ev.Cycle
		}
		if _, ok := tracks[ev.Warp]; !ok {
			tracks[ev.Warp] = track{sm: int(ev.SM), block: int(ev.Block)}
		}
		switch ev.Kind {
		case KindIssue:
			// Lazily open a residency slice for warps that were active
			// from launch (no explicit activate event).
			if active[ev.Warp] == nil {
				active[ev.Warp] = &openSlice{
					name:  fmt.Sprintf("active pc=%d lanes=%d", ev.PC, ev.Mask.Count()),
					start: ev.Cycle,
					args:  map[string]any{"pc": ev.PC, "lanes": ev.Mask.Count()},
				}
			}
		case KindActivate, KindSelect:
			closeSlice(ev.Warp, active[ev.Warp], ev.Cycle)
			active[ev.Warp] = &openSlice{
				name:  fmt.Sprintf("active pc=%d lanes=%d", ev.PC, ev.Mask.Count()),
				start: ev.Cycle,
				args:  map[string]any{"pc": ev.PC, "lanes": ev.Mask.Count()},
			}
			if ev.Kind == KindSelect {
				closeSlice(ev.Warp, selecting[ev.Warp], ev.Cycle)
				delete(selecting, ev.Warp)
				emit(r.instant(ev, "subwarp-select", tracks[ev.Warp].sm))
			}
			// A select completion also ends any stall slice of the
			// activated subwarp that never saw a wakeup event.
			key := int64(ev.Warp)<<32 | int64(uint32(ev.PC))
			if s := stalls[key]; s != nil {
				closeSlice(ev.Warp, s, ev.Cycle)
				delete(stalls, key)
			}
		case KindSelectStart:
			selecting[ev.Warp] = &openSlice{
				name:  "select (switch latency)",
				start: ev.Cycle,
				args:  map[string]any{"latency": ev.Arg},
			}
		case KindStall:
			closeSlice(ev.Warp, active[ev.Warp], ev.Cycle)
			delete(active, ev.Warp)
			stalls[int64(ev.Warp)<<32|int64(uint32(ev.PC))] = &openSlice{
				name:  fmt.Sprintf("stalled pc=%d sb%d", ev.PC, ev.Arg),
				start: ev.Cycle,
				args:  map[string]any{"pc": ev.PC, "scoreboard": ev.Arg, "lanes": ev.Mask.Count()},
			}
			emit(r.instant(ev, fmt.Sprintf("subwarp-stall sb%d", ev.Arg), tracks[ev.Warp].sm))
		case KindWakeup:
			key := int64(ev.Warp)<<32 | int64(uint32(ev.PC))
			if s := stalls[key]; s != nil {
				closeSlice(ev.Warp, s, ev.Cycle)
				delete(stalls, key)
			}
			emit(r.instant(ev, fmt.Sprintf("subwarp-wakeup sb%d", ev.Arg), tracks[ev.Warp].sm))
		case KindYield:
			closeSlice(ev.Warp, active[ev.Warp], ev.Cycle)
			delete(active, ev.Warp)
			emit(r.instant(ev, "subwarp-yield", tracks[ev.Warp].sm))
		case KindBarrierBlock:
			closeSlice(ev.Warp, active[ev.Warp], ev.Cycle)
			delete(active, ev.Warp)
			emit(r.instant(ev, fmt.Sprintf("barrier-block B%d", ev.Arg), tracks[ev.Warp].sm))
		case KindExit:
			closeSlice(ev.Warp, active[ev.Warp], ev.Cycle)
			delete(active, ev.Warp)
			emit(r.instant(ev, "exit", tracks[ev.Warp].sm))
		case KindFetchMiss:
			emit(chromeEvent{Name: "fetch miss", Ph: "X", Ts: ev.Cycle,
				Dur: max64(int64(ev.Arg), 1), Pid: int(ev.SM), Tid: int(ev.Warp),
				Cat: "fetch", Args: map[string]any{"pc": ev.PC}})
		case KindRTStart:
			emit(chromeEvent{Name: "rt trace", Ph: "X", Ts: ev.Cycle,
				Dur: max64(int64(ev.Arg), 1), Pid: int(ev.SM), Tid: int(ev.Warp),
				Cat: "rtcore", Args: map[string]any{"pc": ev.PC, "lanes": ev.Mask.Count()}})
		case KindReconverge:
			emit(r.instant(ev, "reconverge", tracks[ev.Warp].sm))
		case KindDivergeReady:
			emit(r.instant(ev, fmt.Sprintf("diverge pc=%d", ev.PC), tracks[ev.Warp].sm))
		case KindScbdSet:
			emit(r.instant(ev, fmt.Sprintf("scbd-set sb%d", ev.Arg), tracks[ev.Warp].sm))
		case KindScbdRelease:
			emit(r.instant(ev, fmt.Sprintf("scbd-release sb%d", ev.Arg), tracks[ev.Warp].sm))
		case KindWriteback:
			emit(r.instant(ev, fmt.Sprintf("writeback sb%d", ev.Arg), tracks[ev.Warp].sm))
		}
	}

	// Close whatever is still open at the end of the run.
	for warp, s := range active {
		closeSlice(warp, s, lastCycle+1)
	}
	for warp, s := range selecting {
		closeSlice(warp, s, lastCycle+1)
	}
	for key, s := range stalls {
		closeSlice(int32(key>>32), s, lastCycle+1)
	}

	// Track naming metadata, in deterministic order.
	warps := make([]int32, 0, len(tracks))
	for w := range tracks {
		warps = append(warps, w)
	}
	sort.Slice(warps, func(i, j int) bool { return warps[i] < warps[j] })
	sms := map[int]bool{}
	for _, warp := range warps {
		t := tracks[warp]
		if !sms[t.sm] {
			sms[t.sm] = true
			emit(chromeEvent{Name: "process_name", Ph: "M", Pid: t.sm,
				Args: map[string]any{"name": fmt.Sprintf("SM %d", t.sm)}})
		}
		emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: t.sm, Tid: int(warp),
			Args: map[string]any{"name": fmt.Sprintf("warp %d (block %d)", warp, t.block)}})
	}

	// Time-series counter tracks.
	if r.Series != nil {
		for i, win := range r.Series.Windows() {
			ts := int64(i) * r.Series.Window
			emit(chromeEvent{Name: "occupancy", Ph: "C", Ts: ts, Pid: 0,
				Args: map[string]any{"warps": win.Occupancy()}})
			emit(chromeEvent{Name: "live subwarps", Ph: "C", Ts: ts, Pid: 0,
				Args: map[string]any{"subwarps": win.Subwarps()}})
			emit(chromeEvent{Name: "ipc", Ph: "C", Ts: ts, Pid: 0,
				Args: map[string]any{"ipc": win.IPC()}})
			emit(chromeEvent{Name: "tst fill", Ph: "C", Ts: ts, Pid: 0,
				Args: map[string]any{"entries": win.TSTFill()}})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Slice is one named duration for WriteChromeSlices: a generic slice
// on a named track, in microseconds. It lets other subsystems (the obs
// request tracer) reuse this package's trace_event export without
// depending on the simulator's Event stream.
type Slice struct {
	Track   string
	Name    string
	StartUS int64
	DurUS   int64
	Args    map[string]any
}

// WriteChromeSlices renders arbitrary slices as Chrome trace_event
// JSON under a single process named process, with one thread track per
// distinct Slice.Track (in first-appearance order). The output loads
// in ui.perfetto.dev exactly like WriteChromeTrace's.
func WriteChromeSlices(w io.Writer, process string, slices []Slice) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": process},
	})
	tids := map[string]int{}
	order := []string{}
	for _, s := range slices {
		tid, ok := tids[s.Track]
		if !ok {
			tid = len(order)
			tids[s.Track] = tid
			order = append(order, s.Track)
		}
		dur := s.DurUS
		if dur < 1 {
			dur = 1
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Ph: "X", Ts: s.StartUS, Dur: dur,
			Pid: 0, Tid: tid, Cat: "request", Args: s.Args,
		})
	}
	for tid, track := range order {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": track},
		})
	}
	return json.NewEncoder(w).Encode(out)
}

func (r *Recorder) instant(ev Event, name string, sm int) chromeEvent {
	return chromeEvent{Name: name, Ph: "i", Ts: ev.Cycle, Pid: sm,
		Tid: int(ev.Warp), S: "t", Cat: "event",
		Args: map[string]any{"pc": ev.PC, "lanes": ev.Mask.Count()}}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
