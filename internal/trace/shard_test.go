package trace

import (
	"testing"

	"subwarpsim/internal/stats"
)

// emitN emits n issue events into r, tagged with sm so merged streams
// are distinguishable.
func emitN(r *Recorder, sm, n int) {
	for i := 0; i < n; i++ {
		r.Emit(int64(i), sm, 0, int32(sm*100+i), int32(i), 0xF, KindIssue, 1)
	}
}

func TestChildAbsorbReproducesSequentialStream(t *testing.T) {
	// The merged stream must read exactly as if both shards had emitted
	// into the parent one after the other, in absorb order.
	parent := NewRecorder()
	c0 := parent.Child()
	c1 := parent.Child()
	emitN(c1, 1, 3) // emission order deliberately reversed...
	emitN(c0, 0, 2)
	parent.Absorb(c0, c1) // ...absorb order decides the merged stream

	want := NewRecorder()
	emitN(want, 0, 2)
	emitN(want, 1, 3)

	if parent.Len() != want.Len() {
		t.Fatalf("merged Len = %d, want %d", parent.Len(), want.Len())
	}
	for i, ev := range parent.Events() {
		if ev != want.Events()[i] {
			t.Fatalf("event %d = %v, want %v", i, ev, want.Events()[i])
		}
	}
}

func TestChildInheritsFiltersAndAbsorbAppliesLimit(t *testing.T) {
	parent := NewRecorder()
	parent.SetKinds(KindIssue)
	parent.FilterWarps([]int{0, 1, 2, 3, 4})
	parent.SetLimit(3)

	c0 := parent.Child()
	c0.Emit(0, 0, 0, 0, 0, 0xF, KindStall, 0)  // filtered kind: dropped silently
	c0.Emit(0, 0, 0, 99, 0, 0xF, KindIssue, 0) // filtered warp: dropped silently
	emitN(c0, 0, 2)
	c1 := parent.Child()
	emitN(c1, 0, 2) // warps 0..1 pass the filter; one exceeds the limit

	parent.Absorb(c0, c1)
	if parent.Len() != 3 {
		t.Fatalf("merged Len = %d, want limit 3", parent.Len())
	}
	if parent.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1 (the event over the cap)", parent.Dropped())
	}
}

func TestAbsorbMergesHistogramsAndSeries(t *testing.T) {
	parent := NewRecorder()
	parent.Series = stats.NewTimeSeries(100)

	c0 := parent.Child()
	c1 := parent.Child()
	if c0.Series == nil || c1.Series == nil {
		t.Fatal("children must inherit a series window when the parent samples one")
	}
	// Load-to-use pairing: a stall at cycle 10 resolved by a wakeup at
	// cycle 60 observes a 50-cycle latency in shard 0 only.
	c0.Emit(10, 0, 0, 5, 8, 0xF, KindStall, 0)
	c0.Emit(60, 0, 0, 5, 8, 0xF, KindWakeup, 0)
	c0.Sample(10, 4, 2, 1, true)
	c1.Sample(20, 2, 1, 0, false)

	parent.Absorb(c0, c1)
	total := int64(0)
	for _, h := range parent.Histograms() {
		total += h.Count()
	}
	if total == 0 {
		t.Fatal("merged histograms observed nothing")
	}
	if parent.Series.Len() != 1 {
		t.Fatalf("merged series Len = %d, want 1 window", parent.Series.Len())
	}
	w := parent.Series.Windows()[0]
	if w.Weight != 2 {
		t.Fatalf("merged window Weight = %d, want 2 samples", w.Weight)
	}
}

func TestTimeSeriesMergeAddsWindows(t *testing.T) {
	a := stats.NewTimeSeries(10)
	b := stats.NewTimeSeries(10)
	a.Add(5, 4, 1, 0, true)  // window 0
	b.Add(5, 2, 1, 0, false) // window 0
	b.Add(25, 8, 2, 1, true) // window 2
	a.Merge(b)
	if a.Len() != 3 {
		t.Fatalf("merged Len = %d, want 3 windows", a.Len())
	}
	w0 := a.Windows()[0]
	if w0.Weight != 2 || w0.OccupancySum != 6 {
		t.Fatalf("window 0 = %+v, want weight 2, occupancy sum 6", w0)
	}
	if a.Windows()[1].Weight != 0 {
		t.Fatalf("window 1 = %+v, want empty gap window", a.Windows()[1])
	}
}

func TestTimeSeriesMergeWindowMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with mismatched windows must panic")
		}
	}()
	stats.NewTimeSeries(10).Merge(func() *stats.TimeSeries {
		o := stats.NewTimeSeries(20)
		o.Add(1, 1, 1, 1, true)
		return o
	}())
}
