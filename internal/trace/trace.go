// Package trace is the simulator's structured observability layer: a
// cycle-stamped event stream emitted from the SM pipeline, plus the
// derived products built on it — Chrome/Perfetto timeline export
// (perfetto.go), ASCII subwarp-state timelines (timeline.go), latency
// histograms and time-series sampling (via internal/stats).
//
// The layer is zero-overhead when disabled: the pipeline holds a plain
// *Recorder that is nil by default, and every emission site is gated on
// a single nil check — no interface dispatch on the hot path. With a
// recorder attached, individual event kinds can further be masked off
// and the stream restricted to a set of global warp IDs, so tracing a
// handful of warps through a large run stays cheap.
package trace

import (
	"fmt"

	"subwarpsim/internal/bits"
	"subwarpsim/internal/stats"
)

// Kind identifies one event type in the pipeline taxonomy.
type Kind uint8

const (
	// KindIssue: an instruction issued; Arg is the opcode.
	KindIssue Kind = iota
	// KindStall: subwarp-stall demotion (ACTIVE -> STALLED); Arg is the
	// blocking scoreboard ID.
	KindStall
	// KindWakeup: subwarp-wakeup (STALLED -> READY) of the lane in
	// Mask; Arg is the scoreboard ID whose count reached zero.
	KindWakeup
	// KindSelectStart: the subwarp scheduler initiated subwarp-select;
	// Arg is the switch latency being paid.
	KindSelectStart
	// KindSelect: subwarp-select completed (READY -> ACTIVE).
	KindSelect
	// KindYield: subwarp-yield (ACTIVE -> READY).
	KindYield
	// KindActivate: a subwarp became ACTIVE by any mechanism (select,
	// divergence election, reconvergence, barrier release).
	KindActivate
	// KindDivergeReady: a divergent branch parked this losing subgroup
	// READY; Arg is the total number of subgroups the branch produced.
	KindDivergeReady
	// KindBarrierBlock: an unsuccessful BSYNC blocked the subwarp; Arg
	// is the convergence barrier index.
	KindBarrierBlock
	// KindReconverge: a convergence barrier released and merged Mask.
	KindReconverge
	// KindScbdSet: a guarded long-latency op issued, incrementing the
	// scoreboard in Arg for Mask.
	KindScbdSet
	// KindScbdRelease: the lane in Mask counted its scoreboard (Arg)
	// down to zero — its dependency cleared.
	KindScbdRelease
	// KindWriteback: one lane's register writeback arrived; Arg is the
	// scoreboard ID it decrements.
	KindWriteback
	// KindFetchMiss: instruction fetch missed the L0I; Arg is the fill
	// latency in cycles.
	KindFetchMiss
	// KindRTStart: a TRACE op entered the RT core; Arg is the modeled
	// traversal latency of the slowest lane.
	KindRTStart
	// KindExit: the threads in Mask exited the program.
	KindExit

	numKinds
)

var kindNames = [numKinds]string{
	"issue", "stall", "wakeup", "select-start", "select", "yield",
	"activate", "diverge-ready", "barrier-block", "reconverge",
	"scbd-set", "scbd-release", "writeback", "fetch-miss", "rt-start",
	"exit",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// AllKinds is the bitmask enabling every event kind.
const AllKinds = 1<<numKinds - 1

// Event is one cycle-stamped pipeline event.
type Event struct {
	Cycle int64
	Kind  Kind
	SM    uint8
	Block uint8
	Warp  int32 // global warp ID in the launch
	PC    int32 // active-subwarp PC at the event (-1 when not applicable)
	Mask  bits.Mask
	Arg   int32 // kind-specific payload (scoreboard ID, latency, ...)
}

func (e Event) String() string {
	return fmt.Sprintf("c%d sm%d.b%d.w%d %s pc=%d mask=%s arg=%d",
		e.Cycle, e.SM, e.Block, e.Warp, e.Kind, e.PC, e.Mask, e.Arg)
}

// DefaultEventLimit caps the stored event stream so an unfiltered trace
// of a long run degrades gracefully instead of exhausting memory.
const DefaultEventLimit = 4 << 20

// Recorder collects the event stream and maintains the derived latency
// histograms. It is attached to a run through config.Config.Trace; a
// nil recorder disables all tracing.
//
// A Recorder is not safe for concurrent emission. SMs simulate in
// parallel, so gpu.Run never shares one recorder across SMs: it hands
// each SM a shard created with Child and, after every SM finishes,
// folds the shards back with Absorb in ascending SM order. That merge
// order makes the stored stream, drop counts, histograms, and time
// series bit-identical regardless of how the SM goroutines interleaved
// — and identical to a fully sequential run.
type Recorder struct {
	kinds uint32
	warps map[int32]bool // nil = record every warp
	limit int

	events  []Event
	dropped int64

	// Latency histograms, fed regardless of the kind/warp filters.
	LoadToUse stats.Histogram // scoreboard set -> demotion distance
	StallDur  stats.Histogram // demotion -> first wakeup duration
	Residency stats.Histogram // subwarp activation -> deactivation

	// Series receives per-block-cycle occupancy/IPC/TST samples when
	// non-nil; see NewTimeSeries.
	Series *stats.TimeSeries

	// pairing state for the histograms
	scbdSetAt map[int64]int64 // warp<<8 | sbid -> issue cycle
	stallAt   map[int64]int64 // warp<<32 | pc  -> demotion cycle
	activeAt  map[int32]int64 // warp -> activation cycle
}

// NewRecorder returns a recorder with every kind enabled, no warp
// filter, and the default event limit.
func NewRecorder() *Recorder {
	return &Recorder{
		kinds:     AllKinds,
		limit:     DefaultEventLimit,
		scbdSetAt: make(map[int64]int64),
		stallAt:   make(map[int64]int64),
		activeAt:  make(map[int32]int64),
	}
}

// SetKinds restricts the stored stream to the given kinds. The
// histograms keep observing every kind regardless.
func (r *Recorder) SetKinds(kinds ...Kind) {
	r.kinds = 0
	for _, k := range kinds {
		r.kinds |= 1 << k
	}
}

// FilterWarps restricts the stored stream to the given global warp IDs;
// an empty list removes the filter.
func (r *Recorder) FilterWarps(ids []int) {
	if len(ids) == 0 {
		r.warps = nil
		return
	}
	r.warps = make(map[int32]bool, len(ids))
	for _, id := range ids {
		r.warps[int32(id)] = true
	}
}

// Child returns a fresh shard recorder inheriting r's kind mask, warp
// filter, event limit, and time-series window. One run hands a child to
// each concurrently simulated SM; Absorb folds the shards back into r.
func (r *Recorder) Child() *Recorder {
	c := NewRecorder()
	c.kinds = r.kinds
	c.limit = r.limit
	if r.warps != nil {
		c.warps = make(map[int32]bool, len(r.warps))
		for id := range r.warps {
			c.warps[id] = true
		}
	}
	if r.Series != nil {
		c.Series = stats.NewTimeSeries(r.Series.Window)
	}
	return c
}

// Absorb merges shard recorders into r in the order given. Callers pass
// shards in ascending SM order so the merged stream matches what a
// sequential simulation emitting straight into r would have stored:
// events append shard-by-shard up to r's limit (the rest count as
// dropped), histogram and time-series samples accumulate, and shard
// drop counts carry over.
func (r *Recorder) Absorb(children ...*Recorder) {
	for _, c := range children {
		if c == nil {
			continue
		}
		for _, e := range c.events {
			if len(r.events) >= r.limit {
				r.dropped++
				continue
			}
			r.events = append(r.events, e)
		}
		r.dropped += c.dropped
		r.LoadToUse.Merge(&c.LoadToUse)
		r.StallDur.Merge(&c.StallDur)
		r.Residency.Merge(&c.Residency)
		if r.Series != nil && c.Series != nil {
			r.Series.Merge(c.Series)
		}
	}
}

// SetLimit caps the stored event count (values < 1 keep one event).
func (r *Recorder) SetLimit(n int) {
	if n < 1 {
		n = 1
	}
	r.limit = n
}

// Events returns the recorded stream in emission order.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of stored events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns how many events the limit discarded.
func (r *Recorder) Dropped() int64 { return r.dropped }

// Emit records one event. Histogram pairing always observes the event;
// storage honors the kind mask, warp filter, and limit.
func (r *Recorder) Emit(cycle int64, sm, block int, warp int32, pc int32, mask bits.Mask, kind Kind, arg int32) {
	r.observe(cycle, warp, pc, kind, arg)
	if r.kinds&(1<<kind) == 0 {
		return
	}
	if r.warps != nil && !r.warps[warp] {
		return
	}
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{
		Cycle: cycle, Kind: kind, SM: uint8(sm), Block: uint8(block),
		Warp: warp, PC: pc, Mask: mask, Arg: arg,
	})
}

// observe maintains the latency histograms from the event stream.
func (r *Recorder) observe(cycle int64, warp int32, pc int32, kind Kind, arg int32) {
	switch kind {
	case KindScbdSet:
		r.scbdSetAt[int64(warp)<<8|int64(arg)] = cycle
	case KindStall:
		if at, ok := r.scbdSetAt[int64(warp)<<8|int64(arg)]; ok {
			r.LoadToUse.Observe(cycle - at)
		}
		r.stallAt[int64(warp)<<32|int64(uint32(pc))] = cycle
		r.closeResidency(cycle, warp)
	case KindWakeup:
		key := int64(warp)<<32 | int64(uint32(pc))
		if at, ok := r.stallAt[key]; ok {
			r.StallDur.Observe(cycle - at)
			delete(r.stallAt, key)
		}
	case KindActivate, KindSelect:
		r.closeResidency(cycle, warp)
		r.activeAt[warp] = cycle
	case KindYield, KindBarrierBlock, KindExit:
		r.closeResidency(cycle, warp)
	}
}

func (r *Recorder) closeResidency(cycle int64, warp int32) {
	if at, ok := r.activeAt[warp]; ok {
		r.Residency.Observe(cycle - at)
		delete(r.activeAt, warp)
	}
}

// Sample feeds one stepped block-cycle into the time series (no-op
// without one).
func (r *Recorder) Sample(cycle int64, occupancy, subwarps, tstFill int, issued bool) {
	if r.Series != nil {
		r.Series.Add(cycle, occupancy, subwarps, tstFill, issued)
	}
}

// SampleGap feeds a fast-forwarded idle span [from, to) of block-cycles
// during which the sampled quantities were constant.
func (r *Recorder) SampleGap(from, to int64, occupancy, subwarps, tstFill int) {
	if r.Series != nil {
		r.Series.AddRange(from, to, occupancy, subwarps, tstFill)
	}
}

// Histograms returns the recorder's latency histograms, named and in
// display order.
func (r *Recorder) Histograms() []*stats.Histogram {
	r.LoadToUse.Name = "load-to-use distance (cycles)"
	r.StallDur.Name = "subwarp stall duration (cycles)"
	r.Residency.Name = "subwarp residency (cycles)"
	return []*stats.Histogram{&r.LoadToUse, &r.StallDur, &r.Residency}
}
