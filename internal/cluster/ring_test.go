package cluster

import (
	"fmt"
	"math"
	"testing"
)

// TestRingBalance checks that virtual nodes spread ownership roughly
// evenly: with 64 vnodes each of 3 nodes should own a third of the
// hash space, give or take, and the shares must sum to the whole ring.
func TestRingBalance(t *testing.T) {
	nodes := []string{"w1:8080", "w2:8080", "w3:8080"}
	r := NewRing(nodes, 64)
	var sum float64
	for _, n := range nodes {
		f := r.OwnedFraction(n)
		if f < 0.15 || f > 0.55 {
			t.Errorf("OwnedFraction(%s) = %.3f, want roughly 1/3", n, f)
		}
		sum += f
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ownership fractions sum to %.9f, want 1", sum)
	}
}

// TestRingOrderIndependence: the ring must route identically no matter
// how the node list was ordered, or two coordinators configured with
// the same peers in different flag order would disagree on key homes.
func TestRingOrderIndependence(t *testing.T) {
	a := NewRing([]string{"w1", "w2", "w3"}, 32)
	b := NewRing([]string{"w3", "w1", "w2"}, 32)
	for h := uint64(0); h < 200; h++ {
		// Spread probes across the space, not just near zero.
		probe := h * 0x9e3779b97f4a7c15
		pa, pb := a.Preference(probe), b.Preference(probe)
		if fmt.Sprint(pa) != fmt.Sprint(pb) {
			t.Fatalf("Preference(%#x) differs by construction order: %v vs %v", probe, pa, pb)
		}
	}
}

// TestRingPreferenceComplete: every preference list is a permutation
// of all nodes (distinct, complete), so reroute-around-the-ring can
// always reach every live peer.
func TestRingPreferenceComplete(t *testing.T) {
	nodes := []string{"w1", "w2", "w3", "w4"}
	r := NewRing(nodes, 16)
	for h := uint64(0); h < 100; h++ {
		probe := h * 0x9e3779b97f4a7c15
		pref := r.Preference(probe)
		if len(pref) != len(nodes) {
			t.Fatalf("Preference(%#x) has %d entries, want %d: %v", probe, len(pref), len(nodes), pref)
		}
		seen := map[string]bool{}
		for _, n := range pref {
			if seen[n] {
				t.Fatalf("Preference(%#x) repeats %q: %v", probe, n, pref)
			}
			seen[n] = true
		}
	}
}

// TestRingDeadNodeKeysConcentrate: with the home node skipped, all of
// its keys land on ring successors — preference element 1 — which is
// what keeps a dead node's load from scattering randomly.
func TestRingDeadNodeKeysConcentrate(t *testing.T) {
	r := NewRing([]string{"w1", "w2", "w3"}, 64)
	for h := uint64(0); h < 100; h++ {
		probe := h * 0x9e3779b97f4a7c15
		pref := r.Preference(probe)
		if pref[0] == pref[1] {
			t.Fatalf("home and first fallback identical for %#x", probe)
		}
	}
}

// TestRingEmpty: a ring with no nodes routes nothing but never panics
// (the coordinator with zero peers serves everything locally).
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 64)
	if p := r.Preference(42); p != nil {
		t.Errorf("empty ring Preference = %v, want nil", p)
	}
	if f := r.OwnedFraction("w1"); f != 0 {
		t.Errorf("empty ring OwnedFraction = %v, want 0", f)
	}
}
