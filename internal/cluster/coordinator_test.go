package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"subwarpsim/internal/obs"
	"subwarpsim/internal/server"
	"subwarpsim/internal/simcache"
)

// testCluster is a coordinator fronting n real worker daemons, all
// in-process via httptest.
type testCluster struct {
	co       *Coordinator
	front    *httptest.Server
	local    *server.Server
	workers  []*server.Server
	workerTS []*httptest.Server
}

// newTestCluster builds the cluster. wopts customizes each worker's
// server options (nil for defaults), wrap optionally interposes on a
// worker's handler (fault injection), mod tweaks coordinator options.
func newTestCluster(t testing.TB, n int, wopts func(int) server.Options,
	wrap func(int, http.Handler) http.Handler, mod func(*Options)) *testCluster {
	t.Helper()
	c := &testCluster{}
	peers := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var o server.Options
		if wopts != nil {
			o = wopts(i)
		}
		w := server.New(o)
		h := http.Handler(w.Handler())
		if wrap != nil {
			h = wrap(i, h)
		}
		ts := httptest.NewServer(h)
		c.workers = append(c.workers, w)
		c.workerTS = append(c.workerTS, ts)
		peers = append(peers, ts.URL)
	}
	shared := obs.New(server.MetricsNamespace, 256, 64, nil)
	c.local = server.New(server.Options{Workers: 1, Obs: shared})
	opts := Options{Peers: peers, Local: c.local, Obs: shared}
	if mod != nil {
		mod(&opts)
	}
	co, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.co = co
	c.front = httptest.NewServer(co.Handler())
	t.Cleanup(func() {
		c.front.Close()
		for _, ts := range c.workerTS {
			ts.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.local.Drain(ctx)
		for _, w := range c.workers {
			w.Drain(ctx)
		}
	})
	return c
}

// postVia posts one job spec to base/v1/jobs and decodes the result.
func postVia(t testing.TB, base string, spec server.JobSpec, hdr map[string]string) (server.JobResult, int, http.Header) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var res server.JobResult
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &res); err != nil {
			t.Fatalf("undecodable 200 body: %v: %s", err, raw)
		}
	} else {
		res.Error = string(raw)
	}
	return res, resp.StatusCode, resp.Header
}

// postBatch posts a batch and decodes the results slice.
func postBatch(t testing.TB, base string, specs []server.JobSpec) ([]server.JobResult, int) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"jobs": specs})
	resp, err := http.Post(base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Results []server.JobResult `json:"results"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out.Results, resp.StatusCode
}

// distinctSpecs returns n job specs with n distinct content keys
// (latency variation changes the cache key).
func distinctSpecs(n int) []server.JobSpec {
	specs := make([]server.JobSpec, n)
	for i := range specs {
		specs[i] = server.JobSpec{Microbench: 4, SI: true, LatencyCycles: 100 + 10*i}
	}
	return specs
}

// homedSpecs returns n distinct specs whose ring home is the named
// peer — tests that need traffic on a SPECIFIC peer cannot trust a
// random key sample to land there.
func homedSpecs(t testing.TB, c *testCluster, peer string, n int) []server.JobSpec {
	t.Helper()
	var out []server.JobSpec
	for lat := 100; lat < 5000 && len(out) < n; lat += 10 {
		spec := server.JobSpec{Microbench: 4, SI: true, LatencyCycles: lat}
		h, ok := c.co.jobHash(spec)
		if !ok {
			t.Fatalf("spec %+v did not hash", spec)
		}
		if c.co.ring.Preference(h)[0] == peer {
			out = append(out, spec)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d specs homed on %s", len(out), n, peer)
	}
	return out
}

// TestClusterCacheAffinity is the tentpole property: content-hash
// routing concentrates each key on one worker, so the cluster's
// aggregate memory-LRU capacity serves a working set no single node
// can hold. 18 distinct keys against 3 workers with 8-entry caches:
// the second pass hits every time, while the same sweep against one
// 8-entry node thrashes to zero hits.
func TestClusterCacheAffinity(t *testing.T) {
	const keys = 18
	cacheCap := func(int) server.Options {
		return server.Options{Workers: 1, Cache: simcache.NewMemory(8)}
	}
	c := newTestCluster(t, 3, cacheCap, nil, nil)
	// Pick 6 keys homed on each worker: the point is that each node's
	// 8-entry cache holds ITS shard of the working set. (A random 18-key
	// sample can put >8 keys on one worker, which would thrash that
	// node's LRU and muddy the property under test.)
	var specs []server.JobSpec
	for _, ts := range c.workerTS {
		specs = append(specs, homedSpecs(t, c, peerName(ts.URL), keys/3)...)
	}

	for _, spec := range specs {
		if _, code, _ := postVia(t, c.front.URL, spec, nil); code != http.StatusOK {
			t.Fatalf("first pass POST = %d", code)
		}
	}
	hits := 0
	for _, spec := range specs {
		res, code, _ := postVia(t, c.front.URL, spec, nil)
		if code != http.StatusOK {
			t.Fatalf("second pass POST = %d", code)
		}
		if res.Cached {
			hits++
		}
	}
	if hits != keys {
		t.Errorf("cluster second pass: %d/%d cache hits, want all (affinity broken)", hits, keys)
	}
	var simulated int64
	for _, w := range c.workers {
		simulated += w.MetricsSnapshot().JobsDone
	}
	if simulated != keys {
		t.Errorf("workers simulated %d jobs for %d keys, want exactly one each", simulated, keys)
	}

	// Single-node baseline: same sweep, same per-node cache capacity.
	// Sequentially scanning 18 keys through an 8-entry LRU evicts every
	// key before its second use.
	single := server.New(server.Options{Workers: 1, Cache: simcache.NewMemory(8)})
	ts := httptest.NewServer(single.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		single.Drain(ctx)
	}()
	for _, spec := range specs {
		postVia(t, ts.URL, spec, nil)
	}
	singleHits := 0
	for _, spec := range specs {
		if res, _, _ := postVia(t, ts.URL, spec, nil); res.Cached {
			singleHits++
		}
	}
	if singleHits >= hits {
		t.Errorf("single-node second pass got %d hits, cluster %d — affinity should beat one node's LRU", singleHits, hits)
	}
}

// TestClusterRerouteOnDeadPeer: a peer answering 502 trips its breaker
// and its keys reroute to ring successors; every request still
// succeeds with real results.
func TestClusterRerouteOnDeadPeer(t *testing.T) {
	dead := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"down"}`, http.StatusBadGateway)
		})
	}
	c := newTestCluster(t, 2, nil, dead, func(o *Options) { o.TripAfter = 2 })

	// Ephemeral ports make the key distribution run-dependent, so pick
	// specs that provably home on the dead peer (plus a few that do
	// not) instead of trusting 8 random keys to land there.
	deadHome := homedSpecs(t, c, peerName(c.workerTS[0].URL), 4)
	liveHome := homedSpecs(t, c, peerName(c.workerTS[1].URL), 2)
	for _, spec := range append(deadHome, liveHome...) {
		res, code, _ := postVia(t, c.front.URL, spec, nil)
		if code != http.StatusOK {
			t.Fatalf("POST with one dead peer = %d (%s)", code, res.Error)
		}
		if res.Counters.Cycles == 0 {
			t.Fatal("rerouted job returned empty counters")
		}
	}
	if c.co.reroutes.Value() == 0 {
		t.Error("no reroutes recorded despite a dead peer")
	}
	deadName := peerName(c.workerTS[0].URL)
	if st := c.co.peers[deadName].br.State(); st != simcache.BreakerOpen {
		t.Errorf("dead peer breaker = %v, want open", st)
	}
}

// TestClusterAllPeersDeadLocalFallback: with every peer down the
// coordinator serves locally — the degradation ladder's last rung —
// and still returns a real simulation result.
func TestClusterAllPeersDeadLocalFallback(t *testing.T) {
	dead := func(int, http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
		})
	}
	c := newTestCluster(t, 2, nil, dead, func(o *Options) { o.TripAfter = 1 })

	res, code, _ := postVia(t, c.front.URL, server.JobSpec{Microbench: 4, SI: true}, nil)
	if code != http.StatusOK {
		t.Fatalf("POST with all peers dead = %d", code)
	}
	if res.Counters.Cycles == 0 {
		t.Fatal("local fallback returned empty counters")
	}
	if c.co.fallbacks.Value() == 0 {
		t.Error("local fallback not recorded")
	}
	if c.local.MetricsSnapshot().JobsDone == 0 {
		t.Error("local server simulated nothing; fallback did not reach it")
	}
}

// TestCluster429Relay: a saturated peer's structured backpressure body
// is relayed verbatim — queue depths, queue_wait_p95_ms and
// retry_after_sec included — and the Retry-After header is
// reconstructed from it, so clients back off identically against
// either topology.
func TestCluster429Relay(t *testing.T) {
	body429 := `{"error":"queue full","tenant":"acme","queue_depth":64,"queue_cap":64,` +
		`"tenant_queue_depth":9,"queue_wait_p95_ms":12.5,"retry_after_sec":7}`
	throttled := func(int, http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			io.WriteString(w, body429)
		})
	}
	c := newTestCluster(t, 1, nil, throttled, nil)

	res, code, hdr := postVia(t, c.front.URL, server.JobSpec{Microbench: 4}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", code)
	}
	if got := hdr.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7 (from retry_after_sec)", got)
	}
	for _, field := range []string{"queue_wait_p95_ms", "tenant_queue_depth", "retry_after_sec", "queue full"} {
		if !strings.Contains(res.Error, field) {
			t.Errorf("relayed 429 body missing %q: %s", field, res.Error)
		}
	}
	// 429 means alive-but-saturated: the breaker must NOT have tripped.
	name := peerName(c.workerTS[0].URL)
	if st := c.co.peers[name].br.State(); st != simcache.BreakerClosed {
		t.Errorf("throttled peer breaker = %v, want closed", st)
	}
}

// TestClusterHedgedRequest: when the primary dawdles past HedgeAfter,
// a duplicate fires to the next ring node and the first answer wins —
// sound only because answers are bit-identical.
func TestClusterHedgedRequest(t *testing.T) {
	delays := make([]atomic.Int64, 2) // per-worker delay in ms
	slowable := func(i int, h http.Handler) http.Handler {
		d := &delays[i]
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if ms := d.Load(); ms > 0 {
				time.Sleep(time.Duration(ms) * time.Millisecond)
			}
			h.ServeHTTP(w, r)
		})
	}
	c := newTestCluster(t, 2, nil, slowable, func(o *Options) { o.HedgeAfter = 20 * time.Millisecond })

	spec := server.JobSpec{Microbench: 4, SI: true}
	h, ok := c.co.jobHash(spec)
	if !ok {
		t.Fatal("spec did not hash")
	}
	primary := c.co.ring.Preference(h)[0]
	for i, ts := range c.workerTS {
		if peerName(ts.URL) == primary {
			delays[i].Store(500)
		}
	}

	start := time.Now()
	res, code, _ := postVia(t, c.front.URL, spec, nil)
	if code != http.StatusOK {
		t.Fatalf("hedged POST = %d", code)
	}
	if res.Counters.Cycles == 0 {
		t.Fatal("hedged job returned empty counters")
	}
	if c.co.hedges.Value() == 0 {
		t.Error("no hedge recorded despite a slow primary")
	}
	if elapsed := time.Since(start); elapsed >= 500*time.Millisecond {
		t.Errorf("hedged request took %v; the fast secondary should have answered first", elapsed)
	}
}

// TestClusterBatchWorkStealing: a lagging peer's queued shards migrate
// to the idle peer instead of waiting behind it.
func TestClusterBatchWorkStealing(t *testing.T) {
	var slowMS atomic.Int64
	slowMS.Store(150)
	laggy := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			time.Sleep(time.Duration(slowMS.Load()) * time.Millisecond)
			h.ServeHTTP(w, r)
		})
	}
	c := newTestCluster(t, 2, nil, laggy, func(o *Options) { o.Window = 1 })

	// Force the imbalance the steal path exists for: 8 shards homed on
	// the laggy peer, 2 on the fast one. The fast runner drains its own
	// two and must then steal from the laggy backlog.
	specs := append(homedSpecs(t, c, peerName(c.workerTS[0].URL), 8),
		homedSpecs(t, c, peerName(c.workerTS[1].URL), 2)...)
	results, code := postBatch(t, c.front.URL, specs)
	if code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	for i, r := range results {
		if r.Failed() {
			t.Errorf("entry %d failed: %s", i, r.Error)
		}
	}
	if c.co.steals.Value() == 0 {
		t.Error("no work stealing despite a lagging peer and Window=1")
	}
}

// TestClusterBatchDifferentialKillOneMidSweep is the acceptance check:
// a matrix sweep through a 3-worker cluster — with one worker dying
// partway through — returns results bit-identical to the same sweep on
// a single node, in the same order, with no entry lost.
func TestClusterBatchDifferentialKillOneMidSweep(t *testing.T) {
	// Reference: one plain node runs the matrix.
	ref := server.New(server.Options{Workers: 2})
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		ref.Drain(ctx)
	}()

	var specs []server.JobSpec
	for _, mb := range []int{2, 4, 8} {
		for _, si := range []bool{false, true} {
			for _, pol := range []string{"lrr", "gto"} {
				specs = append(specs, server.JobSpec{Microbench: mb, SI: si, Policy: pol})
			}
		}
	}
	want, code := postBatch(t, refTS.URL, specs)
	if code != http.StatusOK || len(want) != len(specs) {
		t.Fatalf("reference batch = %d with %d results", code, len(want))
	}

	// Cluster: worker 0 dies after its first two requests.
	var served atomic.Int64
	killable := func(i int, h http.Handler) http.Handler {
		if i != 0 {
			return h
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if served.Add(1) > 2 {
				http.Error(w, `{"error":"killed"}`, http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		})
	}
	c := newTestCluster(t, 3, nil, killable, func(o *Options) { o.TripAfter = 1; o.Window = 2 })

	got, code := postBatch(t, c.front.URL, specs)
	if code != http.StatusOK {
		t.Fatalf("cluster batch = %d", code)
	}
	if len(got) != len(want) {
		t.Fatalf("cluster batch returned %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Failed() {
			t.Errorf("entry %d failed despite reroute: %s", i, got[i].Error)
			continue
		}
		if got[i].Key != want[i].Key {
			t.Errorf("entry %d key %s != reference %s (order broken?)", i, got[i].Key, want[i].Key)
		}
		if got[i].Counters != want[i].Counters {
			t.Errorf("entry %d counters differ from single-node reference:\n  cluster %+v\n  single  %+v",
				i, got[i].Counters, want[i].Counters)
		}
		if got[i].Policy != want[i].Policy || got[i].Blocks != want[i].Blocks {
			t.Errorf("entry %d metadata differs: %+v vs %+v", i, got[i], want[i])
		}
	}
	if served.Load() <= 2 {
		t.Skip("worker 0 received no traffic before the kill point; kill path not exercised")
	}
}

// TestClusterBatchStructuredEntryErrors: invalid entries come back as
// the same structured per-entry errors the single node produces, in
// place, without failing the batch.
func TestClusterBatchStructuredEntryErrors(t *testing.T) {
	c := newTestCluster(t, 2, nil, nil, nil)
	specs := []server.JobSpec{
		{Microbench: 4},
		{Microbench: 4, App: "bad-both"}, // two workload selectors: invalid
		{Microbench: 4, SI: true},
		{}, // no workload selector: invalid
	}
	results, code := postBatch(t, c.front.URL, specs)
	if code != http.StatusOK {
		t.Fatalf("batch = %d", code)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results, want 4", len(results))
	}
	for _, i := range []int{0, 2} {
		if results[i].Failed() {
			t.Errorf("valid entry %d failed: %s", i, results[i].Error)
		}
	}
	for _, i := range []int{1, 3} {
		if !results[i].Failed() {
			t.Errorf("invalid entry %d did not fail", i)
			continue
		}
		if results[i].ErrorStatus != http.StatusBadRequest {
			t.Errorf("invalid entry %d ErrorStatus = %d, want 400", i, results[i].ErrorStatus)
		}
	}
}

// TestClusterTraceAcrossHops: one X-Trace-ID spans the coordinator's
// routing and the worker's execution — the coordinator's trace shows
// the peer hop span, and the worker retained a trace under the same ID.
func TestClusterTraceAcrossHops(t *testing.T) {
	c := newTestCluster(t, 2, nil, nil, nil)
	const id = "cluster-trace-0001"
	_, code, hdr := postVia(t, c.front.URL, server.JobSpec{Microbench: 4}, map[string]string{"X-Trace-ID": id})
	if code != http.StatusOK {
		t.Fatalf("POST = %d", code)
	}
	if got := hdr.Get("X-Trace-ID"); got != id {
		t.Errorf("echoed trace ID = %q, want %q", got, id)
	}

	resp, err := http.Get(c.front.URL + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator /debug/traces/%s = %d", id, resp.StatusCode)
	}
	for _, span := range []string{"coordinator POST /v1/jobs", "peer "} {
		if !strings.Contains(string(body), span) {
			t.Errorf("coordinator trace missing %q span:\n%s", span, body)
		}
	}

	// The worker that executed the job retained the same ID.
	found := false
	for _, ts := range c.workerTS {
		resp, err := http.Get(ts.URL + "/debug/traces/" + id)
		if err == nil {
			if resp.StatusCode == http.StatusOK {
				found = true
			}
			resp.Body.Close()
		}
	}
	if !found {
		t.Error("no worker retained the propagated trace ID")
	}
}

// TestClusterEndpointAndMetrics: GET /cluster reports ring shares and
// breaker states; the shared /metrics exposition carries the per-peer
// and cluster series next to the local node's.
func TestClusterEndpointAndMetrics(t *testing.T) {
	c := newTestCluster(t, 3, nil, nil, nil)
	if _, code, _ := postVia(t, c.front.URL, server.JobSpec{Microbench: 4}, nil); code != http.StatusOK {
		t.Fatalf("warm-up POST = %d", code)
	}

	resp, err := http.Get(c.front.URL + "/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report struct {
		Self  string `json:"self"`
		Peers []struct {
			Name      string  `json:"name"`
			State     string  `json:"breaker_state"`
			RingShare float64 `json:"ring_share"`
		} `json:"peers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if len(report.Peers) != 3 {
		t.Fatalf("/cluster lists %d peers, want 3", len(report.Peers))
	}
	var share float64
	for _, p := range report.Peers {
		if p.State != "closed" {
			t.Errorf("peer %s breaker %q, want closed", p.Name, p.State)
		}
		share += p.RingShare
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("ring shares sum to %v, want 1", share)
	}

	req, _ := http.NewRequest(http.MethodGet, c.front.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, series := range []string{
		server.MetricsNamespace + "_peer_requests_total{",
		server.MetricsNamespace + "_peer_breaker_state{",
		server.MetricsNamespace + "_ring_ownership{",
		server.MetricsNamespace + "_cluster_steals_total",
		server.MetricsNamespace + "_cluster_local_fallback_total",
	} {
		if !strings.Contains(string(text), series) {
			t.Errorf("/metrics missing %s", series)
		}
	}
	if !strings.Contains(string(text), `outcome="ok"`) {
		t.Error("/metrics missing outcome-labelled peer series")
	}
}

// TestClusterInvalidSpecMatchesSingleNode: the coordinator's error
// body for an unroutable (invalid) spec is the local server's
// canonical one, byte for byte.
func TestClusterInvalidSpecMatchesSingleNode(t *testing.T) {
	c := newTestCluster(t, 2, nil, nil, nil)
	bad := server.JobSpec{Microbench: 4, App: "matmul"}

	res, code, _ := postVia(t, c.front.URL, bad, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("coordinator = %d, want 400", code)
	}

	localTS := httptest.NewServer(c.local.Handler())
	defer localTS.Close()
	localRes, localCode, _ := postVia(t, localTS.URL, bad, nil)
	if localCode != code {
		t.Fatalf("status mismatch: coordinator %d, single node %d", code, localCode)
	}
	var a, b map[string]any
	if err := json.Unmarshal([]byte(res.Error), &a); err != nil {
		t.Fatalf("coordinator error not JSON: %s", res.Error)
	}
	if err := json.Unmarshal([]byte(localRes.Error), &b); err != nil {
		t.Fatalf("single-node error not JSON: %s", localRes.Error)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("error bodies differ:\n  coordinator %v\n  single node %v", a, b)
	}
}

// TestClusterNoPeersServesLocally: a coordinator configured with zero
// peers is just a single node — everything runs locally, nothing
// errors.
func TestClusterNoPeersServesLocally(t *testing.T) {
	c := newTestCluster(t, 0, nil, nil, nil)
	res, code, _ := postVia(t, c.front.URL, server.JobSpec{Microbench: 4, SI: true}, nil)
	if code != http.StatusOK {
		t.Fatalf("POST = %d", code)
	}
	if res.Counters.Cycles == 0 {
		t.Fatal("empty counters from local-only coordinator")
	}
	results, code := postBatch(t, c.front.URL, distinctSpecs(4))
	if code != http.StatusOK || len(results) != 4 {
		t.Fatalf("batch = %d with %d results", code, len(results))
	}
	for i, r := range results {
		if r.Failed() {
			t.Errorf("entry %d failed: %s", i, r.Error)
		}
	}
}
