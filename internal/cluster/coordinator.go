package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"subwarpsim/internal/obs"
	"subwarpsim/internal/server"
	"subwarpsim/internal/simcache"
)

// Options tunes a Coordinator. Local and Peers are required for a
// useful cluster; everything else has serving defaults.
type Options struct {
	// Self is the coordinator's advertised name (shown in /cluster and
	// logs); "" means "coordinator".
	Self string
	// Peers are the worker daemons' base URLs (http://host:port).
	Peers []string
	// Local is the in-process server used for single-node fallback when
	// every peer is down, and whose Handler serves the non-routed
	// endpoints (/metrics, /healthz, /debug/*, /v1/apps).
	Local *server.Server
	// Obs is the observability plane. Share the Local server's Observer
	// so /metrics and /debug/traces unify coordinator and local series;
	// nil creates a standalone one.
	Obs *obs.Observer

	// VNodes is the virtual-node count per peer (0 means 64).
	VNodes int
	// LoadFactor is the bounded-load limit: a peer is skipped as a
	// key's first choice while its in-flight count exceeds
	// ceil(LoadFactor * (total+1) / alive). 0 means 1.25.
	LoadFactor float64
	// Window is the per-peer in-flight window for batch scatter-gather
	// (concurrent shards per peer). 0 means 4.
	Window int
	// MaxBatch bounds jobs per batch request (0 means 256), mirroring
	// the single-node limit.
	MaxBatch int
	// HedgeAfter, when positive, fires a duplicate of a routed request
	// to the next ring node if the first answers no sooner. Safe because
	// results are bit-identical; the first usable answer wins.
	HedgeAfter time.Duration
	// TripAfter and Cooldown tune each peer's circuit breaker
	// (simcache.Breaker defaults apply when 0).
	TripAfter int
	Cooldown  time.Duration
	// Client overrides the peer HTTP client (tests inject
	// httptest servers' clients); nil uses a 2-minute-timeout default.
	Client *http.Client
	// MaxAttempts bounds how many distinct peers one request tries
	// before falling back; 0 means every peer.
	MaxAttempts int
}

func (o Options) withDefaults() Options {
	if o.Self == "" {
		o.Self = "coordinator"
	}
	if o.VNodes <= 0 {
		o.VNodes = 64
	}
	if o.LoadFactor < 1 {
		o.LoadFactor = 1.25
	}
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Obs == nil {
		o.Obs = obs.New(server.MetricsNamespace, 256, 64, nil)
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	return o
}

// Coordinator routes jobs across the peer ring. Create with New and
// serve Handler().
type Coordinator struct {
	opts  Options
	ring  *Ring
	peers map[string]*peer
	obs   *obs.Observer
	local http.Handler

	// keyMemo caches JobSpec -> ring hash: computing a content key
	// builds the kernel, far too expensive per request. JobSpec is
	// comparable, so specs index directly; the map is reset wholesale at
	// the bound (sweep working sets are far smaller).
	keyMu   sync.Mutex
	keyMemo map[server.JobSpec]uint64

	hedges    *obs.Counter
	steals    *obs.Counter
	reroutes  *obs.Counter
	fallbacks *obs.Counter
	batches   *obs.Counter
}

const keyMemoMax = 4096

// New builds a Coordinator over opts.Peers. opts.Local must be set.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.Local == nil {
		return nil, fmt.Errorf("cluster: Options.Local is required")
	}
	c := &Coordinator{
		opts:    opts,
		peers:   make(map[string]*peer, len(opts.Peers)),
		obs:     opts.Obs,
		local:   opts.Local.Handler(),
		keyMemo: make(map[server.JobSpec]uint64),
	}
	names := make([]string, 0, len(opts.Peers))
	for _, raw := range opts.Peers {
		name := peerName(raw)
		if _, dup := c.peers[name]; dup {
			return nil, fmt.Errorf("cluster: duplicate peer %q", name)
		}
		p := &peer{
			name: name,
			url:  trimSlash(raw),
			br:   &simcache.Breaker{TripAfter: opts.TripAfter, Cooldown: opts.Cooldown},
			reqs: make(map[string]*obs.Counter, len(outcomes)),
		}
		c.wirePeer(p)
		c.peers[name] = p
		names = append(names, name)
	}
	c.ring = NewRing(names, opts.VNodes)
	c.registerMetrics()
	return c, nil
}

// trimSlash trims trailing slashes so p.url+path is well-formed.
func trimSlash(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

// wirePeer hooks one peer's breaker transitions into the debug-event
// ring and log — the same treatment the disk-cache breaker gets.
func (c *Coordinator) wirePeer(p *peer) {
	ring, log := c.obs.Ring, c.obs.Logger()
	name := p.name
	p.br.OnStateChange = func(from, to simcache.BreakerState) {
		ring.Add(obs.EventBreaker, "", "cluster.peer."+name, from.String()+" -> "+to.String())
		log.Warn("peer breaker transition", "peer", name, "from", from.String(), "to", to.String())
	}
}

// registerMetrics pre-registers every per-peer series (the peer and
// outcome sets are closed) plus the cluster-wide counters.
func (c *Coordinator) registerMetrics() {
	r := c.obs.Reg
	ns := server.MetricsNamespace
	for name, p := range c.peers {
		for _, oc := range outcomes {
			p.reqs[oc] = r.CounterWith(ns+"_peer_requests_total",
				"Coordinator-to-peer requests by peer and outcome.",
				"peer", name, "outcome", oc)
		}
		pp, nm := p, name
		r.GaugeFuncWith(ns+"_peer_inflight",
			"Requests currently in flight to each peer.",
			func() float64 { return float64(pp.inflight.Load()) }, "peer", nm)
		r.GaugeFuncWith(ns+"_peer_breaker_state",
			"Peer circuit breaker state: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(pp.br.State()) }, "peer", nm)
		r.GaugeFuncWith(ns+"_ring_ownership",
			"Fraction of the key hash space owned by each peer.",
			func() float64 { return c.ring.OwnedFraction(nm) }, "peer", nm)
	}
	c.hedges = r.Counter(ns+"_cluster_hedges_total",
		"Duplicate requests fired to a second peer after HedgeAfter.")
	c.steals = r.Counter(ns+"_cluster_steals_total",
		"Batch shards migrated from a lagging peer's queue to an idle peer.")
	c.reroutes = r.Counter(ns+"_cluster_reroutes_total",
		"Requests moved to the next ring node after a peer failure.")
	c.fallbacks = r.Counter(ns+"_cluster_local_fallback_total",
		"Requests served by the local node because every peer was unavailable.")
	c.batches = r.Counter(ns+"_cluster_batch_jobs_total",
		"Batch shards scattered across the cluster.")
}

// jobHash returns the ring position of a job spec — the first 8 bytes
// of its simcache content key — memoized per spec. ok=false means the
// spec does not produce a key (it is invalid); the caller routes it to
// the local server for the canonical structured error.
func (c *Coordinator) jobHash(spec server.JobSpec) (uint64, bool) {
	c.keyMu.Lock()
	h, ok := c.keyMemo[spec]
	c.keyMu.Unlock()
	if ok {
		return h, true
	}
	key, err := spec.CacheKey()
	if err != nil {
		return 0, false
	}
	h = key.RouteHash()
	c.keyMu.Lock()
	if len(c.keyMemo) >= keyMemoMax {
		c.keyMemo = make(map[server.JobSpec]uint64)
	}
	c.keyMemo[spec] = h
	c.keyMu.Unlock()
	return h, true
}

// submitHash positions an untrusted-kernel submission on the ring by
// hashing its raw payload. Unlike jobHash this is not the content key
// (computing it would mean assembling the program twice), so equal
// submissions with different JSON field order may route to different
// nodes — that only costs cache temperature, never correctness.
func submitHash(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// candidates returns the usable peers for a hash in attempt order:
// the optional prefer peer first (a batch runner sends its own shards
// to itself), then ring-preference order, with the bounded-load rule
// applied to the first pick — a peer already loaded past
// ceil(LoadFactor*(total+1)/alive) yields the primary slot to the next
// candidate (hot keys spill to ring successors instead of pinning one
// node). Peers with open breakers are excluded entirely.
func (c *Coordinator) candidates(h uint64, prefer string) []*peer {
	var cands []*peer
	if prefer != "" {
		if p := c.peers[prefer]; p != nil && p.br.State() != simcache.BreakerOpen {
			cands = append(cands, p)
		}
	}
	for _, name := range c.ring.Preference(h) {
		if name == prefer {
			continue
		}
		if p := c.peers[name]; p != nil && p.br.State() != simcache.BreakerOpen {
			cands = append(cands, p)
		}
	}
	if len(cands) < 2 {
		return cands
	}
	// Bounded load: demote overloaded primaries.
	var total int64
	for _, p := range c.peers {
		total += p.inflight.Load()
	}
	bound := int64(math.Ceil(c.opts.LoadFactor * float64(total+1) / float64(len(cands))))
	for i, p := range cands {
		if p.inflight.Load()+1 <= bound {
			if i > 0 {
				reordered := make([]*peer, 0, len(cands))
				reordered = append(reordered, p)
				for j, q := range cands {
					if j != i {
						reordered = append(reordered, q)
					}
				}
				return reordered
			}
			return cands
		}
	}
	// Everyone is past the bound: least-loaded first.
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].inflight.Load() < cands[j].inflight.Load()
	})
	return cands
}

// routeSpec routes one JSON payload (a job or submission) around the
// ring: try candidates in order, feeding breakers and rerouting on
// peer failure, spilling past 429s, optionally hedging the first
// attempt, and degrading to the local server when no peer can answer.
// Returns the HTTP status and body to relay.
func (c *Coordinator) routeSpec(ctx context.Context, tr *obs.Trace, path string,
	payload []byte, h uint64, prefer, tenant, traceID string) (int, []byte) {
	cands := c.candidates(h, prefer)
	if n := c.opts.MaxAttempts; n > 0 && len(cands) > n {
		cands = cands[:n]
	}

	var mu sync.Mutex
	attempted := make(map[string]bool, len(cands))
	var last429 []byte

	// try performs one peer attempt. done=true means the response is
	// final (success or a deterministic error to relay verbatim);
	// done=false means move on (peer dead, probing denied, or 429).
	try := func(p *peer) (status int, body []byte, done bool) {
		// Breaker admission: closed always passes, half-open grants one
		// probe, open denies (open peers were already filtered, but the
		// state may have moved since).
		if !p.br.Allow() {
			return 0, nil, false
		}
		mu.Lock()
		attempted[p.name] = true
		mu.Unlock()
		p.inflight.Add(1)
		start := time.Now()
		status, body, err := p.do(ctx, c.opts.Client, path, payload, tenant, traceID)
		p.inflight.Add(-1)
		tr.AddSpan("peer "+p.name+" POST "+path, start, time.Now())
		if err != nil || retryableStatus(status) {
			p.br.Failed()
			p.reqs[outcomeRerouted].Inc()
			c.reroutes.Inc()
			detail := "status " + strconv.Itoa(status)
			if err != nil {
				detail = err.Error()
			}
			c.obs.Logger().Warn("peer attempt failed, rerouting",
				"peer", p.name, "path", path, "detail", detail, "trace_id", traceID)
			return 0, nil, false
		}
		p.br.Succeeded()
		if status == http.StatusTooManyRequests {
			p.reqs[outcomeThrottled].Inc()
			mu.Lock()
			last429 = body
			mu.Unlock()
			return 0, nil, false
		}
		p.reqs[outcomeOK].Inc()
		return status, body, true
	}

	// Hedged first attempt: fire the primary, and if it has not
	// answered within HedgeAfter, race the second candidate. Sound
	// because both would return bit-identical results; the first usable
	// response wins and the loser's goroutine finishes harmlessly
	// (breakers and counters are concurrency-safe).
	if c.opts.HedgeAfter > 0 && len(cands) >= 2 {
		type outcome struct {
			status int
			body   []byte
			done   bool
		}
		ch := make(chan outcome, 2)
		launch := func(p *peer) {
			go func() {
				s, b, done := try(p)
				ch <- outcome{s, b, done}
			}()
		}
		launch(cands[0])
		timer := time.NewTimer(c.opts.HedgeAfter)
		launched := 1
		select {
		case r := <-ch:
			timer.Stop()
			if r.done {
				return r.status, r.body
			}
		case <-timer.C:
			c.hedges.Inc()
			launch(cands[1])
			launched = 2
			for i := 0; i < launched; i++ {
				if r := <-ch; r.done {
					return r.status, r.body
				}
			}
		}
		// Whatever the hedge attempted is marked in `attempted`; the
		// sequential sweep below covers the rest.
	}

	for _, p := range cands {
		mu.Lock()
		tried := attempted[p.name]
		mu.Unlock()
		if tried {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		if status, body, done := try(p); done {
			return status, body
		}
	}

	mu.Lock()
	throttled := last429
	mu.Unlock()
	if throttled != nil {
		// Every reachable peer is saturated: relay the aggregate 429 with
		// the same structured body a single node emits (queue depths,
		// queue_wait_p95_ms, retry_after_sec), so clients back off
		// identically against either topology.
		return http.StatusTooManyRequests, throttled
	}

	// Every peer is dead: single-node fallback, the ladder's last rung.
	c.fallbacks.Inc()
	c.obs.Event(ctx, obs.EventBreaker, "cluster.fallback", "all peers unavailable, serving locally")
	return c.localDo(ctx, path, payload, tenant, traceID)
}

// memWriter captures an in-process handler response (the local
// pseudo-peer) without a network round trip.
type memWriter struct {
	code int
	hdr  http.Header
	buf  bytes.Buffer
}

func (m *memWriter) Header() http.Header {
	if m.hdr == nil {
		m.hdr = make(http.Header)
	}
	return m.hdr
}

func (m *memWriter) WriteHeader(code int) {
	if m.code == 0 {
		m.code = code
	}
}

func (m *memWriter) Write(b []byte) (int, error) {
	if m.code == 0 {
		m.code = http.StatusOK
	}
	return m.buf.Write(b)
}

// localDo serves a routed payload against the local server's own
// handler stack (trace middleware included, so the hop appears under
// the same trace ID in /debug/traces).
func (c *Coordinator) localDo(ctx context.Context, path string, payload []byte, tenant, traceID string) (int, []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, path, bytes.NewReader(payload))
	if err != nil {
		return http.StatusInternalServerError, []byte(`{"error":"local fallback request failed"}`)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if traceID != "" {
		req.Header.Set("X-Trace-ID", traceID)
	}
	w := &memWriter{}
	c.local.ServeHTTP(w, req)
	code := w.code
	if code == 0 {
		code = http.StatusOK
	}
	return code, w.buf.Bytes()
}

// Handler returns the coordinator's HTTP API: the three submission
// endpoints are routed across the ring, GET /cluster reports ring and
// peer state, and everything else (metrics, health, debug, catalogue)
// is served by the local node, whose Observer the coordinator shares.
func (c *Coordinator) Handler() http.Handler {
	routed := http.NewServeMux()
	routed.HandleFunc("POST /v1/jobs", c.handleJob)
	routed.HandleFunc("POST /v1/batch", c.handleBatch)
	routed.HandleFunc("POST /v1/submit", c.handleSubmit)
	routed.HandleFunc("GET /cluster", c.handleCluster)
	traced := c.traceMiddleware(routed)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && (r.URL.Path == "/v1/jobs" ||
			r.URL.Path == "/v1/batch" || r.URL.Path == "/v1/submit"):
			traced.ServeHTTP(w, r)
		case r.Method == http.MethodGet && r.URL.Path == "/cluster":
			traced.ServeHTTP(w, r)
		default:
			c.local.ServeHTTP(w, r)
		}
	})
}

// traceMiddleware mirrors the single node's: adopt or mint X-Trace-ID,
// echo it, and retain the finished trace — in the shared store, so
// /debug/traces/{id} shows the coordinator's routing spans and
// per-peer hop spans on the same timeline clients correlate peer-side.
func (c *Coordinator) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(obs.SanitizeID(r.Header.Get("X-Trace-ID")))
		w.Header().Set("X-Trace-ID", tr.ID)
		ctx := obs.WithTrace(r.Context(), tr)
		end := tr.StartSpan("coordinator " + r.Method + " " + r.URL.Path)
		next.ServeHTTP(w, r.WithContext(ctx))
		end()
		c.obs.Traces.Add(tr)
	})
}

// relay writes a routed response through unchanged, reconstructing the
// Retry-After header for 429s from the structured body.
func relay(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		ra := 1
		var m map[string]any
		if json.Unmarshal(body, &m) == nil {
			if v, ok := m["retry_after_sec"].(float64); ok && v >= 1 {
				ra = int(v)
			}
		}
		w.Header().Set("Retry-After", strconv.Itoa(ra))
	}
	w.WriteHeader(status)
	w.Write(body)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSONBody(w, status, map[string]any{"error": msg})
}

func writeJSONBody(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxPeerBody))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	var spec server.JobSpec
	if err := json.Unmarshal(payload, &spec); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	ctx := r.Context()
	tenant := r.Header.Get("X-Tenant")
	traceID := obs.TraceIDFrom(ctx)
	h, ok := c.jobHash(spec)
	if !ok {
		// Invalid spec: the local server produces the canonical
		// structured 4xx without a network hop.
		status, body := c.localDo(ctx, "/v1/jobs", payload, tenant, traceID)
		relay(w, status, body)
		return
	}
	status, body := c.routeSpec(ctx, obs.TraceFrom(ctx), "/v1/jobs", payload, h, "", tenant, traceID)
	relay(w, status, body)
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxPeerBody))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad submission: "+err.Error())
		return
	}
	ctx := r.Context()
	status, body := c.routeSpec(ctx, obs.TraceFrom(ctx), "/v1/submit", payload,
		submitHash(payload), "", r.Header.Get("X-Tenant"), obs.TraceIDFrom(ctx))
	relay(w, status, body)
}

// peerStatus is one row of the GET /cluster report.
type peerStatus struct {
	Name      string  `json:"name"`
	URL       string  `json:"url"`
	State     string  `json:"breaker_state"`
	InFlight  int64   `json:"in_flight"`
	RingShare float64 `json:"ring_share"`
}

func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	peers := make([]peerStatus, 0, len(c.peers))
	for _, name := range c.ring.Nodes() {
		p := c.peers[name]
		peers = append(peers, peerStatus{
			Name:      p.name,
			URL:       p.url,
			State:     p.br.State().String(),
			InFlight:  p.inflight.Load(),
			RingShare: c.ring.OwnedFraction(name),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"self":        c.opts.Self,
		"vnodes":      c.opts.VNodes,
		"load_factor": c.opts.LoadFactor,
		"peers":       peers,
	})
}
