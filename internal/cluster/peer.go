package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"

	"subwarpsim/internal/obs"
	"subwarpsim/internal/simcache"
)

// maxPeerBody bounds how much of a peer response the coordinator will
// buffer (a full batch response fits comfortably; a misbehaving peer
// cannot exhaust coordinator memory).
const maxPeerBody = 16 << 20

// Request outcomes recorded per peer in
// sisimd_peer_requests_total{peer,outcome}. The set is closed so every
// series is pre-registered and visible from the first scrape.
const (
	outcomeOK        = "ok"        // usable response relayed (200 or a deterministic 4xx/500)
	outcomeRerouted  = "rerouted"  // transport error or 502/503/504; breaker fed, next peer tried
	outcomeThrottled = "throttled" // peer said 429; alive but saturated, next peer tried
)

var outcomes = []string{outcomeOK, outcomeRerouted, outcomeThrottled}

// peer is one worker daemon as the coordinator sees it: base URL,
// in-flight count (the bounded-load signal), its circuit breaker (the
// PR 4 degradation ladder, per peer), and its pre-registered outcome
// counters.
type peer struct {
	name string // label value and ring node name (host:port)
	url  string // base URL, no trailing slash

	br       *simcache.Breaker
	inflight atomic.Int64
	reqs     map[string]*obs.Counter
}

// peerName derives the ring/label name from a peer URL: the host:port
// when it parses, the raw string otherwise.
func peerName(raw string) string {
	if u, err := url.Parse(raw); err == nil && u.Host != "" {
		return u.Host
	}
	return strings.TrimPrefix(strings.TrimPrefix(raw, "https://"), "http://")
}

// do POSTs one JSON payload to the peer, forwarding the tenant and
// trace identities, and returns the status and (bounded) body. A
// non-nil error means the peer never produced a usable response
// (transport failure) — the caller feeds the breaker and reroutes.
func (p *peer) do(ctx context.Context, client *http.Client, path string,
	payload []byte, tenant, traceID string) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.url+path, bytes.NewReader(payload))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	if traceID != "" {
		req.Header.Set("X-Trace-ID", traceID)
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// retryableStatus reports peer responses that mean "this node cannot
// serve right now" rather than "this job is bad": they feed the
// breaker and reroute. Deterministic failures (4xx, plain 500) would
// fail identically on every node, so they are relayed, not retried.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}
