// Package cluster turns N independent sisimd daemons into one
// cache-affine service: a coordinator consistent-hashes each job's
// simcache content key onto a ring of workers, so a key's results
// concentrate on few nodes and every node's memory-LRU tier stays hot
// for the keys it owns. The determinism contract (DESIGN §3) is what
// makes the scheme sound: a simulation result is a pure function of
// its content key, so ANY node's answer for a key is EVERY node's
// answer — routing affects only latency and cache temperature, never
// results.
//
// Failure handling reuses the repo's degradation ladder
// (simcache.Breaker): each peer gets a circuit breaker, a dead peer is
// routed around (the next node in ring order answers, bit-identically),
// and with every peer dead the coordinator degrades to local
// single-node serving. Large batches scatter-gather with per-peer
// in-flight windows and work stealing (scatter.go).
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over named nodes, each mapped to
// VNodes points so ownership spreads evenly. Immutable after New, so
// reads need no lock; every coordinator built over the same (nodes,
// vnodes) agrees on every key's home node.
type Ring struct {
	vnodes int
	nodes  []string
	points []point // sorted by hash
}

type point struct {
	hash uint64
	node string
}

// ringHash positions a string on the ring (FNV-64a: fast, stable
// across processes, and uniform enough under virtual-node spreading).
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds a ring over the given node names with vnodes virtual
// points per node (minimum 1; 0 means 64).
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{vnodes: vnodes, nodes: append([]string(nil), nodes...)}
	r.points = make([]point, 0, len(nodes)*vnodes)
	for _, n := range nodes {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: ringHash(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties break by name so point order — and therefore routing —
		// is identical no matter how the node list was ordered.
		return r.points[i].node < r.points[j].node
	})
	return r
}

// Nodes returns the ring's node names in construction order.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Preference returns every distinct node in ring order starting at the
// successor of h: element 0 is the key's home node, element 1 the
// first reroute target when the home node is down, and so on. The
// fixed fallback order is what keeps rerouted keys concentrated — all
// of a dead node's keys shift to its ring successors instead of
// scattering.
func (r *Ring) Preference(h uint64) []string {
	if len(r.points) == 0 {
		return nil
	}
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.nodes))
	seen := make(map[string]bool, len(r.nodes))
	for i := 0; i < len(r.points) && len(out) < len(r.nodes); i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// OwnedFraction returns the fraction of the 64-bit hash space whose
// home node is the given node — the ring-ownership gauge, and a
// balance check for tests (with enough virtual nodes every node owns
// roughly 1/N).
func (r *Ring) OwnedFraction(node string) float64 {
	if len(r.points) == 0 {
		return 0
	}
	var owned float64
	for i, p := range r.points {
		if p.node != node {
			continue
		}
		prev := r.points[(i-1+len(r.points))%len(r.points)].hash
		// Unsigned wraparound subtraction handles the arc that crosses 0.
		owned += float64(p.hash - prev)
	}
	return owned / float64(^uint64(0))
}
