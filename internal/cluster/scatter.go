package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"

	"subwarpsim/internal/obs"
	"subwarpsim/internal/server"
	"subwarpsim/internal/simcache"
)

// batchRequest / batchResponse mirror the single node's /v1/batch wire
// format exactly — clients cannot tell which topology answered.
type batchRequest struct {
	Jobs []server.JobSpec `json:"jobs"`
}

type batchResponse struct {
	Results []server.JobResult `json:"results"`
}

func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad batch: "+err.Error())
		return
	}
	if len(req.Jobs) == 0 {
		writeJSONError(w, http.StatusBadRequest, "batch has no jobs")
		return
	}
	if len(req.Jobs) > c.opts.MaxBatch {
		writeJSONError(w, http.StatusBadRequest,
			"batch of "+strconv.Itoa(len(req.Jobs))+" exceeds limit "+strconv.Itoa(c.opts.MaxBatch))
		return
	}
	ctx := r.Context()
	results := c.scatter(ctx, obs.TraceFrom(ctx), req.Jobs,
		r.Header.Get("X-Tenant"), obs.TraceIDFrom(ctx))
	writeJSONBody(w, http.StatusOK, batchResponse{Results: results})
}

// scatter fans a batch across the ring and gathers results back in
// request order.
//
// Sharding: each job is queued to its affinity owner (the first
// live node in its ring preference). Each owner gets Window runner
// slots — the per-peer in-flight window — so a large sweep cannot
// flood one worker's admission queue with hundreds of simultaneous
// requests.
//
// Work stealing: a runner whose own queue runs dry takes shards from
// the tail of the longest remaining queue and executes them on ITS
// peer (prefer=thief). That deliberately trades cache affinity for
// utilization — an idle worker simulating a shard beats a hot cache
// nobody can reach — and is exactly the "queued shards migrate to
// idle peers" behavior the lagging-peer case needs. Stolen shards
// stay bit-identical by the determinism contract.
//
// Failure: each shard execution is a full routeSpec, so a peer dying
// mid-sweep trips its breaker and the remaining shards reroute around
// the ring; with every peer dead they run locally. The result slice
// is indexed by original position throughout — no failure mode can
// drop or reorder entries.
func (c *Coordinator) scatter(ctx context.Context, tr *obs.Trace,
	specs []server.JobSpec, tenant, traceID string) []server.JobResult {
	n := len(specs)
	results := make([]server.JobResult, n)
	payloads := make([][]byte, n)
	hashes := make([]uint64, n)
	routable := make([]bool, n)
	for i, spec := range specs {
		payloads[i], _ = json.Marshal(spec)
		hashes[i], routable[i] = c.jobHash(spec)
	}
	c.batches.Add(int64(n))

	// Build per-owner queues. The "" queue is the local pseudo-peer:
	// unroutable (invalid) specs, and every spec when there are no
	// peers at all.
	queues := make(map[string][]int)
	for i := range specs {
		owner := ""
		if routable[i] {
			for _, name := range c.ring.Preference(hashes[i]) {
				if p := c.peers[name]; p != nil && p.br.State() != simcache.BreakerOpen {
					owner = name
					break
				}
			}
		}
		queues[owner] = append(queues[owner], i)
	}

	var mu sync.Mutex
	// popOwn takes the next shard from the runner's own queue.
	popOwn := func(owner string) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		q := queues[owner]
		if len(q) == 0 {
			return 0, false
		}
		idx := q[0]
		queues[owner] = q[1:]
		return idx, true
	}
	// stealFrom takes a shard from the TAIL of the longest other
	// routable queue (the tail is the work its owner is furthest from
	// reaching, so stealing it delays nothing). The local "" queue is
	// not stealable: it holds unroutable specs whose canonical errors
	// must come from the local server.
	stealFrom := func(thief string) (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		longest, max := "", 0
		for owner, q := range queues {
			if owner == "" || owner == thief {
				continue
			}
			if len(q) > max {
				longest, max = owner, len(q)
			}
		}
		if max == 0 {
			return 0, false
		}
		q := queues[longest]
		idx := q[len(q)-1]
		queues[longest] = q[:len(q)-1]
		return idx, true
	}

	runOne := func(owner string, idx int) {
		spec := specs[idx]
		var status int
		var body []byte
		if routable[idx] {
			status, body = c.routeSpec(ctx, tr, "/v1/jobs", payloads[idx],
				hashes[idx], owner, tenant, traceID)
		} else {
			status, body = c.localDo(ctx, "/v1/jobs", payloads[idx], tenant, traceID)
		}
		results[idx] = resultFromBody(spec, status, body)
	}

	var wg sync.WaitGroup
	runner := func(owner string) {
		defer wg.Done()
		for {
			if ctx.Err() != nil {
				return
			}
			if idx, ok := popOwn(owner); ok {
				runOne(owner, idx)
				continue
			}
			if owner == "" {
				return // the local queue only drains itself
			}
			idx, ok := stealFrom(owner)
			if !ok {
				return
			}
			c.steals.Inc()
			runOne(owner, idx)
		}
	}

	// Every live peer gets Window runners — including peers that own no
	// shards. An owner-less runner's queue is empty from the start, so
	// it goes straight to stealing: that is how an idle peer drains a
	// lagging peer's backlog even when the hash gave it nothing.
	owners := make([]string, 0, len(c.peers)+1)
	for name, p := range c.peers {
		if p.br.State() != simcache.BreakerOpen {
			owners = append(owners, name)
		}
	}
	if len(queues[""]) > 0 || len(owners) == 0 {
		owners = append(owners, "")
	}
	// Union in any queue owner the loop above missed (a breaker that
	// opened between queue building and runner spawn): every queue must
	// have at least its own runners or its shards would never run.
	have := make(map[string]bool, len(owners))
	for _, o := range owners {
		have[o] = true
	}
	for owner := range queues {
		if !have[owner] {
			owners = append(owners, owner)
		}
	}
	for _, owner := range owners {
		for s := 0; s < c.opts.Window; s++ {
			wg.Add(1)
			go runner(owner)
		}
	}
	wg.Wait()

	// Shards abandoned by context cancellation keep zero-value results;
	// stamp them so no entry is silently empty.
	if ctx.Err() != nil {
		for i := range results {
			if results[i].Key == "" && results[i].Error == "" {
				results[i] = server.JobResult{
					Workload:    specs[i].WorkloadID(),
					Error:       "batch abandoned: " + ctx.Err().Error(),
					ErrorStatus: http.StatusRequestTimeout,
				}
			}
		}
	}
	return results
}

// resultFromBody converts one routed response into the batch entry at
// its index: a decoded JobResult for 200s, a structured error entry
// (status + extra fields, exactly what the single node's batch path
// produces) otherwise.
func resultFromBody(spec server.JobSpec, status int, body []byte) server.JobResult {
	if status == http.StatusOK {
		var res server.JobResult
		if err := json.Unmarshal(body, &res); err == nil {
			return res
		}
		return server.JobResult{
			Workload:    spec.WorkloadID(),
			Error:       "undecodable peer response",
			ErrorStatus: http.StatusBadGateway,
		}
	}
	var m map[string]any
	_ = json.Unmarshal(body, &m)
	msg, _ := m["error"].(string)
	if msg == "" {
		msg = http.StatusText(status)
	}
	delete(m, "error")
	res := server.JobResult{Workload: spec.WorkloadID(), Error: msg, ErrorStatus: status}
	if len(m) > 0 {
		res.ErrorExtra = m
	}
	return res
}
