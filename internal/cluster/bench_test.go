package cluster

import (
	"net/http"
	"testing"

	"subwarpsim/internal/server"
	"subwarpsim/internal/simcache"
)

// benchSweep measures matrix-sweep throughput through a coordinator
// fronting n workers: one op is a 24-key /v1/batch sweep, and
// sim-cycles/op feeds benchjson's sim_cycles_per_wall_second.
//
// The cluster's edge on this box is aggregate cache capacity, not CPU
// count: each worker holds a 16-entry memory LRU, so one worker
// thrashes on the 24-key working set every iteration while three
// workers keep their ~8-key shards resident and serve the steady state
// from memory. That is exactly the production shape — N modest nodes
// whose combined hot tier covers a sweep no single node can.
func benchSweep(b *testing.B, n int) {
	wopts := func(int) server.Options {
		return server.Options{Workers: 1, SimWorkers: 1, Cache: simcache.NewMemory(16)}
	}
	c := newTestCluster(b, n, wopts, nil, func(o *Options) { o.Window = 2 })
	specs := distinctSpecs(24)

	var cycles int64
	for warm := 0; warm < 2; warm++ {
		results, code := postBatch(b, c.front.URL, specs)
		if code != http.StatusOK {
			b.Fatalf("warm-up batch = %d", code)
		}
		cycles = 0
		for i, r := range results {
			if r.Failed() {
				b.Fatalf("warm-up entry %d failed: %s", i, r.Error)
			}
			cycles += int64(r.Counters.Cycles)
		}
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, code := postBatch(b, c.front.URL, specs); code != http.StatusOK {
			b.Fatalf("batch = %d", code)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(cycles), "sim-cycles/op")
}

func BenchmarkClusterSweep1Worker(b *testing.B)  { benchSweep(b, 1) }
func BenchmarkClusterSweep3Workers(b *testing.B) { benchSweep(b, 3) }

// BenchmarkClusterRepeatedKey measures the hot path the affinity
// scheme optimizes: a key already resident in its home node's memory
// tier, served again through the coordinator (routing + one peer hop +
// a worker-side memory-cache hit). ns/op is the second-pass
// repeated-key latency.
func BenchmarkClusterRepeatedKey(b *testing.B) {
	c := newTestCluster(b, 3, nil, nil, nil)
	spec := server.JobSpec{Microbench: 4, SI: true}
	if _, code, _ := postVia(b, c.front.URL, spec, nil); code != http.StatusOK {
		b.Fatalf("warm-up POST = %d", code)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, code, _ := postVia(b, c.front.URL, spec, nil)
		if code != http.StatusOK {
			b.Fatalf("POST = %d", code)
		}
		if !res.Cached {
			b.Fatal("repeated key missed its home node's cache")
		}
	}
}
