package config

import "testing"

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if c.NumSMs != 2 {
		t.Errorf("NumSMs = %d, want 2", c.NumSMs)
	}
	if c.BlocksPerSM != 4 {
		t.Errorf("BlocksPerSM = %d, want 4", c.BlocksPerSM)
	}
	if c.WarpSlotsPerBlock != 8 {
		t.Errorf("WarpSlotsPerBlock = %d, want 8", c.WarpSlotsPerBlock)
	}
	if c.WarpSlotsPerSM() != 32 {
		t.Errorf("WarpSlotsPerSM = %d, want 32", c.WarpSlotsPerSM())
	}
	if c.L1DataBytes != 128<<10 {
		t.Errorf("L1DataBytes = %d, want 128KB", c.L1DataBytes)
	}
	if c.L1InstrBytes != 64<<10 || c.L0InstrBytes != 16<<10 {
		t.Errorf("instruction caches = %d/%d, want 64KB/16KB", c.L1InstrBytes, c.L0InstrBytes)
	}
	if c.L1MissLatency != 600 {
		t.Errorf("L1MissLatency = %d, want 600", c.L1MissLatency)
	}
	if c.SI.SwitchLatency != 6 {
		t.Errorf("SwitchLatency = %d, want 6", c.SI.SwitchLatency)
	}
	if c.SI.Enabled {
		t.Error("Default() must be the baseline (SI disabled)")
	}
}

func TestWithSI(t *testing.T) {
	c := Default().WithSI(true, TriggerAllStalled)
	if !c.SI.Enabled || !c.SI.Yield || c.SI.Trigger != TriggerAllStalled {
		t.Errorf("WithSI produced %+v", c.SI)
	}
	// Original default untouched (value semantics).
	if Default().SI.Enabled {
		t.Error("Default() mutated")
	}
}

func TestTriggerSatisfied(t *testing.T) {
	cases := []struct {
		trig          SelectTrigger
		stalled, live int
		want          bool
	}{
		{TriggerAnyStalled, 0, 8, false},
		{TriggerAnyStalled, 1, 8, true},
		{TriggerHalfStalled, 3, 8, false},
		{TriggerHalfStalled, 4, 8, true},
		{TriggerHalfStalled, 1, 2, true},
		{TriggerHalfStalled, 1, 3, false},
		{TriggerAllStalled, 7, 8, false},
		{TriggerAllStalled, 8, 8, true},
		{TriggerAllStalled, 1, 1, true},
		{TriggerAllStalled, 0, 0, false},
		{TriggerAnyStalled, 1, 0, false},
	}
	for _, c := range cases {
		if got := c.trig.Satisfied(c.stalled, c.live); got != c.want {
			t.Errorf("%v.Satisfied(%d, %d) = %v, want %v", c.trig, c.stalled, c.live, got, c.want)
		}
	}
}

func TestTriggerString(t *testing.T) {
	if TriggerAnyStalled.String() != "N>0" ||
		TriggerHalfStalled.String() != "N>=0.5" ||
		TriggerAllStalled.String() != "N=1" {
		t.Error("trigger String() does not match paper notation")
	}
}

func TestPolicyName(t *testing.T) {
	if got := Default().PolicyName(); got != "baseline" {
		t.Errorf("PolicyName = %q", got)
	}
	if got := Default().WithSI(false, TriggerAllStalled).PolicyName(); got != "SOS,N=1" {
		t.Errorf("PolicyName = %q", got)
	}
	if got := Default().WithSI(true, TriggerHalfStalled).PolicyName(); got != "Both,N>=0.5" {
		t.Errorf("PolicyName = %q", got)
	}
}

func TestEffectiveMaxSubwarps(t *testing.T) {
	c := Default()
	if got := c.EffectiveMaxSubwarps(); got != 1 {
		t.Errorf("baseline EffectiveMaxSubwarps = %d, want 1", got)
	}
	c = c.WithSI(false, TriggerHalfStalled)
	if got := c.EffectiveMaxSubwarps(); got != 32 {
		t.Errorf("unlimited = %d, want 32", got)
	}
	c.SI.MaxSubwarps = 4
	if got := c.EffectiveMaxSubwarps(); got != 4 {
		t.Errorf("capped = %d, want 4", got)
	}
	c.SI.MaxSubwarps = 64
	if got := c.EffectiveMaxSubwarps(); got != 32 {
		t.Errorf("over-cap = %d, want 32", got)
	}
}

func TestInstrsPerLine(t *testing.T) {
	c := Default()
	if got := c.InstrsPerLine(); got != 16 {
		t.Errorf("InstrsPerLine = %d, want 16 (128B line / 8B instr)", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero SMs", func(c *Config) { c.NumSMs = 0 }},
		{"zero blocks", func(c *Config) { c.BlocksPerSM = 0 }},
		{"zero warp slots", func(c *Config) { c.WarpSlotsPerBlock = 0 }},
		{"zero miss latency", func(c *Config) { c.L1MissLatency = 0 }},
		{"zero hit latency", func(c *Config) { c.L1DataHitLatency = 0 }},
		{"non-pow2 line", func(c *Config) { c.CacheLineBytes = 100 }},
		{"instr not dividing line", func(c *Config) { c.InstrBytes = 7 }},
		{"tiny L0", func(c *Config) { c.L0InstrBytes = 64 }},
		{"tiny L1I", func(c *Config) { c.L1InstrBytes = 64 }},
		{"tiny L1D", func(c *Config) { c.L1DataBytes = 64 }},
		{"too many scoreboards", func(c *Config) { c.ScoreboardsPerWarp = 17 }},
		{"zero math latency", func(c *Config) { c.MathLatency = 0 }},
		{"zero regfile", func(c *Config) { c.RegFilePerBlock = 0 }},
		{"negative switch latency", func(c *Config) {
			c.SI.Enabled = true
			c.SI.SwitchLatency = -1
		}},
		{"zero yield threshold", func(c *Config) {
			c.SI.Enabled = true
			c.SI.Yield = true
			c.SI.YieldThreshold = 0
		}},
		{"negative max subwarps", func(c *Config) {
			c.SI.Enabled = true
			c.SI.MaxSubwarps = -1
		}},
	}
	for _, m := range mutations {
		c := Default()
		m.mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", m.name)
		}
	}
}

func TestOrderString(t *testing.T) {
	for _, o := range []SubwarpOrder{OrderTakenFirst, OrderFallthroughFirst, OrderLargestFirst, OrderRandom} {
		if o.String() == "" {
			t.Errorf("empty String for order %d", int(o))
		}
	}
}
