// Package config defines the architecture and policy parameters of the
// simulated Turing-like GPU, mirroring Table I of the paper plus the
// Subwarp Interleaving policy knobs from Sections III and V.
package config

import (
	"errors"
	"fmt"
	"strings"

	"subwarpsim/internal/faults"
	"subwarpsim/internal/trace"
)

// SelectTrigger encodes when the subwarp scheduler triggers a
// subwarp-select on a stalled warp, expressed as the fraction N of
// stalled warps among live warps in a processing block (Section III-C3).
type SelectTrigger int

const (
	// TriggerAnyStalled fires as soon as at least one warp in the
	// processing block is stalled (N > 0).
	TriggerAnyStalled SelectTrigger = iota
	// TriggerHalfStalled fires when at least half of the live warps are
	// stalled (N >= 0.5).
	TriggerHalfStalled
	// TriggerAllStalled fires only when every live warp is stalled
	// (N = 1), the most conservative, demand-based policy.
	TriggerAllStalled
)

// String returns the paper's notation for the trigger.
func (t SelectTrigger) String() string {
	switch t {
	case TriggerAnyStalled:
		return "N>0"
	case TriggerHalfStalled:
		return "N>=0.5"
	case TriggerAllStalled:
		return "N=1"
	default:
		return fmt.Sprintf("SelectTrigger(%d)", int(t))
	}
}

// Satisfied reports whether the trigger condition holds for the given
// stalled and live warp counts.
func (t SelectTrigger) Satisfied(stalled, live int) bool {
	if live == 0 || stalled == 0 {
		return false
	}
	switch t {
	case TriggerAnyStalled:
		return stalled > 0
	case TriggerHalfStalled:
		return 2*stalled >= live
	case TriggerAllStalled:
		return stalled >= live
	default:
		return false
	}
}

// SchedPolicy selects the warp-scheduler arbitration rule each
// processing block uses to pick the next issuing warp. Every policy is
// greedy on the last-issued warp (it keeps issuing while it can) and
// deterministic over the block's frozen warp statuses; policies differ
// only in which warp they fall back to when the greedy warp stalls.
// That stickiness is load-bearing: the compiled engine's basic-block
// fast-forward assumes a re-pick of the same warp over unchanged
// statuses (see internal/sm/compiled.go and DESIGN §15).
type SchedPolicy int

const (
	// SchedLRR is loose round-robin: on a stall, scan the warp slots
	// circularly starting after the last-issued slot and take the first
	// ready one. This is bit-identical to the pre-zoo scheduler and is
	// the default.
	SchedLRR SchedPolicy = iota
	// SchedGTO is greedy-then-oldest: on a stall, fall back to the
	// ready warp with the lowest warp ID (IDs are assigned in admission
	// order, so lowest ID = oldest).
	SchedGTO
	// SchedWaSP is a WaSP-style phase-offset policy (Zhang et al.,
	// PAPERS.md): warp slots are statically striped into phase groups
	// and earlier groups always win arbitration, so leader warps run
	// ahead of the pack and warm caches for the trailing groups;
	// within a group, arbitration is round-robin.
	SchedWaSP

	// NumSchedPolicies bounds the valid SchedPolicy values.
	NumSchedPolicies = int(SchedWaSP) + 1
)

// String returns the conventional short name for the policy.
func (p SchedPolicy) String() string {
	switch p {
	case SchedLRR:
		return "lrr"
	case SchedGTO:
		return "gto"
	case SchedWaSP:
		return "wasp"
	default:
		return fmt.Sprintf("SchedPolicy(%d)", int(p))
	}
}

// ParseSchedPolicy maps a CLI/API policy name onto the config
// constant. The empty string parses as the LRR default.
func ParseSchedPolicy(name string) (SchedPolicy, error) {
	switch strings.ToLower(name) {
	case "", "lrr":
		return SchedLRR, nil
	case "gto":
		return SchedGTO, nil
	case "wasp":
		return SchedWaSP, nil
	default:
		return 0, fmt.Errorf("unknown scheduler policy %q (lrr, gto, wasp)", name)
	}
}

// SubwarpOrder controls which side of a divergent branch the divergence
// handling unit activates first (Section VI discusses order sensitivity).
type SubwarpOrder int

const (
	// OrderTakenFirst activates the taken-path subwarp first, the
	// deterministic baseline behaviour.
	OrderTakenFirst SubwarpOrder = iota
	// OrderFallthroughFirst activates the fall-through subwarp first.
	OrderFallthroughFirst
	// OrderLargestFirst activates the subwarp with the most threads
	// first, mimicking predominant-subwarp scheduling.
	OrderLargestFirst
	// OrderRandom randomizes activation order per divergence event, the
	// mitigation suggested in the paper's Discussion section.
	OrderRandom
)

func (o SubwarpOrder) String() string {
	switch o {
	case OrderTakenFirst:
		return "taken-first"
	case OrderFallthroughFirst:
		return "fallthrough-first"
	case OrderLargestFirst:
		return "largest-first"
	case OrderRandom:
		return "random"
	default:
		return fmt.Sprintf("SubwarpOrder(%d)", int(o))
	}
}

// SI groups the Subwarp Interleaving feature knobs.
type SI struct {
	// Enabled turns the subwarp scheduler on. When false the model is
	// the baseline Turing-like SM with serialized subwarp execution.
	Enabled bool
	// Yield enables the optional subwarp-yield transition ("Both" in the
	// paper's result figures; plain switch-on-stall is "SOS").
	Yield bool
	// YieldThreshold is the number of outstanding long-latency
	// operations an active subwarp issues before it eagerly yields its
	// scheduling slot. Ignored unless Yield is set.
	YieldThreshold int
	// Trigger selects the subwarp-select trigger policy.
	Trigger SelectTrigger
	// MaxSubwarps caps independently schedulable subwarps per warp,
	// i.e. the number of Thread Status Table entries (Fig. 15 sweep).
	// Zero or WarpSize means unlimited (32).
	MaxSubwarps int
	// SwitchLatency is the fixed subwarp-select cost in cycles.
	SwitchLatency int
	// DWS approximates Dynamic Warp Subdivision (Meng et al., ISCA
	// 2010), the paper's closest related work (Section VII-B): diverged
	// subwarps run concurrently, but each concurrently parked subwarp
	// occupies one of the processing block's *free* warp slots, so DWS
	// starves when occupancy is high. Under DWS the subwarp switch is
	// free (splits live in their own slots) and selection is eager.
	DWS bool
}

// Config holds every architecture parameter of the simulated GPU.
// The zero value is not usable; start from Default().
type Config struct {
	// Table I parameters.
	NumSMs             int // streaming multiprocessors
	BlocksPerSM        int // processing blocks per SM
	WarpSlotsPerBlock  int // warp slots per processing block {2,4,8}
	L1DataBytes        int // L1 data cache size
	L1InstrBytes       int // L1 instruction cache size (per SM)
	L0InstrBytes       int // L0 instruction cache size (per processing block)
	L1MissLatency      int // cycles {300, 600, 900}
	L1DataHitLatency   int // cycles from issue to writeback on an L1D hit
	TexExtraLatency    int // additional cycles on the texture path
	CacheLineBytes     int // line size for all caches
	InstrBytes         int // encoded size of one instruction
	L0MissPenalty      int // fetch cycles to fill L0 from an L1I hit
	L1IMissPenalty     int // fetch cycles to fill L1I from memory
	MathLatency        int // fixed-latency ALU pipeline depth
	RegFilePerBlock    int // 32-bit registers per processing block
	ScoreboardsPerWarp int // NSB count-based scoreboards per warp

	// RT core model.
	RTStepLatency int // cycles per BVH traversal step
	RTBaseLatency int // fixed overhead per TraceRay

	// Scheduling.
	Order SubwarpOrder // divergent-branch activation order
	// SchedPolicy is the warp-scheduler arbitration rule (default
	// SchedLRR, the pre-zoo behaviour). The result cache keys it only
	// when it differs from LRR, so existing cache entries stay valid.
	SchedPolicy SchedPolicy

	// Compiled selects the execution engine, not the architecture:
	// when true (the default) each program is lowered once into a
	// pre-decoded operation stream and eligible straight-line
	// convergent regions are retired in bulk (basic-block
	// fast-forward). Results — counters, derived metrics, memory
	// fingerprints, trace streams — are bit-identical to the
	// interpreter (cfg.Compiled = false), which the differential and
	// fuzz suites enforce, so like Trace and Faults it is excluded
	// from the result-cache canonicalization.
	Compiled bool

	// Subwarp Interleaving.
	SI SI

	// Trace optionally attaches the observability layer's event
	// recorder to the run. It is not an architecture parameter: nil
	// (the default) disables tracing entirely, and every hot-path
	// emission site gates on a single nil check, so simulation results
	// and performance are unchanged when unset.
	Trace *trace.Recorder

	// Faults optionally attaches the deterministic fault-injection
	// layer to the run. Like Trace it is not an architecture
	// parameter: it is excluded from the result-cache canonicalization
	// (injected latency never changes simulated counters, and injected
	// errors/panics abort the run before any result is published), and
	// nil — the default — injects nothing.
	Faults *faults.Injector
}

// Default returns the paper's baseline Turing-like configuration
// (Table I) with SI disabled: 2 SMs, 4 processing blocks per SM, 8 warp
// slots per block (32 warp slots per SM), 128 KB L1D, 64 KB L1I, 16 KB
// L0I, 600-cycle L1 miss latency, 6-cycle subwarp switch latency.
func Default() Config {
	return Config{
		NumSMs:             2,
		BlocksPerSM:        4,
		WarpSlotsPerBlock:  8,
		L1DataBytes:        128 << 10,
		L1InstrBytes:       64 << 10,
		L0InstrBytes:       16 << 10,
		L1MissLatency:      600,
		L1DataHitLatency:   30,
		TexExtraLatency:    20,
		CacheLineBytes:     128,
		InstrBytes:         8,
		L0MissPenalty:      20,
		L1IMissPenalty:     200,
		MathLatency:        4,
		RegFilePerBlock:    16384,
		ScoreboardsPerWarp: 8,
		RTStepLatency:      8,
		RTBaseLatency:      150,
		Order:              OrderTakenFirst,
		Compiled:           true,
		SI: SI{
			Enabled:        false,
			Yield:          false,
			YieldThreshold: 1,
			Trigger:        TriggerHalfStalled,
			MaxSubwarps:    0,
			SwitchLatency:  6,
		},
	}
}

// WithSI returns a copy of c with Subwarp Interleaving enabled using the
// given yield mode and trigger policy.
func (c Config) WithSI(yield bool, trigger SelectTrigger) Config {
	c.SI.Enabled = true
	c.SI.Yield = yield
	c.SI.Trigger = trigger
	return c
}

// WithDWS returns a copy of c modeling Dynamic Warp Subdivision: eager
// subwarp parallelism budgeted by free warp slots.
func (c Config) WithDWS() Config {
	c.SI.Enabled = true
	c.SI.DWS = true
	c.SI.Yield = false
	c.SI.Trigger = TriggerAnyStalled
	c.SI.SwitchLatency = 1
	return c
}

// WarpSlotsPerSM returns the total warp slots across an SM's processing
// blocks.
func (c Config) WarpSlotsPerSM() int { return c.BlocksPerSM * c.WarpSlotsPerBlock }

// EffectiveMaxSubwarps normalizes the MaxSubwarps knob: zero and values
// above 32 both mean the unlimited 32-entry TST.
func (c Config) EffectiveMaxSubwarps() int {
	if !c.SI.Enabled {
		return 1
	}
	if c.SI.MaxSubwarps <= 0 || c.SI.MaxSubwarps > 32 {
		return 32
	}
	return c.SI.MaxSubwarps
}

// InstrsPerLine returns how many encoded instructions fit in one
// instruction cache line.
func (c Config) InstrsPerLine() int { return c.CacheLineBytes / c.InstrBytes }

// Validate reports the first configuration error found, or nil.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return errors.New("config: NumSMs must be positive")
	case c.BlocksPerSM <= 0:
		return errors.New("config: BlocksPerSM must be positive")
	case c.WarpSlotsPerBlock <= 0:
		return errors.New("config: WarpSlotsPerBlock must be positive")
	case c.L1MissLatency <= 0:
		return errors.New("config: L1MissLatency must be positive")
	case c.L1DataHitLatency <= 0:
		return errors.New("config: L1DataHitLatency must be positive")
	case c.CacheLineBytes <= 0 || c.CacheLineBytes&(c.CacheLineBytes-1) != 0:
		return errors.New("config: CacheLineBytes must be a positive power of two")
	case c.InstrBytes <= 0 || c.CacheLineBytes%c.InstrBytes != 0:
		return errors.New("config: InstrBytes must divide CacheLineBytes")
	case c.L0InstrBytes < c.CacheLineBytes:
		return errors.New("config: L0InstrBytes smaller than one line")
	case c.L1InstrBytes < c.CacheLineBytes:
		return errors.New("config: L1InstrBytes smaller than one line")
	case c.L1DataBytes < c.CacheLineBytes:
		return errors.New("config: L1DataBytes smaller than one line")
	case c.ScoreboardsPerWarp <= 0 || c.ScoreboardsPerWarp > 16:
		return errors.New("config: ScoreboardsPerWarp must be in [1,16]")
	case c.MathLatency <= 0:
		return errors.New("config: MathLatency must be positive")
	case c.RegFilePerBlock <= 0:
		return errors.New("config: RegFilePerBlock must be positive")
	case c.SchedPolicy < 0 || int(c.SchedPolicy) >= NumSchedPolicies:
		return errors.New("config: SchedPolicy out of range")
	}
	if c.SI.Enabled {
		if c.SI.SwitchLatency < 0 {
			return errors.New("config: SI.SwitchLatency must be non-negative")
		}
		if c.SI.Yield && c.SI.YieldThreshold <= 0 {
			return errors.New("config: SI.YieldThreshold must be positive when Yield is set")
		}
		if c.SI.MaxSubwarps < 0 {
			return errors.New("config: SI.MaxSubwarps must be non-negative")
		}
	}
	return nil
}

// PolicyName returns the paper's label for the SI configuration,
// e.g. "baseline", "SOS,N=1" or "Both,N>=0.5".
func (c Config) PolicyName() string {
	if !c.SI.Enabled {
		return "baseline"
	}
	if c.SI.DWS {
		return "DWS"
	}
	mode := "SOS"
	if c.SI.Yield {
		mode = "Both"
	}
	return mode + "," + c.SI.Trigger.String()
}
