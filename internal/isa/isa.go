// Package isa defines the SASS-like instruction set executed by the
// simulated SM.
//
// The ISA mirrors the subset of NVIDIA SASS the paper's mechanism
// interacts with: fixed-latency math, variable-latency memory and
// texture operations guarded by count-based scoreboards (the "&wr=sbN"
// / "&req=sbN" annotations of Fig. 9), convergence-barrier control flow
// (BSSY/BSYNC), direct and indirect branches, an asynchronous TraceRay
// operation serviced by the RT core, and an optional subwarp-yield
// scheduling hint.
//
// Programs execute functionally: threads carry 32-bit registers and
// predicate registers, loads compute real addresses, and branches
// resolve from computed predicates, making the simulator
// execution-driven like the proprietary simulator in the paper.
package isa

import "fmt"

// Architectural limits.
const (
	// NumRegs is the number of 32-bit general-purpose registers
	// addressable per thread.
	NumRegs = 64
	// NumPreds is the number of predicate registers per thread. The
	// highest predicate (PT) reads as constant true.
	NumPreds = 8
	// PT is the always-true predicate register index.
	PT = NumPreds - 1
	// NumBarriers is the number of convergence barrier registers per
	// warp (B0..B15).
	NumBarriers = 16
)

// Opcode enumerates the instruction set.
type Opcode uint8

const (
	NOP Opcode = iota

	// Fixed-latency integer/float ALU operations.
	MOVI   // Rd = Imm
	MOV    // Rd = Ra
	S2R    // Rd = special register (SrcA selects which)
	IADD   // Rd = Ra + Rb
	IADDI  // Rd = Ra + Imm
	IMUL   // Rd = Ra * Rb
	IMULI  // Rd = Ra * Imm
	IAND   // Rd = Ra & Rb
	IOR    // Rd = Ra | Rb
	IXOR   // Rd = Ra ^ Rb
	SHL    // Rd = Ra << (Imm & 31)
	SHR    // Rd = Ra >> (Imm & 31)
	ISETP  // Pd = Ra <Cmp> Rb
	ISETPI // Pd = Ra <Cmp> Imm
	FADD   // Rd = Ra +f Rb
	FMUL   // Rd = Ra *f Rb
	FFMA   // Rd = Ra *f Rb +f Rc
	MUFU   // Rd = transcendental(Ra); shared functional unit, longer pipeline

	// Variable-latency operations tracked by count-based scoreboards.
	LDG   // Rd = global[Ra + Imm]           (LSU path)
	STG   // global[Ra + Imm] = Rb           (LSU path, no consumer stall)
	TLD   // Rd = texture[Ra + Imm]          (TEX path)
	TEX   // Rd = texture[Ra + Rb + Imm]     (TEX path)
	TRACE // Rd = RTCore.TraceRay(ray Ra)    (RT core, returns hit record)

	// Control flow.
	BRA   // if pred: PC = Target
	BRX   // PC = Ra (per-thread indirect branch, e.g. shader dispatch)
	BSSY  // register active threads in barrier B, reconvergence at Target
	BSYNC // wait at barrier B until all participants arrive, then converge

	// Scheduling.
	YIELD // subwarp-yield hint (no architectural effect)
	EXIT  // thread terminates

	numOpcodes // sentinel
)

var opNames = [numOpcodes]string{
	NOP: "NOP", MOVI: "MOVI", MOV: "MOV", S2R: "S2R",
	IADD: "IADD", IADDI: "IADDI", IMUL: "IMUL", IMULI: "IMULI",
	IAND: "IAND", IOR: "IOR", IXOR: "IXOR", SHL: "SHL", SHR: "SHR",
	ISETP: "ISETP", ISETPI: "ISETPI",
	FADD: "FADD", FMUL: "FMUL", FFMA: "FFMA", MUFU: "MUFU",
	LDG: "LDG", STG: "STG", TLD: "TLD", TEX: "TEX", TRACE: "TRACE",
	BRA: "BRA", BRX: "BRX", BSSY: "BSSY", BSYNC: "BSYNC",
	YIELD: "YIELD", EXIT: "EXIT",
}

// String returns the mnemonic.
func (o Opcode) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// Valid reports whether the opcode is a defined instruction.
func (o Opcode) Valid() bool { return o < numOpcodes && opNames[o] != "" }

// IsLongLatency reports whether the opcode is a variable-latency
// operation that must be guarded by a count-based scoreboard.
func (o Opcode) IsLongLatency() bool {
	switch o {
	case LDG, TLD, TEX, TRACE:
		return true
	}
	return false
}

// IsTexPath reports whether writeback arrives on the texture-unit port
// (one of the two writeback broadcast ports in Fig. 8b).
func (o Opcode) IsTexPath() bool { return o == TLD || o == TEX }

// IsControl reports whether the opcode redirects or synchronizes
// control flow.
func (o Opcode) IsControl() bool {
	switch o {
	case BRA, BRX, BSSY, BSYNC, EXIT:
		return true
	}
	return false
}

// WritesReg reports whether the instruction writes a destination GPR.
func (o Opcode) WritesReg() bool {
	switch o {
	case MOVI, MOV, S2R, IADD, IADDI, IMUL, IMULI, IAND, IOR, IXOR,
		SHL, SHR, FADD, FMUL, FFMA, MUFU, LDG, TLD, TEX, TRACE:
		return true
	}
	return false
}

// CmpOp is a comparison operator for ISETP/ISETPI.
type CmpOp uint8

const (
	CmpEQ CmpOp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c CmpOp) String() string {
	switch c {
	case CmpEQ:
		return "EQ"
	case CmpNE:
		return "NE"
	case CmpLT:
		return "LT"
	case CmpLE:
		return "LE"
	case CmpGT:
		return "GT"
	case CmpGE:
		return "GE"
	default:
		return fmt.Sprintf("CmpOp(%d)", uint8(c))
	}
}

// Eval applies the comparison to signed 32-bit operands.
func (c CmpOp) Eval(a, b int32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	default:
		return false
	}
}

// Special register selectors for S2R.
const (
	SRLaneID   = 0 // thread index within the warp
	SRWarpID   = 1 // warp index within the CTA
	SRCTAID    = 2 // CTA index within the grid
	SRThreadID = 3 // global thread id: ctaID*ctaSize + warpID*32 + lane
)

// NoScoreboard marks the absence of a scoreboard annotation.
const NoScoreboard = -1

// Instr is one decoded instruction. The zero value is a NOP with no
// scoreboard annotations (WrScbd/ReqScbd must be NoScoreboard; use
// MakeInstr or the Builder which initialize them).
type Instr struct {
	Op   Opcode
	Dst  uint8 // destination GPR, or predicate index for ISETP*
	SrcA uint8
	SrcB uint8
	SrcC uint8
	Cmp  CmpOp
	Imm  int32

	// Pred guards execution of BRA: the branch is taken by threads
	// whose predicate Pred (negated if PredNeg) is true.
	Pred    uint8
	PredNeg bool

	// Target is the resolved instruction index for BRA and the
	// reconvergence point for BSSY.
	Target int

	// Barrier is the convergence barrier register index for BSSY/BSYNC.
	Barrier uint8

	// WrScbd, when not NoScoreboard, names the count-based scoreboard
	// incremented at issue and decremented at writeback ("&wr=sbN").
	WrScbd int8
	// ReqScbd, when not NoScoreboard, names the scoreboard that must
	// read zero before this instruction can issue ("&req=sbN").
	ReqScbd int8
}

// MakeInstr returns an Instr of the given opcode with scoreboard
// annotations cleared.
func MakeInstr(op Opcode) Instr {
	return Instr{Op: op, WrScbd: NoScoreboard, ReqScbd: NoScoreboard}
}

// String disassembles the instruction.
func (in Instr) String() string {
	s := in.disasm()
	if in.WrScbd != NoScoreboard {
		s += fmt.Sprintf(" &wr=sb%d", in.WrScbd)
	}
	if in.ReqScbd != NoScoreboard {
		s += fmt.Sprintf(" &req=sb%d", in.ReqScbd)
	}
	return s
}

func (in Instr) disasm() string {
	switch in.Op {
	case NOP, YIELD, EXIT:
		return in.Op.String()
	case MOVI:
		return fmt.Sprintf("MOVI R%d, %d", in.Dst, in.Imm)
	case MOV:
		return fmt.Sprintf("MOV R%d, R%d", in.Dst, in.SrcA)
	case S2R:
		return fmt.Sprintf("S2R R%d, SR%d", in.Dst, in.SrcA)
	case IADD, IMUL, IAND, IOR, IXOR, FADD, FMUL:
		return fmt.Sprintf("%s R%d, R%d, R%d", in.Op, in.Dst, in.SrcA, in.SrcB)
	case IADDI, IMULI, SHL, SHR:
		return fmt.Sprintf("%s R%d, R%d, %d", in.Op, in.Dst, in.SrcA, in.Imm)
	case FFMA:
		return fmt.Sprintf("FFMA R%d, R%d, R%d, R%d", in.Dst, in.SrcA, in.SrcB, in.SrcC)
	case MUFU:
		return fmt.Sprintf("MUFU R%d, R%d", in.Dst, in.SrcA)
	case ISETP:
		return fmt.Sprintf("ISETP.%s P%d, R%d, R%d", in.Cmp, in.Dst, in.SrcA, in.SrcB)
	case ISETPI:
		return fmt.Sprintf("ISETP.%s P%d, R%d, %d", in.Cmp, in.Dst, in.SrcA, in.Imm)
	case LDG:
		return fmt.Sprintf("LDG R%d, [R%d+%d]", in.Dst, in.SrcA, in.Imm)
	case STG:
		return fmt.Sprintf("STG [R%d+%d], R%d", in.SrcA, in.Imm, in.SrcB)
	case TLD:
		return fmt.Sprintf("TLD R%d, [R%d+%d]", in.Dst, in.SrcA, in.Imm)
	case TEX:
		return fmt.Sprintf("TEX R%d, [R%d+R%d+%d]", in.Dst, in.SrcA, in.SrcB, in.Imm)
	case TRACE:
		return fmt.Sprintf("TRACE R%d, R%d", in.Dst, in.SrcA)
	case BRA:
		neg := ""
		if in.PredNeg {
			neg = "!"
		}
		if in.Pred == PT && !in.PredNeg {
			return fmt.Sprintf("BRA %d", in.Target)
		}
		return fmt.Sprintf("@%sP%d BRA %d", neg, in.Pred, in.Target)
	case BRX:
		return fmt.Sprintf("BRX R%d", in.SrcA)
	case BSSY:
		return fmt.Sprintf("BSSY B%d, %d", in.Barrier, in.Target)
	case BSYNC:
		return fmt.Sprintf("BSYNC B%d", in.Barrier)
	default:
		return in.Op.String()
	}
}
