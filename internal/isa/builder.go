package isa

import "fmt"

// Builder assembles a Program with symbolic labels. Methods append one
// instruction each and return the builder for chaining. Labels may be
// referenced before they are defined; Build resolves them and fails on
// dangling references.
type Builder struct {
	name   string
	code   []Instr
	labels map[string]int
	fixups []fixup
	regs   int
	err    error
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder starts a program with the given kernel name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.code) }

// SetRegsPerThread declares the kernel's register footprint.
func (b *Builder) SetRegsPerThread(n int) *Builder {
	b.regs = n
	return b
}

// Label binds name to the next instruction's PC.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf("isa builder %q: "+format, append([]any{b.name}, args...)...)
	}
}

func (b *Builder) emit(in Instr) *Builder {
	b.code = append(b.code, in)
	return b
}

// Raw appends a pre-constructed instruction verbatim.
func (b *Builder) Raw(in Instr) *Builder { return b.emit(in) }

// Nop appends a NOP.
func (b *Builder) Nop() *Builder { return b.emit(MakeInstr(NOP)) }

// Movi sets Rd to an immediate.
func (b *Builder) Movi(rd uint8, imm int32) *Builder {
	in := MakeInstr(MOVI)
	in.Dst, in.Imm = rd, imm
	return b.emit(in)
}

// Mov copies Ra to Rd.
func (b *Builder) Mov(rd, ra uint8) *Builder {
	in := MakeInstr(MOV)
	in.Dst, in.SrcA = rd, ra
	return b.emit(in)
}

// S2R reads a special register into Rd.
func (b *Builder) S2R(rd uint8, sr int) *Builder {
	in := MakeInstr(S2R)
	in.Dst, in.SrcA = rd, uint8(sr)
	return b.emit(in)
}

func (b *Builder) alu3(op Opcode, rd, ra, rb uint8) *Builder {
	in := MakeInstr(op)
	in.Dst, in.SrcA, in.SrcB = rd, ra, rb
	return b.emit(in)
}

func (b *Builder) aluImm(op Opcode, rd, ra uint8, imm int32) *Builder {
	in := MakeInstr(op)
	in.Dst, in.SrcA, in.Imm = rd, ra, imm
	return b.emit(in)
}

// Iadd emits Rd = Ra + Rb.
func (b *Builder) Iadd(rd, ra, rb uint8) *Builder { return b.alu3(IADD, rd, ra, rb) }

// Iaddi emits Rd = Ra + imm.
func (b *Builder) Iaddi(rd, ra uint8, imm int32) *Builder { return b.aluImm(IADDI, rd, ra, imm) }

// Imul emits Rd = Ra * Rb.
func (b *Builder) Imul(rd, ra, rb uint8) *Builder { return b.alu3(IMUL, rd, ra, rb) }

// Imuli emits Rd = Ra * imm.
func (b *Builder) Imuli(rd, ra uint8, imm int32) *Builder { return b.aluImm(IMULI, rd, ra, imm) }

// Iand emits Rd = Ra & Rb.
func (b *Builder) Iand(rd, ra, rb uint8) *Builder { return b.alu3(IAND, rd, ra, rb) }

// Ior emits Rd = Ra | Rb.
func (b *Builder) Ior(rd, ra, rb uint8) *Builder { return b.alu3(IOR, rd, ra, rb) }

// Ixor emits Rd = Ra ^ Rb.
func (b *Builder) Ixor(rd, ra, rb uint8) *Builder { return b.alu3(IXOR, rd, ra, rb) }

// Shl emits Rd = Ra << imm.
func (b *Builder) Shl(rd, ra uint8, imm int32) *Builder { return b.aluImm(SHL, rd, ra, imm) }

// Shr emits Rd = Ra >> imm.
func (b *Builder) Shr(rd, ra uint8, imm int32) *Builder { return b.aluImm(SHR, rd, ra, imm) }

// Fadd emits Rd = Ra +f Rb.
func (b *Builder) Fadd(rd, ra, rb uint8) *Builder { return b.alu3(FADD, rd, ra, rb) }

// Fmul emits Rd = Ra *f Rb.
func (b *Builder) Fmul(rd, ra, rb uint8) *Builder { return b.alu3(FMUL, rd, ra, rb) }

// Ffma emits Rd = Ra*Rb + Rc.
func (b *Builder) Ffma(rd, ra, rb, rc uint8) *Builder {
	in := MakeInstr(FFMA)
	in.Dst, in.SrcA, in.SrcB, in.SrcC = rd, ra, rb, rc
	return b.emit(in)
}

// Mufu emits a transcendental Rd = f(Ra).
func (b *Builder) Mufu(rd, ra uint8) *Builder {
	in := MakeInstr(MUFU)
	in.Dst, in.SrcA = rd, ra
	return b.emit(in)
}

// Isetp emits Pd = Ra cmp Rb.
func (b *Builder) Isetp(cmp CmpOp, pd, ra, rb uint8) *Builder {
	in := MakeInstr(ISETP)
	in.Cmp, in.Dst, in.SrcA, in.SrcB = cmp, pd, ra, rb
	return b.emit(in)
}

// Isetpi emits Pd = Ra cmp imm.
func (b *Builder) Isetpi(cmp CmpOp, pd, ra uint8, imm int32) *Builder {
	in := MakeInstr(ISETPI)
	in.Cmp, in.Dst, in.SrcA, in.Imm = cmp, pd, ra, imm
	return b.emit(in)
}

// Ldg emits a global load Rd = [Ra+imm] guarded by write-scoreboard sb.
func (b *Builder) Ldg(rd, ra uint8, imm int32, sb int) *Builder {
	in := MakeInstr(LDG)
	in.Dst, in.SrcA, in.Imm, in.WrScbd = rd, ra, imm, int8(sb)
	return b.emit(in)
}

// Stg emits a global store [Ra+imm] = Rb.
func (b *Builder) Stg(ra uint8, imm int32, rb uint8) *Builder {
	in := MakeInstr(STG)
	in.SrcA, in.Imm, in.SrcB = ra, imm, rb
	in.WrScbd = NoScoreboard
	return b.emit(in)
}

// Tld emits a texture load Rd = tex[Ra+imm] guarded by scoreboard sb.
func (b *Builder) Tld(rd, ra uint8, imm int32, sb int) *Builder {
	in := MakeInstr(TLD)
	in.Dst, in.SrcA, in.Imm, in.WrScbd = rd, ra, imm, int8(sb)
	return b.emit(in)
}

// Tex emits a texture fetch Rd = tex[Ra+Rb+imm] guarded by scoreboard sb.
func (b *Builder) Tex(rd, ra, rb uint8, imm int32, sb int) *Builder {
	in := MakeInstr(TEX)
	in.Dst, in.SrcA, in.SrcB, in.Imm, in.WrScbd = rd, ra, rb, imm, int8(sb)
	return b.emit(in)
}

// Trace emits an asynchronous TraceRay: Rd = trace(ray Ra), guarded by
// scoreboard sb.
func (b *Builder) Trace(rd, ra uint8, sb int) *Builder {
	in := MakeInstr(TRACE)
	in.Dst, in.SrcA, in.WrScbd = rd, ra, int8(sb)
	return b.emit(in)
}

// Req annotates the most recently emitted instruction with a consumer
// scoreboard requirement ("&req=sbN"), modeling the load-to-use wait.
func (b *Builder) Req(sb int) *Builder {
	if len(b.code) == 0 {
		b.fail("Req with no prior instruction")
		return b
	}
	b.code[len(b.code)-1].ReqScbd = int8(sb)
	return b
}

// Bra emits an unconditional branch to label.
func (b *Builder) Bra(label string) *Builder { return b.BraP(PT, false, label) }

// BraP emits a branch to label taken by threads whose predicate (or its
// negation) is true.
func (b *Builder) BraP(pred uint8, neg bool, label string) *Builder {
	in := MakeInstr(BRA)
	in.Pred, in.PredNeg = pred, neg
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	return b.emit(in)
}

// Brx emits an indirect branch through Ra.
func (b *Builder) Brx(ra uint8) *Builder {
	in := MakeInstr(BRX)
	in.SrcA = ra
	return b.emit(in)
}

// Bssy emits a convergence-barrier setup naming the reconvergence label.
func (b *Builder) Bssy(barrier uint8, label string) *Builder {
	in := MakeInstr(BSSY)
	in.Barrier = barrier
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: label})
	return b.emit(in)
}

// Bsync emits the convergence-barrier wait.
func (b *Builder) Bsync(barrier uint8) *Builder {
	in := MakeInstr(BSYNC)
	in.Barrier = barrier
	return b.emit(in)
}

// Yield emits a subwarp-yield scheduling hint.
func (b *Builder) Yield() *Builder { return b.emit(MakeInstr(YIELD)) }

// Exit emits thread termination.
func (b *Builder) Exit() *Builder { return b.emit(MakeInstr(EXIT)) }

// Build resolves labels, validates, and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa builder %q: undefined label %q at pc %d", b.name, f.label, f.pc)
		}
		b.code[f.pc].Target = target
	}
	regs := b.regs
	if regs == 0 {
		regs = 32
	}
	p := &Program{Name: b.name, Code: b.code, RegsPerThread: regs}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error, for tests and generators
// whose programs are statically known to be well-formed.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
