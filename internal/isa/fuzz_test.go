package isa

import (
	"testing"
)

// FuzzAssemble drives the assembler with arbitrary source text and
// checks the printable-syntax contract: Assemble never panics, and any
// source it accepts reaches a disassembly fixed point — the
// disassembly reassembles successfully, reproduces the same encoded
// program, and prints identically the second time around.
func FuzzAssemble(f *testing.F) {
	f.Add("EXIT\n")
	f.Add("NOP\nEXIT\n")
	f.Add(".regs 40\nMOVI R1, 128\nEXIT\n")
	f.Add("S2R R0, SR0\nSHL R1, R0, 7\nLDG R2, [R1+0] &wr=sb0\nIADD R3, R2, R2 &req=sb0\nEXIT\n")
	f.Add("start:\nISETP.LT P0, R0, 16\nBSSY B0, join\n@P0 BRA start\njoin:\nBSYNC B0\nEXIT\n")
	f.Add("TLD R4, [R1+8] &wr=sb1\nTEX R5, [R1+R2+4] &wr=sb2\nTRACE R6, R5 &wr=sb3\nMUFU R7, R6 &req=sb3\nEXIT\n")
	f.Add("loop:\nIADDI R1, R1, -1\nISETPI.GT P1, R1, 0\n@P1 BRA loop\nSTG [R0+0], R1\nYIELD\nEXIT\n")
	f.Add("# comment\nNOP // trailing\nBRX R2\nEXIT\n")

	f.Fuzz(func(t *testing.T, src string) {
		p1, err := Assemble("fuzz", src)
		if err != nil {
			return // rejected input; only panics are failures
		}
		d1 := p1.Disassemble()
		p2, err := Assemble("fuzz", d1)
		if err != nil {
			t.Fatalf("disassembly does not reassemble: %v\naccepted source:\n%s\ndisassembly:\n%s",
				err, src, d1)
		}
		if p2.Len() != p1.Len() {
			t.Fatalf("reassembly length %d != %d\ndisassembly:\n%s", p2.Len(), p1.Len(), d1)
		}
		for pc := range p1.Code {
			if p2.Code[pc] != p1.Code[pc] {
				t.Fatalf("pc %d: reassembled %v != %v\ndisassembly:\n%s",
					pc, p2.Code[pc], p1.Code[pc], d1)
			}
		}
		if p2.RegsPerThread != p1.RegsPerThread {
			t.Fatalf("RegsPerThread %d != %d after round-trip", p2.RegsPerThread, p1.RegsPerThread)
		}
		if d2 := p2.Disassemble(); d2 != d1 {
			t.Fatalf("disassembly is not a fixed point:\nfirst:\n%s\nsecond:\n%s", d1, d2)
		}
		// Accepted programs must also be structurally valid — the
		// assembler must not hand the SM an instruction Validate rejects.
		if err := p1.Validate(); err != nil {
			t.Fatalf("accepted program fails validation: %v\nsource:\n%s", err, src)
		}
	})
}
