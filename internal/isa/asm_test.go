package isa

import (
	"strings"
	"testing"
)

func TestAssembleSimple(t *testing.T) {
	src := `
		// a trivial kernel
		.regs 40
		S2R R0, SR0
		MOVI R1, 128
		IADD R2, R0, R1
		EXIT
	`
	p, err := Assemble("simple", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("Len = %d, want 4", p.Len())
	}
	if p.RegsPerThread != 40 {
		t.Errorf("RegsPerThread = %d, want 40", p.RegsPerThread)
	}
	if p.Code[1].Op != MOVI || p.Code[1].Imm != 128 {
		t.Errorf("instr 1 = %v", p.Code[1])
	}
	if p.Code[2].Op != IADD {
		t.Errorf("instr 2 = %v", p.Code[2])
	}
}

func TestAssembleFig9(t *testing.T) {
	// The paper's Fig. 9 kernel, nearly verbatim.
	src := `
		S2R R0, SR0
		ISETP.EQ P0, R0, 0
		BSSY B0, syncPoint
		@P0 BRA Else
		TLD R2, [R0+4096] &wr=sb5
		FMUL R10, R5, R6
		FMUL R2, R2, R10 &req=sb5
		BRA syncPoint
	Else:
		TEX R1, [R8+R9+0] &wr=sb2
		FADD R1, R1, R3 &req=sb2
		BRA syncPoint
	syncPoint:
		BSYNC B0
		EXIT
	`
	p, err := Assemble("fig9", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 13 {
		t.Fatalf("Len = %d, want 13", p.Len())
	}
	// BSSY reconverges at the BSYNC.
	if p.Code[2].Op != BSSY || p.Code[2].Target != 11 {
		t.Errorf("BSSY = %v", p.Code[2])
	}
	// Predicated branch to Else.
	bra := p.Code[3]
	if bra.Op != BRA || bra.Pred != 0 || bra.PredNeg || bra.Target != 8 {
		t.Errorf("BRA = %v", bra)
	}
	if p.Code[4].WrScbd != 5 || p.Code[6].ReqScbd != 5 {
		t.Error("sb5 annotations lost")
	}
	if p.Code[8].Op != TEX || p.Code[8].WrScbd != 2 {
		t.Errorf("TEX = %v", p.Code[8])
	}
}

func TestAssembleOperandForms(t *testing.T) {
	src := `
		MOVI R1, 0x10
		IADD R2, R1, 5
		IMUL R3, R2, R1
		IMUL R3, R3, -7
		SHL R4, R3, 2
		SHR R4, R4, 1
		IAND R5, R4, R1
		IOR R5, R5, R2
		IXOR R5, R5, R3
		FFMA R6, R5, R4, R3
		MUFU R7, R6
		MOV R8, R7
		ISETP.GE P1, R8, R1
		ISETP.NE P2, R8, 99
		LDG R9, [R1+256] &wr=sb1
		TLD R10, [R1+0] &wr=sb2
		STG [R1+4], R9
		TRACE R11, R1 &wr=sb3
		BRX R4
	`
	p, err := Assemble("forms", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 16 {
		t.Errorf("hex immediate = %d", p.Code[0].Imm)
	}
	if p.Code[1].Op != IADDI {
		t.Error("IADD with immediate should become IADDI")
	}
	if p.Code[2].Op != IMUL || p.Code[3].Op != IMULI || p.Code[3].Imm != -7 {
		t.Error("IMUL forms wrong")
	}
	if p.Code[12].Op != ISETP || p.Code[13].Op != ISETPI {
		t.Error("ISETP forms wrong")
	}
}

func TestAssembleNumericTargets(t *testing.T) {
	src := `
		NOP
		BRA 3
		NOP
		EXIT
	`
	p, err := Assemble("numeric", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Target != 3 {
		t.Errorf("numeric target = %d", p.Code[1].Target)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "FROB R1, R2\nEXIT"},
		{"bad register", "MOVI R99, 1\nEXIT"},
		{"bad predicate", "@P9 BRA x\nx:\nEXIT"},
		{"wrong operand count", "IADD R1, R2\nEXIT"},
		{"undefined label", "BRA nowhere\nEXIT"},
		{"bad immediate", "MOVI R1, banana\nEXIT"},
		{"bad address", "LDG R1, R2 &wr=sb0\nEXIT"},
		{"wr on math", "IADD R1, R2, R3 &wr=sb0\nEXIT"},
		{"bad regs directive", ".regs zero\nEXIT"},
		{"bad cmp", "ISETP.XX P0, R1, R2\nEXIT"},
		{"tex without rb", "TEX R1, [R2+0] &wr=sb0\nEXIT"},
		{"guard on non-branch", "@P0 MOVI R1, 2\nEXIT"},
		{"scoreboard range", "LDG R1, [R2+0] &wr=sb99\nEXIT"},
		{"stg two regs", "STG [R1+R2+0], R3\nEXIT"},
	}
	for _, c := range cases {
		if _, err := Assemble("bad", c.src); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestAssembleNegatedPredicate(t *testing.T) {
	src := `
		ISETP.LT P0, R0, 16
		@!P0 BRA done
		NOP
	done:
		EXIT
	`
	p, err := Assemble("neg", src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Code[1].PredNeg || p.Code[1].Pred != 0 {
		t.Errorf("negated guard = %v", p.Code[1])
	}
}

// Round-trip property: reassembling a program's disassembly reproduces
// it exactly. Exercised on hand-built and generator-scale programs.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	progs := []*Program{}

	b := NewBuilder("hand")
	b.S2R(0, SRLaneID)
	b.Shl(1, 0, 7)
	b.Isetpi(CmpLT, 0, 0, 16)
	b.Bssy(0, "sync")
	b.BraP(0, true, "then")
	b.Ldg(3, 1, 64, 1)
	b.Iadd(3, 3, 3).Req(1)
	b.Bra("sync")
	b.Label("then")
	b.Tex(4, 1, 2, 8, 2)
	b.Fadd(4, 4, 3).Req(2)
	b.Bra("sync")
	b.Label("sync")
	b.Bsync(0)
	b.Trace(5, 1, 3)
	b.Mufu(6, 5).Req(3)
	b.Stg(1, 0, 6)
	b.Yield()
	progs = append(progs, b.Exit().MustBuild())

	for _, p := range progs {
		again, err := Assemble(p.Name, p.Disassemble())
		if err != nil {
			t.Fatalf("%s: reassembly failed: %v", p.Name, err)
		}
		if again.Len() != p.Len() {
			t.Fatalf("%s: length %d != %d", p.Name, again.Len(), p.Len())
		}
		for pc := range p.Code {
			want := p.Code[pc]
			got := again.Code[pc]
			if got != want {
				t.Fatalf("%s: pc %d: %v != %v", p.Name, pc, got, want)
			}
		}
	}
}

func TestAssembleIgnoresComments(t *testing.T) {
	src := `
		# hash comment
		NOP // trailing
		EXIT
	`
	p, err := Assemble("c", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d", p.Len())
	}
}

func TestAssembleDisasmHeaderTolerated(t *testing.T) {
	// Disassemble emits a "// name" header line and "PC:" prefixes;
	// both must parse.
	src := "// kernel (3 instrs)\n   0: NOP\n   1: NOP\n   2: EXIT\n"
	p, err := Assemble("hdr", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if !strings.Contains(p.Disassemble(), "EXIT") {
		t.Error("disassembly lost EXIT")
	}
}
