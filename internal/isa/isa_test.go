package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeClassification(t *testing.T) {
	long := []Opcode{LDG, TLD, TEX, TRACE}
	for _, op := range long {
		if !op.IsLongLatency() {
			t.Errorf("%v should be long latency", op)
		}
	}
	short := []Opcode{NOP, MOVI, IADD, FMUL, MUFU, BRA, BSSY, BSYNC, EXIT, STG, YIELD}
	for _, op := range short {
		if op.IsLongLatency() {
			t.Errorf("%v should not be long latency", op)
		}
	}
	if !TLD.IsTexPath() || !TEX.IsTexPath() {
		t.Error("TLD/TEX must be on the texture writeback path")
	}
	if LDG.IsTexPath() || TRACE.IsTexPath() {
		t.Error("LDG/TRACE must be on the LSU writeback path")
	}
	for _, op := range []Opcode{BRA, BRX, BSSY, BSYNC, EXIT} {
		if !op.IsControl() {
			t.Errorf("%v should be control", op)
		}
	}
	if IADD.IsControl() || LDG.IsControl() {
		t.Error("IADD/LDG must not be control")
	}
	if !LDG.WritesReg() || !TRACE.WritesReg() || !MOVI.WritesReg() {
		t.Error("register-writing ops misclassified")
	}
	if STG.WritesReg() || BRA.WritesReg() || EXIT.WritesReg() {
		t.Error("non-writing ops misclassified")
	}
}

func TestOpcodeStrings(t *testing.T) {
	for op := Opcode(0); op < numOpcodes; op++ {
		if !op.Valid() {
			t.Errorf("opcode %d has no name", op)
		}
		if strings.HasPrefix(op.String(), "Opcode(") {
			t.Errorf("opcode %d String fallback", op)
		}
	}
	if Opcode(200).Valid() {
		t.Error("opcode 200 should be invalid")
	}
}

func TestCmpEval(t *testing.T) {
	cases := []struct {
		cmp  CmpOp
		a, b int32
		want bool
	}{
		{CmpEQ, 3, 3, true},
		{CmpEQ, 3, 4, false},
		{CmpNE, 3, 4, true},
		{CmpLT, -1, 0, true},
		{CmpLT, 0, 0, false},
		{CmpLE, 0, 0, true},
		{CmpGT, 1, 0, true},
		{CmpGE, 0, 0, true},
		{CmpGE, -5, 0, false},
	}
	for _, c := range cases {
		if got := c.cmp.Eval(c.a, c.b); got != c.want {
			t.Errorf("%v.Eval(%d,%d) = %v, want %v", c.cmp, c.a, c.b, got, c.want)
		}
	}
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		build func() Instr
		want  string
	}{
		{func() Instr { i := MakeInstr(MOVI); i.Dst = 3; i.Imm = 42; return i }, "MOVI R3, 42"},
		{func() Instr {
			i := MakeInstr(LDG)
			i.Dst = 2
			i.SrcA = 0
			i.Imm = 16
			i.WrScbd = 5
			return i
		},
			"LDG R2, [R0+16] &wr=sb5"},
		{func() Instr {
			i := MakeInstr(FMUL)
			i.Dst, i.SrcA, i.SrcB = 2, 2, 10
			i.ReqScbd = 5
			return i
		}, "FMUL R2, R2, R10 &req=sb5"},
		{func() Instr { i := MakeInstr(BSSY); i.Barrier = 0; i.Target = 10; return i }, "BSSY B0, 10"},
		{func() Instr { i := MakeInstr(BSYNC); i.Barrier = 0; return i }, "BSYNC B0"},
		{func() Instr { i := MakeInstr(BRA); i.Pred = PT; i.Target = 7; return i }, "BRA 7"},
		{func() Instr {
			i := MakeInstr(BRA)
			i.Pred, i.PredNeg, i.Target = 0, true, 7
			return i
		}, "@!P0 BRA 7"},
		{func() Instr { i := MakeInstr(TRACE); i.Dst = 4; i.SrcA = 8; i.WrScbd = 1; return i },
			"TRACE R4, R8 &wr=sb1"},
		{func() Instr { i := MakeInstr(BRX); i.SrcA = 9; return i }, "BRX R9"},
	}
	for _, c := range cases {
		if got := c.build().String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

// Assemble the paper's Fig. 9 toy kernel and check it validates and
// disassembles with the same structure.
func TestFig9Kernel(t *testing.T) {
	b := NewBuilder("fig9")
	b.Bssy(0, "syncPoint")   // 0: BSSY B0, syncPoint
	b.BraP(0, false, "Else") // 1: @P0 BRA Else
	b.Tld(2, 0, 0, 5)        // 2: TLD R2, [R0] &wr=sb5
	b.Fmul(10, 5, 6)         // 3: FMUL R10, R5, R6
	b.Fmul(2, 2, 10).Req(5)  // 4: FMUL R2, R2, R10 &req=sb5
	b.Bra("syncPoint")       // 5
	b.Label("Else")
	b.Tex(1, 8, 9, 0, 2)   // 6: TEX R1, [R8+R9] &wr=sb2
	b.Fadd(1, 1, 3).Req(2) // 7: FADD R1, R1, R3 &req=sb2
	b.Bra("syncPoint")     // 8
	b.Label("syncPoint")
	b.Bsync(0) // 9
	b.Exit()   // 10
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 11 {
		t.Fatalf("Len = %d, want 11", p.Len())
	}
	if p.At(0).Target != 9 {
		t.Errorf("BSSY reconvergence target = %d, want 9", p.At(0).Target)
	}
	if p.At(1).Target != 6 {
		t.Errorf("branch target = %d, want 6", p.At(1).Target)
	}
	if p.At(4).ReqScbd != 5 || p.At(7).ReqScbd != 2 {
		t.Error("load-to-use &req annotations missing")
	}
	if p.MaxScoreboard() != 5 {
		t.Errorf("MaxScoreboard = %d, want 5", p.MaxScoreboard())
	}
	d := p.Disassemble()
	for _, want := range []string{"BSSY B0, 9", "TLD", "TEX", "&req=sb5", "&req=sb2", "BSYNC B0"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Bra("nowhere")
	b.Exit()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("a").Nop().Label("a").Exit()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestBuilderReqWithoutInstr(t *testing.T) {
	b := NewBuilder("req")
	b.Req(3)
	b.Exit()
	if _, err := b.Build(); err == nil {
		t.Fatal("expected error for Req with no prior instruction")
	}
}

func TestValidateRejections(t *testing.T) {
	mk := func(in Instr) *Program {
		exit := MakeInstr(EXIT)
		return &Program{Name: "t", Code: []Instr{in, exit}}
	}
	cases := []struct {
		name string
		in   Instr
	}{
		{"bad opcode", Instr{Op: Opcode(250), WrScbd: NoScoreboard, ReqScbd: NoScoreboard}},
		{"dst out of range", func() Instr { i := MakeInstr(MOVI); i.Dst = NumRegs; return i }()},
		{"write PT", func() Instr { i := MakeInstr(ISETPI); i.Dst = PT; return i }()},
		{"branch target range", func() Instr { i := MakeInstr(BRA); i.Pred = PT; i.Target = 99; return i }()},
		{"barrier range", func() Instr { i := MakeInstr(BSYNC); i.Barrier = NumBarriers; return i }()},
		{"wr on math", func() Instr { i := MakeInstr(IADD); i.WrScbd = 2; return i }()},
		{"load missing wr", MakeInstr(LDG)},
		{"req out of range", func() Instr { i := MakeInstr(IADD); i.ReqScbd = 16; return i }()},
	}
	for _, c := range cases {
		if err := mk(c.in).Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestValidateFallOffEnd(t *testing.T) {
	p := &Program{Name: "t", Code: []Instr{MakeInstr(NOP)}}
	if err := p.Validate(); err == nil {
		t.Fatal("expected fall-off-end error")
	}
	var empty Program
	if err := empty.Validate(); err == nil {
		t.Fatal("expected empty-program error")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	p := &Program{Name: "t", Code: []Instr{MakeInstr(EXIT)}}
	defer func() {
		if recover() == nil {
			t.Error("At(5) should panic")
		}
	}()
	p.At(5)
}

func TestStaticFootprint(t *testing.T) {
	b := NewBuilder("fp")
	for i := 0; i < 15; i++ {
		b.Nop()
	}
	b.Exit()
	p := b.MustBuild()
	if got := p.StaticFootprintBytes(8); got != 128 {
		t.Errorf("footprint = %d, want 128", got)
	}
}

func TestBuilderChainsAllOps(t *testing.T) {
	b := NewBuilder("all")
	b.SetRegsPerThread(48)
	b.Nop().
		Movi(1, 5).Mov(2, 1).S2R(3, SRLaneID).
		Iadd(4, 1, 2).Iaddi(4, 4, 1).Imul(5, 4, 4).Imuli(5, 5, 3).
		Iand(6, 5, 4).Ior(6, 6, 1).Ixor(6, 6, 2).Shl(7, 6, 2).Shr(7, 7, 1).
		Fadd(8, 7, 6).Fmul(8, 8, 8).Ffma(9, 8, 8, 7).Mufu(10, 9).
		Isetp(CmpLT, 0, 4, 5).Isetpi(CmpEQ, 1, 4, 0).
		Ldg(11, 7, 4, 0).Stg(7, 8, 11).Tld(12, 7, 0, 1).Tex(13, 7, 8, 0, 2).
		Trace(14, 3, 3).
		Yield().
		Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.RegsPerThread != 48 {
		t.Errorf("RegsPerThread = %d, want 48", p.RegsPerThread)
	}
	if p.Len() != 26 {
		t.Errorf("Len = %d, want 26", p.Len())
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild should panic on invalid program")
		}
	}()
	NewBuilder("bad").Bra("missing").MustBuild()
}

// Property: every generated valid ALU instruction disassembles to a
// string containing its mnemonic.
func TestQuickDisasmContainsMnemonic(t *testing.T) {
	ops := []Opcode{MOVI, MOV, IADD, IADDI, IMUL, IAND, IOR, IXOR, SHL, SHR, FADD, FMUL, FFMA, MUFU}
	f := func(opIdx uint8, dst, a, bb uint8, imm int32) bool {
		op := ops[int(opIdx)%len(ops)]
		in := MakeInstr(op)
		in.Dst, in.SrcA, in.SrcB = dst%NumRegs, a%NumRegs, bb%NumRegs
		in.Imm = imm
		return strings.Contains(in.String(), op.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: builder PC always equals emitted instruction count.
func TestQuickBuilderPC(t *testing.T) {
	f := func(n uint8) bool {
		b := NewBuilder("pc")
		for i := 0; i < int(n%50); i++ {
			if b.PC() != i {
				return false
			}
			b.Nop()
		}
		return b.PC() == int(n%50)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
