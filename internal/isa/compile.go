package isa

// The compile pass lowers a Program once into a pre-decoded operation
// stream the simulator can replay without per-cycle decoding: opcodes
// are resolved to dense ExecClass indices (the SM keeps a function
// table indexed by ExecClass), operands are widened to the exact types
// the execution arms consume (zero-extended address immediates,
// masked shift amounts), and a basic-block map records the static
// structure fast-forward relies on. The pass is pure analysis: it
// never changes architectural semantics, and the simulator's compiled
// mode is required (and tested) to be bit-identical to the
// interpreter.

// ExecClass indexes the SM's compiled-dispatch function table. Every
// opcode maps to exactly one class; the three texture/global load
// flavors share ExecLOAD because the SM's load path dispatches on the
// original opcode it keeps in COp.Op.
type ExecClass uint8

const (
	ExecNOP ExecClass = iota
	ExecMOVI
	ExecMOV
	ExecS2R
	ExecIADD
	ExecIADDI
	ExecIMUL
	ExecIMULI
	ExecIAND
	ExecIOR
	ExecIXOR
	ExecSHL
	ExecSHR
	ExecISETP
	ExecISETPI
	ExecFADD
	ExecFMUL
	ExecFFMA
	ExecMUFU
	ExecLOAD // LDG, TLD, TEX
	ExecSTG
	ExecTRACE
	ExecBRA
	ExecBRX
	ExecBSSY
	ExecBSYNC
	ExecYIELD
	ExecEXIT

	NumExecClasses // sentinel
)

var execClassOf = [numOpcodes]ExecClass{
	NOP: ExecNOP, MOVI: ExecMOVI, MOV: ExecMOV, S2R: ExecS2R,
	IADD: ExecIADD, IADDI: ExecIADDI, IMUL: ExecIMUL, IMULI: ExecIMULI,
	IAND: ExecIAND, IOR: ExecIOR, IXOR: ExecIXOR, SHL: ExecSHL, SHR: ExecSHR,
	ISETP: ExecISETP, ISETPI: ExecISETPI,
	FADD: ExecFADD, FMUL: ExecFMUL, FFMA: ExecFFMA, MUFU: ExecMUFU,
	LDG: ExecLOAD, TLD: ExecLOAD, TEX: ExecLOAD,
	STG: ExecSTG, TRACE: ExecTRACE,
	BRA: ExecBRA, BRX: ExecBRX, BSSY: ExecBSSY, BSYNC: ExecBSYNC,
	YIELD: ExecYIELD, EXIT: ExecEXIT,
}

// ExecClassOf returns the dispatch class for an opcode.
func ExecClassOf(op Opcode) ExecClass { return execClassOf[op] }

// COp is one pre-decoded operation. It carries everything the
// execution arms read, already widened/masked so the per-cycle path
// does no conversions, plus the original opcode for trace emission and
// the load path.
type COp struct {
	Exec ExecClass
	Op   Opcode // original opcode (trace events, LDG/TLD/TEX flavor)

	Dst     uint8
	SrcA    uint8
	SrcB    uint8
	SrcC    uint8
	Pred    uint8
	PredNeg bool
	Barrier uint8
	Cmp     CmpOp

	WrScbd  int8
	ReqScbd int8

	Imm    int32
	Target int32
	UImm   uint64 // uint64(uint32(Imm)): zero-extended address offset
	Sh     uint32 // uint32(Imm) & 31: pre-masked shift amount
}

// BasicBlock is a maximal straight-line region [Start, End). Leaders
// are the program entry, branch/reconvergence targets, and the
// instructions following control transfers. BRX targets are runtime
// register values and cannot be enumerated statically, so an indirect
// branch may legally enter a block mid-region; the per-PC FFLen
// arrays (not the block map) are what execution consults, and they are
// valid from any entry point.
type BasicBlock struct {
	Start, End int

	// Convergent: no interior instruction (everything before End-1) can
	// splinter, block, yield, or retire the active subwarp — the region
	// is free of BRA/BRX/BSYNC/EXIT/YIELD until its terminator.
	Convergent bool
	// NoMemory: the block contains no LDG/STG/TLD/TEX/TRACE anywhere,
	// so executing it cannot schedule writebacks or touch memory.
	NoMemory bool
	// NoScoreboard: no instruction in the block writes (&wr) or waits
	// on (&req) a scoreboard, so issue can never stall mid-block.
	NoScoreboard bool
	// NoBranchUntilEnd: interior instructions are free of BRA/BRX/
	// BSYNC/EXIT (YIELD permitted), so the PC advances linearly until
	// the terminator.
	NoBranchUntilEnd bool
}

// Compiled is the pre-decoded form of a Program.
type Compiled struct {
	Ops    []COp
	Blocks []BasicBlock
	// BlockOf maps each PC to its index in Blocks.
	BlockOf []int32

	// FFLen[pc] is the number of consecutive fast-forward-simple
	// operations starting at pc: fixed-latency ALU ops (and BSSY) with
	// no scoreboard annotations — operations whose only effects are
	// register/predicate/barrier writes and PC advance, so a scheduler
	// that keeps issuing them emits no events and changes no state any
	// other warp can observe. YIELD ends a run because under
	// SI.Enabled && SI.Yield it may switch the active subwarp.
	FFLen []int32
	// FFLenYieldInert is FFLen computed with YIELD counted as simple,
	// valid for configurations where YIELD is architecturally inert
	// (SI disabled, or SI without the yield hint).
	FFLenYieldInert []int32
}

// ffSimple reports whether an instruction is fast-forward-simple: its
// execution writes only thread-private registers/predicates (or a
// convergence-barrier register, for BSSY), cannot stall at issue, and
// emits no events. yieldInert additionally admits YIELD for
// configurations where the hint has no effect.
func ffSimple(in Instr, yieldInert bool) bool {
	if in.ReqScbd != NoScoreboard {
		return false
	}
	switch in.Op {
	case NOP, MOVI, MOV, S2R, IADD, IADDI, IMUL, IMULI, IAND, IOR, IXOR,
		SHL, SHR, ISETP, ISETPI, FADD, FMUL, FFMA, MUFU, BSSY:
		return true
	case YIELD:
		return yieldInert
	}
	return false
}

// interiorBranch reports whether the op transfers or terminates
// control flow, which a block's interior must be free of for both the
// NoBranchUntilEnd flag and (together with YIELD) the Convergent flag.
func interiorBranch(op Opcode) bool {
	switch op {
	case BRA, BRX, BSYNC, EXIT:
		return true
	}
	return false
}

func compile(p *Program) *Compiled {
	n := len(p.Code)
	c := &Compiled{
		Ops:             make([]COp, n),
		BlockOf:         make([]int32, n),
		FFLen:           make([]int32, n),
		FFLenYieldInert: make([]int32, n),
	}

	for pc, in := range p.Code {
		c.Ops[pc] = COp{
			Exec:    execClassOf[in.Op],
			Op:      in.Op,
			Dst:     in.Dst,
			SrcA:    in.SrcA,
			SrcB:    in.SrcB,
			SrcC:    in.SrcC,
			Pred:    in.Pred,
			PredNeg: in.PredNeg,
			Barrier: in.Barrier,
			Cmp:     in.Cmp,
			WrScbd:  in.WrScbd,
			ReqScbd: in.ReqScbd,
			Imm:     in.Imm,
			Target:  int32(in.Target),
			UImm:    uint64(uint32(in.Imm)),
			Sh:      uint32(in.Imm) & 31,
		}
	}

	// Run lengths, computed backwards so each PC extends its successor.
	for pc := n - 1; pc >= 0; pc-- {
		if ffSimple(p.Code[pc], false) {
			c.FFLen[pc] = 1
			if pc+1 < n {
				c.FFLen[pc] += c.FFLen[pc+1]
			}
		}
		if ffSimple(p.Code[pc], true) {
			c.FFLenYieldInert[pc] = 1
			if pc+1 < n {
				c.FFLenYieldInert[pc] += c.FFLenYieldInert[pc+1]
			}
		}
	}

	// Basic blocks: leaders are the entry, statically known targets
	// (BRA, and BSSY reconvergence points), and fall-throughs after
	// control transfers.
	leader := make([]bool, n)
	if n > 0 {
		leader[0] = true
	}
	for pc, in := range p.Code {
		switch in.Op {
		case BRA, BSSY:
			if in.Target >= 0 && in.Target < n {
				leader[in.Target] = true
			}
			if in.Op == BRA && pc+1 < n {
				leader[pc+1] = true
			}
		case BRX, BSYNC, EXIT:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}
	for start := 0; start < n; {
		end := start + 1
		for end < n && !leader[end] {
			end++
		}
		bb := BasicBlock{
			Start:            start,
			End:              end,
			Convergent:       true,
			NoMemory:         true,
			NoScoreboard:     true,
			NoBranchUntilEnd: true,
		}
		for pc := start; pc < end; pc++ {
			in := p.Code[pc]
			interior := pc < end-1
			if interior && interiorBranch(in.Op) {
				bb.NoBranchUntilEnd = false
				bb.Convergent = false
			}
			if interior && in.Op == YIELD {
				bb.Convergent = false
			}
			switch in.Op {
			case LDG, STG, TLD, TEX, TRACE:
				bb.NoMemory = false
			}
			if in.WrScbd != NoScoreboard || in.ReqScbd != NoScoreboard {
				bb.NoScoreboard = false
			}
		}
		idx := int32(len(c.Blocks))
		c.Blocks = append(c.Blocks, bb)
		for pc := start; pc < end; pc++ {
			c.BlockOf[pc] = idx
		}
		start = end
	}

	return c
}
