package isa

import (
	"sync"
	"testing"
)

// compileProgram builds a small program exercising every structural
// feature the compile pass analyzes: straight-line ALU runs, a
// divergent branch with a BSSY/BSYNC convergence region, a scoreboarded
// load, a YIELD, and an indirect branch.
func compileProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("compiletest").SetRegsPerThread(16)
	b.Movi(1, 5)             // 0
	b.Iaddi(2, 1, 1)         // 1
	b.Bssy(0, "join")        // 2
	b.Isetpi(CmpLT, 0, 1, 3) // 3
	b.BraP(0, false, "else") // 4
	b.Imuli(2, 2, 3)         // 5
	b.Bsync(0)               // 6
	b.Label("else")          //
	b.Ldg(3, 1, 8, 1)        // 7
	b.Iadd(4, 3, 2).Req(1)   // 8
	b.Yield()                // 9
	b.Bsync(0)               // 10
	b.Label("join")          //
	b.Exit()                 // 11
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileOpsMirrorInstrs(t *testing.T) {
	p := compileProgram(t)
	c := p.Compiled()
	if len(c.Ops) != len(p.Code) {
		t.Fatalf("Ops len %d, program len %d", len(c.Ops), len(p.Code))
	}
	for pc, in := range p.Code {
		op := c.Ops[pc]
		if op.Op != in.Op || op.Exec != ExecClassOf(in.Op) {
			t.Errorf("pc %d: op/exec mismatch: %+v vs %s", pc, op, in)
		}
		if op.Dst != in.Dst || op.SrcA != in.SrcA || op.SrcB != in.SrcB ||
			op.SrcC != in.SrcC || op.Pred != in.Pred || op.PredNeg != in.PredNeg ||
			op.Barrier != in.Barrier || op.Cmp != in.Cmp ||
			op.WrScbd != in.WrScbd || op.ReqScbd != in.ReqScbd ||
			op.Imm != in.Imm || op.Target != int32(in.Target) {
			t.Errorf("pc %d: operand mismatch: %+v vs %+v", pc, op, in)
		}
		if op.UImm != uint64(uint32(in.Imm)) {
			t.Errorf("pc %d: UImm %d, want %d", pc, op.UImm, uint64(uint32(in.Imm)))
		}
		if op.Sh != uint32(in.Imm)&31 {
			t.Errorf("pc %d: Sh %d, want %d", pc, op.Sh, uint32(in.Imm)&31)
		}
	}
}

func TestCompileWidensNegativeImmediates(t *testing.T) {
	// A negative address immediate must zero-extend through uint32, not
	// sign-extend to 64 bits: the load path adds UImm to a 32-bit base.
	p := NewBuilder("negimm").SetRegsPerThread(8).
		Shl(1, 1, 35). // shift amounts are masked mod 32
		Stg(1, -4, 2).
		Exit().MustBuild()
	c := p.Compiled()
	if want := uint64(uint32(0xFFFFFFFC)); c.Ops[1].UImm != want {
		t.Errorf("UImm = %#x, want %#x", c.Ops[1].UImm, want)
	}
	if c.Ops[0].Sh != 3 {
		t.Errorf("Sh = %d, want 3 (35 mod 32)", c.Ops[0].Sh)
	}
}

func TestCompileBasicBlocks(t *testing.T) {
	p := compileProgram(t)
	c := p.Compiled()

	// Leaders: 0 (entry), 3 (BSSY fall-through is not a leader, but its
	// target 11 is; BRA at 4 makes 5 a leader and its target 7 a
	// leader), 7, 9 is not a leader (YIELD does not end a block), 11.
	wantStarts := []int{0, 5, 7, 11}
	if len(c.Blocks) != len(wantStarts) {
		t.Fatalf("got %d blocks %+v, want starts %v", len(c.Blocks), c.Blocks, wantStarts)
	}
	for i, s := range wantStarts {
		if c.Blocks[i].Start != s {
			t.Errorf("block %d starts at %d, want %d", i, c.Blocks[i].Start, s)
		}
	}
	// Every PC maps to the block containing it.
	for pc := range p.Code {
		bb := c.Blocks[c.BlockOf[pc]]
		if pc < bb.Start || pc >= bb.End {
			t.Errorf("BlockOf[%d] = %d covers [%d,%d)", pc, c.BlockOf[pc], bb.Start, bb.End)
		}
	}

	// Block 0 = [0,5): ends with the BRA; interior has no branch, no
	// memory, no scoreboards.
	b0 := c.Blocks[0]
	if !b0.Convergent || !b0.NoMemory || !b0.NoScoreboard || !b0.NoBranchUntilEnd {
		t.Errorf("block 0 flags = %+v, want all set", b0)
	}
	// Block 1 = [5,7): IMULI; BSYNC terminator is not interior.
	b1 := c.Blocks[1]
	if !b1.Convergent || !b1.NoMemory || !b1.NoScoreboard || !b1.NoBranchUntilEnd {
		t.Errorf("block 1 flags = %+v, want all set", b1)
	}
	// Block 2 = [7,11): LDG (memory + scoreboard write), Req'd IADD,
	// interior YIELD (kills Convergent, not NoBranchUntilEnd).
	b2 := c.Blocks[2]
	if b2.Convergent || b2.NoMemory || b2.NoScoreboard || !b2.NoBranchUntilEnd {
		t.Errorf("block 2 flags = %+v, want only NoBranchUntilEnd", b2)
	}
}

func TestCompileFastForwardRuns(t *testing.T) {
	p := compileProgram(t)
	c := p.Compiled()

	// PCs 0..3 are simple (MOVI, IADDI, BSSY, ISETPI); the BRA at 4
	// ends the run in both tables.
	for pc, want := range []int32{4, 3, 2, 1, 0} {
		if c.FFLen[pc] != want || c.FFLenYieldInert[pc] != want {
			t.Errorf("FFLen[%d] = %d/%d, want %d", pc, c.FFLen[pc], c.FFLenYieldInert[pc], want)
		}
	}
	// The LDG at 7 writes a scoreboard: never simple. The IADD at 8
	// waits on one (Req): never simple either.
	if c.FFLen[7] != 0 || c.FFLenYieldInert[7] != 0 {
		t.Errorf("FFLen[7] = %d/%d, want 0 (load)", c.FFLen[7], c.FFLenYieldInert[7])
	}
	if c.FFLen[8] != 0 || c.FFLenYieldInert[8] != 0 {
		t.Errorf("FFLen[8] = %d/%d, want 0 (scoreboard wait)", c.FFLen[8], c.FFLenYieldInert[8])
	}
	// The YIELD at 9 is where the two tables differ: a run may cross it
	// only when YIELD is architecturally inert.
	if c.FFLen[9] != 0 {
		t.Errorf("FFLen[9] = %d, want 0 (YIELD may switch subwarps)", c.FFLen[9])
	}
	if c.FFLenYieldInert[9] != 1 {
		t.Errorf("FFLenYieldInert[9] = %d, want 1 (inert YIELD, then BSYNC)", c.FFLenYieldInert[9])
	}
}

func TestCompileCached(t *testing.T) {
	p := compileProgram(t)
	if got := p.CompileCount(); got != 0 {
		t.Fatalf("CompileCount before first use = %d, want 0", got)
	}
	first := p.Compiled()
	// Concurrent callers must all observe the same single compilation.
	const callers = 8
	results := make([]*Compiled, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = p.Compiled()
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if r != first {
			t.Errorf("caller %d got a different Compiled pointer", i)
		}
	}
	if got := p.CompileCount(); got != 1 {
		t.Errorf("CompileCount = %d, want 1", got)
	}
}
