package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses textual assembly into a Program. The syntax is the
// disassembler's output plus labels and directives, so
// Assemble(name, p.Disassemble()) round-trips any program:
//
//	.regs 40            // declared register footprint
//	start:
//	    S2R R0, SR0     // special register read
//	    MOVI R1, 128
//	    SHL R1, R0, 7
//	    LDG R2, [R1+0] &wr=sb0
//	    IADD R3, R2, R2 &req=sb0
//	    ISETP.LT P0, R0, 16
//	    BSSY B0, join
//	    @P0 BRA start   // predicated branch (also @!P0)
//	join:
//	    BSYNC B0
//	    EXIT
//
// Branch and BSSY targets may be labels or absolute instruction
// indices. Comments run from "//" or "#" to end of line.
func Assemble(name, src string) (*Program, error) {
	b := NewBuilder(name)
	for num, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := asmLine(b, line); err != nil {
			return nil, fmt.Errorf("isa: line %d: %w (%q)", num+1, err, strings.TrimSpace(raw))
		}
	}
	return b.Build()
}

func stripComment(line string) string {
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "#"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

// asmLine assembles one non-empty line.
func asmLine(b *Builder, line string) error {
	// Directives.
	if strings.HasPrefix(line, ".regs") {
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, ".regs")))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad .regs directive")
		}
		b.SetRegsPerThread(n)
		return nil
	}
	// Leading PC prefix from disassembly ("  12: OP ...").
	if i := strings.Index(line, ":"); i >= 0 {
		head := strings.TrimSpace(line[:i])
		if _, err := strconv.Atoi(head); err == nil {
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				return fmt.Errorf("instruction index without instruction")
			}
		} else if !strings.ContainsAny(head, " \t") && i == len(line)-1 {
			// Label definition.
			b.Label(head)
			return nil
		}
	}

	// Scoreboard annotations.
	wr, req := NoScoreboard, NoScoreboard
	var err error
	if line, wr, err = takeAnnot(line, "&wr=sb"); err != nil {
		return err
	}
	if line, req, err = takeAnnot(line, "&req=sb"); err != nil {
		return err
	}

	// Predicate guard "@P0" / "@!P3".
	pred, predNeg := uint8(PT), false
	if strings.HasPrefix(line, "@") {
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return fmt.Errorf("predicate guard without instruction")
		}
		g := strings.TrimPrefix(fields[0], "@")
		if strings.HasPrefix(g, "!") {
			predNeg = true
			g = g[1:]
		}
		p, perr := parseIdx(g, "P", NumPreds)
		if perr != nil {
			return perr
		}
		pred = p
		line = strings.TrimSpace(fields[1])
	}

	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToUpper(mnemonic)
	ops := splitOperands(rest)

	in, target, err := parseInstr(mnemonic, ops)
	if err != nil {
		return err
	}
	in.WrScbd, in.ReqScbd = int8(wr), int8(req)
	if wr >= 0 && !in.Op.IsLongLatency() {
		return fmt.Errorf("&wr on %s", in.Op)
	}

	switch in.Op {
	case BRA:
		in.Pred, in.PredNeg = pred, predNeg
		b.fixBranch(in, target)
	case BSSY:
		b.fixBssy(in, target)
	default:
		if pred != PT || predNeg {
			return fmt.Errorf("predicate guard only valid on BRA")
		}
		b.Raw(in)
	}
	return nil
}

// takeAnnot strips an "&wr=sbN" style annotation, returning its value.
func takeAnnot(line, prefix string) (string, int, error) {
	i := strings.Index(line, prefix)
	if i < 0 {
		return line, NoScoreboard, nil
	}
	rest := line[i+len(prefix):]
	j := 0
	for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
		j++
	}
	if j == 0 {
		return line, 0, fmt.Errorf("malformed %q annotation", prefix)
	}
	n, _ := strconv.Atoi(rest[:j])
	if n >= NumBarriers {
		return line, 0, fmt.Errorf("scoreboard sb%d out of range", n)
	}
	return strings.TrimSpace(line[:i] + rest[j:]), n, nil
}

func splitOperands(s string) []string {
	var ops []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			ops = append(ops, f)
		}
	}
	return ops
}

func parseIdx(tok, prefix string, limit int) (uint8, error) {
	if !strings.HasPrefix(tok, prefix) {
		return 0, fmt.Errorf("expected %s register, got %q", prefix, tok)
	}
	n, err := strconv.Atoi(tok[len(prefix):])
	if err != nil || n < 0 || n >= limit {
		return 0, fmt.Errorf("bad %s register %q", prefix, tok)
	}
	return uint8(n), nil
}

func parseImm(tok string) (int32, error) {
	n, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return int32(n), nil
}

// parseMem parses "[Ra+imm]" or "[Ra+Rb+imm]"; imm is optional.
func parseMem(tok string) (ra, rb uint8, hasRB bool, imm int32, err error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, false, 0, fmt.Errorf("expected address operand, got %q", tok)
	}
	parts := strings.Split(tok[1:len(tok)-1], "+")
	if len(parts) == 0 || len(parts) > 3 {
		return 0, 0, false, 0, fmt.Errorf("bad address %q", tok)
	}
	if ra, err = parseIdx(strings.TrimSpace(parts[0]), "R", NumRegs); err != nil {
		return
	}
	rest := parts[1:]
	if len(rest) > 0 && strings.HasPrefix(strings.TrimSpace(rest[0]), "R") {
		if rb, err = parseIdx(strings.TrimSpace(rest[0]), "R", NumRegs); err != nil {
			return
		}
		hasRB = true
		rest = rest[1:]
	}
	if len(rest) == 1 {
		if imm, err = parseImm(strings.TrimSpace(rest[0])); err != nil {
			return
		}
	} else if len(rest) > 1 {
		err = fmt.Errorf("bad address %q", tok)
	}
	return
}

// parseInstr builds the instruction; branch-like ops also return their
// textual target for fixup.
func parseInstr(mnemonic string, ops []string) (Instr, string, error) {
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}

	// Compare-suffixed mnemonics: ISETP.LT etc.
	if cmpName, ok := strings.CutPrefix(mnemonic, "ISETP."); ok {
		cmp, err := parseCmp(cmpName)
		if err != nil {
			return Instr{}, "", err
		}
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		pd, err := parseIdx(ops[0], "P", NumPreds)
		if err != nil {
			return Instr{}, "", err
		}
		ra, err := parseIdx(ops[1], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(ISETPI)
		in.Cmp, in.Dst, in.SrcA = cmp, pd, ra
		if strings.HasPrefix(ops[2], "R") {
			rb, err := parseIdx(ops[2], "R", NumRegs)
			if err != nil {
				return Instr{}, "", err
			}
			in.Op, in.SrcB = ISETP, rb
		} else {
			imm, err := parseImm(ops[2])
			if err != nil {
				return Instr{}, "", err
			}
			in.Imm = imm
		}
		return in, "", nil
	}

	switch mnemonic {
	case "NOP", "YIELD", "EXIT":
		if err := need(0); err != nil {
			return Instr{}, "", err
		}
		op := map[string]Opcode{"NOP": NOP, "YIELD": YIELD, "EXIT": EXIT}[mnemonic]
		return MakeInstr(op), "", nil

	case "MOVI":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(MOVI)
		in.Dst, in.Imm = rd, imm
		return in, "", nil

	case "MOV", "MUFU":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		ra, err := parseIdx(ops[1], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(map[string]Opcode{"MOV": MOV, "MUFU": MUFU}[mnemonic])
		in.Dst, in.SrcA = rd, ra
		return in, "", nil

	case "S2R":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		sr, err := parseIdx(ops[1], "SR", 4)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(S2R)
		in.Dst, in.SrcA = rd, sr
		return in, "", nil

	case "IADD", "IMUL", "IAND", "IOR", "IXOR", "FADD", "FMUL", "SHL", "SHR":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		ra, err := parseIdx(ops[1], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		if strings.HasPrefix(ops[2], "R") {
			rb, err := parseIdx(ops[2], "R", NumRegs)
			if err != nil {
				return Instr{}, "", err
			}
			var op Opcode
			switch mnemonic {
			case "IADD":
				op = IADD
			case "IMUL":
				op = IMUL
			case "IAND":
				op = IAND
			case "IOR":
				op = IOR
			case "IXOR":
				op = IXOR
			case "FADD":
				op = FADD
			case "FMUL":
				op = FMUL
			default:
				return Instr{}, "", fmt.Errorf("%s requires an immediate third operand", mnemonic)
			}
			in := MakeInstr(op)
			in.Dst, in.SrcA, in.SrcB = rd, ra, rb
			return in, "", nil
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return Instr{}, "", err
		}
		var op Opcode
		switch mnemonic {
		case "IADD":
			op = IADDI
		case "IMUL":
			op = IMULI
		case "SHL":
			op = SHL
		case "SHR":
			op = SHR
		default:
			return Instr{}, "", fmt.Errorf("%s does not take an immediate", mnemonic)
		}
		in := MakeInstr(op)
		in.Dst, in.SrcA, in.Imm = rd, ra, imm
		return in, "", nil

	case "IADDI", "IMULI":
		if err := need(3); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		ra, err := parseIdx(ops[1], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		imm, err := parseImm(ops[2])
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(map[string]Opcode{"IADDI": IADDI, "IMULI": IMULI}[mnemonic])
		in.Dst, in.SrcA, in.Imm = rd, ra, imm
		return in, "", nil

	case "FFMA":
		if err := need(4); err != nil {
			return Instr{}, "", err
		}
		var regs [4]uint8
		for i, op := range ops {
			r, err := parseIdx(op, "R", NumRegs)
			if err != nil {
				return Instr{}, "", err
			}
			regs[i] = r
		}
		in := MakeInstr(FFMA)
		in.Dst, in.SrcA, in.SrcB, in.SrcC = regs[0], regs[1], regs[2], regs[3]
		return in, "", nil

	case "LDG", "TLD":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		ra, _, hasRB, imm, err := parseMem(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		if hasRB {
			return Instr{}, "", fmt.Errorf("%s takes a single base register", mnemonic)
		}
		in := MakeInstr(map[string]Opcode{"LDG": LDG, "TLD": TLD}[mnemonic])
		in.Dst, in.SrcA, in.Imm = rd, ra, imm
		return in, "", nil

	case "TEX":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		ra, rb, hasRB, imm, err := parseMem(ops[1])
		if err != nil {
			return Instr{}, "", err
		}
		if !hasRB {
			return Instr{}, "", fmt.Errorf("TEX wants [Ra+Rb+imm]")
		}
		in := MakeInstr(TEX)
		in.Dst, in.SrcA, in.SrcB, in.Imm = rd, ra, rb, imm
		return in, "", nil

	case "STG":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		ra, _, hasRB, imm, err := parseMem(ops[0])
		if err != nil {
			return Instr{}, "", err
		}
		if hasRB {
			return Instr{}, "", fmt.Errorf("STG takes a single base register")
		}
		rb, err := parseIdx(ops[1], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(STG)
		in.SrcA, in.Imm, in.SrcB = ra, imm, rb
		return in, "", nil

	case "TRACE":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		rd, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		ra, err := parseIdx(ops[1], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(TRACE)
		in.Dst, in.SrcA = rd, ra
		return in, "", nil

	case "BRA":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		return MakeInstr(BRA), ops[0], nil

	case "BRX":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		ra, err := parseIdx(ops[0], "R", NumRegs)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(BRX)
		in.SrcA = ra
		return in, "", nil

	case "BSSY":
		if err := need(2); err != nil {
			return Instr{}, "", err
		}
		bar, err := parseIdx(ops[0], "B", NumBarriers)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(BSSY)
		in.Barrier = bar
		return in, ops[1], nil

	case "BSYNC":
		if err := need(1); err != nil {
			return Instr{}, "", err
		}
		bar, err := parseIdx(ops[0], "B", NumBarriers)
		if err != nil {
			return Instr{}, "", err
		}
		in := MakeInstr(BSYNC)
		in.Barrier = bar
		return in, "", nil
	}
	return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func parseCmp(name string) (CmpOp, error) {
	switch name {
	case "EQ":
		return CmpEQ, nil
	case "NE":
		return CmpNE, nil
	case "LT":
		return CmpLT, nil
	case "LE":
		return CmpLE, nil
	case "GT":
		return CmpGT, nil
	case "GE":
		return CmpGE, nil
	}
	return 0, fmt.Errorf("unknown comparison %q", name)
}

// fixBranch appends a predicated branch whose target is either a label
// or an absolute instruction index.
func (b *Builder) fixBranch(in Instr, target string) {
	if pc, err := strconv.Atoi(target); err == nil {
		in.Target = pc
		b.Raw(in)
		return
	}
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: target})
	b.emit(in)
}

// fixBssy appends a BSSY whose reconvergence target is a label or an
// absolute instruction index.
func (b *Builder) fixBssy(in Instr, target string) {
	if pc, err := strconv.Atoi(target); err == nil {
		in.Target = pc
		b.Raw(in)
		return
	}
	b.fixups = append(b.fixups, fixup{pc: len(b.code), label: target})
	b.emit(in)
}
