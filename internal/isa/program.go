package isa

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Program is an executable sequence of instructions. Instruction
// indices are the simulator's program counters; the encoded byte
// address of instruction i is i*InstrBytes (for instruction-cache
// modeling).
//
// Programs are shared by pointer (every constructor returns *Program)
// and are immutable once built; the compile cache below relies on
// both.
type Program struct {
	// Name identifies the kernel in reports.
	Name string
	// Code is the instruction stream.
	Code []Instr
	// RegsPerThread is the kernel's declared register footprint, which
	// determines occupancy (Section II-B: the megakernel must reserve
	// the maximum across all shader targets).
	RegsPerThread int

	// The pre-decoded form, produced at most once per program no
	// matter how many SMs (or repeated runs) execute it.
	compileOnce sync.Once
	compiled    *Compiled
	compiles    atomic.Int32
}

// Compiled returns the program's pre-decoded form, running the compile
// pass on first use and caching it for every later caller. Safe for
// concurrent use.
func (p *Program) Compiled() *Compiled {
	p.compileOnce.Do(func() {
		p.compiled = compile(p)
		p.compiles.Add(1)
	})
	return p.compiled
}

// CompileCount reports how many times the compile pass has actually
// run for this program: 0 before first use, 1 ever after. Tests use it
// to pin the compiled-once contract.
func (p *Program) CompileCount() int { return int(p.compiles.Load()) }

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// At returns the instruction at pc. It panics if pc is out of range,
// which in the simulator indicates control flow escaped the program.
func (p *Program) At(pc int) Instr {
	if pc < 0 || pc >= len(p.Code) {
		panic(fmt.Sprintf("isa: PC %d out of range for %q (%d instrs)", pc, p.Name, len(p.Code)))
	}
	return p.Code[pc]
}

// Validate checks structural well-formedness: opcodes defined, branch
// and reconvergence targets in range, register/predicate/barrier/
// scoreboard indices in range, scoreboard annotations only where they
// make sense, and a terminating EXIT reachable by fallthrough.
func (p *Program) Validate() error {
	if len(p.Code) == 0 {
		return fmt.Errorf("isa: program %q is empty", p.Name)
	}
	for pc, in := range p.Code {
		if err := p.validateInstr(pc, in); err != nil {
			return err
		}
	}
	last := p.Code[len(p.Code)-1]
	switch last.Op {
	case EXIT, BRA, BRX:
	default:
		return fmt.Errorf("isa: program %q falls off the end (last op %v)", p.Name, last.Op)
	}
	return nil
}

func (p *Program) validateInstr(pc int, in Instr) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("isa: %q pc %d (%s): "+format,
			append([]any{p.Name, pc, in.Op}, args...)...)
	}
	if !in.Op.Valid() {
		return fail("undefined opcode")
	}
	if in.Op.WritesReg() && in.Op != TRACE {
		if int(in.Dst) >= NumRegs {
			return fail("dst R%d out of range", in.Dst)
		}
	}
	if in.Op == ISETP || in.Op == ISETPI {
		if int(in.Dst) >= NumPreds {
			return fail("dst P%d out of range", in.Dst)
		}
		if in.Dst == PT {
			return fail("cannot write PT")
		}
	}
	if int(in.SrcA) >= NumRegs || int(in.SrcB) >= NumRegs || int(in.SrcC) >= NumRegs {
		return fail("source register out of range")
	}
	if int(in.Pred) >= NumPreds {
		return fail("predicate P%d out of range", in.Pred)
	}
	switch in.Op {
	case BRA, BSSY:
		if in.Target < 0 || in.Target >= len(p.Code) {
			return fail("target %d out of range", in.Target)
		}
	}
	if in.Op == BSSY || in.Op == BSYNC {
		if int(in.Barrier) >= NumBarriers {
			return fail("barrier B%d out of range", in.Barrier)
		}
	}
	if in.WrScbd != NoScoreboard {
		if !in.Op.IsLongLatency() {
			return fail("&wr on non-long-latency op")
		}
		if in.WrScbd < 0 || int(in.WrScbd) >= NumBarriers {
			return fail("&wr=sb%d out of range", in.WrScbd)
		}
	} else if in.Op.IsLongLatency() && in.Op != STG {
		return fail("long-latency op missing &wr scoreboard")
	}
	if in.ReqScbd != NoScoreboard && (in.ReqScbd < 0 || int(in.ReqScbd) >= NumBarriers) {
		return fail("&req=sb%d out of range", in.ReqScbd)
	}
	return nil
}

// Disassemble renders the whole program, one instruction per line with
// PC prefixes. The output is itself valid assembler input: the .regs
// directive carries the register footprint, which the header comment
// alone would lose, so Assemble(name, p.Disassemble()) reproduces the
// program exactly.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "// %s (%d instrs, %d regs/thread)\n", p.Name, len(p.Code), p.RegsPerThread)
	fmt.Fprintf(&b, ".regs %d\n", p.RegsPerThread)
	for pc, in := range p.Code {
		fmt.Fprintf(&b, "%4d: %s\n", pc, in)
	}
	return b.String()
}

// StaticFootprintBytes returns the encoded code size, used to reason
// about instruction-cache pressure.
func (p *Program) StaticFootprintBytes(instrBytes int) int {
	return len(p.Code) * instrBytes
}

// MaxScoreboard returns the highest scoreboard index referenced, or -1
// if the program uses none.
func (p *Program) MaxScoreboard() int {
	max := -1
	for _, in := range p.Code {
		if int(in.WrScbd) > max {
			max = int(in.WrScbd)
		}
		if int(in.ReqScbd) > max {
			max = int(in.ReqScbd)
		}
	}
	return max
}
