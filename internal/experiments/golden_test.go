package experiments

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the golden corpus from the current simulator
// output instead of diffing against it:
//
//	go test ./internal/experiments -run TestGolden -args -update-golden
//
// (or tools/regen-golden.sh). Regenerate deliberately — the corpus is
// the recorded Fig. 3 / Table III metric set, and silent drift there is
// exactly what this test exists to catch.
var updateGolden = flag.Bool("update-golden", false, "rewrite results/golden/*.json from current output")

// goldenDir is the corpus location relative to this package.
const goldenDir = "../../results/golden"

// goldenTolerance is the relative error allowed per metric. Simulation
// is deterministic, so the slack only absorbs float formatting of the
// JSON round-trip, not behaviour drift.
const goldenTolerance = 1e-6

// checkGolden diffs got against the named golden file, or rewrites the
// file under -update-golden.
func checkGolden(t *testing.T, name string, got map[string]float64) {
	t.Helper()
	path := filepath.Join(goldenDir, name)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal %s: %v", name, err)
		}
		if err := os.MkdirAll(goldenDir, 0o755); err != nil {
			t.Fatalf("mkdir %s: %v", goldenDir, err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("rewrote %s (%d metrics)", path, len(got))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden corpus %s: %v (regenerate with tools/regen-golden.sh)", path, err)
	}
	var want map[string]float64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: metric %q missing from current output", name, key)
			continue
		}
		if !withinTolerance(g, w) {
			t.Errorf("%s: %s = %v, golden %v (rel err %.3g > %.0g)",
				name, key, g, w, relErr(g, w), goldenTolerance)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: new metric %q not in golden corpus (regenerate with tools/regen-golden.sh)", name, key)
		}
	}
}

func withinTolerance(got, want float64) bool {
	return relErr(got, want) <= goldenTolerance
}

func relErr(got, want float64) float64 {
	diff := math.Abs(got - want)
	if scale := math.Max(math.Abs(got), math.Abs(want)); scale > 1 {
		return diff / scale
	}
	return diff
}

// TestGoldenFig3 pins the per-application exposed-stall
// characterisation (the paper's Fig. 3 counters) against the recorded
// corpus.
func TestGoldenFig3(t *testing.T) {
	r, err := Fig3(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig3.json", r.Values)
}

// TestGoldenTable3 pins the microbenchmark speedups and fetch-overhead
// fractions (Table III) against the recorded corpus.
func TestGoldenTable3(t *testing.T) {
	r, err := Table3(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table3.json", r.Values)
}
