// Package experiments regenerates every table and figure of the
// paper's evaluation (Section V): the Fig. 3 baseline characterisation,
// the Table III microbenchmark scaling study, the Fig. 12 policy sweep
// and stall-reduction analysis, and the Fig. 13/14/15 and instruction-
// cache sensitivity studies. Each experiment prints the same rows or
// series the paper reports and records machine-readable values so
// tests can assert the reproduced *shape* against the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"subwarpsim/internal/config"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks workloads (fewer warps and iterations) for smoke
	// tests and benchmarks; headline numbers shift slightly but the
	// qualitative shape is preserved.
	Quick bool
	// Workers bounds concurrent simulations; 0 means GOMAXPROCS.
	Workers int
	// Context cancels the experiment's simulations: when it is done,
	// in-flight runs return promptly and the experiment reports the
	// context error. Nil means context.Background().
	Context context.Context
	// Interpret disables the compiled execution engine (pre-decoded
	// streams + basic-block fast-forward) and runs every simulation on
	// the per-cycle interpreter. Results are bit-identical either way —
	// the golden corpus is checked in both modes — so this is a
	// verification and debugging knob, not a result knob.
	Interpret bool
	// SchedPolicy overrides the warp-scheduler policy for every
	// simulation when set to a non-LRR value (the -policy flag). The
	// matrix experiment, which enumerates policies itself, narrows its
	// policy axis to the override instead, so the two compose.
	SchedPolicy config.SchedPolicy
	// Workloads narrows the matrix experiment's workload-family axis
	// to the named generators (the -workload flag); empty means all
	// registered families.
	Workloads []string
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Report is one experiment's regenerated artifact.
type Report struct {
	ID    string
	Title string
	// Paper summarizes what the paper reports for this artifact.
	Paper string
	// Tables hold the regenerated rows/series.
	Tables []*stats.Table
	// Values exposes key metrics ("mean_speedup", "BFV1", ...) for
	// programmatic checks. Speedups and reductions are fractions.
	Values map[string]float64
	// Notes carry caveats and observations.
	Notes []string
}

// String renders the report.
func (r *Report) String() string {
	s := fmt.Sprintf("== %s: %s\n   paper: %s\n", r.ID, r.Title, r.Paper)
	for _, t := range r.Tables {
		s += "\n" + t.String()
	}
	for _, n := range r.Notes {
		s += "note: " + n + "\n"
	}
	return s
}

// Experiment is a regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*Report, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig3", Title: "Baseline exposed load-to-use stall characterisation (Fig. 3)", Run: Fig3},
		{ID: "table3", Title: "Microbenchmark speedup vs divergence factor (Table III)", Run: Table3},
		{ID: "fig12a", Title: "Per-application speedup across SI policies (Fig. 12a)", Run: Fig12a},
		{ID: "fig12b", Title: "Reduction in exposed load-to-use stalls (Fig. 12b)", Run: Fig12b},
		{ID: "fig13", Title: "Average speedup vs L1 miss latency (Fig. 13)", Run: Fig13},
		{ID: "fig14", Title: "Sensitivity to warp slots per SM (Fig. 14)", Run: Fig14},
		{ID: "fig15", Title: "Sensitivity to subwarps per warp / TST size (Fig. 15)", Run: Fig15},
		{ID: "icache", Title: "Instruction cache sizing (Section V-C4)", Run: ICache},
		{ID: "order", Title: "Ablation: divergent-path activation order (Section VI)", Run: Order},
		{ID: "yield", Title: "Ablation: subwarp-yield threshold (Section III-B)", Run: Yield},
		{ID: "dws", Title: "Extension: SI vs Dynamic Warp Subdivision (Section VII-B)", Run: DWS},
		{ID: "matrix", Title: "Workload-family x scheduler-policy x SI cross matrix", Run: Matrix},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// quickProfile shrinks an application profile for Quick runs.
func quickProfile(p workload.AppProfile, o Options) workload.AppProfile {
	if !o.Quick {
		return p
	}
	// Trim follow-on waves and bounce count but keep per-block occupancy
	// intact — occupancy is what calibrates SI's gains.
	resident := 512 / p.RegsPerThread // warps per block at the default 16K-register file
	if resident > 8 {
		resident = 8
	}
	if resident < 1 {
		resident = 1
	}
	if oneWave := 8 * resident; p.NumWarps > oneWave {
		p.NumWarps = oneWave
	}
	if p.Iterations > 2 {
		p.Iterations = 2
	}
	return p
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// job is one simulation to run.
type job struct {
	key string
	cfg config.Config
	mk  func() (*sm.Kernel, error)
}

// runJobs executes simulations on a bounded worker pool (each job on
// fresh kernel state) and returns results keyed by job key. Results and
// the reported error are deterministic regardless of scheduling: every
// job's outcome lands in a slot indexed by submission order, and the
// error returned is the first failing job's in that order. The
// options' context cancels every in-flight simulation.
func runJobs(o Options, jobs []job) (map[string]gpu.Result, error) {
	ctx := o.ctx()
	slots := make([]gpu.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, o.workers())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cfg := j.cfg
			if o.Interpret {
				cfg.Compiled = false
			}
			if o.SchedPolicy != config.SchedLRR {
				cfg.SchedPolicy = o.SchedPolicy
			}
			k, err := j.mk()
			if err == nil {
				slots[i], err = gpu.RunContext(ctx, cfg, k, 0)
			}
			errs[i] = err
		}(i, j)
	}
	wg.Wait()
	results := make(map[string]gpu.Result, len(jobs))
	for i, j := range jobs {
		if errs[i] != nil {
			return results, fmt.Errorf("experiments: %s: %w", j.key, errs[i])
		}
		results[j.key] = slots[i]
	}
	return results, nil
}

// policies enumerates the six SI configurations of Fig. 12a/13, in the
// paper's legend order.
type policy struct {
	label   string
	yield   bool
	trigger config.SelectTrigger
}

func policies() []policy {
	return []policy{
		{"SOS,N=1", false, config.TriggerAllStalled},
		{"Both,N=1", true, config.TriggerAllStalled},
		{"SOS,N>=0.5", false, config.TriggerHalfStalled},
		{"Both,N>=0.5", true, config.TriggerHalfStalled},
		{"SOS,N>0", false, config.TriggerAnyStalled},
		{"Both,N>0", true, config.TriggerAnyStalled},
	}
}

// bestSingle is the paper's single best configuration: Both, N>=0.5.
func bestSingle(cfg config.Config) config.Config {
	return cfg.WithSI(true, config.TriggerHalfStalled)
}

// appSweep runs baseline plus all six SI policies for every application
// at the given base configuration. Keys: "<app>/baseline",
// "<app>/<policy>".
func appSweep(base config.Config, o Options) (map[string]gpu.Result, error) {
	var jobs []job
	for _, app := range workload.Apps() {
		p := quickProfile(app, o)
		jobs = append(jobs, job{
			key: p.Name + "/baseline",
			cfg: base,
			mk:  func() (*sm.Kernel, error) { return workload.Megakernel(p) },
		})
		for _, pol := range policies() {
			jobs = append(jobs, job{
				key: p.Name + "/" + pol.label,
				cfg: base.WithSI(pol.yield, pol.trigger),
				mk:  func() (*sm.Kernel, error) { return workload.Megakernel(p) },
			})
		}
	}
	return runJobs(o, jobs)
}

// sortedKeys returns map keys sorted lexicographically (for stable
// notes/diagnostics).
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
