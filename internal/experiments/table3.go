package experiments

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// table3Paper holds the paper's reported microbenchmark speedups by
// divergence factor (Table III, 600-cycle L1 miss latency).
var table3Paper = map[int]float64{2: 1.98, 4: 3.95, 8: 7.84, 16: 15.22, 32: 12.66}

// Table3 regenerates the microbenchmark scaling study: SI speedup over
// baseline as the warp splinters into 2..32 subwarps. Speedups should
// scale near-linearly up to 16-way divergence and taper at 32-way as
// instruction fetch streams start thrashing the L0/L1 instruction
// caches.
func Table3(o Options) (*Report, error) {
	base := config.Default()
	si := base.WithSI(false, config.TriggerAnyStalled)

	subwarpSizes := []int{16, 8, 4, 2, 1}
	var jobs []job
	for _, ss := range subwarpSizes {
		p := workload.DefaultMicrobench(ss)
		if o.Quick {
			p.Iterations = 3
		}
		jobs = append(jobs,
			job{key: fmt.Sprintf("d%d/base", p.DivergenceFactor()), cfg: base,
				mk: func() (*sm.Kernel, error) { return workload.Microbench(p) }},
			job{key: fmt.Sprintf("d%d/si", p.DivergenceFactor()), cfg: si,
				mk: func() (*sm.Kernel, error) { return workload.Microbench(p) }},
		)
	}
	results, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Microbenchmark SI speedup vs divergence factor (L1 miss latency 600)",
		"SUBWARP_SIZE", "Divergence factor", "Speedup(x)", "Paper(x)", "Fetch-stall share (SI)")
	values := make(map[string]float64)
	for _, ss := range subwarpSizes {
		d := 32 / ss
		b := results[fmt.Sprintf("d%d/base", d)]
		s := results[fmt.Sprintf("d%d/si", d)]
		speedup := 1 + stats.Speedup(b.Counters, s.Counters)
		values[fmt.Sprintf("speedup_%d", d)] = speedup
		values[fmt.Sprintf("fetch_%d", d)] = s.Derived().FetchStallFrac
		tbl.AddRow(fmt.Sprint(ss), fmt.Sprint(d),
			fmt.Sprintf("%.2f", speedup),
			fmt.Sprintf("%.2f", table3Paper[d]),
			stats.Percent(s.Derived().FetchStallFrac))
	}

	return &Report{
		ID:    "table3",
		Title: "Subwarp Interleaving on the Fig. 11 microbenchmark",
		Paper: "near-linear speedups up to 16-way divergence (1.98/3.95/7.84/15.22x), " +
			"tapering to 12.66x at 32-way as instruction fetch stalls rise sharply",
		Tables: []*stats.Table{tbl},
		Values: values,
		Notes: []string{
			"the taper at 32-way divergence comes from the 32 switch cases' combined footprint " +
				"exceeding the 16KB L0 instruction cache once fetch streams interleave",
		},
	}, nil
}
