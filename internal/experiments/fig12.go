package experiments

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// fig12aPaper holds the paper's per-trace Both,N>=0.5 speedups read
// from Fig. 12a (approximate; the paper reports the 6.3% mean exactly).
var fig12aPaper = map[string]float64{
	"AV1": 0.04, "AV2": 0.03, "BFV1": 0.15, "BFV2": 0.20, "Coll1": 0.01,
	"Coll2": 0.02, "Ctrl": 0.05, "DDGI": 0.06, "MC": 0.03, "MW": 0.08,
}

// Fig12a regenerates the per-application policy sweep at a fixed
// 600-cycle L1 miss latency: speedup of each of the six SI
// configurations over baseline, plus the per-application BestOf.
func Fig12a(o Options) (*Report, error) {
	results, err := appSweep(config.Default(), o)
	if err != nil {
		return nil, err
	}

	header := []string{"Trace"}
	for _, p := range policies() {
		header = append(header, p.label)
	}
	header = append(header, "BestOf", "Paper(Both,N>=0.5)")
	tbl := stats.NewTable("Per-application SI speedup (L1 miss latency 600)", header...)

	values := make(map[string]float64)
	meanByPolicy := make(map[string]float64)
	var bestOfSum float64
	for _, name := range workload.AppNames() {
		base := results[name+"/baseline"]
		row := []string{name}
		best := 0.0
		for _, p := range policies() {
			sp := stats.Speedup(base.Counters, results[name+"/"+p.label].Counters)
			values[name+"/"+p.label] = sp
			meanByPolicy[p.label] += sp
			if sp > best {
				best = sp
			}
			row = append(row, stats.Percent(sp))
		}
		values[name+"/BestOf"] = best
		bestOfSum += best
		row = append(row, stats.Percent(best), stats.Percent(fig12aPaper[name]))
		tbl.AddRow(row...)
	}
	n := float64(len(workload.AppNames()))
	meanRow := []string{"mean"}
	bestPolicy, bestPolicyMean := "", -1.0
	for _, p := range policies() {
		m := meanByPolicy[p.label] / n
		values["mean/"+p.label] = m
		meanRow = append(meanRow, stats.Percent(m))
		if m > bestPolicyMean {
			bestPolicy, bestPolicyMean = p.label, m
		}
	}
	values["mean/BestOf"] = bestOfSum / n
	meanRow = append(meanRow, stats.Percent(bestOfSum/n), "6.3%")
	tbl.AddRow(meanRow...)

	return &Report{
		ID:    "fig12a",
		Title: "Speedup of Subwarp Interleaving per application and policy",
		Paper: "best single setting is Both,N>=0.5 at 6.3% average (up to 20% on BFV2); " +
			"average BestOf across settings is 6.6%",
		Tables: []*stats.Table{tbl},
		Values: values,
		Notes: []string{
			fmt.Sprintf("best single policy here: %s at %s mean", bestPolicy, stats.Percent(bestPolicyMean)),
		},
	}, nil
}

// Fig12b regenerates the stall-reduction analysis: for the paper's best
// single configuration (Both, N>=0.5), the reduction in total exposed
// load-to-use stalls and in divergent-block exposed stalls vs baseline.
func Fig12b(o Options) (*Report, error) {
	results, err := appSweep(config.Default(), o)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Reduction in exposed load-to-use stalls, Both,N>=0.5 vs baseline",
		"Trace", "Total stall reduction", "Divergent stall reduction")
	values := make(map[string]float64)
	var totSum, divSum float64
	for _, name := range workload.AppNames() {
		base := results[name+"/baseline"].Counters
		si := results[name+"/Both,N>=0.5"].Counters
		tot := stats.Reduction(base.ExposedLoadStalls, si.ExposedLoadStalls)
		div := stats.Reduction(base.ExposedLoadStallsDivergent, si.ExposedLoadStallsDivergent)
		values[name+"/total"] = tot
		values[name+"/divergent"] = div
		totSum += tot
		divSum += div
		tbl.AddRow(name, stats.Percent(tot), stats.Percent(div))
	}
	n := float64(len(workload.AppNames()))
	values["mean/total"] = totSum / n
	values["mean/divergent"] = divSum / n
	tbl.AddRow("mean", stats.Percent(totSum/n), stats.Percent(divSum/n))

	return &Report{
		ID:    "fig12b",
		Title: "Reduction in exposed load-to-use stalls from SI",
		Paper: "divergent-block stalls drop 26.5% on average (total stalls ~10.5%, Section VIII); " +
			"more than half the traces see only small divergent-stall reductions",
		Tables: []*stats.Table{tbl},
		Values: values,
	}, nil
}
