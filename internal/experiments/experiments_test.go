package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/workload"
)

var errBoom = errors.New("boom")

// full returns the full-size options used for shape assertions; the
// calibrated speedups depend on warm caches and full occupancy, so
// shape tests run the real workloads. They honor -short via skipLong.
func full() Options { return Options{} }

func skipLong(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("shape test runs full-size workloads; skipped in -short mode")
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"fig3", "table3", "fig12a", "fig12b", "fig13", "fig14", "fig15", "icache"} {
		if !ids[want] {
			t.Errorf("missing paper artifact %q", want)
		}
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig3")
	if !ok || e.ID != "fig3" {
		t.Fatal("ByID(fig3) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) should fail")
	}
}

func TestFig3Shape(t *testing.T) {
	skipLong(t)
	r, err := Fig3(full())
	if err != nil {
		t.Fatal(err)
	}
	// Every trace has a row; stall fractions are sane; divergent never
	// exceeds total.
	for _, name := range workload.AppNames() {
		tot := r.Values[name+"/total"]
		div := r.Values[name+"/divergent"]
		if tot <= 0 || tot >= 1 {
			t.Errorf("%s: total stall frac %.2f out of range", name, tot)
		}
		if div < 0 || div > tot {
			t.Errorf("%s: divergent %.2f vs total %.2f", name, div, tot)
		}
	}
	// Paper shape: BFV traces are divergent-stall dominated; the Coll
	// traces stall mostly in convergent code.
	bfvShare := r.Values["BFV1/divergent"] / r.Values["BFV1/total"]
	collShare := r.Values["Coll1/divergent"] / r.Values["Coll1/total"]
	if bfvShare <= collShare {
		t.Errorf("BFV1 divergent share (%.2f) should exceed Coll1's (%.2f)", bfvShare, collShare)
	}
	if r.Values["mean/total"] < 0.2 {
		t.Errorf("mean total stalls %.2f: traces should be stall-heavy", r.Values["mean/total"])
	}
	if len(r.Tables) == 0 || r.Tables[0].NumRows() != 11 {
		t.Error("fig3 table should have 10 app rows + mean")
	}
}

func TestTable3Shape(t *testing.T) {
	skipLong(t)
	r, err := Table3(full())
	if err != nil {
		t.Fatal(err)
	}
	// Monotone growth through 16-way divergence...
	prev := 1.0
	for _, d := range []int{2, 4, 8, 16} {
		sp := r.Values[sprintf("speedup_%d", d)]
		if sp <= prev {
			t.Errorf("divergence %d: speedup %.2f did not grow (prev %.2f)", d, sp, prev)
		}
		prev = sp
	}
	// ...and a fetch-stall-driven taper at 32-way (Table III: 12.66 < 15.22).
	if r.Values["speedup_32"] >= r.Values["speedup_16"] {
		t.Errorf("32-way (%.2f) should taper below 16-way (%.2f)",
			r.Values["speedup_32"], r.Values["speedup_16"])
	}
	if r.Values["fetch_32"] <= r.Values["fetch_2"] {
		t.Error("fetch stalls should rise sharply with 32-way divergence")
	}
	// 2-way divergence halves the serialization: close to 2x.
	if sp := r.Values["speedup_2"]; sp < 1.5 || sp > 2.2 {
		t.Errorf("2-way speedup %.2f, want ~2x", sp)
	}
}

func TestFig12aShape(t *testing.T) {
	skipLong(t)
	r, err := Fig12a(full())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's winners and losers: BFV traces gain most, Coll1 least.
	best := "Both,N>=0.5"
	if r.Values["BFV1/"+best] < r.Values["Coll1/"+best] {
		t.Error("BFV1 should gain more than Coll1")
	}
	if r.Values["BFV2/"+best] < 0.05 {
		t.Errorf("BFV2 gain %.3f too small", r.Values["BFV2/"+best])
	}
	if r.Values["Coll1/"+best] > 0.08 {
		t.Errorf("Coll1 gain %.3f too large (paper ~1%%)", r.Values["Coll1/"+best])
	}
	// Mean in the paper's ballpark (6.3%): allow a generous band.
	mean := r.Values["mean/"+best]
	if mean < 0.01 || mean > 0.18 {
		t.Errorf("mean gain %.3f outside plausible band around 6.3%%", mean)
	}
	// Yield ("Both") should on average beat plain SOS at the same trigger.
	if r.Values["mean/Both,N>=0.5"] < r.Values["mean/SOS,N=1"] {
		t.Error("Both,N>=0.5 should beat the most conservative SOS,N=1 on average")
	}
	// BestOf dominates every individual policy per app.
	for _, name := range workload.AppNames() {
		for _, p := range policies() {
			if r.Values[name+"/"+p.label] > r.Values[name+"/BestOf"]+1e-9 {
				t.Errorf("%s: policy %s above BestOf", name, p.label)
			}
		}
	}
}

func TestFig12bShape(t *testing.T) {
	skipLong(t)
	r, err := Fig12b(full())
	if err != nil {
		t.Fatal(err)
	}
	// SI must reduce divergent stalls more than total stalls (it only
	// attacks divergent-region serialization).
	if r.Values["mean/divergent"] <= r.Values["mean/total"] {
		t.Errorf("divergent reduction (%.2f) should exceed total (%.2f)",
			r.Values["mean/divergent"], r.Values["mean/total"])
	}
	if r.Values["mean/divergent"] <= 0 {
		t.Error("mean divergent reduction should be positive")
	}
	// Coll1 total reduction small (its stalls are convergent).
	if r.Values["Coll1/total"] > r.Values["BFV1/total"] {
		t.Error("BFV1 should see a larger total-stall reduction than Coll1")
	}
}

func TestFig13Shape(t *testing.T) {
	skipLong(t)
	r, err := Fig13(full())
	if err != nil {
		t.Fatal(err)
	}
	// SI's benefit grows with L1 miss latency (paper: 4.2/6.6/7.6 BestOf).
	b300 := r.Values["lat300/BestOf"]
	b600 := r.Values["lat600/BestOf"]
	b900 := r.Values["lat900/BestOf"]
	if !(b300 < b600 && b600 < b900) {
		t.Errorf("BestOf not monotone in latency: %.3f %.3f %.3f", b300, b600, b900)
	}
}

func TestFig15Shape(t *testing.T) {
	skipLong(t)
	r, err := Fig15(full())
	if err != nil {
		t.Fatal(err)
	}
	// Small TSTs must retain most of the unlimited upside (paper: 2
	// subwarps capture 2/3, 4 subwarps 82%; our synthetic traces
	// saturate even earlier) and never beat it by much.
	unlimited := r.Values["mean/tst32"]
	if unlimited <= 0 {
		t.Fatalf("unlimited mean %.3f", unlimited)
	}
	if r.Values["mean/tst2"] < 0.5*unlimited {
		t.Errorf("2-entry TST mean %.3f below half of unlimited %.3f",
			r.Values["mean/tst2"], unlimited)
	}
	if r.Values["mean/tst4"] < 0.7*unlimited {
		t.Errorf("4-entry TST mean %.3f below 70%% of unlimited %.3f",
			r.Values["mean/tst4"], unlimited)
	}
}

func TestICacheShape(t *testing.T) {
	skipLong(t)
	r, err := ICache(full())
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["mean/big"] <= 0 {
		t.Error("upsized-cache mean should be positive")
	}
	// Smaller caches must not *help* SI (paper: 4.5% vs 6.3%).
	if r.Values["mean/small"] > r.Values["mean/big"]*1.15 {
		t.Errorf("4x smaller caches improved SI: %.3f vs %.3f",
			r.Values["mean/small"], r.Values["mean/big"])
	}
}

func TestReportRendering(t *testing.T) {
	skipLong(t)
	r, err := Fig3(full())
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	for _, want := range []string{"fig3", "paper:", "BFV1", "mean"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestQuickProfileShrinks(t *testing.T) {
	p, _ := workload.ProfileByName("AV1")
	q := quickProfile(p, Options{Quick: true})
	if q.NumWarps >= p.NumWarps {
		t.Error("quick profile should shrink warps")
	}
	same := quickProfile(p, Options{})
	if same.NumWarps != p.NumWarps {
		t.Error("non-quick profile must be unchanged")
	}
}

func TestRunJobsPropagatesErrors(t *testing.T) {
	_, err := runJobs(Options{Workers: 1}, []job{{
		key: "bad",
		mk:  func() (*sm.Kernel, error) { return nil, errBoom },
	}})
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "bad") {
		t.Errorf("error should name the job: %v", err)
	}
}

func TestRunJobsHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := runJobs(Options{Workers: 1, Context: ctx}, []job{{
		key: "cancelled",
		cfg: config.Default(),
		mk: func() (*sm.Kernel, error) {
			return workload.Microbench(workload.DefaultMicrobench(4))
		},
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !strings.Contains(err.Error(), "cancelled") {
		t.Errorf("error should name the job: %v", err)
	}
}

func TestSortedKeys(t *testing.T) {
	keys := sortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if len(keys) != 3 || keys[0] != "a" || keys[2] != "c" {
		t.Errorf("sortedKeys = %v", keys)
	}
}

func sprintf(format string, args ...any) string {
	return fmt.Sprintf(format, args...)
}

func TestDWSShape(t *testing.T) {
	skipLong(t)
	r, err := DWS(full())
	if err != nil {
		t.Fatal(err)
	}
	// Section VII-B: SI beats DWS on average, decisively so on traces
	// with few free warp slots.
	if r.Values["mean/dws"] >= r.Values["mean/si"] {
		t.Errorf("DWS mean %.3f should trail SI mean %.3f",
			r.Values["mean/dws"], r.Values["mean/si"])
	}
	// Fully occupied traces (8 resident warps, 0 free slots): DWS is
	// nearly inert, SI still works.
	for _, name := range []string{"AV1", "AV2", "MC"} {
		if r.Values[name+"/dws"] > 0.02 {
			t.Errorf("%s: DWS %.3f with zero free slots should be near zero",
				name, r.Values[name+"/dws"])
		}
	}
	// The SI-DWS gap narrows as register pressure frees slots.
	if r.Values["bfv1_regs64/gap"] <= r.Values["bfv1_regs255/gap"] {
		t.Errorf("gap at 0 free slots (%.3f) should exceed gap at 6 free slots (%.3f)",
			r.Values["bfv1_regs64/gap"], r.Values["bfv1_regs255/gap"])
	}
}
