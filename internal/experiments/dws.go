package experiments

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// DWS compares Subwarp Interleaving against a model of Dynamic Warp
// Subdivision (Meng et al., ISCA 2010), the paper's closest related
// work. DWS runs diverged subwarps concurrently by forking them into
// *unused warp slots*, so its benefit collapses when occupancy is high;
// SI keeps subwarps inside their warp's own slot and needs no free
// slots. Section VII-B: "We believe that our approach will perform
// better than DWS, especially when there are few unused warp slots as
// is likely to be the case with effective asynchronous compute use."
func DWS(o Options) (*Report, error) {
	var jobs []job
	for _, app := range workload.Apps() {
		p := quickProfile(app, o)
		jobs = append(jobs,
			job{key: p.Name + "/base", cfg: config.Default(),
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
			job{key: p.Name + "/si", cfg: bestSingle(config.Default()),
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
			job{key: p.Name + "/dws", cfg: config.Default().WithDWS(),
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
		)
	}
	results, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("SI vs Dynamic Warp Subdivision (per trace, native occupancy)",
		"Trace", "Resident warps/block", "Free slots", "DWS", "SI (Both,N>=0.5)")
	values := make(map[string]float64)
	var dwsSum, siSum float64
	for _, app := range workload.Apps() {
		name := app.Name
		base := results[name+"/base"]
		dws := stats.Speedup(base.Counters, results[name+"/dws"].Counters)
		si := stats.Speedup(base.Counters, results[name+"/si"].Counters)
		values[name+"/dws"] = dws
		values[name+"/si"] = si
		dwsSum += dws
		siSum += si
		resident := residentWarps(app)
		tbl.AddRow(name, fmt.Sprint(resident), fmt.Sprint(8-resident),
			stats.Percent(dws), stats.Percent(si))
	}
	n := float64(len(workload.AppNames()))
	values["mean/dws"] = dwsSum / n
	values["mean/si"] = siSum / n
	tbl.AddRow("mean", "", "", stats.Percent(dwsSum/n), stats.Percent(siSum/n))

	// Slot-pressure sweep: the same trace at decreasing occupancy.
	// Fewer resident warps leave DWS more free slots to fork into.
	pressure := stats.NewTable("Slot-pressure sweep on BFV1: register pressure frees warp slots",
		"Regs/thread", "Resident warps/block", "Free slots", "DWS", "SI (Both,N>=0.5)")
	bfv, err := workload.ProfileByName("BFV1")
	if err != nil {
		return nil, err
	}
	for _, regs := range []int{64, 88, 104, 136, 255} {
		p := quickProfile(bfv, o)
		p.RegsPerThread = regs
		var sweep []job
		sweep = append(sweep,
			job{key: "base", cfg: config.Default(),
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
			job{key: "si", cfg: bestSingle(config.Default()),
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
			job{key: "dws", cfg: config.Default().WithDWS(),
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
		)
		res, err := runJobs(o, sweep)
		if err != nil {
			return nil, err
		}
		dws := stats.Speedup(res["base"].Counters, res["dws"].Counters)
		si := stats.Speedup(res["base"].Counters, res["si"].Counters)
		resident := residentWarps(p)
		values[fmt.Sprintf("bfv1_regs%d/dws", regs)] = dws
		values[fmt.Sprintf("bfv1_regs%d/si", regs)] = si
		values[fmt.Sprintf("bfv1_regs%d/gap", regs)] = si - dws
		pressure.AddRow(fmt.Sprint(regs), fmt.Sprint(resident), fmt.Sprint(8-resident),
			stats.Percent(dws), stats.Percent(si))
	}

	return &Report{
		ID:    "dws",
		Title: "Extension: Subwarp Interleaving vs Dynamic Warp Subdivision",
		Paper: "not quantified in the paper; Section VII-B argues SI should beat DWS when few " +
			"warp slots are free, since DWS relies on forking subwarps into unused slots",
		Tables: []*stats.Table{tbl, pressure},
		Values: values,
		Notes: []string{
			"DWS is modeled as slot-budgeted subwarp parallelism: each concurrently parked " +
				"subwarp occupies a free warp slot, splits are eager and switch-free",
		},
	}, nil
}

// residentWarps computes warps resident per block for a profile under
// the default 16K-register file and 8 slots.
func residentWarps(p workload.AppProfile) int {
	n := 512 / p.RegsPerThread
	if n > 8 {
		n = 8
	}
	if n < 1 {
		n = 1
	}
	return n
}
