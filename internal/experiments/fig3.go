package experiments

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// Fig3 regenerates the baseline characterisation: total exposed
// load-to-use stalls and exposed stalls in divergent code blocks, both
// normalized to kernel runtime, per application trace.
func Fig3(o Options) (*Report, error) {
	base := config.Default()
	var jobs []job
	for _, app := range workload.Apps() {
		p := quickProfile(app, o)
		jobs = append(jobs, job{
			key: p.Name,
			cfg: base,
			mk:  func() (*sm.Kernel, error) { return workload.Megakernel(p) },
		})
	}
	results, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Exposed load-to-use stalls normalized to kernel time (baseline, 600-cycle L1 miss)",
		"Trace", "Total stalls", "Divergent stalls", "Divergent share")
	values := make(map[string]float64)
	var totSum, divSum float64
	for _, name := range workload.AppNames() {
		d := results[name].Derived()
		tbl.AddRow(name,
			stats.Percent(d.ExposedStallFrac),
			stats.Percent(d.DivergentStallFrac),
			stats.Percent(safeDiv(d.DivergentStallFrac, d.ExposedStallFrac)))
		values[name+"/total"] = d.ExposedStallFrac
		values[name+"/divergent"] = d.DivergentStallFrac
		totSum += d.ExposedStallFrac
		divSum += d.DivergentStallFrac
	}
	n := float64(len(workload.AppNames()))
	values["mean/total"] = totSum / n
	values["mean/divergent"] = divSum / n
	tbl.AddRow("mean", stats.Percent(totSum/n), stats.Percent(divSum/n),
		stats.Percent(safeDiv(divSum, totSum)))

	return &Report{
		ID:    "fig3",
		Title: "Characteristics favoring Subwarp Interleaving",
		Paper: "raytracing kernels spend a large fraction of runtime in exposed load-to-use stalls " +
			"(roughly 25-75% per trace), with a significant share inside divergent code blocks; " +
			"BFV1/BFV2 are divergent-stall dominated while Coll1/Coll2 stall mostly in convergent code",
		Tables: []*stats.Table{tbl},
		Values: values,
		Notes: []string{
			fmt.Sprintf("divergent share spans %s..%s across traces",
				stats.Percent(minShare(values)), stats.Percent(maxShare(values))),
		},
	}, nil
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func minShare(values map[string]float64) float64 {
	m := 1.0
	for _, name := range workload.AppNames() {
		if s := safeDiv(values[name+"/divergent"], values[name+"/total"]); s < m {
			m = s
		}
	}
	return m
}

func maxShare(values map[string]float64) float64 {
	m := 0.0
	for _, name := range workload.AppNames() {
		if s := safeDiv(values[name+"/divergent"], values[name+"/total"]); s > m {
			m = s
		}
	}
	return m
}
