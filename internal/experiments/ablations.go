package experiments

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// Order runs the subwarp activation-order ablation the paper's
// Discussion proposes (Section VI, third limiter): the order in which a
// processing block encounters subwarps matters, and randomizing the
// execution order of divergent paths "improves the odds of creating a
// profitable dynamic subwarp scheduling order". It compares SI's mean
// speedup under each activation-order policy.
func Order(o Options) (*Report, error) {
	orders := []config.SubwarpOrder{
		config.OrderTakenFirst,
		config.OrderFallthroughFirst,
		config.OrderLargestFirst,
		config.OrderRandom,
	}

	tbl := stats.NewTable("Mean SI speedup (Both,N>=0.5) by divergent-path activation order",
		"Order", "Mean speedup")
	values := make(map[string]float64)
	for _, ord := range orders {
		cfg := config.Default()
		cfg.Order = ord
		per, err := appSweepBest(cfg, o)
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, name := range workload.AppNames() {
			sum += per[name]
		}
		m := sum / float64(len(workload.AppNames()))
		values[ord.String()] = m
		tbl.AddRow(ord.String(), stats.Percent(m))
	}

	return &Report{
		ID:    "order",
		Title: "Ablation: divergent-path activation order (Discussion, Section VI)",
		Paper: "not quantified in the paper; it notes execution order matters and suggests " +
			"software hints or randomized order as future work",
		Tables: []*stats.Table{tbl},
		Values: values,
	}, nil
}

// Yield runs the subwarp-yield threshold ablation: how many outstanding
// long-latency operations an active subwarp issues before eagerly
// yielding (Section III-B describes the threshold as configurable).
func Yield(o Options) (*Report, error) {
	thresholds := []int{1, 2, 4, 8}
	tbl := stats.NewTable("Mean SI speedup (Both,N>=0.5) by yield threshold",
		"Threshold", "Mean speedup")
	values := make(map[string]float64)

	for _, th := range thresholds {
		cfg := bestSingle(config.Default())
		cfg.SI.YieldThreshold = th
		var jobs []job
		for _, app := range workload.Apps() {
			p := quickProfile(app, o)
			jobs = append(jobs,
				job{key: p.Name + "/base", cfg: config.Default(),
					mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
				job{key: p.Name + "/si", cfg: cfg,
					mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
			)
		}
		results, err := runJobs(o, jobs)
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, name := range workload.AppNames() {
			sum += stats.Speedup(results[name+"/base"].Counters, results[name+"/si"].Counters)
		}
		m := sum / float64(len(workload.AppNames()))
		values[fmt.Sprintf("threshold%d", th)] = m
		tbl.AddRow(fmt.Sprint(th), stats.Percent(m))
	}

	return &Report{
		ID:    "yield",
		Title: "Ablation: subwarp-yield threshold",
		Paper: "the paper evaluates yield-after-every-long-latency-op (threshold 1) as 'Both'; " +
			"higher thresholds trade memory-level parallelism for fewer switches",
		Tables: []*stats.Table{tbl},
		Values: values,
	}, nil
}
