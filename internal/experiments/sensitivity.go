package experiments

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// Fig13 regenerates the L1 miss latency sensitivity: mean speedup of
// every SI policy and the BestOf across latencies of 300, 600 and 900
// cycles. SI tolerates latency, so speedups grow with miss latency.
func Fig13(o Options) (*Report, error) {
	latencies := []int{300, 600, 900}
	tbl := stats.NewTable("Average SI speedup vs L1 miss latency",
		append([]string{"Config"}, "lat300", "lat600", "lat900")...)
	values := make(map[string]float64)

	perLatency := make(map[int]map[string]float64) // lat -> policy -> mean
	for _, lat := range latencies {
		cfg := config.Default()
		cfg.L1MissLatency = lat
		results, err := appSweep(cfg, o)
		if err != nil {
			return nil, err
		}
		means := make(map[string]float64)
		n := float64(len(workload.AppNames()))
		var bestSum float64
		for _, name := range workload.AppNames() {
			base := results[name+"/baseline"]
			best := 0.0
			for _, p := range policies() {
				sp := stats.Speedup(base.Counters, results[name+"/"+p.label].Counters)
				means[p.label] += sp / n
				if sp > best {
					best = sp
				}
			}
			bestSum += best
		}
		means["BestOf"] = bestSum / n
		perLatency[lat] = means
		for pol, m := range means {
			values[fmt.Sprintf("lat%d/%s", lat, pol)] = m
		}
	}

	for _, p := range policies() {
		row := []string{p.label}
		for _, lat := range latencies {
			row = append(row, stats.Percent(perLatency[lat][p.label]))
		}
		tbl.AddRow(row...)
	}
	row := []string{"BestOf"}
	for _, lat := range latencies {
		row = append(row, stats.Percent(perLatency[lat]["BestOf"]))
	}
	tbl.AddRow(row...)

	return &Report{
		ID:    "fig13",
		Title: "Average speedups across L1 miss latency settings",
		Paper: "BestOf speedups of 4.2%, 6.6% and 7.6% at 300, 600 and 900 cycles: " +
			"SI's benefit grows with memory latency",
		Tables: []*stats.Table{tbl},
		Values: values,
	}, nil
}

// Fig14 regenerates the warp-slot sensitivity: SI (Both, N>=0.5) versus
// an identically warp-throttled baseline at 8, 16 and 32 peak warps per
// SM (2, 4 and 8 slots per processing block).
func Fig14(o Options) (*Report, error) {
	slotSettings := []int{2, 4, 8} // per processing block = 8/16/32 per SM
	tbl := stats.NewTable("SI speedup over equally-throttled baseline vs peak warp slots",
		"Trace", "8 warps", "16 warps", "32 warps")
	values := make(map[string]float64)

	perSlot := make(map[int]map[string]float64)
	for _, slots := range slotSettings {
		cfg := config.Default()
		cfg.WarpSlotsPerBlock = slots
		results, err := appSweepBest(cfg, o)
		if err != nil {
			return nil, err
		}
		perSlot[slots] = results
	}

	for _, name := range workload.AppNames() {
		row := []string{name}
		for _, slots := range slotSettings {
			sp := perSlot[slots][name]
			values[fmt.Sprintf("%s/warps%d", name, slots*4)] = sp
			row = append(row, stats.Percent(sp))
		}
		tbl.AddRow(row...)
	}
	row := []string{"mean"}
	for _, slots := range slotSettings {
		var sum float64
		for _, name := range workload.AppNames() {
			sum += perSlot[slots][name]
		}
		m := sum / float64(len(workload.AppNames()))
		values[fmt.Sprintf("mean/warps%d", slots*4)] = m
		row = append(row, stats.Percent(m))
	}
	tbl.AddRow(row...)

	return &Report{
		ID:    "fig14",
		Title: "Sensitivity to number of warp slots",
		Paper: "5.1%, 5.7% and 6.3% average speedups at 8, 16 and 32 peak warps: " +
			"warp throttling reduces latency tolerance everywhere, slightly muting SI",
		Tables: []*stats.Table{tbl},
		Values: values,
	}, nil
}

// appSweepBest runs baseline and the best single policy (Both,N>=0.5)
// per app under cfg, returning per-app speedups.
func appSweepBest(cfg config.Config, o Options) (map[string]float64, error) {
	var jobs []job
	for _, app := range workload.Apps() {
		p := quickProfile(app, o)
		jobs = append(jobs,
			job{key: p.Name + "/base", cfg: cfg,
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
			job{key: p.Name + "/si", cfg: bestSingle(cfg),
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }},
		)
	}
	results, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, name := range workload.AppNames() {
		out[name] = stats.Speedup(results[name+"/base"].Counters, results[name+"/si"].Counters)
	}
	return out, nil
}

// Fig15 regenerates the TST-size sensitivity: SI speedup with support
// for 2, 4, 6 and unlimited (32) subwarps per warp, at 32 peak warps.
func Fig15(o Options) (*Report, error) {
	sizes := []int{2, 4, 6, 32}
	tbl := stats.NewTable("SI speedup vs supported subwarps per warp (TST entries)",
		"Trace", "2 subwarps", "4 subwarps", "6 subwarps", "unlimited")
	values := make(map[string]float64)

	var jobs []job
	for _, app := range workload.Apps() {
		p := quickProfile(app, o)
		jobs = append(jobs, job{key: p.Name + "/base", cfg: config.Default(),
			mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }})
		for _, n := range sizes {
			cfg := bestSingle(config.Default())
			cfg.SI.MaxSubwarps = n
			jobs = append(jobs, job{key: fmt.Sprintf("%s/tst%d", p.Name, n), cfg: cfg,
				mk: func() (*sm.Kernel, error) { return workload.Megakernel(p) }})
		}
	}
	results, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	for _, name := range workload.AppNames() {
		base := results[name+"/base"]
		row := []string{name}
		for _, n := range sizes {
			sp := stats.Speedup(base.Counters, results[fmt.Sprintf("%s/tst%d", name, n)].Counters)
			values[fmt.Sprintf("%s/tst%d", name, n)] = sp
			row = append(row, stats.Percent(sp))
		}
		tbl.AddRow(row...)
	}
	row := []string{"mean"}
	for _, n := range sizes {
		var sum float64
		for _, name := range workload.AppNames() {
			sum += values[fmt.Sprintf("%s/tst%d", name, n)]
		}
		m := sum / float64(len(workload.AppNames()))
		values[fmt.Sprintf("mean/tst%d", n)] = m
		row = append(row, stats.Percent(m))
	}
	tbl.AddRow(row...)
	if values["mean/tst32"] > 0 {
		values["capture_4"] = values["mean/tst4"] / values["mean/tst32"]
	}

	return &Report{
		ID:    "fig15",
		Title: "Sensitivity to subwarps per warp",
		Paper: "2 subwarps already capture 4.2% average; 4 subwarps reach 5.2%, " +
			"82% of the unlimited configuration's upside, with one eighth the TST logic",
		Tables: []*stats.Table{tbl},
		Values: values,
		Notes: []string{
			fmt.Sprintf("4-entry TST captures %s of unlimited here", stats.Percent(values["capture_4"])),
		},
	}, nil
}

// ICache regenerates the Section V-C4 study: the best SI configuration
// with the default (upsized) instruction caches versus 4x smaller L0
// and L1 instruction caches mimicking shipping GPUs.
func ICache(o Options) (*Report, error) {
	deflt := config.Default()
	small := config.Default()
	small.L0InstrBytes = deflt.L0InstrBytes / 4
	small.L1InstrBytes = deflt.L1InstrBytes / 4

	tbl := stats.NewTable("SI speedup (Both,N>=0.5) vs instruction cache sizing",
		"Trace", "16KB L0 / 64KB L1I", "4KB L0 / 16KB L1I")
	values := make(map[string]float64)

	big, err := appSweepBest(deflt, o)
	if err != nil {
		return nil, err
	}
	sm4, err := appSweepBest(small, o)
	if err != nil {
		return nil, err
	}
	var bigSum, smallSum float64
	for _, name := range workload.AppNames() {
		values[name+"/big"] = big[name]
		values[name+"/small"] = sm4[name]
		bigSum += big[name]
		smallSum += sm4[name]
		tbl.AddRow(name, stats.Percent(big[name]), stats.Percent(sm4[name]))
	}
	n := float64(len(workload.AppNames()))
	values["mean/big"] = bigSum / n
	values["mean/small"] = smallSum / n
	tbl.AddRow("mean", stats.Percent(bigSum/n), stats.Percent(smallSum/n))

	return &Report{
		ID:    "icache",
		Title: "Instruction cache sizing",
		Paper: "with 4x smaller L0/L1 instruction caches (mimicking shipping GPUs) the best " +
			"configuration's 6.3% average drops to 4.5%, about 70% of the upsized-cache speedup",
		Tables: []*stats.Table{tbl},
		Values: values,
		Notes: []string{
			fmt.Sprintf("small-cache mean retains %s of the upsized-cache mean",
				stats.Percent(safeDiv(values["mean/small"], values["mean/big"]))),
		},
	}, nil
}
