package experiments

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// matrixFamily is one workload-family axis entry: a named kernel
// constructor, shrinkable for Quick runs.
type matrixFamily struct {
	name string
	mk   func() (*sm.Kernel, error)
}

// matrixFamilies returns the workload axis, honoring the Options
// workload filter and Quick shrinking. Quick parameters keep every
// family's defining behaviour — GEMM divergence-free, BFS stalling in
// diverged arms, texture mixing latency classes — at a fraction of
// the default cycle counts.
func matrixFamilies(o Options) ([]matrixFamily, error) {
	builders := map[string]func() (*sm.Kernel, error){
		"gemm": func() (*sm.Kernel, error) {
			p := workload.DefaultGEMM()
			if o.Quick {
				// Quick shrinks trip counts, never occupancy: at two or
				// fewer resident warps per processing block every sticky
				// policy's fallback set has at most one candidate, and
				// below full occupancy GTO and the WaSP-style policy
				// often coincide — the policy axis needs 8 warps/block.
				p.TilesK = 8
			}
			return workload.GEMM(p)
		},
		"bfs": func() (*sm.Kernel, error) {
			p := workload.DefaultBFS()
			if o.Quick {
				p.Levels = 2
			}
			return workload.BFS(p)
		},
		"texture": func() (*sm.Kernel, error) {
			p := workload.DefaultTexture()
			if o.Quick {
				p.Iterations = 4
			}
			return workload.Texture(p)
		},
	}
	names := o.Workloads
	if len(names) == 0 {
		names = workload.GeneratorNames()
	}
	var fams []matrixFamily
	for _, name := range names {
		mk, ok := builders[name]
		if !ok {
			if _, err := workload.BuildByName(name); err != nil {
				return nil, err
			}
			// Registered but without a Quick shrink: run the defaults.
			mk = func() (*sm.Kernel, error) { return workload.BuildByName(name) }
		}
		fams = append(fams, matrixFamily{name: name, mk: mk})
	}
	return fams, nil
}

// matrixPolicies returns the scheduler-policy axis: all registered
// policies, or just the Options override when one is set.
func matrixPolicies(o Options) []config.SchedPolicy {
	if o.SchedPolicy != config.SchedLRR {
		return []config.SchedPolicy{o.SchedPolicy}
	}
	pols := make([]config.SchedPolicy, config.NumSchedPolicies)
	for i := range pols {
		pols[i] = config.SchedPolicy(i)
	}
	return pols
}

// Matrix crosses the workload-family and scheduler-policy axes against
// baseline and best-single SI. This is the scenario grid the related
// work says the paper is missing: whether SI's gains survive a
// scheduler change and a workload shape change is exactly what the
// cross cells answer. Cell keys: "<family>/<policy>/<metric>".
func Matrix(o Options) (*Report, error) {
	fams, err := matrixFamilies(o)
	if err != nil {
		return nil, err
	}
	pols := matrixPolicies(o)

	var jobs []job
	for _, fam := range fams {
		for _, pol := range pols {
			cfg := config.Default()
			cfg.SchedPolicy = pol
			key := fam.name + "/" + pol.String()
			jobs = append(jobs, job{key: key + "/baseline", cfg: cfg, mk: fam.mk})
			jobs = append(jobs, job{key: key + "/si", cfg: bestSingle(cfg), mk: fam.mk})
		}
	}
	results, err := runJobs(o, jobs)
	if err != nil {
		return nil, err
	}

	tbl := stats.NewTable("Workload x policy cross matrix (baseline vs Both,N>=0.5)",
		"Family", "Policy", "Cycles", "SI speedup", "Stall frac", "Divergent frac")
	values := make(map[string]float64)
	for _, fam := range fams {
		for _, pol := range pols {
			key := fam.name + "/" + pol.String()
			base := results[key+"/baseline"]
			si := results[key+"/si"]
			d := base.Derived()
			speedup := stats.Speedup(base.Counters, si.Counters)
			values[key+"/si_speedup"] = speedup
			values[key+"/stall_frac"] = d.ExposedStallFrac
			values[key+"/div_stall_frac"] = d.DivergentStallFrac
			tbl.AddRow(fam.name, pol.String(),
				fmt.Sprintf("%d", base.Counters.Cycles),
				stats.Percent(speedup),
				stats.Percent(d.ExposedStallFrac),
				stats.Percent(d.DivergentStallFrac))
		}
	}

	return &Report{
		ID:    "matrix",
		Title: "Workload-family x scheduler-policy x SI cross matrix",
		Paper: "not a paper artifact: the related-work critique (Accel-Sim modeling, WaSP) argues " +
			"latency-hiding conclusions flip with workload shape and warp scheduling; this grid " +
			"characterises SI across regular compute, irregular traversal, and graphics " +
			"sampling under LRR, GTO, and WaSP-style schedulers",
		Tables: []*stats.Table{tbl},
		Values: values,
		Notes: []string{
			"gemm is divergence-free: SI must be cycle-exact transparent (0.0% speedup) under every policy",
			"bfs diverges with independent load chains per arm: the SI stress case",
		},
	}, nil
}
