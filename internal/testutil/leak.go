// Package testutil holds shared test-only helpers. (Not to be
// confused with internal/tst, the paper's Thread Status Table.)
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// VerifyNoLeaks snapshots the goroutine count and registers a cleanup
// that fails the test if the count has not settled back by test end.
// Call it first, before the test starts servers or pools, so
// everything the test creates is in scope. The check polls briefly —
// goroutine teardown after Close/Drain is asynchronous — and on
// failure dumps every goroutine stack so the leaked one is findable.
func VerifyNoLeaks(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d at start, %d after cleanup; all stacks:\n%s", before, n, buf)
	})
}
