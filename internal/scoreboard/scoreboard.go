// Package scoreboard implements the count-based scoreboards of
// Section III-C: a counter per scoreboard ID incremented when a guarded
// variable-latency operation issues and decremented when it writes
// back. A dependent consumer blocks until its required scoreboard
// counts down to zero.
//
// The baseline architecture keeps NSB warp-wide counters; Subwarp
// Interleaving replicates them per thread so that concurrent subwarps
// do not alias each other's updates. This package always stores
// per-thread counts; the observation granularity is chosen by the mask
// passed to Count/Ready — the full warp mask reproduces the baseline's
// warp-wide aliasing, an active-subwarp mask gives SI's replicated
// view.
package scoreboard

import (
	"fmt"

	"subwarpsim/internal/bits"
)

// MaxScoreboards bounds scoreboard IDs (s = log2 bits of TST storage).
const MaxScoreboards = 16

// CountBits is the width t of one per-thread counter; counts saturate
// rather than wrap, so a saturated counter conservatively blocks.
const CountBits = 6

// maxCount is the saturation value for a CountBits-wide counter.
const maxCount = 1<<CountBits - 1

// File is one warp's scoreboard state: nsb counters per thread.
type File struct {
	nsb    int
	counts [bits.WarpSize][MaxScoreboards]uint8
}

// NewFile creates a scoreboard file with nsb counters per thread.
// It panics if nsb is outside (0, MaxScoreboards].
func NewFile(nsb int) *File {
	if nsb <= 0 || nsb > MaxScoreboards {
		panic(fmt.Sprintf("scoreboard: nsb %d out of range", nsb))
	}
	return &File{nsb: nsb}
}

// NSB returns the number of counters per thread.
func (f *File) NSB() int { return f.nsb }

func (f *File) check(id int) {
	if id < 0 || id >= f.nsb {
		panic(fmt.Sprintf("scoreboard: id %d out of range (nsb=%d)", id, f.nsb))
	}
}

// Inc increments counter id for every lane in mask (issue of a guarded
// operation by those threads). Counters saturate at the maximum value.
func (f *File) Inc(mask bits.Mask, id int) {
	f.check(id)
	for it := mask; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		if f.counts[lane][id] < maxCount {
			f.counts[lane][id]++
		}
	}
}

// Dec decrements counter id for the given lane (writeback of that
// thread's guarded operand). Decrementing a zero counter panics: it
// indicates a writeback without a matching issue, a simulator bug.
func (f *File) Dec(lane, id int) {
	f.check(id)
	if f.counts[lane][id] == 0 {
		panic(fmt.Sprintf("scoreboard: underflow lane %d sb%d", lane, id))
	}
	f.counts[lane][id]--
}

// LaneCount returns the counter value for a single lane.
func (f *File) LaneCount(lane, id int) int {
	f.check(id)
	return int(f.counts[lane][id])
}

// Count sums counter id across all lanes in mask. Passing the warp's
// full live mask gives the baseline's warp-wide view; passing a
// subwarp's mask gives SI's per-subwarp replicated view.
func (f *File) Count(mask bits.Mask, id int) int {
	f.check(id)
	total := 0
	for it := mask; !it.Empty(); it = it.DropLowest() {
		total += int(f.counts[it.Lowest()][id])
	}
	return total
}

// Ready reports whether counter id reads zero across every lane in
// mask, i.e. a consumer with &req=id from those threads may issue.
func (f *File) Ready(mask bits.Mask, id int) bool {
	f.check(id)
	for it := mask; !it.Empty(); it = it.DropLowest() {
		if f.counts[it.Lowest()][id] != 0 {
			return false
		}
	}
	return true
}

// Outstanding reports whether any counter of any lane in mask is
// non-zero (used to detect pending long-latency operations).
func (f *File) Outstanding(mask bits.Mask) bool {
	for it := mask; !it.Empty(); it = it.DropLowest() {
		lane := it.Lowest()
		for id := 0; id < f.nsb; id++ {
			if f.counts[lane][id] != 0 {
				return true
			}
		}
	}
	return false
}

// Reset zeroes all counters.
func (f *File) Reset() {
	f.counts = [bits.WarpSize][MaxScoreboards]uint8{}
}
