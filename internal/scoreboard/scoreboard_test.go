package scoreboard

import (
	"strings"
	"testing"
	"testing/quick"

	"subwarpsim/internal/bits"
)

func TestNewFileBounds(t *testing.T) {
	for _, nsb := range []int{0, -1, MaxScoreboards + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFile(%d) did not panic", nsb)
				}
			}()
			NewFile(nsb)
		}()
	}
	if NewFile(8).NSB() != 8 {
		t.Error("NSB accessor")
	}
}

func TestIncDecSingleLane(t *testing.T) {
	f := NewFile(8)
	m := bits.LaneMask(3)
	if !f.Ready(m, 5) {
		t.Fatal("fresh scoreboard should be ready")
	}
	f.Inc(m, 5)
	if f.Ready(m, 5) {
		t.Fatal("after Inc should not be ready")
	}
	if f.LaneCount(3, 5) != 1 || f.Count(m, 5) != 1 {
		t.Fatal("count wrong")
	}
	f.Dec(3, 5)
	if !f.Ready(m, 5) {
		t.Fatal("after Dec should be ready")
	}
}

func TestWarpWideAliasing(t *testing.T) {
	// Subwarp A (lanes 0-15) has an outstanding load on sb2. Subwarp B
	// (lanes 16-31) consuming sb2 is clean per-subwarp but dirty
	// warp-wide — exactly the aliasing SI's replication avoids.
	f := NewFile(8)
	subA := bits.FirstN(16)
	subB := bits.FullMask.Minus(subA)
	f.Inc(subA, 2)
	if f.Ready(bits.FullMask, 2) {
		t.Error("warp-wide view must see subwarp A's outstanding count")
	}
	if !f.Ready(subB, 2) {
		t.Error("per-subwarp view of B must be clean")
	}
	if f.Count(bits.FullMask, 2) != 16 {
		t.Errorf("warp-wide count = %d, want 16", f.Count(bits.FullMask, 2))
	}
}

func TestMultipleOutstanding(t *testing.T) {
	f := NewFile(8)
	m := bits.LaneMask(0)
	f.Inc(m, 1)
	f.Inc(m, 1)
	f.Inc(m, 1)
	f.Dec(0, 1)
	if f.Ready(m, 1) {
		t.Error("2 outstanding remain")
	}
	f.Dec(0, 1)
	f.Dec(0, 1)
	if !f.Ready(m, 1) {
		t.Error("all returned")
	}
}

func TestUnderflowPanics(t *testing.T) {
	f := NewFile(8)
	defer func() {
		if recover() == nil {
			t.Error("Dec on zero counter should panic")
		}
	}()
	f.Dec(0, 0)
}

func TestIDBoundsPanics(t *testing.T) {
	f := NewFile(4)
	defer func() {
		if recover() == nil {
			t.Error("id out of range should panic")
		}
	}()
	f.Inc(bits.FullMask, 4)
}

func TestSaturation(t *testing.T) {
	f := NewFile(8)
	m := bits.LaneMask(0)
	for i := 0; i < maxCount+10; i++ {
		f.Inc(m, 0)
	}
	if f.LaneCount(0, 0) != maxCount {
		t.Errorf("count = %d, want saturated %d", f.LaneCount(0, 0), maxCount)
	}
}

func TestOutstanding(t *testing.T) {
	f := NewFile(8)
	if f.Outstanding(bits.FullMask) {
		t.Error("fresh file has nothing outstanding")
	}
	f.Inc(bits.LaneMask(7), 3)
	if !f.Outstanding(bits.FullMask) {
		t.Error("should be outstanding warp-wide")
	}
	if !f.Outstanding(bits.LaneMask(7)) {
		t.Error("should be outstanding for lane 7")
	}
	if f.Outstanding(bits.LaneMask(8)) {
		t.Error("lane 8 has nothing outstanding")
	}
}

func TestReset(t *testing.T) {
	f := NewFile(8)
	f.Inc(bits.FullMask, 0)
	f.Reset()
	if f.Outstanding(bits.FullMask) {
		t.Error("Reset should clear counts")
	}
}

func TestReadyEmptyMask(t *testing.T) {
	f := NewFile(8)
	f.Inc(bits.FullMask, 0)
	if !f.Ready(0, 0) {
		t.Error("empty mask is vacuously ready")
	}
}

// Property: for any sequence of Incs on disjoint masks, Count over the
// union equals the sum of counts over the parts.
func TestQuickCountAdditive(t *testing.T) {
	f := func(a, b uint32, id uint8) bool {
		sb := int(id) % 8
		ma := bits.Mask(a)
		mb := bits.Mask(b).Minus(ma)
		file := NewFile(8)
		file.Inc(ma, sb)
		file.Inc(mb, sb)
		return file.Count(ma.Union(mb), sb) == file.Count(ma, sb)+file.Count(mb, sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Inc then Dec per lane restores readiness.
func TestQuickIncDecRoundTrip(t *testing.T) {
	f := func(m uint32, id uint8) bool {
		sb := int(id) % 8
		mask := bits.Mask(m)
		file := NewFile(8)
		file.Inc(mask, sb)
		mask.ForEach(func(lane int) { file.Dec(lane, sb) })
		return file.Ready(bits.FullMask, sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestDoubleReleasePanics: a second writeback for the same issue is a
// simulator bug and must be loud, not a silent wrap to 255.
func TestDoubleReleasePanics(t *testing.T) {
	f := NewFile(8)
	f.Inc(bits.LaneMask(2), 5)
	f.Dec(2, 5) // matching release
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release must panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "lane 2") || !strings.Contains(msg, "sb5") {
			t.Errorf("panic %v must name the lane and scoreboard", r)
		}
	}()
	f.Dec(2, 5)
}

// TestSaturationDrainsConservatively: a saturated counter has absorbed
// (and lost) issues beyond the maximum, so it drains in exactly
// maxCount writebacks and any further writeback is an underflow. The
// conservative direction is that the consumer stays blocked until the
// counter is fully drained.
func TestSaturationDrainsConservatively(t *testing.T) {
	f := NewFile(8)
	m := bits.LaneMask(0)
	for i := 0; i < maxCount+10; i++ {
		f.Inc(m, 0)
	}
	for i := 0; i < maxCount; i++ {
		if f.Ready(m, 0) {
			t.Fatalf("ready after %d of %d releases", i, maxCount)
		}
		f.Dec(0, 0)
	}
	if !f.Ready(m, 0) {
		t.Fatal("drained counter must read ready")
	}
	// The 10 over-saturation issues were absorbed; their writebacks
	// would now underflow.
	defer func() {
		if recover() == nil {
			t.Error("release beyond the saturated count must panic")
		}
	}()
	f.Dec(0, 0)
}

// TestPerLaneIndependence: counters are replicated per thread — a
// writeback by one lane must not unblock any other lane (the property
// SI's per-subwarp scoreboard views rely on).
func TestPerLaneIndependence(t *testing.T) {
	f := NewFile(8)
	f.Inc(bits.FullMask, 1)
	f.Dec(3, 1)
	if !f.Ready(bits.LaneMask(3), 1) {
		t.Error("released lane must be ready")
	}
	if f.Ready(bits.LaneMask(4), 1) {
		t.Error("other lanes must stay blocked")
	}
	if f.Ready(bits.FullMask, 1) {
		t.Error("warp-wide view must stay blocked while any lane is outstanding")
	}
	if got := f.Count(bits.FullMask, 1); got != 31 {
		t.Errorf("warp-wide count = %d, want 31", got)
	}
}
