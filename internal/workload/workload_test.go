package workload

import (
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/stats"
)

func TestMicrobenchValidation(t *testing.T) {
	bad := []MicrobenchParams{
		{SubwarpSize: 3, Iterations: 1, AccessesPerSubwarp: 1, CaseInstrs: 64, NumWarps: 1, LineBytes: 128},
		{SubwarpSize: 64, Iterations: 1, AccessesPerSubwarp: 1, CaseInstrs: 64, NumWarps: 1, LineBytes: 128},
		{SubwarpSize: 8, Iterations: 0, AccessesPerSubwarp: 1, CaseInstrs: 64, NumWarps: 1, LineBytes: 128},
		{SubwarpSize: 8, Iterations: 1, AccessesPerSubwarp: 0, CaseInstrs: 64, NumWarps: 1, LineBytes: 128},
		{SubwarpSize: 8, Iterations: 1, AccessesPerSubwarp: 10, CaseInstrs: 8, NumWarps: 1, LineBytes: 128},
		{SubwarpSize: 8, Iterations: 1, AccessesPerSubwarp: 1, CaseInstrs: 64, NumWarps: 0, LineBytes: 128},
	}
	for i, p := range bad {
		if _, err := Microbench(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMicrobenchDivergenceFactors(t *testing.T) {
	for _, ss := range []int{32, 16, 8, 4, 2, 1} {
		p := DefaultMicrobench(ss)
		k, err := Microbench(p)
		if err != nil {
			t.Fatalf("ss=%d: %v", ss, err)
		}
		if err := k.Program.Validate(); err != nil {
			t.Fatalf("ss=%d: %v", ss, err)
		}
		want := 32 / ss
		if p.DivergenceFactor() != want {
			t.Errorf("ss=%d: DivergenceFactor = %d", ss, p.DivergenceFactor())
		}
	}
}

// microCfg keeps microbenchmark runs small and deterministic.
func microCfg() config.Config {
	cfg := config.Default()
	return cfg
}

func TestMicrobenchRunsAndDiverges(t *testing.T) {
	p := DefaultMicrobench(8) // 4 subwarps
	p.Iterations = 2
	k, err := Microbench(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpu.Run(microCfg(), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MaxLiveSubwarps != 4 {
		t.Errorf("MaxLiveSubwarps = %d, want 4", res.Counters.MaxLiveSubwarps)
	}
	if res.Counters.DivergentBranches == 0 {
		t.Error("microbenchmark must diverge")
	}
	// Every access is a compulsory miss by construction.
	if res.Counters.L1DMisses != res.Counters.L1DAccesses {
		t.Errorf("L1D hits on compulsory-miss benchmark: %d/%d",
			res.Counters.L1DMisses, res.Counters.L1DAccesses)
	}
	// Stalls dominate the baseline run and occur in divergent code.
	d := res.Derived()
	if d.ExposedStallFrac < 0.5 {
		t.Errorf("ExposedStallFrac = %.2f, want stall-dominated", d.ExposedStallFrac)
	}
	if res.Counters.ExposedLoadStallsDivergent*2 < res.Counters.ExposedLoadStalls {
		t.Error("microbenchmark stalls should be mostly divergent")
	}
}

func TestMicrobenchSISpeedupNearLinear(t *testing.T) {
	// The Table III shape at small divergence: near-2x at 2 subwarps.
	p := DefaultMicrobench(16)
	p.Iterations = 3
	base := microCfg()
	si := microCfg().WithSI(true, config.TriggerHalfStalled)
	mk := func() *gpu.Result { return nil }
	_ = mk
	kb, err := Microbench(p)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := gpu.Run(base, kb)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := Microbench(p)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := gpu.Run(si, ks)
	if err != nil {
		t.Fatal(err)
	}
	sp := 1 + stats.Speedup(rb.Counters, rs.Counters)
	if sp < 1.6 || sp > 2.2 {
		t.Errorf("2-way divergence speedup = %.2fx, want ~2x", sp)
	}
}

func TestAppProfilesComplete(t *testing.T) {
	apps := Apps()
	if len(apps) != 10 {
		t.Fatalf("Apps() = %d profiles, want 10 (Table II)", len(apps))
	}
	wantOrder := []string{"AV1", "AV2", "BFV1", "BFV2", "Coll1", "Coll2", "Ctrl", "DDGI", "MC", "MW"}
	for i, name := range AppNames() {
		if name != wantOrder[i] {
			t.Errorf("app %d = %s, want %s (paper order)", i, name, wantOrder[i])
		}
	}
	for _, a := range apps {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
		if a.Effect == "" || a.App == "" {
			t.Errorf("%s: missing Table II metadata", a.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("BFV1")
	if err != nil || p.Name != "BFV1" {
		t.Errorf("ProfileByName(BFV1) = %+v, %v", p.Name, err)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestMegakernelBuilds(t *testing.T) {
	for _, a := range Apps() {
		k, err := Megakernel(a)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if k.BVH == nil || k.RayGen == nil {
			t.Fatalf("%s: missing RT resources", a.Name)
		}
		if k.Program.RegsPerThread != a.RegsPerThread {
			t.Errorf("%s: regs = %d, want %d", a.Name, k.Program.RegsPerThread, a.RegsPerThread)
		}
	}
}

func TestMegakernelDeterministicBuild(t *testing.T) {
	p, _ := ProfileByName("AV1")
	k1, err := Megakernel(p)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Megakernel(p)
	if err != nil {
		t.Fatal(err)
	}
	if k1.Program.Len() != k2.Program.Len() {
		t.Fatal("program lengths differ")
	}
	for pc := range k1.Program.Code {
		if k1.Program.Code[pc] != k2.Program.Code[pc] {
			t.Fatalf("instruction %d differs between builds", pc)
		}
	}
}

func TestMegakernelRunsAndDiverges(t *testing.T) {
	p, _ := ProfileByName("Ctrl")
	p.NumWarps = 16 // keep the test fast
	p.Iterations = 2
	k, err := Megakernel(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := gpu.Run(config.Default(), k)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counters
	if c.DivergentBranches == 0 {
		t.Error("megakernel should diverge at shader dispatch")
	}
	if c.MaxLiveSubwarps < 2 {
		t.Errorf("MaxLiveSubwarps = %d", c.MaxLiveSubwarps)
	}
	if c.RTTraces == 0 {
		t.Error("megakernel should trace rays")
	}
	if c.ExposedLoadStalls == 0 || c.ExposedLoadStallsDivergent == 0 {
		t.Error("megakernel should expose both total and divergent stalls")
	}
	if c.Reconvergences == 0 {
		t.Error("shaders should reconverge at the barrier")
	}
}

func TestMegakernelFunctionalEquivalence(t *testing.T) {
	// Baseline and SI runs must produce identical radiance outputs.
	p, _ := ProfileByName("MC")
	p.NumWarps = 8
	p.Iterations = 2

	outputs := func(cfg config.Config) []uint32 {
		k, err := Megakernel(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gpu.Run(cfg, k); err != nil {
			t.Fatal(err)
		}
		var out []uint32
		for tid := 0; tid < p.NumWarps*32; tid++ {
			out = append(out, k.Memory.Load(uint64(0x0080_0000+tid*4)))
		}
		return out
	}
	base := outputs(config.Default())
	si := outputs(config.Default().WithSI(true, config.TriggerHalfStalled))
	for i := range base {
		if base[i] != si[i] {
			t.Fatalf("thread %d: baseline %#x != SI %#x", i, base[i], si[i])
		}
	}
	// The kernel must actually compute something.
	nonzero := 0
	for _, v := range base {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < len(base)/2 {
		t.Errorf("only %d/%d threads produced output", nonzero, len(base))
	}
}

func TestMegakernelSIHelps(t *testing.T) {
	// A divergent-stall-heavy profile must speed up under SI.
	p, _ := ProfileByName("BFV1")
	p.NumWarps = 32
	mkRun := func(cfg config.Config) stats.Counters {
		k, err := Megakernel(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gpu.Run(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters
	}
	base := mkRun(config.Default())
	si := mkRun(config.Default().WithSI(true, config.TriggerHalfStalled))
	sp := stats.Speedup(base, si)
	if sp <= 0 {
		t.Errorf("BFV1 SI speedup = %.3f, want positive", sp)
	}
	if si.SubwarpStalls == 0 || si.SubwarpSelects == 0 {
		t.Error("SI transitions should fire on a raytracing megakernel")
	}
}

func TestMegakernelValidation(t *testing.T) {
	p, _ := ProfileByName("AV1")
	p.Shaders = 0
	if _, err := Megakernel(p); err == nil {
		t.Error("zero shaders should fail")
	}
	p, _ = ProfileByName("AV1")
	p.ShaderLoads, p.ConvLoads = 0, 0
	if _, err := Megakernel(p); err == nil {
		t.Error("no memory ops should fail")
	}
	p, _ = ProfileByName("AV1")
	p.RegsPerThread = 8
	if _, err := Megakernel(p); err == nil {
		t.Error("tiny register count should fail")
	}
}

func TestMicrobenchProgramFootprint(t *testing.T) {
	// 32-way divergence must push the static footprint past the 16KB
	// L0I (the Table III taper); 16-way must fit.
	k32, err := Microbench(DefaultMicrobench(1))
	if err != nil {
		t.Fatal(err)
	}
	k16, err := Microbench(DefaultMicrobench(2))
	if err != nil {
		t.Fatal(err)
	}
	if fp := k32.Program.StaticFootprintBytes(8); fp <= 16<<10 {
		t.Errorf("32-way footprint = %d B, want > 16KB", fp)
	}
	if fp := k16.Program.StaticFootprintBytes(8); fp > 16<<10 {
		t.Errorf("16-way footprint = %d B, want <= 16KB", fp)
	}
}

func TestFig9DisassemblyShape(t *testing.T) {
	// The generated microbenchmark must carry scoreboard annotations on
	// loads and consumers, like Fig. 9.
	k, err := Microbench(DefaultMicrobench(16))
	if err != nil {
		t.Fatal(err)
	}
	var loads, reqs int
	for _, in := range k.Program.Code {
		if in.Op == isa.LDG {
			loads++
			if in.WrScbd == isa.NoScoreboard {
				t.Fatal("load without &wr")
			}
		}
		if in.ReqScbd != isa.NoScoreboard {
			reqs++
		}
	}
	if loads == 0 || reqs < loads {
		t.Errorf("loads = %d, reqs = %d", loads, reqs)
	}
}

// TestGeneratedProgramsReassemble: the disassembly of every generated
// kernel reassembles into an identical program — exercising the
// assembler over thousands of real instructions.
func TestGeneratedProgramsReassemble(t *testing.T) {
	var progs []*isa.Program
	for _, ss := range []int{16, 2} {
		k, err := Microbench(DefaultMicrobench(ss))
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, k.Program)
	}
	for _, name := range []string{"BFV1", "Coll1", "MC"} {
		p, err := ProfileByName(name)
		if err != nil {
			t.Fatal(err)
		}
		k, err := Megakernel(p)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, k.Program)
	}
	for _, p := range progs {
		again, err := isa.Assemble(p.Name, p.Disassemble())
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if again.Len() != p.Len() {
			t.Fatalf("%s: %d != %d instrs", p.Name, again.Len(), p.Len())
		}
		for pc := range p.Code {
			if again.Code[pc] != p.Code[pc] {
				t.Fatalf("%s pc %d: %v != %v", p.Name, pc, again.Code[pc], p.Code[pc])
			}
		}
	}
}

// TestDWSNeverBreaksFunctionality: the DWS model produces the same
// architectural outputs as baseline and SI.
func TestDWSNeverBreaksFunctionality(t *testing.T) {
	p, _ := ProfileByName("Ctrl")
	p.NumWarps = 8
	p.Iterations = 2
	outputs := func(cfg config.Config) []uint32 {
		k, err := Megakernel(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gpu.Run(cfg, k); err != nil {
			t.Fatal(err)
		}
		var out []uint32
		for tid := 0; tid < p.NumWarps*32; tid++ {
			out = append(out, k.Memory.Load(uint64(0x0080_0000+tid*4)))
		}
		return out
	}
	base := outputs(config.Default())
	dws := outputs(config.Default().WithDWS())
	for i := range base {
		if base[i] != dws[i] {
			t.Fatalf("thread %d: baseline %#x != DWS %#x", i, base[i], dws[i])
		}
	}
}
