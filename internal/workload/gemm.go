package workload

import (
	"fmt"

	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// GEMMParams configures the regular-compute family: a tiled GEMM-like
// kernel in which every warp walks a K-dimension tile loop, issuing
// one coalesced A-tile load (a distinct line per warp and step), one
// B-tile load shared by all warps at the same step (high L1D reuse,
// like a broadcast operand), and a block of independent FMAs that
// overlap the loads. All branch predicates are warp-uniform loop
// counters, so the kernel is divergence-free by construction — the
// control case where Subwarp Interleaving must be cycle-exactly
// transparent.
type GEMMParams struct {
	// NumWarps is the total warps launched.
	NumWarps int
	// TilesK is the K-dimension tile count (inner loop trips).
	TilesK int
	// MathOps is the number of independent FMAs issued per tile step
	// while the two tile loads are in flight.
	MathOps int
	// BufLog2 is log2 of each operand buffer's byte size; the default
	// 256 KB exceeds the 128 KB L1D so A-tile lines contend.
	BufLog2 int
	// LineBytes must match the simulated cache line size so one A-tile
	// load coalesces into exactly one line per warp.
	LineBytes int
}

// DefaultGEMM fills one wave of the default 64 warp slots with a
// 32-step tile loop.
func DefaultGEMM() GEMMParams {
	return GEMMParams{
		NumWarps:  64,
		TilesK:    32,
		MathOps:   6,
		BufLog2:   18,
		LineBytes: 128,
	}
}

// Validate reports the first invalid parameter.
func (p GEMMParams) Validate() error {
	switch {
	case p.NumWarps <= 0:
		return fmt.Errorf("workload: NumWarps must be positive")
	case p.TilesK <= 0:
		return fmt.Errorf("workload: TilesK must be positive")
	case p.MathOps < 0:
		return fmt.Errorf("workload: MathOps must be non-negative")
	case p.LineBytes <= 0 || p.LineBytes&(p.LineBytes-1) != 0:
		return fmt.Errorf("workload: LineBytes must be a positive power of two")
	case p.BufLog2 < 10 || p.BufLog2 > 28:
		return fmt.Errorf("workload: BufLog2 %d out of range [10,28]", p.BufLog2)
	case 1<<p.BufLog2 < 2*p.LineBytes:
		return fmt.Errorf("workload: operand buffer smaller than two lines")
	}
	return nil
}

// GEMM buffer bases, disjoint from the microbenchmark and megakernel
// address spaces.
const (
	gemmABase = 0x0200_0000
	gemmBBase = 0x0300_0000
	gemmCBase = 0x0400_0000
)

// GEMM assembles the tiled-GEMM-like kernel and seeds both operand
// buffers deterministically.
//
// Register map: R0 lane, R1 global tid, R2 k, R3 warp index, R4
// lane*4, R5 A address, R6 B address, R7 a, R8 b, R9 accumulator,
// R10/R11 scratch, R12 line-aligned buffer mask.
func GEMM(p GEMMParams) (*sm.Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	bufMask := int32((1<<p.BufLog2 - 1) &^ (p.LineBytes - 1))

	b := isa.NewBuilder("gemm")
	b.SetRegsPerThread(32)

	b.S2R(0, isa.SRLaneID)
	b.S2R(1, isa.SRThreadID)
	b.Shr(3, 1, 5) // warp index = tid >> 5
	b.Shl(4, 0, 2) // word offset within the tile line
	b.Movi(12, bufMask)
	b.Movi(2, 0) // k
	b.Movi(9, 0) // acc

	b.Label("ktile")
	// A tile: a distinct line per (warp, k) — streaming operand.
	b.Imuli(5, 3, int32(p.TilesK))
	b.Iadd(5, 5, 2)
	b.Imuli(5, 5, int32(p.LineBytes))
	b.Iand(5, 5, 12)
	b.Iadd(5, 5, 4)
	b.Iaddi(5, 5, gemmABase)
	b.Ldg(7, 5, 0, 0)
	// B tile: one line per k shared by every warp — broadcast operand.
	b.Imuli(6, 2, int32(p.LineBytes))
	b.Iand(6, 6, 12)
	b.Iadd(6, 6, 4)
	b.Iaddi(6, 6, gemmBBase)
	b.Ldg(8, 6, 0, 1)
	// Independent FMAs overlap the loads (register-tile arithmetic).
	for i := 0; i < p.MathOps; i++ {
		b.Ffma(10, 10, 10, 10)
	}
	// Consume: the load-to-use points for both scoreboards.
	b.Iadd(11, 7, 7).Req(0)
	b.Ffma(9, 7, 8, 9).Req(1)
	// Warp-uniform trip count: no divergence anywhere in the kernel.
	b.Iaddi(2, 2, 1)
	b.Isetpi(isa.CmpLT, 0, 2, int32(p.TilesK))
	b.BraP(0, false, "ktile")

	// C[tid] = acc.
	b.Shl(10, 1, 2)
	b.Iaddi(10, 10, gemmCBase)
	b.Stg(10, 0, 9)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	m := mem.NewMemory()
	seedBuffer(m, gemmABase, 1<<p.BufLog2, 0x9E37_79B1)
	seedBuffer(m, gemmBBase, 1<<p.BufLog2, 0x85EB_CA6B)
	return &sm.Kernel{
		Program:     prog,
		NumWarps:    p.NumWarps,
		WarpsPerCTA: 1,
		Memory:      m,
	}, nil
}

// seedBuffer fills a byte range with a deterministic word pattern so
// loaded values (and hence the memory fingerprint) depend on the
// access pattern, not just the store addresses.
func seedBuffer(m *mem.Memory, base uint64, bytes int, mult uint32) {
	for i := 0; i < bytes/4; i++ {
		m.Store(base+uint64(4*i), (uint32(i)+1)*mult)
	}
}

func init() {
	register(Generator{
		Name:  "gemm",
		Title: "regular compute: tiled GEMM-like loop, divergence-free",
		Build: func() (*sm.Kernel, error) { return GEMM(DefaultGEMM()) },
	})
}
