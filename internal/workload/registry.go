package workload

import (
	"fmt"
	"sort"
	"strings"

	"subwarpsim/internal/sm"
)

// Generator is one registered synthetic workload family: a named,
// parameterless kernel constructor. Families differ in control-flow
// shape (divergence-free compute, data-dependent traversal,
// mixed-latency graphics), which is exactly the axis the scheduler-
// policy and SI experiments sweep. Kernels carry mutable functional
// state, so Build returns a fresh kernel per call.
type Generator struct {
	// Name is the stable CLI/API identifier ("gemm", "bfs", "texture").
	Name string
	// Title is a one-line human description for usage text.
	Title string
	// Build constructs a fresh kernel with the family's default
	// parameters.
	Build func() (*sm.Kernel, error)
}

var generators = map[string]Generator{}

// register adds a generator family at package init.
func register(g Generator) {
	if g.Name == "" || g.Build == nil {
		panic("workload: generator needs a name and a builder")
	}
	if _, dup := generators[g.Name]; dup {
		panic("workload: duplicate generator " + g.Name)
	}
	generators[g.Name] = g
}

// Generators returns all registered families sorted by name.
func Generators() []Generator {
	out := make([]Generator, 0, len(generators))
	for _, g := range generators {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GeneratorNames returns the sorted registered family names, for
// dynamically enumerated CLI usage text.
func GeneratorNames() []string {
	names := make([]string, 0, len(generators))
	for name := range generators {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// GeneratorByName looks up a registered family. The error enumerates
// the registered names so CLI callers can surface them directly.
func GeneratorByName(name string) (Generator, error) {
	g, ok := generators[name]
	if !ok {
		return Generator{}, fmt.Errorf("unknown workload %q (registered: %s)",
			name, strings.Join(GeneratorNames(), ", "))
	}
	return g, nil
}

// BuildByName constructs a fresh kernel for the named family.
func BuildByName(name string) (*sm.Kernel, error) {
	g, err := GeneratorByName(name)
	if err != nil {
		return nil, err
	}
	return g.Build()
}
