package workload

import (
	"strings"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/gpu"
)

func TestGeneratorRegistry(t *testing.T) {
	names := GeneratorNames()
	want := []string{"bfs", "gemm", "texture"}
	if len(names) != len(want) {
		t.Fatalf("GeneratorNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("GeneratorNames = %v, want %v (sorted)", names, want)
		}
	}
	for _, g := range Generators() {
		if g.Title == "" {
			t.Errorf("%s: empty title", g.Name)
		}
		k, err := g.Build()
		if err != nil {
			t.Fatalf("%s: Build: %v", g.Name, err)
		}
		if err := k.Validate(); err != nil {
			t.Fatalf("%s: kernel invalid: %v", g.Name, err)
		}
		// Kernels carry mutable state; builds must not share memory.
		k2, _ := g.Build()
		if k2.Memory == k.Memory {
			t.Errorf("%s: Build reuses the functional memory", g.Name)
		}
	}
}

func TestBuildByNameUnknown(t *testing.T) {
	_, err := BuildByName("raytrace")
	if err == nil {
		t.Fatal("expected error for unknown workload")
	}
	// The error enumerates the registry so CLI callers can surface it.
	for _, name := range GeneratorNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestGeneratorParamValidation(t *testing.T) {
	bad := []func() error{
		func() error { p := DefaultGEMM(); p.NumWarps = 0; return p.Validate() },
		func() error { p := DefaultGEMM(); p.TilesK = 0; return p.Validate() },
		func() error { p := DefaultGEMM(); p.LineBytes = 96; return p.Validate() },
		func() error { p := DefaultGEMM(); p.BufLog2 = 5; return p.Validate() },
		func() error { p := DefaultBFS(); p.Nodes = 1000; return p.Validate() },
		func() error { p := DefaultBFS(); p.HeavyDegree = 0; return p.Validate() },
		func() error { p := DefaultBFS(); p.HeavyDegree = p.MaxDegree + 1; return p.Validate() },
		func() error { p := DefaultBFS(); p.Levels = 0; return p.Validate() },
		func() error { p := DefaultTexture(); p.Iterations = 0; return p.Validate() },
		func() error { p := DefaultTexture(); p.RowBytes = 100; return p.Validate() },
		func() error { p := DefaultTexture(); p.TexLog2 = 2; return p.Validate() },
		func() error { p := DefaultTexture(); p.RowBytes = 1 << 20; return p.Validate() },
	}
	for i, check := range bad {
		if check() == nil {
			t.Errorf("case %d: expected a validation error", i)
		}
	}
}

// TestGEMMDivergenceFree pins the family's defining property: no
// branch ever splinters a warp, so SI (which only acts on divergence
// and stall demotion of diverged warps) must be cycle-exact inert.
func TestGEMMDivergenceFree(t *testing.T) {
	p := DefaultGEMM()
	p.NumWarps = 16
	p.TilesK = 8
	mk := func() *gpu.Result {
		k, err := GEMM(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := gpu.Run(config.Default(), k)
		if err != nil {
			t.Fatal(err)
		}
		return &r
	}
	r := mk()
	if r.Counters.DivergentBranches != 0 {
		t.Errorf("GEMM diverged %d times, want 0", r.Counters.DivergentBranches)
	}
	if r.Counters.ExposedLoadStalls == 0 {
		t.Error("GEMM exposed no load stalls; tile loads are not stressing the memory path")
	}
}

// TestBFSStressesSI pins the family's defining property: data-
// dependent divergence whose arms carry independent load chains, so
// SI finds stall-demotion work (the mechanism the paper builds).
func TestBFSStressesSI(t *testing.T) {
	p := DefaultBFS()
	p.NumWarps = 16
	p.Levels = 2
	run := func(cfg config.Config) gpu.Result {
		k, err := BFS(p)
		if err != nil {
			t.Fatal(err)
		}
		r, err := gpu.Run(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(config.Default())
	si := run(config.Default().WithSI(false, config.TriggerHalfStalled))
	if base.Counters.DivergentBranches == 0 {
		t.Error("BFS did not diverge")
	}
	if si.Counters.SubwarpStalls == 0 {
		t.Error("SI found no subwarp-stall opportunities on BFS")
	}
	if si.Counters.SubwarpWakeups == 0 {
		t.Error("no subwarp wakeups: diverged arms carry no overlapping loads")
	}
}

// TestTextureMixedLatency pins the family's defining property: both
// the texture path and the regular load path are exercised, with mild
// content-dependent divergence.
func TestTextureMixedLatency(t *testing.T) {
	p := DefaultTexture()
	p.NumWarps = 16
	p.Iterations = 4
	k, err := Texture(p)
	if err != nil {
		t.Fatal(err)
	}
	r, err := gpu.Run(config.Default(), k)
	if err != nil {
		t.Fatal(err)
	}
	c := r.Counters
	if c.DivergentBranches == 0 {
		t.Error("texture alpha test never diverged")
	}
	if c.L1DAccesses == 0 {
		t.Error("no data-cache accesses")
	}
	// Every lane samples four corners per iteration over the texture
	// path plus one vertex fetch over the plain path; a missing class
	// would show up as an implausibly low access count.
	minLoads := int64(p.NumWarps) * 32 * int64(p.Iterations)
	if c.L1DAccesses < minLoads {
		t.Errorf("L1DAccesses = %d, want >= %d", c.L1DAccesses, minLoads)
	}
}
