package workload

import "fmt"

// Apps returns the ten raytracing application-trace profiles of
// Table II, in the paper's order.
//
// The paper's traces come from proprietary game captures; these
// profiles are synthetic stand-ins calibrated so that the *baseline
// characterisation* (Fig. 3: total exposed load-to-use stalls and their
// divergent share) matches each trace's reported shape. The SI speedups
// are then whatever the simulated mechanism produces:
//
//   - BFV1/BFV2 (reflections): most stalls in divergent shader code,
//     low occupancy — the traces SI helps most (~15-20%).
//   - Coll1/Coll2 (internal demos): heavily stalled but mostly in
//     convergent code — large stall counts, small SI gains.
//   - AV2 (ambient occlusion): traversal-heavy, light shading —
//     limited by the RT core (Amdahl), modest gains.
//   - The rest sit in between.
func Apps() []AppProfile {
	return []AppProfile{
		{
			Name: "AV1", App: "ArchViz Interior", Effect: "GI-D", Seed: 101,
			RegsPerThread: 64, NumWarps: 80,
			Iterations: 3, Shaders: 6,
			ShaderLoads: 1, ShaderMath: 16, ShaderTex: true, ShaderBufLog2: 12,
			ConvLoads: 2, ConvMath: 6, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     2400, SceneClusters: 6, MaterialSkew: 0.55,
		},
		{
			Name: "AV2", App: "ArchViz Interior", Effect: "AO", Seed: 102,
			RegsPerThread: 64, NumWarps: 96,
			Iterations: 4, Shaders: 4,
			ShaderLoads: 1, ShaderMath: 16, ShaderTex: false, ShaderBufLog2: 12,
			ConvLoads: 2, ConvMath: 10, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     3200, SceneClusters: 12, MaterialSkew: 0.4,
		},
		{
			Name: "BFV1", App: "Battlefield V scene 1", Effect: "R", Seed: 103,
			RegsPerThread: 72, NumWarps: 64,
			Iterations: 3, Shaders: 8,
			ShaderLoads: 3, ShaderMath: 12, ShaderTex: true, ShaderBufLog2: 14,
			ConvLoads: 0, ConvMath: 0, ConvBufLog2: 14,
			SceneTris: 2000, SceneClusters: 14, MaterialSkew: 0.35,
		},
		{
			Name: "BFV2", App: "Battlefield V scene 2", Effect: "R", Seed: 104,
			RegsPerThread: 88, NumWarps: 64,
			Iterations: 3, Shaders: 7,
			ShaderLoads: 3, ShaderMath: 16, ShaderTex: true, ShaderBufLog2: 14,
			ConvLoads: 0, ConvMath: 0, ConvBufLog2: 14,
			SceneTris: 1800, SceneClusters: 8, MaterialSkew: 0.3,
		},
		{
			Name: "Coll1", App: "RTX Collage", Effect: "AO", Seed: 105,
			RegsPerThread: 80, NumWarps: 80,
			Iterations: 3, Shaders: 4,
			ShaderLoads: 1, ShaderMath: 10, ShaderTex: false, ShaderBufLog2: 11,
			ConvLoads: 6, ConvMath: 2, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     1600, SceneClusters: 4, MaterialSkew: 0.6,
		},
		{
			Name: "Coll2", App: "RTX Collage", Effect: "R", Seed: 106,
			RegsPerThread: 80, NumWarps: 80,
			Iterations: 3, Shaders: 5,
			ShaderLoads: 1, ShaderMath: 16, ShaderTex: true, ShaderBufLog2: 11,
			ConvLoads: 6, ConvMath: 2, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     1600, SceneClusters: 4, MaterialSkew: 0.6,
		},
		{
			Name: "Ctrl", App: "Control", Effect: "M", Seed: 107,
			RegsPerThread: 72, NumWarps: 72,
			Iterations: 2, Shaders: 6,
			ShaderLoads: 1, ShaderMath: 20, ShaderTex: true, ShaderBufLog2: 13,
			ConvLoads: 2, ConvMath: 6, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     2600, SceneClusters: 6, MaterialSkew: 0.5,
		},
		{
			Name: "DDGI", App: "DDGI Villa", Effect: "GI-D", Seed: 108,
			RegsPerThread: 72, NumWarps: 80,
			Iterations: 4, Shaders: 5,
			ShaderLoads: 1, ShaderMath: 12, ShaderTex: false, ShaderBufLog2: 13,
			ConvLoads: 1, ConvMath: 6, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     2800, SceneClusters: 12, MaterialSkew: 0.3,
		},
		{
			Name: "MC", App: "Minecraft", Effect: "M", Seed: 109,
			RegsPerThread: 64, NumWarps: 96,
			Iterations: 3, Shaders: 4,
			ShaderLoads: 1, ShaderMath: 16, ShaderTex: false, ShaderBufLog2: 11,
			ConvLoads: 2, ConvMath: 8, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     1200, SceneClusters: 8, MaterialSkew: 0.6,
		},
		{
			Name: "MW", App: "Mechwarrior 5", Effect: "R", Seed: 110,
			RegsPerThread: 80, NumWarps: 72,
			Iterations: 3, Shaders: 6,
			ShaderLoads: 2, ShaderMath: 18, ShaderTex: true, ShaderBufLog2: 13,
			ConvLoads: 1, ConvMath: 4, ConvBufLog2: 20,
			ConvCoalesced: true,
			SceneTris:     2200, SceneClusters: 10, MaterialSkew: 0.4,
		},
	}
}

// AppNames returns the trace names in paper order.
func AppNames() []string {
	apps := Apps()
	names := make([]string, len(apps))
	for i, a := range apps {
		names[i] = a.Name
	}
	return names
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (AppProfile, error) {
	for _, a := range Apps() {
		if a.Name == name {
			return a, nil
		}
	}
	return AppProfile{}, fmt.Errorf("workload: unknown application trace %q", name)
}
