package workload

import (
	"fmt"
	"math/rand"

	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// TextureParams configures the graphics family: a shading-style kernel
// that mixes latency classes the way a pixel shader does. Each
// iteration every lane samples four bilinear-filter corners from a
// seeded texture over the slower texture path (TLD, scattered
// per-lane addresses), fetches warp-shared vertex constants over the
// fast path (coalesced LDG), blends the five values, and then runs an
// alpha-test branch — texel-content-dependent, so the warp splits
// mildly — around the extra shading math.
type TextureParams struct {
	// Seed drives the texture and vertex-buffer content.
	Seed int64
	// NumWarps is the total warps launched.
	NumWarps int
	// Iterations is the number of samples each lane shades.
	Iterations int
	// TexLog2 is log2 of the texture's byte size.
	TexLog2 int
	// RowBytes is the texture row pitch used for the v+1 corners.
	RowBytes int
	// MathOps is the shading arithmetic issued behind the alpha test.
	MathOps int
}

// DefaultTexture fills one wave of the default 64 warp slots shading
// eight samples against a 64 KB texture.
func DefaultTexture() TextureParams {
	return TextureParams{
		Seed:       11,
		NumWarps:   64,
		Iterations: 8,
		TexLog2:    16,
		RowBytes:   256,
		MathOps:    6,
	}
}

// Validate reports the first invalid parameter.
func (p TextureParams) Validate() error {
	switch {
	case p.NumWarps <= 0:
		return fmt.Errorf("workload: NumWarps must be positive")
	case p.Iterations <= 0:
		return fmt.Errorf("workload: Iterations must be positive")
	case p.TexLog2 < 10 || p.TexLog2 > 26:
		return fmt.Errorf("workload: TexLog2 %d out of range [10,26]", p.TexLog2)
	case p.RowBytes <= 0 || p.RowBytes&(p.RowBytes-1) != 0:
		return fmt.Errorf("workload: RowBytes must be a positive power of two")
	case p.RowBytes*2 >= 1<<(p.TexLog2-1):
		return fmt.Errorf("workload: RowBytes %d too large for texture", p.RowBytes)
	case p.MathOps < 0:
		return fmt.Errorf("workload: MathOps must be non-negative")
	}
	return nil
}

// Texture workload buffers, disjoint from the other workloads'
// address spaces.
const (
	texBase    = 0x0800_0000
	texVtxBase = 0x0900_0000
	texOutBase = 0x0A00_0000
	// texVtxBytes sizes the warp-shared vertex/constant buffer.
	texVtxBytes = 4096
)

// Texture assembles the shading kernel and seeds the texture and
// vertex buffers.
//
// Register map: R0 lane, R1 global tid, R2 iteration, R3 lane*4, R5
// sample address, R6 address scratch, R7-R10 bilinear corners, R11
// vertex fetch, R12 vertex-line mask, R13 sample mask, R14 scratch,
// R15 color accumulator.
func Texture(p TextureParams) (*sm.Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	// Samples stay in the texture's lower half so the +RowBytes+4
	// corner offsets never escape the buffer.
	sampleMask := int32((1<<(p.TexLog2-1) - 1) &^ 3)
	vtxMask := int32(texVtxBytes - 128)

	b := isa.NewBuilder("texture")
	b.SetRegsPerThread(40)

	b.S2R(0, isa.SRLaneID)
	b.S2R(1, isa.SRThreadID)
	b.Shl(3, 0, 2)
	b.Movi(13, sampleMask)
	b.Movi(12, vtxMask)
	b.Movi(2, 0) // iteration

	b.Label("sample")
	// Pseudo-random per-lane texel coordinate: scattered TLDs, the
	// texture path's extra latency on every corner.
	b.Imuli(5, 1, 48271)
	b.Imuli(6, 2, 12007)
	b.Iadd(5, 5, 6)
	b.Iand(5, 5, 13)
	b.Iaddi(5, 5, texBase)
	b.Tld(7, 5, 0, 0)
	b.Tld(8, 5, 4, 1)
	b.Tld(9, 5, int32(p.RowBytes), 2)
	b.Tld(10, 5, int32(p.RowBytes+4), 3)
	// Vertex/constant fetch: one warp-shared line per iteration over
	// the fast LDG path — the mixed-latency contrast.
	b.Imuli(6, 2, 128)
	b.Iand(6, 6, 12)
	b.Iadd(6, 6, 3)
	b.Iaddi(6, 6, texVtxBase)
	b.Ldg(11, 6, 0, 4)
	// Bilinear blend; each consume is a load-to-use point on its own
	// scoreboard.
	b.Iadd(14, 7, 7).Req(0)
	b.Fadd(7, 7, 8).Req(1)
	b.Iadd(14, 10, 10).Req(3)
	b.Fadd(9, 9, 10).Req(2)
	b.Fmul(7, 7, 9)
	b.Fadd(7, 7, 11).Req(4)
	b.Fadd(15, 15, 7)
	// Alpha test: shade only lanes whose blended sample has the sign
	// bit clear — texel-content-dependent warp splits.
	b.Bssy(0, "shaded")
	b.Isetpi(isa.CmpGT, 1, 7, 0)
	b.BraP(1, true, "shaded")
	b.Mufu(14, 7)
	for i := 0; i < p.MathOps; i++ {
		b.Ffma(14, 14, 14, 14)
	}
	b.Fadd(15, 15, 14)
	b.Label("shaded")
	b.Bsync(0)
	b.Iaddi(2, 2, 1)
	b.Isetpi(isa.CmpLT, 0, 2, int32(p.Iterations))
	b.BraP(0, false, "sample")

	// out[tid] = color.
	b.Shl(6, 1, 2)
	b.Iaddi(6, 6, texOutBase)
	b.Stg(6, 0, 15)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	m := mem.NewMemory()
	rng := rand.New(rand.NewSource(p.Seed))
	for i := 0; i < (1<<p.TexLog2)/4; i++ {
		m.Store(texBase+uint64(4*i), rng.Uint32())
	}
	for i := 0; i < texVtxBytes/4; i++ {
		m.Store(texVtxBase+uint64(4*i), rng.Uint32())
	}
	return &sm.Kernel{
		Program:     prog,
		NumWarps:    p.NumWarps,
		WarpsPerCTA: 1,
		Memory:      m,
	}, nil
}

func init() {
	register(Generator{
		Name:  "texture",
		Title: "graphics: bilinear texture sampling + mixed-latency loads, alpha-test divergence",
		Build: func() (*sm.Kernel, error) { return Texture(DefaultTexture()) },
	})
}
