package workload

import (
	"fmt"
	"math/rand"

	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// BFSParams configures the irregular-traversal family: a BFS-style
// frontier-expansion kernel over a seeded random graph in CSR-like
// form (a degree array plus a fixed-stride edge array). Each level,
// every lane claims a node, loads its degree, and branches three ways
// on it: zero-degree lanes skip straight to the reconvergence barrier
// (the frontier-empty boundary), low-degree lanes take a light
// expansion arm, high-degree lanes a heavy one. Both arms walk the
// adjacency row with serial load-to-use chains, so when one diverged
// subwarp stalls on a miss its siblings have independent memory work
// to interleave — the SI stress case — and per-lane trip counts
// splinter the warp further on every loop back-edge.
type BFSParams struct {
	// Seed drives the graph's degree and edge content.
	Seed int64
	// Nodes is the graph size; must be a power of two (node indices
	// are computed with a mask).
	Nodes int
	// MaxDegree bounds each node's adjacency-list length; the edge
	// array stride.
	MaxDegree int
	// HeavyDegree is the degree at or above which a lane takes the
	// heavy arm (full row walk) instead of the light one (every other
	// neighbor).
	HeavyDegree int
	// Levels is the number of frontier-expansion rounds.
	Levels int
	// NumWarps is the total warps launched.
	NumWarps int
}

// DefaultBFS fills one wave of the default 64 warp slots over a graph
// whose edge array (192 KB) exceeds the 128 KB L1D, keeping misses in
// steady state.
func DefaultBFS() BFSParams {
	return BFSParams{
		Seed:        7,
		Nodes:       4096,
		MaxDegree:   12,
		HeavyDegree: 7,
		Levels:      4,
		NumWarps:    64,
	}
}

// Validate reports the first invalid parameter.
func (p BFSParams) Validate() error {
	switch {
	case p.Nodes <= 0 || p.Nodes&(p.Nodes-1) != 0:
		return fmt.Errorf("workload: Nodes %d must be a positive power of two", p.Nodes)
	case p.MaxDegree <= 0:
		return fmt.Errorf("workload: MaxDegree must be positive")
	case p.HeavyDegree <= 0 || p.HeavyDegree > p.MaxDegree:
		return fmt.Errorf("workload: HeavyDegree %d must be in [1, MaxDegree]", p.HeavyDegree)
	case p.Levels <= 0:
		return fmt.Errorf("workload: Levels must be positive")
	case p.NumWarps <= 0:
		return fmt.Errorf("workload: NumWarps must be positive")
	}
	return nil
}

// BFS graph arrays, disjoint from the other workloads' address spaces.
const (
	bfsDegBase  = 0x0500_0000
	bfsEdgeBase = 0x0600_0000
	bfsOutBase  = 0x0700_0000
)

// BFS assembles the frontier-expansion kernel and seeds the graph.
//
// Register map: R0 lane, R1 global tid, R2 level, R3 node, R4 degree,
// R5 neighbor index, R6 address scratch, R7 loaded edge value, R8
// accumulator, R9 edge-row base, R10 node mask.
func BFS(p BFSParams) (*sm.Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	threads := int32(p.NumWarps * 32)

	b := isa.NewBuilder("bfs")
	b.SetRegsPerThread(32)

	b.S2R(0, isa.SRLaneID)
	b.S2R(1, isa.SRThreadID)
	b.Movi(10, int32(p.Nodes-1))
	b.Movi(2, 0) // level

	b.Label("level")
	// node = (tid + level*threads) & (Nodes-1): each level shifts the
	// frontier so lanes visit fresh nodes.
	b.Imuli(3, 2, threads)
	b.Iadd(3, 3, 1)
	b.Iand(3, 3, 10)
	// degree = deg[node]; per-lane scattered load.
	b.Shl(6, 3, 2)
	b.Iaddi(6, 6, bfsDegBase)
	b.Ldg(4, 6, 0, 0)
	b.Bssy(0, "join")
	// Frontier-empty boundary: lanes whose node has no neighbors skip
	// straight to the reconvergence barrier. The predicate consumes the
	// degree load, so this branch is also the first load-to-use point.
	b.Isetpi(isa.CmpGT, 1, 4, 0).Req(0)
	b.BraP(1, true, "join")
	// Expansion-arm split: heavy rows walk every neighbor, light rows
	// every other one. Each arm carries its own serial load-to-use
	// chain, so diverged sibling subwarps hold independent memory work
	// — what subwarp interleaving exists to overlap.
	b.Movi(5, 0)
	b.Imuli(9, 3, int32(4*p.MaxDegree))
	b.Iaddi(9, 9, bfsEdgeBase)
	b.Isetpi(isa.CmpGE, 2, 4, int32(p.HeavyDegree))
	b.BraP(2, false, "heavy")

	// Light arm: edge[node*MaxDegree + i], i += 2.
	b.Label("lightwalk")
	b.Shl(6, 5, 2)
	b.Iadd(6, 6, 9)
	b.Ldg(7, 6, 0, 1)
	b.Iadd(8, 8, 7).Req(1) // serial load-to-use chain
	b.Iaddi(5, 5, 2)
	// Per-lane trip count: lanes exhaust their rows at different i,
	// splitting the warp again on every back-edge.
	b.Isetp(isa.CmpLT, 2, 5, 4)
	b.BraP(2, false, "lightwalk")
	b.Bra("join")

	// Heavy arm: edge[node*MaxDegree + i], i += 1.
	b.Label("heavy")
	b.Shl(6, 5, 2)
	b.Iadd(6, 6, 9)
	b.Ldg(7, 6, 0, 2)
	b.Imul(8, 8, 7).Req(2) // serial load-to-use chain
	b.Iadd(8, 8, 7)
	b.Iaddi(5, 5, 1)
	b.Isetp(isa.CmpLT, 2, 5, 4)
	b.BraP(2, false, "heavy")

	b.Label("join")
	b.Bsync(0)
	b.Iaddi(2, 2, 1)
	b.Isetpi(isa.CmpLT, 0, 2, int32(p.Levels))
	b.BraP(0, false, "level")

	// out[tid] = acc.
	b.Shl(6, 1, 2)
	b.Iaddi(6, 6, bfsOutBase)
	b.Stg(6, 0, 8)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	m := mem.NewMemory()
	seedGraph(m, p)
	return &sm.Kernel{
		Program:     prog,
		NumWarps:    p.NumWarps,
		WarpsPerCTA: 1,
		Memory:      m,
	}, nil
}

// seedGraph writes the degree and edge arrays. Roughly a third of the
// nodes get degree zero so warps reliably hit the frontier-empty
// branch; the rest draw uniformly from [1, MaxDegree].
func seedGraph(m *mem.Memory, p BFSParams) {
	rng := rand.New(rand.NewSource(p.Seed))
	for node := 0; node < p.Nodes; node++ {
		// Roughly a third empty, the rest uniform over [1, MaxDegree]
		// so both expansion arms stay populated.
		deg := rng.Intn(p.MaxDegree+p.MaxDegree/2) + 1
		if deg > p.MaxDegree {
			deg = 0
		}
		m.Store(bfsDegBase+uint64(4*node), uint32(deg))
		for j := 0; j < p.MaxDegree; j++ {
			m.Store(bfsEdgeBase+uint64(4*(node*p.MaxDegree+j)), rng.Uint32())
		}
	}
}

func init() {
	register(Generator{
		Name:  "bfs",
		Title: "irregular traversal: BFS-style frontier expansion, data-dependent branching",
		Build: func() (*sm.Kernel, error) { return BFS(DefaultBFS()) },
	})
}
