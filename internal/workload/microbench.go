// Package workload generates the kernels the paper evaluates: the
// Fig. 11 CUDA microbenchmark that splinters a warp into a configurable
// number of subwarps with guaranteed exposed load-to-use stalls, and
// synthetic raytracing megakernels standing in for the ten game traces
// of Table II, with divergence driven by real BVH traversals.
package workload

import (
	"fmt"

	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// MicrobenchParams configures the Fig. 11 microbenchmark.
type MicrobenchParams struct {
	// SubwarpSize splits each warp into 32/SubwarpSize subwarps
	// (the paper sweeps 16, 8, 4, 2, 1 for divergence factors
	// 2, 4, 8, 16, 32). Must be a power of two in [1, 32].
	SubwarpSize int
	// Iterations is the ITERATIONS loop count.
	Iterations int
	// AccessesPerSubwarp is the serial loads each subwarp performs per
	// iteration (the gen_ld_to_use_stalls reduction length).
	AccessesPerSubwarp int
	// CaseInstrs pads each switch case to this many instructions,
	// setting the instruction footprint: 32 cases of 96 instructions at
	// 8 B each exceed a 16 KB L0, reproducing the paper's fetch-stall
	// taper at 32-way divergence, while 16 cases (12 KB) still fit.
	CaseInstrs int
	// NumWarps is the total warps launched (the paper's study isolates
	// one warp per processing block).
	NumWarps int
	// LineBytes must match the simulated cache line size; address
	// strides are chosen so every access is a compulsory miss.
	LineBytes int
}

// DefaultMicrobench returns the parameters used for the Table III
// reproduction at the given subwarp size.
func DefaultMicrobench(subwarpSize int) MicrobenchParams {
	return MicrobenchParams{
		SubwarpSize:        subwarpSize,
		Iterations:         64,
		AccessesPerSubwarp: 3,
		CaseInstrs:         84,
		NumWarps:           8, // one per processing block on the 2-SM default
		LineBytes:          128,
	}
}

// Validate reports the first invalid parameter.
func (p MicrobenchParams) Validate() error {
	switch {
	case p.SubwarpSize < 1 || p.SubwarpSize > 32 || 32%p.SubwarpSize != 0 ||
		p.SubwarpSize&(p.SubwarpSize-1) != 0:
		return fmt.Errorf("workload: SubwarpSize %d must be a power of two dividing 32", p.SubwarpSize)
	case p.Iterations <= 0:
		return fmt.Errorf("workload: Iterations must be positive")
	case p.AccessesPerSubwarp <= 0:
		return fmt.Errorf("workload: AccessesPerSubwarp must be positive")
	case p.CaseInstrs < 4*p.AccessesPerSubwarp+2:
		return fmt.Errorf("workload: CaseInstrs %d too small for %d accesses",
			p.CaseInstrs, p.AccessesPerSubwarp)
	case p.NumWarps <= 0:
		return fmt.Errorf("workload: NumWarps must be positive")
	case p.LineBytes <= 0:
		return fmt.Errorf("workload: LineBytes must be positive")
	}
	return nil
}

// DivergenceFactor returns 32/SubwarpSize, the number of subwarps each
// warp splinters into.
func (p MicrobenchParams) DivergenceFactor() int { return 32 / p.SubwarpSize }

// Microbench assembles the microbenchmark kernel.
//
// Register map: R0 lane, R1 global tid, R2 subwarpid, R3 lane-in-
// subwarp, R4 iteration, R5 BRX target, R6 per-iteration line index,
// R7 load address, R8 loaded value, R9 accumulator.
func Microbench(p MicrobenchParams) (*sm.Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ways := p.DivergenceFactor()
	log2ss := 0
	for 1<<log2ss != p.SubwarpSize {
		log2ss++
	}

	const dataBase = 0x0100_0000
	b := isa.NewBuilder(fmt.Sprintf("microbench-d%d", ways))
	b.SetRegsPerThread(32)

	b.S2R(0, isa.SRLaneID)
	b.S2R(1, isa.SRThreadID)
	b.Shr(2, 0, int32(log2ss)) // subwarpid = lane >> log2(ss)
	b.Movi(10, int32(p.SubwarpSize-1))
	b.Iand(3, 0, 10) // lane within subwarp
	b.Shl(3, 3, 2)   // *4: word offset within line
	b.Movi(4, 0)     // iteration

	b.Label("loop")
	// Distinct line per (warp, subwarp, iteration, access): compulsory
	// misses every iteration, as the CUDA benchmark guarantees.
	// lineIndex = ((tid>>5)*ways + subwarpid)*iters + iter
	b.Shr(6, 1, 5) // warp index = tid >> 5
	b.Imuli(6, 6, int32(ways))
	b.Iadd(6, 6, 2)
	b.Imuli(6, 6, int32(p.Iterations))
	b.Iadd(6, 6, 4)
	b.Imuli(6, 6, int32(p.AccessesPerSubwarp)) // first access's line
	// BRX target = caseBase + subwarpid*CaseInstrs.
	b.Bssy(0, "converge")
	b.Imuli(5, 2, int32(p.CaseInstrs))
	caseBase := b.PC() + 2
	b.Iaddi(5, 5, int32(caseBase))
	b.Brx(5)

	// One switch case per subwarp id; the bodies are identical code at
	// distinct addresses, like the inlined gen_ld_to_use_stalls calls.
	for way := 0; way < ways; way++ {
		start := b.PC()
		for a := 0; a < p.AccessesPerSubwarp; a++ {
			b.Iaddi(7, 6, int32(a))           // line index for access a
			b.Imuli(7, 7, int32(p.LineBytes)) // byte address of line
			b.Iadd(7, 7, 3)                   // + word offset
			b.Iaddi(7, 7, dataBase)
			sb := a % 6
			b.Ldg(8, 7, 0, sb)
			b.Iadd(9, 9, 8).Req(sb) // serial reduction: load-to-use
		}
		for b.PC()-start < p.CaseInstrs-1 {
			b.Fmul(11, 9, 9) // padding: sets the per-case I-footprint
		}
		b.Bra("converge")
		if got := b.PC() - start; got != p.CaseInstrs {
			return nil, fmt.Errorf("workload: case %d is %d instrs, want %d", way, got, p.CaseInstrs)
		}
	}

	b.Label("converge")
	b.Bsync(0) // __syncwarp()
	b.Iaddi(4, 4, 1)
	b.Isetpi(isa.CmpLT, 0, 4, int32(p.Iterations))
	b.BraP(0, false, "loop")
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &sm.Kernel{
		Program:     prog,
		NumWarps:    p.NumWarps,
		WarpsPerCTA: 1,
		Memory:      mem.NewMemory(),
	}, nil
}
