package workload

import (
	"fmt"

	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/scene"
	"subwarpsim/internal/sm"
)

// AppProfile parameterizes a synthetic raytracing megakernel standing
// in for one of the paper's application traces (Table II). The profile
// controls the knobs that determine the Fig. 3 characterisation —
// where load-to-use stalls occur (convergent prologue vs divergent
// shaders), how much math hides them, traversal weight, occupancy, and
// divergence shape — so the SI speedups *emerge* from the mechanism.
type AppProfile struct {
	Name   string // trace name, e.g. "BFV1"
	App    string // application, e.g. "Battlefield V scene 1"
	Effect string // RT effect: GI-D, AO, R, M

	Seed int64

	// Occupancy.
	RegsPerThread int // kernel register footprint (max across shaders)
	NumWarps      int // warps launched (waves over resident slots)

	// Megakernel structure.
	Iterations int // TraceRay rounds per thread (bounces)
	Shaders    int // distinct hit shaders (materials)

	// Divergent-region memory behaviour (inside hit shaders).
	ShaderLoads   int  // loads per hit shader
	ShaderMath    int  // independent math ops between each load and use
	ShaderTex     bool // alternate loads onto the texture path
	ShaderBufLog2 int  // per-shader buffer size (log2 bytes): smaller = more L1D reuse

	// Convergent-region memory behaviour (megakernel prologue).
	ConvLoads     int // loads before shader dispatch
	ConvMath      int // math ops between each convergent load and use
	ConvBufLog2   int
	ConvCoalesced bool // warp-coherent conv addresses (G-buffer style):
	//  32 lanes share a line, so conv misses do not evict shader data

	// Scene / divergence shape.
	SceneTris     int
	SceneClusters int
	MaterialSkew  float64
}

// Validate reports the first invalid profile field.
func (p AppProfile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile missing name")
	case p.RegsPerThread < 16 || p.RegsPerThread > 255:
		return fmt.Errorf("workload: %s RegsPerThread %d out of range", p.Name, p.RegsPerThread)
	case p.NumWarps <= 0:
		return fmt.Errorf("workload: %s NumWarps must be positive", p.Name)
	case p.Iterations <= 0:
		return fmt.Errorf("workload: %s Iterations must be positive", p.Name)
	case p.Shaders < 1 || p.Shaders > 30:
		return fmt.Errorf("workload: %s Shaders %d out of range", p.Name, p.Shaders)
	case p.ShaderLoads < 0 || p.ConvLoads < 0:
		return fmt.Errorf("workload: %s negative load counts", p.Name)
	case p.ShaderLoads+p.ConvLoads == 0:
		return fmt.Errorf("workload: %s has no memory operations", p.Name)
	case p.ShaderBufLog2 < 7 || p.ShaderBufLog2 > 30:
		return fmt.Errorf("workload: %s ShaderBufLog2 %d out of range", p.Name, p.ShaderBufLog2)
	case p.ConvBufLog2 < 7 || p.ConvBufLog2 > 30:
		return fmt.Errorf("workload: %s ConvBufLog2 %d out of range", p.Name, p.ConvBufLog2)
	case p.SceneTris <= 0 || p.SceneClusters <= 0:
		return fmt.Errorf("workload: %s scene parameters must be positive", p.Name)
	}
	return nil
}

// Buffer base addresses; shader i's buffer starts at shaderBase(i).
const (
	convBufBase   = 0x0200_0000
	shaderBufBase = 0x1000_0000
	shaderBufStep = 0x0100_0000
	addrHashPrime = -1640531527 // 2654435761 as int32 // Knuth multiplicative hash: scatters lanes
)

// Megakernel assembles the raytracing megakernel for a profile,
// generating its scene, BVH and camera.
//
// The kernel follows the structure of Figs. 1 and 5: each iteration
// casts a ray asynchronously via TRACE, performs convergent G-buffer
// style loads that overlap the traversal, consumes the hit record
// (exposing traversal latency, the paper's Amdahl limiter), then
// dispatches per-thread hit/miss shaders through an indirect branch
// under a convergence barrier. Hit shaders perform scattered
// load-to-use chains — the divergent stalls SI targets.
//
// Register map: R0 lane, R1 tid, R2 iter, R3 ray id, R4 hit record,
// R5 BRX target, R6 addr scratch, R7 value, R8 accumulator,
// R9 hash(tid), R10 mask scratch, R12 hash(warp), R13 lane*4.
func Megakernel(p AppProfile) (*sm.Kernel, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}

	sc, err := scene.Generate(scene.Params{
		Seed:         p.Seed,
		Triangles:    p.SceneTris,
		Materials:    p.Shaders,
		Clusters:     p.SceneClusters,
		Extent:       60,
		MaterialSkew: p.MaterialSkew,
	})
	if err != nil {
		return nil, err
	}
	totalThreads := p.NumWarps * 32
	camW := 32
	camH := (totalThreads + camW - 1) / camW
	cam := scene.NewCamera(sc.BVH.Bounds(), camW, camH)

	b := isa.NewBuilder(p.Name)
	b.SetRegsPerThread(p.RegsPerThread)

	b.S2R(0, isa.SRLaneID)
	b.S2R(1, isa.SRThreadID)
	b.Imuli(9, 1, addrHashPrime) // per-thread address scatter base
	b.Shr(12, 1, 5)
	b.Imuli(12, 12, addrHashPrime) // per-warp (coalesced) scatter base
	b.Shl(13, 0, 2)                // lane*4: word offset within a line
	b.Movi(2, 0)                   // iteration

	b.Label("loop")
	// ray id = tid + iter*totalThreads (iter > 0 gives bounce rays).
	b.Imuli(3, 2, int32(totalThreads))
	b.Iadd(3, 3, 1)
	b.Trace(4, 3, 0) // TRACE R4 <- ray R3, &wr=sb0

	// Convergent prologue loads (G-buffer/material fetches) overlap the
	// in-flight traversal.
	for j := 0; j < p.ConvLoads; j++ {
		sb := 1 + j%5
		emitScatterLoad(b, convBufBase, p.ConvBufLog2, int32(j), sb, false, p.ConvCoalesced)
		for m := 0; m < p.ConvMath; m++ {
			b.Ffma(8, 8, 8, 8)
		}
		b.Iadd(8, 8, 7).Req(sb) // load-to-use in convergent code
	}

	// Consume the traversal result: the warp stalls here when traversal
	// latency exceeds the prologue (the RT-core Amdahl limiter).
	b.Iadd(8, 8, 4).Req(0)

	// Divergent shader dispatch: target = shaderTable[hit record]. The
	// shader table is line-aligned and each slot is a fixed multiple of the
	// instruction-cache line, so in-shader line breaks land identically
	// in every shader.
	b.Bssy(0, "reconverge")
	shaderLen := measureShaderLen(p)
	b.Imuli(5, 4, int32(shaderLen))
	dispatchBase := alignUp(b.PC()+2, instrsPerLine)
	b.Iaddi(5, 5, int32(dispatchBase))
	b.Brx(5)
	for b.PC() < dispatchBase {
		b.Nop()
	}

	// Shader 0: the miss shader (hit record 0) - cheap, a couple of
	// environment-map style ops. Shaders 1..M: hit shaders with
	// scattered load-to-use chains whose executed path hops across
	// cache lines (emitHitShader), giving the compact synthetic shaders
	// the sparse instruction footprint of real branchy raytracing
	// shaders — the footprint the paper's instruction-cache studies
	// hinge on (Section V-C4 and the Table III taper).
	for s := 0; s <= p.Shaders; s++ {
		start := b.PC()
		if s == 0 {
			b.Fmul(8, 8, 8)
			b.Fadd(8, 8, 7)
			b.Bra("reconverge")
		} else {
			emitHitShader(b, p, s, "reconverge")
		}
		if got := b.PC() - start; got > shaderLen {
			return nil, fmt.Errorf("workload: %s shader %d is %d instrs, budget %d",
				p.Name, s, got, shaderLen)
		}
		for b.PC()-start < shaderLen {
			b.Nop()
		}
	}

	b.Label("reconverge")
	b.Bsync(0)
	b.Iaddi(2, 2, 1)
	b.Isetpi(isa.CmpLT, 0, 2, int32(p.Iterations))
	b.BraP(0, false, "loop")

	// Write the accumulated radiance so the kernel has an architectural
	// result (and functional-equivalence tests have bits to compare).
	b.Shl(6, 1, 2)
	b.Movi(10, 0x0080_0000)
	b.Iadd(6, 6, 10)
	b.Stg(6, 0, 8)
	b.Exit()

	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &sm.Kernel{
		Program:     prog,
		NumWarps:    p.NumWarps,
		WarpsPerCTA: 4,
		Memory:      mem.NewMemory(),
		BVH:         sc.BVH,
		RayGen:      sc.RayGen(cam),
	}, nil
}

// emitScatterLoad emits address computation plus a load into R7 from a
// buffer of 2^bufLog2 bytes: addr = base + ((hash + iter*8192 +
// idx*128) & mask) (+ lane*4 when coalesced).
//
// Scattered (per-thread hash) addresses model raytracing's incoherent
// shading access: every lane touches its own line. Coalesced (per-warp
// hash) addresses model coherent G-buffer/constant fetches: the warp
// shares one or two lines, so such loads can miss without flooding the
// L1D with per-lane fills.
func emitScatterLoad(b *isa.Builder, base int32, bufLog2 int, idx int32, sb int, tex, coalesced bool) {
	hashReg := uint8(9)
	if coalesced {
		hashReg = 12
	}
	b.Iaddi(6, hashReg, idx*128) // hash + idx*128
	b.Imuli(10, 2, 8192)         // iter stride
	b.Iadd(6, 6, 10)
	b.Movi(10, int32(1<<bufLog2-1)&^127) // line-aligned mask
	b.Iand(6, 6, 10)
	if coalesced {
		b.Iadd(6, 6, 13) // + lane*4
	} else {
		b.Nop() // keep shader bodies length-uniform across modes
	}
	b.Iaddi(6, 6, base)
	if tex {
		b.Tld(7, 6, 0, sb)
	} else {
		b.Ldg(7, 6, 0, sb)
	}
}

// instrsPerLine is the number of 8-byte instructions per 128-byte
// instruction cache line; shader layout aligns to it.
const instrsPerLine = 16

// mathGroup is how many filler math ops run between line breaks; small
// groups keep line utilization sparse, as branchy shader code is.
const mathGroup = 3

func alignUp(v, to int) int {
	if rem := v % to; rem != 0 {
		v += to - rem
	}
	return v
}

// lineBreak ends the current basic block: a branch to a fresh label
// placed at the next instruction-cache-line boundary, with a dead NOP
// gap in between. The gap is never fetched or executed; it only
// spreads the executed path across lines.
func lineBreak(b *isa.Builder, tag string) {
	b.Bra(tag)
	for b.PC()%instrsPerLine != 0 {
		b.Nop()
	}
	b.Label(tag)
}

// emitHitShader emits hit shader s: ShaderLoads scattered load-to-use
// chains, each interleaved with filler math split into line-hopping
// groups, ending with a branch to the reconvergence point.
func emitHitShader(b *isa.Builder, p AppProfile, s int, reconv string) {
	base := int32(shaderBufBase + s*shaderBufStep)
	for l := 0; l < p.ShaderLoads; l++ {
		sb := 1 + (l+s)%5
		tex := p.ShaderTex && l%2 == 1
		emitScatterLoad(b, base, p.ShaderBufLog2, int32(l), sb, tex, false)
		emitted := 0
		for group := 0; emitted < p.ShaderMath; group++ {
			n := p.ShaderMath - emitted
			if n > mathGroup {
				n = mathGroup
			}
			for m := 0; m < n; m++ {
				b.Ffma(8, 8, 8, 8)
			}
			emitted += n
			if emitted < p.ShaderMath {
				lineBreak(b, fmt.Sprintf("s%d_l%d_g%d", s, l, group))
			}
		}
		b.Iadd(8, 8, 7).Req(sb) // divergent load-to-use
		if l < p.ShaderLoads-1 {
			lineBreak(b, fmt.Sprintf("s%d_c%d", s, l+1))
		}
	}
	b.Bra(reconv)
}

// measureShaderLen lays a hit shader out in a scratch builder (starting
// line-aligned, exactly as the real table slots do) and returns its
// slot size rounded up to whole cache lines.
func measureShaderLen(p AppProfile) int {
	scratch := isa.NewBuilder("measure")
	emitHitShader(scratch, p, 1, "m_reconv")
	n := scratch.PC()
	if n < 3 {
		n = 3 // miss shader: 2 ops + BRA
	}
	return alignUp(n, instrsPerLine)
}
