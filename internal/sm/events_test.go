package sm

import (
	"container/heap"
	"math/rand"
	"testing"
)

// refHeap is the container/heap implementation eventQueue replaced,
// kept here as the ordering oracle: pop order — including among events
// with equal due times — must stay bit-identical, because same-cycle
// writebacks apply in pop order.
type refHeap []wbEvent

func (h refHeap) Len() int           { return len(h) }
func (h refHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h refHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)        { *h = append(*h, x.(wbEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// TestEventQueueMatchesContainerHeap drives eventQueue and
// container/heap through identical interleaved push/pop sequences with
// heavy due-time ties (lane distinguishes tied events) and requires
// every popped event to match exactly.
func TestEventQueueMatchesContainerHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		var ref refHeap
		lane := 0
		for op := 0; op < 400; op++ {
			if len(ref) == 0 || rng.Intn(3) != 0 {
				// Small time range forces many ties.
				ev := wbEvent{
					at:   int64(rng.Intn(8)),
					lane: lane % 32,
					reg:  uint8(lane % 200),
					sbid: int8(lane % 8),
				}
				lane++
				q.push(ev)
				heap.Push(&ref, ev)
			} else {
				got := q.pop()
				want := heap.Pop(&ref).(wbEvent)
				if got != want {
					t.Fatalf("trial %d op %d: pop mismatch:\n  got  %+v\n  want %+v",
						trial, op, got, want)
				}
			}
			if len(q) != len(ref) {
				t.Fatalf("trial %d op %d: length mismatch %d vs %d", trial, op, len(q), len(ref))
			}
		}
		for len(ref) > 0 {
			got := q.pop()
			want := heap.Pop(&ref).(wbEvent)
			if got != want {
				t.Fatalf("trial %d drain: pop mismatch:\n  got  %+v\n  want %+v", trial, got, want)
			}
		}
	}
}

// TestEventQueuePopOrderSorted checks the basic min-heap property on
// its own: pops come out in non-decreasing due time.
func TestEventQueuePopOrderSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var q eventQueue
	for i := 0; i < 1000; i++ {
		q.push(wbEvent{at: int64(rng.Intn(100))})
	}
	last := int64(-1)
	for len(q) > 0 {
		ev := q.pop()
		if ev.at < last {
			t.Fatalf("pop went backwards: %d after %d", ev.at, last)
		}
		last = ev.at
	}
}
