package sm

import (
	"strings"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/stats"
)

// testConfig returns a deterministic single-block configuration with
// free instruction fetch, so timing assertions see only the mechanisms
// under test.
func testConfig() config.Config {
	cfg := config.Default()
	cfg.NumSMs = 1
	cfg.BlocksPerSM = 1
	cfg.L0MissPenalty = 0
	cfg.L1IMissPenalty = 0
	cfg.L1DataHitLatency = 1
	cfg.TexExtraLatency = 0
	return cfg
}

// run launches numWarps warps of prog on a fresh single SM.
func run(t *testing.T, cfg config.Config, prog *isa.Program, numWarps int) (stats.Counters, *SM) {
	t.Helper()
	k := &Kernel{Program: prog, NumWarps: numWarps, WarpsPerCTA: numWarps, Memory: mem.NewMemory()}
	s, err := NewSM(0, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < numWarps; i++ {
		s.Admit(i, i, 0, i)
	}
	c, err := s.Run(50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

// straightLine is a divergence-free all-math kernel.
func straightLine(n int) *isa.Program {
	b := isa.NewBuilder("straight")
	b.S2R(0, isa.SRLaneID)
	for i := 0; i < n; i++ {
		b.Iaddi(1, 0, int32(i))
	}
	return b.Exit().MustBuild()
}

func TestStraightLineIssuesEveryCycle(t *testing.T) {
	c, _ := run(t, testConfig(), straightLine(100), 1)
	if c.IssuedInstrs != 102 {
		t.Errorf("IssuedInstrs = %d, want 102", c.IssuedInstrs)
	}
	// One instruction per cycle plus trivial overhead.
	if c.Cycles < 102 || c.Cycles > 110 {
		t.Errorf("Cycles = %d, want ~102", c.Cycles)
	}
	if c.ExposedLoadStalls != 0 {
		t.Errorf("ExposedLoadStalls = %d on a mathonly kernel", c.ExposedLoadStalls)
	}
	if c.DivergentBranches != 0 {
		t.Errorf("DivergentBranches = %d", c.DivergentBranches)
	}
	// All 32 threads participate in every instruction.
	if c.ActiveThreads != c.IssuedInstrs*32 {
		t.Errorf("ActiveThreads = %d, want %d", c.ActiveThreads, c.IssuedInstrs*32)
	}
}

// loadUse builds: compute per-lane address, load, consume, store, exit.
func loadUse(base int32) *isa.Program {
	b := isa.NewBuilder("loaduse")
	b.S2R(0, isa.SRLaneID)
	b.Shl(1, 0, 7)         // lane * 128: one line per lane
	b.Iaddi(1, 1, base)    // R1 = base + lane*128
	b.Ldg(2, 1, 0, 0)      // LDG R2, [R1] &wr=sb0
	b.Iadd(3, 2, 0).Req(0) // load-to-use
	return b.Exit().MustBuild()
}

func TestLoadToUseStallTiming(t *testing.T) {
	cfg := testConfig()
	c, _ := run(t, cfg, loadUse(0x10000), 1)
	// The warp waits the full L1 miss latency exactly once.
	if c.Cycles < int64(cfg.L1MissLatency) || c.Cycles > int64(cfg.L1MissLatency)+50 {
		t.Errorf("Cycles = %d, want ≈ %d", c.Cycles, cfg.L1MissLatency)
	}
	if c.ExposedLoadStalls < int64(cfg.L1MissLatency)-50 {
		t.Errorf("ExposedLoadStalls = %d, want ≈ %d", c.ExposedLoadStalls, cfg.L1MissLatency)
	}
	// The kernel is convergent: no divergent stalls.
	if c.ExposedLoadStallsDivergent != 0 {
		t.Errorf("divergent stalls = %d on convergent kernel", c.ExposedLoadStallsDivergent)
	}
	if c.L1DMisses != 32 {
		t.Errorf("L1DMisses = %d, want 32 (one line per lane)", c.L1DMisses)
	}
}

func TestMultipleWarpsHideLatency(t *testing.T) {
	// With 8 warps, issue from other warps overlaps each warp's stall:
	// total exposed stalls shrink relative to serial execution.
	cfg := testConfig()
	prog := loadUse(0x10000)
	c1, _ := run(t, cfg, prog, 1)
	c8, _ := run(t, cfg, prog, 8)
	if c8.Cycles > c1.Cycles+100 {
		t.Errorf("8 warps (%d cyc) should not be much slower than 1 (%d cyc): stalls overlap",
			c8.Cycles, c1.Cycles)
	}
	if c8.IssuedInstrs != 8*c1.IssuedInstrs {
		t.Errorf("IssuedInstrs = %d, want %d", c8.IssuedInstrs, 8*c1.IssuedInstrs)
	}
}

func TestLoadValueArrives(t *testing.T) {
	// Functional check: store a known value, load it back, store the
	// doubled result; verify memory.
	b := isa.NewBuilder("roundtrip")
	b.S2R(0, isa.SRLaneID)
	b.Shl(1, 0, 2) // lane*4
	b.Movi(2, 0x1000)
	b.Iadd(1, 1, 2)        // in addr = 0x1000 + lane*4
	b.Ldg(3, 1, 0, 0)      // load
	b.Iadd(3, 3, 3).Req(0) // double it
	b.Iaddi(4, 1, 0x1000)  // out addr = 0x2000 + lane*4
	b.Stg(4, 0, 3)
	prog := b.Exit().MustBuild()

	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	for lane := 0; lane < 32; lane++ {
		k.Memory.Store(uint64(0x1000+lane*4), uint32(100+lane))
	}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	if _, err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 32; lane++ {
		want := uint32(2 * (100 + lane))
		if got := k.Memory.Load(uint64(0x2000 + lane*4)); got != want {
			t.Errorf("lane %d: out = %d, want %d", lane, got, want)
		}
	}
}

// divergentIfElse builds the Fig. 9 pattern: half the warp loads from
// one buffer, half from another, with a load-to-use stall on each path.
func divergentIfElse(lat bool) *isa.Program {
	b := isa.NewBuilder("fig9like")
	b.S2R(0, isa.SRLaneID)
	b.Shl(1, 0, 7) // lane*128
	b.Isetpi(isa.CmpLT, 0, 0, 16)
	b.Bssy(0, "sync")
	b.BraP(0, false, "then")
	// else path (lanes 16..31)
	b.Iaddi(2, 1, 0x40000)
	b.Ldg(3, 2, 0, 1)
	b.Iadd(3, 3, 3).Req(1)
	b.Bra("sync")
	b.Label("then") // lanes 0..15
	b.Iaddi(2, 1, 0x10000)
	b.Ldg(3, 2, 0, 0)
	b.Iadd(3, 3, 3).Req(0)
	b.Bra("sync")
	b.Label("sync")
	b.Bsync(0)
	return b.Exit().MustBuild()
}

func TestBaselineSerializesDivergentStalls(t *testing.T) {
	cfg := testConfig()
	c, _ := run(t, cfg, divergentIfElse(true), 1)
	// Two serialized load-to-use stalls: ~2x miss latency.
	min := int64(2 * cfg.L1MissLatency)
	if c.Cycles < min || c.Cycles > min+100 {
		t.Errorf("baseline Cycles = %d, want ≈ %d (serialized subwarps)", c.Cycles, min)
	}
	if c.DivergentBranches != 1 {
		t.Errorf("DivergentBranches = %d, want 1", c.DivergentBranches)
	}
	if c.Reconvergences != 1 {
		t.Errorf("Reconvergences = %d, want 1", c.Reconvergences)
	}
	// Both stalls happen while the warp is diverged.
	if c.ExposedLoadStallsDivergent < min-100 {
		t.Errorf("divergent stalls = %d, want ≈ %d", c.ExposedLoadStallsDivergent, min)
	}
}

func TestSubwarpInterleavingOverlapsStalls(t *testing.T) {
	// The headline mechanism (Fig. 2): with SI, the two subwarps' loads
	// overlap in time and the warp finishes in ~1x the miss latency.
	cfg := testConfig().WithSI(false, config.TriggerAllStalled)
	c, _ := run(t, cfg, divergentIfElse(true), 1)
	max := int64(cfg.L1MissLatency) + 150
	if c.Cycles > max {
		t.Errorf("SI Cycles = %d, want < %d (overlapped subwarps)", c.Cycles, max)
	}
	if c.SubwarpStalls == 0 {
		t.Error("no subwarp-stall transitions recorded")
	}
	if c.SubwarpSelects == 0 {
		t.Error("no subwarp-select transitions recorded")
	}
	if c.SubwarpWakeups == 0 {
		t.Error("no subwarp-wakeup transitions recorded")
	}
}

func TestSISpeedupOnFig9(t *testing.T) {
	base, _ := run(t, testConfig(), divergentIfElse(true), 1)
	si, _ := run(t, testConfig().WithSI(false, config.TriggerAllStalled), divergentIfElse(true), 1)
	sp := stats.Speedup(base, si)
	if sp < 0.6 {
		t.Errorf("SI speedup on 2-way divergent loads = %.2f, want near 1.0 (2x)", sp)
	}
}

func TestSIWithYieldAtLeastAsGoodOnIndependentLoads(t *testing.T) {
	sos, _ := run(t, testConfig().WithSI(false, config.TriggerAnyStalled), divergentIfElse(true), 1)
	both, _ := run(t, testConfig().WithSI(true, config.TriggerAnyStalled), divergentIfElse(true), 1)
	// Yield issues the second subwarp's load before the first stalls;
	// with math between load and use, yield should not be slower by
	// more than the extra switch overheads.
	if both.Cycles > sos.Cycles+100 {
		t.Errorf("Both = %d cycles, SOS = %d", both.Cycles, sos.Cycles)
	}
	if both.SubwarpYields == 0 {
		t.Error("yield mode recorded no subwarp-yield transitions")
	}
}

// brxKernel dispatches lanes to `ways` distinct shader bodies through
// an indirect branch, each body loading from its own buffer.
func brxKernel(ways int) *isa.Program {
	b := isa.NewBuilder("brx")
	b.S2R(0, isa.SRLaneID)
	b.Shl(1, 0, 7)
	// target = shaderBase + (lane % ways) * shaderLen
	b.Movi(2, int32(ways-1))
	b.Iand(3, 0, 2) // lane % ways (ways must be a power of two)
	b.Bssy(0, "sync")
	// compute target PC: after this prologue the shaders are laid out
	// consecutively, each shaderLen instructions.
	const shaderLen = 5
	b.Imuli(4, 3, shaderLen)
	shaderBase := b.PC() + 2 // after the IADDI and BRX below
	b.Iaddi(4, 4, int32(shaderBase))
	b.Brx(4)
	for wy := 0; wy < ways; wy++ {
		b.Iaddi(5, 1, int32(0x10000*(wy+1))) // per-shader buffer
		b.Ldg(6, 5, 0, wy%8)
		b.Iadd(6, 6, 6).Req(wy % 8)
		b.Bra("sync")
		b.Nop() // pad to shaderLen
	}
	b.Label("sync")
	b.Bsync(0)
	return b.Exit().MustBuild()
}

func TestBRXMultiWayDivergence(t *testing.T) {
	for _, ways := range []int{2, 4, 8} {
		c, _ := run(t, testConfig(), brxKernel(ways), 1)
		if c.DivergentBranches != 1 {
			t.Errorf("ways=%d: DivergentBranches = %d, want 1", ways, c.DivergentBranches)
		}
		if c.MaxLiveSubwarps != int64(ways) {
			t.Errorf("ways=%d: MaxLiveSubwarps = %d", ways, c.MaxLiveSubwarps)
		}
		if c.Reconvergences != 1 {
			t.Errorf("ways=%d: Reconvergences = %d, want 1", ways, c.Reconvergences)
		}
	}
}

func TestSIScalesWithDivergenceWays(t *testing.T) {
	// More independent subwarps -> more overlap -> larger SI speedup.
	cfg := testConfig()
	si := testConfig().WithSI(false, config.TriggerAllStalled)
	var prev float64 = -1
	for _, ways := range []int{2, 4, 8} {
		base, _ := run(t, cfg, brxKernel(ways), 1)
		fast, _ := run(t, si, brxKernel(ways), 1)
		sp := stats.Speedup(base, fast)
		if sp <= prev {
			t.Errorf("ways=%d: speedup %.2f did not grow (prev %.2f)", ways, sp, prev)
		}
		prev = sp
	}
	if prev < 3 {
		t.Errorf("8-way speedup = %.2f, want near 7x", prev)
	}
}

func TestTSTCapacityLimitsOverlap(t *testing.T) {
	// With a 2-entry TST, 8-way divergence cannot fully overlap.
	cfgUnlimited := testConfig().WithSI(false, config.TriggerAllStalled)
	cfgSmall := cfgUnlimited
	cfgSmall.SI.MaxSubwarps = 2

	unlimited, _ := run(t, cfgUnlimited, brxKernel(8), 1)
	small, _ := run(t, cfgSmall, brxKernel(8), 1)
	if small.Cycles <= unlimited.Cycles {
		t.Errorf("2-entry TST (%d cyc) should be slower than unlimited (%d cyc)",
			small.Cycles, unlimited.Cycles)
	}
	if small.TSTOverflow == 0 {
		t.Error("2-entry TST should record overflow rejections")
	}
	base, _ := run(t, testConfig(), brxKernel(8), 1)
	if small.Cycles >= base.Cycles {
		t.Errorf("even a 2-entry TST (%d cyc) should beat baseline (%d cyc)",
			small.Cycles, base.Cycles)
	}
}

// loopKernel runs `iters` loop iterations of pure math.
func loopKernel(iters int32) *isa.Program {
	b := isa.NewBuilder("loop")
	b.Movi(1, 0)
	b.Label("top")
	b.Iaddi(2, 1, 100)
	b.Iaddi(1, 1, 1)
	b.Isetpi(isa.CmpLT, 0, 1, iters)
	b.BraP(0, false, "top")
	return b.Exit().MustBuild()
}

func TestLoopExecution(t *testing.T) {
	c, _ := run(t, testConfig(), loopKernel(50), 1)
	// 1 (MOVI) + 50*4 (loop body) + 1 (EXIT) instructions.
	if c.IssuedInstrs != 202 {
		t.Errorf("IssuedInstrs = %d, want 202", c.IssuedInstrs)
	}
	if c.DivergentBranches != 0 {
		t.Error("uniform loop must not diverge")
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Each lane loops lane%4+1 times: divergence on loop exit.
	b := isa.NewBuilder("divloop")
	b.S2R(0, isa.SRLaneID)
	b.Movi(2, 3)
	b.Iand(2, 0, 2)  // lane % 4
	b.Iaddi(2, 2, 1) // trip count 1..4
	b.Movi(1, 0)
	b.Bssy(0, "done")
	b.Label("top")
	b.Iaddi(1, 1, 1)
	b.Isetp(isa.CmpLT, 0, 1, 2)
	b.BraP(0, false, "top")
	b.Label("done")
	b.Bsync(0)
	b.Shl(3, 0, 2)
	b.Movi(4, 0x5000)
	b.Iadd(3, 3, 4)
	b.Stg(3, 0, 1) // store iteration count
	prog := b.Exit().MustBuild()

	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	if _, err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	for lane := 0; lane < 32; lane++ {
		want := uint32(lane%4 + 1)
		if got := k.Memory.Load(uint64(0x5000 + lane*4)); got != want {
			t.Errorf("lane %d: trips = %d, want %d", lane, got, want)
		}
	}
}

func TestWarpWavesReuseSlots(t *testing.T) {
	// 8 slots, 20 warps: waves must complete all of them.
	cfg := testConfig()
	c, _ := run(t, cfg, straightLine(10), 20)
	if c.IssuedInstrs != 20*12 {
		t.Errorf("IssuedInstrs = %d, want %d", c.IssuedInstrs, 20*12)
	}
}

func TestRegisterPressureLimitsOccupancy(t *testing.T) {
	prog := straightLine(10)
	prog.RegsPerThread = 256 // 256*32 = 8192 regs per warp; 16384/8192 = 2 warps
	k := &Kernel{Program: prog, NumWarps: 4, WarpsPerCTA: 4, Memory: mem.NewMemory()}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ResidentWarpsPerBlock(); got != 2 {
		t.Errorf("ResidentWarpsPerBlock = %d, want 2", got)
	}
}

func TestDeterminism(t *testing.T) {
	for _, si := range []bool{false, true} {
		cfg := testConfig()
		if si {
			cfg = cfg.WithSI(true, config.TriggerHalfStalled)
		}
		a, _ := run(t, cfg, brxKernel(4), 4)
		b, _ := run(t, cfg, brxKernel(4), 4)
		if a != b {
			t.Errorf("si=%v: two identical runs differ:\n%+v\n%+v", si, a, b)
		}
	}
}

func TestFunctionalEquivalenceBaselineVsSI(t *testing.T) {
	// SI must not change architectural results, only timing: run the
	// same store-producing kernel under baseline and all SI policies and
	// compare every memory word written.
	build := func() (*Kernel, *isa.Program) {
		b := isa.NewBuilder("func")
		b.S2R(0, isa.SRLaneID)
		b.Shl(1, 0, 7)
		b.Isetpi(isa.CmpLT, 0, 0, 11) // uneven split
		b.Bssy(0, "sync")
		b.BraP(0, false, "then")
		b.Iaddi(2, 1, 0x40000)
		b.Ldg(3, 2, 0, 1)
		b.Imuli(3, 3, 3).Req(1)
		b.Bra("sync")
		b.Label("then")
		b.Iaddi(2, 1, 0x10000)
		b.Ldg(3, 2, 0, 0)
		b.Imuli(3, 3, 5).Req(0)
		b.Bra("sync")
		b.Label("sync")
		b.Bsync(0)
		b.Shl(4, 0, 2)
		b.Movi(5, 0x8000)
		b.Iadd(4, 4, 5)
		b.Stg(4, 0, 3)
		prog := b.Exit().MustBuild()
		return &Kernel{Program: prog, NumWarps: 2, WarpsPerCTA: 2, Memory: mem.NewMemory()}, prog
	}

	results := make(map[string][]uint32)
	cfgs := map[string]config.Config{
		"baseline":    testConfig(),
		"SOS,N=1":     testConfig().WithSI(false, config.TriggerAllStalled),
		"Both,N>0":    testConfig().WithSI(true, config.TriggerAnyStalled),
		"Both,N>=0.5": testConfig().WithSI(true, config.TriggerHalfStalled),
	}
	for name, cfg := range cfgs {
		k, _ := build()
		s, err := NewSM(0, cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			s.Admit(i, i, 0, i)
		}
		if _, err := s.Run(10_000_000); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var vals []uint32
		for lane := 0; lane < 64; lane++ {
			vals = append(vals, k.Memory.Load(uint64(0x8000+lane*4)))
		}
		results[name] = vals
	}
	want := results["baseline"]
	for name, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: word %d = %d, baseline = %d", name, i, got[i], want[i])
			}
		}
	}
}

func TestKernelValidation(t *testing.T) {
	good := straightLine(1)
	memv := mem.NewMemory()
	cases := []struct {
		name string
		k    Kernel
	}{
		{"no program", Kernel{NumWarps: 1, WarpsPerCTA: 1, Memory: memv}},
		{"no warps", Kernel{Program: good, WarpsPerCTA: 1, Memory: memv}},
		{"no cta", Kernel{Program: good, NumWarps: 1, Memory: memv}},
		{"no memory", Kernel{Program: good, NumWarps: 1, WarpsPerCTA: 1}},
	}
	for _, c := range cases {
		if err := c.k.Validate(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// TRACE without BVH.
	b := isa.NewBuilder("trace")
	b.Trace(1, 0, 0)
	tr := b.Exit().MustBuild()
	k := Kernel{Program: tr, NumWarps: 1, WarpsPerCTA: 1, Memory: memv}
	if err := k.Validate(); err == nil || !strings.Contains(err.Error(), "BVH") {
		t.Errorf("TRACE without BVH: err = %v", err)
	}
}

func TestScoreboardCountMismatchRejected(t *testing.T) {
	b := isa.NewBuilder("sb15")
	b.Ldg(1, 0, 0, 15)
	prog := b.Exit().MustBuild()
	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	if _, err := NewSM(0, testConfig(), k); err == nil {
		t.Error("sb15 with 8 scoreboards/warp should be rejected")
	}
}

func TestCycleLimitErrors(t *testing.T) {
	b := isa.NewBuilder("forever")
	b.Label("top")
	b.Bra("top")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	if _, err := s.Run(10_000); err == nil {
		t.Error("infinite loop should exceed the cycle budget")
	}
}

func TestL1DCapacityReuseHits(t *testing.T) {
	// Loading the same line twice: second access hits.
	b := isa.NewBuilder("reuse")
	b.Movi(1, 0x9000)
	b.Ldg(2, 1, 0, 0)
	b.Iadd(3, 2, 2).Req(0)
	b.Ldg(4, 1, 0, 1)
	b.Iadd(5, 4, 4).Req(1)
	prog := b.Exit().MustBuild()
	c, _ := run(t, testConfig(), prog, 1)
	if c.L1DMisses != 1 {
		t.Errorf("L1DMisses = %d, want 1 (second load hits)", c.L1DMisses)
	}
	if c.L1DAccesses != 2 {
		t.Errorf("L1DAccesses = %d, want 2", c.L1DAccesses)
	}
}

func TestExposedStallAccountingSums(t *testing.T) {
	c, _ := run(t, testConfig(), divergentIfElse(true), 1)
	if c.IssueCycles+c.IdleCycles != c.Cycles {
		t.Errorf("IssueCycles(%d) + IdleCycles(%d) != Cycles(%d)",
			c.IssueCycles, c.IdleCycles, c.Cycles)
	}
	if c.ExposedLoadStallsDivergent > c.ExposedLoadStalls {
		t.Error("divergent stalls cannot exceed total stalls")
	}
	if c.ExposedLoadStalls > c.IdleCycles {
		t.Error("exposed stalls cannot exceed idle cycles")
	}
}

func TestYieldRequiresReadySubwarp(t *testing.T) {
	// A convergent kernel with loads under Both: no other subwarp, so
	// yield must never fire.
	cfg := testConfig().WithSI(true, config.TriggerAnyStalled)
	c, _ := run(t, cfg, loadUse(0x10000), 1)
	if c.SubwarpYields != 0 {
		t.Errorf("SubwarpYields = %d on convergent kernel", c.SubwarpYields)
	}
}

func TestSwitchLatencyCharged(t *testing.T) {
	cfg := testConfig().WithSI(false, config.TriggerAllStalled)
	c, _ := run(t, cfg, divergentIfElse(true), 1)
	if c.SelectBusy != c.SubwarpSelects*int64(cfg.SI.SwitchLatency) {
		t.Errorf("SelectBusy = %d, want selects(%d) * latency(%d)",
			c.SelectBusy, c.SubwarpSelects, cfg.SI.SwitchLatency)
	}
}

func TestOrderPolicies(t *testing.T) {
	// All activation orders must produce functionally identical runs.
	for _, ord := range []config.SubwarpOrder{
		config.OrderTakenFirst, config.OrderFallthroughFirst,
		config.OrderLargestFirst, config.OrderRandom,
	} {
		cfg := testConfig()
		cfg.Order = ord
		c, _ := run(t, cfg, divergentIfElse(true), 1)
		if c.DivergentBranches != 1 || c.Reconvergences != 1 {
			t.Errorf("order %v: diverge/reconverge = %d/%d",
				ord, c.DivergentBranches, c.Reconvergences)
		}
	}
}
