package sm

import (
	"strings"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
)

// exitUnderBarrier builds the reconvergence-after-exit shape: the
// branch-taken half of the warp arrives at the convergence barrier
// first and blocks, then the fall-through half EXITs without ever
// executing the BSYNC. The divergence unit must notice the barrier is
// now satisfied and release the blocked threads (releaseAfterExit);
// nothing else will ever wake them.
func exitUnderBarrier() *isa.Program {
	b := isa.NewBuilder("exit-under-barrier")
	b.S2R(0, isa.SRLaneID)
	b.Isetpi(isa.CmpLT, 0, 0, 16) // p0: lanes 0..15
	b.Bssy(0, "join")
	b.BraP(0, false, "join") // lanes 0..15 take the branch to the barrier
	// Lanes 16..31 fall through and exit without reconverging.
	b.Iadd(4, 0, 0)
	b.Exit()
	b.Label("join")
	b.Bsync(0)
	return b.Exit().MustBuild()
}

// TestReleaseAfterExitUnblocksBarrier runs the shape under the
// baseline divergence unit and under SI: both must terminate (not
// deadlock) by releasing the barrier after the sibling path exits.
func TestReleaseAfterExitUnblocksBarrier(t *testing.T) {
	for name, cfg := range map[string]config.Config{
		"baseline": testConfig(),
		"SI":       testConfig().WithSI(true, config.TriggerHalfStalled),
	} {
		t.Run(name, func(t *testing.T) {
			c, _ := run(t, cfg, exitUnderBarrier(), 2)
			if c.DivergentBranches == 0 {
				t.Fatal("kernel must diverge")
			}
			if c.Reconvergences == 0 {
				t.Error("exit-satisfied barrier must count as a reconvergence")
			}
		})
	}
}

// TestReleaseAfterExitNested: with two nested barriers, exiting the
// innermost sibling releases only the inner barrier; the outer one
// reconverges normally afterwards. Guards the per-barrier scan in
// releaseAfterExit.
func TestReleaseAfterExitNested(t *testing.T) {
	b := isa.NewBuilder("nested-exit")
	b.S2R(0, isa.SRLaneID)
	b.Isetpi(isa.CmpLT, 0, 0, 16) // p0: lanes 0..15
	b.Bssy(0, "outer")
	b.BraP(0, false, "outer") // lanes 0..15 wait at the outer barrier
	// Lanes 16..31: diverge again on an inner region.
	b.Isetpi(isa.CmpLT, 1, 0, 24) // p1: lanes 16..23 of the survivors
	b.Bssy(1, "inner")
	b.BraP(1, false, "inner") // lanes 16..23 wait at the inner barrier
	// Lanes 24..31 exit; the inner barrier must release lanes 16..23.
	b.Exit()
	b.Label("inner")
	b.Bsync(1)
	b.Label("outer")
	b.Bsync(0)
	prog := b.Exit().MustBuild()

	c, _ := run(t, testConfig(), prog, 1)
	if c.Reconvergences < 2 {
		t.Errorf("Reconvergences = %d, want inner release plus outer reconvergence", c.Reconvergences)
	}
}

// mismatchedBarriers builds the illegal shape the deadlock detector
// must catch: both halves of the warp block on barrier B0 but at
// different PCs, so neither BSYNC can ever succeed.
func mismatchedBarriers() *isa.Program {
	b := isa.NewBuilder("mismatched-bsync")
	b.S2R(0, isa.SRLaneID)
	b.Isetpi(isa.CmpLT, 0, 0, 16)
	b.Bssy(0, "there")
	b.BraP(0, false, "there")
	b.Bsync(0) // lanes 16..31 wait here ...
	b.Bra("end")
	b.Label("there")
	b.Bsync(0) // ... while lanes 0..15 wait at a different PC
	b.Label("end")
	return b.Exit().MustBuild()
}

// TestMismatchedBsyncReportsDeadlock: the simulator must fail with a
// diagnosable deadlock error, not hang or run to the cycle cap.
func TestMismatchedBsyncReportsDeadlock(t *testing.T) {
	prog := mismatchedBarriers()
	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	_, err = s.Run(1_000_000)
	if err == nil {
		t.Fatal("mismatched BSYNCs must be reported as a deadlock")
	}
	msg := err.Error()
	if !strings.Contains(msg, "deadlock") {
		t.Errorf("error %q must say deadlock", msg)
	}
	// The report embeds the per-warp dump so the failure is debuggable.
	if !strings.Contains(msg, "warp 0") || !strings.Contains(msg, "blocked") {
		t.Errorf("error must carry the warp state dump:\n%s", msg)
	}
}
