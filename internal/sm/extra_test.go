package sm

import (
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
)

// TestTexPathSlowerThanLSU: the texture writeback port adds its extra
// latency relative to a plain global load.
func TestTexPathSlowerThanLSU(t *testing.T) {
	cfg := testConfig()
	cfg.TexExtraLatency = 80

	build := func(tex bool) *isa.Program {
		b := isa.NewBuilder("texlat")
		b.S2R(0, isa.SRLaneID)
		b.Shl(1, 0, 7)
		b.Iaddi(1, 1, 0x10000)
		if tex {
			b.Tld(2, 1, 0, 0)
		} else {
			b.Ldg(2, 1, 0, 0)
		}
		b.Iadd(3, 2, 2).Req(0)
		return b.Exit().MustBuild()
	}
	ldg, _ := run(t, cfg, build(false), 1)
	tld, _ := run(t, cfg, build(true), 1)
	diff := tld.Cycles - ldg.Cycles
	if diff < 70 || diff > 90 {
		t.Errorf("TEX path extra = %d cycles, want ~80", diff)
	}
}

// TestCoalescingSameLine: 32 lanes loading the same line issue one L1D
// line request; scattered lanes issue 32.
func TestCoalescingSameLine(t *testing.T) {
	build := func(scatter bool) *isa.Program {
		b := isa.NewBuilder("coalesce")
		b.S2R(0, isa.SRLaneID)
		if scatter {
			b.Shl(1, 0, 7) // lane*128: one line each
		} else {
			b.Shl(1, 0, 2) // lane*4: all in one line
		}
		b.Iaddi(1, 1, 0x20000)
		b.Ldg(2, 1, 0, 0)
		b.Iadd(3, 2, 2).Req(0)
		return b.Exit().MustBuild()
	}
	uni, _ := run(t, testConfig(), build(false), 1)
	if uni.LinesFetched != 1 {
		t.Errorf("coalesced LinesFetched = %d, want 1", uni.LinesFetched)
	}
	sc, _ := run(t, testConfig(), build(true), 1)
	if sc.LinesFetched != 32 {
		t.Errorf("scattered LinesFetched = %d, want 32", sc.LinesFetched)
	}
}

// TestStoreToLoadForwarding: a store is visible to a later load through
// the functional memory.
func TestStoreToLoadForwarding(t *testing.T) {
	b := isa.NewBuilder("stld")
	b.Movi(1, 0x3000)
	b.Movi(2, 77)
	b.Stg(1, 0, 2)
	b.Ldg(3, 1, 0, 0)
	b.Iadd(4, 3, 3).Req(0)
	b.Shl(5, 0, 0) // keep R5 = R0 (zero)
	b.Movi(5, 0x4000)
	b.Stg(5, 0, 4)
	prog := b.Exit().MustBuild()

	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	if _, err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	if got := k.Memory.Load(0x4000); got != 154 {
		t.Errorf("forwarded value = %d, want 154", got)
	}
}

// TestNestedBarriers: an inner divergent region reconverges before the
// outer one.
func TestNestedBarriers(t *testing.T) {
	b := isa.NewBuilder("nested")
	b.S2R(0, isa.SRLaneID)
	b.Isetpi(isa.CmpLT, 0, 0, 16) // outer split at 16
	b.Isetpi(isa.CmpLT, 1, 0, 8)  // inner split at 8
	b.Bssy(0, "outer")
	b.BraP(0, false, "low16")
	b.Iaddi(2, 2, 1) // lanes 16..31
	b.Bra("outer")
	b.Label("low16")
	b.Bssy(1, "inner")
	b.BraP(1, false, "low8")
	b.Iaddi(2, 2, 2) // lanes 8..15
	b.Bra("inner")
	b.Label("low8")
	b.Iaddi(2, 2, 3) // lanes 0..7
	b.Bra("inner")
	b.Label("inner")
	b.Bsync(1)
	b.Iaddi(2, 2, 10) // all of lanes 0..15
	b.Bra("outer")
	b.Label("outer")
	b.Bsync(0)
	b.Shl(3, 0, 2)
	b.Movi(4, 0x6000)
	b.Iadd(3, 3, 4)
	b.Stg(3, 0, 2)
	prog := b.Exit().MustBuild()

	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	c, err := s.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if c.Reconvergences != 2 {
		t.Errorf("Reconvergences = %d, want 2 (inner + outer)", c.Reconvergences)
	}
	for lane := 0; lane < 32; lane++ {
		want := uint32(1) // outer-else
		switch {
		case lane < 8:
			want = 3 + 10
		case lane < 16:
			want = 2 + 10
		}
		if got := k.Memory.Load(uint64(0x6000 + lane*4)); got != want {
			t.Errorf("lane %d = %d, want %d", lane, got, want)
		}
	}
}

// TestSIMTEfficiencyUnderDivergence: a 50/50 divergent region halves
// thread participation on divergent instructions.
func TestSIMTEfficiencyUnderDivergence(t *testing.T) {
	c, _ := run(t, testConfig(), divergentIfElse(true), 1)
	eff := float64(c.ActiveThreads) / float64(c.IssuedInstrs) / 32
	if eff < 0.5 || eff > 0.95 {
		t.Errorf("SIMT efficiency = %.2f, want between 0.5 and 0.95", eff)
	}
}

// TestYieldThresholdDelaysYield: with a threshold of 2, a single
// long-latency op must not trigger a yield.
func TestYieldThresholdDelaysYield(t *testing.T) {
	cfg := testConfig().WithSI(true, config.TriggerAllStalled)
	cfg.SI.YieldThreshold = 2
	c, _ := run(t, cfg, divergentIfElse(true), 1)
	if c.SubwarpYields != 0 {
		t.Errorf("SubwarpYields = %d with threshold 2 and single loads", c.SubwarpYields)
	}
}

// TestOrderRandomDeterministic: OrderRandom draws from per-block seeded
// generators, so repeated runs agree.
func TestOrderRandomDeterministic(t *testing.T) {
	cfg := testConfig()
	cfg.Order = config.OrderRandom
	a, _ := run(t, cfg, brxKernel(4), 2)
	b, _ := run(t, cfg, brxKernel(4), 2)
	if a != b {
		t.Error("OrderRandom runs differ across identical seeds")
	}
}

// TestLargestFirstActivatesBigSubwarp: with OrderLargestFirst, the
// 31-lane side of a 1/31 split runs first.
func TestLargestFirstActivatesBigSubwarp(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder("split131")
		b.S2R(0, isa.SRLaneID)
		b.Isetpi(isa.CmpEQ, 0, 0, 0)
		b.Bssy(0, "sync")
		b.BraP(0, false, "one") // lane 0 takes the branch
		b.Movi(1, 31)           // the 31-lane fall-through side
		b.Bra("sync")
		b.Label("one")
		b.Movi(1, 1)
		b.Bra("sync")
		b.Label("sync")
		b.Bsync(0)
		return b.Exit().MustBuild()
	}
	cfg := testConfig()
	cfg.Order = config.OrderLargestFirst
	k := &Kernel{Program: build(), NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	blk := s.blocks[0]
	w := blk.warps[0]
	for now := int64(0); ; now++ {
		blk.step(now)
		if w.tab.LiveSubwarps() > 1 {
			break
		}
		if now > 1000 {
			t.Fatal("never diverged")
		}
	}
	if w.Active().Count() != 31 {
		t.Errorf("active subwarp = %d lanes, want 31 (largest first)", w.Active().Count())
	}
}

// TestFewerScoreboardsStillCorrect: a program using only sb0/sb1 runs
// under a 2-scoreboard configuration.
func TestFewerScoreboardsStillCorrect(t *testing.T) {
	cfg := testConfig()
	cfg.ScoreboardsPerWarp = 2
	c, _ := run(t, cfg, divergentIfElse(true), 1)
	if c.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

// TestConvergentBranchDoesNotSplinter: a branch all lanes take is free
// of divergence bookkeeping.
func TestConvergentBranchDoesNotSplinter(t *testing.T) {
	b := isa.NewBuilder("conv")
	b.S2R(0, isa.SRLaneID)
	b.Isetpi(isa.CmpGE, 0, 0, 0) // true for all lanes
	b.BraP(0, false, "all")
	b.Movi(1, 99) // dead
	b.Label("all")
	prog := b.Exit().MustBuild()
	c, _ := run(t, testConfig(), prog, 1)
	if c.DivergentBranches != 0 {
		t.Errorf("DivergentBranches = %d", c.DivergentBranches)
	}
	if c.MaxLiveSubwarps > 1 {
		t.Errorf("MaxLiveSubwarps = %d", c.MaxLiveSubwarps)
	}
}

// TestMufuAndFloatOps: float pipeline executes and produces finite
// values.
func TestMufuAndFloatOps(t *testing.T) {
	b := isa.NewBuilder("float")
	b.Movi(1, 0x40800000) // 4.0f
	b.Fadd(2, 1, 1)       // 8.0
	b.Fmul(3, 2, 1)       // 32.0
	b.Ffma(4, 3, 1, 2)    // 136.0
	b.Mufu(5, 4)          // 1/sqrt(137)
	b.Movi(6, 0x7000)
	b.Stg(6, 0, 4)
	prog := b.Exit().MustBuild()
	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, testConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	if _, err := s.Run(100_000); err != nil {
		t.Fatal(err)
	}
	if got := k.Memory.Load(0x7000); got != 0x43080000 { // 136.0f
		t.Errorf("FFMA chain = %#x, want 0x43080000 (136.0f)", got)
	}
}

// TestFetchPortSerializesFills: a block with many concurrent L0 misses
// takes longer than the sum of independent fills would suggest.
func TestFetchPortSerializesFills(t *testing.T) {
	cfg := testConfig()
	cfg.L0MissPenalty = 50
	cfg.L0InstrBytes = 512 // 4 lines: everything misses
	// A straight-line kernel long enough to touch many lines.
	c, _ := run(t, cfg, straightLine(200), 2)
	if c.L0IMisses == 0 {
		t.Fatal("expected L0 misses")
	}
	// With a 50-cycle serialized fill port and ~13 lines per warp, the
	// runtime must far exceed the no-contention instruction count.
	if c.Cycles < 400 {
		t.Errorf("Cycles = %d; fill port serialization should dominate", c.Cycles)
	}
}
