package sm

import (
	"math"
	"math/rand"

	"subwarpsim/internal/bits"
	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/trace"
	"subwarpsim/internal/tst"
)

// issueClass is the per-warp scheduling status the block's scheduler
// and the SI policy logic observe each cycle.
type issueClass uint8

const (
	classExited issueClass = iota
	classCanIssue
	classSelecting // paying the subwarp switch latency
	classNoActive  // no active subwarp: demoted, yielded, or blocked
	classFetchWait // instruction fetch miss in flight
	classScbdWait  // active subwarp blocked on a load-to-use scoreboard
)

// wbKind distinguishes the two writeback broadcast ports of Fig. 8b
// plus the RT core return path (modeled on the LSU port).
type wbKind uint8

const (
	wbLoad wbKind = iota
	wbTex
	wbTrace
)

// wbEvent is one thread's pending register writeback.
type wbEvent struct {
	at   int64
	warp *Warp
	lane int
	reg  uint8
	sbid int8
	kind wbKind
	addr uint64 // load/tex: address read at writeback time
	val  uint32 // trace: precomputed result
}

// warpSpec queues a not-yet-resident warp for a freed slot
// (persistent-thread style waves when the launch exceeds occupancy).
type warpSpec struct {
	id        int
	ctaID     int
	warpInCTA int
}

// idleSummary classifies one idle cycle for stall accounting.
type idleSummary struct {
	loadStall    bool
	loadStallDiv bool
	fetchWaiters int64
	selecting    bool // switch latency in flight, or a READY subwarp awaits select
	blocked      bool // a live warp has lanes blocked at a convergence barrier
}

// Block is one processing block: up to WarpSlotsPerBlock resident
// warps, a private L0 instruction cache, a warp scheduler, and (with SI
// enabled) the subwarp scheduler unit of Fig. 6.
type Block struct {
	id  int
	cfg config.Config
	sm  *SM

	warps   []*Warp
	pending []warpSpec
	l0i     *mem.Cache
	events  eventQueue
	rng     *rand.Rand

	lastIssued int
	policy     Policy
	counters   stats.Counters
	done       bool

	// Compiled-mode state, shared with (and owned by) the SM: cops is
	// the pre-decoded operation stream (nil in interpreted mode) and
	// ffLen the per-PC fast-forward run lengths (nil when fast-forward
	// is off — interpreted mode or an attached trace recorder).
	// lastPick records which warp issued in the most recent step (-1
	// when none), which is what SM.ffHorizon consults.
	cops     []isa.COp
	ffLen    []int32
	lastPick int

	// Dirty-warp scheduling state. statuses caches each warp's issue
	// class across cycles; a warp is re-classified (the expensive
	// status() probe) only when an event that could change its class
	// touched it — writeback arrival, fetch/selection completion, its
	// own issue, SI demotion, or slot recycling — instead of re-scanning
	// every warp every cycle. dirty flags warps touched by such an
	// event; wakeAt is the cycle at which a time-bound class
	// (classSelecting, classFetchWait) must be re-evaluated. Spuriously
	// marking a warp dirty is always safe: re-classifying an unchanged
	// warp is exactly what the pre-dirty-tracking scan did every cycle.
	statuses []issueClass
	dirty    []bool
	wakeAt   []int64

	// Per-instruction scratch buffers, owned by the block and reused
	// across execute calls so the steady-state issue path never
	// allocates. Each user truncates to length zero before filling;
	// contents are dead between instructions. scratchLines dedups
	// coalesced cache lines in executeLoad (replacing a per-call map);
	// scratchGroups holds divergent-branch subgroups for
	// executeBranch/executeBrx.
	scratchLines  []lineFill
	scratchGroups []subgroup

	// rec is the optional observability recorder (cfg.Trace); nil when
	// tracing is off, so every emission site costs one nil check.
	rec *trace.Recorder

	// fetchPortFreeAt models the block's single L0I fill port: one line
	// transfer at a time, so interleaved fetch streams that miss the L0
	// queue up — the second-order fetch cost of frequent subwarp
	// switching the paper identifies (Section VI, first limiter).
	fetchPortFreeAt int64
}

func newBlock(id int, cfg config.Config, owner *SM) *Block {
	return &Block{
		id:       id,
		cfg:      cfg,
		sm:       owner,
		l0i:      mem.NewCache("L0I", cfg.L0InstrBytes, 4, cfg.CacheLineBytes),
		rng:      rand.New(rand.NewSource(int64(owner.id*1000 + id + 1))),
		statuses: make([]issueClass, 0, cfg.WarpSlotsPerBlock),
		dirty:    make([]bool, 0, cfg.WarpSlotsPerBlock),
		wakeAt:   make([]int64, 0, cfg.WarpSlotsPerBlock),
		rec:      cfg.Trace,
		cops:     owner.cops,
		ffLen:    owner.ffLen,
		lastPick: -1,
		policy:   policyFor(cfg.SchedPolicy),
	}
}

// markDirty flags a warp slot for re-classification on the next step.
func (b *Block) markDirty(slot int) {
	if slot < len(b.dirty) {
		b.dirty[slot] = true
	}
}

// emit forwards one pipeline event to the recorder. Callers must have
// checked b.rec != nil.
func (b *Block) emit(cycle int64, w *Warp, pc int, mask bits.Mask, kind trace.Kind, arg int) {
	b.rec.Emit(cycle, b.sm.id, b.id, int32(w.ID), int32(pc), mask, kind, int32(arg))
}

// admit places a warp spec into a slot (up to the resident limit) or
// the pending queue.
func (b *Block) admit(spec warpSpec, resident int) {
	if len(b.warps) < resident {
		w := b.materialize(spec)
		w.slot = len(b.warps)
		b.warps = append(b.warps, w)
		b.statuses = append(b.statuses, classCanIssue)
		b.dirty = append(b.dirty, true)
		b.wakeAt = append(b.wakeAt, 0)
		return
	}
	b.pending = append(b.pending, spec)
}

func (b *Block) materialize(spec warpSpec) *Warp {
	return newWarp(spec.id, spec.ctaID, spec.warpInCTA, b.sm.kernel.CTASize(),
		b.cfg.ScoreboardsPerWarp, b.cfg.EffectiveMaxSubwarps())
}

// Done reports whether every admitted warp has run to completion.
func (b *Block) Done() bool { return b.done }

// Counters returns the block's accumulated statistics.
func (b *Block) Counters() stats.Counters { return b.counters }

func (b *Block) liveWarps() int {
	n := 0
	for _, w := range b.warps {
		if !w.exited {
			n++
		}
	}
	return n
}

// step advances the block by one cycle. It returns whether an
// instruction issued and the earliest future time at which the block's
// state can change on its own (math.MaxInt64 when nothing is pending).
func (b *Block) step(now int64) (issued bool, next int64) {
	if b.done {
		return false, math.MaxInt64
	}
	b.lastPick = -1

	b.drainEvents(now)
	b.completeSelections(now)

	// Per-warp status scan; with SI, demote scoreboard-stalled subwarps
	// (subwarp-stall is combinational, applying to every stalled warp).
	// Only dirty warps — and time-bound classes whose wake cycle arrived
	// — pay the full status() re-classification; everything else keeps
	// its cached class, which by construction cannot have changed. The
	// demote attempt itself re-runs every stepped cycle for every
	// scoreboard-stalled warp (its outcome depends on cross-warp TST/
	// slot state, and each failed attempt counts a TSTOverflow), exactly
	// as the full re-scan did.
	for i, w := range b.warps {
		st := b.statuses[i]
		if b.dirty[i] ||
			((st == classSelecting || st == classFetchWait) && now >= b.wakeAt[i]) {
			b.dirty[i] = false
			st = b.status(w, now)
			switch st {
			case classSelecting:
				b.wakeAt[i] = w.selectDoneAt
			case classFetchWait:
				b.wakeAt[i] = w.fetchReadyAt
			}
		}
		if st == classScbdWait && b.cfg.SI.Enabled {
			if b.demote(w, now) {
				st = classNoActive
			}
		}
		b.statuses[i] = st
	}

	if b.cfg.SI.Enabled {
		b.maybeTriggerSelect(now)
	}

	issued = b.issue(now)
	if issued {
		b.counters.IssueCycles++
	} else {
		b.addIdle(b.classify(), 1)
	}

	if b.rec != nil {
		occ, subs, fill := b.sampleState()
		b.rec.Sample(now, occ, subs, fill, issued)
	}

	b.retireExited()
	b.counters.Cycles = now + 1

	if b.done {
		return issued, math.MaxInt64
	}
	return issued, b.nextEventTime()
}

// skipIdle accounts for gap idle cycles the SM fast-forwarded over: by
// construction nothing changes during them, so the classification from
// the last stepped cycle applies to each.
func (b *Block) skipIdle(gap int64, endCycle int64) {
	if b.done || gap <= 0 {
		return
	}
	b.addIdle(b.classify(), gap)
	b.counters.Cycles = endCycle
	if b.rec != nil {
		occ, subs, fill := b.sampleState()
		b.rec.SampleGap(endCycle-gap, endCycle, occ, subs, fill)
	}
}

// sampleState gathers the block's time-series sample: live resident
// warps, live subwarps across them, and occupied TST (stalled) entries.
func (b *Block) sampleState() (occ, subs, fill int) {
	for _, w := range b.warps {
		if w.exited {
			continue
		}
		occ++
		subs += w.tab.LiveSubwarps()
		fill += w.tab.StalledSubwarps()
	}
	return occ, subs, fill
}

// drainEvents applies all writebacks due at or before now.
func (b *Block) drainEvents(now int64) {
	for len(b.events) > 0 && b.events[0].at <= now {
		b.applyWriteback(b.events.pop(), now)
	}
}

// applyWriteback writes the register, releases the scoreboard, and
// broadcasts to the TST (subwarp-wakeup, Fig. 8b).
func (b *Block) applyWriteback(ev wbEvent, now int64) {
	w := ev.warp
	b.markDirty(w.slot)
	val := ev.val
	if ev.kind != wbTrace {
		val = b.sm.mem.Load(ev.addr)
	}
	w.regs[ev.lane][ev.reg] = val
	w.sb.Dec(ev.lane, int(ev.sbid))
	woke := w.tab.Writeback(ev.lane, int(ev.sbid))
	if woke {
		b.counters.SubwarpWakeups++
	}
	if b.rec != nil {
		lane := bits.LaneMask(ev.lane)
		pc := w.pcs[ev.lane]
		b.emit(now, w, pc, lane, trace.KindWriteback, int(ev.sbid))
		if w.sb.LaneCount(ev.lane, int(ev.sbid)) == 0 {
			b.emit(now, w, pc, lane, trace.KindScbdRelease, int(ev.sbid))
		}
		if woke {
			b.emit(now, w, pc, lane, trace.KindWakeup, int(ev.sbid))
		}
	}
}

// completeSelections finishes subwarp-select operations whose switch
// latency elapsed, activating the chosen READY subwarp.
func (b *Block) completeSelections(now int64) {
	for _, w := range b.warps {
		if !w.pendingSelect || w.selectDoneAt > now {
			continue
		}
		w.pendingSelect = false
		b.markDirty(w.slot)
		if sub, ok := w.tab.Select(); ok {
			w.activate(sub.Mask, sub.PC)
			b.counters.SubwarpSelects++
			b.counters.SelectBusy += int64(b.cfg.SI.SwitchLatency)
			if b.rec != nil {
				b.emit(now, w, sub.PC, sub.Mask, trace.KindSelect, b.cfg.SI.SwitchLatency)
			}
		}
	}
}

// status computes a warp's scheduling class, performing the
// instruction-fetch probe (L0I, then the SM-shared L1I, then the
// fixed-latency memory stub) as a side effect when the active PC moved
// to a new cache line.
func (b *Block) status(w *Warp, now int64) issueClass {
	if w.exited {
		return classExited
	}
	if w.pendingSelect {
		return classSelecting
	}
	if w.active.Empty() {
		return classNoActive
	}

	if w.fetchReadyAt > now {
		return classFetchWait
	}
	if w.fetchingLine != math.MaxUint64 {
		w.fetchedLine = w.fetchingLine
		w.fetchingLine = math.MaxUint64
	}
	line := uint64(w.activePC*b.cfg.InstrBytes) / uint64(b.cfg.CacheLineBytes)
	if line != w.fetchedLine {
		addr := line * uint64(b.cfg.CacheLineBytes)
		b.counters.L0IAccesses++
		readyAt, hit := b.l0i.Access(addr, now, func(at int64) int64 {
			b.counters.L1IAccesses++
			r, l1iHit := b.sm.l1i.Access(addr, at, func(at2 int64) int64 {
				return at2 + int64(b.cfg.L1IMissPenalty)
			})
			if !l1iHit {
				b.counters.L1IMisses++
			}
			return r + int64(b.cfg.L0MissPenalty)
		})
		if !hit {
			b.counters.L0IMisses++
			port := b.fetchPortFreeAt
			if port < now {
				port = now
			}
			b.fetchPortFreeAt = port + int64(b.cfg.L0MissPenalty)
			if readyAt < b.fetchPortFreeAt {
				readyAt = b.fetchPortFreeAt
			}
		}
		if readyAt > now {
			if b.rec != nil {
				b.emit(now, w, w.activePC, w.active, trace.KindFetchMiss, int(readyAt-now))
			}
			w.fetchReadyAt = readyAt
			w.fetchingLine = line
			return classFetchWait
		}
		w.fetchedLine = line
	}

	// Load-to-use scoreboard wait. The baseline observes the warp-wide
	// aliased view; SI reads the active subwarp's replicated counters.
	if req := b.reqScbd(w.activePC); req != isa.NoScoreboard {
		mask := w.active
		if !b.cfg.SI.Enabled {
			mask = w.tab.Live()
		}
		if !w.sb.Ready(mask, int(req)) {
			return classScbdWait
		}
	}
	return classCanIssue
}

// reqScbd returns the &req scoreboard annotation of the instruction at
// pc, reading the pre-decoded stream when one is attached.
func (b *Block) reqScbd(pc int) int8 {
	if b.cops != nil {
		return b.cops[pc].ReqScbd
	}
	return b.sm.prog.At(pc).ReqScbd
}

// demote performs subwarp-stall: the active subwarp records its
// blocking scoreboard in the TST and transitions to STALLED, freeing
// the warp's scheduling slot for other subwarps. Returns false on TST
// overflow (Fig. 15's limited-entry configurations).
func (b *Block) demote(w *Warp, now int64) bool {
	// Demotion exists to free the warp's slot for other subwarps; when
	// none is READY there is nothing to switch to, and staying put lets
	// the warp resume directly on writeback instead of waiting for a
	// policy-gated subwarp-select.
	if w.tab.Mask(tst.Ready).Empty() {
		return false
	}
	// Under DWS, every concurrently parked (stalled) subwarp occupies
	// one of the block's free warp slots; with no free slot the split
	// cannot happen and the warp serializes like the baseline — the
	// paper's Section VII-B contrast with SI.
	if b.cfg.SI.DWS && b.parkedSubwarps() >= b.freeSlots() {
		b.counters.TSTOverflow++
		return false
	}
	sbid := int(b.reqScbd(w.activePC))
	ok := w.tab.Stall(w.active, sbid, func(lane int) int {
		return w.sb.LaneCount(lane, sbid)
	})
	if !ok {
		b.counters.TSTOverflow++
		return false
	}
	b.counters.SubwarpStalls++
	if b.rec != nil {
		b.emit(now, w, w.activePC, w.active, trace.KindStall, sbid)
	}
	w.dropActive()
	return true
}

// maybeTriggerSelect applies the Section III-C3 policy: when the
// fraction of stalled warps among live warps satisfies the trigger,
// initiate subwarp-select on the lowest-numbered stalled warp that has
// a READY subwarp. One initiation per block per cycle.
func (b *Block) maybeTriggerSelect(now int64) {
	stalled, live := 0, 0
	for i, w := range b.warps {
		if w.exited {
			continue
		}
		live++
		if b.statuses[i] == classScbdWait || b.statuses[i] == classNoActive {
			stalled++
		}
	}
	if !b.cfg.SI.Trigger.Satisfied(stalled, live) {
		return
	}
	for i, w := range b.warps {
		if b.statuses[i] != classNoActive || w.pendingSelect {
			continue
		}
		if w.tab.Mask(tst.Ready).Empty() {
			continue
		}
		w.pendingSelect = true
		w.selectDoneAt = now + int64(b.cfg.SI.SwitchLatency)
		b.statuses[i] = classSelecting
		b.wakeAt[i] = w.selectDoneAt
		if b.rec != nil {
			b.emit(now, w, -1, 0, trace.KindSelectStart, b.cfg.SI.SwitchLatency)
		}
		return
	}
}

// issue asks the scheduler policy for one ready warp (greedy on the
// last-issued warp, policy-specific fallback on a stall) and executes
// its next instruction.
func (b *Block) issue(now int64) bool {
	if len(b.warps) == 0 {
		return false
	}
	pick := b.policy.Pick(b)
	if pick < 0 {
		return false
	}
	b.lastIssued = pick
	b.lastPick = pick
	w := b.warps[pick]
	if b.cops != nil {
		b.executeCompiled(w, now)
	} else {
		b.execute(w, b.sm.prog.At(w.activePC), now)
	}
	// Executing changed the warp's own state (PC, masks, scoreboards);
	// re-classify it next cycle. No other warp's class can change from
	// this issue alone.
	b.dirty[pick] = true
	return true
}

// classify summarizes why the block is idle this cycle, mirroring the
// paper's metric: an exposed load-to-use stall is a cycle where no warp
// can issue and at least one live warp waits on an outstanding
// long-latency operation; it counts as divergent when such a warp is
// diverged.
func (b *Block) classify() idleSummary {
	var s idleSummary
	for i, w := range b.warps {
		switch b.statuses[i] {
		case classScbdWait:
			s.loadStall = true
			if w.Diverged() {
				s.loadStallDiv = true
			}
		case classNoActive, classSelecting:
			if b.statuses[i] == classSelecting {
				s.selecting = true
			}
			if !w.tab.Mask(tst.Stalled).Empty() {
				s.loadStall = true
				if w.Diverged() {
					s.loadStallDiv = true
				}
			} else if !w.tab.Mask(tst.Ready).Empty() {
				// A READY subwarp waits for the select trigger policy to
				// fire: scheduler-induced idleness, charged to the
				// switch bucket.
				s.selecting = true
			}
			if !w.tab.Mask(tst.Blocked).Empty() {
				s.blocked = true
			}
		case classFetchWait:
			s.fetchWaiters++
		}
	}
	return s
}

// addIdle charges n idle cycles with the given classification. The
// Exposed*/BarrierStallCycles counters keep the paper's Fig. 3 metric;
// the Idle*Cycles buckets are the finer, mutually exclusive
// attribution (load > fetch > switch > barrier > no-warp) that
// stats.StallAttribution reports — they always sum to IdleCycles.
func (b *Block) addIdle(s idleSummary, n int64) {
	b.counters.IdleCycles += n
	b.counters.FetchStallCycles += s.fetchWaiters * n
	switch {
	case s.loadStall:
		b.counters.ExposedLoadStalls += n
		if s.loadStallDiv {
			b.counters.ExposedLoadStallsDivergent += n
		}
	case s.fetchWaiters > 0:
		b.counters.ExposedFetchStalls += n
	default:
		b.counters.BarrierStallCycles += n
	}
	switch {
	case s.loadStall:
		b.counters.IdleLoadCycles += n
	case s.fetchWaiters > 0:
		b.counters.IdleFetchCycles += n
	case s.selecting:
		b.counters.IdleSwitchCycles += n
	case s.blocked:
		b.counters.IdleBarrierCycles += n
	default:
		b.counters.IdleNoWarpCycles += n
	}
}

// retireExited recycles slots of exited warps for queued warps and
// marks the block done when nothing remains.
func (b *Block) retireExited() {
	for i, w := range b.warps {
		if w.exited && len(b.pending) > 0 {
			nw := b.materialize(b.pending[0])
			nw.slot = i
			b.warps[i] = nw
			b.pending = b.pending[1:]
			b.dirty[i] = true
		}
	}
	if len(b.pending) == 0 && b.liveWarps() == 0 {
		b.done = true
	}
}

// parkedSubwarps counts stalled subwarp groups across all resident
// warps — the warp-slot footprint of DWS splits.
func (b *Block) parkedSubwarps() int {
	n := 0
	for _, w := range b.warps {
		if !w.exited {
			n += w.tab.StalledSubwarps()
		}
	}
	return n
}

// freeSlots is the number of unoccupied warp slots in the block.
func (b *Block) freeSlots() int {
	free := b.cfg.WarpSlotsPerBlock - b.liveWarps()
	if free < 0 {
		free = 0
	}
	return free
}

// nextEventTime returns the earliest future time the block's state can
// change without issuing: a writeback, a select completion, or an
// instruction fetch fill.
func (b *Block) nextEventTime() int64 {
	next := int64(math.MaxInt64)
	if len(b.events) > 0 && b.events[0].at < next {
		next = b.events[0].at
	}
	for _, w := range b.warps {
		if w.exited {
			continue
		}
		if w.pendingSelect && w.selectDoneAt < next {
			next = w.selectDoneAt
		}
		if w.fetchingLine != math.MaxUint64 && w.fetchReadyAt < next {
			next = w.fetchReadyAt
		}
	}
	return next
}
