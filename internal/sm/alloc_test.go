package sm

import (
	"testing"

	"subwarpsim/internal/bits"
	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
)

// allocSM builds a single-SM setup with warps admitted but not yet run,
// so allocation tests and benchmarks can drive Block.step by hand.
func allocSM(tb testing.TB, cfg config.Config, prog *isa.Program, warps int) *SM {
	tb.Helper()
	k := &Kernel{Program: prog, NumWarps: warps, WarpsPerCTA: warps, Memory: mem.NewMemory()}
	s, err := NewSM(0, cfg, k)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < warps; i++ {
		s.Admit(i, i, 0, i)
	}
	return s
}

// loadLoop is a kernel dominated by scoreboarded global loads with
// load-to-use consumers: one 128-byte line per lane, alternating
// scoreboards so issue and writeback interleave.
func loadLoop(n int) *isa.Program {
	b := isa.NewBuilder("loadloop")
	b.S2R(0, isa.SRLaneID)
	b.Shl(1, 0, 7) // lane * 128: one line per lane
	for i := 0; i < n; i++ {
		sb := i % 2
		b.Ldg(2, 1, int32(i*4), sb)
		b.Iadd(3, 3, 2).Req(sb)
	}
	return b.Exit().MustBuild()
}

// TestBlockStepSteadyStateZeroAlloc pins the tentpole's core claim:
// once warmed up, a cycle of the scheduler loop on an ALU-only kernel
// performs zero heap allocations — under every scheduler policy, since
// policies are stateless singletons whose Pick must not allocate.
func TestBlockStepSteadyStateZeroAlloc(t *testing.T) {
	for p := config.SchedPolicy(0); int(p) < config.NumSchedPolicies; p++ {
		t.Run(p.String(), func(t *testing.T) {
			cfg := testConfig()
			cfg.SchedPolicy = p
			s := allocSM(t, cfg, straightLine(20000), 4)
			blk := s.blocks[0]
			now := int64(0)
			for ; now < 512; now++ {
				blk.step(now)
			}
			avg := testing.AllocsPerRun(200, func() {
				blk.step(now)
				now++
			})
			if avg != 0 {
				t.Fatalf("steady-state Block.step allocates %.1f times per cycle, want 0", avg)
			}
			if blk.done {
				t.Fatal("kernel finished inside the measured window; enlarge the program")
			}
		})
	}
}

// TestLoadPathZeroAlloc covers the LDG issue path end to end — line
// coalescing, L1D probes, writeback event scheduling, and event
// drain — at steady state.
func TestLoadPathZeroAlloc(t *testing.T) {
	s := allocSM(t, testConfig(), loadLoop(4000), 2)
	blk := s.blocks[0]
	now := int64(0)
	// Warm up past slice growth: event queue high-water mark, scratch
	// buffers, and the L1D's steady miss/hit mix.
	for ; now < 4096; now++ {
		blk.step(now)
	}
	avg := testing.AllocsPerRun(500, func() {
		blk.step(now)
		now++
	})
	if avg != 0 {
		t.Fatalf("steady-state load path allocates %.1f times per cycle, want 0", avg)
	}
	if blk.done {
		t.Fatal("kernel finished inside the measured window; enlarge the program")
	}
}

// TestWritebackDrainZeroAlloc isolates the event-queue push/pop plus
// applyWriteback path: scheduling and draining a full warp's writebacks
// must not allocate once the queue's backing array has grown.
func TestWritebackDrainZeroAlloc(t *testing.T) {
	s := allocSM(t, testConfig(), loadLoop(4), 1)
	blk := s.blocks[0]
	w := blk.warps[0]
	now := int64(100)
	avg := testing.AllocsPerRun(200, func() {
		w.sb.Inc(bits.FullMask, 0)
		for lane := 0; lane < bits.WarpSize; lane++ {
			blk.events.push(wbEvent{
				at: now, warp: w, lane: lane,
				reg: 2, sbid: 0, kind: wbLoad, addr: uint64(lane * 128),
			})
		}
		blk.drainEvents(now)
	})
	if avg != 0 {
		t.Fatalf("writeback schedule+drain allocates %.1f times per warp, want 0", avg)
	}
}

// TestCompiledSteadyStateZeroAlloc pins the compiled engine's
// steady-state loop exactly as RunContext drives it — scheduler step,
// fast-forward horizon computation, bulk commit — at zero heap
// allocations per iteration, and pins the interpreted engine
// (Compiled=false) separately so neither escape hatch regresses.
func TestCompiledSteadyStateZeroAlloc(t *testing.T) {
	t.Run("compiled-ff", func(t *testing.T) {
		cfg := testConfig()
		if !cfg.Compiled {
			t.Fatal("default config no longer selects the compiled engine")
		}
		s := allocSM(t, cfg, straightLine(100000), 4)
		if s.ffLen == nil {
			t.Fatal("compiled config did not install fast-forward tables")
		}
		blk := s.blocks[0]
		now := int64(0)
		ffWindows := 0
		cycle := func() {
			issued, next := blk.step(now)
			if h := s.ffHorizon(now, next, issued); h > now+1 {
				if blk.lastPick >= 0 {
					blk.ffCommit(h-now-1, h)
				} else {
					blk.skipIdle(h-now-1, h)
				}
				ffWindows++
				now = h
			} else {
				now++
			}
		}
		for i := 0; i < 512; i++ {
			cycle()
		}
		if ffWindows == 0 {
			t.Fatal("fast-forward never engaged during warmup; the pin is vacuous")
		}
		avg := testing.AllocsPerRun(200, cycle)
		if avg != 0 {
			t.Fatalf("compiled steady-state loop allocates %.1f times per iteration, want 0", avg)
		}
		if blk.done {
			t.Fatal("kernel finished inside the measured window; enlarge the program")
		}
	})
	t.Run("interpreted", func(t *testing.T) {
		cfg := testConfig()
		cfg.Compiled = false
		s := allocSM(t, cfg, straightLine(20000), 4)
		if s.cops != nil || s.ffLen != nil {
			t.Fatal("interpreted config unexpectedly installed compiled state")
		}
		blk := s.blocks[0]
		now := int64(0)
		for ; now < 512; now++ {
			blk.step(now)
		}
		avg := testing.AllocsPerRun(200, func() {
			blk.step(now)
			now++
		})
		if avg != 0 {
			t.Fatalf("interpreted steady-state Block.step allocates %.1f times per cycle, want 0", avg)
		}
		if blk.done {
			t.Fatal("kernel finished inside the measured window; enlarge the program")
		}
	})
}

// TestBudgetedSteadyStateZeroAlloc pins the gas meter's hot-loop
// contract: with a budget attached, the per-iteration work RunContext
// adds — budgetExceeded plus clampBudgetHorizon on every fast-forward
// window — must stay allocation-free until the kill actually fires
// (only the terminal *BudgetError may allocate).
func TestBudgetedSteadyStateZeroAlloc(t *testing.T) {
	cfg := testConfig()
	s := allocSM(t, cfg, straightLine(100000), 4)
	s.budget = &Budget{MaxCycles: 1 << 40, MaxInstrs: 1 << 40, MaxMemBytes: 1 << 40}
	blk := s.blocks[0]
	now := int64(0)
	cycle := func() {
		if be := s.budgetExceeded(now); be != nil {
			t.Fatalf("generous budget killed the run: %v", be)
		}
		issued, next := blk.step(now)
		h := s.ffHorizon(now, next, issued)
		if h > now+1 {
			h = s.clampBudgetHorizon(now, h)
		}
		if h > now+1 {
			if blk.lastPick >= 0 {
				blk.ffCommit(h-now-1, h)
			} else {
				blk.skipIdle(h-now-1, h)
			}
			now = h
		} else {
			now++
		}
	}
	for i := 0; i < 512; i++ {
		cycle()
	}
	avg := testing.AllocsPerRun(200, cycle)
	if avg != 0 {
		t.Fatalf("budgeted steady-state loop allocates %.1f times per iteration, want 0", avg)
	}
	if blk.done {
		t.Fatal("kernel finished inside the measured window; enlarge the program")
	}
}

// BenchmarkBlockStep measures one scheduler cycle on an ALU-dense
// multi-warp block (the simulator's innermost loop).
func BenchmarkBlockStep(b *testing.B) {
	cfg := testConfig()
	prog := straightLine(2000)
	s := allocSM(b, cfg, prog, 8)
	blk := s.blocks[0]
	now := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if blk.done {
			b.StopTimer()
			s = allocSM(b, cfg, prog, 8)
			blk = s.blocks[0]
			now = 0
			b.StartTimer()
		}
		blk.step(now)
		now++
	}
}

// BenchmarkExecuteLoad measures a full-warp LDG issue (32 lanes, one
// line each) plus the drain of its 32 writeback events.
func BenchmarkExecuteLoad(b *testing.B) {
	cfg := testConfig()
	s := allocSM(b, cfg, loadLoop(4), 1)
	blk := s.blocks[0]
	w := blk.warps[0]
	for lane := 0; lane < bits.WarpSize; lane++ {
		w.regs[lane][1] = uint32(lane * 128)
	}
	in := isa.MakeInstr(isa.LDG)
	in.Dst, in.SrcA, in.WrScbd = 2, 1, 0
	now := int64(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.execute(w, in, now)
		blk.drainEvents(now + 1_000_000)
		now += 4
	}
}

// TestServingConfigZeroAlloc pins the observability plane's hot-loop
// contract: the configuration the obs-enabled daemon hands to each job
// (cfg.Trace == nil — spans, metrics, and logs all live above the
// simulator) must keep the steady-state scheduler cycle allocation-free,
// with and without SI. If an observability hook ever reaches into
// Block.step, this trips.
func TestServingConfigZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  config.Config
	}{
		{"baseline", testConfig()},
		{"si", testConfig().WithSI(true, config.TriggerHalfStalled)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.Trace != nil {
				t.Fatal("serving configs must not attach an event recorder")
			}
			s := allocSM(t, tc.cfg, loadLoop(4000), 4)
			blk := s.blocks[0]
			now := int64(0)
			for ; now < 4096; now++ {
				blk.step(now)
			}
			avg := testing.AllocsPerRun(500, func() {
				blk.step(now)
				now++
			})
			if avg != 0 {
				t.Fatalf("serving-config Block.step allocates %.1f times per cycle, want 0", avg)
			}
			if blk.done {
				t.Fatal("kernel finished inside the measured window; enlarge the program")
			}
		})
	}
}
