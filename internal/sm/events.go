package sm

// eventQueue is the block's pending-writeback queue: a binary min-heap
// of wbEvent values ordered by due time.
//
// It replaces container/heap on the per-cycle hot path: the generic
// heap API moves every element through an `any`, which boxes the
// 48-byte wbEvent on push AND on pop — two heap allocations per
// scheduled writeback (one per load lane). The inlined value-typed
// implementation below never boxes, so steady-state push/pop is
// allocation-free once the backing slice has grown to the workload's
// high-water mark.
//
// Correctness constraint: pop order must be BIT-IDENTICAL to what
// container/heap produced, including for events with equal due times —
// same-cycle writebacks to the same lane/register apply in queue pop
// order, and trace streams record that order. The sift-up and
// sift-down loops therefore mirror container/heap's up/down exactly
// (strict-less comparisons, left-child preference on ties, pop via
// swap-to-end then sift over the shortened prefix); events_test.go
// keeps a differential test against container/heap as the guard rail.
type eventQueue []wbEvent

// push inserts ev, maintaining the heap invariant.
func (q *eventQueue) push(ev wbEvent) {
	h := append(*q, ev)
	// Sift up, mirroring container/heap.up: stop when the child is not
	// strictly less than its parent.
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2 // parent
		if h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	*q = h
}

// pop removes and returns the minimum event. It must only be called on
// a non-empty queue (callers gate on len > 0, exactly as the
// container/heap version did).
func (q *eventQueue) pop() wbEvent {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	// Sift down over h[0:n], mirroring container/heap.down: prefer the
	// left child unless the right is strictly less, stop when neither
	// child is strictly less than the parent.
	i := 0
	for {
		j := 2*i + 1 // left child
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].at < h[j].at {
			j = j2
		}
		if h[i].at <= h[j].at {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	ev := h[n]
	*q = h[:n]
	return ev
}
