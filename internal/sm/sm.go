package sm

import (
	"context"
	"fmt"
	"math"
	"strings"

	"subwarpsim/internal/bits"
	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/rtcore"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/tst"
)

// Kernel is one launch: a program, its warp count, and the functional
// resources it executes against.
type Kernel struct {
	Program *isa.Program
	// NumWarps is the total warps in the launch; warps beyond the
	// occupancy limit queue for freed slots (persistent waves).
	NumWarps int
	// WarpsPerCTA sizes the cooperative thread array for S2R special
	// registers.
	WarpsPerCTA int
	// Memory is the functional global/texture backing store.
	Memory *mem.Memory
	// BVH and RayGen configure the RT core; nil unless the program uses
	// TRACE.
	BVH    *rtcore.BVH
	RayGen rtcore.RayGen
	// Budget, when non-nil, gas-meters the launch: each SM independently
	// enforces the limits and kills the run with a *BudgetError at a
	// deterministic point (see Budget). Nil means unmetered.
	Budget *Budget
}

// CTASize returns threads per CTA.
func (k *Kernel) CTASize() int { return k.WarpsPerCTA * bits.WarpSize }

// Validate reports the first kernel configuration error.
func (k *Kernel) Validate() error {
	if k.Program == nil {
		return fmt.Errorf("sm: kernel has no program")
	}
	if err := k.Program.Validate(); err != nil {
		return err
	}
	if k.NumWarps <= 0 {
		return fmt.Errorf("sm: kernel %q has no warps", k.Program.Name)
	}
	if k.WarpsPerCTA <= 0 {
		return fmt.Errorf("sm: kernel %q has non-positive WarpsPerCTA", k.Program.Name)
	}
	if k.Memory == nil {
		return fmt.Errorf("sm: kernel %q has no memory", k.Program.Name)
	}
	usesTrace := false
	for _, in := range k.Program.Code {
		if in.Op == isa.TRACE {
			usesTrace = true
			break
		}
	}
	if usesTrace && (k.BVH == nil || k.RayGen == nil) {
		return fmt.Errorf("sm: kernel %q uses TRACE but has no BVH/RayGen", k.Program.Name)
	}
	if maxSB := k.Program.MaxScoreboard(); maxSB >= 0 {
		// Scoreboard IDs must fit the per-warp file; checked at launch
		// against the configured NSB.
		_ = maxSB
	}
	return nil
}

// SM is one streaming multiprocessor: processing blocks sharing an L1
// instruction cache, an L1 data cache, and an RT core.
type SM struct {
	id     int
	cfg    config.Config
	prog   *isa.Program
	kernel *Kernel

	l1i    *mem.Cache
	l1d    *mem.Cache
	rt     *rtcore.Core
	blocks []*Block

	// cops is the program's pre-decoded operation stream when
	// cfg.Compiled is set (nil in interpreted mode); blocks dispatch
	// through it instead of decoding each cycle. ffLen enables
	// basic-block fast-forward: per-PC simple-run lengths, nil when
	// fast-forward is off (interpreted mode, or a trace recorder is
	// attached — compiled dispatch then still runs cycle by cycle so
	// the event stream is produced exactly).
	cops  []isa.COp
	ffLen []int32

	// mem is the SM's private copy-on-write view of the kernel's
	// functional memory image; it is what makes SMs safe to simulate
	// concurrently (see mem.View).
	mem *mem.View
	// deferPublish suppresses the automatic view publication at the end
	// of Run; gpu.Run sets it and publishes every SM's view itself, in
	// SM order, after all SMs finish.
	deferPublish bool

	// budget is the kernel's gas limit (nil when unmetered); checked at
	// the top of each RunContext iteration, never inside Block.step.
	budget *Budget
}

// NewSM builds an SM for the given kernel. The configuration must be
// valid (see config.Config.Validate).
func NewSM(id int, cfg config.Config, kernel *Kernel) (*SM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := kernel.Validate(); err != nil {
		return nil, err
	}
	if maxSB := kernel.Program.MaxScoreboard(); maxSB >= cfg.ScoreboardsPerWarp {
		return nil, fmt.Errorf("sm: program %q uses sb%d but config has %d scoreboards/warp",
			kernel.Program.Name, maxSB, cfg.ScoreboardsPerWarp)
	}
	s := &SM{
		id:     id,
		cfg:    cfg,
		prog:   kernel.Program,
		kernel: kernel,
		l1i:    mem.NewCache("L1I", cfg.L1InstrBytes, 8, cfg.CacheLineBytes),
		l1d:    mem.NewCache("L1D", cfg.L1DataBytes, 8, cfg.CacheLineBytes),
		mem:    kernel.Memory.NewView(),
	}
	if kernel.Budget.Enabled() {
		s.budget = kernel.Budget
	}
	if kernel.BVH != nil && kernel.RayGen != nil {
		s.rt = rtcore.NewCore(kernel.BVH, kernel.RayGen,
			int64(cfg.RTBaseLatency), int64(cfg.RTStepLatency))
	}
	if cfg.Compiled {
		cp := kernel.Program.Compiled()
		s.cops = cp.Ops
		if cfg.Trace == nil {
			if cfg.SI.Enabled && cfg.SI.Yield {
				s.ffLen = cp.FFLen
			} else {
				// YIELD is architecturally inert in this configuration, so
				// it may sit inside fast-forward runs.
				s.ffLen = cp.FFLenYieldInert
			}
		}
	}
	for b := 0; b < cfg.BlocksPerSM; b++ {
		s.blocks = append(s.blocks, newBlock(b, cfg, s))
	}
	return s, nil
}

// ResidentWarpsPerBlock returns the occupancy limit: warp slots capped
// by register-file pressure (Section II-B), at least one.
func (s *SM) ResidentWarpsPerBlock() int {
	regsPerWarp := s.prog.RegsPerThread * bits.WarpSize
	byRegs := s.cfg.RegFilePerBlock / regsPerWarp
	n := s.cfg.WarpSlotsPerBlock
	if byRegs < n {
		n = byRegs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Admit assigns a warp to one of the SM's blocks (round-robin by
// sequence number).
func (s *SM) Admit(seq int, id, ctaID, warpInCTA int) {
	blk := s.blocks[seq%len(s.blocks)]
	blk.admit(warpSpec{id: id, ctaID: ctaID, warpInCTA: warpInCTA}, s.ResidentWarpsPerBlock())
}

// Blocks exposes the SM's processing blocks (for tests/inspection).
func (s *SM) Blocks() []*Block { return s.blocks }

// DeferMemoryPublish suppresses the automatic publication of the SM's
// memory view when Run finishes. gpu.Run uses it to run SMs
// concurrently and then publish every view itself in SM order, keeping
// the final memory image deterministic.
func (s *SM) DeferMemoryPublish() { s.deferPublish = true }

// PublishMemory folds the SM's private stores into the kernel's shared
// memory image. It must not race with other SMs still simulating or
// publishing against the same image.
func (s *SM) PublishMemory() { s.mem.Publish() }

// Run simulates until every admitted warp completes or maxCycles
// elapses, returning the merged per-block counters. It is shorthand
// for RunContext with a background context.
func (s *SM) Run(maxCycles int64) (stats.Counters, error) {
	return s.RunContext(context.Background(), maxCycles)
}

// cancelCheckStride bounds how many simulated cycles may elapse
// between context-cancellation checks: frequent enough that a
// cancelled simulation returns within microseconds of wall time, rare
// enough that the per-cycle hot loop never touches the context.
const cancelCheckStride = 4096

// RunContext simulates until every admitted warp completes, maxCycles
// elapses, or ctx is cancelled, returning the merged per-block
// counters. The run loop steps all blocks in lock-step and
// fast-forwards through provably idle regions to the next scheduled
// event; cancellation is observed at least every cancelCheckStride
// loop iterations, so a cancelled run returns promptly with
// ctx.Err() wrapped in the error.
//
// The SM executes loads and stores against its private copy-on-write
// view of the kernel memory; unless DeferMemoryPublish was called, the
// view is published to the shared image when Run returns (including on
// error or cancellation, matching how far the simulation got).
func (s *SM) RunContext(ctx context.Context, maxCycles int64) (stats.Counters, error) {
	if !s.deferPublish {
		defer s.mem.Publish()
	}
	for _, blk := range s.blocks {
		if len(blk.warps) == 0 && len(blk.pending) == 0 {
			blk.done = true
		}
	}
	if err := ctx.Err(); err != nil {
		return s.merge(), fmt.Errorf("sm %d: cancelled before cycle 0: %w", s.id, err)
	}
	now := int64(0)
	sinceCheck := 0
	for {
		if sinceCheck++; sinceCheck >= cancelCheckStride {
			sinceCheck = 0
			if err := ctx.Err(); err != nil {
				return s.merge(), fmt.Errorf("sm %d: cancelled at cycle %d: %w", s.id, now, err)
			}
		}
		if s.budget != nil {
			// Gas metering: checked before stepping so the kill point
			// depends only on committed simulation state, which is
			// bit-identical across engines and worker counts.
			if be := s.budgetExceeded(now); be != nil {
				return s.merge(), be
			}
		}
		allDone := true
		anyIssued := false
		next := int64(math.MaxInt64)
		for _, blk := range s.blocks {
			if blk.done {
				continue
			}
			allDone = false
			issued, n := blk.step(now)
			if issued {
				anyIssued = true
			}
			if n < next {
				next = n
			}
		}
		if allDone {
			break
		}
		switch {
		case anyIssued || next <= now+1:
			h := s.ffHorizon(now, next, anyIssued)
			if s.budget != nil && h > now+1 {
				// Shrink the window so no budget limit can be crossed
				// inside it; crossings then surface at stepped cycles,
				// identically in both engines (see clampBudgetHorizon).
				h = s.clampBudgetHorizon(now, h)
			}
			if h > now+1 {
				// Basic-block fast-forward: every issuing block retires its
				// warp's straight-line simple run in bulk and every idle
				// block accounts the same window as idle cycles; nothing
				// observable can occur before h (see compiled.go).
				gap := h - now - 1
				for _, blk := range s.blocks {
					if blk.done {
						continue
					}
					if blk.lastPick >= 0 {
						blk.ffCommit(gap, h)
					} else {
						blk.skipIdle(gap, h)
					}
				}
				now = h
			} else {
				now++
			}
		case next == math.MaxInt64:
			return s.merge(), &DeadlockError{SM: s.id, Cycle: now, State: s.dumpState()}
		default:
			// Cycles now+1 .. next-1 are provably idle everywhere.
			gap := next - now - 1
			for _, blk := range s.blocks {
				blk.skipIdle(gap, next)
			}
			now = next
		}
		if now > maxCycles {
			return s.merge(), fmt.Errorf("sm %d: exceeded %d cycles", s.id, maxCycles)
		}
	}
	return s.merge(), nil
}

func (s *SM) merge() stats.Counters {
	var total stats.Counters
	for _, blk := range s.blocks {
		total.Merge(blk.counters)
	}
	return total
}

// dumpState renders a per-warp diagnostic for deadlock reports.
func (s *SM) dumpState() string {
	var b strings.Builder
	for _, blk := range s.blocks {
		fmt.Fprintf(&b, "block %d (done=%v pending=%d):\n", blk.id, blk.done, len(blk.pending))
		for _, w := range blk.warps {
			if w.exited {
				fmt.Fprintf(&b, "  warp %d: exited\n", w.ID)
				continue
			}
			fmt.Fprintf(&b, "  warp %d: pc=%d active=%v ready=%v blocked=%v stalled=%v pendingSel=%v\n",
				w.ID, w.activePC, w.active,
				w.tab.Mask(tst.Ready), w.tab.Mask(tst.Blocked), w.tab.Mask(tst.Stalled),
				w.pendingSelect)
		}
	}
	return b.String()
}
