package sm

import "fmt"

// Budget resource names, as reported by BudgetError.Resource and used
// as the {resource=...} label of sisimd_budget_kills_total.
const (
	ResourceCycles       = "cycles"
	ResourceInstructions = "instructions"
	ResourceMemory       = "memory"
)

// Budget is a per-SM gas limit for untrusted kernels. Every SM of a
// launch enforces the same budget independently (per-SM enforcement is
// what keeps budget kills bit-identical for every worker count: no
// cross-SM coordination, and gpu.RunContext's deterministic epilogue
// picks the first over-budget SM in SM order). A zero field means that
// resource is unlimited; a nil *Budget disables metering entirely and
// costs the run loop one pointer check per iteration.
type Budget struct {
	// MaxCycles bounds simulated cycles: the run is killed at the first
	// scheduler iteration whose cycle exceeds it.
	MaxCycles int64
	// MaxInstrs bounds retired instructions summed across the SM's
	// processing blocks.
	MaxInstrs int64
	// MaxMemBytes bounds the memory footprint: distinct words stored by
	// the SM's view of the functional memory image, times 4 bytes.
	// It doubles as the submitted kernel's declared footprint, which
	// admission checks memory-operand immediates against statically.
	MaxMemBytes int64
}

// Enabled reports whether any resource is actually limited.
func (b *Budget) Enabled() bool {
	return b != nil && (b.MaxCycles > 0 || b.MaxInstrs > 0 || b.MaxMemBytes > 0)
}

// BudgetError reports a deterministic gas kill: which SM, which
// resource ran out, and the exact usage at the kill point. The same
// (config, program, workload, budget) always kills at the same point
// with the same counters, in both execution engines and for every
// worker count — the differential tests in internal/gpu pin this.
type BudgetError struct {
	SM       int
	Resource string // ResourceCycles, ResourceInstructions, ResourceMemory
	Limit    int64
	Used     int64
	Cycle    int64 // simulated cycle at which the kill was observed
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("sm %d: budget exhausted: %s used %d exceeds limit %d at cycle %d",
		e.SM, e.Resource, e.Used, e.Limit, e.Cycle)
}

// DeadlockError reports a structural deadlock: every resident warp is
// blocked on something that can never resolve (the canonical shape is
// two divergent paths waiting at different BSYNCs of one barrier).
// Like a budget kill it is deterministic and the submission's fault,
// not the simulator's, so serving layers map it to a client error.
type DeadlockError struct {
	SM    int
	Cycle int64
	// State is the per-warp diagnostic dump at the deadlock.
	State string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sm %d: deadlock at cycle %d\n%s", e.SM, e.Cycle, e.State)
}

// retired sums instructions retired so far across the SM's blocks.
// Bounded by BlocksPerSM (4 in the paper config), so the per-iteration
// budget check stays a handful of loads.
func (s *SM) retired() int64 {
	var n int64
	for _, blk := range s.blocks {
		n += blk.counters.IssuedInstrs
	}
	return n
}

// budgetExceeded checks every limited resource against the state at
// cycle now; it runs at the top of each RunContext iteration (never
// inside Block.step, keeping the zero-alloc hot loop untouched) and
// allocates only on the kill path.
//
// Determinism argument, per resource:
//
//   - cycles: the interpreter visits every cycle; the compiled engine
//     additionally jumps via fast-forward windows and idle skips. Idle
//     skips are taken identically by both engines (they are part of the
//     shared run loop), and clampBudgetHorizon caps fast-forward
//     windows at MaxCycles+1, so both engines observe the same first
//     now > MaxCycles.
//   - instructions: instruction counts only change at stepped cycles
//     and inside fast-forward commits. clampBudgetHorizon sizes windows
//     so a commit can never push the total past MaxInstrs (each issuing
//     block retires exactly one instruction per window cycle), so the
//     first over-budget total always appears at a stepped cycle — the
//     same cycle in both engines, by the engines' bit-identity.
//   - memory: stores execute only at stepped cycles (STG is never
//     fast-forward-simple), and clampBudgetHorizon refuses to open a
//     window while the footprint is over budget, so the kill is
//     observed at now = storeCycle+1 in both engines.
func (s *SM) budgetExceeded(now int64) *BudgetError {
	b := s.budget
	if b.MaxCycles > 0 && now > b.MaxCycles {
		return &BudgetError{SM: s.id, Resource: ResourceCycles,
			Limit: b.MaxCycles, Used: now, Cycle: now}
	}
	if b.MaxInstrs > 0 {
		if used := s.retired(); used > b.MaxInstrs {
			return &BudgetError{SM: s.id, Resource: ResourceInstructions,
				Limit: b.MaxInstrs, Used: used, Cycle: now}
		}
	}
	if b.MaxMemBytes > 0 {
		if used := int64(s.mem.Written()) * 4; used > b.MaxMemBytes {
			return &BudgetError{SM: s.id, Resource: ResourceMemory,
				Limit: b.MaxMemBytes, Used: used, Cycle: now}
		}
	}
	return nil
}

// clampBudgetHorizon caps a fast-forward window [now+1, h) so that no
// budget limit can be crossed inside it: crossings then happen only at
// stepped cycles, which both engines execute identically. Shortening a
// window is always semantically safe (any prefix of a valid inert
// window is a valid inert window); returning now+1 degrades to plain
// single-cycle advance.
func (s *SM) clampBudgetHorizon(now, h int64) int64 {
	b := s.budget
	if b.MaxCycles > 0 && h > b.MaxCycles+1 {
		h = b.MaxCycles + 1
	}
	if b.MaxInstrs > 0 {
		used := s.retired()
		if used > b.MaxInstrs {
			return now + 1
		}
		var issuing int64
		for _, blk := range s.blocks {
			if !blk.done && blk.lastPick >= 0 {
				issuing++
			}
		}
		if issuing > 0 {
			// Each issuing block retires exactly one instruction per window
			// cycle (ffCommit's accounting), so the window may cover at most
			// floor((MaxInstrs-used)/issuing) cycles before the total could
			// exceed the limit at the next stepped cycle.
			if cap := now + 1 + (b.MaxInstrs-used)/issuing; h > cap {
				h = cap
			}
		}
	}
	if b.MaxMemBytes > 0 && int64(s.mem.Written())*4 > b.MaxMemBytes {
		return now + 1
	}
	if h < now+1 {
		h = now + 1
	}
	return h
}
