package sm

import (
	"fmt"
	"math"

	"subwarpsim/internal/isa"
	"subwarpsim/internal/trace"
	"subwarpsim/internal/tst"
)

// Compiled execution: when cfg.Compiled is set, the SM executes the
// program's pre-decoded operation stream (isa.Compiled) through the
// function table below instead of re-decoding and switch-dispatching
// in execute() every cycle, and SM.RunContext retires eligible
// straight-line convergent regions in bulk (basic-block fast-forward,
// see ffRun/ffCommit). Both paths are required to be bit-identical to
// the interpreter — counters, memory, and trace streams — which the
// compiled differential and fuzz suites enforce.

// compiledExec dispatches one pre-decoded operation. The hot ALU
// classes read only COp fields; the rare classes with elaborate
// semantics (loads, ray tracing, control flow) delegate to the
// interpreter's arms with the original instruction so the two modes
// share one implementation.
var compiledExec = [isa.NumExecClasses]func(*Block, *Warp, *isa.COp, int64){
	isa.ExecNOP:    execCNop,
	isa.ExecMOVI:   execCMovi,
	isa.ExecMOV:    execCMov,
	isa.ExecS2R:    execCS2r,
	isa.ExecIADD:   execCIadd,
	isa.ExecIADDI:  execCIaddi,
	isa.ExecIMUL:   execCImul,
	isa.ExecIMULI:  execCImuli,
	isa.ExecIAND:   execCIand,
	isa.ExecIOR:    execCIor,
	isa.ExecIXOR:   execCIxor,
	isa.ExecSHL:    execCShl,
	isa.ExecSHR:    execCShr,
	isa.ExecISETP:  execCIsetp,
	isa.ExecISETPI: execCIsetpi,
	isa.ExecFADD:   execCFadd,
	isa.ExecFMUL:   execCFmul,
	isa.ExecFFMA:   execCFfma,
	isa.ExecMUFU:   execCMufu,
	isa.ExecLOAD:   execCLoad,
	isa.ExecSTG:    execCStg,
	isa.ExecTRACE:  execCTrace,
	isa.ExecBRA:    execCBra,
	isa.ExecBRX:    execCBrx,
	isa.ExecBSSY:   execCBssy,
	isa.ExecBSYNC:  execCBsync,
	isa.ExecYIELD:  execCYield,
	isa.ExecEXIT:   execCExit,
}

// executeCompiled is the compiled-mode twin of execute(): identical
// issue bookkeeping, then table dispatch on the pre-decoded stream.
func (b *Block) executeCompiled(w *Warp, now int64) {
	mask := w.active
	if mask.Empty() {
		panic("sm: execute with empty active mask")
	}
	b.counters.IssuedInstrs++
	b.counters.ActiveThreads += int64(mask.Count())
	op := &b.cops[w.activePC]
	if b.rec != nil {
		b.emit(now, w, w.activePC, mask, trace.KindIssue, int(op.Op))
	}
	compiledExec[op.Exec](b, w, op, now)
}

func execCNop(b *Block, w *Warp, op *isa.COp, now int64) {
	w.setActivePCs(w.activePC + 1)
}

func execCMovi(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		w.regs[it.Lowest()][op.Dst] = uint32(op.Imm)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCMov(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA]
	}
	w.setActivePCs(w.activePC + 1)
}

func execCS2r(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.special(int(op.SrcA), l)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCIadd(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] + w.regs[l][op.SrcB]
	}
	w.setActivePCs(w.activePC + 1)
}

func execCIaddi(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] + uint32(op.Imm)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCImul(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] * w.regs[l][op.SrcB]
	}
	w.setActivePCs(w.activePC + 1)
}

func execCImuli(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] * uint32(op.Imm)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCIand(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] & w.regs[l][op.SrcB]
	}
	w.setActivePCs(w.activePC + 1)
}

func execCIor(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] | w.regs[l][op.SrcB]
	}
	w.setActivePCs(w.activePC + 1)
}

func execCIxor(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] ^ w.regs[l][op.SrcB]
	}
	w.setActivePCs(w.activePC + 1)
}

func execCShl(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] << op.Sh
	}
	w.setActivePCs(w.activePC + 1)
}

func execCShr(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.regs[l][op.Dst] = w.regs[l][op.SrcA] >> op.Sh
	}
	w.setActivePCs(w.activePC + 1)
}

func execCIsetp(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.preds[l][op.Dst] = op.Cmp.Eval(int32(w.regs[l][op.SrcA]), int32(w.regs[l][op.SrcB]))
	}
	w.setActivePCs(w.activePC + 1)
}

func execCIsetpi(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		w.preds[l][op.Dst] = op.Cmp.Eval(int32(w.regs[l][op.SrcA]), op.Imm)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCFadd(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		a := math.Float32frombits(w.regs[l][op.SrcA])
		x := math.Float32frombits(w.regs[l][op.SrcB])
		w.regs[l][op.Dst] = math.Float32bits(a + x)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCFmul(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		a := math.Float32frombits(w.regs[l][op.SrcA])
		x := math.Float32frombits(w.regs[l][op.SrcB])
		w.regs[l][op.Dst] = math.Float32bits(a * x)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCFfma(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		a := math.Float32frombits(w.regs[l][op.SrcA])
		x := math.Float32frombits(w.regs[l][op.SrcB])
		c := math.Float32frombits(w.regs[l][op.SrcC])
		w.regs[l][op.Dst] = math.Float32bits(a*x + c)
	}
	w.setActivePCs(w.activePC + 1)
}

func execCMufu(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		x := math.Float32frombits(w.regs[l][op.SrcA])
		w.regs[l][op.Dst] = math.Float32bits(float32(1 / math.Sqrt(math.Abs(float64(x))+1)))
	}
	w.setActivePCs(w.activePC + 1)
}

func execCLoad(b *Block, w *Warp, op *isa.COp, now int64) {
	b.executeLoad(w, b.sm.prog.Code[w.activePC], now)
}

func execCStg(b *Block, w *Warp, op *isa.COp, now int64) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		addr := uint64(w.regs[l][op.SrcA]) + op.UImm
		b.sm.mem.Store(addr, w.regs[l][op.SrcB])
	}
	w.setActivePCs(w.activePC + 1)
}

func execCTrace(b *Block, w *Warp, op *isa.COp, now int64) {
	b.executeTrace(w, b.sm.prog.Code[w.activePC], now)
}

func execCBra(b *Block, w *Warp, op *isa.COp, now int64) {
	b.executeBranch(w, b.sm.prog.Code[w.activePC], now)
}

func execCBrx(b *Block, w *Warp, op *isa.COp, now int64) {
	b.executeBrx(w, b.sm.prog.Code[w.activePC], now)
}

func execCBssy(b *Block, w *Warp, op *isa.COp, now int64) {
	w.barriers[op.Barrier] = w.barriers[op.Barrier].Union(w.active)
	w.setActivePCs(w.activePC + 1)
}

func execCBsync(b *Block, w *Warp, op *isa.COp, now int64) {
	b.executeBsync(w, b.sm.prog.Code[w.activePC], now)
}

func execCYield(b *Block, w *Warp, op *isa.COp, now int64) {
	w.setActivePCs(w.activePC + 1)
	if b.cfg.SI.Enabled && b.cfg.SI.Yield && !w.tab.Mask(tst.Ready).Empty() {
		b.yield(w, now)
	}
}

func execCExit(b *Block, w *Warp, op *isa.COp, now int64) {
	mask := w.active
	if b.rec != nil {
		b.emit(now, w, w.activePC, mask, trace.KindExit, 0)
	}
	w.tab.Exit(mask)
	w.dropActive()
	w.checkExit()
	if !w.exited {
		b.releaseAfterExit(w, now)
	}
}

// ---- Basic-block fast-forward --------------------------------------
//
// After a lock-step cycle in which every non-done block either issued
// or is provably idle, SM.ffHorizon asks each block how many upcoming
// cycles are "inert": the issuing warp sits in a fast-forward-simple
// run (isa.Compiled.FFLen) confined to its already-fetched icache
// line, so for every cycle before the horizon
//
//   - the block's scheduler would re-pick the same warp (greedy
//     last-issued-first over frozen statuses),
//   - executing the op touches only that warp's registers, predicates,
//     or convergence-barrier masks — state no other warp, block, or
//     counter observes mid-run,
//   - no writeback, select completion, or fetch fill is due (the
//     horizon is capped by nextEventTime, which covers all three), and
//   - with SI enabled, no per-stepped-cycle policy action could fire:
//     no warp is scoreboard-stalled (demotion and its TSTOverflow
//     accounting re-run every stepped cycle) and subwarp-select would
//     not initiate on the frozen statuses (ffStable).
//
// Under those conditions ffCommit retires the whole window in one
// call with cycle-exact counters, and idle blocks account the same
// window through the existing skipIdle path. Fast-forward is disabled
// when a trace recorder is attached (SM.ffLen stays nil): compiled
// dispatch still runs, cycle by cycle, so trace streams are trivially
// identical.

// ffStable reports whether skipping stepped cycles is invisible to the
// block's SI policy state: no warp awaits a per-cycle demotion
// attempt, and subwarp-select cannot initiate on the frozen statuses.
// Always true with SI disabled (the baseline has no per-stepped-cycle
// policy actions).
func (b *Block) ffStable() bool {
	if !b.cfg.SI.Enabled {
		return true
	}
	stalled, live := 0, 0
	for i, w := range b.warps {
		if b.statuses[i] == classScbdWait {
			return false
		}
		if w.exited {
			continue
		}
		live++
		if b.statuses[i] == classNoActive {
			stalled++
		}
	}
	if !b.cfg.SI.Trigger.Satisfied(stalled, live) {
		return true
	}
	for i, w := range b.warps {
		if b.statuses[i] != classNoActive || w.pendingSelect {
			continue
		}
		if !w.tab.Mask(tst.Ready).Empty() {
			// maybeTriggerSelect would initiate on this warp next cycle
			// (one initiation per block per cycle), so cycles cannot be
			// skipped.
			return false
		}
	}
	return true
}

// ffRun returns how many consecutive cycles the block's last-issued
// warp can retire without any observable scheduling event: the length
// of the fast-forward-simple run at its PC, capped to the instructions
// remaining on its already-fetched icache line (crossing a line
// boundary requires the per-cycle fetch probe). Returns 0 when the
// warp is not simply advancing (exited, switched, diverted, or its
// next instruction needs a fetch or is not simple).
func (b *Block) ffRun() int64 {
	w := b.warps[b.lastPick]
	if w.exited || w.pendingSelect || w.active.Empty() || w.fetchingLine != math.MaxUint64 {
		return 0
	}
	pc := w.activePC
	run := int64(b.ffLen[pc])
	if run == 0 {
		return 0
	}
	ib := uint64(b.cfg.InstrBytes)
	lb := uint64(b.cfg.CacheLineBytes)
	line := uint64(pc) * ib / lb
	if line != w.fetchedLine {
		return 0
	}
	lastPC := int64(((line+1)*lb - 1) / ib)
	if left := lastPC - int64(pc) + 1; run > left {
		run = left
	}
	return run
}

// ffCommit retires gap cycles of the last-issued warp's simple run in
// one call, with exactly the counters cycle-by-cycle execution would
// have accrued: gap issue cycles, gap instructions, gap×|active|
// threads. Per-op PC writes are batched into one setActivePCs at the
// end — intermediate PCs are unobservable inside the window (no
// events, no tracing, no cross-warp reads). The warp stays dirty from
// its issue at the window's base cycle, so the first stepped cycle at
// the horizon re-classifies it as usual.
func (b *Block) ffCommit(gap, endCycle int64) {
	w := b.warps[b.lastPick]
	mask := w.active
	pc := w.activePC
	b.counters.IssueCycles += gap
	b.counters.IssuedInstrs += gap
	b.counters.ActiveThreads += gap * int64(mask.Count())
	for n := int64(0); n < gap; n++ {
		op := &b.cops[pc]
		switch op.Exec {
		case isa.ExecNOP, isa.ExecYIELD:
			// YIELD reaches a run only via FFLenYieldInert, selected when
			// the hint is architecturally inert.
		case isa.ExecMOVI:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				w.regs[it.Lowest()][op.Dst] = uint32(op.Imm)
			}
		case isa.ExecMOV:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA]
			}
		case isa.ExecS2R:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.special(int(op.SrcA), l)
			}
		case isa.ExecIADD:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] + w.regs[l][op.SrcB]
			}
		case isa.ExecIADDI:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] + uint32(op.Imm)
			}
		case isa.ExecIMUL:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] * w.regs[l][op.SrcB]
			}
		case isa.ExecIMULI:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] * uint32(op.Imm)
			}
		case isa.ExecIAND:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] & w.regs[l][op.SrcB]
			}
		case isa.ExecIOR:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] | w.regs[l][op.SrcB]
			}
		case isa.ExecIXOR:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] ^ w.regs[l][op.SrcB]
			}
		case isa.ExecSHL:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] << op.Sh
			}
		case isa.ExecSHR:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.regs[l][op.Dst] = w.regs[l][op.SrcA] >> op.Sh
			}
		case isa.ExecISETP:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.preds[l][op.Dst] = op.Cmp.Eval(int32(w.regs[l][op.SrcA]), int32(w.regs[l][op.SrcB]))
			}
		case isa.ExecISETPI:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				w.preds[l][op.Dst] = op.Cmp.Eval(int32(w.regs[l][op.SrcA]), op.Imm)
			}
		case isa.ExecFADD:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				a := math.Float32frombits(w.regs[l][op.SrcA])
				x := math.Float32frombits(w.regs[l][op.SrcB])
				w.regs[l][op.Dst] = math.Float32bits(a + x)
			}
		case isa.ExecFMUL:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				a := math.Float32frombits(w.regs[l][op.SrcA])
				x := math.Float32frombits(w.regs[l][op.SrcB])
				w.regs[l][op.Dst] = math.Float32bits(a * x)
			}
		case isa.ExecFFMA:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				a := math.Float32frombits(w.regs[l][op.SrcA])
				x := math.Float32frombits(w.regs[l][op.SrcB])
				c := math.Float32frombits(w.regs[l][op.SrcC])
				w.regs[l][op.Dst] = math.Float32bits(a*x + c)
			}
		case isa.ExecMUFU:
			for it := mask; !it.Empty(); it = it.DropLowest() {
				l := it.Lowest()
				x := math.Float32frombits(w.regs[l][op.SrcA])
				w.regs[l][op.Dst] = math.Float32bits(float32(1 / math.Sqrt(math.Abs(float64(x))+1)))
			}
		case isa.ExecBSSY:
			w.barriers[op.Barrier] = w.barriers[op.Barrier].Union(mask)
		default:
			panic(fmt.Sprintf("sm: non-simple op %v in fast-forward run", op.Op))
		}
		pc++
	}
	w.setActivePCs(pc)
	b.counters.Cycles = endCycle
}

// ffHorizon returns the exclusive upper bound of the window the SM may
// retire in bulk after the lock-step cycle at now: at most next (the
// earliest scheduled event anywhere), further capped by every issuing
// block's simple-run length. It returns now+1 — plain single-cycle
// advance — whenever fast-forward is off, nothing issued, or any block
// cannot guarantee an inert window.
func (s *SM) ffHorizon(now, next int64, anyIssued bool) int64 {
	if s.ffLen == nil || !anyIssued || next <= now+1 {
		return now + 1
	}
	h := next
	bounded := false
	for _, blk := range s.blocks {
		if blk.done {
			continue
		}
		if !blk.ffStable() {
			return now + 1
		}
		if blk.lastPick >= 0 {
			r := blk.ffRun()
			if r <= 0 {
				return now + 1
			}
			bounded = true
			if hh := now + 1 + r; hh < h {
				h = hh
			}
		}
	}
	if !bounded {
		// The issuing block(s) finished during this step (anyIssued came
		// from a block that is now done), so no run bounds the window;
		// fall back to single-cycle advance and let the normal loop
		// terminate or idle-skip.
		return now + 1
	}
	return h
}
