package sm

import (
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/tst"
)

// brxScatter builds a kernel whose BRX scatters interleaved lanes
// (lane % ways) over `ways` case bodies that reconverge at a barrier.
// Interleaved lanes make every group's mask non-contiguous, so any
// instability in executeBrx's grouping order would be visible.
func brxScatter(ways int) *isa.Program {
	b := isa.NewBuilder("brxscatter")
	b.S2R(0, isa.SRLaneID)
	b.Movi(1, int32(ways-1))
	b.Iand(1, 0, 1) // lane % ways (ways is a power of two)
	b.Bssy(0, "join")
	const caseLen = 3
	b.Imuli(1, 1, caseLen)
	caseBase := b.PC() + 2
	b.Iaddi(1, 1, int32(caseBase))
	b.Brx(1)
	for wy := 0; wy < ways; wy++ {
		b.Iaddi(2, 0, int32(wy+1))
		b.Bra("join")
		b.Nop() // pad to caseLen
	}
	b.Label("join")
	b.Bsync(0)
	return b.Exit().MustBuild()
}

// TestBrxSplinterOrderAscendingPC pins the contract the slice-based
// grouping in executeBrx must keep: groups reach splinter sorted by
// target PC ascending, so OrderTakenFirst activates the lowest target
// and OrderFallthroughFirst the highest, with the remaining groups
// parked READY.
func TestBrxSplinterOrderAscendingPC(t *testing.T) {
	for _, tc := range []struct {
		order   config.SubwarpOrder
		winCase int // index (by ascending target PC) of the expected winner
	}{
		{config.OrderTakenFirst, 0},
		{config.OrderFallthroughFirst, 3},
	} {
		cfg := testConfig()
		cfg.Order = tc.order
		s := allocSM(t, cfg, brxScatter(4), 1)
		blk := s.blocks[0]
		w := blk.warps[0]
		now := int64(0)
		// Step until the BRX has executed (warp diverges).
		for i := 0; i < 100 && w.tab.LiveSubwarps() == 1; i++ {
			blk.step(now)
			now++
		}
		if got := w.tab.LiveSubwarps(); got != 4 {
			t.Fatalf("order %v: LiveSubwarps = %d after BRX, want 4", tc.order, got)
		}
		// Case bodies are laid out in ascending-PC order and case wy
		// serves lanes with lane%4 == wy, so the winner's mask identifies
		// which ascending-PC group won the election.
		wantLane := tc.winCase
		if !w.active.Has(wantLane) {
			t.Errorf("order %v: active mask %v does not contain lane %d (ascending-PC group %d)",
				tc.order, w.active, wantLane, tc.winCase)
		}
		if n := w.active.Count(); n != 8 {
			t.Errorf("order %v: active group has %d lanes, want 8", tc.order, n)
		}
		if ready := w.tab.Mask(tst.Ready).Count(); ready != 24 {
			t.Errorf("order %v: READY lanes = %d, want 24", tc.order, ready)
		}
	}
}

// TestBrxDeterministicAcrossRuns is the splinter-order regression test:
// under OrderRandom and OrderLargestFirst — the policies whose winner
// depends on the order groups are presented in (rng draws, tie-breaks)
// — repeated runs of a multi-target BRX kernel must produce identical
// counters. The old map-iteration grouping only passed this because a
// trailing sort repaired the order; the slice grouping must keep it
// true by construction.
func TestBrxDeterministicAcrossRuns(t *testing.T) {
	for _, order := range []config.SubwarpOrder{
		config.OrderRandom, config.OrderLargestFirst,
	} {
		cfg := testConfig()
		cfg.Order = order
		base, _ := run(t, cfg, brxScatter(4), 6)
		for trial := 1; trial < 5; trial++ {
			got, _ := run(t, cfg, brxScatter(4), 6)
			if got != base {
				t.Fatalf("order %v trial %d: counters diverge across identical runs:\n  first %+v\n  now   %+v",
					order, trial, base, got)
			}
		}
	}
}
