package sm

import (
	"fmt"
	"math"

	"subwarpsim/internal/bits"
	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/trace"
	"subwarpsim/internal/tst"
)

// execute runs one instruction for the warp's active subwarp at cycle
// now, updating architectural state, scheduling writebacks, and
// applying divergence semantics.
func (b *Block) execute(w *Warp, in isa.Instr, now int64) {
	mask := w.active
	if mask.Empty() {
		panic("sm: execute with empty active mask")
	}
	b.counters.IssuedInstrs++
	b.counters.ActiveThreads += int64(mask.Count())
	pc := w.activePC
	if b.rec != nil {
		b.emit(now, w, pc, mask, trace.KindIssue, int(in.Op))
	}

	switch in.Op {
	case isa.NOP:
		w.setActivePCs(pc + 1)

	case isa.MOVI:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			w.regs[it.Lowest()][in.Dst] = uint32(in.Imm)
		}
		w.setActivePCs(pc + 1)

	case isa.MOV:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			w.regs[l][in.Dst] = w.regs[l][in.SrcA]
		}
		w.setActivePCs(pc + 1)

	case isa.S2R:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			w.regs[l][in.Dst] = w.special(int(in.SrcA), l)
		}
		w.setActivePCs(pc + 1)

	case isa.IADD, isa.IMUL, isa.IAND, isa.IOR, isa.IXOR,
		isa.FADD, isa.FMUL:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			w.regs[l][in.Dst] = alu2(in.Op, w.regs[l][in.SrcA], w.regs[l][in.SrcB])
		}
		w.setActivePCs(pc + 1)

	case isa.IADDI, isa.IMULI, isa.SHL, isa.SHR:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			w.regs[l][in.Dst] = aluImm(in.Op, w.regs[l][in.SrcA], in.Imm)
		}
		w.setActivePCs(pc + 1)

	case isa.FFMA:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			a := math.Float32frombits(w.regs[l][in.SrcA])
			x := math.Float32frombits(w.regs[l][in.SrcB])
			c := math.Float32frombits(w.regs[l][in.SrcC])
			w.regs[l][in.Dst] = math.Float32bits(a*x + c)
		}
		w.setActivePCs(pc + 1)

	case isa.MUFU:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			x := math.Float32frombits(w.regs[l][in.SrcA])
			w.regs[l][in.Dst] = math.Float32bits(float32(1 / math.Sqrt(math.Abs(float64(x))+1)))
		}
		w.setActivePCs(pc + 1)

	case isa.ISETP:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			w.preds[l][in.Dst] = in.Cmp.Eval(int32(w.regs[l][in.SrcA]), int32(w.regs[l][in.SrcB]))
		}
		w.setActivePCs(pc + 1)

	case isa.ISETPI:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			w.preds[l][in.Dst] = in.Cmp.Eval(int32(w.regs[l][in.SrcA]), in.Imm)
		}
		w.setActivePCs(pc + 1)

	case isa.LDG, isa.TLD, isa.TEX:
		b.executeLoad(w, in, now)

	case isa.STG:
		for it := mask; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			addr := uint64(w.regs[l][in.SrcA]) + uint64(uint32(in.Imm))
			b.sm.mem.Store(addr, w.regs[l][in.SrcB])
		}
		w.setActivePCs(pc + 1)

	case isa.TRACE:
		b.executeTrace(w, in, now)

	case isa.BRA:
		b.executeBranch(w, in, now)

	case isa.BRX:
		b.executeBrx(w, in, now)

	case isa.BSSY:
		w.barriers[in.Barrier] = w.barriers[in.Barrier].Union(mask)
		w.setActivePCs(pc + 1)

	case isa.BSYNC:
		b.executeBsync(w, in, now)

	case isa.YIELD:
		w.setActivePCs(pc + 1)
		if b.cfg.SI.Enabled && b.cfg.SI.Yield && !w.tab.Mask(tst.Ready).Empty() {
			b.yield(w, now)
		}

	case isa.EXIT:
		if b.rec != nil {
			b.emit(now, w, pc, mask, trace.KindExit, 0)
		}
		w.tab.Exit(mask)
		w.dropActive()
		w.checkExit()
		if !w.exited {
			b.releaseAfterExit(w, now)
		}

	default:
		panic(fmt.Sprintf("sm: cannot execute %v", in.Op))
	}
}

func alu2(op isa.Opcode, a, b uint32) uint32 {
	switch op {
	case isa.IADD:
		return a + b
	case isa.IMUL:
		return a * b
	case isa.IAND:
		return a & b
	case isa.IOR:
		return a | b
	case isa.IXOR:
		return a ^ b
	case isa.FADD:
		return math.Float32bits(math.Float32frombits(a) + math.Float32frombits(b))
	case isa.FMUL:
		return math.Float32bits(math.Float32frombits(a) * math.Float32frombits(b))
	default:
		panic("sm: not an alu2 op")
	}
}

func aluImm(op isa.Opcode, a uint32, imm int32) uint32 {
	switch op {
	case isa.IADDI:
		return a + uint32(imm)
	case isa.IMULI:
		return a * uint32(imm)
	case isa.SHL:
		return a << (uint32(imm) & 31)
	case isa.SHR:
		return a >> (uint32(imm) & 31)
	default:
		panic("sm: not an aluImm op")
	}
}

// executeLoad issues a global or texture load: per-thread addresses are
// coalesced into cache lines, each line probes the L1D backed by the
// fixed-latency stub, scoreboards increment per thread, and per-thread
// writeback events are scheduled for when each thread's line arrives.
func (b *Block) executeLoad(w *Warp, in isa.Instr, now int64) {
	mask := w.active
	sbid := int(in.WrScbd)
	w.sb.Inc(mask, sbid)
	if b.rec != nil {
		b.emit(now, w, w.activePC, mask, trace.KindScbdSet, sbid)
	}

	isTex := in.Op.IsTexPath()
	kind := wbLoad
	extra := int64(0)
	if isTex {
		kind = wbTex
		extra = int64(b.cfg.TexExtraLatency)
	}

	lineBytes := uint64(b.cfg.CacheLineBytes)
	// Dedup coalesced lines through the block-owned scratch slice: a warp
	// touches at most 32 lines per load, so a linear scan beats a map and
	// reuses the same backing array every instruction.
	lines := b.scratchLines[:0]
	for it := mask; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		addr := uint64(w.regs[l][in.SrcA]) + uint64(uint32(in.Imm))
		if in.Op == isa.TEX {
			addr += uint64(w.regs[l][in.SrcB])
		}
		line := addr / lineBytes * lineBytes
		ready, seen := int64(0), false
		for _, lf := range lines {
			if lf.line == line {
				ready, seen = lf.ready, true
				break
			}
		}
		if !seen {
			b.counters.L1DAccesses++
			b.counters.LinesFetched++
			r, hit := b.sm.l1d.Access(line, now, func(at int64) int64 {
				return at + int64(b.cfg.L1MissLatency)
			})
			if !hit {
				b.counters.L1DMisses++
			}
			if minReady := now + int64(b.cfg.L1DataHitLatency); r < minReady {
				r = minReady
			}
			ready = r
			lines = append(lines, lineFill{line: line, ready: r})
		}
		b.events.push(wbEvent{
			at: ready + extra, warp: w, lane: l,
			reg: in.Dst, sbid: in.WrScbd, kind: kind, addr: addr,
		})
	}
	b.scratchLines = lines

	w.setActivePCs(w.activePC + 1)
	b.afterLongOp(w, now)
}

// lineFill records one coalesced cache line's ready time within a
// single load instruction (scratch-slice replacement for a per-call
// map in executeLoad).
type lineFill struct {
	line  uint64
	ready int64
}

// executeTrace offloads a TraceRay per thread to the RT core; each
// thread's result returns after the core's modeled traversal latency.
func (b *Block) executeTrace(w *Warp, in isa.Instr, now int64) {
	if b.sm.rt == nil {
		panic(fmt.Sprintf("sm: kernel %q uses TRACE but provides no BVH/RayGen", b.sm.prog.Name))
	}
	mask := w.active
	w.sb.Inc(mask, int(in.WrScbd))
	if b.rec != nil {
		b.emit(now, w, w.activePC, mask, trace.KindScbdSet, int(in.WrScbd))
	}
	maxLat := int64(0)
	for it := mask; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		rayID := w.regs[l][in.SrcA]
		hit, lat := b.sm.rt.Trace(rayID)
		b.counters.RTTraces++
		b.counters.RTTraversalSteps += int64(hit.Steps)
		if lat > maxLat {
			maxLat = lat
		}
		val := uint32(0) // miss
		if hit.Ok {
			val = uint32(hit.Material + 1)
		}
		b.events.push(wbEvent{
			at: now + lat, warp: w, lane: l,
			reg: in.Dst, sbid: in.WrScbd, kind: wbTrace, val: val,
		})
	}
	if b.rec != nil {
		b.emit(now, w, w.activePC, mask, trace.KindRTStart, int(maxLat))
	}
	w.setActivePCs(w.activePC + 1)
	b.afterLongOp(w, now)
}

// afterLongOp applies the hardware subwarp-yield policy: after the
// active subwarp has issued YieldThreshold long-latency operations
// since activation, it eagerly yields its slot if another subwarp is
// READY (Section III-B).
func (b *Block) afterLongOp(w *Warp, now int64) {
	w.longOpsSinceActivation++
	if !b.cfg.SI.Enabled || !b.cfg.SI.Yield {
		return
	}
	if w.longOpsSinceActivation < b.cfg.SI.YieldThreshold {
		return
	}
	if w.tab.Mask(tst.Ready).Empty() {
		return
	}
	b.yield(w, now)
}

// yield performs subwarp-yield on the active subwarp.
func (b *Block) yield(w *Warp, now int64) {
	b.counters.SubwarpYields++
	if b.rec != nil {
		b.emit(now, w, w.activePC, w.active, trace.KindYield, 0)
	}
	w.tab.Yield(w.active)
	w.dropActive()
}

// subgroup is one PC-aligned set produced by a divergent branch.
type subgroup struct {
	mask bits.Mask
	pc   int
}

// executeBranch implements BRA with predicate-driven divergence.
func (b *Block) executeBranch(w *Warp, in isa.Instr, now int64) {
	mask := w.active
	var taken bits.Mask
	for it := mask; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		p := true
		if in.Pred != isa.PT {
			p = w.preds[l][in.Pred]
		}
		if in.PredNeg {
			p = !p
		}
		if p {
			taken = taken.Set(l)
		}
	}
	notTaken := mask.Minus(taken)

	switch {
	case notTaken.Empty():
		w.setActivePCs(in.Target)
	case taken.Empty():
		w.setActivePCs(w.activePC + 1)
	default:
		b.scratchGroups = append(b.scratchGroups[:0],
			subgroup{mask: taken, pc: in.Target},
			subgroup{mask: notTaken, pc: w.activePC + 1},
		)
		b.splinter(w, b.scratchGroups, true, now)
	}
}

// executeBrx implements the indirect branch that dispatches shader
// subroutines: active threads group by their per-thread target PC.
func (b *Block) executeBrx(w *Warp, in isa.Instr, now int64) {
	// Group lanes by target in ascending lane order via a linear scan
	// over the groups found so far (a warp produces at most 32 groups,
	// where a map would allocate per call), then insertion-sort by
	// target PC. Targets are distinct across groups, so the ascending-PC
	// order handed to splinter is exactly what the previous map+sort
	// implementation produced — group order feeds electWinner
	// (largest-first tie-breaks, random draws, fallthrough's last-group
	// pick), so it must not change.
	groups := b.scratchGroups[:0]
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		t := int(w.regs[l][in.SrcA])
		if t < 0 || t >= b.sm.prog.Len() {
			panic(fmt.Sprintf("sm: BRX target %d out of range in %q (warp %d lane %d)",
				t, b.sm.prog.Name, w.ID, l))
		}
		found := false
		for gi := range groups {
			if groups[gi].pc == t {
				groups[gi].mask = groups[gi].mask.Set(l)
				found = true
				break
			}
		}
		if !found {
			groups = append(groups, subgroup{mask: bits.LaneMask(l), pc: t})
		}
	}
	b.scratchGroups = groups
	if len(groups) == 1 {
		w.setActivePCs(groups[0].pc)
		return
	}
	for i := 1; i < len(groups); i++ {
		g := groups[i]
		j := i - 1
		for j >= 0 && groups[j].pc > g.pc {
			groups[j+1] = groups[j]
			j--
		}
		groups[j+1] = g
	}
	b.splinter(w, groups, false, now)
}

// splinter applies a divergent control-flow split: per-thread PCs move
// to their group targets, the activation-order policy elects one group
// to stay ACTIVE, and the rest transition to READY.
func (b *Block) splinter(w *Warp, groups []subgroup, isBRA bool, now int64) {
	b.counters.DivergentBranches++
	for _, g := range groups {
		for it := g.mask; !it.Empty(); it = it.DropLowest() {
			w.pcs[it.Lowest()] = g.pc
		}
	}
	win := b.electWinner(groups, isBRA)
	for i, g := range groups {
		if i == win {
			continue
		}
		for it := g.mask; !it.Empty(); it = it.DropLowest() {
			w.tab.SetState(it.Lowest(), tst.Ready)
		}
		if b.rec != nil {
			b.emit(now, w, g.pc, g.mask, trace.KindDivergeReady, len(groups))
		}
	}
	w.activate(groups[win].mask, groups[win].pc)
	if b.rec != nil {
		b.emit(now, w, groups[win].pc, groups[win].mask, trace.KindActivate, len(groups))
	}

	if live := int64(w.tab.LiveSubwarps()); live > b.counters.MaxLiveSubwarps {
		b.counters.MaxLiveSubwarps = live
	}
}

// electWinner picks which subgroup keeps executing per the configured
// activation order. For BRA, groups[0] is the taken path and groups[1]
// the fall-through; for BRX, groups arrive sorted by target PC.
func (b *Block) electWinner(groups []subgroup, isBRA bool) int {
	switch b.cfg.Order {
	case config.OrderFallthroughFirst:
		if isBRA {
			return 1
		}
		return len(groups) - 1
	case config.OrderLargestFirst:
		win := 0
		for i, g := range groups {
			if g.mask.Count() > groups[win].mask.Count() {
				win = i
			}
		}
		return win
	case config.OrderRandom:
		return b.rng.Intn(len(groups))
	default: // OrderTakenFirst
		return 0
	}
}

// switchAfterBlock performs the subwarp switch required when the
// active subwarp vacated its slot at a BSYNC or thread exit. The
// baseline's divergence handling unit does this for free; with SI that
// unit is replaced by the subwarp scheduler (Fig. 6), whose
// subwarp-select pays the fixed switch latency — Section III-B lists
// "an unsuccessful BSYNC" among the events that trigger subwarp-select.
func (b *Block) switchAfterBlock(w *Warp, now int64) {
	if !b.cfg.SI.Enabled {
		if w.selectImmediate() && b.rec != nil {
			b.emit(now, w, w.activePC, w.active, trace.KindActivate, 0)
		}
		return
	}
	if w.tab.Mask(tst.Ready).Empty() {
		return // wakeups will make the warp selectable via the policy
	}
	w.pendingSelect = true
	w.selectDoneAt = now + int64(b.cfg.SI.SwitchLatency)
	if b.rec != nil {
		b.emit(now, w, -1, 0, trace.KindSelectStart, b.cfg.SI.SwitchLatency)
	}
}

// executeBsync implements the convergence barrier wait: the arriving
// subwarp reconverges with the barrier's participants if everyone else
// is already blocked here or exited; otherwise it blocks and the
// divergence unit switches to a READY subwarp.
func (b *Block) executeBsync(w *Warp, in isa.Instr, now int64) {
	bar := int(in.Barrier)
	parts := w.barriers[bar]
	arrived := w.active
	if !parts.Contains(arrived) {
		panic(fmt.Sprintf("sm: BSYNC B%d by non-participant threads (warp %d pc %d)",
			bar, w.ID, w.activePC))
	}

	success := true
	for it := parts.Minus(arrived); !it.Empty(); it = it.DropLowest() {
		l := it.Lowest()
		switch w.tab.State(l) {
		case tst.Inactive:
		case tst.Blocked:
			if w.pcs[l] != w.activePC {
				success = false // blocked at a different (nested) barrier
			}
		default:
			success = false
		}
	}

	if success {
		blocked := parts.Intersect(w.tab.Mask(tst.Blocked))
		w.tab.Release(blocked)
		joined := arrived.Union(blocked)
		for it := joined; !it.Empty(); it = it.DropLowest() {
			w.pcs[it.Lowest()] = w.activePC + 1
		}
		w.activate(joined, w.activePC+1)
		w.barriers[bar] = 0
		b.counters.Reconvergences++
		if b.rec != nil {
			b.emit(now, w, w.activePC, joined, trace.KindReconverge, bar)
			b.emit(now, w, w.activePC, joined, trace.KindActivate, bar)
		}
		return
	}

	w.tab.Block(arrived)
	w.dropActive()
	if b.rec != nil {
		b.emit(now, w, w.activePC, arrived, trace.KindBarrierBlock, bar)
	}
	b.switchAfterBlock(w, now)
}

// releaseAfterExit handles threads blocked at a BSYNC whose remaining
// participants have all exited: the barrier is now satisfied but nobody
// will execute the BSYNC again, so the divergence unit releases them.
// If no barrier released, it falls back to selecting a READY subwarp.
func (b *Block) releaseAfterExit(w *Warp, now int64) {
	blocked := w.tab.Mask(tst.Blocked)
	for bar := 0; bar < isa.NumBarriers; bar++ {
		parts := w.barriers[bar]
		waiting := parts.Intersect(blocked)
		if waiting.Empty() {
			continue
		}
		satisfied := true
		pc := -1
		for it := parts; !it.Empty(); it = it.DropLowest() {
			l := it.Lowest()
			switch w.tab.State(l) {
			case tst.Inactive:
			case tst.Blocked:
				if pc == -1 {
					pc = w.pcs[l]
				} else if w.pcs[l] != pc {
					satisfied = false
				}
			default:
				satisfied = false
			}
		}
		if !satisfied || pc < 0 {
			continue
		}
		w.tab.Release(waiting)
		for it := waiting; !it.Empty(); it = it.DropLowest() {
			w.pcs[it.Lowest()] = pc + 1
		}
		w.activate(waiting, pc+1)
		w.barriers[bar] = 0
		b.counters.Reconvergences++
		if b.rec != nil {
			b.emit(now, w, pc+1, waiting, trace.KindReconverge, bar)
			b.emit(now, w, pc+1, waiting, trace.KindActivate, bar)
		}
		return
	}
	b.switchAfterBlock(w, now)
}
