package sm

import (
	"testing"

	"subwarpsim/internal/config"
)

// policyBlock builds a bare Block with the given warp IDs (slot order)
// and issue classes, enough state for Policy.Pick.
func policyBlock(ids []int, classes []issueClass, lastIssued int) *Block {
	b := &Block{lastIssued: lastIssued, statuses: classes}
	for _, id := range ids {
		b.warps = append(b.warps, &Warp{ID: id})
	}
	return b
}

func TestPolicyForMapping(t *testing.T) {
	cases := []struct {
		in   config.SchedPolicy
		want string
	}{
		{config.SchedLRR, "lrr"},
		{config.SchedGTO, "gto"},
		{config.SchedWaSP, "wasp"},
	}
	for _, c := range cases {
		if got := PolicyFor(c.in).Name(); got != c.want {
			t.Errorf("PolicyFor(%v).Name() = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestPolicyStickiness pins the fast-forward contract: every policy
// keeps the last-issued warp while it can issue, regardless of what
// other warps are ready.
func TestPolicyStickiness(t *testing.T) {
	ids := []int{3, 0, 7, 1}
	classes := []issueClass{classCanIssue, classCanIssue, classCanIssue, classCanIssue}
	for p := config.SchedPolicy(0); int(p) < config.NumSchedPolicies; p++ {
		b := policyBlock(ids, classes, 2)
		if got := PolicyFor(p).Pick(b); got != 2 {
			t.Errorf("%v: Pick = %d, want sticky 2", p, got)
		}
	}
}

func TestPolicyNoneReady(t *testing.T) {
	ids := []int{0, 1, 2}
	classes := []issueClass{classScbdWait, classExited, classFetchWait}
	for p := config.SchedPolicy(0); int(p) < config.NumSchedPolicies; p++ {
		b := policyBlock(ids, classes, 0)
		if got := PolicyFor(p).Pick(b); got != -1 {
			t.Errorf("%v: Pick = %d, want -1 with no ready warp", p, got)
		}
	}
}

// TestLRRScanOrder pins the pre-zoo tie rule: first ready slot in
// circular order starting just after lastIssued.
func TestLRRScanOrder(t *testing.T) {
	classes := []issueClass{classCanIssue, classScbdWait, classScbdWait, classCanIssue}
	b := policyBlock([]int{0, 1, 2, 3}, classes, 1)
	if got := PolicyFor(config.SchedLRR).Pick(b); got != 3 {
		t.Errorf("LRR Pick = %d, want 3 (first ready after slot 1)", got)
	}
}

// TestGTOOldestFallback: on a stall GTO picks the lowest warp ID
// (admission order = age), not the nearest slot.
func TestGTOOldestFallback(t *testing.T) {
	classes := []issueClass{classCanIssue, classCanIssue, classScbdWait, classCanIssue}
	b := policyBlock([]int{5, 2, 0, 9}, classes, 2)
	if got := PolicyFor(config.SchedGTO).Pick(b); got != 1 {
		t.Errorf("GTO Pick = %d, want 1 (warp ID 2, the oldest ready)", got)
	}
}

// TestWaSPPhaseOrder: earlier phase groups win arbitration outright;
// within a group, round-robin distance from lastIssued breaks the tie.
func TestWaSPPhaseOrder(t *testing.T) {
	stalled := func(n int) []issueClass {
		s := make([]issueClass, n)
		for i := range s {
			s[i] = classScbdWait
		}
		return s
	}
	ids := []int{0, 1, 2, 3, 4, 5, 6, 7}
	wasp := PolicyFor(config.SchedWaSP)

	// Slots 0-1 are phase group 0; a ready warp there beats later groups.
	classes := stalled(8)
	classes[1] = classCanIssue
	classes[4] = classCanIssue
	classes[6] = classCanIssue
	b := policyBlock(ids, classes, 5)
	if got := wasp.Pick(b); got != 1 {
		t.Errorf("WaSP Pick = %d, want 1 (phase group 0 wins)", got)
	}

	// Same group: round-robin distance from lastIssued decides.
	classes = stalled(8)
	classes[6] = classCanIssue
	classes[7] = classCanIssue
	b = policyBlock(ids, classes, 5)
	if got := wasp.Pick(b); got != 6 {
		t.Errorf("WaSP Pick = %d, want 6 (nearer in round-robin order)", got)
	}
}
