package sm

import "subwarpsim/internal/config"

// Policy is a warp-scheduler arbitration rule: each cycle the block
// asks its policy which warp slot should issue next, over the frozen
// per-slot issue classes computed at the top of Block.step.
//
// Every implementation must satisfy two contracts:
//
//   - Greedy stickiness: if the last-issued slot can issue, Pick
//     returns it. The compiled engine's basic-block fast-forward
//     (SM.ffHorizon) retires straight-line runs under the assumption
//     that the scheduler would re-pick the same warp while its status
//     stays classCanIssue; a non-sticky policy would make compiled and
//     interpreted runs diverge.
//   - Determinism and time-independence: Pick is a pure function of
//     the block's slot statuses, warp IDs, and lastIssued — never of
//     the cycle number, wall clock, or any random source — so results
//     are bit-identical across worker counts and engines.
//
// Implementations are stateless singletons (all scheduling state lives
// on the Block), keeping the hot loop allocation-free.
type Policy interface {
	// Name returns the config-level short name ("lrr", "gto", "wasp").
	Name() string
	// Pick returns the slot that should issue this cycle, or -1 when
	// no slot is in classCanIssue.
	Pick(b *Block) int
}

// policyFor maps the config knob onto the package's singleton
// implementations. An out-of-range value (rejected by Config.Validate)
// falls back to LRR rather than panicking mid-simulation.
func policyFor(p config.SchedPolicy) Policy {
	switch p {
	case config.SchedGTO:
		return gtoPolicy{}
	case config.SchedWaSP:
		return waspPolicy{}
	default:
		return lrrPolicy{}
	}
}

// PolicyFor exposes the policy singletons for tests and tooling.
func PolicyFor(p config.SchedPolicy) Policy { return policyFor(p) }

// lrrPolicy is loose round-robin, bit-identical to the pre-zoo
// scheduler: keep the greedy warp while it can issue; on a stall, scan
// slots circularly starting just after lastIssued and take the first
// ready one.
type lrrPolicy struct{}

func (lrrPolicy) Name() string { return config.SchedLRR.String() }

func (lrrPolicy) Pick(b *Block) int {
	n := len(b.warps)
	if b.lastIssued < n && b.statuses[b.lastIssued] == classCanIssue {
		return b.lastIssued
	}
	for off := 1; off <= n; off++ {
		i := (b.lastIssued + off) % n
		if b.statuses[i] == classCanIssue {
			return i
		}
	}
	return -1
}

// gtoPolicy is greedy-then-oldest: keep the greedy warp while it can
// issue; on a stall, fall back to the ready warp with the lowest warp
// ID. IDs are assigned in admission order and never reused within a
// run, so the lowest ID is the oldest resident warp and the tie-break
// is total — no secondary rule needed.
type gtoPolicy struct{}

func (gtoPolicy) Name() string { return config.SchedGTO.String() }

func (gtoPolicy) Pick(b *Block) int {
	n := len(b.warps)
	if b.lastIssued < n && b.statuses[b.lastIssued] == classCanIssue {
		return b.lastIssued
	}
	pick, best := -1, 0
	for i := 0; i < n; i++ {
		if b.statuses[i] != classCanIssue {
			continue
		}
		if id := b.warps[i].ID; pick < 0 || id < best {
			pick, best = i, id
		}
	}
	return pick
}

// waspPhases is the number of static phase groups a WaSP-style
// scheduler stripes the block's warp slots into: a leader half and a
// trailing half. Two (not more) matters: with the typical four
// resident warps, finer striping degenerates to group-of-one slot
// priority, which is indistinguishable from GTO whenever slots fill
// in age order.
const waspPhases = 2

// waspPolicy is a WaSP-style phase-offset policy: slots are striped
// into waspPhases contiguous groups by slot index, and on a stall the
// earliest group with a ready warp always wins arbitration — the
// leader group runs ahead of the pack, warming caches for the trailing
// groups (the "mimic prefetching" effect). Within a group, arbitration
// is round-robin by circular distance from lastIssued, so a group's
// warps advance in loose lockstep.
type waspPolicy struct{}

func (waspPolicy) Name() string { return config.SchedWaSP.String() }

func (waspPolicy) Pick(b *Block) int {
	n := len(b.warps)
	if b.lastIssued < n && b.statuses[b.lastIssued] == classCanIssue {
		return b.lastIssued
	}
	pick, bestPhase, bestDist := -1, 0, 0
	for i := 0; i < n; i++ {
		if b.statuses[i] != classCanIssue {
			continue
		}
		phase := i * waspPhases / n
		dist := (i - b.lastIssued - 1 + n) % n
		if pick < 0 || phase < bestPhase || (phase == bestPhase && dist < bestDist) {
			pick, bestPhase, bestDist = i, phase, dist
		}
	}
	return pick
}
