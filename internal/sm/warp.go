// Package sm implements the cycle-level Turing-like streaming
// multiprocessor: processing blocks with warp schedulers, convergence-
// barrier divergence handling, count-based scoreboards, L0/L1
// instruction caches, an L1 data cache over a fixed-latency memory
// stub, texture and load/store writeback paths, an RT core, and the
// Subwarp Interleaving subwarp scheduler of Section III.
package sm

import (
	"fmt"
	"math"

	"subwarpsim/internal/bits"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/scoreboard"
	"subwarpsim/internal/tst"
)

// Warp is one resident warp's architectural and scheduling state.
type Warp struct {
	// Identity (drives S2R special registers).
	ID        int // global warp index in the launch
	CTAID     int
	WarpInCTA int
	CTASize   int // threads per CTA

	// Architectural state.
	pcs   [bits.WarpSize]int
	regs  [bits.WarpSize][isa.NumRegs]uint32
	preds [bits.WarpSize][isa.NumPreds]bool

	// Divergence and scheduling state.
	tab      *tst.Table
	sb       *scoreboard.File
	barriers [isa.NumBarriers]bits.Mask

	active   bits.Mask // cached tst Active mask (all at activePC)
	activePC int

	// Fetch state.
	fetchReadyAt int64
	fetchingLine uint64
	fetchedLine  uint64 // last line known resident; math.MaxUint64 when none

	// Subwarp-select state.
	pendingSelect bool
	selectDoneAt  int64

	// Yield bookkeeping: long-latency ops issued since activation.
	longOpsSinceActivation int

	// slot is the warp's index in its block's warps slice, so writeback
	// events can mark the owning slot dirty without a search.
	slot int

	exited bool
}

// newWarp initializes a resident warp: all 32 threads Active at PC 0.
func newWarp(id, ctaID, warpInCTA, ctaSize, nsb, maxSubwarps int) *Warp {
	w := &Warp{
		ID:        id,
		CTAID:     ctaID,
		WarpInCTA: warpInCTA,
		CTASize:   ctaSize,
		sb:        scoreboard.NewFile(nsb),
	}
	w.tab = tst.New(&w.pcs, maxSubwarps)
	w.tab.ActivateAll(bits.FullMask)
	w.active = bits.FullMask
	w.activePC = 0
	w.fetchedLine = math.MaxUint64
	w.fetchingLine = math.MaxUint64
	return w
}

// Active returns the current active subwarp's mask.
func (w *Warp) Active() bits.Mask { return w.active }

// PC returns the active subwarp's program counter.
func (w *Warp) PC() int { return w.activePC }

// Exited reports whether every thread has left the program.
func (w *Warp) Exited() bool { return w.exited }

// Table exposes the warp's thread status table (for inspection/tests).
func (w *Warp) Table() *tst.Table { return w.tab }

// Scoreboards exposes the warp's scoreboard file.
func (w *Warp) Scoreboards() *scoreboard.File { return w.sb }

// Diverged reports whether the warp currently has more than one live
// subwarp, the condition under which exposed stalls count as
// "in divergent code blocks" (Fig. 3).
func (w *Warp) Diverged() bool { return w.tab.DivergedLive() }

// special reads an S2R special register for one lane.
func (w *Warp) special(sr int, lane int) uint32 {
	switch sr {
	case isa.SRLaneID:
		return uint32(lane)
	case isa.SRWarpID:
		return uint32(w.WarpInCTA)
	case isa.SRCTAID:
		return uint32(w.CTAID)
	case isa.SRThreadID:
		return uint32(w.CTAID*w.CTASize + w.WarpInCTA*bits.WarpSize + lane)
	default:
		panic(fmt.Sprintf("sm: unknown special register %d", sr))
	}
}

// activate makes the given PC-aligned group the active subwarp and
// advances the selection rotor past it.
func (w *Warp) activate(mask bits.Mask, pc int) {
	w.active = mask
	w.activePC = pc
	w.longOpsSinceActivation = 0
	w.tab.NoteActivated(pc)
}

// dropActive clears the active subwarp after its threads transitioned
// elsewhere (stall, yield, block, exit).
func (w *Warp) dropActive() {
	w.active = 0
}

// setActivePCs advances every active thread's per-thread PC to pc.
func (w *Warp) setActivePCs(pc int) {
	for it := w.active; !it.Empty(); it = it.DropLowest() {
		w.pcs[it.Lowest()] = pc
	}
	w.activePC = pc
}

// selectImmediate is the baseline divergence unit's zero-cost subwarp
// switch used at BSYNC and thread exit: pick a READY subwarp and
// activate it. It returns false when none is ready.
func (w *Warp) selectImmediate() bool {
	sub, ok := w.tab.Select()
	if !ok {
		return false
	}
	w.activate(sub.Mask, sub.PC)
	return true
}

// checkExit marks the warp exited once no live threads remain.
func (w *Warp) checkExit() {
	if w.tab.Live().Empty() {
		w.exited = true
		w.dropActive()
	}
}

// assertConsistent validates internal invariants; simulation bugs
// should fail loudly rather than corrupt results.
func (w *Warp) assertConsistent() {
	if w.active != w.tab.Mask(tst.Active) {
		panic(fmt.Sprintf("sm: warp %d active cache %v != table %v",
			w.ID, w.active, w.tab.Mask(tst.Active)))
	}
	w.active.ForEach(func(lane int) {
		if w.pcs[lane] != w.activePC {
			panic(fmt.Sprintf("sm: warp %d lane %d pc %d != active pc %d",
				w.ID, lane, w.pcs[lane], w.activePC))
		}
	})
}
