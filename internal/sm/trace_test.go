package sm

import (
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/trace"
)

// idleBucketSum adds up the five exclusive stall-attribution buckets.
func idleBucketSum(c stats.Counters) int64 {
	return c.IdleLoadCycles + c.IdleFetchCycles + c.IdleSwitchCycles +
		c.IdleBarrierCycles + c.IdleNoWarpCycles
}

// TestTracingDoesNotPerturbSimulation is the zero-overhead contract:
// attaching a recorder must not change a single counter.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	for _, si := range []bool{false, true} {
		cfg := testConfig()
		if si {
			cfg = cfg.WithSI(true, config.TriggerAnyStalled)
		}
		plain, _ := run(t, cfg, divergentIfElse(true), 2)

		traced := cfg
		traced.Trace = trace.NewRecorder()
		withRec, _ := run(t, traced, divergentIfElse(true), 2)

		if plain != withRec {
			t.Errorf("si=%v: counters diverge with tracing on:\n  off %+v\n  on  %+v",
				si, plain, withRec)
		}
	}
}

// TestIdleBucketsSumToIdleCycles checks the attribution invariant: the
// five buckets partition the idle cycles exactly, per run.
func TestIdleBucketsSumToIdleCycles(t *testing.T) {
	cfgs := map[string]config.Config{
		"baseline":   testConfig(),
		"si-sos":     testConfig().WithSI(false, config.TriggerAllStalled),
		"si-both":    testConfig().WithSI(true, config.TriggerAnyStalled),
		"slow-fetch": config.Default(),
		"si-default": config.Default().WithSI(true, config.TriggerHalfStalled),
	}
	for name, cfg := range cfgs {
		cfg.NumSMs = 1
		cfg.BlocksPerSM = 1
		for _, warps := range []int{1, 3} {
			c, _ := run(t, cfg, divergentIfElse(true), warps)
			if got := idleBucketSum(c); got != c.IdleCycles {
				t.Errorf("%s warps=%d: bucket sum %d != IdleCycles %d (%+v)",
					name, warps, got, c.IdleCycles, c)
			}
		}
	}
}

// TestTraceEventStream checks the recorded stream carries the paper's
// subwarp transitions and agrees with the architectural counters.
func TestTraceEventStream(t *testing.T) {
	cfg := testConfig().WithSI(false, config.TriggerAllStalled)
	rec := trace.NewRecorder()
	cfg.Trace = rec
	c, _ := run(t, cfg, divergentIfElse(true), 1)

	counts := map[trace.Kind]int64{}
	for _, ev := range rec.Events() {
		counts[ev.Kind]++
	}
	if counts[trace.KindIssue] != c.IssuedInstrs {
		t.Errorf("issue events = %d, want IssuedInstrs = %d",
			counts[trace.KindIssue], c.IssuedInstrs)
	}
	if counts[trace.KindStall] != c.SubwarpStalls {
		t.Errorf("stall events = %d, want SubwarpStalls = %d",
			counts[trace.KindStall], c.SubwarpStalls)
	}
	if counts[trace.KindSelect] != c.SubwarpSelects {
		t.Errorf("select events = %d, want SubwarpSelects = %d",
			counts[trace.KindSelect], c.SubwarpSelects)
	}
	if counts[trace.KindWakeup] == 0 || counts[trace.KindExit] == 0 {
		t.Errorf("missing wakeup/exit events: %v", counts)
	}
	// Cycle stamps never exceed the run length.
	for _, ev := range rec.Events() {
		if ev.Cycle < 0 || ev.Cycle > c.Cycles {
			t.Fatalf("event cycle %d outside run of %d cycles: %v", ev.Cycle, c.Cycles, ev)
		}
	}
	// The derived histograms saw the stall traffic.
	if rec.LoadToUse.Count() == 0 || rec.StallDur.Count() == 0 || rec.Residency.Count() == 0 {
		t.Errorf("histograms empty: load-to-use n=%d, stall n=%d, residency n=%d",
			rec.LoadToUse.Count(), rec.StallDur.Count(), rec.Residency.Count())
	}
}

// TestTraceTimeSeriesWeightMatchesRun checks the sampled block-cycles
// (stepped plus fast-forwarded) cover the whole run.
func TestTraceTimeSeriesWeightMatchesRun(t *testing.T) {
	cfg := testConfig().WithSI(false, config.TriggerAllStalled)
	rec := trace.NewRecorder()
	rec.Series = stats.NewTimeSeries(64)
	cfg.Trace = rec
	c, _ := run(t, cfg, divergentIfElse(true), 1)

	var weight int64
	for _, w := range rec.Series.Windows() {
		weight += w.Weight
	}
	// One block: total sampled block-cycles == run cycles.
	if weight != c.Cycles {
		t.Errorf("sampled block-cycles = %d, want Cycles = %d", weight, c.Cycles)
	}
}
