package sm

import (
	"reflect"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/tst"
)

// fig9Program assembles the paper's Fig. 9 kernel verbatim: a divergent
// if-then-else with a load-to-use stall on both paths (TLD on the
// fall-through, TEX on the else path).
func fig9Program() *isa.Program {
	b := isa.NewBuilder("fig9")
	b.S2R(0, isa.SRLaneID)
	b.Shl(8, 0, 7)               // per-lane texture coordinate
	b.Movi(9, 0x40000)           // TEX base
	b.Movi(5, 0x100)             // FMUL operand
	b.Movi(6, 0x200)             // c[1][16] stand-in
	b.Isetpi(isa.CmpEQ, 0, 0, 0) // P0 = (lane == 0): t0 takes Else
	b.Bssy(0, "syncPoint")       // 1. BSSY B0, syncPoint
	b.BraP(0, false, "Else")     // 2. @P0 BRA Else
	b.Tld(2, 8, 0x10000, 5)      // 3. TLD R2 &wr=sb5
	b.Fmul(10, 5, 6)             // 4. FMUL R10, R5, c[1][16]
	b.Fmul(2, 2, 10).Req(5)      // 5. FMUL R2, R2, R10 &req=sb5
	b.Bra("syncPoint")           // 6. BRA syncPoint
	b.Label("Else")
	b.Tex(1, 8, 9, 0, 2)   // 7. TEX R1, R8, R9 &wr=sb2
	b.Fadd(1, 1, 3).Req(2) // 8. FADD R1, R1, R3 &req=sb2
	b.Bra("syncPoint")     // 9. BRA syncPoint
	b.Label("syncPoint")
	b.Bsync(0) // 10. BSYNC B0
	return b.Exit().MustBuild()
}

// traceStates steps a single-warp SM to completion, recording the
// compressed per-lane state sequences for the two subwarp
// representative lanes: lane 0 (Else/TEX subwarp, the paper's t0) and
// lane 1 (fall-through/TLD subwarp, the paper's t1).
func traceStates(t *testing.T, cfg config.Config) (lane0, lane1 []tst.State) {
	t.Helper()
	k := &Kernel{Program: fig9Program(), NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	blk := s.blocks[0]
	w := blk.warps[0]

	record := func(seq []tst.State, lane int) []tst.State {
		st := w.tab.State(lane)
		if len(seq) == 0 || seq[len(seq)-1] != st {
			seq = append(seq, st)
		}
		return seq
	}
	lane0 = record(nil, 0)
	lane1 = record(nil, 1)
	for now := int64(0); !blk.done; now++ {
		if now > 1_000_000 {
			t.Fatalf("fig9 did not finish:\n%s", s.dumpState())
		}
		blk.step(now)
		lane0 = record(lane0, 0)
		lane1 = record(lane1, 1)
	}
	return lane0, lane1
}

// fig10Config: single block, free instruction fetch, fall-through
// subwarp activated first so the TLD path runs first as in Fig. 10.
func fig10Config() config.Config {
	cfg := testConfig()
	cfg.Order = config.OrderFallthroughFirst
	return cfg
}

func TestFig10aWithoutYield(t *testing.T) {
	cfg := fig10Config().WithSI(false, config.TriggerAllStalled)
	lane0, lane1 := traceStates(t, cfg)

	// t1 (TLD path, active first): issues its texture load, stalls at
	// the use, is demoted, wakes when the load returns, runs to BSYNC,
	// blocks, reconverges, exits. It must never be READY before being
	// STALLED (that would be a yield, disabled here).
	want1 := []tst.State{tst.Active, tst.Stalled, tst.Ready, tst.Active, tst.Blocked, tst.Active, tst.Inactive}
	if !reflect.DeepEqual(lane1, want1) {
		t.Errorf("t1 states = %v, want %v", lane1, want1)
	}
	// t0 (Else path): loses the election (READY), gets selected after
	// t1's demotion, issues TEX, stalls, wakes, finishes. The woken
	// READY may be invisible at cycle granularity when the wakeup
	// coincides with t1 blocking at BSYNC (the divergence unit then
	// re-activates t0 in the same cycle), so both traces are legal.
	want0a := []tst.State{tst.Active, tst.Ready, tst.Active, tst.Stalled, tst.Ready, tst.Active, tst.Inactive}
	want0b := []tst.State{tst.Active, tst.Ready, tst.Active, tst.Stalled, tst.Active, tst.Inactive}
	if !reflect.DeepEqual(lane0, want0a) && !reflect.DeepEqual(lane0, want0b) {
		t.Errorf("t0 states = %v, want %v or %v", lane0, want0a, want0b)
	}
}

func TestFig10bWithYield(t *testing.T) {
	cfg := fig10Config().WithSI(true, config.TriggerAllStalled)
	lane1Seq := func() []tst.State {
		_, l1 := traceStates(t, cfg)
		return l1
	}()

	// The key difference from Fig. 10a: t1 yields right after issuing
	// its long-latency texture op, so it transitions ACTIVE -> READY
	// *before* ever being STALLED.
	sawReady, sawStalledBeforeReady := false, false
	for _, st := range lane1Seq {
		if st == tst.Ready {
			sawReady = true
			break
		}
		if st == tst.Stalled {
			sawStalledBeforeReady = true
			break
		}
	}
	if !sawReady || sawStalledBeforeReady {
		t.Errorf("t1 states = %v: with yield, READY must precede any STALLED", lane1Seq)
	}
}

func TestFig10bYieldOverlapsEarlier(t *testing.T) {
	// subwarp-yield lets both loads issue before either use stalls, so
	// the yield configuration must not be slower and both memory
	// operations must overlap (runtime ~ one miss latency).
	sosCfg := fig10Config().WithSI(false, config.TriggerAllStalled)
	bothCfg := fig10Config().WithSI(true, config.TriggerAllStalled)

	runOnce := func(cfg config.Config) int64 {
		k := &Kernel{Program: fig9Program(), NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
		s, err := NewSM(0, cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		s.Admit(0, 0, 0, 0)
		c, err := s.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return c.Cycles
	}
	sos := runOnce(sosCfg)
	both := runOnce(bothCfg)
	// On Fig. 9 the use follows the load almost immediately, so SOS
	// already issues both loads early; yield may only add bounded
	// switch overhead (2 extra switches at 6 cycles each, plus slack).
	if both > sos+40 {
		t.Errorf("Both (%d cyc) overhead too large vs SOS (%d cyc)", both, sos)
	}
	if limit := int64(sosCfg.L1MissLatency) + 120; both > limit {
		t.Errorf("Both = %d cycles; loads did not overlap (limit %d)", both, limit)
	}
}

// TestYieldBeatsSOSWithComputeBeforeUse builds the case subwarp-yield
// exists for (Section III-B): the first subwarp has a long independent
// math sequence between its load and the use, so under switch-on-stall
// the second subwarp's load issues only after that compute finishes.
// Yield issues both loads up front, maximizing memory-level
// parallelism.
func TestYieldBeatsSOSWithComputeBeforeUse(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder("computeThenUse")
		b.S2R(0, isa.SRLaneID)
		b.Shl(1, 0, 7)
		b.Isetpi(isa.CmpEQ, 0, 0, 0)
		b.Bssy(0, "sync")
		b.BraP(0, false, "pathB")
		// Path A (lanes 1..31): load, 150 independent math ops, use.
		b.Iaddi(2, 1, 0x10000)
		b.Ldg(3, 2, 0, 0)
		for i := 0; i < 150; i++ {
			b.Iaddi(4, 4, 1)
		}
		b.Iadd(3, 3, 3).Req(0)
		b.Bra("sync")
		b.Label("pathB") // lane 0: load then immediate use
		b.Iaddi(2, 1, 0x40000)
		b.Ldg(3, 2, 0, 1)
		b.Iadd(3, 3, 3).Req(1)
		b.Bra("sync")
		b.Label("sync")
		b.Bsync(0)
		return b.Exit().MustBuild()
	}
	runOnce := func(cfg config.Config) int64 {
		k := &Kernel{Program: build(), NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
		s, err := NewSM(0, cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		s.Admit(0, 0, 0, 0)
		c, err := s.Run(1_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return c.Cycles
	}
	sos := runOnce(fig10Config().WithSI(false, config.TriggerAllStalled))
	both := runOnce(fig10Config().WithSI(true, config.TriggerAllStalled))
	if both >= sos {
		t.Errorf("yield (%d cyc) should beat SOS (%d cyc) when compute delays the stall", both, sos)
	}
}

func TestFig9BaselineSerializes(t *testing.T) {
	cfg := fig10Config()
	k := &Kernel{Program: fig9Program(), NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	s, err := NewSM(0, cfg, k)
	if err != nil {
		t.Fatal(err)
	}
	s.Admit(0, 0, 0, 0)
	c, err := s.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if min := int64(2 * cfg.L1MissLatency); c.Cycles < min {
		t.Errorf("baseline = %d cycles, want >= %d (serialized)", c.Cycles, min)
	}
}
