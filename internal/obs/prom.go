package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus
// text exposition format (version 0.0.4): one HELP and TYPE line per
// family followed by its samples, families in registration order,
// samples in sorted label order. Histograms emit cumulative
// `_bucket{le=...}` series (bounds scaled by the histogram's Scale),
// `_sum`, and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, f := range r.snapshotFamilies() {
		help := strings.ReplaceAll(f.help, "\n", " ")
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.orderedSamples() {
			if f.kind == kindHistogram {
				writeHistogramSample(bw, f.name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labelSuffix(), formatValue(s.value()))
		}
	}
	return bw.Flush()
}

func writeHistogramSample(w io.Writer, name string, s *sample) {
	snap := s.hist.snapshot()
	scale := s.hist.scale
	if scale == 0 {
		scale = 1
	}
	cum := int64(0)
	snap.EachBucket(func(hi, count int64) {
		cum += count
		fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, s.labelSuffix("le", formatValue(float64(hi)*scale)), cum)
	})
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, s.labelSuffix("le", "+Inf"), snap.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labelSuffix(), formatValue(float64(snap.Sum())*scale))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labelSuffix(), snap.Count())
}

// formatValue renders a float the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9.eE+-]+|\+Inf|-Inf|NaN)$`)
	promLabelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"$`)
)

// Lint validates Prometheus text exposition at the grammar level:
// every line must be a HELP/TYPE comment or a well-formed sample; a
// family's TYPE must precede its samples; sample names must belong to
// a declared family (allowing the _bucket/_sum/_count suffixes of
// histograms and summaries); labels must be well-formed; histogram
// buckets must be cumulative, le-sorted, and closed by an +Inf bucket
// matching _count. It returns nil for valid input.
func Lint(r io.Reader) error {
	types := map[string]string{}
	type histState struct {
		lastLe  float64
		lastCum int64
		infSeen bool
		inf     int64
	}
	hists := map[string]*histState{} // family+labels -> running bucket state
	counts := map[string]int64{}     // family+labels -> _count value

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if m := promTypeRe.FindStringSubmatch(line); m != nil {
				if _, dup := types[m[1]]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, m[1])
				}
				types[m[1]] = m[2]
				continue
			}
			if promHelpRe.MatchString(line) {
				continue
			}
			return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		family, suffix := familyOf(name, types)
		if family == "" {
			return fmt.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
		}
		le, rest, err := splitLabels(labels)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		key := family + rest
		switch suffix {
		case "_bucket":
			h := hists[key]
			if h == nil {
				h = &histState{lastLe: math.Inf(-1)}
				hists[key] = h
			}
			cum, perr := strconv.ParseInt(value, 10, 64)
			if perr != nil {
				return fmt.Errorf("line %d: non-integer bucket count %q", lineNo, value)
			}
			if le == "" {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				if bound, perr = strconv.ParseFloat(le, 64); perr != nil {
					return fmt.Errorf("line %d: bad le %q", lineNo, le)
				}
			}
			if bound <= h.lastLe {
				return fmt.Errorf("line %d: le %q not increasing for %s", lineNo, le, key)
			}
			if cum < h.lastCum {
				return fmt.Errorf("line %d: bucket counts not cumulative for %s", lineNo, key)
			}
			h.lastLe, h.lastCum = bound, cum
			if math.IsInf(bound, 1) {
				h.infSeen, h.inf = true, cum
			}
		case "_count":
			n, perr := strconv.ParseInt(value, 10, 64)
			if perr != nil {
				return fmt.Errorf("line %d: non-integer count %q", lineNo, value)
			}
			counts[key] = n
		case "_sum":
			if _, perr := strconv.ParseFloat(value, 64); perr != nil {
				return fmt.Errorf("line %d: bad sum %q", lineNo, value)
			}
		default:
			if _, perr := strconv.ParseFloat(value, 64); perr != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
				return fmt.Errorf("line %d: bad value %q", lineNo, value)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if !h.infSeen {
			return fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if n, ok := counts[key]; !ok || n != h.inf {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", key, counts[key], h.inf)
		}
	}
	return nil
}

// familyOf resolves a sample name to its declared family, honoring the
// histogram/summary suffixes. It returns the family name and the
// suffix consumed ("" when the sample name is the family itself).
func familyOf(name string, types map[string]string) (string, string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
			return base, suffix
		}
	}
	return "", ""
}

// splitLabels validates a label block and returns the le value (if
// any) plus a canonical rendering of the remaining labels.
func splitLabels(block string) (le string, rest string, err error) {
	if block == "" {
		return "", "{}", nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return "", "{}", nil
	}
	var others []string
	for _, pair := range splitLabelPairs(inner) {
		if !promLabelRe.MatchString(pair) {
			return "", "", fmt.Errorf("malformed label pair %q", pair)
		}
		name, val, _ := strings.Cut(pair, "=")
		unq, uerr := strconv.Unquote(val)
		if uerr != nil {
			return "", "", fmt.Errorf("bad label value %s", val)
		}
		if name == "le" {
			le = unq
			continue
		}
		others = append(others, pair)
	}
	sort.Strings(others)
	return le, "{" + strings.Join(others, ",") + "}", nil
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
