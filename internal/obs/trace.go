package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"io"
	"sort"
	"sync"
	"time"

	"subwarpsim/internal/trace"
)

// Trace is one request-scoped trace: an ID plus the wall-clock spans
// recorded along the job's path (admit, cache, queue, dedup, exec,
// respond, per-SM simulation). A nil *Trace is valid and records
// nothing, so un-instrumented paths pay one nil check.
type Trace struct {
	ID    string    `json:"trace_id"`
	Start time.Time `json:"start"`

	mu    sync.Mutex
	spans []Span
}

// Span is one named wall-clock interval within a trace, stored as
// microsecond offsets from the trace start so export to the
// trace_event format (microsecond timestamps) is direct.
type Span struct {
	Name    string `json:"name"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
}

// NewTraceID returns a fresh 16-hex-digit trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is catastrophic enough elsewhere; here a
		// constant ID only degrades correlation, never correctness.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// NewTrace starts a trace. An empty id generates one; a caller-
// provided id (the client's X-Trace-ID header) is used verbatim so
// clients can correlate across systems.
func NewTrace(id string) *Trace {
	if id == "" {
		id = NewTraceID()
	}
	return &Trace{ID: id, Start: time.Now()}
}

// StartSpan opens a span and returns its closer. Nil-safe.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.AddSpan(name, start, time.Now()) }
}

// AddSpan records a span from explicit wall-clock endpoints (used when
// the start and end are observed on different goroutines, e.g. queue
// wait measured from enqueue to worker pickup). Nil-safe.
func (t *Trace) AddSpan(name string, start, end time.Time) {
	if t == nil {
		return
	}
	s := Span{Name: name, StartUS: start.Sub(t.Start).Microseconds(), DurUS: end.Sub(start).Microseconds()}
	if s.StartUS < 0 {
		s.StartUS = 0
	}
	if s.DurUS < 0 {
		s.DurUS = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns the recorded spans sorted by start offset.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Span(nil), t.spans...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].StartUS < out[j].StartUS })
	return out
}

// WritePerfetto exports the trace's spans as Chrome trace_event JSON
// (one track per span name) by reusing the internal/trace exporter, so
// a request timeline opens in ui.perfetto.dev exactly like a simulated
// SM timeline does.
func (t *Trace) WritePerfetto(w io.Writer) error {
	spans := t.Spans()
	slices := make([]trace.Slice, 0, len(spans))
	for _, s := range spans {
		slices = append(slices, trace.Slice{
			Track:   s.Name,
			Name:    s.Name,
			StartUS: s.StartUS,
			DurUS:   s.DurUS,
			Args:    map[string]any{"trace_id": t.ID},
		})
	}
	return trace.WriteChromeSlices(w, "request "+t.ID, slices)
}

// SanitizeID bounds externally supplied trace IDs (the X-Trace-ID
// header): printable ASCII, no whitespace or quotes (they land in logs
// and label values), capped length. Anything unusable yields "" so the
// caller mints a fresh ID. Every hop that adopts client trace IDs —
// the single node and the cluster coordinator — must apply the same
// rule, or an ID accepted on one hop would be rejected on the next and
// the cross-node timeline would split.
func SanitizeID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for _, c := range id {
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// ctxKey carries a *Trace through a context.
type ctxKey struct{}

// WithTrace attaches tr to the context.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tr)
}

// TraceFrom returns the context's trace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// TraceIDFrom returns the context's trace ID, or "". Its signature
// matches the hook fields of layers that must not import obs
// (faults.Injector.TraceIDFrom).
func TraceIDFrom(ctx context.Context) string {
	if tr := TraceFrom(ctx); tr != nil {
		return tr.ID
	}
	return ""
}

// TraceStore keeps the most recent completed traces by ID for the
// /debug/traces endpoint. Bounded: inserting past the cap evicts the
// oldest trace.
type TraceStore struct {
	mu    sync.Mutex
	cap   int
	order []string
	byID  map[string]*Trace
}

// NewTraceStore returns a store bounded to n traces (minimum 1).
func NewTraceStore(n int) *TraceStore {
	if n < 1 {
		n = 1
	}
	return &TraceStore{cap: n, byID: make(map[string]*Trace)}
}

// Add inserts (or refreshes) a trace. Nil-safe.
func (s *TraceStore) Add(t *Trace) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[t.ID]; !ok {
		s.order = append(s.order, t.ID)
	}
	s.byID[t.ID] = t
	for len(s.order) > s.cap {
		delete(s.byID, s.order[0])
		s.order = s.order[1:]
	}
}

// Get returns the trace with the given ID, or nil.
func (s *TraceStore) Get(id string) *Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.byID[id]
}

// IDs returns the stored trace IDs, oldest first.
func (s *TraceStore) IDs() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Len returns the number of stored traces.
func (s *TraceStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.order)
}
