package obs

import (
	"context"
	"fmt"
	"log/slog"
	"runtime"
	"runtime/debug"
)

// Observer bundles the observability plane handed to the serving
// stack: the metric registry, the debug-event ring, the completed-
// trace store, and the structured logger. A nil *Observer is valid
// everywhere and observes nothing.
type Observer struct {
	Reg    *Registry
	Ring   *Ring
	Traces *TraceStore
	Log    *slog.Logger

	stageLat map[string]*Histogram
}

// Stage names instrumented along the request path, in pipeline order.
// Per-stage latency histograms are pre-registered for all of them so
// the `stage` label set is fixed and every scrape sees every series.
var Stages = []string{"admit", "cache", "dedup", "queue", "exec", "respond"}

// New builds an Observer with a fresh registry, a ring of ringSize
// events, a trace store of traceCap traces, and the given logger (nil
// means discard). Runtime and build-info gauges are pre-registered.
func New(namespace string, ringSize, traceCap int, log *slog.Logger) *Observer {
	if log == nil {
		log = NopLogger()
	}
	o := &Observer{
		Reg:      NewRegistry(),
		Ring:     NewRing(ringSize),
		Traces:   NewTraceStore(traceCap),
		Log:      log,
		stageLat: make(map[string]*Histogram),
	}
	for _, st := range Stages {
		o.stageLat[st] = o.Reg.LabeledHistogram(
			namespace+"_stage_latency_seconds",
			"Wall-clock latency of each request-path stage.",
			"stage", st, 1e-6)
	}
	registerRuntimeMetrics(o.Reg, namespace)
	registerBuildInfo(o.Reg, namespace)
	return o
}

// ObserveStage records one stage latency sample in microseconds. The
// stage must be one of Stages; unknown stages are dropped rather than
// minting unbounded label values.
func (o *Observer) ObserveStage(stage string, us int64) {
	if o == nil {
		return
	}
	if h := o.stageLat[stage]; h != nil {
		h.Observe(us)
	}
}

// StageHistogram returns the latency histogram for a stage (nil for
// unknown stages or a nil observer).
func (o *Observer) StageHistogram(stage string) *Histogram {
	if o == nil {
		return nil
	}
	return o.stageLat[stage]
}

// Logger returns the observer's logger, or a discard logger.
func (o *Observer) Logger() *slog.Logger {
	if o == nil || o.Log == nil {
		return NopLogger()
	}
	return o.Log
}

// Event records an incident in the ring, pulling the trace ID from ctx.
func (o *Observer) Event(ctx context.Context, kind, site, detail string) {
	if o == nil {
		return
	}
	o.Ring.Add(kind, TraceIDFrom(ctx), site, detail)
}

// registerRuntimeMetrics exposes Go runtime health as gauges read at
// scrape time.
func registerRuntimeMetrics(r *Registry, ns string) {
	r.GaugeFunc(ns+"_go_goroutines", "Number of live goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc(ns+"_go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.GaugeFunc(ns+"_go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	r.CounterFunc(ns+"_go_gc_cycles_total", "Completed GC cycles.",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.NumGC)
		})
}

// BuildInfo describes the running binary, from debug.ReadBuildInfo.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Modified  bool   `json:"vcs_modified,omitempty"`
	Module    string `json:"module,omitempty"`
}

// Build returns the binary's build info. Fields missing from the
// embedded metadata (e.g. no VCS stamping in test binaries) are empty.
func Build() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
}

// String renders the build info for -version output.
func (b BuildInfo) String() string {
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	} else if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Modified {
		rev += "+dirty"
	}
	return fmt.Sprintf("commit %s (%s)", rev, b.GoVersion)
}

// registerBuildInfo exposes the standard <ns>_build_info{...} 1 gauge.
func registerBuildInfo(r *Registry, ns string) {
	b := Build()
	rev := b.Revision
	if rev == "" {
		rev = "unknown"
	}
	r.LabeledGaugeFunc(ns+"_build_info",
		"Build metadata; the value is always 1.",
		"revision", rev, func() float64 { return 1 })
}

// nopHandler discards all records. slog.DiscardHandler exists only
// from Go 1.25, and go.mod pins an older language version.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (h nopHandler) WithAttrs([]slog.Attr) slog.Handler      { return h }
func (h nopHandler) WithGroup(string) slog.Handler           { return h }

// NopLogger returns a logger that discards everything.
func NopLogger() *slog.Logger { return slog.New(nopHandler{}) }
