package obs

import (
	"sync"
	"time"
)

// Event kinds recorded in the debug ring. Kept as plain strings so the
// ring stays schema-free: hooks in other packages pass their own kinds.
const (
	EventFault      = "fault_injected"
	EventQuarantine = "panic_quarantine"
	EventBreaker    = "breaker_transition"
	EventCorrupt    = "corrupt_eviction"
	EventDegraded   = "degraded_mode"
)

// RingEvent is one operational incident: a fault injection, a panic
// quarantine, a breaker transition, a corrupt-entry eviction. TraceID
// is set when the incident happened inside a traced request, so
// /debug/events correlates with /debug/traces and log lines.
type RingEvent struct {
	Seq     uint64    `json:"seq"`
	Time    time.Time `json:"time"`
	Kind    string    `json:"kind"`
	TraceID string    `json:"trace_id,omitempty"`
	Site    string    `json:"site,omitempty"`
	Detail  string    `json:"detail,omitempty"`
}

// Ring is a bounded in-memory event buffer: the newest cap events win,
// older ones are overwritten. All methods are nil-safe.
type Ring struct {
	mu   sync.Mutex
	buf  []RingEvent
	next uint64 // total events ever added; buf[next%len] is the write slot
}

// NewRing returns a ring holding the most recent n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]RingEvent, n)}
}

// Add records an event, stamping Seq and Time.
func (r *Ring) Add(kind, traceID, site, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = RingEvent{
		Seq: r.next, Time: time.Now(),
		Kind: kind, TraceID: traceID, Site: site, Detail: detail,
	}
	r.next++
	r.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (r *Ring) Events() []RingEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	start := uint64(0)
	count := r.next
	if r.next > n {
		start = r.next - n
		count = n
	}
	out := make([]RingEvent, 0, count)
	for i := uint64(0); i < count; i++ {
		out = append(out, r.buf[(start+i)%n])
	}
	return out
}

// Len returns the number of buffered events.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.next)
}
