package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_jobs_total", "jobs")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %v, want 3.5", got)
	}
	g.SetMax(2) // lower, ignored
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge after SetMax(2) = %v, want 3.5", got)
	}
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("gauge after SetMax(9) = %v, want 9", got)
	}

	// Same name+label returns the identical instance.
	if r.Counter("test_jobs_total", "jobs") != c {
		t.Fatal("re-registration did not return the same counter")
	}
}

func TestNilSafety(t *testing.T) {
	var (
		c  *Counter
		g  *Gauge
		h  *Histogram
		rg *Registry
		ri *Ring
		tr *Trace
		ts *TraceStore
		o  *Observer
	)
	c.Inc()
	c.Add(3)
	_ = c.Value()
	g.Set(1)
	g.SetMax(1)
	_ = g.Value()
	h.Observe(1)
	_ = h.Count()
	_ = h.Quantile(0.5)
	if got := rg.Counter("x", "y"); got != nil {
		t.Fatal("nil registry returned non-nil counter")
	}
	rg.GaugeFunc("x", "y", func() float64 { return 0 })
	ri.Add("k", "", "", "")
	if ri.Events() != nil {
		t.Fatal("nil ring returned events")
	}
	tr.StartSpan("s")()
	tr.AddSpan("s", time.Now(), time.Now())
	if tr.Spans() != nil {
		t.Fatal("nil trace returned spans")
	}
	ts.Add(nil)
	if ts.Get("x") != nil || ts.IDs() != nil || ts.Len() != 0 {
		t.Fatal("nil trace store not inert")
	}
	o.ObserveStage("exec", 1)
	o.Event(context.Background(), EventFault, "site", "detail")
	if o.Logger() == nil {
		t.Fatal("nil observer Logger() returned nil")
	}
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Fatalf("TraceIDFrom(empty ctx) = %q, want empty", got)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_metric", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as gauge did not panic")
		}
	}()
	r.Gauge("test_metric", "help")
}

func TestPrometheusExpositionLints(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_jobs_total", "Total jobs.").Add(7)
	r.Gauge("app_depth", "Queue depth.").Set(3)
	r.GaugeFunc("app_up", "Always 1.", func() float64 { return 1 })
	h := r.Histogram("app_latency_seconds", "Latency.", 1e-6)
	for _, v := range []int64{3, 90, 90, 1500, 40000} {
		h.Observe(v)
	}
	lh := r.LabeledHistogram("app_stage_seconds", "Stage latency.", "stage", `we"ird\st`, 1e-6)
	lh.Observe(250)
	r.LabeledCounter("app_by_workload_total", "Per workload.", "workload", "app/BFV1").Add(2)
	r.LabeledCounter("app_by_workload_total", "Per workload.", "workload", "micro/7").Add(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	if err := Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("Lint rejected our own exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE app_jobs_total counter",
		"app_jobs_total 7",
		"# TYPE app_latency_seconds histogram",
		`app_latency_seconds_bucket{le="+Inf"} 5`,
		"app_latency_seconds_count 5",
		`app_by_workload_total{workload="app/BFV1"} 2`,
		`app_by_workload_total{workload="micro/7"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestLintCatchesMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "foo_total 1\n",
		"bad name":            "# TYPE 9bad counter\n9bad 1\n",
		"bad label":           "# TYPE a counter\na{x=\"unterminated} 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 5\n",
		"missing +Inf": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_sum 9\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 9\nh_count 7\n",
		"le not increasing": "# TYPE h histogram\n" +
			"h_bucket{le=\"5\"} 1\nh_bucket{le=\"2\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 9\nh_count 2\n",
		"duplicate TYPE": "# TYPE a counter\n# TYPE a counter\na 1\n",
	}
	for name, text := range cases {
		if err := Lint(strings.NewReader(text)); err == nil {
			t.Errorf("%s: Lint accepted malformed input:\n%s", name, text)
		}
	}
}

func TestHistogramQuantilesAndScale(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat", "x", 1e-6)
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	p50, p99 := h.Quantile(0.5), h.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles out of order: p50=%d p99=%d", p50, p99)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// 1000 samples of <=1000us scale to <= 1e-3s bounds; the raw bound
	// 1023 must appear scaled, not in microseconds.
	if strings.Contains(buf.String(), `le="1023"`) {
		t.Fatalf("histogram bounds not scaled:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "test_lat_count 1000") {
		t.Fatalf("missing count:\n%s", buf.String())
	}
}

func TestTraceSpansAndPerfettoExport(t *testing.T) {
	tr := NewTrace("abc123")
	done := tr.StartSpan("admit")
	time.Sleep(time.Millisecond)
	done()
	start := time.Now()
	time.Sleep(time.Millisecond)
	tr.AddSpan("exec", start, time.Now())

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Name != "admit" || spans[1].Name != "exec" {
		t.Fatalf("span order wrong: %+v", spans)
	}
	for _, s := range spans {
		if s.DurUS <= 0 {
			t.Fatalf("span %s has non-positive duration %d", s.Name, s.DurUS)
		}
	}

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto export is not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if n, _ := ev["name"].(string); n != "" {
			names[n] = true
		}
	}
	for _, want := range []string{"admit", "exec", "process_name"} {
		if !names[want] {
			t.Errorf("perfetto export missing event %q", want)
		}
	}
}

func TestTraceContextPropagation(t *testing.T) {
	tr := NewTrace("")
	if len(tr.ID) != 16 {
		t.Fatalf("generated trace ID %q not 16 hex chars", tr.ID)
	}
	ctx := WithTrace(context.Background(), tr)
	if got := TraceFrom(ctx); got != tr {
		t.Fatal("TraceFrom did not round-trip")
	}
	if got := TraceIDFrom(ctx); got != tr.ID {
		t.Fatalf("TraceIDFrom = %q, want %q", got, tr.ID)
	}
}

func TestRingBoundsAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(EventFault, "", "site", fmt.Sprintf("d%d", i))
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("d%d", 6+i); ev.Detail != want {
			t.Fatalf("event %d detail = %q, want %q (oldest-first)", i, ev.Detail, want)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq not monotonic: %d after %d", evs[i].Seq, evs[i-1].Seq)
		}
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
}

func TestTraceStoreEviction(t *testing.T) {
	s := NewTraceStore(2)
	a, b, c := NewTrace("a"), NewTrace("b"), NewTrace("c")
	s.Add(a)
	s.Add(b)
	s.Add(c)
	if s.Get("a") != nil {
		t.Fatal("oldest trace not evicted")
	}
	if s.Get("b") != b || s.Get("c") != c {
		t.Fatal("recent traces missing")
	}
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != "b" || ids[1] != "c" {
		t.Fatalf("IDs = %v, want [b c]", ids)
	}
}

func TestObserverStageHistograms(t *testing.T) {
	o := New("app", 16, 8, nil)
	o.ObserveStage("exec", 1500)
	o.ObserveStage("exec", 2500)
	o.ObserveStage("nosuchstage", 99) // dropped, no new label minted
	if got := o.StageHistogram("exec").Count(); got != 2 {
		t.Fatalf("exec count = %d, want 2", got)
	}
	var buf bytes.Buffer
	if err := o.Reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("observer exposition invalid: %v", err)
	}
	// Every stage pre-registered even with zero samples.
	for _, st := range Stages {
		if !strings.Contains(text, fmt.Sprintf(`stage=%q`, st)) {
			t.Errorf("exposition missing stage %q", st)
		}
	}
	if strings.Contains(text, "nosuchstage") {
		t.Error("unknown stage leaked into exposition")
	}
	for _, want := range []string{"app_go_goroutines", "app_go_heap_alloc_bytes", "app_build_info"} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing runtime/build metric %q", want)
		}
	}
}

func TestBuildInfoString(t *testing.T) {
	b := Build()
	if b.GoVersion == "" {
		t.Fatal("Build() returned empty GoVersion")
	}
	if s := b.String(); !strings.Contains(s, "commit ") || !strings.Contains(s, b.GoVersion) {
		t.Fatalf("String() = %q missing commit/go version", s)
	}
}

func TestNopLoggerDiscards(t *testing.T) {
	lg := NopLogger()
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("nop logger claims to be enabled")
	}
	lg.Info("should not panic", "k", "v")
}

func TestMultiLabelSeries(t *testing.T) {
	r := NewRegistry()
	ok := r.CounterWith("test_peer_requests_total", "per-peer requests",
		"peer", "w1", "outcome", "ok")
	errs := r.CounterWith("test_peer_requests_total", "per-peer requests",
		"peer", "w1", "outcome", "error")
	ok.Add(3)
	errs.Inc()
	// Identity: same ordered label set returns the same counter.
	if r.CounterWith("test_peer_requests_total", "per-peer requests",
		"peer", "w1", "outcome", "ok") != ok {
		t.Fatal("re-registration did not return the same multi-label counter")
	}
	r.GaugeFuncWith("test_ring_ownership", "ring share",
		func() float64 { return 0.25 }, "peer", "w1")

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`test_peer_requests_total{peer="w1",outcome="ok"} 3`,
		`test_peer_requests_total{peer="w1",outcome="error"} 1`,
		`test_ring_ownership{peer="w1"} 0.25`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if err := Lint(strings.NewReader(out)); err != nil {
		t.Fatalf("multi-label exposition fails lint: %v", err)
	}
}
