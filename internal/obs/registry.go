// Package obs is the serving stack's unified observability plane: a
// typed metric registry with Prometheus text exposition (registry.go,
// prom.go), request-scoped tracing with per-stage spans (trace.go), a
// bounded in-memory debug-event ring (ring.go), and structured slog
// logging — bundled by Observer (obs.go).
//
// The package deliberately separates the two observability domains the
// repo has: internal/trace records *simulated* time (cycle-stamped SM
// pipeline events), while obs records *wall-clock* serving time
// (request latencies, cache traffic, degradation state). The SI
// mechanism roll-ups bridge them: per-job simulation counters
// aggregate into service-level metrics so the paper's mechanism stays
// observable in production.
//
// Everything here is nil-gated: a nil *Observer, *Registry, *Ring, or
// *Trace is valid and does nothing, so the simulator's zero-allocation
// hot loop is untouched when observability is off.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"subwarpsim/internal/stats"
)

// metricKind is the Prometheus family type.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Counter is a monotonically increasing metric. The zero value is
// ready to use; methods are nil-safe so disabled observability costs
// one branch.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// SetMax raises the gauge to v if v is larger (high-water marks).
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a concurrency-safe distribution built on
// stats.Histogram's power-of-two buckets. Samples are recorded in an
// integer base unit (e.g. microseconds); Scale converts that unit for
// exposition (1e-6 renders microsecond samples as Prometheus seconds).
type Histogram struct {
	mu    sync.Mutex
	h     stats.Histogram
	scale float64
}

// Observe records one sample in the histogram's base unit.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Count()
}

// Quantile returns the q-th quantile bucket bound in the base unit.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Quantile(q)
}

// Max returns the largest sample in the base unit.
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h.Max()
}

// snapshot returns a copy of the underlying distribution.
func (h *Histogram) snapshot() stats.Histogram {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// sample is one exposed time series: an ordered label-pair list
// (possibly empty) plus its value source.
type sample struct {
	labelKey string   // "" for unlabeled; joined pairs otherwise
	labels   []string // name, value, name, value, ...

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family is one metric name with HELP/TYPE and its samples.
type family struct {
	name string
	help string
	kind metricKind

	mu      sync.Mutex
	samples []*sample
	byLabel map[string]*sample
}

func (f *family) sampleFor(labels []string, mk func() *sample) *sample {
	key := strings.Join(labels, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byLabel[key]; ok {
		return s
	}
	s := mk()
	s.labelKey = key
	s.labels = append([]string(nil), labels...)
	f.byLabel[key] = s
	f.samples = append(f.samples, s)
	return s
}

// pairsOf normalizes a single (possibly empty) label pair into the
// ordered-pairs form sampleFor keys on.
func pairsOf(labelName, labelValue string) []string {
	if labelName == "" {
		return nil
	}
	return []string{labelName, labelValue}
}

// Registry is an ordered collection of metric families. All methods
// are safe for concurrent use and nil-safe (a nil registry registers
// nothing and exposes nothing).
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// familyFor finds or creates the named family, enforcing one TYPE per
// name. Registering the same name with a different kind panics: that
// is a programming error that would emit invalid exposition.
func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, byLabel: make(map[string]*sample)}
	r.byName[name] = f
	r.fams = append(r.fams, f)
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.LabeledCounter(name, help, "", "")
}

// LabeledCounter registers (or finds) one labeled counter time series,
// e.g. LabeledCounter("jobs_total", ..., "workload", "app/BFV1").
func (r *Registry) LabeledCounter(name, help, labelName, labelValue string) *Counter {
	return r.CounterWith(name, help, pairsOf(labelName, labelValue)...)
}

// CounterWith registers (or finds) one counter time series carrying an
// ordered list of label pairs given as name, value, name, value, ...
// (e.g. CounterWith("peer_requests_total", ..., "peer", "w1",
// "outcome", "ok")). An odd trailing name is ignored.
func (r *Registry) CounterWith(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, kindCounter)
	s := f.sampleFor(evenPairs(labelPairs), func() *sample { return &sample{counter: &Counter{}} })
	return s.counter
}

// evenPairs drops an odd trailing element so labels always come in
// complete (name, value) pairs.
func evenPairs(pairs []string) []string {
	return pairs[:len(pairs)&^1]
}

// Gauge registers (or finds) an unlabeled settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, kindGauge)
	s := f.sampleFor(nil, func() *sample { return &sample{gauge: &Gauge{}} })
	return s.gauge
}

// GaugeFunc registers a gauge whose value is read at exposition time.
// fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.LabeledGaugeFunc(name, help, "", "", fn)
}

// LabeledGaugeFunc registers one labeled callback-gauge time series.
func (r *Registry) LabeledGaugeFunc(name, help, labelName, labelValue string, fn func() float64) {
	r.GaugeFuncWith(name, help, fn, pairsOf(labelName, labelValue)...)
}

// GaugeFuncWith registers one callback-gauge time series carrying an
// ordered list of label pairs (name, value, name, value, ...).
func (r *Registry) GaugeFuncWith(name, help string, fn func() float64, labelPairs ...string) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, kindGauge)
	f.sampleFor(evenPairs(labelPairs), func() *sample { return &sample{fn: fn} })
}

// CounterFunc registers a counter whose value is read at exposition
// time (for counts already maintained elsewhere, e.g. server atomics).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.LabeledCounterFunc(name, help, "", "", fn)
}

// LabeledCounterFunc registers one labeled callback-counter series.
func (r *Registry) LabeledCounterFunc(name, help, labelName, labelValue string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.familyFor(name, help, kindCounter)
	f.sampleFor(pairsOf(labelName, labelValue), func() *sample { return &sample{fn: fn} })
}

// Histogram registers (or finds) an unlabeled histogram. scale
// converts the base unit at exposition (0 means 1, i.e. unscaled).
func (r *Registry) Histogram(name, help string, scale float64) *Histogram {
	return r.LabeledHistogram(name, help, "", "", scale)
}

// LabeledHistogram registers (or finds) one labeled histogram series.
func (r *Registry) LabeledHistogram(name, help, labelName, labelValue string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	f := r.familyFor(name, help, kindHistogram)
	s := f.sampleFor(pairsOf(labelName, labelValue), func() *sample {
		return &sample{hist: &Histogram{scale: scale}}
	})
	return s.hist
}

// snapshotFamilies copies the family list (samples are then read under
// each family's lock by the exposition writer).
func (r *Registry) snapshotFamilies() []*family {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.fams...)
}

// orderedSamples returns a family's samples sorted by label for
// deterministic exposition.
func (f *family) orderedSamples() []*sample {
	f.mu.Lock()
	out := append([]*sample(nil), f.samples...)
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].labelKey < out[j].labelKey })
	return out
}

// value reads a scalar sample's current value.
func (s *sample) value() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return s.gauge.Value()
	case s.fn != nil:
		return s.fn()
	default:
		return 0
	}
}

// labelSuffix renders `{name="value",...}`, or "" for unlabeled
// samples. extra appends further pairs (the histogram writer's le
// label). Go's %q escaping covers the exposition format's \\, \" and
// \n.
func (s *sample) labelSuffix(extra ...string) string {
	var pairs []string
	for i := 0; i+1 < len(s.labels); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", s.labels[i], s.labels[i+1]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		pairs = append(pairs, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(pairs) == 0 {
		return ""
	}
	return "{" + strings.Join(pairs, ",") + "}"
}
