package admission

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// wellFormed is a small but complete submission: special registers,
// scoreboarded loads, a properly-armed divergent branch, and stores.
const wellFormed = `
.regs 16
    S2R R0, SR3          // global thread id
    SHL R1, R0, 2        // byte address
    LDG R2, [R1+0] &wr=sb0
    ISETP.LT P0, R0, 16
    BSSY B0, join
    @P0 BRA double
    IADD R3, R2, 1 &req=sb0
    BRA join
double:
    IADD R3, R2, R2 &req=sb0
join:
    BSYNC B0
    STG [R1+4096], R3
    EXIT
`

func TestValidateAcceptsWellFormed(t *testing.T) {
	p, err := ValidateSource("wellformed", wellFormed, Limits{})
	if err != nil {
		t.Fatalf("ValidateSource: %v", err)
	}
	if p.Len() == 0 {
		t.Fatal("empty program returned")
	}
}

// hostileWant maps each corpus file to the expected admission reason,
// or "" for programs admission must accept (their termination is the
// gas meter's job, pinned by FuzzAdmission and the gpu differential
// tests).
var hostileWant = map[string]string{
	"infinite_loop.asm":       "",
	"store_bomb.asm":          "",
	"twin_bsync.asm":          "",
	"mismatched_bsync.asm":    ReasonCFG,
	"unstructured_branch.asm": ReasonCFG,
	"rearmed_barrier.asm":     ReasonCFG,
	"falls_off_end.asm":       ReasonCFG,
	"oob_load.asm":            ReasonFootprint,
	"negative_offset.asm":     ReasonOperand,
	"register_overflow.asm":   ReasonRegisters,
	"scoreboard_overflow.asm": ReasonScoreboard,
	"brx.asm":                 ReasonOpcode,
	"trace_no_rtcore.asm":     ReasonOpcode,
	"zero_body.asm":           ReasonParse,
}

// CorpusDir is the hostile-submission corpus shared by this package's
// tests and fuzzer, the server's sandbox gate, and tools/check.sh.
const CorpusDir = "testdata/hostile"

func readCorpus(t testing.TB) map[string]string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(CorpusDir, "*.asm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	out := make(map[string]string, len(files))
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		out[filepath.Base(f)] = string(src)
	}
	return out
}

func TestHostileCorpus(t *testing.T) {
	corpus := readCorpus(t)
	if len(corpus) != len(hostileWant) {
		t.Errorf("corpus has %d files, hostileWant lists %d — keep them in sync", len(corpus), len(hostileWant))
	}
	for name, src := range corpus {
		want, ok := hostileWant[name]
		if !ok {
			t.Errorf("%s: not listed in hostileWant", name)
			continue
		}
		_, err := ValidateSource(strings.TrimSuffix(name, ".asm"), src, Limits{})
		if want == "" {
			if err != nil {
				t.Errorf("%s: want accept, got %v", name, err)
			}
			continue
		}
		var aerr *Error
		if !errors.As(err, &aerr) {
			t.Errorf("%s: want *admission.Error, got %v", name, err)
			continue
		}
		if aerr.Reason != want {
			t.Errorf("%s: want reason %q, got %q (%v)", name, want, aerr.Reason, err)
		}
	}
}

func TestReasonsCoverAllRejects(t *testing.T) {
	have := make(map[string]bool)
	for _, r := range Reasons() {
		have[r] = true
	}
	for name, want := range hostileWant {
		if want != "" && !have[want] {
			t.Errorf("%s expects reason %q not listed in Reasons()", name, want)
		}
	}
}

func TestLimitsEnforced(t *testing.T) {
	// A program longer than MaxInstrs.
	var b strings.Builder
	b.WriteString(".regs 8\n")
	for i := 0; i < 20; i++ {
		b.WriteString("    IADD R0, R0, 1\n")
	}
	b.WriteString("    EXIT\n")
	_, err := ValidateSource("long", b.String(), Limits{MaxInstrs: 10})
	var aerr *Error
	if !errors.As(err, &aerr) || aerr.Reason != ReasonLimits {
		t.Fatalf("want limits reject, got %v", err)
	}
	// Declared registers beyond the policy cap.
	_, err = ValidateSource("fat", ".regs 48\n    EXIT\n", Limits{MaxRegsPerThread: 32})
	if !errors.As(err, &aerr) || aerr.Reason != ReasonLimits {
		t.Fatalf("want limits reject, got %v", err)
	}
}

// fuzzBudget is deliberately tiny so hostile accepted inputs die fast.
var fuzzBudget = sm.Budget{MaxCycles: 20000, MaxInstrs: 40000, MaxMemBytes: 1 << 16}

// runAdmitted launches an admitted program under the fuzz budget with
// the given engine and returns the run error (nil, BudgetError,
// deadlock, ... — anything but a panic).
func runAdmitted(t testing.TB, p *isa.Program, compiled bool) (uint64, error) {
	t.Helper()
	cfg := config.Default()
	cfg.Compiled = compiled
	budget := fuzzBudget
	k := &sm.Kernel{
		Program:     p,
		NumWarps:    4,
		WarpsPerCTA: 2,
		Memory:      mem.NewMemory(),
		Budget:      &budget,
	}
	res, err := gpu.Run(cfg, k)
	_ = res
	var perr *gpu.PanicError
	if errors.As(err, &perr) {
		t.Fatalf("admitted program panicked the SM (engine compiled=%v): %v\n%s", compiled, perr, perr.Stack)
	}
	return k.Memory.Fingerprint(), err
}

// FuzzAdmission pins the sandbox contract: any source the validator
// accepts must simulate under a tiny budget without panicking, in both
// engines, with identical outcomes (same memory fingerprint, and on
// budget kills the same BudgetError).
func FuzzAdmission(f *testing.F) {
	for _, src := range readCorpus(f) {
		f.Add(src)
	}
	f.Add(wellFormed)
	f.Fuzz(func(t *testing.T, src string) {
		p, err := ValidateSource("fuzz", src, Limits{})
		if err != nil {
			var aerr *Error
			if !errors.As(err, &aerr) {
				t.Fatalf("reject without structured reason: %v", err)
			}
			return
		}
		fpC, errC := runAdmitted(t, p, true)
		fpI, errI := runAdmitted(t, p, false)
		if fpC != fpI {
			t.Fatalf("engines disagree on memory fingerprint: compiled=%x interpreted=%x", fpC, fpI)
		}
		var bC, bI *sm.BudgetError
		if errors.As(errC, &bC) != errors.As(errI, &bI) {
			t.Fatalf("engines disagree on budget kill: compiled=%v interpreted=%v", errC, errI)
		}
		if bC != nil && *bC != *bI {
			t.Fatalf("budget kills differ: compiled=%+v interpreted=%+v", *bC, *bI)
		}
	})
}
