// Package admission statically validates untrusted kernel submissions
// before they reach a simulated SM.
//
// The simulator's execution engine trusts its input: malformed control
// flow can wedge a warp on a convergence barrier no other thread will
// ever arrive at (a structural deadlock), and a handful of shapes
// (indirect branches to computed targets, TRACE without an RT core,
// undefined special registers) panic outright. Admission closes that
// surface with a pure static pass — parse with the production
// assembler, bound every declared resource against hardware limits,
// and run a barrier-stack abstract interpretation over the program's
// basic blocks that proves every divergent construct is armed by a
// convergence barrier and that BSSY/BSYNC pairs nest properly. What
// admission cannot bound statically (run time, retired instructions,
// stored memory) is handed to the gas meter in internal/sm: a program
// that passes Validate and runs under an sm.Budget never panics the
// engine — it completes, is killed with a BudgetError, or is reported
// as a resource deadlock, all deterministically. FuzzAdmission pins
// exactly that contract.
package admission

import (
	"fmt"

	"subwarpsim/internal/isa"
)

// Reject reasons, used as the {reason=...} label of
// sisimd_admission_rejects_total. Keep this set closed and small:
// every reason is a metric series.
const (
	ReasonParse      = "parse"      // assembler rejected the source text
	ReasonLimits     = "limits"     // declared resources exceed hardware/policy limits
	ReasonOpcode     = "opcode"     // opcode not admissible for untrusted code (BRX, TRACE)
	ReasonOperand    = "operand"    // operand out of range (special register, memory immediate)
	ReasonRegisters  = "registers"  // register use exceeds the declared .regs footprint
	ReasonScoreboard = "scoreboard" // scoreboard index exceeds the hardware file
	ReasonCFG        = "cfg"        // convergence-barrier structure is unsound
	ReasonFootprint  = "footprint"  // memory operand outside the declared footprint
)

// Reasons lists every reject reason, for metric pre-registration.
func Reasons() []string {
	return []string{ReasonParse, ReasonLimits, ReasonOpcode, ReasonOperand,
		ReasonRegisters, ReasonScoreboard, ReasonCFG, ReasonFootprint}
}

// Error is a structured admission reject: a machine-readable reason
// (one of the Reason constants), the offending PC where one exists
// (-1 otherwise), and a human-readable detail.
type Error struct {
	Reason string
	PC     int
	Detail string
}

func (e *Error) Error() string {
	if e.PC >= 0 {
		return fmt.Sprintf("admission: %s: pc %d: %s", e.Reason, e.PC, e.Detail)
	}
	return fmt.Sprintf("admission: %s: %s", e.Reason, e.Detail)
}

func reject(reason string, pc int, format string, args ...any) *Error {
	return &Error{Reason: reason, PC: pc, Detail: fmt.Sprintf(format, args...)}
}

// Limits bounds what an untrusted submission may declare. The zero
// value of any field means "hardware maximum" (see withDefaults);
// DefaultLimits matches the paper configuration.
type Limits struct {
	// MaxInstrs caps program length.
	MaxInstrs int
	// MaxRegsPerThread caps the declared .regs footprint.
	MaxRegsPerThread int
	// ScoreboardsPerWarp is the hardware scoreboard file size (NSB);
	// programs referencing sb indices at or above it are rejected here
	// rather than at SM construction.
	ScoreboardsPerWarp int
	// MemFootprintBytes is the submission's declared memory footprint:
	// memory-operand immediates must fall inside it. It is also the
	// natural MaxMemBytes gas budget for the run.
	MemFootprintBytes int64
}

// DefaultLimits returns the paper-configuration limits: 4K
// instructions, the full 64-register file, the Table I scoreboard file
// (8 per warp, config.Default().ScoreboardsPerWarp), and a 1 MiB
// declared footprint.
func DefaultLimits() Limits {
	return Limits{
		MaxInstrs:          4096,
		MaxRegsPerThread:   isa.NumRegs,
		ScoreboardsPerWarp: 8,
		MemFootprintBytes:  1 << 20,
	}
}

func (lim Limits) withDefaults() Limits {
	d := DefaultLimits()
	if lim.MaxInstrs <= 0 {
		lim.MaxInstrs = d.MaxInstrs
	}
	if lim.MaxRegsPerThread <= 0 || lim.MaxRegsPerThread > isa.NumRegs {
		lim.MaxRegsPerThread = isa.NumRegs
	}
	if lim.ScoreboardsPerWarp <= 0 {
		lim.ScoreboardsPerWarp = d.ScoreboardsPerWarp
	}
	if lim.MemFootprintBytes <= 0 {
		lim.MemFootprintBytes = d.MemFootprintBytes
	}
	return lim
}

// ValidateSource assembles src with the production assembler and then
// validates the result; it is the single entry point both the daemon's
// /v1/submit handler and sisim -submit go through, so local and
// server-side admission cannot drift. On success the returned program
// is safe to hand to sm.NewSM under a budget.
func ValidateSource(name, src string, lim Limits) (*isa.Program, error) {
	p, err := isa.Assemble(name, src)
	if err != nil {
		return nil, reject(ReasonParse, -1, "%v", err)
	}
	if err := Validate(p, lim); err != nil {
		return nil, err
	}
	return p, nil
}

// Validate statically checks an already-assembled program against lim.
// It returns nil, or an *Error naming the first violation.
//
// Checks, in order:
//   - program length and declared registers against Limits
//   - structural validity via isa.Program.Validate (defensive: the
//     assembler and builder already guarantee this for their outputs)
//   - admissible opcodes: BRX (runtime-computed targets cannot be
//     bounded statically and out-of-range targets panic the engine)
//     and TRACE (submissions carry no BVH/ray generator) are rejected
//   - operand ranges the structural validator does not cover: S2R
//     special-register selectors, non-negative memory immediates
//   - register indices actually referenced stay under the declared
//     .regs footprint (occupancy honesty: the declared footprint is
//     what the SM charges against its register file)
//   - scoreboard indices under the hardware file size
//   - memory-operand immediates inside the declared footprint
//   - the convergence-barrier CFG pass (see cfg.go)
func Validate(p *isa.Program, lim Limits) error {
	lim = lim.withDefaults()
	if len(p.Code) == 0 {
		return reject(ReasonParse, -1, "program %q has no instructions", p.Name)
	}
	if len(p.Code) > lim.MaxInstrs {
		return reject(ReasonLimits, -1, "program %q has %d instructions, limit %d",
			p.Name, len(p.Code), lim.MaxInstrs)
	}
	if p.RegsPerThread < 1 || p.RegsPerThread > lim.MaxRegsPerThread {
		return reject(ReasonLimits, -1, ".regs %d outside [1, %d]",
			p.RegsPerThread, lim.MaxRegsPerThread)
	}
	if err := p.Validate(); err != nil {
		return reject(ReasonParse, -1, "%v", err)
	}
	if maxSB := p.MaxScoreboard(); maxSB >= lim.ScoreboardsPerWarp {
		return reject(ReasonScoreboard, -1, "program uses sb%d but hardware has %d scoreboards/warp",
			maxSB, lim.ScoreboardsPerWarp)
	}
	for pc, in := range p.Code {
		switch in.Op {
		case isa.BRX:
			return reject(ReasonOpcode, pc,
				"BRX targets are runtime register values and cannot be admitted statically")
		case isa.TRACE:
			return reject(ReasonOpcode, pc,
				"TRACE requires an RT core; submissions have no BVH/ray generator")
		case isa.S2R:
			if in.SrcA > isa.SRThreadID {
				return reject(ReasonOperand, pc, "S2R SR%d is undefined", in.SrcA)
			}
		case isa.LDG, isa.STG, isa.TLD, isa.TEX:
			if in.Imm < 0 {
				return reject(ReasonOperand, pc,
					"memory immediate %d is negative (zero-extends to a huge address)", in.Imm)
			}
			if int64(in.Imm) >= lim.MemFootprintBytes {
				return reject(ReasonFootprint, pc,
					"memory immediate %d outside declared footprint of %d bytes",
					in.Imm, lim.MemFootprintBytes)
			}
		}
		if err := checkRegs(pc, in, p.RegsPerThread); err != nil {
			return err
		}
	}
	return checkCFG(p)
}

// checkRegs verifies that every register the instruction actually
// reads or writes is under the declared footprint. Only referenced
// fields count: the assembler zeroes unused operand fields, but
// hand-built programs may not.
func checkRegs(pc int, in isa.Instr, declared int) error {
	check := func(r uint8) error {
		if int(r) >= declared {
			return reject(ReasonRegisters, pc,
				"R%d exceeds declared .regs %d", r, declared)
		}
		return nil
	}
	var refs []uint8
	switch in.Op {
	case isa.MOVI:
		refs = []uint8{in.Dst}
	case isa.MOV, isa.MUFU:
		refs = []uint8{in.Dst, in.SrcA}
	case isa.S2R:
		refs = []uint8{in.Dst} // SrcA selects a special register, not a GPR
	case isa.IADD, isa.IMUL, isa.IAND, isa.IOR, isa.IXOR, isa.FADD, isa.FMUL:
		refs = []uint8{in.Dst, in.SrcA, in.SrcB}
	case isa.IADDI, isa.IMULI, isa.SHL, isa.SHR:
		refs = []uint8{in.Dst, in.SrcA}
	case isa.FFMA:
		refs = []uint8{in.Dst, in.SrcA, in.SrcB, in.SrcC}
	case isa.ISETP:
		refs = []uint8{in.SrcA, in.SrcB} // Dst is a predicate
	case isa.ISETPI:
		refs = []uint8{in.SrcA}
	case isa.LDG, isa.TLD:
		refs = []uint8{in.Dst, in.SrcA}
	case isa.STG:
		refs = []uint8{in.SrcA, in.SrcB}
	case isa.TEX:
		refs = []uint8{in.Dst, in.SrcA, in.SrcB}
	}
	for _, r := range refs {
		if err := check(r); err != nil {
			return err
		}
	}
	return nil
}
