package admission

import "subwarpsim/internal/isa"

// checkCFG proves the convergence-barrier structure sound by abstract
// interpretation over the program's basic blocks (reusing the compile
// pass's block map): the abstract state is the stack of armed barrier
// indices at each control-flow point.
//
// Why a stack, and why these rules: the SM's only unrecoverable
// failure mode in barrier handling is a thread arriving at a BSYNC it
// was never registered for (executeBsync panics — the invariant PR 8's
// fuzzer found violated by unstructured inputs). A thread is
// registered for barrier B exactly by executing BSSY B while active,
// and the barrier cannot be cleared while any registered thread is
// still en route to the BSYNC (reconvergence requires every
// participant arrived, blocked there, or exited). So it suffices to
// prove, statically, that every path from the program entry to each
// BSYNC B passes a still-armed BSSY B — which is precisely "B is on
// the abstract stack at the BSYNC".
//
// Rules enforced, each a reject with ReasonCFG:
//   - BSSY B pushes B; re-arming a barrier already on the stack is
//     rejected (it would break pop matching, and the house idiom never
//     produces it).
//   - BSSY B's reconvergence target must be a BSYNC of the same
//     barrier (the builder idiom: `Bssy(b, label)` with the label on
//     the BSYNC).
//   - BSYNC B must match the innermost armed barrier (pop); barriers
//     must nest.
//   - A divergent branch (predicated BRA) requires a non-empty stack:
//     splintered subwarps must have a barrier to reconverge at.
//   - Join points require entry-stack equality: two paths meeting with
//     different armed sets is unstructured control flow the barrier
//     machinery cannot express.
//   - No fall-through past the end of the program (a predicated BRA as
//     the last instruction slips through isa.Program.Validate but
//     panics the fetch path for not-taken threads).
//
// EXIT under an armed stack is deliberately allowed: releaseAfterExit
// releases blocked participants once every other participant has
// exited, so divergent-exit shapes are safe. Infinite loops also pass
// — admission proves panic-freedom, the gas meter bounds run time.
//
// Blocks unreachable from the entry are not analyzed: with BRX
// rejected at admission, every dynamically reachable PC is reachable
// in this static walk.
func checkCFG(p *isa.Program) error {
	cp := p.Compiled()
	n := len(p.Code)
	entry := make([][]uint8, len(cp.Blocks))
	visited := make([]bool, len(cp.Blocks))
	work := []int{0}
	visited[0] = true
	entry[0] = []uint8{}
	for len(work) > 0 {
		bi := work[len(work)-1]
		work = work[:len(work)-1]
		bb := cp.Blocks[bi]
		stack := append([]uint8(nil), entry[bi]...)
		for pc := bb.Start; pc < bb.End; pc++ {
			in := p.Code[pc]
			switch in.Op {
			case isa.BSSY:
				for _, armed := range stack {
					if armed == in.Barrier {
						return reject(ReasonCFG, pc,
							"BSSY B%d re-arms an already-armed barrier", in.Barrier)
					}
				}
				t := in.Target
				if t < 0 || t >= n || p.Code[t].Op != isa.BSYNC || p.Code[t].Barrier != in.Barrier {
					return reject(ReasonCFG, pc,
						"BSSY B%d reconvergence target %d is not a BSYNC B%d", in.Barrier, t, in.Barrier)
				}
				stack = append(stack, in.Barrier)
			case isa.BSYNC:
				if len(stack) == 0 {
					return reject(ReasonCFG, pc,
						"BSYNC B%d with no armed barrier on some path", in.Barrier)
				}
				if top := stack[len(stack)-1]; top != in.Barrier {
					return reject(ReasonCFG, pc,
						"BSYNC B%d does not match innermost armed barrier B%d (bad nesting)",
						in.Barrier, top)
				}
				stack = stack[:len(stack)-1]
			case isa.BRA:
				if (in.Pred != isa.PT || in.PredNeg) && len(stack) == 0 {
					return reject(ReasonCFG, pc,
						"divergent branch with no armed convergence barrier")
				}
			}
		}
		// Successor leaders by terminator. BRX/TRACE were rejected before
		// this pass runs, and BSSY targets are reconvergence metadata, not
		// jumps, so the only static edges are BRA targets and fall-through.
		term := p.Code[bb.End-1]
		var succs [2]int
		ns := 0
		switch term.Op {
		case isa.EXIT:
		case isa.BRA:
			succs[ns] = term.Target
			ns++
			if term.Pred != isa.PT || term.PredNeg {
				succs[ns] = bb.End
				ns++
			}
		default:
			succs[ns] = bb.End
			ns++
		}
		for _, s := range succs[:ns] {
			if s >= n {
				return reject(ReasonCFG, bb.End-1,
					"control flow falls off the end of the program")
			}
			si := int(cp.BlockOf[s])
			if !visited[si] {
				visited[si] = true
				entry[si] = append([]uint8(nil), stack...)
				work = append(work, si)
				continue
			}
			if !equalStacks(entry[si], stack) {
				return reject(ReasonCFG, s,
					"inconsistent barrier nesting at join point (unstructured control flow)")
			}
		}
	}
	return nil
}

func equalStacks(a, b []uint8) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
