// Structurally sound but never terminates: admission accepts it, the
// gas meter kills it (cycles or instructions, whichever budget is
// tighter).
.regs 8
loop:
    IADD R0, R0, 1
    BRA loop
