// Divergent branch with no convergence barrier armed: splintered
// subwarps would never reconverge. Rejected: cfg.
.regs 8
    S2R R0, SR0
    ISETP.LT P0, R0, 16
    @P0 BRA skip
    MOVI R1, 1
skip:
    EXIT
