// No instructions at all. Rejected: parse.
.regs 8
// nothing here
