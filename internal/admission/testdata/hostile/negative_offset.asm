// Negative memory immediate zero-extends to an address near 2^32,
// escaping any declared footprint. Rejected: operand.
.regs 8
    MOVI R0, 0
    LDG R1, [R0+-4] &wr=sb0
    EXIT
