// Arms the same barrier twice without a BSYNC in between, breaking
// BSSY/BSYNC pairing. Rejected: cfg.
.regs 8
    BSSY B0, join
    BSSY B0, join
join:
    BSYNC B0
    EXIT
