// Indirect branch: targets are runtime register values, so an
// out-of-range target cannot be excluded statically (it panics the
// fetch path). Rejected: opcode.
.regs 8
    MOVI R0, 9999
    BRX R0
