// Stores to a fresh address every iteration, growing the memory
// footprint without bound. Admission accepts it (each immediate is in
// range); the memory gas budget kills it.
.regs 8
    MOVI R0, 0
loop:
    STG [R0+0], R0
    IADD R0, R0, 4
    BRA loop
