// Declares a 4-register footprint, then writes R32: lying about the
// footprint would inflate occupancy past what the register file can
// back. Rejected: registers.
.regs 4
    MOVI R32, 1
    EXIT
