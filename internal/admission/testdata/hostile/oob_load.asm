// Load immediate far outside the declared footprint. Rejected:
// footprint.
.regs 8
    MOVI R0, 0
    LDG R1, [R0+1073741824] &wr=sb0
    EXIT
