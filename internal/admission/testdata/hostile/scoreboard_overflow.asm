// References sb12: inside the ISA encoding range but beyond the
// hardware's 8-entry scoreboard file. Rejected: scoreboard.
.regs 8
    MOVI R0, 0
    LDG R1, [R0+0] &wr=sb12
    EXIT
