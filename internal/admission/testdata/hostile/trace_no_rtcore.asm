// TRACE needs a BVH and ray generator; submissions carry neither, and
// executing it without an RT core panics. Rejected: opcode.
.regs 8
    MOVI R1, 0
    TRACE R0, R1 &wr=sb0
    EXIT
