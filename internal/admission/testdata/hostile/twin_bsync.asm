// Both divergent paths wait on the same barrier at *different* BSYNC
// instructions: statically each path is properly nested, so admission
// accepts it, but at runtime the two subwarps block at different PCs
// and the barrier is never satisfied. The run loop must report a
// structural deadlock (an error, not a panic), within budget.
.regs 8
    S2R R0, SR0
    ISETP.LT P0, R0, 16
    BSSY B0, sync_a
    @P0 BRA other
sync_a:
    BSYNC B0
    BRA done
other:
    BSYNC B0
done:
    EXIT
