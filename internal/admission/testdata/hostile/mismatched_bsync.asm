// BSYNC with no armed barrier: the shape that panics executeBsync
// ("BSYNC by non-participant threads") if it ever reaches an SM.
// Rejected: cfg.
.regs 8
    BSYNC B0
    EXIT
