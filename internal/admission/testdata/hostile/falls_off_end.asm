// The final instruction is a predicated branch: not-taken threads
// fall through past the end of the program, which panics the fetch
// path. isa.Program.Validate misses this shape (the last op is a BRA);
// the CFG pass catches the fall-through edge. Rejected: cfg.
.regs 8
    S2R R0, SR0
    ISETP.LT P0, R0, 16
    BRA start
sync:
    BSYNC B0
    EXIT
start:
    BSSY B0, sync
body:
    IADD R1, R1, 1
    @P0 BRA body
