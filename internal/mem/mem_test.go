package mem

import (
	"testing"
	"testing/quick"
)

// fillAt returns a fill function that reports data ready after lat
// cycles and counts invocations.
func fillAt(lat int64, calls *int) func(int64) int64 {
	return func(now int64) int64 {
		if calls != nil {
			*calls++
		}
		return now + lat
	}
}

func TestCacheGeometry(t *testing.T) {
	c := NewCache("L0I", 16<<10, 4, 128)
	if c.Sets() != 32 || c.Ways() != 4 {
		t.Errorf("geometry = %d sets / %d ways, want 32/4", c.Sets(), c.Ways())
	}
	// A cache smaller than ways*line clamps associativity.
	small := NewCache("tiny", 256, 4, 128)
	if small.Sets()*small.Ways() != 2 {
		t.Errorf("tiny cache holds %d lines, want 2", small.Sets()*small.Ways())
	}
}

func TestCacheGeometryPanics(t *testing.T) {
	for _, geo := range [][3]int{{0, 4, 128}, {1024, 0, 128}, {1024, 4, 0}, {64, 1, 128}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCache%v did not panic", geo)
				}
			}()
			NewCache("bad", geo[0], geo[1], geo[2])
		}()
	}
}

func TestMissThenHit(t *testing.T) {
	c := NewCache("c", 1<<10, 2, 128)
	calls := 0
	ready, hit := c.Access(0x100, 10, fillAt(300, &calls))
	if hit || ready != 310 || calls != 1 {
		t.Fatalf("first access: ready=%d hit=%v calls=%d", ready, hit, calls)
	}
	// Second access while the fill is in flight merges: hit, same ready.
	ready, hit = c.Access(0x17C, 20, fillAt(300, &calls)) // same 128B line
	if !hit || ready != 310 || calls != 1 {
		t.Fatalf("merged access: ready=%d hit=%v calls=%d", ready, hit, calls)
	}
	// After the fill completes, hits are immediate.
	ready, hit = c.Access(0x100, 500, fillAt(300, &calls))
	if !hit || ready != 500 {
		t.Fatalf("resident access: ready=%d hit=%v", ready, hit)
	}
	if c.Hits() != 2 || c.Misses() != 1 {
		t.Errorf("stats = %d/%d, want 2 hits 1 miss", c.Hits(), c.Misses())
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped single set of 2 ways: 256B cache, 128B lines.
	c := NewCache("c", 256, 2, 128)
	fill := fillAt(0, nil)
	c.Access(0*128, 0, fill) // A
	c.Access(1*128, 1, fill) // B  (set layout: both map to set 0? tags 0,1 -> sets 0,1 for 1 set? )
	// With 1 set, both land in set 0, filling both ways.
	c.Access(0*128, 2, fill) // touch A so B is LRU
	c.Access(2*128, 3, fill) // C evicts B
	if !c.Contains(0 * 128) {
		t.Error("A should be resident")
	}
	if c.Contains(1 * 128) {
		t.Error("B should have been evicted (LRU)")
	}
	if !c.Contains(2 * 128) {
		t.Error("C should be resident")
	}
}

func TestSetIndexing(t *testing.T) {
	// 2 sets, 1 way each: lines with even tags go to set 0, odd to set 1.
	c := NewCache("c", 256, 1, 128)
	if c.Sets() != 2 {
		t.Fatalf("sets = %d, want 2", c.Sets())
	}
	fill := fillAt(0, nil)
	c.Access(0*128, 0, fill) // tag 0 -> set 0
	c.Access(1*128, 1, fill) // tag 1 -> set 1
	if !c.Contains(0) || !c.Contains(128) {
		t.Fatal("different sets should not conflict")
	}
	c.Access(2*128, 2, fill) // tag 2 -> set 0, evicts tag 0
	if c.Contains(0) {
		t.Error("tag 0 should be evicted by tag 2")
	}
	if !c.Contains(128) {
		t.Error("tag 1 must survive")
	}
}

func TestThrashingConflictMisses(t *testing.T) {
	// Working set larger than capacity causes misses on every pass.
	c := NewCache("c", 512, 2, 128) // 4 lines capacity
	fill := fillAt(100, nil)
	now := int64(0)
	for pass := 0; pass < 3; pass++ {
		for line := uint64(0); line < 8; line++ { // 8-line working set
			c.Access(line*128, now, fill)
			now += 10
		}
	}
	if c.Hits() != 0 {
		t.Errorf("LRU with cyclic overflow working set should never hit, got %d hits", c.Hits())
	}
	if c.Misses() != 24 {
		t.Errorf("misses = %d, want 24", c.Misses())
	}
}

func TestFitWorkingSetAllHitsAfterWarmup(t *testing.T) {
	c := NewCache("c", 1<<10, 4, 128) // 8 lines
	fill := fillAt(100, nil)
	for line := uint64(0); line < 8; line++ {
		c.Access(line*128, 0, fill)
	}
	for pass := 0; pass < 4; pass++ {
		for line := uint64(0); line < 8; line++ {
			if _, hit := c.Access(line*128, 1000, fill); !hit {
				t.Fatalf("pass %d line %d missed", pass, line)
			}
		}
	}
}

func TestReadyNeverBeforeNow(t *testing.T) {
	c := NewCache("c", 1<<10, 4, 128)
	c.Access(0, 100, fillAt(50, nil))
	// Access the line again long after the fill completed.
	ready, hit := c.Access(0, 1000, fillAt(50, nil))
	if !hit || ready != 1000 {
		t.Errorf("ready = %d, want clamped to now=1000", ready)
	}
	// Fill function misbehaving (returns past time) is clamped too.
	ready, _ = c.Access(9999, 100, func(now int64) int64 { return 5 })
	if ready != 100 {
		t.Errorf("ready = %d, want clamped to now=100", ready)
	}
}

func TestReset(t *testing.T) {
	c := NewCache("c", 1<<10, 4, 128)
	c.Access(0, 0, fillAt(10, nil))
	c.Reset()
	if c.Contains(0) || c.Hits() != 0 || c.Misses() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestLineAddr(t *testing.T) {
	c := NewCache("c", 1<<10, 4, 128)
	if got := c.LineAddr(0x1FF); got != 0x180 {
		t.Errorf("LineAddr(0x1FF) = %#x, want 0x180", got)
	}
}

func TestCacheString(t *testing.T) {
	s := NewCache("L0I", 16<<10, 4, 128).String()
	if s == "" {
		t.Error("empty String")
	}
}

func TestMemoryStoreLoad(t *testing.T) {
	m := NewMemory()
	m.Store(0x1000, 42)
	if got := m.Load(0x1000); got != 42 {
		t.Errorf("Load = %d, want 42", got)
	}
	// Word aligning: offsets within the word alias.
	if got := m.Load(0x1002); got != 42 {
		t.Errorf("unaligned Load = %d, want 42", got)
	}
	m.Store(0x1003, 7)
	if got := m.Load(0x1000); got != 7 {
		t.Errorf("aliased Store: Load = %d, want 7", got)
	}
	if m.Written() != 1 {
		t.Errorf("Written = %d, want 1", m.Written())
	}
}

func TestMemoryDefaultDeterministic(t *testing.T) {
	a := NewMemory()
	b := NewMemory()
	for addr := uint64(0); addr < 1024; addr += 4 {
		if a.Load(addr) != b.Load(addr) {
			t.Fatalf("default value at %#x differs between instances", addr)
		}
	}
	// Different addresses should (almost always) have different values.
	same := 0
	for addr := uint64(0); addr < 4096; addr += 4 {
		if a.Load(addr) == a.Load(addr+4) {
			same++
		}
	}
	if same > 3 {
		t.Errorf("default hash too colliding: %d adjacent equal pairs", same)
	}
}

// Property: after Store(addr, v), Load(addr) == v for any addr/v.
func TestQuickMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint32) bool {
		m.Store(addr, v)
		return m.Load(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an immediate re-access of any address is always a hit with
// ready time unchanged (idempotence of residency).
func TestQuickCacheSecondAccessHits(t *testing.T) {
	c := NewCache("c", 8<<10, 4, 128)
	f := func(addr uint64, lat uint16) bool {
		now := int64(1000)
		r1, _ := c.Access(addr, now, fillAt(int64(lat), nil))
		r2, hit := c.Access(addr, now, fillAt(int64(lat), nil))
		return hit && r2 == r1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
