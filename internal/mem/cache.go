// Package mem models the SM-side memory structures: set-associative
// caches with LRU replacement and in-flight fill tracking, and the
// fixed-latency memory stub the paper uses in place of a full GPU
// memory system (Section IV-A).
package mem

import "fmt"

// Cache is a set-associative cache with LRU replacement. It tracks
// in-flight fills so that two requests to the same missing line within
// the fill window merge (MSHR-style) rather than paying the miss
// latency twice.
//
// Cache models timing only; data values live in Memory.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineBytes int
	lines     []way // sets*ways entries, set-major
	tick      int64 // LRU clock

	hits   int64
	misses int64
}

type way struct {
	valid   bool
	tag     uint64
	lastUse int64
	readyAt int64 // cycle at which an in-flight fill completes
}

// NewCache builds a cache of totalBytes capacity with the given
// associativity and line size. It panics on a non-positive or
// inconsistent geometry, since cache shapes are static configuration.
func NewCache(name string, totalBytes, ways, lineBytes int) *Cache {
	if totalBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic(fmt.Sprintf("mem: bad cache geometry %d/%d/%d", totalBytes, ways, lineBytes))
	}
	linesTotal := totalBytes / lineBytes
	if linesTotal < ways {
		ways = linesTotal
	}
	sets := linesTotal / ways
	if sets == 0 {
		panic(fmt.Sprintf("mem: cache %q too small: %dB with %dB lines", name, totalBytes, lineBytes))
	}
	return &Cache{
		name:      name,
		sets:      sets,
		ways:      ways,
		lineBytes: lineBytes,
		lines:     make([]way, sets*ways),
	}
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr / uint64(c.lineBytes) * uint64(c.lineBytes)
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Hits returns the number of accesses that found the line present
// (including fills still in flight).
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of accesses that allocated a new line.
func (c *Cache) Misses() int64 { return c.misses }

// Access probes the cache for addr at time now.
//
// On a hit it returns (readyAt, true) where readyAt is when the data is
// available: now for a resident line, or the completion time of an
// in-flight fill.
//
// On a miss it calls fill(now) — typically the next cache level's
// Access — to learn when the next level can deliver the line, allocates
// the line (LRU victim) with that completion time, and returns
// (readyAt, false).
func (c *Cache) Access(addr uint64, now int64, fill func(now int64) int64) (int64, bool) {
	c.tick++
	tag := addr / uint64(c.lineBytes)
	set := int(tag % uint64(c.sets))
	base := set * c.ways

	victim := base
	for i := base; i < base+c.ways; i++ {
		w := &c.lines[i]
		if w.valid && w.tag == tag {
			w.lastUse = c.tick
			c.hits++
			ready := w.readyAt
			if ready < now {
				ready = now
			}
			return ready, true
		}
		if !w.valid {
			victim = i
		} else if c.lines[victim].valid && w.lastUse < c.lines[victim].lastUse {
			victim = i
		}
	}

	c.misses++
	readyAt := fill(now)
	if readyAt < now {
		readyAt = now
	}
	c.lines[victim] = way{valid: true, tag: tag, lastUse: c.tick, readyAt: readyAt}
	return readyAt, false
}

// Contains reports whether the line holding addr is resident (fill may
// still be in flight). It does not touch LRU state.
func (c *Cache) Contains(addr uint64) bool {
	tag := addr / uint64(c.lineBytes)
	set := int(tag % uint64(c.sets))
	for i := set * c.ways; i < (set+1)*c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == tag {
			return true
		}
	}
	return false
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.lines {
		c.lines[i] = way{}
	}
	c.tick, c.hits, c.misses = 0, 0, 0
}

// String describes the geometry, e.g. "L0I 16KB 4w/128B (32 sets)".
func (c *Cache) String() string {
	return fmt.Sprintf("%s %dKB %dw/%dB (%d sets)",
		c.name, c.sets*c.ways*c.lineBytes/1024, c.ways, c.lineBytes, c.sets)
}
