package mem

// Memory is the functional backing store for global and texture
// address spaces. Timing comes from the fixed-latency stub in the SM
// model; Memory only supplies values so that loads return deterministic
// data and stores are visible to later loads.
//
// Unwritten locations read as a cheap deterministic hash of their
// address, which gives workload generators "random-looking" but
// reproducible data without materializing gigabytes.
type Memory struct {
	words map[uint64]uint32
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{words: make(map[uint64]uint32)}
}

// align rounds addr down to a 4-byte word boundary.
func align(addr uint64) uint64 { return addr &^ 3 }

// Load returns the 32-bit word at addr (word-aligned).
func (m *Memory) Load(addr uint64) uint32 {
	a := align(addr)
	if v, ok := m.words[a]; ok {
		return v
	}
	return DefaultValue(a)
}

// Store writes a 32-bit word at addr (word-aligned).
func (m *Memory) Store(addr uint64, v uint32) {
	m.words[align(addr)] = v
}

// Written returns how many distinct words have been stored.
func (m *Memory) Written() int { return len(m.words) }

// Snapshot returns a copy of every written word, keyed by aligned
// address.
func (m *Memory) Snapshot() map[uint64]uint32 {
	s := make(map[uint64]uint32, len(m.words))
	for a, v := range m.words {
		s[a] = v
	}
	return s
}

// Fingerprint returns an order-independent hash of the written image:
// two memories with identical (address, value) sets produce identical
// fingerprints regardless of write or iteration order. Unwritten
// default-valued words do not contribute. Differential-equivalence
// tests use it to assert that two runs retired the same architectural
// result.
func (m *Memory) Fingerprint() uint64 {
	var fp uint64
	for a, v := range m.words {
		z := a ^ uint64(v)<<32 ^ uint64(v)
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		fp += z ^ (z >> 31) // commutative combine: iteration-order free
	}
	return fp ^ uint64(len(m.words))
}

// View is a copy-on-write overlay over a base Memory: loads read
// through to the base until the view itself has stored the word, and
// stores stay private to the view until Publish folds them into the
// base.
//
// Views are the unit of memory sharding for parallel simulation: each
// SM owns one view, so concurrent SMs never touch the shared image
// while running, and gpu.Run publishes the views in SM order afterwards
// — making the final image deterministic even for overlapping writes
// (higher-numbered SMs win, exactly as when SMs simulated one after
// another). Warps on different SMs consequently do not observe each
// other's stores mid-run; like CUDA kernels without atomics, cross-SM
// communication within a launch is undefined and unsupported.
type View struct {
	base  *Memory
	words map[uint64]uint32
}

// NewView returns a fresh copy-on-write view of m.
func (m *Memory) NewView() *View {
	return &View{base: m, words: make(map[uint64]uint32)}
}

// Load returns the 32-bit word at addr: the view's own store if one
// happened, the base image otherwise.
func (v *View) Load(addr uint64) uint32 {
	a := align(addr)
	if val, ok := v.words[a]; ok {
		return val
	}
	return v.base.Load(a)
}

// Store writes a 32-bit word at addr into the view only.
func (v *View) Store(addr uint64, val uint32) {
	v.words[align(addr)] = val
}

// Written returns how many distinct words this view has stored.
func (v *View) Written() int { return len(v.words) }

// Publish folds the view's writes into the base image. Callers
// coordinate ordering: publishing concurrently with loads or other
// publishes on the same base is a data race.
func (v *View) Publish() {
	for a, val := range v.words {
		v.base.words[a] = val
	}
}

// DefaultValue is the deterministic content of unwritten memory:
// a 32-bit mix of the address (splitmix-style), stable across runs.
func DefaultValue(addr uint64) uint32 {
	z := addr + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return uint32(z ^ (z >> 31))
}
