package mem

// Memory is the functional backing store for global and texture
// address spaces. Timing comes from the fixed-latency stub in the SM
// model; Memory only supplies values so that loads return deterministic
// data and stores are visible to later loads.
//
// Unwritten locations read as a cheap deterministic hash of their
// address, which gives workload generators "random-looking" but
// reproducible data without materializing gigabytes.
type Memory struct {
	words map[uint64]uint32
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{words: make(map[uint64]uint32)}
}

// align rounds addr down to a 4-byte word boundary.
func align(addr uint64) uint64 { return addr &^ 3 }

// Load returns the 32-bit word at addr (word-aligned).
func (m *Memory) Load(addr uint64) uint32 {
	a := align(addr)
	if v, ok := m.words[a]; ok {
		return v
	}
	return DefaultValue(a)
}

// Store writes a 32-bit word at addr (word-aligned).
func (m *Memory) Store(addr uint64, v uint32) {
	m.words[align(addr)] = v
}

// Written returns how many distinct words have been stored.
func (m *Memory) Written() int { return len(m.words) }

// DefaultValue is the deterministic content of unwritten memory:
// a 32-bit mix of the address (splitmix-style), stable across runs.
func DefaultValue(addr uint64) uint32 {
	z := addr + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return uint32(z ^ (z >> 31))
}
