package mem

import "testing"

func TestViewIsolatesStoresUntilPublish(t *testing.T) {
	base := NewMemory()
	base.Store(0x100, 7)

	v := base.NewView()
	if got := v.Load(0x100); got != 7 {
		t.Fatalf("view Load(0x100) = %d, want base value 7", got)
	}
	v.Store(0x100, 42)
	v.Store(0x200, 9)
	if got := v.Load(0x100); got != 42 {
		t.Fatalf("view Load(0x100) = %d after private store, want 42", got)
	}
	if got := base.Load(0x100); got != 7 {
		t.Fatalf("base Load(0x100) = %d before Publish, want 7", got)
	}
	if base.Written() != 1 {
		t.Fatalf("base Written = %d before Publish, want 1", base.Written())
	}
	if v.Written() != 2 {
		t.Fatalf("view Written = %d, want 2", v.Written())
	}

	v.Publish()
	if got := base.Load(0x100); got != 42 {
		t.Fatalf("base Load(0x100) = %d after Publish, want 42", got)
	}
	if got := base.Load(0x200); got != 9 {
		t.Fatalf("base Load(0x200) = %d after Publish, want 9", got)
	}
}

func TestViewPublishOrderResolvesConflicts(t *testing.T) {
	// gpu.RunWorkers publishes views in ascending SM order; the
	// later-published view must win conflicting words, matching what
	// sequential simulation produced.
	base := NewMemory()
	v0 := base.NewView()
	v1 := base.NewView()
	v0.Store(0x40, 1)
	v1.Store(0x40, 2)
	v0.Publish()
	v1.Publish()
	if got := base.Load(0x40); got != 2 {
		t.Fatalf("base Load(0x40) = %d, want later-published 2", got)
	}
}

func TestViewLoadFallsThroughToDefault(t *testing.T) {
	base := NewMemory()
	v := base.NewView()
	if got, want := v.Load(0x1234), base.Load(0x1234); got != want {
		t.Fatalf("view Load = %#x, want base default %#x", got, want)
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	for i := uint64(0); i < 64; i++ {
		a.Store(i*4, uint32(i))
	}
	for i := int64(63); i >= 0; i-- {
		b.Store(uint64(i)*4, uint32(i))
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ for identical images written in opposite orders")
	}
	b.Store(0x1000, 5)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprints collide across different images")
	}
}
