// Package bits provides thread-mask utilities for 32-wide warps.
//
// A Mask is a set of lane indices within one warp: bit i is set when
// thread i participates. Masks are the currency of SIMT execution —
// divergence splits a mask into PC-aligned submasks (subwarps), and
// convergence barriers merge them back.
package bits

import (
	"fmt"
	"math/bits"
	"strings"
)

// WarpSize is the number of threads per warp, matching NVIDIA's
// architectures from Tesla through Turing.
const WarpSize = 32

// Mask is a 32-thread lane mask. The zero value is the empty set.
type Mask uint32

// FullMask has all 32 lanes set.
const FullMask Mask = 0xFFFFFFFF

// LaneMask returns a mask with only the given lane set.
// It panics if lane is outside [0, WarpSize).
func LaneMask(lane int) Mask {
	if lane < 0 || lane >= WarpSize {
		panic(fmt.Sprintf("bits: lane %d out of range", lane))
	}
	return Mask(1) << uint(lane)
}

// FirstN returns a mask with lanes [0, n) set.
// It panics if n is outside [0, WarpSize].
func FirstN(n int) Mask {
	if n < 0 || n > WarpSize {
		panic(fmt.Sprintf("bits: lane count %d out of range", n))
	}
	if n == WarpSize {
		return FullMask
	}
	return Mask(1)<<uint(n) - 1
}

// Has reports whether the given lane is set.
func (m Mask) Has(lane int) bool {
	return lane >= 0 && lane < WarpSize && m&(1<<uint(lane)) != 0
}

// Set returns m with the given lane added.
func (m Mask) Set(lane int) Mask { return m | LaneMask(lane) }

// Clear returns m with the given lane removed.
func (m Mask) Clear(lane int) Mask { return m &^ LaneMask(lane) }

// Count returns the number of set lanes.
func (m Mask) Count() int { return bits.OnesCount32(uint32(m)) }

// Empty reports whether no lanes are set.
func (m Mask) Empty() bool { return m == 0 }

// Lowest returns the lowest set lane index, or -1 if the mask is empty.
func (m Mask) Lowest() int {
	if m == 0 {
		return -1
	}
	return bits.TrailingZeros32(uint32(m))
}

// Highest returns the highest set lane index, or -1 if the mask is empty.
func (m Mask) Highest() int {
	if m == 0 {
		return -1
	}
	return 31 - bits.LeadingZeros32(uint32(m))
}

// Union returns the set union of m and o.
func (m Mask) Union(o Mask) Mask { return m | o }

// Intersect returns the set intersection of m and o.
func (m Mask) Intersect(o Mask) Mask { return m & o }

// Minus returns the lanes in m that are not in o.
func (m Mask) Minus(o Mask) Mask { return m &^ o }

// Contains reports whether every lane of o is also in m.
func (m Mask) Contains(o Mask) bool { return m&o == o }

// Overlaps reports whether m and o share at least one lane.
func (m Mask) Overlaps(o Mask) bool { return m&o != 0 }

// Lanes returns the set lane indices in ascending order.
func (m Mask) Lanes() []int {
	lanes := make([]int, 0, m.Count())
	for w := uint32(m); w != 0; w &= w - 1 {
		lanes = append(lanes, bits.TrailingZeros32(w))
	}
	return lanes
}

// ForEach calls fn for every set lane in ascending order.
func (m Mask) ForEach(fn func(lane int)) {
	for w := uint32(m); w != 0; w &= w - 1 {
		fn(bits.TrailingZeros32(w))
	}
}

// DropLowest returns m with its lowest set lane removed (the empty mask
// stays empty). Together with Lowest it gives hot loops a closure-free
// iteration idiom that visits lanes in the same ascending order as
// ForEach:
//
//	for it := m; !it.Empty(); it = it.DropLowest() {
//		lane := it.Lowest()
//		...
//	}
func (m Mask) DropLowest() Mask { return m & (m - 1) }

// String renders the mask as a hex literal plus population count,
// e.g. "0x0000000f(4)".
func (m Mask) String() string {
	return fmt.Sprintf("0x%08x(%d)", uint32(m), m.Count())
}

// Bitstring renders lane 31 on the left down to lane 0 on the right,
// useful when eyeballing divergence patterns in tests.
func (m Mask) Bitstring() string {
	var b strings.Builder
	b.Grow(WarpSize)
	for lane := WarpSize - 1; lane >= 0; lane-- {
		if m.Has(lane) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
