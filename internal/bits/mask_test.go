package bits

import (
	"testing"
	"testing/quick"
)

func TestLaneMask(t *testing.T) {
	for lane := 0; lane < WarpSize; lane++ {
		m := LaneMask(lane)
		if m.Count() != 1 {
			t.Errorf("LaneMask(%d).Count() = %d, want 1", lane, m.Count())
		}
		if !m.Has(lane) {
			t.Errorf("LaneMask(%d) does not contain lane %d", lane, lane)
		}
		if m.Lowest() != lane || m.Highest() != lane {
			t.Errorf("LaneMask(%d) lowest/highest = %d/%d", lane, m.Lowest(), m.Highest())
		}
	}
}

func TestLaneMaskPanics(t *testing.T) {
	for _, lane := range []int{-1, 32, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LaneMask(%d) did not panic", lane)
				}
			}()
			LaneMask(lane)
		}()
	}
}

func TestFirstN(t *testing.T) {
	cases := []struct {
		n    int
		want Mask
	}{
		{0, 0},
		{1, 0x1},
		{4, 0xF},
		{16, 0xFFFF},
		{32, FullMask},
	}
	for _, c := range cases {
		if got := FirstN(c.n); got != c.want {
			t.Errorf("FirstN(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestFirstNPanics(t *testing.T) {
	for _, n := range []int{-1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("FirstN(%d) did not panic", n)
				}
			}()
			FirstN(n)
		}()
	}
}

func TestSetClear(t *testing.T) {
	var m Mask
	m = m.Set(3).Set(17).Set(31)
	if m.Count() != 3 {
		t.Fatalf("Count = %d, want 3", m.Count())
	}
	if !m.Has(3) || !m.Has(17) || !m.Has(31) {
		t.Fatalf("missing expected lanes in %v", m)
	}
	m = m.Clear(17)
	if m.Has(17) || m.Count() != 2 {
		t.Fatalf("Clear(17) left %v", m)
	}
	// Clearing an absent lane is a no-op.
	if m.Clear(5) != m {
		t.Fatalf("Clear of absent lane changed mask")
	}
}

func TestEmptyMask(t *testing.T) {
	var m Mask
	if !m.Empty() {
		t.Error("zero Mask should be empty")
	}
	if m.Lowest() != -1 || m.Highest() != -1 {
		t.Error("empty mask lowest/highest should be -1")
	}
	if len(m.Lanes()) != 0 {
		t.Error("empty mask should have no lanes")
	}
}

func TestSetOps(t *testing.T) {
	a := FirstN(8)                   // lanes 0..7
	b := FirstN(12).Minus(FirstN(4)) // lanes 4..11

	if got := a.Union(b); got != FirstN(12) {
		t.Errorf("Union = %v, want %v", got, FirstN(12))
	}
	if got := a.Intersect(b); got != FirstN(8).Minus(FirstN(4)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != FirstN(4) {
		t.Errorf("Minus = %v, want %v", got, FirstN(4))
	}
	if !a.Overlaps(b) {
		t.Error("a should overlap b")
	}
	if a.Contains(b) {
		t.Error("a should not contain b")
	}
	if !FirstN(12).Contains(b) {
		t.Error("FirstN(12) should contain b")
	}
}

func TestLanesRoundTrip(t *testing.T) {
	m := Mask(0xDEADBEEF)
	var rebuilt Mask
	for _, lane := range m.Lanes() {
		rebuilt = rebuilt.Set(lane)
	}
	if rebuilt != m {
		t.Errorf("rebuilt = %v, want %v", rebuilt, m)
	}
}

func TestForEachOrder(t *testing.T) {
	m := Mask(0x80000001) // lanes 0 and 31
	var seen []int
	m.ForEach(func(lane int) { seen = append(seen, lane) })
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 31 {
		t.Errorf("ForEach visited %v, want [0 31]", seen)
	}
}

func TestBitstring(t *testing.T) {
	if got := LaneMask(0).Bitstring(); got != "00000000000000000000000000000001" {
		t.Errorf("Bitstring lane0 = %q", got)
	}
	if got := LaneMask(31).Bitstring(); got[0] != '1' {
		t.Errorf("Bitstring lane31 = %q", got)
	}
}

// Property: union and intersection behave as set algebra.
func TestQuickSetAlgebra(t *testing.T) {
	f := func(a, b uint32) bool {
		ma, mb := Mask(a), Mask(b)
		u := ma.Union(mb)
		i := ma.Intersect(mb)
		// |A ∪ B| + |A ∩ B| == |A| + |B|
		if u.Count()+i.Count() != ma.Count()+mb.Count() {
			return false
		}
		// A \ B and B are disjoint and union back to A ∪ B.
		if ma.Minus(mb).Overlaps(mb) {
			return false
		}
		return ma.Minus(mb).Union(mb) == u.Union(mb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Lanes() agrees with Has() for every lane.
func TestQuickLanesAgreeWithHas(t *testing.T) {
	f := func(a uint32) bool {
		m := Mask(a)
		set := make(map[int]bool, 32)
		for _, lane := range m.Lanes() {
			set[lane] = true
		}
		for lane := 0; lane < WarpSize; lane++ {
			if m.Has(lane) != set[lane] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the DropLowest/Lowest iteration idiom visits exactly the
// lanes ForEach visits, in the same ascending order.
func TestQuickDropLowestMatchesForEach(t *testing.T) {
	f := func(a uint32) bool {
		m := Mask(a)
		var want []int
		m.ForEach(func(lane int) { want = append(want, lane) })
		var got []int
		for it := m; !it.Empty(); it = it.DropLowest() {
			got = append(got, it.Lowest())
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
