package faults

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestNilInjectorIsInert: every method must be safe and inject nothing
// on a nil receiver — the production fast path.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Enabled() {
		t.Error("nil injector reports Enabled")
	}
	if err := in.Fire(SiteDiskRead); err != nil {
		t.Errorf("nil Fire = %v", err)
	}
	data := []byte("payload")
	if got := in.Mangle(SiteDiskWrite, data); !reflect.DeepEqual(got, data) {
		t.Errorf("nil Mangle changed data: %q", got)
	}
	if ev := in.Events(); ev != nil {
		t.Errorf("nil Events = %v", ev)
	}
	if h := in.Hits(); h != nil {
		t.Errorf("nil Hits = %v", h)
	}
	if s := in.String(); !strings.Contains(s, "none") {
		t.Errorf("nil String = %q", s)
	}
}

// TestParseSpecs exercises the SISIM_FAULTS grammar.
func TestParseSpecs(t *testing.T) {
	valid := []string{
		"simcache.disk.read=error",
		"seed=42;simcache.disk.read=error(p=0.5,n=3)",
		"server.exec=panic(n=1,after=2)",
		"gpu.sm.run=latency(d=5ms,p=0.25)",
		"simcache.disk.write=partial(n=1);simcache.disk.read=corrupt",
		" seed=7 ; server.admit = error ( p=1 ) ",
	}
	for _, spec := range valid {
		if in, err := Parse(spec); err != nil || in == nil {
			t.Errorf("Parse(%q) = %v, %v; want injector", spec, in, err)
		}
	}
	invalid := []string{
		"nonsense",
		"seed=abc;x=error",
		"x=explode",
		"x=error(p=2)",
		"x=error(p=0)",
		"x=error(q=1)",
		"x=error(p=1",
		"x=latency",        // latency needs d=
		"x=latency(d=wat)", // bad duration
		"seed=5",           // arms no rules
		"x=error(n=a)",
	}
	for _, spec := range invalid {
		if in, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) = %v, nil; want error", spec, in)
		}
	}
	if in, err := Parse(""); err != nil || in != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil, nil", in, err)
	}
}

// TestErrorInjectionCountsAndWraps: n/after semantics are exact with
// p=1 and injected errors wrap ErrInjected.
func TestErrorInjectionCountsAndWraps(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindError, N: 2, After: 1})
	var errs int
	for i := 0; i < 5; i++ {
		if err := in.Fire("s"); err != nil {
			errs++
			if !errors.Is(err, ErrInjected) {
				t.Errorf("injected error %v does not wrap ErrInjected", err)
			}
			if !strings.Contains(err.Error(), "s") {
				t.Errorf("injected error %v does not name the site", err)
			}
		}
	}
	if errs != 2 {
		t.Errorf("fired %d times, want 2 (after=1, n=2)", errs)
	}
	ev := in.Events()
	if len(ev) != 2 || ev[0].Hit != 2 || ev[1].Hit != 3 {
		t.Errorf("events = %+v, want hits 2 and 3", ev)
	}
	if h := in.Hits(); h["s"] != 5 {
		t.Errorf("hits = %v, want s:5", h)
	}
}

// TestSeededDeterminism: same seed, same hit sequence, same schedule;
// a different seed diverges (with overwhelming probability over 200
// p=0.5 draws).
func TestSeededDeterminism(t *testing.T) {
	schedule := func(seed uint64) []Event {
		in := New(seed, Rule{Site: "a", Kind: KindError, P: 0.5},
			Rule{Site: "b", Kind: KindError, P: 0.3})
		for i := 0; i < 100; i++ {
			in.Fire("a")
			in.Fire("b")
		}
		return in.Events()
	}
	a, b := schedule(7), schedule(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("p=0.5/0.3 schedule fired %d of 200: rolls look non-uniform", len(a))
	}
	if c := schedule(8); reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical 200-draw schedules")
	}
}

// TestPanicInjection: the panic payload identifies the site and hit.
func TestPanicInjection(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindPanic, After: 1})
	if err := in.Fire("s"); err != nil {
		t.Fatalf("hit 1 is immune, got %v", err)
	}
	defer func() {
		v := recover()
		pv, ok := v.(*PanicValue)
		if !ok {
			t.Fatalf("recovered %T %v, want *PanicValue", v, v)
		}
		if pv.Site != "s" || pv.Hit != 2 {
			t.Errorf("panic value = %+v, want site s hit 2", pv)
		}
	}()
	in.Fire("s")
	t.Fatal("second hit must panic")
}

// TestLatencyInjection sleeps via the injectable clock.
func TestLatencyInjection(t *testing.T) {
	in := New(1, Rule{Site: "s", Kind: KindLatency, Delay: 5 * time.Millisecond, N: 1})
	var slept time.Duration
	in.SleepFn = func(d time.Duration) { slept += d }
	for i := 0; i < 3; i++ {
		if err := in.Fire("s"); err != nil {
			t.Fatalf("latency must not return an error: %v", err)
		}
	}
	if slept != 5*time.Millisecond {
		t.Errorf("slept %v, want 5ms exactly once", slept)
	}
}

// TestMangleDeterministicDamage: partial truncates, corrupt flips one
// byte, both deterministically, and the input is never modified.
func TestMangleDeterministicDamage(t *testing.T) {
	orig := []byte(strings.Repeat("subwarp-interleaving-", 8))
	keep := append([]byte(nil), orig...)

	part := New(3, Rule{Site: "w", Kind: KindPartial})
	p1 := part.Mangle("w", orig)
	if len(p1) >= len(orig) {
		t.Errorf("partial kept %d of %d bytes", len(p1), len(orig))
	}

	corr := New(3, Rule{Site: "w", Kind: KindCorrupt})
	c1 := corr.Mangle("w", orig)
	if len(c1) != len(orig) {
		t.Fatalf("corrupt changed length %d -> %d", len(orig), len(c1))
	}
	diff := 0
	for i := range c1 {
		if c1[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corrupt flipped %d bytes, want exactly 1", diff)
	}

	if !reflect.DeepEqual(orig, keep) {
		t.Error("Mangle modified its input slice")
	}

	// Replay: same seed and hit index damage the same way.
	part2 := New(3, Rule{Site: "w", Kind: KindPartial})
	if p2 := part2.Mangle("w", keep); !reflect.DeepEqual(p1, p2) {
		t.Error("partial damage is not replayable")
	}
}

// TestFromEnv round-trips via the environment variable.
func TestFromEnv(t *testing.T) {
	t.Setenv("SISIM_FAULTS", "seed=9;server.exec=error(n=1)")
	in, err := FromEnv()
	if err != nil || in == nil {
		t.Fatalf("FromEnv = %v, %v", in, err)
	}
	if err := in.Fire(SiteServerExec); !errors.Is(err, ErrInjected) {
		t.Errorf("armed rule did not fire: %v", err)
	}
	t.Setenv("SISIM_FAULTS", "")
	if in, err := FromEnv(); err != nil || in != nil {
		t.Errorf("empty env = %v, %v; want nil, nil", in, err)
	}
}

// TestRuleAndInjectorString: the diagnostics render armed rules.
func TestRuleAndInjectorString(t *testing.T) {
	in, err := Parse("seed=4;a=error(p=0.5,n=2);b=latency(d=1ms)")
	if err != nil {
		t.Fatal(err)
	}
	s := in.String()
	for _, want := range []string{"seed=4", "a=error(p=0.5,n=2)", "b=latency(d=1ms)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}
