// Package faults is a seeded, deterministic fault-injection framework
// for the serving stack. Call sites throughout internal/simcache,
// internal/server and internal/gpu are named ("injection sites", the
// Site* constants); an Injector arms rules against those names and
// decides, per hit, whether to inject an error, extra latency, a
// panic, a partial write, or byte corruption.
//
// Determinism is the point: every decision is a pure function of
// (seed, site, rule index, per-site hit ordinal), computed by hashing
// rather than by drawing from shared PRNG state. Two processes armed
// with the same spec therefore inject the identical fault schedule as
// long as each site is hit in the same order — which the chaos tests
// arrange — and the recorded Event log makes any divergence visible.
// A nil *Injector is valid everywhere and injects nothing, so
// production hot paths pay a single nil check.
//
// Rules are armed programmatically (New) or from a spec string,
// typically the SISIM_FAULTS environment variable:
//
//	SISIM_FAULTS='seed=7;simcache.disk.read=error(p=0.5,n=3);server.exec=panic(n=1)'
//
// The grammar is semicolon-separated clauses: an optional "seed=N"
// plus any number of "site=kind(args)" rules, where kind is one of
// error, latency, panic, partial, corrupt, and args are comma-
// separated p= (activation probability, default 1), n= (max
// activations, default unlimited), after= (initial immune hits,
// default 0) and d= (injected delay for latency, e.g. 5ms).
package faults

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so
// callers can errors.Is an injected failure apart from a real one.
var ErrInjected = errors.New("injected fault")

// Kind is the failure mode a rule injects.
type Kind uint8

const (
	// KindError makes the site return an error wrapping ErrInjected.
	KindError Kind = iota
	// KindLatency delays the site by the rule's Delay, then proceeds.
	KindLatency
	// KindPanic panics at the site with a *PanicValue.
	KindPanic
	// KindPartial truncates the site's data (a torn write).
	KindPartial
	// KindCorrupt flips one byte of the site's data.
	KindCorrupt
)

func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	case KindPartial:
		return "partial"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a spec keyword onto its Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(s) {
	case "error":
		return KindError, nil
	case "latency":
		return KindLatency, nil
	case "panic":
		return KindPanic, nil
	case "partial":
		return KindPartial, nil
	case "corrupt":
		return KindCorrupt, nil
	default:
		return 0, fmt.Errorf("faults: unknown kind %q (error, latency, panic, partial, corrupt)", s)
	}
}

// Named injection sites threaded through the stack. Rules may target
// any string; these constants are the sites the repo actually fires.
const (
	// SiteDiskRead guards simcache disk reads: error/latency before the
	// read, corrupt/partial on the bytes read (tripping the checksum).
	SiteDiskRead = "simcache.disk.read"
	// SiteDiskWrite guards simcache disk writes: error/latency before
	// the write, corrupt/partial on the bytes written (a torn write the
	// next read detects).
	SiteDiskWrite = "simcache.disk.write"
	// SiteServerAdmit fires on job admission, before queueing.
	SiteServerAdmit = "server.admit"
	// SiteServerExec fires on a worker as the job starts executing.
	SiteServerExec = "server.exec"
	// SiteServerBatch fires once per /v1/batch request before fan-out.
	SiteServerBatch = "server.batch"
	// SiteSMRun fires inside each per-SM worker goroutine of
	// gpu.RunContext, before the SM simulates.
	SiteSMRun = "gpu.sm.run"
)

// Rule arms one fault against one site.
type Rule struct {
	// Site names the injection point the rule applies to.
	Site string
	// Kind is the failure mode.
	Kind Kind
	// P is the activation probability per eligible hit; 0 means 1.
	P float64
	// N caps total activations; 0 means unlimited.
	N int
	// After exempts the first After hits of the site.
	After int
	// Delay is the injected latency for KindLatency.
	Delay time.Duration
}

func (r Rule) String() string {
	var args []string
	if r.P > 0 && r.P != 1 {
		args = append(args, fmt.Sprintf("p=%g", r.P))
	}
	if r.N > 0 {
		args = append(args, fmt.Sprintf("n=%d", r.N))
	}
	if r.After > 0 {
		args = append(args, fmt.Sprintf("after=%d", r.After))
	}
	if r.Delay > 0 {
		args = append(args, fmt.Sprintf("d=%s", r.Delay))
	}
	if len(args) == 0 {
		return fmt.Sprintf("%s=%s", r.Site, r.Kind)
	}
	return fmt.Sprintf("%s=%s(%s)", r.Site, r.Kind, strings.Join(args, ","))
}

// Event records one injected fault: the replayable schedule.
type Event struct {
	Site string `json:"site"`
	Hit  int    `json:"hit"` // 1-based per-site hit ordinal
	Kind Kind   `json:"kind"`
}

// PanicValue is what KindPanic panics with, so recovery sites can tell
// an injected panic from a genuine bug.
type PanicValue struct {
	Site string
	Hit  int
}

func (p *PanicValue) String() string {
	return fmt.Sprintf("injected panic at %s (hit %d)", p.Site, p.Hit)
}

// armed is one rule plus its activation count.
type armed struct {
	Rule
	fired int
}

// Injector decides fault activations for named sites. Safe for
// concurrent use; the nil Injector is valid and injects nothing.
type Injector struct {
	seed uint64

	// SleepFn substitutes for time.Sleep on KindLatency; tests override
	// it before use. Nil means time.Sleep.
	SleepFn func(time.Duration)

	// OnEvent, when set, is invoked (outside the injector's lock) for
	// every fault that fires, with the trace ID of the request that hit
	// the site ("" when the site was reached without a traced context).
	// The observability layer uses it to feed the debug-event ring.
	// Set before the injector is shared; must be safe for concurrent use.
	OnEvent func(ev Event, traceID string)

	// TraceIDFrom extracts a request trace ID from a context for
	// OnEvent. It is an injection point so this package stays free of
	// observability dependencies. Nil means no trace correlation.
	TraceIDFrom func(ctx context.Context) string

	mu     sync.Mutex
	hits   map[string]int
	rules  map[string][]*armed
	events []Event
}

// New arms the given rules under a seed. Rules for the same site are
// evaluated in the order given.
func New(seed uint64, rules ...Rule) *Injector {
	in := &Injector{
		seed:  seed,
		hits:  make(map[string]int),
		rules: make(map[string][]*armed),
	}
	for _, r := range rules {
		if r.P == 0 {
			r.P = 1
		}
		in.rules[r.Site] = append(in.rules[r.Site], &armed{Rule: r})
	}
	return in
}

// Parse builds an Injector from a spec string (see the package
// comment for the grammar). An empty spec returns a nil Injector.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	seed := uint64(1)
	var rules []Rule
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		site, rest, found := strings.Cut(clause, "=")
		if !found {
			return nil, fmt.Errorf("faults: clause %q is not site=kind or seed=N", clause)
		}
		site = strings.TrimSpace(site)
		rest = strings.TrimSpace(rest)
		if site == "seed" {
			s, err := strconv.ParseUint(rest, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: bad seed %q", rest)
			}
			seed = s
			continue
		}
		rule := Rule{Site: site, P: 1}
		kindName := rest
		if open := strings.IndexByte(rest, '('); open >= 0 {
			if !strings.HasSuffix(rest, ")") {
				return nil, fmt.Errorf("faults: clause %q has an unclosed argument list", clause)
			}
			kindName = strings.TrimSpace(rest[:open])
			for _, arg := range strings.Split(rest[open+1:len(rest)-1], ",") {
				arg = strings.TrimSpace(arg)
				if arg == "" {
					continue
				}
				k, v, found := strings.Cut(arg, "=")
				if !found {
					return nil, fmt.Errorf("faults: argument %q in %q is not k=v", arg, clause)
				}
				var err error
				switch k {
				case "p":
					rule.P, err = strconv.ParseFloat(v, 64)
					if err == nil && (rule.P <= 0 || rule.P > 1) {
						err = fmt.Errorf("p out of (0,1]")
					}
				case "n":
					rule.N, err = strconv.Atoi(v)
				case "after":
					rule.After, err = strconv.Atoi(v)
				case "d":
					rule.Delay, err = time.ParseDuration(v)
				default:
					err = fmt.Errorf("unknown argument %q", k)
				}
				if err != nil {
					return nil, fmt.Errorf("faults: clause %q: %s=%s: %v", clause, k, v, err)
				}
			}
		}
		kind, err := ParseKind(kindName)
		if err != nil {
			return nil, err
		}
		rule.Kind = kind
		if rule.Kind == KindLatency && rule.Delay <= 0 {
			return nil, fmt.Errorf("faults: clause %q: latency needs d=<duration>", clause)
		}
		rules = append(rules, rule)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q arms no rules", spec)
	}
	return New(seed, rules...), nil
}

// FromEnv parses the SISIM_FAULTS environment variable; unset or
// empty yields a nil Injector.
func FromEnv() (*Injector, error) {
	return Parse(os.Getenv("SISIM_FAULTS"))
}

// Enabled reports whether any faults are armed. Nil-safe.
func (in *Injector) Enabled() bool { return in != nil }

// roll is the deterministic "random" draw in [0,1) for rule idx of
// site at hit: a pure function of the seed and those coordinates.
func (in *Injector) roll(site string, idx, hit int) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%d|%d", in.seed, site, idx, hit)
	// 53 mantissa bits give a uniform float in [0,1).
	return float64(h.Sum64()>>11) / (1 << 53)
}

// fire evaluates the site's rules for one hit and returns the rules
// (restricted to the given kinds) that activate plus the hit ordinal,
// recording events. Caller holds no locks.
func (in *Injector) fire(site string, want func(Kind) bool) ([]Rule, int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.hits[site]++
	hit := in.hits[site]
	var out []Rule
	for idx, a := range in.rules[site] {
		if !want(a.Kind) {
			continue
		}
		if hit <= a.After || (a.N > 0 && a.fired >= a.N) {
			continue
		}
		if a.P < 1 && in.roll(site, idx, hit) >= a.P {
			continue
		}
		a.fired++
		in.events = append(in.events, Event{Site: site, Hit: hit, Kind: a.Kind})
		out = append(out, a.Rule)
	}
	return out, hit
}

// notify invokes OnEvent for each fired rule, outside the lock.
func (in *Injector) notify(ctx context.Context, site string, hit int, fired []Rule) {
	if in.OnEvent == nil || len(fired) == 0 {
		return
	}
	traceID := ""
	if in.TraceIDFrom != nil && ctx != nil {
		traceID = in.TraceIDFrom(ctx)
	}
	for _, r := range fired {
		in.OnEvent(Event{Site: site, Hit: hit, Kind: r.Kind}, traceID)
	}
}

// Fire evaluates the control-flow kinds (error, latency, panic) at a
// site. Latency rules sleep and continue; a panic rule panics with a
// *PanicValue; an error rule returns an error wrapping ErrInjected.
// Nil-safe: a nil Injector returns nil.
func (in *Injector) Fire(site string) error {
	return in.FireCtx(context.Background(), site)
}

// FireCtx is Fire with a context carrying the request's trace identity
// for OnEvent correlation. Injection decisions are identical to Fire's
// (the context never affects determinism).
func (in *Injector) FireCtx(ctx context.Context, site string) error {
	if in == nil {
		return nil
	}
	fired, hit := in.fire(site, func(k Kind) bool {
		return k == KindError || k == KindLatency || k == KindPanic
	})
	in.notify(ctx, site, hit, fired)
	var ferr error
	for _, r := range fired {
		switch r.Kind {
		case KindLatency:
			sleep := in.SleepFn
			if sleep == nil {
				sleep = time.Sleep
			}
			sleep(r.Delay)
		case KindPanic:
			panic(&PanicValue{Site: site, Hit: hit})
		case KindError:
			if ferr == nil {
				ferr = fmt.Errorf("%s: %w", site, ErrInjected)
			}
		}
	}
	return ferr
}

// Mangle evaluates the data kinds (partial, corrupt) at a site and
// returns the possibly-damaged bytes. Partial truncates to a
// deterministic prefix; corrupt flips one deterministic byte. The
// input slice is never modified. Nil-safe: a nil Injector (or empty
// data) returns data unchanged.
func (in *Injector) Mangle(site string, data []byte) []byte {
	return in.MangleCtx(context.Background(), site, data)
}

// MangleCtx is Mangle with a context carrying the request's trace
// identity for OnEvent correlation.
func (in *Injector) MangleCtx(ctx context.Context, site string, data []byte) []byte {
	if in == nil || len(data) == 0 {
		return data
	}
	fired, hit := in.fire(site, func(k Kind) bool {
		return k == KindPartial || k == KindCorrupt
	})
	in.notify(ctx, site, hit, fired)
	if len(fired) == 0 {
		return data
	}
	out := append([]byte(nil), data...)
	for _, r := range fired {
		pos := int(in.roll(site+"|mangle", int(r.Kind), hit) * float64(len(out)))
		if pos >= len(out) {
			pos = len(out) - 1
		}
		switch r.Kind {
		case KindPartial:
			out = out[:pos]
			if len(out) == 0 {
				return out
			}
		case KindCorrupt:
			out[pos] ^= 0x55
		}
	}
	return out
}

// Events returns a copy of the injected-fault schedule so far, in
// injection order. Nil-safe.
func (in *Injector) Events() []Event {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Event(nil), in.events...)
}

// Hits returns per-site hit counts (visits to injection points,
// whether or not anything fired). Nil-safe.
func (in *Injector) Hits() map[string]int {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	m := make(map[string]int, len(in.hits))
	for k, v := range in.hits {
		m[k] = v
	}
	return m
}

// String renders the armed rules in site order (diagnostics).
func (in *Injector) String() string {
	if in == nil {
		return "faults: none"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	sites := make([]string, 0, len(in.rules))
	for s := range in.rules {
		sites = append(sites, s)
	}
	sort.Strings(sites)
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", in.seed))
	for _, s := range sites {
		for _, a := range in.rules[s] {
			parts = append(parts, a.Rule.String())
		}
	}
	return strings.Join(parts, ";")
}
