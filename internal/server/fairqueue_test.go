package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestFairQueueSetWeightsMidStream changes the weight table while
// tasks are queued: the remaining dequeues must follow the new
// weights, not the ones the tasks were pushed under. This is the
// coordinator's rebalance path — weights change while peers are
// forwarding work.
func TestFairQueueSetWeightsMidStream(t *testing.T) {
	fq := newFairQueue(64, 0, 0, nil)
	for _, tenant := range []string{"a", "a", "a", "a", "b", "b"} {
		if err := fq.push(tenant, task{tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	// Equal weights: first round alternates a, b.
	var got []string
	popN := func(n int) {
		for i := 0; i < n; i++ {
			tk, ok := fq.pop()
			if !ok {
				t.Fatal("queue drained early")
			}
			got = append(got, tk.tenant)
			fq.release(tk.tenant)
		}
	}
	popN(2)
	if strings.Join(got, ",") != "a,b" {
		t.Fatalf("pre-change pops = %v, want [a b]", got)
	}

	// Mid-stream: a's weight becomes 2. The round-robin pointer is back
	// at a, and its next visit grants two consecutive dequeues even
	// though every queued task predates the change (under the old
	// weights the order would have stayed a,b,a,a).
	fq.SetWeights(map[string]int{"a": 2})
	popN(4)
	want := "a,a,b,a"
	if joined := strings.Join(got[2:], ","); joined != want {
		t.Errorf("post-change pops = %s, want %s", joined, want)
	}

	// Weights can also shrink (and unlisted tenants default to 1):
	// swapping back mid-run is legal and takes effect immediately.
	fq.SetWeights(nil)
	for _, tenant := range []string{"a", "a", "b"} {
		if err := fq.push(tenant, task{tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	got = got[:0]
	popN(3)
	if strings.Join(got, ",") != "a,b,a" {
		t.Errorf("after weight reset pops = %v, want [a b a]", got)
	}
}

// TestFairQueueOverflowTenantSharesQuota: tenants beyond the tracked
// cap collapse into OverflowTenant and share one queued quota — the
// cardinality bound cannot be dodged by inventing fresh tenant names,
// which is exactly what forwarded-tenant headers from a coordinator
// would let a hostile client do otherwise.
func TestFairQueueOverflowTenantSharesQuota(t *testing.T) {
	names := newTenantSet()
	fq := newFairQueue(1024, 2, 0, nil)

	// Fill the tracked set.
	for i := 0; i < maxTenants; i++ {
		names.canon("t" + strconv.Itoa(i))
	}
	// Every later tenant canonicalizes to the one overflow lane.
	for i := 0; i < 2; i++ {
		tenant := names.canon("fresh-" + strconv.Itoa(i))
		if tenant != OverflowTenant {
			t.Fatalf("over-cap tenant = %q, want %q", tenant, OverflowTenant)
		}
		if err := fq.push(tenant, task{tenant: tenant}); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	// The third distinct "fresh" tenant still lands in the shared lane,
	// which is now at its queued quota.
	tenant := names.canon("fresh-2")
	if err := fq.push(tenant, task{tenant: tenant}); err != errTenantFull {
		t.Fatalf("push over shared overflow quota = %v, want errTenantFull", err)
	}
	// A tracked tenant is unaffected by the overflow lane's pressure.
	if err := fq.push(names.canon("t0"), task{tenant: "t0"}); err != nil {
		t.Fatalf("tracked tenant push: %v", err)
	}
}

// TestFairQueueDrainWithParkedWorkers: close() must wake workers
// parked in pop, let them drain what is queued, and then send every
// parked worker home with ok=false — no goroutine may stay parked
// forever and no queued task may be dropped.
func TestFairQueueDrainWithParkedWorkers(t *testing.T) {
	fq := newFairQueue(64, 0, 0, nil)

	const workers = 4
	var mu sync.Mutex
	var drained []string
	var wg sync.WaitGroup
	parked := make(chan struct{}, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parked <- struct{}{}
			for {
				tk, ok := fq.pop()
				if !ok {
					return
				}
				mu.Lock()
				drained = append(drained, tk.tenant)
				mu.Unlock()
				fq.release(tk.tenant)
			}
		}()
	}
	for i := 0; i < workers; i++ {
		<-parked
	}
	// All workers are at (or arriving at) the parked wait. Queue a few
	// tasks, then close before anything else wakes them: the tasks must
	// still be drained.
	for _, tenant := range []string{"a", "b", "a"} {
		if err := fq.push(tenant, task{tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	fq.close()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("workers still parked after close; drain hangs")
	}
	if len(drained) != 3 {
		t.Fatalf("drained %d tasks, want 3 (%v)", len(drained), drained)
	}
	if fq.Len() != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", fq.Len())
	}
	// pop after a drained close returns immediately with ok=false.
	if _, ok := fq.pop(); ok {
		t.Fatal("pop on closed drained queue returned a task")
	}
}

// TestBatchStructuredErrors is the regression test for batch error
// aggregation: failed entries stay at their own index with the status
// and structured fields their single-job form would carry, and
// sibling successes are neither dropped nor reordered.
func TestBatchStructuredErrors(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := batchRequest{Jobs: []JobSpec{
		{Microbench: 2},                      // valid
		{App: "NoSuchApp"},                   // 400: unknown workload
		{Microbench: 2, SI: true},            // valid
		{Microbench: 3, SI: true, DWS: true}, // 400: si+dws conflict
	}}
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch POST = %d", resp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(br.Results))
	}
	for _, i := range []int{0, 2} {
		if br.Results[i].Failed() || br.Results[i].Counters.Cycles == 0 {
			t.Errorf("entry %d: valid spec must succeed in place: %+v", i, br.Results[i])
		}
	}
	for _, i := range []int{1, 3} {
		r := br.Results[i]
		if !r.Failed() {
			t.Fatalf("entry %d: invalid spec must fail in place: %+v", i, r)
		}
		if r.ErrorStatus != http.StatusBadRequest {
			t.Errorf("entry %d: ErrorStatus = %d, want 400", i, r.ErrorStatus)
		}
	}
	if br.Results[1].Workload != "app/NoSuchApp" {
		t.Errorf("entry 1 workload = %q; error entries must keep their identity",
			br.Results[1].Workload)
	}
}

// TestBatchQuarantinedEntryCarriesExtra: a per-entry failure with
// structured body fields (here: quarantine) surfaces them in
// ErrorExtra so batch clients see the same machine-readable body as
// single-job clients.
func TestBatchQuarantinedEntryCarriesExtra(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Microbench: 2}
	key, err := spec.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.quarantine[key] = "test-injected"
	s.mu.Unlock()

	body, _ := json.Marshal(batchRequest{Jobs: []JobSpec{spec}})
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	r := br.Results[0]
	if r.ErrorStatus != http.StatusUnprocessableEntity {
		t.Fatalf("ErrorStatus = %d, want 422: %+v", r.ErrorStatus, r)
	}
	if q, _ := r.ErrorExtra["quarantined"].(bool); !q {
		t.Errorf("ErrorExtra missing quarantined=true: %v", r.ErrorExtra)
	}
	if got, _ := r.ErrorExtra["key"].(string); got != key.String() {
		t.Errorf("ErrorExtra key = %q, want %q", got, key.String())
	}
}

// TestBackpressure429Body pins the structured 429 body shape both the
// single node and the cluster coordinator emit: shared depth/cap, the
// tenant's own queued depth, and the queue-wait p95.
func TestBackpressure429Body(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	body := s.BackpressureBody("team-x")
	for _, field := range []string{
		"tenant", "queue_depth", "queue_cap",
		"tenant_queue_depth", "queue_wait_p95_ms", "retry_after_sec",
	} {
		if _, ok := body[field]; !ok {
			t.Errorf("backpressure body missing %q: %v", field, body)
		}
	}
	if body["tenant"] != "team-x" {
		t.Errorf("tenant = %v, want team-x", body["tenant"])
	}
	if body["queue_cap"].(int) <= 0 {
		t.Errorf("queue_cap = %v, want the configured depth", body["queue_cap"])
	}
}
