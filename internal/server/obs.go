package server

import (
	"net/http"
	"strings"
	"time"

	"subwarpsim/internal/admission"
	"subwarpsim/internal/faults"
	"subwarpsim/internal/obs"
	"subwarpsim/internal/simcache"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
)

// MetricsNamespace prefixes every Prometheus series the service
// exposes (DESIGN §13 has the naming conventions).
const MetricsNamespace = "sisimd"

// siMetrics holds the pre-registered SI mechanism roll-up instruments:
// the paper's stall-attribution buckets, TST pressure, and subwarp
// state-machine transition counts, aggregated service-wide across
// completed simulations. Per-workload series use the bounded
// WorkloadID label set ("app/<name>" / "micro/<n>").
type siMetrics struct {
	idle      map[string]*obs.Counter // stall-attribution bucket -> cycles
	stalls    *obs.Counter
	wakeups   *obs.Counter
	selects   *obs.Counter
	yields    *obs.Counter
	selBusy   *obs.Counter
	tstOver   *obs.Counter
	tstPeak   *obs.Gauge
	simCycles *obs.Counter
}

// idleBuckets are the paper's idle-cycle attribution categories; their
// per-run sum equals IdleCycles (Counters invariant).
var idleBuckets = []string{"load", "fetch", "switch", "barrier", "nowarp"}

// registerMetrics wires the server's existing atomics and caches into
// the registry as read-at-scrape callbacks, and pre-registers the SI
// roll-up instruments so every required series exists from the first
// scrape (before any job has run).
func (s *Server) registerMetrics() {
	r := s.obs.Reg
	ns := MetricsNamespace

	r.GaugeFunc(ns+"_up", "Always 1 while the process serves.", func() float64 { return 1 })
	r.GaugeFunc(ns+"_uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(s.start).Seconds() })
	r.GaugeFunc(ns+"_workers", "Simulation worker pool size.",
		func() float64 { return float64(s.opts.Workers) })
	r.GaugeFunc(ns+"_queue_depth", "Jobs waiting for a worker.",
		func() float64 { return float64(s.queue.Len()) })
	r.GaugeFunc(ns+"_queue_capacity", "Queue slots before backpressure rejects.",
		func() float64 { return float64(s.queue.Cap()) })
	r.GaugeFunc(ns+"_jobs_in_flight", "Simulations currently on a worker.",
		func() float64 { return float64(s.inFlight.Load()) })
	r.GaugeFunc(ns+"_draining", "1 while the server is draining.",
		func() float64 { return b2f(s.draining.Load()) })

	r.CounterFunc(ns+"_jobs_total", "Accepted submissions (including cache hits and coalesced).",
		func() float64 { return float64(s.jobsTotal.Load()) })
	r.CounterFunc(ns+"_jobs_done_total", "Simulations completed successfully.",
		func() float64 { return float64(s.jobsDone.Load()) })
	r.CounterFunc(ns+"_jobs_failed_total", "Simulations that returned an error.",
		func() float64 { return float64(s.jobsFailed.Load()) })
	r.CounterFunc(ns+"_rejected_total", "Submissions rejected by queue backpressure (429).",
		func() float64 { return float64(s.rejected.Load()) })
	r.CounterFunc(ns+"_rate_limited_total", "Submissions rejected by the per-tenant token bucket (429).",
		func() float64 { return float64(s.rateLimited.Load()) })
	r.CounterFunc(ns+"_coalesced_total", "Submissions deduplicated onto an in-flight twin.",
		func() float64 { return float64(s.coalesced.Load()) })
	r.CounterFunc(ns+"_panics_total", "Simulations that panicked (recovered and quarantined).",
		func() float64 { return float64(s.panics.Load()) })
	r.CounterFunc(ns+"_quarantine_hits_total", "Submissions refused because their key is quarantined.",
		func() float64 { return float64(s.quarHits.Load()) })
	r.GaugeFunc(ns+"_quarantined_keys", "Keys currently quarantined.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.quarantine))
		})

	r.CounterFunc(ns+"_cache_hits_total", "Result-cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.CounterFunc(ns+"_cache_misses_total", "Result-cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.CounterFunc(ns+"_cache_evictions_total", "Result-cache LRU evictions.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	r.CounterFunc(ns+"_cache_corrupt_evictions_total", "Cache entries rejected by checksum and discarded.",
		func() float64 { return float64(s.cache.Stats().Corrupt) })
	r.CounterFunc(ns+"_cache_disk_errors_total", "Disk cache operations that failed after retries.",
		func() float64 { return float64(s.cache.Stats().DiskErrors) })
	r.CounterFunc(ns+"_cache_retries_total", "Disk cache operations re-attempted after transient errors.",
		func() float64 { return float64(s.cache.Stats().Retries) })
	r.GaugeFunc(ns+"_cache_entries", "Resident result-cache entries.",
		func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc(ns+"_degraded", "1 while the cache serves memory-only (disk breaker tripped).",
		func() float64 { return b2f(s.degraded()) })
	r.GaugeFunc(ns+"_breaker_state", "Disk circuit breaker state: 0 closed, 1 open, 2 half-open.",
		func() float64 {
			if br, ok := s.cache.(interface{ State() simcache.BreakerState }); ok {
				return float64(br.State())
			}
			return 0
		})

	r.CounterFunc(ns+"_sim_cycles_total", "Simulated cycles across completed simulations.",
		func() float64 { return float64(s.simCycles.Load()) })
	r.GaugeFunc(ns+"_sim_cycles_per_second", "Simulation throughput (cycles per busy wall second).",
		func() float64 {
			busy := s.simBusyNS.Load()
			if busy <= 0 {
				return 0
			}
			return float64(s.simCycles.Load()) / (float64(busy) / 1e9)
		})

	// Sandbox instruments (ISSUE 9). Both label sets are closed —
	// admission reasons and budget resources are fixed constants — so
	// every series is pre-registered and visible from the first scrape.
	s.admRejects = make(map[string]*obs.Counter)
	for _, reason := range admission.Reasons() {
		s.admRejects[reason] = r.LabeledCounter(ns+"_admission_rejects_total",
			"Untrusted submissions rejected by static admission, by structured reason.",
			"reason", reason)
	}
	s.budgetKills = make(map[string]*obs.Counter)
	for _, resource := range []string{sm.ResourceCycles, sm.ResourceInstructions, sm.ResourceMemory} {
		s.budgetKills[resource] = r.LabeledCounter(ns+"_budget_kills_total",
			"Simulations terminated by the gas meter, by exhausted resource.",
			"resource", resource)
	}
	// Per-tenant queue depth: the default tenant's series exists from
	// the first scrape; other tenants register on first submission
	// (the set is bounded by maxTenants, so cardinality stays finite).
	registerTenantGauge := func(tenant string) {
		r.LabeledGaugeFunc(ns+"_tenant_queue_depth",
			"Jobs waiting for a worker, per tenant.", "tenant", tenant,
			func() float64 { return float64(s.queue.depthOf(tenant)) })
	}
	registerTenantGauge(DefaultTenant)
	s.queue.onNewTenant = func(tenant string) {
		if tenant != DefaultTenant {
			registerTenantGauge(tenant)
		}
	}

	// SI mechanism roll-ups. Pre-registered so the full label set is
	// visible before the first simulation completes.
	s.si.idle = make(map[string]*obs.Counter, len(idleBuckets))
	for _, b := range idleBuckets {
		s.si.idle[b] = r.LabeledCounter(ns+"_si_idle_cycles_total",
			"Idle block-cycles attributed to one stall cause (the paper's stall-attribution buckets).",
			"bucket", b)
	}
	s.si.stalls = r.Counter(ns+"_si_subwarp_stalls_total",
		"Subwarp ACTIVE -> STALLED transitions.")
	s.si.wakeups = r.Counter(ns+"_si_subwarp_wakeups_total",
		"Subwarp STALLED -> READY transitions.")
	s.si.selects = r.Counter(ns+"_si_subwarp_switches_total",
		"Subwarp switches (READY -> ACTIVE selects).")
	s.si.yields = r.Counter(ns+"_si_subwarp_yields_total",
		"Subwarp ACTIVE -> READY yields.")
	s.si.selBusy = r.Counter(ns+"_si_switch_latency_cycles_total",
		"Cycles spent paying the subwarp switch latency.")
	s.si.tstOver = r.Counter(ns+"_si_tst_overflows_total",
		"Stall demotions rejected because the Thread State Table was full.")
	s.si.tstPeak = r.Gauge(ns+"_si_max_live_subwarps",
		"High-water mark of concurrently live subwarps observed in any warp (TST pressure).")
	s.si.simCycles = r.Counter(ns+"_si_sim_cycles_total",
		"Simulated cycles folded into the SI roll-ups.")
}

// siRollup folds one completed simulation's counters into the
// service-level SI metrics, globally and per workload.
func (s *Server) siRollup(workload string, c stats.Counters) {
	s.si.idle["load"].Add(c.IdleLoadCycles)
	s.si.idle["fetch"].Add(c.IdleFetchCycles)
	s.si.idle["switch"].Add(c.IdleSwitchCycles)
	s.si.idle["barrier"].Add(c.IdleBarrierCycles)
	s.si.idle["nowarp"].Add(c.IdleNoWarpCycles)
	s.si.stalls.Add(c.SubwarpStalls)
	s.si.wakeups.Add(c.SubwarpWakeups)
	s.si.selects.Add(c.SubwarpSelects)
	s.si.yields.Add(c.SubwarpYields)
	s.si.selBusy.Add(c.SelectBusy)
	s.si.tstOver.Add(c.TSTOverflow)
	s.si.tstPeak.SetMax(float64(c.MaxLiveSubwarps))
	s.si.simCycles.Add(c.Cycles)

	// Per-workload mechanism visibility. WorkloadID is a bounded label
	// set (catalogued apps plus micro/<order>), so series cardinality
	// stays small.
	r := s.obs.Reg
	ns := MetricsNamespace
	r.LabeledCounter(ns+"_si_workload_subwarp_switches_total",
		"Subwarp switches per workload.", "workload", workload).Add(c.SubwarpSelects)
	r.LabeledCounter(ns+"_si_workload_stall_cycles_total",
		"Idle (stalled) cycles per workload.", "workload", workload).Add(c.IdleCycles)
	r.LabeledCounter(ns+"_si_workload_sim_cycles_total",
		"Simulated cycles per workload.", "workload", workload).Add(c.Cycles)
	r.LabeledCounter(ns+"_si_workload_jobs_total",
		"Completed simulations per workload.", "workload", workload).Inc()
}

// wireHooks attaches the observability plane to the lower layers'
// callback seams: fault injections, breaker transitions, and corrupt
// evictions all land in the debug-event ring with trace correlation.
func (s *Server) wireHooks() {
	if in := s.opts.Faults; in != nil {
		in.TraceIDFrom = obs.TraceIDFrom
		ring, log := s.obs.Ring, s.obs.Logger()
		in.OnEvent = func(ev faults.Event, traceID string) {
			ring.Add(obs.EventFault, traceID, ev.Site, ev.Kind.String())
			log.Warn("fault injected",
				"trace_id", traceID, "site", ev.Site, "kind", ev.Kind.String(), "hit", ev.Hit)
		}
	}
	if res, ok := s.cache.(*simcache.Resilient); ok {
		ring, log := s.obs.Ring, s.obs.Logger()
		trips := s.obs.Reg.Counter(MetricsNamespace+"_breaker_transitions_total",
			"Disk circuit breaker state transitions.")
		res.OnStateChange = func(from, to simcache.BreakerState) {
			trips.Inc()
			ring.Add(obs.EventBreaker, "", "simcache.breaker", from.String()+" -> "+to.String())
			log.Warn("cache breaker transition", "from", from.String(), "to", to.String())
		}
		if d := res.Disk(); d != nil {
			d.OnCorrupt = func(k simcache.Key, err error) {
				ring.Add(obs.EventCorrupt, "", "simcache.disk.read", k.String()+": "+err.Error())
			}
		}
	}
}

// stageTimer starts one request-path stage measurement; the returned
// closer records the span on the trace and the sample in the stage
// histogram. tr may be nil (untraced Submit callers).
func stageTimer(s *Server, tr *obs.Trace, stage string) func() {
	start := time.Now()
	return func() {
		end := time.Now()
		tr.AddSpan(stage, start, end)
		s.obs.ObserveStage(stage, end.Sub(start).Microseconds())
	}
}

// traceMiddleware gives every request a trace: adopt the client's
// X-Trace-ID (or mint one), echo it on the response, thread it through
// the context, and retain the finished trace for /debug/traces.
func (s *Server) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.NewTrace(sanitizeTraceID(r.Header.Get("X-Trace-ID")))
		w.Header().Set("X-Trace-ID", tr.ID)
		ctx := obs.WithTrace(r.Context(), tr)
		// Tenant identity rides the context alongside the trace; the
		// canonical form bounds both per-tenant state and label values.
		ctx = withTenant(ctx, s.tenantNames.canon(sanitizeTenant(r.Header.Get("X-Tenant"))))
		end := tr.StartSpan("request " + r.Method + " " + r.URL.Path)
		next.ServeHTTP(w, r.WithContext(ctx))
		end()
		s.obs.Traces.Add(tr)
	})
}

// sanitizeTraceID bounds client-supplied trace IDs. The rule lives in
// obs.SanitizeID so the cluster coordinator applies the identical one
// (split rules would split cross-node timelines).
func sanitizeTraceID(id string) string { return obs.SanitizeID(id) }

// wantsPrometheus reports whether the Accept header prefers the text
// exposition over JSON.
func wantsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"events": s.obs.Ring.Events()})
}

func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"trace_ids": s.obs.Traces.IDs()})
}

// handleDebugTrace exports one retained trace as Chrome trace_event
// JSON, loadable in ui.perfetto.dev.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	tr := s.obs.Traces.Get(r.PathValue("id"))
	if tr == nil {
		writeError(w, &apiError{status: http.StatusNotFound, msg: "no such trace"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	tr.WritePerfetto(w)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
