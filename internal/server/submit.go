package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"subwarpsim/internal/admission"
	"subwarpsim/internal/config"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/obs"
	"subwarpsim/internal/simcache"
	"subwarpsim/internal/sm"
)

// submitWorkloadID is the workload half of every submission's cache
// key. A single constant (rather than the client-chosen name) keeps
// the per-workload metric label set bounded; the program text itself
// is what distinguishes submissions in the content address.
const submitWorkloadID = "submit"

// maxSubmitWarps bounds a submission's launch size: enough for many
// waves over the default 64 warp slots, small enough that a hostile
// spec cannot allocate an absurd launch before the gas meter engages.
const maxSubmitWarps = 1024

// SubmitSpec is the wire form of one untrusted kernel submission:
// raw assembly text for the production assembler, a launch shape, a
// gas budget request, and the same policy knobs JobSpec exposes. All
// budget fields are requests — the server clamps them to its
// configured MaxBudget, and omitted fields take DefaultBudget, so a
// submission always runs fully metered.
type SubmitSpec struct {
	// Name labels the program in logs and error messages; it does not
	// affect results or the cache key.
	Name string `json:"name,omitempty"`
	// Assembly is the kernel source text (the sisim assembly dialect).
	Assembly string `json:"assembly"`
	// Warps is the total launch size (default 8); WarpsPerCTA sizes
	// the cooperative thread array (default 2).
	Warps       int `json:"warps,omitempty"`
	WarpsPerCTA int `json:"warps_per_cta,omitempty"`

	// MaxCycles, MaxInstrs, and MemFootprintBytes request the per-SM
	// gas budget (cycles, retired instructions, written bytes). The
	// declared footprint doubles as the admission bound on memory
	// operands: an accepted program cannot name an address outside it.
	MaxCycles         int64 `json:"max_cycles,omitempty"`
	MaxInstrs         int64 `json:"max_instrs,omitempty"`
	MemFootprintBytes int64 `json:"mem_footprint_bytes,omitempty"`

	// Policy knobs, mirroring JobSpec.
	SI        bool   `json:"si,omitempty"`
	DWS       bool   `json:"dws,omitempty"`
	Yield     bool   `json:"yield,omitempty"`
	Trigger   string `json:"trigger,omitempty"`
	Order     string `json:"order,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Compile   string `json:"compile,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// name returns the spec's display name, bounded the same way tenant
// names are (it lands in logs and error strings).
func (sp SubmitSpec) name() string {
	if sp.Name == "" || len(sp.Name) > 64 {
		return "submission"
	}
	for _, c := range sp.Name {
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return "submission"
		}
	}
	return sp.Name
}

func (sp SubmitSpec) warps() (warps, perCTA int) {
	warps, perCTA = sp.Warps, sp.WarpsPerCTA
	if warps == 0 {
		warps = 8
	}
	if perCTA == 0 {
		perCTA = 2
		if warps < perCTA {
			perCTA = warps
		}
	}
	return warps, perCTA
}

// Validate reports the first problem with the spec's launch shape and
// knobs (the assembly itself is the admission pass's job).
func (sp SubmitSpec) Validate() error {
	if sp.Assembly == "" {
		return fmt.Errorf("submission has no assembly")
	}
	warps, perCTA := sp.warps()
	switch {
	case warps < 1 || warps > maxSubmitWarps:
		return fmt.Errorf("warps %d outside [1, %d]", warps, maxSubmitWarps)
	case perCTA < 1 || perCTA > warps:
		return fmt.Errorf("warps_per_cta %d outside [1, warps=%d]", perCTA, warps)
	case sp.MaxCycles < 0 || sp.MaxInstrs < 0 || sp.MemFootprintBytes < 0:
		return fmt.Errorf("negative budget values are invalid")
	case sp.SI && sp.DWS:
		return fmt.Errorf("spec sets both si and dws; pick one")
	case sp.TimeoutMS < 0:
		return fmt.Errorf("negative timeout_ms is invalid")
	}
	if _, err := ParseTrigger(sp.Trigger); err != nil {
		return err
	}
	if _, err := ParsePolicy(sp.Policy); err != nil {
		return err
	}
	if _, err := ParseOrder(sp.Order); err != nil {
		return err
	}
	if _, err := ParseCompile(sp.Compile); err != nil {
		return err
	}
	return nil
}

// Config builds the architecture configuration for the submission,
// applying the same knob mapping as JobSpec.Config.
func (sp SubmitSpec) Config() (config.Config, error) {
	cfg := config.Default()
	if err := sp.Validate(); err != nil {
		return cfg, err
	}
	order, _ := ParseOrder(sp.Order)
	cfg.Order = order
	policy, _ := ParsePolicy(sp.Policy)
	cfg.SchedPolicy = policy
	compiled, _ := ParseCompile(sp.Compile)
	cfg.Compiled = compiled
	if sp.DWS {
		cfg = cfg.WithDWS()
	} else if sp.SI {
		trigger, _ := ParseTrigger(sp.Trigger)
		cfg = cfg.WithSI(sp.Yield, trigger)
	}
	return cfg, cfg.Validate()
}

// submitBudget resolves the spec's budget request against the
// server's policy: omitted fields take the default, every field is
// clamped to the maximum. The result always has all three limits set,
// so submissions are never unmetered.
func (s *Server) submitBudget(sp SubmitSpec) sm.Budget {
	b := s.opts.DefaultBudget
	if sp.MaxCycles > 0 {
		b.MaxCycles = sp.MaxCycles
	}
	if sp.MaxInstrs > 0 {
		b.MaxInstrs = sp.MaxInstrs
	}
	if sp.MemFootprintBytes > 0 {
		b.MaxMemBytes = sp.MemFootprintBytes
	}
	max := s.opts.MaxBudget
	if b.MaxCycles > max.MaxCycles {
		b.MaxCycles = max.MaxCycles
	}
	if b.MaxInstrs > max.MaxInstrs {
		b.MaxInstrs = max.MaxInstrs
	}
	if b.MaxMemBytes > max.MaxMemBytes {
		b.MaxMemBytes = max.MaxMemBytes
	}
	return b
}

// SubmitKernel runs one untrusted submission: static admission with
// the production validator, budget resolution, then the same
// cache/singleflight/queue path Submit uses. Rejects are structured:
// admission failures map to 400 with the machine-readable reason,
// budget kills surface later as 422 naming the exhausted resource.
func (s *Server) SubmitKernel(ctx context.Context, sp SubmitSpec) (JobResult, error) {
	tr := obs.TraceFrom(ctx)
	admitStart := time.Now()
	if err := s.preflight(ctx); err != nil {
		return JobResult{}, err
	}
	cfg, err := sp.Config()
	if err != nil {
		return JobResult{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	cfg.Faults = s.opts.Faults
	if sp.Compile == "" && s.opts.Interpret {
		cfg.Compiled = false
	}
	budget := s.submitBudget(sp)
	lim := s.opts.SubmitLimits
	lim.MemFootprintBytes = budget.MaxMemBytes
	prog, err := admission.ValidateSource(sp.name(), sp.Assembly, lim)
	if err != nil {
		var aerr *admission.Error
		if errors.As(err, &aerr) {
			if c := s.admRejects[aerr.Reason]; c != nil {
				c.Inc()
			}
			s.obs.Logger().Warn("submission rejected",
				"trace_id", obs.TraceIDFrom(ctx), "tenant", tenantFrom(ctx),
				"reason", aerr.Reason, "error", err)
			return JobResult{}, &apiError{
				status: http.StatusBadRequest,
				msg:    err.Error(),
				extra:  map[string]any{"reason": aerr.Reason, "pc": aerr.PC},
			}
		}
		return JobResult{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	warps, perCTA := sp.warps()
	kernel := &sm.Kernel{
		Program:     prog,
		NumWarps:    warps,
		WarpsPerCTA: perCTA,
		Memory:      mem.NewMemory(),
		Budget:      &budget,
	}
	key := simcache.KeyOf(cfg, kernel, submitWorkloadID)
	return s.execute(ctx, tr, admitStart, key, cfg, kernel,
		submitWorkloadID, s.jobTimeout(sp.TimeoutMS))
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp SubmitSpec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: "bad submission: " + err.Error()})
		return
	}
	ctx := r.Context()
	res, err := s.SubmitKernel(ctx, sp)
	if err != nil {
		s.obs.Logger().Warn("submission failed",
			"trace_id", obs.TraceIDFrom(ctx), "tenant", tenantFrom(ctx),
			"name", sp.name(), "status", errStatus(err), "error", err)
		writeError(w, err)
		return
	}
	s.obs.Logger().Info("submission complete",
		"trace_id", obs.TraceIDFrom(ctx), "tenant", tenantFrom(ctx),
		"key", res.Key, "cached", res.Cached, "coalesced", res.Coalesced)
	respondEnd := stageTimer(s, obs.TraceFrom(ctx), "respond")
	writeJSON(w, http.StatusOK, res)
	respondEnd()
}
