package server

import (
	"context"
	"sync"
	"time"
)

// Tenancy: every request carries a tenant identity (the X-Tenant
// header; absent or unusable means DefaultTenant). The tenant keys
// three isolation mechanisms — a token-bucket submission rate limit,
// a queued-jobs quota, and an in-flight quota with weighted-fair
// dequeue (fairqueue.go) — so one hostile or buggy client cannot
// starve the service for everyone else. Tenant names become metric
// label values, so they are sanitized like trace IDs and the distinct
// set is bounded (tenantSet) to keep series cardinality finite.

// DefaultTenant is the identity of requests that carry no (usable)
// X-Tenant header.
const DefaultTenant = "default"

// OverflowTenant absorbs tenants beyond the tracked-set cap: they
// share one bucket, one quota, and one metric series.
const OverflowTenant = "other"

type tenantCtxKey struct{}

// withTenant stores the canonical tenant name in the context.
func withTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// ContextWithTenant sanitizes and canonicalizes a client-supplied
// tenant header value (the X-Tenant header) and stores it in the
// context, exactly as the HTTP middleware does. The cluster
// coordinator uses it so a tenant forwarded over a coordinator→peer
// hop lands in the same rate-limit bucket, queue quota, and fair-share
// lane it would have hit arriving at the worker directly.
func (s *Server) ContextWithTenant(ctx context.Context, header string) context.Context {
	return withTenant(ctx, s.tenantNames.canon(sanitizeTenant(header)))
}

// tenantFrom returns the canonical tenant name, DefaultTenant when
// the context has none (direct Submit calls from tests or embedders).
func tenantFrom(ctx context.Context) string {
	if t, ok := ctx.Value(tenantCtxKey{}).(string); ok && t != "" {
		return t
	}
	return DefaultTenant
}

// sanitizeTenant bounds client-supplied tenant names the same way
// trace IDs are bounded: printable ASCII, no whitespace or quotes,
// capped length. Unusable names collapse to DefaultTenant.
func sanitizeTenant(name string) string {
	if len(name) == 0 || len(name) > 64 {
		return DefaultTenant
	}
	for _, c := range name {
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return DefaultTenant
		}
	}
	return name
}

// tenantSet canonicalizes tenant names under a cardinality cap: the
// first maxTenants distinct names are tracked as themselves, later
// ones collapse into OverflowTenant. Collapsing (rather than
// rejecting) keeps unknown tenants servable while bounding per-tenant
// state and metric series.
type tenantSet struct {
	mu    sync.Mutex
	names map[string]bool
}

func newTenantSet() *tenantSet {
	return &tenantSet{names: map[string]bool{DefaultTenant: true}}
}

func (ts *tenantSet) canon(name string) string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if ts.names[name] {
		return name
	}
	if len(ts.names) >= maxTenants {
		return OverflowTenant
	}
	ts.names[name] = true
	return name
}

// tenantLimiter is a per-tenant token bucket: each tenant accrues
// rate tokens per second up to burst, and each submission spends one.
// rate <= 0 disables limiting entirely (the default, preserving the
// pre-tenancy behavior).
type tenantLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second; <= 0 means unlimited
	burst   float64
	buckets map[string]*tokenBucket
	now     func() time.Time // test seam
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newTenantLimiter(rate float64, burst int) *tenantLimiter {
	if burst < 1 {
		burst = 1
	}
	return &tenantLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// allow spends one token from the tenant's bucket, reporting whether
// one was available. New tenants start with a full bucket.
func (l *tenantLimiter) allow(tenant string) bool {
	if l == nil || l.rate <= 0 {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, ok := l.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	b.last = now
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
