package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"subwarpsim/internal/config"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
)

// newTestServer builds a server with a small real worker pool. The
// caller must Drain it.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	s := New(opts)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return s
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (JobResult, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var res JobResult
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
	}
	return res, resp.StatusCode
}

// TestServiceCachesBitIdentically is the end-to-end acceptance check:
// the same job POSTed twice returns bit-identical results, the second
// served from the cache without re-simulating.
func TestServiceCachesBitIdentically(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := JobSpec{Microbench: 4, SI: true, Yield: true}
	first, code := postJob(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("first POST = %d", code)
	}
	if first.Cached {
		t.Fatal("first run cannot be a cache hit")
	}
	if first.Counters.Cycles == 0 || first.Counters.IssuedInstrs == 0 {
		t.Fatalf("first run produced empty counters: %+v", first.Counters)
	}

	second, code := postJob(t, ts, spec)
	if code != http.StatusOK {
		t.Fatalf("second POST = %d", code)
	}
	if !second.Cached {
		t.Fatal("identical second POST must be served from the cache")
	}
	if second.Counters != first.Counters {
		t.Errorf("cached counters differ from simulated ones:\n  first  %+v\n  second %+v",
			first.Counters, second.Counters)
	}
	if second.Key != first.Key || second.Policy != first.Policy || second.Blocks != first.Blocks {
		t.Errorf("cached metadata differs: %+v vs %+v", first, second)
	}

	m := s.MetricsSnapshot()
	if m.JobsDone != 1 {
		t.Errorf("JobsDone = %d, want exactly 1 simulation", m.JobsDone)
	}
	if m.Cache.Hits != 1 {
		t.Errorf("cache hits = %d, want 1", m.Cache.Hits)
	}
}

// TestDifferentSpecsDifferentResults guards against over-aggressive
// keying: changing the policy must change the key and re-simulate.
func TestDifferentSpecsDifferentResults(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	base, _ := postJob(t, ts, JobSpec{Microbench: 4})
	si, _ := postJob(t, ts, JobSpec{Microbench: 4, SI: true})
	if base.Key == si.Key {
		t.Fatal("baseline and SI jobs must have different cache keys")
	}
	if si.Cached {
		t.Error("a never-run spec cannot hit the cache")
	}
	if base.Counters.Cycles <= si.Counters.Cycles {
		t.Errorf("SI should shorten the divergence microbenchmark: baseline %d, SI %d",
			base.Counters.Cycles, si.Counters.Cycles)
	}
}

// fakeSim returns a runSim whose executions block until release is
// closed (or the job context ends), counting starts.
func fakeSim(started chan<- struct{}, release <-chan struct{}) func(context.Context, config.Config, *sm.Kernel) (gpu.Result, error) {
	return func(ctx context.Context, cfg config.Config, k *sm.Kernel) (gpu.Result, error) {
		if started != nil {
			started <- struct{}{}
		}
		select {
		case <-release:
			return gpu.Result{Config: cfg, Blocks: 1, Counters: stats.Counters{Cycles: 42}}, nil
		case <-ctx.Done():
			return gpu.Result{}, ctx.Err()
		}
	}
}

// TestQueueBackpressure fills the single worker and the queue, then
// expects 429 with Retry-After on the next submission.
func TestQueueBackpressure(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	s.runSim = fakeSim(started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	// Distinct keys so they do not coalesce: one on the worker, one in
	// the queue.
	for _, size := range []int{1, 2} {
		wg.Add(1)
		go func(size int) {
			defer wg.Done()
			if _, code := postJob(t, ts, JobSpec{Microbench: size}); code != http.StatusOK {
				t.Errorf("job %d = %d, want 200", size, code)
			}
		}(size)
	}
	<-started // worker is busy; the second job sits in the queue

	waitFor(t, func() bool { return s.queue.Len() == 1 })
	body, _ := json.Marshal(JobSpec{Microbench: 4})
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue POST = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}

	close(release)
	wg.Wait()
	if m := s.MetricsSnapshot(); m.Rejected != 1 {
		t.Errorf("Rejected = %d, want 1", m.Rejected)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobTimeout submits a job with a 1ms budget against a simulation
// that never finishes on its own; the job must be cancelled promptly
// and reported as a gateway timeout.
func TestJobTimeout(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	s.runSim = fakeSim(nil, nil) // blocks until ctx.Done
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	_, code := postJob(t, ts, JobSpec{Microbench: 4, TimeoutMS: 1})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("timed-out job = %d, want 504", code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v; cancellation is not prompt", elapsed)
	}
	if m := s.MetricsSnapshot(); m.JobsFailed != 1 {
		t.Errorf("JobsFailed = %d, want 1", m.JobsFailed)
	}
}

// TestBatchCoalescesDuplicates posts one batch holding the same spec
// many times: exactly one simulation runs, every item gets the same
// result, and the duplicates are reported as coalesced or cached.
func TestBatchCoalescesDuplicates(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	var mu sync.Mutex
	sims := 0
	inner := s.runSim
	s.runSim = func(ctx context.Context, cfg config.Config, k *sm.Kernel) (gpu.Result, error) {
		mu.Lock()
		sims++
		mu.Unlock()
		return inner(ctx, cfg, k)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	req := batchRequest{}
	for i := 0; i < n; i++ {
		req.Jobs = append(req.Jobs, JobSpec{Microbench: 2, SI: true})
	}
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch POST = %d", resp.StatusCode)
	}
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != n {
		t.Fatalf("got %d results, want %d", len(br.Results), n)
	}
	for i, r := range br.Results {
		if r.Error != "" {
			t.Fatalf("item %d failed: %s", i, r.Error)
		}
		if r.Counters != br.Results[0].Counters {
			t.Errorf("item %d counters differ from item 0", i)
		}
	}
	if sims != 1 {
		t.Errorf("batch of %d identical jobs ran %d simulations, want 1", n, sims)
	}
}

// TestBatchMixedValidity: invalid items fail item-locally without
// sinking the batch.
func TestBatchMixedValidity(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := batchRequest{Jobs: []JobSpec{
		{Microbench: 2},
		{App: "NoSuchApp"},
	}}
	body, _ := json.Marshal(req)
	resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br batchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Results[0].Error != "" || br.Results[0].Counters.Cycles == 0 {
		t.Errorf("valid item must succeed: %+v", br.Results[0])
	}
	if br.Results[1].Error == "" {
		t.Error("invalid item must carry an error")
	}
}

// TestAbandonedFlightIsCancelled: when the only waiter disconnects,
// the in-flight simulation's context must be cancelled.
func TestAbandonedFlightIsCancelled(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	started := make(chan struct{}, 1)
	cancelled := make(chan struct{}, 1)
	s.runSim = func(ctx context.Context, cfg config.Config, k *sm.Kernel) (gpu.Result, error) {
		started <- struct{}{}
		<-ctx.Done()
		cancelled <- struct{}{}
		return gpu.Result{}, ctx.Err()
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, JobSpec{Microbench: 4})
		errc <- err
	}()
	<-started
	cancel() // the only client goes away

	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned simulation was not cancelled")
	}
	if err := <-errc; err == nil || errStatus(err) != http.StatusRequestTimeout {
		t.Errorf("abandoned submit error = %v", err)
	}
}

// TestDrainRejectsAndFinishes: draining finishes in-flight work, then
// refuses new jobs and reports unhealthy.
func TestDrainRejectsAndFinishes(t *testing.T) {
	s := New(Options{Workers: 1})
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	s.runSim = fakeSim(started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resc := make(chan JobResult, 1)
	go func() {
		res, _ := postJob(t, ts, JobSpec{Microbench: 2})
		resc <- res
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return s.draining.Load() })

	// While draining: health is 503 and new jobs are refused.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", resp.StatusCode)
	}
	if _, code := postJob(t, ts, JobSpec{Microbench: 4}); code != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", code)
	}

	close(release) // let the in-flight job finish
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if res := <-resc; res.Counters.Cycles != 42 {
		t.Errorf("in-flight job must complete during drain: %+v", res)
	}
}

// TestDrainDeadlineCancelsJobs: when the drain budget expires, stuck
// jobs are cancelled instead of wedging shutdown.
func TestDrainDeadlineCancelsJobs(t *testing.T) {
	s := New(Options{Workers: 1})
	started := make(chan struct{}, 1)
	s.runSim = fakeSim(started, nil) // never finishes on its own

	go s.Submit(context.Background(), JobSpec{Microbench: 2})
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("drain past deadline must report the cancellation")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain took %v after a 50ms budget", elapsed)
	}
}

// TestHealthzAndMetricsEndpoints sanity-checks the observability
// surface.
func TestHealthzAndMetricsEndpoints(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	postJob(t, ts, JobSpec{Microbench: 2})
	postJob(t, ts, JobSpec{Microbench: 2})

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.JobsTotal != 2 || m.JobsDone != 1 || m.Cache.Hits != 1 {
		t.Errorf("metrics = total %d done %d hits %d, want 2/1/1",
			m.JobsTotal, m.JobsDone, m.Cache.Hits)
	}
	if m.CacheHitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", m.CacheHitRate)
	}
	if m.LatencyP50MS <= 0 {
		t.Errorf("p50 latency = %v, want > 0", m.LatencyP50MS)
	}
	if m.Workers != 1 || m.QueueCap != 64 {
		t.Errorf("workers/queue = %d/%d", m.Workers, m.QueueCap)
	}
	// One real simulation completed, so the throughput gauges must be
	// live: cycles accumulated and a positive cycles/sec rate.
	if m.SimCyclesTotal <= 0 {
		t.Errorf("sim_cycles_total = %d, want > 0 after a completed job", m.SimCyclesTotal)
	}
	if m.SimCyclesPerSecond <= 0 {
		t.Errorf("sim_cycles_per_second = %v, want > 0 after a completed job", m.SimCyclesPerSecond)
	}
}

// TestBadRequests covers the HTTP validation paths.
func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, MaxBatch: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for name, tc := range map[string]struct {
		path, body string
		want       int
	}{
		"malformed json":   {"/v1/jobs", "{", http.StatusBadRequest},
		"no workload":      {"/v1/jobs", "{}", http.StatusBadRequest},
		"both workloads":   {"/v1/jobs", `{"app":"BFV1","microbench":4}`, http.StatusBadRequest},
		"unknown app":      {"/v1/jobs", `{"app":"Nope"}`, http.StatusBadRequest},
		"bad trigger":      {"/v1/jobs", `{"microbench":4,"si":true,"trigger":"most"}`, http.StatusBadRequest},
		"si and dws":       {"/v1/jobs", `{"microbench":4,"si":true,"dws":true}`, http.StatusBadRequest},
		"negative timeout": {"/v1/jobs", `{"microbench":4,"timeout_ms":-1}`, http.StatusBadRequest},
		"empty batch":      {"/v1/batch", `{"jobs":[]}`, http.StatusBadRequest},
		"oversized batch":  {"/v1/batch", `{"jobs":[{"microbench":1},{"microbench":2},{"microbench":4}]}`, http.StatusBadRequest},
		"get on job route": {"/v1/jobs", "", http.StatusMethodNotAllowed},
		"unknown route":    {"/v1/nope", `{}`, http.StatusNotFound},
	} {
		t.Run(name, func(t *testing.T) {
			var resp *http.Response
			var err error
			if tc.body == "" {
				resp, err = ts.Client().Get(ts.URL + tc.path)
			} else {
				resp, err = ts.Client().Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Errorf("%s %q = %d, want %d", tc.path, tc.body, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestAppsEndpoint lists the application catalogue.
func TestAppsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/v1/apps")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var apps []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&apps); err != nil {
		t.Fatal(err)
	}
	if len(apps) == 0 {
		t.Fatal("apps catalogue is empty")
	}
}

// TestSpecValidation exercises JobSpec.Validate directly.
func TestSpecValidation(t *testing.T) {
	valid := []JobSpec{
		{Microbench: 4},
		{Microbench: 32, SI: true, Yield: true, Trigger: "all", Order: "largest"},
		{App: "BFV1", DWS: true},
		{Microbench: 1, SI: true, MaxSubwarps: 2, LatencyCycles: 300, WarpSlots: 16},
		{Microbench: 4, Compile: "off"},
		{Microbench: 4, Compile: "ON"},
		{Workload: "gemm"},
		{Workload: "bfs", SI: true, Yield: true},
		{Workload: "texture", Policy: "wasp"},
		{Microbench: 4, Policy: "gto"},
		{App: "BFV1", Policy: "LRR"},
	}
	for _, spec := range valid {
		if err := spec.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", spec, err)
		}
	}
	invalid := []JobSpec{
		{},
		{Microbench: 3},
		{Microbench: -1},
		{Microbench: 4, App: "BFV1"},
		{Microbench: 4, SI: true, DWS: true},
		{Microbench: 4, Order: "sideways"},
		{Microbench: 4, Trigger: "sometimes"},
		{Microbench: 4, WarpSlots: -2},
		{App: "NotAnApp"},
		{Microbench: 4, Compile: "maybe"},
		{Workload: "nosuch"},
		{Workload: "gemm", App: "BFV1"},
		{Workload: "gemm", Microbench: 4},
		{Workload: "gemm", App: "BFV1", Microbench: 4},
		{Microbench: 4, Policy: "fifo"},
	}
	for _, spec := range invalid {
		if err := spec.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", spec)
		}
	}
}

// TestSpecConfigKnobs checks the spec-to-config translation.
func TestSpecConfigKnobs(t *testing.T) {
	cfg, err := JobSpec{
		Microbench: 4, SI: true, Yield: true, Trigger: "any",
		LatencyCycles: 300, WarpSlots: 16, MaxSubwarps: 2, Order: "random",
	}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.SI.Enabled || !cfg.SI.Yield || cfg.SI.Trigger != config.TriggerAnyStalled {
		t.Errorf("SI knobs not applied: %+v", cfg.SI)
	}
	if cfg.L1MissLatency != 300 || cfg.WarpSlotsPerBlock != 16 ||
		cfg.SI.MaxSubwarps != 2 || cfg.Order != config.OrderRandom {
		t.Errorf("architecture knobs not applied: lat=%d slots=%d max=%d order=%d",
			cfg.L1MissLatency, cfg.WarpSlotsPerBlock, cfg.SI.MaxSubwarps, cfg.Order)
	}

	dws, err := JobSpec{App: "BFV1", DWS: true}.Config()
	if err != nil {
		t.Fatal(err)
	}
	if !dws.SI.DWS {
		t.Error("DWS knob not applied")
	}
	if got := (JobSpec{App: "BFV1", DWS: true}).WorkloadID(); got != "app/BFV1" {
		t.Errorf("WorkloadID = %q", got)
	}
	if got := (JobSpec{Microbench: 8}).WorkloadID(); got != "micro/8" {
		t.Errorf("WorkloadID = %q", got)
	}

	for compile, want := range map[string]bool{"": true, "on": true, "off": false} {
		cfg, err := JobSpec{Microbench: 4, Compile: compile}.Config()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Compiled != want {
			t.Errorf("Compile=%q → Compiled=%v, want %v", compile, cfg.Compiled, want)
		}
	}

	for policy, want := range map[string]config.SchedPolicy{
		"": config.SchedLRR, "lrr": config.SchedLRR,
		"gto": config.SchedGTO, "wasp": config.SchedWaSP,
	} {
		cfg, err := JobSpec{Microbench: 4, Policy: policy}.Config()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.SchedPolicy != want {
			t.Errorf("Policy=%q → SchedPolicy=%v, want %v", policy, cfg.SchedPolicy, want)
		}
	}
}

// TestSpecWorkloadGenerators checks the generator-family workload kind:
// kernels build, and the cache-key workload ID is namespaced away from
// apps and microbenchmarks.
func TestSpecWorkloadGenerators(t *testing.T) {
	spec := JobSpec{Workload: "gemm", Policy: "gto"}
	if got := spec.WorkloadID(); got != "gen/gemm" {
		t.Errorf("WorkloadID = %q, want gen/gemm", got)
	}
	k, err := spec.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	if k == nil || len(k.Program.Code) == 0 {
		t.Fatal("BuildKernel returned an empty kernel")
	}
	if _, err := (JobSpec{Workload: "nosuch"}).BuildKernel(); err == nil {
		t.Error("unknown generator must fail to build")
	}
}

// TestServiceWorkloadPolicyJobs drives generator-family jobs through
// the HTTP surface: the scheduler policy must key the cache (LRR and
// GTO runs of the same family are distinct entries) and an unknown
// family must be a client error, not a 500.
func TestServiceWorkloadPolicyJobs(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	lrr, code := postJob(t, ts, JobSpec{Workload: "bfs"})
	if code != http.StatusOK {
		t.Fatalf("lrr POST = %d", code)
	}
	gto, code := postJob(t, ts, JobSpec{Workload: "bfs", Policy: "gto"})
	if code != http.StatusOK {
		t.Fatalf("gto POST = %d", code)
	}
	if lrr.Key == gto.Key {
		t.Error("scheduler policy must be part of the cache key")
	}
	if gto.Cached {
		t.Error("a never-run policy cell cannot hit the cache")
	}
	if lrr.Counters.Cycles == 0 || gto.Counters.Cycles == 0 {
		t.Fatalf("empty counters: lrr %+v gto %+v", lrr.Counters, gto.Counters)
	}

	if _, code := postJob(t, ts, JobSpec{Workload: "nosuch"}); code != http.StatusBadRequest {
		t.Errorf("unknown workload POST = %d, want %d", code, http.StatusBadRequest)
	}
}

// TestCompileEngineChoice pins the serving contract of the execution
// engine knob: engine choice is not an architecture parameter, so a
// compiled job and its interpreted twin share one cache key (the
// interpreted re-POST is a hit) and report bit-identical counters —
// including on a server whose default engine is the interpreter
// (Options.Interpret, sisimd -compile off).
func TestCompileEngineChoice(t *testing.T) {
	for _, srvOpts := range []struct {
		name string
		opts Options
	}{
		{"compiled-default", Options{Workers: 2}},
		{"interpret-default", Options{Workers: 2, Interpret: true}},
	} {
		t.Run(srvOpts.name, func(t *testing.T) {
			s := newTestServer(t, srvOpts.opts)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			first, code := postJob(t, ts, JobSpec{Microbench: 4, SI: true, Compile: "on"})
			if code != http.StatusOK {
				t.Fatalf("compiled POST = %d", code)
			}
			if first.Cached || first.Counters.Cycles == 0 {
				t.Fatalf("compiled run: cached=%v counters=%+v", first.Cached, first.Counters)
			}
			for _, compile := range []string{"off", ""} {
				res, code := postJob(t, ts, JobSpec{Microbench: 4, SI: true, Compile: compile})
				if code != http.StatusOK {
					t.Fatalf("compile=%q POST = %d", compile, code)
				}
				if !res.Cached {
					t.Errorf("compile=%q must share the compiled run's cache key", compile)
				}
				if res.Counters != first.Counters {
					t.Errorf("compile=%q counters differ:\n  compiled %+v\n  got      %+v",
						compile, first.Counters, res.Counters)
				}
			}
		})
	}
}
