package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// submitAsm is a well-formed untrusted kernel: scoreboarded loads, a
// properly-armed divergent branch, stores. Mirrors the admission
// package's acceptance exemplar.
const submitAsm = `
.regs 16
    S2R R0, SR3
    SHL R1, R0, 2
    LDG R2, [R1+0] &wr=sb0
    ISETP.LT P0, R0, 16
    BSSY B0, join
    @P0 BRA double
    IADD R3, R2, 1 &req=sb0
    BRA join
double:
    IADD R3, R2, R2 &req=sb0
join:
    BSYNC B0
    STG [R1+4096], R3
    EXIT
`

// spinAsm never exits; only the gas meter stops it.
const spinAsm = `
.regs 8
    S2R R0, SR3
    SHL R0, R0, 8
loop:
    STG [R0+0], R0
    IADD R0, R0, 4
    BRA loop
`

// hostileCorpusDir reaches the admission package's shared corpus; the
// sandbox gate in tools/check.sh feeds the same files to a live
// daemon.
const hostileCorpusDir = "../admission/testdata/hostile"

// postSubmit POSTs a SubmitSpec with an optional X-Tenant header and
// returns the status plus the decoded JSON body.
func postSubmit(t *testing.T, ts *httptest.Server, tenant string, sp SubmitSpec) (int, map[string]any) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/submit", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("undecodable response (status %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, m
}

func TestSubmitWellFormed(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	sp := SubmitSpec{Name: "demo", Assembly: submitAsm}
	code, body := postSubmit(t, ts, "", sp)
	if code != http.StatusOK {
		t.Fatalf("submit = %d: %v", code, body)
	}
	if w, _ := body["workload"].(string); w != submitWorkloadID {
		t.Errorf("workload = %q, want %q", w, submitWorkloadID)
	}
	counters, _ := body["counters"].(map[string]any)
	if cy, _ := counters["Cycles"].(float64); cy <= 0 {
		t.Errorf("no cycles simulated: %v", body)
	}
	if cached, _ := body["cached"].(bool); cached {
		t.Error("first submission cannot be a cache hit")
	}
	// Bit-identical replay from the cache.
	code2, body2 := postSubmit(t, ts, "", sp)
	if code2 != http.StatusOK {
		t.Fatalf("resubmit = %d", code2)
	}
	if cached, _ := body2["cached"].(bool); !cached {
		t.Error("identical resubmission should hit the cache")
	}
	if body["key"] != body2["key"] {
		t.Errorf("keys differ across identical submissions: %v vs %v", body["key"], body2["key"])
	}
}

// tinyBudget keeps hostile programs' kill times trivial in tests.
func tinyBudget(sp SubmitSpec) SubmitSpec {
	sp.MaxCycles = 20000
	sp.MaxInstrs = 40000
	sp.MemFootprintBytes = 1 << 16
	return sp
}

// TestSubmitHostileCorpus drives the shared hostile corpus through the
// live HTTP pipeline: every program is either rejected up front with a
// structured reason (400) or terminated deterministically by the gas
// meter / deadlock detector (422) — and the service stays healthy.
func TestSubmitHostileCorpus(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The three corpus programs admission must accept (their
	// termination is the gas meter's job); everything else rejects.
	admitted := map[string]bool{
		"infinite_loop.asm": true,
		"store_bomb.asm":    true,
		"twin_bsync.asm":    true,
	}
	files, err := filepath.Glob(filepath.Join(hostileCorpusDir, "*.asm"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no hostile corpus at %s: %v", hostileCorpusDir, err)
	}
	var rejects, kills int
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		name := filepath.Base(f)
		code, body := postSubmit(t, ts, "", tinyBudget(SubmitSpec{Name: name, Assembly: string(src)}))
		if admitted[name] {
			if code != http.StatusUnprocessableEntity {
				t.Errorf("%s: status %d, want 422 (budget kill or deadlock): %v", name, code, body)
				continue
			}
			_, budget := body["budget_exhausted"]
			_, deadlock := body["deadlock"]
			if !budget && !deadlock {
				t.Errorf("%s: 422 without budget_exhausted or deadlock marker: %v", name, body)
			}
			kills++
		} else {
			if code != http.StatusBadRequest {
				t.Errorf("%s: status %d, want 400 (admission reject): %v", name, code, body)
				continue
			}
			if r, _ := body["reason"].(string); r == "" {
				t.Errorf("%s: reject without structured reason: %v", name, body)
			}
			rejects++
		}
	}
	if rejects == 0 || kills == 0 {
		t.Fatalf("corpus exercised nothing: %d rejects, %d kills", rejects, kills)
	}

	// The daemon is healthy and serves well-formed work afterwards.
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d after hostile corpus", resp.StatusCode)
	}
	if code, body := postSubmit(t, ts, "", SubmitSpec{Assembly: submitAsm}); code != http.StatusOK {
		t.Fatalf("well-formed submit after corpus = %d: %v", code, body)
	}

	// The sandbox counters moved: rejects by reason, kills by resource.
	text, _ := scrape(t, ts, "text/plain")
	if sumMetric(t, text, "sisimd_admission_rejects_total") < float64(rejects) {
		t.Errorf("admission_rejects_total did not count the rejects:\n%s",
			grepLines(text, "admission_rejects"))
	}
	if sumMetric(t, text, "sisimd_budget_kills_total") == 0 {
		t.Errorf("budget_kills_total never moved:\n%s", grepLines(text, "budget_kills"))
	}
}

// sumMetric adds up every series of one metric family in a text
// exposition.
func sumMetric(t *testing.T, text, name string) float64 {
	t.Helper()
	var sum float64
	for _, l := range strings.Split(text, "\n") {
		if !strings.HasPrefix(l, name) || strings.HasPrefix(l, "# ") {
			continue
		}
		fields := strings.Fields(l)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("unparsable sample %q: %v", l, err)
		}
		sum += v
	}
	return sum
}

// TestSubmitBudgetKillDeterministicAcrossEngines: the same submission
// dies at the same point via HTTP regardless of the execution engine,
// and the budget participates in content addressing — a tiny-budget
// kill and a big-budget success of the same program never alias.
func TestSubmitBudgetKillDeterministicAcrossEngines(t *testing.T) {
	kill := func(interpret bool) map[string]any {
		s := newTestServer(t, Options{Workers: 1, Interpret: interpret})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		code, body := postSubmit(t, ts, "", SubmitSpec{Assembly: spinAsm, MaxCycles: 3000})
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("interpret=%v: status %d, want 422: %v", interpret, code, body)
		}
		return body
	}
	compiled, interpreted := kill(false), kill(true)
	for _, k := range []string{"budget_exhausted", "limit", "used", "cycle"} {
		if compiled[k] != interpreted[k] {
			t.Errorf("engines disagree on %s: compiled=%v interpreted=%v",
				k, compiled[k], interpreted[k])
		}
	}
	if compiled["budget_exhausted"] != "cycles" {
		t.Errorf("exhausted resource = %v, want cycles", compiled["budget_exhausted"])
	}

	// Same program, generous budget: distinct key, successful run; the
	// killed variant stays killed (regression for the budget-in-key
	// collision).
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	code, small := postSubmit(t, ts, "", SubmitSpec{Assembly: submitAsm, MaxCycles: 10})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("starved budget = %d, want 422: %v", code, small)
	}
	code, big := postSubmit(t, ts, "", SubmitSpec{Assembly: submitAsm})
	if code != http.StatusOK {
		t.Fatalf("default budget = %d, want 200: %v", code, big)
	}
	code, again := postSubmit(t, ts, "", SubmitSpec{Assembly: submitAsm, MaxCycles: 10})
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("starved budget after success = %d, want 422 (keys must not alias): %v", code, again)
	}
}

func TestTenantRateLimit(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, TenantRate: 1, TenantBurst: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	now := time.Unix(1000, 0)
	s.limiter.now = func() time.Time { return now }

	sp := SubmitSpec{Assembly: submitAsm}
	for i := 0; i < 2; i++ {
		if code, body := postSubmit(t, ts, "alice", sp); code != http.StatusOK {
			t.Fatalf("burst submit %d = %d: %v", i, code, body)
		}
	}
	code, body := postSubmit(t, ts, "alice", sp)
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-burst submit = %d, want 429: %v", code, body)
	}
	if rl, _ := body["rate_limited"].(bool); !rl {
		t.Errorf("429 body should mark rate_limited: %v", body)
	}
	// Another tenant is unaffected; the limit is per tenant.
	if code, body := postSubmit(t, ts, "bob", sp); code != http.StatusOK {
		t.Fatalf("other tenant = %d: %v", code, body)
	}
	// Tokens refill with time.
	now = now.Add(1 * time.Second)
	if code, _ := postSubmit(t, ts, "alice", sp); code != http.StatusOK {
		t.Fatalf("post-refill submit = %d, want 200", code)
	}
	if s.rateLimited.Load() == 0 {
		t.Error("rate-limited counter never moved")
	}
}

func TestTenantQueueQuota(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 8, TenantMaxQueued: 1})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	s.runSim = fakeSim(started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the single worker, then fill alice's one queued slot.
	done1 := postJobAsync(t, ts, "alice", JobSpec{Microbench: 1})
	<-started
	done2 := postJobAsync(t, ts, "alice", JobSpec{Microbench: 2})
	waitFor(t, func() bool { return s.queue.Len() == 1 })

	// Alice is at quota: rejected with the tenant-specific message.
	code, _, body := postRawTenant(t, ts, "alice", JobSpec{Microbench: 4})
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota = %d, want 429: %v", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "tenant queue quota") {
		t.Errorf("429 error %q should name the tenant quota", msg)
	}
	// Bob still has room: the quota is per tenant, not global.
	done3 := postJobAsync(t, ts, "bob", JobSpec{Microbench: 8})
	waitFor(t, func() bool { return s.queue.Len() == 2 })

	close(release)
	for _, c := range []chan int{done1, done2, done3} {
		if code := <-c; code != http.StatusOK {
			t.Errorf("queued job = %d, want 200", code)
		}
	}
}

// postJobAsync POSTs a job in the background, delivering the final
// status on the returned channel.
func postJobAsync(t *testing.T, ts *httptest.Server, tenant string, spec JobSpec) chan int {
	t.Helper()
	done := make(chan int, 1)
	go func() {
		code, _, _ := postRawTenant(t, ts, tenant, spec)
		done <- code
	}()
	return done
}

func postRawTenant(t *testing.T, ts *httptest.Server, tenant string, spec JobSpec) (int, http.Header, map[string]any) {
	t.Helper()
	b, _ := json.Marshal(spec)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, resp.Header, m
}

// TestWeightedFairDequeue pins the scheduler itself: with equal
// weights tenants alternate; with weight 2 one tenant gets two
// dequeues per round.
func TestWeightedFairDequeue(t *testing.T) {
	popOrder := func(weights map[string]int, pushes []string) []string {
		fq := newFairQueue(64, 0, 0, weights)
		for _, tenant := range pushes {
			if err := fq.push(tenant, task{tenant: tenant}); err != nil {
				t.Fatal(err)
			}
		}
		var got []string
		for range pushes {
			tk, ok := fq.pop()
			if !ok {
				t.Fatal("queue drained early")
			}
			got = append(got, tk.tenant)
			fq.release(tk.tenant)
		}
		return got
	}

	// A floods before B arrives; equal weights still alternate.
	got := popOrder(nil, []string{"a", "a", "a", "a", "b", "b"})
	want := []string{"a", "b", "a", "b", "a", "a"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("equal weights: pop order %v, want %v", got, want)
	}

	// Weight 2 gives A two slots per round.
	got = popOrder(map[string]int{"a": 2}, []string{"a", "a", "a", "a", "b", "b"})
	want = []string{"a", "a", "b", "a", "a", "b"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("weighted: pop order %v, want %v", got, want)
	}
}

// TestFairQueueInFlightQuota: a tenant at its in-flight cap is
// skipped, other tenants proceed, and release unblocks it.
func TestFairQueueInFlightQuota(t *testing.T) {
	fq := newFairQueue(64, 0, 1, nil)
	for _, tenant := range []string{"a", "a", "b"} {
		if err := fq.push(tenant, task{tenant: tenant}); err != nil {
			t.Fatal(err)
		}
	}
	t1, _ := fq.pop() // a (inflight 1 = cap)
	t2, _ := fq.pop() // must skip a's second task
	if t1.tenant != "a" || t2.tenant != "b" {
		t.Fatalf("pops = %s,%s; want a,b (a capped in flight)", t1.tenant, t2.tenant)
	}
	fq.release("a")
	t3, _ := fq.pop()
	if t3.tenant != "a" {
		t.Fatalf("after release pop = %s, want a", t3.tenant)
	}
}

func TestSanitizeTenantAndOverflow(t *testing.T) {
	for in, want := range map[string]string{
		"team-7":                "team-7",
		"":                      DefaultTenant,
		"has space":             DefaultTenant,
		strings.Repeat("x", 65): DefaultTenant,
	} {
		if got := sanitizeTenant(in); got != want {
			t.Errorf("sanitizeTenant(%q) = %q, want %q", in, got, want)
		}
	}
	ts := newTenantSet()
	for i := 0; i < maxTenants+8; i++ {
		ts.canon("tenant-" + strconv.Itoa(i))
	}
	if got := ts.canon("tenant-0"); got != "tenant-0" {
		t.Errorf("known tenant collapsed: %q", got)
	}
	if got := ts.canon("fresh-after-cap"); got != OverflowTenant {
		t.Errorf("over-cap tenant = %q, want %q", got, OverflowTenant)
	}
}
