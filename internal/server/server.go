// Package server implements the sisimd simulation service: a bounded
// worker pool running simulation jobs behind an HTTP API, with a
// content-addressed result cache (internal/simcache), in-flight
// deduplication (singleflight), per-job timeouts, client cancellation,
// queue backpressure, and graceful draining.
//
// The serving model relies on the simulator's determinism contract: a
// job's result is a pure function of its (config, program, workload)
// content hash, so a cached or coalesced result is bit-identical to
// the result a fresh simulation would produce.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"subwarpsim/internal/admission"
	"subwarpsim/internal/config"
	"subwarpsim/internal/faults"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/obs"
	"subwarpsim/internal/simcache"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/workload"
)

// Options tunes the service.
type Options struct {
	// Workers is the simulation worker pool size (concurrent jobs);
	// 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond
	// it are rejected with 429. 0 means 64.
	QueueDepth int
	// SimWorkers bounds per-simulation SM goroutines (gpu.RunContext's
	// workers argument); 0 means GOMAXPROCS.
	SimWorkers int
	// DefaultTimeout bounds jobs that do not request a timeout;
	// 0 means 2 minutes.
	DefaultTimeout time.Duration
	// MaxTimeout clamps requested timeouts; 0 means 10 minutes.
	MaxTimeout time.Duration
	// Cache stores results by content address; nil means an in-memory
	// LRU of 4096 entries.
	Cache simcache.Cache
	// MaxBatch bounds jobs per batch request; 0 means 256.
	MaxBatch int
	// Faults optionally injects deterministic failures at the server's
	// sites (admission, execution, batch) and is threaded into every
	// job's config so the per-SM site fires too; nil injects nothing.
	Faults *faults.Injector
	// Obs is the observability plane: metric registry, request tracing,
	// debug-event ring, structured logging. nil means a fresh Observer
	// with a discard logger — the serving layer is always observable,
	// logging is opt-in.
	Obs *obs.Observer
	// Interpret runs jobs on the per-cycle interpreter instead of the
	// compiled engine when their spec leaves the compile field empty;
	// a spec's explicit "on"/"off" always wins. Engine choice never
	// changes results (the two are bit-identical) or cache keys.
	Interpret bool

	// TenantRate and TenantBurst configure the per-tenant token-bucket
	// submission limiter: each tenant accrues TenantRate tokens per
	// second up to TenantBurst, and each submission (any endpoint)
	// spends one. TenantRate 0 (the default) disables rate limiting.
	TenantRate  float64
	TenantBurst int
	// TenantMaxQueued bounds one tenant's jobs waiting in the queue;
	// TenantMaxInFlight bounds one tenant's jobs concurrently on
	// workers. 0 means unlimited (per-tenant; the global QueueDepth
	// and Workers bounds always apply).
	TenantMaxQueued   int
	TenantMaxInFlight int
	// TenantWeights sets per-tenant weighted-fair dequeue shares;
	// unlisted tenants get weight 1.
	TenantWeights map[string]int

	// SubmitLimits bounds what /v1/submit kernels may declare; the
	// zero value means admission.DefaultLimits. The footprint field is
	// overridden per submission by its memory budget.
	SubmitLimits admission.Limits
	// DefaultBudget is the gas budget applied to submissions that do
	// not request one; MaxBudget clamps what they may request. Zero
	// fields take built-in defaults (withDefaults), so submissions are
	// always fully metered.
	DefaultBudget sm.Budget
	MaxBudget     sm.Budget
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 2 * time.Minute
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 10 * time.Minute
	}
	if o.Cache == nil {
		o.Cache = simcache.NewMemory(4096)
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Obs == nil {
		o.Obs = obs.New(MetricsNamespace, 256, 64, nil)
	}
	if o.MaxBudget.MaxCycles <= 0 {
		o.MaxBudget.MaxCycles = 20_000_000
	}
	if o.MaxBudget.MaxInstrs <= 0 {
		o.MaxBudget.MaxInstrs = 100_000_000
	}
	if o.MaxBudget.MaxMemBytes <= 0 {
		o.MaxBudget.MaxMemBytes = 64 << 20
	}
	if o.DefaultBudget.MaxCycles <= 0 {
		o.DefaultBudget.MaxCycles = 2_000_000
	}
	if o.DefaultBudget.MaxInstrs <= 0 {
		o.DefaultBudget.MaxInstrs = 8_000_000
	}
	if o.DefaultBudget.MaxMemBytes <= 0 {
		o.DefaultBudget.MaxMemBytes = 8 << 20
	}
	return o
}

// flight is one in-flight simulation shared by every request that
// asked for the same content hash (singleflight). The flight owns a
// cancellable context; it is cancelled early when every waiter has
// gone away, so abandoned work stops promptly.
type flight struct {
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed after entry/err are set

	entry simcache.Entry
	err   error

	waiters int // guarded by Server.mu; 0 after completion
}

// task is one queued simulation.
type task struct {
	fl       *flight
	key      simcache.Key
	cfg      config.Config
	kernel   *sm.Kernel
	workload string    // spec.WorkloadID(), for per-workload SI roll-ups
	tenant   string    // canonical tenant, for fair dequeue and quota release
	enqueued time.Time // queue-wait measurement start
}

// Server is the simulation service. Create with New, serve Handler(),
// and stop with Drain.
type Server struct {
	opts  Options
	cache simcache.Cache
	queue *fairQueue
	start time.Time

	// tenantNames canonicalizes (and bounds) tenant identities;
	// limiter is the per-tenant token-bucket submission rate limiter.
	tenantNames *tenantSet
	limiter     *tenantLimiter

	baseCtx    context.Context // parent of every job context
	cancelBase context.CancelFunc

	workerWG sync.WaitGroup // worker goroutines
	taskWG   sync.WaitGroup // enqueued-but-unfinished tasks
	draining atomic.Bool

	mu         sync.Mutex
	flights    map[simcache.Key]*flight
	quarantine map[simcache.Key]string // keys whose simulation panicked -> reason

	jobsTotal  atomic.Int64 // accepted submissions (incl. hits and coalesced)
	jobsDone   atomic.Int64 // simulations completed successfully
	jobsFailed atomic.Int64 // simulations that returned an error
	rejected   atomic.Int64 // 429s from queue backpressure
	coalesced  atomic.Int64 // submissions that joined an in-flight twin
	inFlight   atomic.Int64 // simulations currently on a worker
	panics     atomic.Int64 // simulations that panicked (recovered + quarantined)
	quarHits   atomic.Int64 // submissions rejected because their key is quarantined
	simCycles  atomic.Int64 // simulated cycles across completed simulations
	simBusyNS  atomic.Int64 // wall time workers spent simulating successfully

	rateLimited atomic.Int64 // 429s from the per-tenant token bucket

	// admRejects and budgetKills are pre-registered labeled counters:
	// admission rejects by structured reason, budget kills by
	// exhausted resource (registerMetrics).
	admRejects  map[string]*obs.Counter
	budgetKills map[string]*obs.Counter

	latMu   sync.Mutex
	latency stats.Histogram // microseconds per completed simulation

	// obs is the observability plane (never nil after New); si holds
	// the pre-registered SI roll-up instruments.
	obs *obs.Observer
	si  siMetrics

	// runSim performs one simulation; tests substitute a fake to drive
	// backpressure and cancellation deterministically.
	runSim func(ctx context.Context, cfg config.Config, k *sm.Kernel) (gpu.Result, error)
}

// New starts a server's worker pool and returns it.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:  opts,
		cache: opts.Cache,
		queue: newFairQueue(opts.QueueDepth, opts.TenantMaxQueued,
			opts.TenantMaxInFlight, opts.TenantWeights),
		start:       time.Now(),
		tenantNames: newTenantSet(),
		limiter:     newTenantLimiter(opts.TenantRate, opts.TenantBurst),
		baseCtx:     ctx,
		cancelBase:  cancel,
		flights:     make(map[simcache.Key]*flight),
		quarantine:  make(map[simcache.Key]string),
		obs:         opts.Obs,
	}
	s.latency.Name = "job latency (us)"
	s.runSim = func(ctx context.Context, cfg config.Config, k *sm.Kernel) (gpu.Result, error) {
		return gpu.RunContext(ctx, cfg, k, opts.SimWorkers)
	}
	s.registerMetrics()
	s.wireHooks()
	for i := 0; i < opts.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		t, ok := s.queue.pop()
		if !ok {
			return
		}
		s.inFlight.Add(1)
		started := time.Now()
		tr := obs.TraceFrom(t.fl.ctx)
		tr.AddSpan("queue", t.enqueued, started)
		s.obs.ObserveStage("queue", started.Sub(t.enqueued).Microseconds())
		res, err := s.runJob(t)
		ended := time.Now()
		elapsed := ended.Sub(started)
		tr.AddSpan("exec", started, ended)
		s.obs.ObserveStage("exec", elapsed.Microseconds())
		s.inFlight.Add(-1)

		var entry simcache.Entry
		if err == nil {
			entry = simcache.Entry{
				Policy:   res.Config.PolicyName(),
				Blocks:   res.Blocks,
				Counters: res.Counters,
			}
			s.cache.Put(t.key, entry)
			s.jobsDone.Add(1)
			s.simCycles.Add(res.Counters.Cycles)
			s.simBusyNS.Add(elapsed.Nanoseconds())
			s.latMu.Lock()
			s.latency.Observe(elapsed.Microseconds())
			s.latMu.Unlock()
			s.siRollup(t.workload, res.Counters)
			s.obs.Logger().Info("simulation complete",
				"trace_id", obs.TraceIDFrom(t.fl.ctx), "key", t.key.String(),
				"workload", t.workload, "cycles", res.Counters.Cycles,
				"elapsed_ms", float64(elapsed.Microseconds())/1e3)
		} else {
			s.jobsFailed.Add(1)
			var be *sm.BudgetError
			if errors.As(err, &be) {
				// A budget kill is a deterministic, well-defined outcome
				// (same key always dies at the same point), not a simulator
				// defect: count it by resource, no quarantine.
				if c := s.budgetKills[be.Resource]; c != nil {
					c.Inc()
				}
			} else if msg, panicked := panicMessage(err); panicked {
				// A panic means the simulator hit a state it cannot handle
				// for this exact (config, program, workload): quarantine the
				// key so repeats are refused up front instead of burning a
				// worker on a known-bad input again.
				s.panics.Add(1)
				s.mu.Lock()
				s.quarantine[t.key] = msg
				s.mu.Unlock()
				s.obs.Event(t.fl.ctx, obs.EventQuarantine, faults.SiteServerExec,
					"key "+t.key.String()+": "+msg)
			}
			s.obs.Logger().Warn("simulation failed",
				"trace_id", obs.TraceIDFrom(t.fl.ctx), "key", t.key.String(),
				"workload", t.workload, "error", err)
		}
		s.complete(t.key, t.fl, entry, err)
		s.queue.release(t.tenant)
		s.taskWG.Done()
	}
}

// runJob performs one simulation behind a panic barrier, so a
// panicking job fails its waiters instead of killing the worker pool.
// gpu.RunContext already recovers per-SM panics into *gpu.PanicError;
// the recover here catches panics from everything else on the job
// path (and from test/chaos runSim fakes).
func (s *Server) runJob(t task) (res gpu.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &panicError{value: v, stack: debug.Stack()}
		}
	}()
	if ierr := s.opts.Faults.FireCtx(t.fl.ctx, faults.SiteServerExec); ierr != nil {
		return gpu.Result{}, fmt.Errorf("exec fault: %w", ierr)
	}
	return s.runSim(t.fl.ctx, t.cfg, t.kernel)
}

// panicError is a job panic recovered at the worker boundary.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("job panicked: %v", e.value) }

// panicMessage reports whether err is (or wraps) a recovered panic,
// and with what message.
func panicMessage(err error) (string, bool) {
	var wp *panicError
	if errors.As(err, &wp) {
		return wp.Error(), true
	}
	var pe *gpu.PanicError
	if errors.As(err, &pe) {
		return pe.Error(), true
	}
	return "", false
}

// complete publishes a flight's outcome and retires it.
func (s *Server) complete(key simcache.Key, fl *flight, entry simcache.Entry, err error) {
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	fl.entry, fl.err = entry, err
	close(fl.done)
	fl.cancel() // release the timeout timer
}

// dropWaiter unregisters one waiter; when the last waiter of an
// unfinished flight leaves, the flight's simulation is cancelled.
func (s *Server) dropWaiter(fl *flight) {
	s.mu.Lock()
	fl.waiters--
	abandoned := fl.waiters == 0
	s.mu.Unlock()
	if abandoned {
		select {
		case <-fl.done:
		default:
			fl.cancel()
		}
	}
}

// jobTimeout clamps a spec's requested timeout (milliseconds) into
// the server's allowed range.
func (s *Server) jobTimeout(timeoutMS int) time.Duration {
	d := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.opts.MaxTimeout {
		d = s.opts.MaxTimeout
	}
	return d
}

// preflight runs the checks every submission path shares before any
// per-job work: drain state, the admission fault site, and the
// tenant token bucket.
func (s *Server) preflight(ctx context.Context) error {
	if s.draining.Load() {
		return &apiError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	if err := s.opts.Faults.FireCtx(ctx, faults.SiteServerAdmit); err != nil {
		return &apiError{status: http.StatusServiceUnavailable,
			msg: "admission fault: " + err.Error()}
	}
	if tenant := tenantFrom(ctx); !s.limiter.allow(tenant) {
		s.rateLimited.Add(1)
		return &apiError{
			status:     http.StatusTooManyRequests,
			msg:        "tenant rate limit exceeded, retry later",
			retryAfter: 1,
			extra:      map[string]any{"tenant": tenant, "rate_limited": true},
		}
	}
	return nil
}

// apiError is a submission failure with its HTTP status, an optional
// Retry-After hint (seconds), and optional extra JSON body fields.
type apiError struct {
	status     int
	msg        string
	retryAfter int
	extra      map[string]any
}

func (e *apiError) Error() string { return e.msg }

func errStatus(err error) int {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae.status
	}
	return http.StatusInternalServerError
}

// JobResult is the wire form of one completed job.
type JobResult struct {
	// Key is the job's content address in the result cache.
	Key string `json:"key"`
	// Cached reports that the result was served from the cache without
	// simulating; Coalesced that it was deduplicated onto an in-flight
	// twin simulation.
	Cached    bool   `json:"cached"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Workload  string `json:"workload"`
	Policy    string `json:"policy"`
	Blocks    int    `json:"blocks"`
	// Counters and Derived are bit-identical across cache hits, misses,
	// and coalesced replays of the same key (the determinism contract).
	Counters stats.Counters `json:"counters"`
	Derived  stats.Derived  `json:"derived"`
	// Error is set instead of the result fields for failed batch items.
	// ErrorStatus carries the HTTP status the same failure would have
	// produced as a single /v1/jobs request, and ErrorExtra the same
	// structured body fields (retry_after_sec, tenant, queue depths,
	// quarantined, ...), so batch clients can classify per-entry
	// failures — retryable 429/503 vs deterministic 4xx — exactly like
	// single-job clients instead of string-matching Error.
	Error       string         `json:"error,omitempty"`
	ErrorStatus int            `json:"error_status,omitempty"`
	ErrorExtra  map[string]any `json:"error_extra,omitempty"`
	// TraceID echoes the request's trace (the X-Trace-ID header) so
	// clients can correlate results with /debug/events and logs.
	TraceID string `json:"trace_id,omitempty"`
}

// Failed reports whether the result is a per-entry error.
func (r JobResult) Failed() bool { return r.Error != "" }

// errorResult builds the per-entry error form of a JobResult,
// preserving the apiError's status and structured fields.
func errorResult(workloadID string, err error) JobResult {
	res := JobResult{Workload: workloadID, Error: err.Error(), ErrorStatus: errStatus(err)}
	var ae *apiError
	if errors.As(err, &ae) && len(ae.extra) > 0 {
		res.ErrorExtra = make(map[string]any, len(ae.extra))
		for k, v := range ae.extra {
			res.ErrorExtra[k] = v
		}
	}
	return res
}

func resultFrom(key simcache.Key, workloadID string, e simcache.Entry, cached, coalesced bool) JobResult {
	return JobResult{
		Key:       key.String(),
		Cached:    cached,
		Coalesced: coalesced,
		Workload:  workloadID,
		Policy:    e.Policy,
		Blocks:    e.Blocks,
		Counters:  e.Counters,
		Derived:   e.Derived(),
	}
}

// Submit runs one job to completion: cache lookup, singleflight
// coalescing, then a bounded-queue simulation. ctx is the caller's
// (request) context — its cancellation abandons the wait, and the
// underlying simulation stops once every interested caller is gone.
func (s *Server) Submit(ctx context.Context, spec JobSpec) (JobResult, error) {
	tr := obs.TraceFrom(ctx)
	admitStart := time.Now()
	if err := s.preflight(ctx); err != nil {
		return JobResult{}, err
	}
	cfg, err := spec.Config()
	if err != nil {
		return JobResult{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	// Thread the fault layer into the job so the per-SM site fires; the
	// cache key deliberately ignores it (like Trace, it is not an
	// architecture parameter).
	cfg.Faults = s.opts.Faults
	if spec.Compile == "" && s.opts.Interpret {
		cfg.Compiled = false
	}
	kernel, err := spec.BuildKernel()
	if err != nil {
		return JobResult{}, &apiError{status: http.StatusBadRequest, msg: err.Error()}
	}
	key := simcache.KeyOf(cfg, kernel, spec.WorkloadID())
	return s.execute(ctx, tr, admitStart, key, cfg, kernel,
		spec.WorkloadID(), s.jobTimeout(spec.TimeoutMS))
}

// execute is the submission tail shared by Submit (catalogued
// workloads) and SubmitKernel (untrusted assembly): quarantine check,
// cache lookup, singleflight coalescing, fair-queue enqueue with
// tenant quotas, then the wait and error mapping.
func (s *Server) execute(ctx context.Context, tr *obs.Trace, admitStart time.Time,
	key simcache.Key, cfg config.Config, kernel *sm.Kernel,
	workloadID string, timeout time.Duration) (JobResult, error) {
	s.mu.Lock()
	reason, quarantined := s.quarantine[key]
	s.mu.Unlock()
	if quarantined {
		s.quarHits.Add(1)
		return JobResult{}, &apiError{
			status: http.StatusUnprocessableEntity,
			msg:    "job is quarantined after a previous panic: " + reason,
			extra:  map[string]any{"quarantined": true, "key": key.String()},
		}
	}
	s.jobsTotal.Add(1)
	admitEnd := time.Now()
	tr.AddSpan("admit", admitStart, admitEnd)
	s.obs.ObserveStage("admit", admitEnd.Sub(admitStart).Microseconds())

	cacheEnd := stageTimer(s, tr, "cache")
	e, hit := s.cache.Get(key)
	cacheEnd()
	if hit {
		res := resultFrom(key, workloadID, e, true, false)
		res.TraceID = obs.TraceIDFrom(ctx)
		return res, nil
	}

	// Singleflight: join an in-flight twin, or become the one that
	// simulates. The flight's context is independent of any single
	// request so coalesced waiters survive the first requester leaving;
	// the first submitter's trace rides along so worker-side spans and
	// logs correlate with the request that caused the simulation.
	dedupEnd := stageTimer(s, tr, "dedup")
	s.mu.Lock()
	fl, joined := s.flights[key]
	if joined {
		fl.waiters++
		s.mu.Unlock()
		s.coalesced.Add(1)
		dedupEnd()
	} else {
		flCtx, cancel := context.WithTimeout(s.baseCtx, timeout)
		flCtx = obs.WithTrace(flCtx, tr)
		fl = &flight{ctx: flCtx, cancel: cancel, done: make(chan struct{}), waiters: 1}
		s.flights[key] = fl
		s.mu.Unlock()
		dedupEnd()

		tenant := s.tenantNames.canon(tenantFrom(ctx))
		s.taskWG.Add(1)
		if qerr := s.queue.push(tenant, task{fl: fl, key: key, cfg: cfg, kernel: kernel,
			workload: workloadID, tenant: tenant, enqueued: time.Now()}); qerr != nil {
			// Backpressure: the shared queue is full, or this tenant is
			// over its queued quota. Retire the flight we just registered
			// and tell the client to retry later.
			s.taskWG.Done()
			s.mu.Lock()
			delete(s.flights, key)
			s.mu.Unlock()
			fl.cancel()
			s.rejected.Add(1)
			ra := s.retryAfterSec()
			msg := "job queue is full, retry later"
			if errors.Is(qerr, errTenantFull) {
				msg = "tenant queue quota exceeded, retry later"
			}
			return JobResult{}, &apiError{
				status:     http.StatusTooManyRequests,
				msg:        msg,
				retryAfter: ra,
				extra:      s.backpressureExtra(tenant, ra),
			}
		}
	}

	select {
	case <-fl.done:
	case <-ctx.Done():
		s.dropWaiter(fl)
		return JobResult{}, &apiError{status: http.StatusRequestTimeout,
			msg: fmt.Sprintf("request abandoned: %v", ctx.Err())}
	}
	if fl.err != nil {
		if _, panicked := panicMessage(fl.err); panicked {
			// First occurrence of a panicking key: every coalesced waiter
			// gets the structured 500; the worker has already quarantined
			// the key, so re-submissions get 422 instead.
			return JobResult{}, &apiError{
				status: http.StatusInternalServerError,
				msg:    fmt.Sprintf("simulation panicked, key quarantined: %v", fl.err),
				extra:  map[string]any{"quarantined": true, "key": key.String()},
			}
		}
		var de *sm.DeadlockError
		if errors.As(fl.err, &de) {
			// Structural deadlock: deterministic and the program's own
			// fault (admission admits statically-sound shapes that can
			// still deadlock dynamically, e.g. twin BSYNCs on divergent
			// paths), so it maps to 422 like a budget kill.
			return JobResult{}, &apiError{
				status: http.StatusUnprocessableEntity,
				msg:    fmt.Sprintf("kernel deadlocked: sm %d at cycle %d", de.SM, de.Cycle),
				extra:  map[string]any{"deadlock": true, "cycle": de.Cycle},
			}
		}
		var be *sm.BudgetError
		if errors.As(fl.err, &be) {
			// Deterministic gas kill: the job is well-defined but exceeds
			// its resource budget, and re-running it will die at exactly
			// the same point. 422 (like quarantine) rather than 5xx: the
			// problem is the submission, not the service.
			return JobResult{}, &apiError{
				status: http.StatusUnprocessableEntity,
				msg:    "budget exhausted: " + fl.err.Error(),
				extra: map[string]any{
					"budget_exhausted": be.Resource,
					"limit":            be.Limit,
					"used":             be.Used,
					"cycle":            be.Cycle,
				},
			}
		}
		switch {
		case errors.Is(fl.err, context.DeadlineExceeded):
			return JobResult{}, &apiError{status: http.StatusGatewayTimeout,
				msg: fmt.Sprintf("job timed out: %v", fl.err)}
		case errors.Is(fl.err, context.Canceled):
			return JobResult{}, &apiError{status: http.StatusServiceUnavailable,
				msg: fmt.Sprintf("job cancelled: %v", fl.err)}
		default:
			return JobResult{}, &apiError{status: http.StatusInternalServerError, msg: fl.err.Error()}
		}
	}
	res := resultFrom(key, workloadID, fl.entry, false, joined)
	res.TraceID = obs.TraceIDFrom(ctx)
	return res, nil
}

// SetTenantWeights swaps the weighted-fair dequeue shares at runtime
// (operators rebalance tenants without a restart; the cluster gate
// exercises a mid-stream change). Takes effect from the next dequeue.
func (s *Server) SetTenantWeights(weights map[string]int) {
	s.queue.SetWeights(weights)
}

// backpressureExtra is the structured body of every queue-pressure 429
// this server emits — shared queue depth/cap, the rejected tenant's own
// queued depth, and the recent queue-wait p95 — so clients can back off
// proportionally. The cluster coordinator reuses it verbatim when it
// aggregates per-peer 429s, so clients back off identically against
// either topology.
func (s *Server) backpressureExtra(tenant string, retryAfterSec int) map[string]any {
	return map[string]any{
		"tenant":             tenant,
		"queue_depth":        s.queue.Len(),
		"queue_cap":          s.queue.Cap(),
		"tenant_queue_depth": s.queue.depthOf(tenant),
		"queue_wait_p95_ms":  float64(s.obs.StageHistogram("queue").Quantile(0.95)) / 1e3,
		"retry_after_sec":    retryAfterSec,
	}
}

// BackpressureBody exposes backpressureExtra for the cluster
// coordinator's local-fallback and aggregate-429 paths.
func (s *Server) BackpressureBody(tenant string) map[string]any {
	return s.backpressureExtra(s.tenantNames.canon(sanitizeTenant(tenant)), s.retryAfterSec())
}

// retryAfterSec estimates when queue capacity should free up: the p95
// job latency times the jobs ahead of a new arrival, spread across the
// worker pool. With no completed jobs yet there is nothing to model,
// so the hint is the minimum.
func (s *Server) retryAfterSec() int {
	s.latMu.Lock()
	n := s.latency.Count()
	p95us := s.latency.Quantile(0.95)
	s.latMu.Unlock()
	if n == 0 {
		return 1
	}
	ahead := int64(s.queue.Len()) + s.inFlight.Load() + 1
	sec := math.Ceil(float64(p95us) / 1e6 * float64(ahead) / float64(s.opts.Workers))
	switch {
	case sec < 1:
		return 1
	case sec > 120:
		return 120
	default:
		return int(sec)
	}
}

// Drain stops accepting jobs and waits for queued and in-flight work
// to finish. If ctx expires first, every remaining job is cancelled
// and Drain waits for the workers to observe it. The worker pool is
// shut down either way; the server cannot be reused afterwards.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	finished := make(chan struct{})
	go func() {
		s.taskWG.Wait()
		close(finished)
	}()
	var err error
	select {
	case <-finished:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain deadline passed, cancelling %d jobs: %w",
			s.inFlight.Load()+int64(s.queue.Len()), ctx.Err())
		s.cancelBase()
		<-finished
	}
	s.queue.close()
	s.workerWG.Wait()
	s.cancelBase()
	return err
}

// Metrics is the /metrics payload.
type Metrics struct {
	UptimeSec        float64        `json:"uptime_sec"`
	Draining         bool           `json:"draining"`
	Workers          int            `json:"workers"`
	QueueDepth       int            `json:"queue_depth"`
	QueueCap         int            `json:"queue_cap"`
	JobsInFlight     int64          `json:"jobs_in_flight"`
	JobsTotal        int64          `json:"jobs_total"`
	JobsDone         int64          `json:"jobs_done"`
	JobsFailed       int64          `json:"jobs_failed"`
	Rejected         int64          `json:"rejected"`
	RateLimited      int64          `json:"rate_limited"`
	Coalesced        int64          `json:"coalesced"`
	Panics           int64          `json:"panics"`
	QuarantinedKeys  int            `json:"quarantined_keys"`
	QuarantineHits   int64          `json:"quarantine_hits"`
	Degraded         bool           `json:"degraded"`
	CorruptEvictions int64          `json:"corrupt_evictions"`
	Cache            simcache.Stats `json:"cache"`
	CacheHitRate     float64        `json:"cache_hit_rate"`
	CacheEntries     int            `json:"cache_entries"`
	LatencyP50MS     float64        `json:"latency_p50_ms"`
	LatencyP95MS     float64        `json:"latency_p95_ms"`
	LatencyP99MS     float64        `json:"latency_p99_ms"`
	LatencyMaxMS     float64        `json:"latency_max_ms"`
	// Queue-wait (enqueue -> worker pickup) and exec (simulation on a
	// worker) are reported separately so saturation is distinguishable
	// from slow jobs.
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95MS float64 `json:"queue_wait_p95_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	ExecP50MS      float64 `json:"exec_p50_ms"`
	ExecP95MS      float64 `json:"exec_p95_ms"`
	ExecP99MS      float64 `json:"exec_p99_ms"`
	// SimCyclesTotal is the sum of simulated cycles over completed
	// simulations; SimCyclesPerSecond divides it by the wall time
	// workers spent producing them (simulation throughput, 0 until a
	// job completes).
	SimCyclesTotal     int64   `json:"sim_cycles_total"`
	SimCyclesPerSecond float64 `json:"sim_cycles_per_second"`
}

// MetricsSnapshot gathers the server's current metrics.
func (s *Server) MetricsSnapshot() Metrics {
	cs := s.cache.Stats()
	s.latMu.Lock()
	p50 := s.latency.Quantile(0.50)
	p95 := s.latency.Quantile(0.95)
	p99 := s.latency.Quantile(0.99)
	max := s.latency.Max()
	s.latMu.Unlock()
	qw := s.obs.StageHistogram("queue")
	ex := s.obs.StageHistogram("exec")
	s.mu.Lock()
	quarantined := len(s.quarantine)
	s.mu.Unlock()
	cycles := s.simCycles.Load()
	perSec := 0.0
	if busy := s.simBusyNS.Load(); busy > 0 {
		perSec = float64(cycles) / (float64(busy) / 1e9)
	}
	return Metrics{
		UptimeSec:        time.Since(s.start).Seconds(),
		Draining:         s.draining.Load(),
		Workers:          s.opts.Workers,
		QueueDepth:       s.queue.Len(),
		QueueCap:         s.queue.Cap(),
		JobsInFlight:     s.inFlight.Load(),
		JobsTotal:        s.jobsTotal.Load(),
		JobsDone:         s.jobsDone.Load(),
		JobsFailed:       s.jobsFailed.Load(),
		Rejected:         s.rejected.Load(),
		RateLimited:      s.rateLimited.Load(),
		Coalesced:        s.coalesced.Load(),
		Panics:           s.panics.Load(),
		QuarantinedKeys:  quarantined,
		QuarantineHits:   s.quarHits.Load(),
		Degraded:         s.degraded(),
		CorruptEvictions: cs.Corrupt,
		Cache:            cs,
		CacheHitRate:     cs.HitRate(),
		CacheEntries:     s.cache.Len(),
		LatencyP50MS:     float64(p50) / 1e3,
		LatencyP95MS:     float64(p95) / 1e3,
		LatencyP99MS:     float64(p99) / 1e3,
		LatencyMaxMS:     float64(max) / 1e3,
		QueueWaitP50MS:   float64(qw.Quantile(0.50)) / 1e3,
		QueueWaitP95MS:   float64(qw.Quantile(0.95)) / 1e3,
		QueueWaitP99MS:   float64(qw.Quantile(0.99)) / 1e3,
		ExecP50MS:        float64(ex.Quantile(0.50)) / 1e3,
		ExecP95MS:        float64(ex.Quantile(0.95)) / 1e3,
		ExecP99MS:        float64(ex.Quantile(0.99)) / 1e3,

		SimCyclesTotal:     cycles,
		SimCyclesPerSecond: perSec,
	}
}

// Handler returns the service's HTTP API:
//
//	GET  /healthz        liveness (503 while draining) + build info
//	GET  /metrics        metrics: Prometheus text exposition when the
//	                     Accept header asks for text/plain, the
//	                     backward-compatible JSON snapshot otherwise
//	GET  /debug/events   bounded ring of operational incidents
//	GET  /debug/traces   recent request trace IDs
//	GET  /debug/traces/{id}  one trace as Perfetto/Chrome trace JSON
//	GET  /v1/apps        application trace catalogue
//	POST /v1/jobs        run one JobSpec
//	POST /v1/batch       run {"jobs": [JobSpec...]}, coalescing duplicates
//	POST /v1/submit      validate and run one untrusted SubmitSpec kernel
//
// Every request is traced: a client-provided X-Trace-ID header is
// adopted (else one is generated), echoed on the response, propagated
// through the job path via context, and retained in /debug/traces.
// Every request also carries a tenant identity (the X-Tenant header,
// DefaultTenant when absent) that keys the rate limiter, the queue
// quotas, and weighted-fair dequeue.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/events", s.handleDebugEvents)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleDebugTrace)
	mux.HandleFunc("GET /v1/apps", s.handleApps)
	mux.HandleFunc("POST /v1/jobs", s.handleJob)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	return s.traceMiddleware(mux)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, err error) {
	status := errStatus(err)
	body := map[string]any{"error": err.Error()}
	var ae *apiError
	if errors.As(err, &ae) {
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(ae.retryAfter))
		} else if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		for k, v := range ae.extra {
			body[k] = v
		}
	}
	writeJSON(w, status, body)
}

// degraded reports whether the result cache has fallen back to
// memory-only serving (its disk circuit breaker is open).
func (s *Server) degraded() bool {
	d, ok := s.cache.(interface{ Degraded() bool })
	return ok && d.Degraded()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Build info renders as a flat string so the payload stays a
	// map[string]string (clients decode it that way).
	build := obs.Build().String()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "draining", "build": build})
		return
	}
	if s.degraded() {
		// Still 200: results remain correct (and cached in memory); only
		// the persistence tier is down. Health checkers keep routing
		// traffic here, and the status string tells operators why cache
		// hit rates dropped.
		writeJSON(w, http.StatusOK, map[string]string{
			"status": "degraded",
			"detail": "disk cache unavailable, serving memory-only",
			"build":  build,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "build": build})
}

// handleMetrics content-negotiates the two exposition formats: a
// text/plain Accept preference gets Prometheus text exposition, every
// other request the backward-compatible JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obs.Reg.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

func (s *Server) handleApps(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, workload.Apps())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: "bad job spec: " + err.Error()})
		return
	}
	ctx := r.Context()
	res, err := s.Submit(ctx, spec)
	if err != nil {
		s.obs.Logger().Warn("job rejected",
			"trace_id", obs.TraceIDFrom(ctx), "workload", spec.WorkloadID(),
			"status", errStatus(err), "error", err)
		writeError(w, err)
		return
	}
	s.obs.Logger().Info("job complete",
		"trace_id", obs.TraceIDFrom(ctx), "key", res.Key,
		"workload", res.Workload, "cached", res.Cached, "coalesced", res.Coalesced)
	respondEnd := stageTimer(s, obs.TraceFrom(ctx), "respond")
	writeJSON(w, http.StatusOK, res)
	respondEnd()
}

// batchRequest is the /v1/batch payload.
type batchRequest struct {
	Jobs []JobSpec `json:"jobs"`
}

// batchResponse preserves request order; failed items carry Error and
// empty result fields.
type batchResponse struct {
	Results []JobResult `json:"results"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: "bad batch: " + err.Error()})
		return
	}
	if err := s.opts.Faults.FireCtx(r.Context(), faults.SiteServerBatch); err != nil {
		writeError(w, &apiError{status: http.StatusServiceUnavailable,
			msg: "batch fault: " + err.Error()})
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, &apiError{status: http.StatusBadRequest, msg: "batch has no jobs"})
		return
	}
	if len(req.Jobs) > s.opts.MaxBatch {
		writeError(w, &apiError{status: http.StatusBadRequest,
			msg: fmt.Sprintf("batch of %d exceeds limit %d", len(req.Jobs), s.opts.MaxBatch)})
		return
	}
	// Every item goes through Submit concurrently: identical specs
	// coalesce onto one simulation, distinct ones use the worker pool.
	// Results land at the entry's own index, and each goroutine carries
	// its own recover guard, so one failed — or panicking — sub-job can
	// neither drop nor reorder sibling results: Results[i] always
	// answers Jobs[i].
	resp := batchResponse{Results: make([]JobResult, len(req.Jobs))}
	var wg sync.WaitGroup
	for i, spec := range req.Jobs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					resp.Results[i] = errorResult(spec.WorkloadID(), &apiError{
						status: http.StatusInternalServerError,
						msg:    fmt.Sprintf("batch entry panicked: %v", p),
					})
				}
			}()
			res, err := s.Submit(r.Context(), spec)
			if err != nil {
				res = errorResult(spec.WorkloadID(), err)
			}
			resp.Results[i] = res
		}(i, spec)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}
