package server

import (
	"errors"
	"sync"
)

// Queue-full conditions, distinguished so the API can tell a tenant
// "the service is saturated" apart from "you are over your quota".
var (
	errQueueFull  = errors.New("server: job queue is full")
	errTenantFull = errors.New("server: tenant queue quota exceeded")
)

// maxTenants bounds how many distinct tenants the queue (and the
// per-tenant metric series derived from it) will track; arrivals
// beyond the cap collapse into the overflow tenant. See tenantSet.
const maxTenants = 64

// fairQueue replaces the plain FIFO channel between Submit and the
// worker pool with weighted-fair dequeue across tenants. Each tenant
// owns a FIFO sub-queue; workers drain tenants round-robin, giving
// tenant t up to weight(t) consecutive dequeues per visit (deficit-
// style), so one tenant flooding the queue cannot starve the others —
// a full-queue 429 still prices the flood, but whatever the flooder
// does get in line shares the workers fairly with everyone else.
//
// Two quotas are enforced here rather than in Submit so they hold no
// matter which entry point enqueued the work: maxQueued bounds one
// tenant's waiting jobs (push fails with errTenantFull), and
// maxInFlight bounds one tenant's jobs concurrently on workers (pop
// skips the tenant until release is called).
//
// Determinism note: fairness affects only queueing order, never
// simulation results — every job's outcome is a pure function of its
// content key (the serving model's standing contract).
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cap     int // total queued bound (the old channel capacity)
	total   int // jobs currently queued across all tenants
	waiting int // workers parked in pop, ready for direct pickup
	closed  bool

	tenants map[string]*tenantQ
	order   []string // round-robin visit order (tenant arrival order)
	rr      int      // index into order of the tenant being served
	served  int      // consecutive dequeues granted to order[rr]

	maxQueued   int                 // per-tenant queued bound; 0 = unlimited
	maxInFlight int                 // per-tenant concurrent bound; 0 = unlimited
	weightOf    func(string) int    // round-robin share per visit; <1 treated as 1
	onNewTenant func(tenant string) // called (unlocked) when a tenant is first seen
}

// tenantQ is one tenant's FIFO plus its in-flight count. head indexes
// the logical front so popping is O(1) without re-slicing the backing
// array into a leak; the slice is compacted when fully drained.
type tenantQ struct {
	q        []task
	head     int
	inflight int
}

func (tq *tenantQ) depth() int { return len(tq.q) - tq.head }

func newFairQueue(capacity, maxQueued, maxInFlight int, weights map[string]int) *fairQueue {
	fq := &fairQueue{
		cap:         capacity,
		tenants:     make(map[string]*tenantQ),
		maxQueued:   maxQueued,
		maxInFlight: maxInFlight,
		weightOf: func(name string) int {
			if w := weights[name]; w > 0 {
				return w
			}
			return 1
		},
	}
	fq.cond = sync.NewCond(&fq.mu)
	return fq
}

// push enqueues t for the tenant, failing fast on backpressure. The
// onNewTenant hook fires outside the lock (it registers a gauge whose
// read callback takes the lock).
func (fq *fairQueue) push(tenant string, t task) error {
	fq.mu.Lock()
	if fq.closed {
		fq.mu.Unlock()
		return errQueueFull
	}
	// Capacity mirrors buffered-channel semantics: a send to a channel
	// with parked receivers hands off directly without consuming buffer,
	// so a parked worker extends the effective capacity by one. Without
	// this, a push racing a worker's wake-up between Signal and pop
	// would spuriously reject at exactly cap.
	if fq.total >= fq.cap+fq.waiting {
		fq.mu.Unlock()
		return errQueueFull
	}
	tq, seen := fq.tenants[tenant]
	if !seen {
		tq = &tenantQ{}
		fq.tenants[tenant] = tq
		fq.order = append(fq.order, tenant)
	}
	if fq.maxQueued > 0 && tq.depth() >= fq.maxQueued {
		fq.mu.Unlock()
		return errTenantFull
	}
	tq.q = append(tq.q, t)
	fq.total++
	fq.cond.Signal()
	hook := fq.onNewTenant
	fq.mu.Unlock()
	if !seen && hook != nil {
		hook(tenant)
	}
	return nil
}

// pop blocks until a task is available (respecting in-flight quotas)
// or the queue is closed and drained; ok=false means the worker
// should exit. The caller must call release(t.tenant) when the task
// finishes.
func (fq *fairQueue) pop() (t task, ok bool) {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	for {
		if t, ok = fq.tryPopLocked(); ok {
			return t, true
		}
		if fq.closed && fq.total == 0 {
			return task{}, false
		}
		// Either empty, or every queued tenant is at its in-flight
		// quota; release() and push() both wake us.
		fq.waiting++
		fq.cond.Wait()
		fq.waiting--
	}
}

// tryPopLocked scans tenants round-robin from the current position,
// skipping empty or in-flight-capped ones, and dequeues the head of
// the first eligible tenant. The serving tenant keeps the grant until
// it has consumed weight(t) dequeues or runs dry.
func (fq *fairQueue) tryPopLocked() (task, bool) {
	n := len(fq.order)
	for i := 0; i < n; i++ {
		idx := (fq.rr + i) % n
		name := fq.order[idx]
		tq := fq.tenants[name]
		if tq.depth() == 0 {
			continue
		}
		if fq.maxInFlight > 0 && tq.inflight >= fq.maxInFlight {
			continue
		}
		if idx != fq.rr {
			fq.rr, fq.served = idx, 0
		}
		t := tq.q[tq.head]
		tq.q[tq.head] = task{} // release references for GC
		tq.head++
		if tq.head == len(tq.q) {
			tq.q, tq.head = tq.q[:0], 0
		}
		fq.total--
		tq.inflight++
		fq.served++
		if fq.served >= fq.weightOf(name) {
			fq.rr, fq.served = (idx+1)%n, 0
		}
		return t, true
	}
	return task{}, false
}

// release retires one in-flight task for the tenant, potentially
// unblocking workers that skipped it for quota.
func (fq *fairQueue) release(tenant string) {
	fq.mu.Lock()
	if tq := fq.tenants[tenant]; tq != nil && tq.inflight > 0 {
		tq.inflight--
	}
	fq.mu.Unlock()
	fq.cond.Broadcast()
}

// close stops pushes and lets workers drain what remains, mirroring
// close(chan)'s "drain then exit the range loop" semantics.
func (fq *fairQueue) close() {
	fq.mu.Lock()
	fq.closed = true
	fq.mu.Unlock()
	fq.cond.Broadcast()
}

// Len returns the total queued depth (the old len(chan)).
func (fq *fairQueue) Len() int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	return fq.total
}

// Cap returns the total queued bound (the old cap(chan)).
func (fq *fairQueue) Cap() int { return fq.cap }

// SetWeights swaps the per-tenant weight table mid-stream. The new
// table applies from the next dequeue decision: the tenant currently
// holding the round-robin grant finishes its visit under whichever
// weight tryPopLocked reads next, so a shrink takes effect immediately
// and a growth never owes retroactive dequeues. Unlisted (and
// non-positive) tenants get weight 1, like the constructor.
func (fq *fairQueue) SetWeights(weights map[string]int) {
	w := make(map[string]int, len(weights))
	for name, v := range weights {
		w[name] = v
	}
	fq.mu.Lock()
	fq.weightOf = func(name string) int {
		if v := w[name]; v > 0 {
			return v
		}
		return 1
	}
	fq.mu.Unlock()
}

// depthOf returns one tenant's queued depth, for the per-tenant
// queue-depth gauges.
func (fq *fairQueue) depthOf(tenant string) int {
	fq.mu.Lock()
	defer fq.mu.Unlock()
	if tq := fq.tenants[tenant]; tq != nil {
		return tq.depth()
	}
	return 0
}
