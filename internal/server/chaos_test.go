package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subwarpsim/internal/config"
	"subwarpsim/internal/faults"
	"subwarpsim/internal/gpu"
	"subwarpsim/internal/simcache"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/testutil"
	"subwarpsim/internal/workload"
)

// chaosSeed is the fault-schedule seed for the chaos tests; the CI
// gate replays the suite under several fixed SISIM_CHAOS_SEED values.
func chaosSeed(t *testing.T) uint64 {
	t.Helper()
	v := os.Getenv("SISIM_CHAOS_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		t.Fatalf("SISIM_CHAOS_SEED=%q: %v", v, err)
	}
	return n
}

// postRaw posts spec and returns the status, headers, and decoded JSON
// body (error bodies included).
func postRaw(t *testing.T, ts *httptest.Server, path string, spec any) (int, http.Header, map[string]any) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	json.NewDecoder(resp.Body).Decode(&m)
	return resp.StatusCode, resp.Header, m
}

// TestChaosReplayDeterminism is the replay guarantee end to end: two
// fresh service stacks driven with the same chaos seed and the same
// job sequence produce the identical per-job outcome vector and the
// identical fault schedule. Jobs run sequentially on one worker with
// one SM goroutine so per-site hit ordinals are totally ordered —
// that is the regime where byte-for-byte replay is promised.
func TestChaosReplayDeterminism(t *testing.T) {
	seed := chaosSeed(t)
	jobs := []JobSpec{
		{Microbench: 1},
		{Microbench: 2},
		{Microbench: 2, SI: true},
		{Microbench: 4, SI: true, Yield: true},
	}
	run := func() ([]string, []faults.Event) {
		spec := fmt.Sprintf("seed=%d;%s=error(p=0.2);%s=error(p=0.15);%s=error(p=0.25);%s=error(p=0.25)",
			seed, faults.SiteServerAdmit, faults.SiteSMRun,
			faults.SiteDiskRead, faults.SiteDiskWrite)
		in, err := faults.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		d := simcache.NewDisk(t.TempDir())
		d.Faults = in
		d.Logf = t.Logf
		cache := simcache.NewResilient(d, simcache.ResilientOptions{
			Retries: 1, TripAfter: 1 << 30, Sleep: func(time.Duration) {},
		})
		s := newTestServer(t, Options{Workers: 1, SimWorkers: 1, Cache: cache, Faults: in})
		var outcomes []string
		for i := 0; i < 24; i++ {
			res, err := s.Submit(context.Background(), jobs[i%len(jobs)])
			if err != nil {
				outcomes = append(outcomes, fmt.Sprintf("%d:err:%d:%v", i, errStatus(err), err))
			} else {
				outcomes = append(outcomes, fmt.Sprintf("%d:ok:%v:%v:%d",
					i, res.Cached, res.Coalesced, res.Counters.Cycles))
			}
		}
		return outcomes, in.Events()
	}

	o1, e1 := run()
	o2, e2 := run()
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d diverged between identically-seeded runs:\n  a: %s\n  b: %s", i, o1[i], o2[i])
		}
	}
	if len(e1) != len(e2) {
		t.Fatalf("fault schedules differ in length: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("fault schedule event %d diverged: %+v vs %+v", i, e1[i], e2[i])
		}
	}
	if len(e1) == 0 {
		t.Error("chaos run fired no faults; the test is vacuous")
	}
}

// TestChaosConcurrentInvariants hammers a concurrent server whose disk
// cache misbehaves half the time (errors, bit corruption) and whose
// exec path gets latency injected. The invariants: every job succeeds,
// every result is bit-identical to the fault-free reference for its
// spec (a cache may forget, never lie), and nothing leaks.
func TestChaosConcurrentInvariants(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	seed := chaosSeed(t)
	specs := []JobSpec{
		{Microbench: 2},
		{Microbench: 2, SI: true},
		{Microbench: 4, SI: true, Yield: true},
	}
	// Fault-free references, computed directly on the simulator.
	want := make([]stats.Counters, len(specs))
	for i, spec := range specs {
		cfg, err := spec.Config()
		if err != nil {
			t.Fatal(err)
		}
		k, err := spec.BuildKernel()
		if err != nil {
			t.Fatal(err)
		}
		res, err := gpu.Run(cfg, k)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Counters
	}

	in, err := faults.Parse(fmt.Sprintf(
		"seed=%d;%s=error(p=0.5);%s=corrupt(p=0.2);%s=error(p=0.5);%s=partial(p=0.2);%s=latency(p=0.3,d=200us)",
		seed, faults.SiteDiskRead, faults.SiteDiskRead,
		faults.SiteDiskWrite, faults.SiteDiskWrite, faults.SiteServerExec))
	if err != nil {
		t.Fatal(err)
	}
	d := simcache.NewDisk(t.TempDir())
	d.Faults = in
	d.Logf = t.Logf
	cache := simcache.NewResilient(d, simcache.ResilientOptions{
		Retries: 1, TripAfter: 4, Cooldown: time.Hour, Sleep: func(time.Duration) {},
	})
	s := newTestServer(t, Options{Workers: 4, SimWorkers: 2, Cache: cache, Faults: in})

	const rounds = 36
	var wg sync.WaitGroup
	errs := make([]error, rounds)
	results := make([]JobResult, rounds)
	for i := 0; i < rounds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(context.Background(), specs[i%len(specs)])
		}(i)
	}
	wg.Wait()

	for i := 0; i < rounds; i++ {
		if errs[i] != nil {
			t.Errorf("job %d failed under disk-only chaos: %v", i, errs[i])
			continue
		}
		if results[i].Counters != want[i%len(specs)] {
			t.Errorf("job %d returned wrong counters under chaos:\n  got  %+v\n  want %+v",
				i, results[i].Counters, want[i%len(specs)])
		}
	}
	if len(in.Events()) == 0 {
		t.Error("chaos run fired no faults; the test is vacuous")
	}
	// Health honesty: the metrics degraded flag mirrors the breaker.
	// (newTestServer's cleanup drains before the leak check runs.)
	m := s.MetricsSnapshot()
	if cache.Degraded() != m.Degraded {
		t.Errorf("metrics degraded=%v but cache degraded=%v", m.Degraded, cache.Degraded())
	}
}

// TestChaosPanicQuarantine: an injected panic at the exec site is
// recovered, reported as a structured 500 once, and the offending key
// is quarantined — repeats get 422 without reaching a worker, while
// other specs keep working.
func TestChaosPanicQuarantine(t *testing.T) {
	seed := chaosSeed(t)
	in, err := faults.Parse(fmt.Sprintf("seed=%d;%s=panic(n=1)", seed, faults.SiteServerExec))
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Options{Workers: 1, Faults: in})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bad := JobSpec{Microbench: 2}
	code, _, body := postRaw(t, ts, "/v1/jobs", bad)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking job = %d, want 500 (body %v)", code, body)
	}
	if q, _ := body["quarantined"].(bool); !q {
		t.Errorf("500 body must mark the key quarantined: %v", body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "panicked") {
		t.Errorf("500 body must say the job panicked: %v", body)
	}

	code, _, body = postRaw(t, ts, "/v1/jobs", bad)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("repeat of quarantined job = %d, want 422 (body %v)", code, body)
	}
	if key, _ := body["key"].(string); key == "" {
		t.Errorf("422 body must name the quarantined key: %v", body)
	}

	// A different spec is unaffected (the panic rule is spent, n=1).
	if res, code := postJob(t, ts, JobSpec{Microbench: 4}); code != http.StatusOK || res.Counters.Cycles == 0 {
		t.Errorf("healthy spec after quarantine = %d %+v, want 200 with results", code, res)
	}

	m := s.MetricsSnapshot()
	if m.Panics != 1 || m.QuarantinedKeys != 1 || m.QuarantineHits != 1 {
		t.Errorf("panic metrics = panics %d, keys %d, hits %d; want 1/1/1",
			m.Panics, m.QuarantinedKeys, m.QuarantineHits)
	}
	if m.JobsFailed != 1 {
		t.Errorf("JobsFailed = %d, want 1 (the quarantine rejection is not a job)", m.JobsFailed)
	}
}

// TestChaosBreakerDegradesToMemory is the acceptance scenario: the
// disk cache is hard-down, so after the breaker trips the service
// serves correct results memory-only, /healthz says "degraded", and
// no request ever sees a 5xx.
func TestChaosBreakerDegradesToMemory(t *testing.T) {
	seed := chaosSeed(t)
	in, err := faults.Parse(fmt.Sprintf("seed=%d;%s=error;%s=error",
		seed, faults.SiteDiskRead, faults.SiteDiskWrite))
	if err != nil {
		t.Fatal(err)
	}
	d := simcache.NewDisk(t.TempDir())
	d.Faults = in
	d.Logf = t.Logf
	cache := simcache.NewResilient(d, simcache.ResilientOptions{
		Retries: -1, TripAfter: 3, Cooldown: time.Hour, Sleep: func(time.Duration) {},
	})
	s := newTestServer(t, Options{Workers: 2, Cache: cache, Faults: in})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []JobSpec{{Microbench: 1}, {Microbench: 2}, {Microbench: 4}}
	for i, spec := range specs {
		if res, code := postJob(t, ts, spec); code != http.StatusOK || res.Counters.Cycles == 0 {
			t.Fatalf("job %d with dead disk = %d %+v, want 200 with results", i, code, res)
		}
	}
	if st := cache.State(); st != simcache.BreakerOpen {
		t.Fatalf("breaker = %v after hammering a dead disk, want open", st)
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health["status"] != "degraded" {
		t.Errorf("healthz with open breaker = %d %v, want 200 %q", resp.StatusCode, health, "degraded")
	}

	// Memory still answers: a repeat is a cache hit, not a 5xx.
	res, code := postJob(t, ts, specs[0])
	if code != http.StatusOK || !res.Cached {
		t.Errorf("repeat with open breaker = %d cached=%v, want 200 from memory", code, res.Cached)
	}
	m := s.MetricsSnapshot()
	if !m.Degraded || m.Cache.BreakerTrips != 1 || !m.Cache.Degraded {
		t.Errorf("metrics = degraded %v, trips %d; want degraded with 1 trip", m.Degraded, m.Cache.BreakerTrips)
	}
	if m.JobsFailed != 0 {
		t.Errorf("JobsFailed = %d; a dead cache disk must not fail jobs", m.JobsFailed)
	}
}

// TestClientDisconnectCancelsSimulation: a client that goes away
// mid-job cancels the real simulation — the context reaches
// sm.RunContext, which returns context.Canceled promptly.
func TestClientDisconnectCancelsSimulation(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := newTestServer(t, Options{Workers: 1})
	entered := make(chan struct{})
	simErr := make(chan error, 1)
	s.runSim = func(ctx context.Context, cfg config.Config, k *sm.Kernel) (gpu.Result, error) {
		// Swap in a long-running kernel so cancellation lands mid-run.
		p := workload.DefaultMicrobench(4)
		p.Iterations *= 2000
		slow, err := workload.Microbench(p)
		if err != nil {
			simErr <- err
			return gpu.Result{}, err
		}
		close(entered)
		res, err := gpu.RunContext(ctx, cfg, slow, 2)
		simErr <- err
		return res, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Submit(ctx, JobSpec{Microbench: 4})
		errc <- err
	}()
	<-entered
	cancel() // client disconnects mid-simulation

	if err := <-errc; errStatus(err) != http.StatusRequestTimeout {
		t.Errorf("disconnected submit = %v (status %d), want 408", err, errStatus(err))
	}
	select {
	case err := <-simErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("simulation ended with %v, want context.Canceled propagated into sm.RunContext", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("simulation did not observe the cancellation")
	}
}

// TestLeaderPanicFailsAllWaiters: when the singleflight leader
// panics, every coalesced waiter gets the structured 500, the key is
// quarantined for the future, and the worker pool survives to run
// other jobs.
func TestLeaderPanicFailsAllWaiters(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := newTestServer(t, Options{Workers: 1})
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	s.runSim = func(ctx context.Context, cfg config.Config, k *sm.Kernel) (gpu.Result, error) {
		if calls.Add(1) == 1 {
			entered <- struct{}{}
			<-release
			panic("leader exploded")
		}
		return gpu.Result{Config: cfg, Blocks: 1, Counters: stats.Counters{Cycles: 42}}, nil
	}

	spec := JobSpec{Microbench: 2}
	errc := make(chan error, 2)
	go func() { _, err := s.Submit(context.Background(), spec); errc <- err }()
	<-entered // leader is running; a twin will coalesce
	go func() { _, err := s.Submit(context.Background(), spec); errc <- err }()
	waitFor(t, func() bool { return s.coalesced.Load() == 1 })
	close(release) // boom

	for i := 0; i < 2; i++ {
		err := <-errc
		if errStatus(err) != http.StatusInternalServerError {
			t.Errorf("waiter %d = %v (status %d), want 500", i, err, errStatus(err))
		}
		if err == nil || !strings.Contains(err.Error(), "panicked") {
			t.Errorf("waiter %d error %v must report the panic", i, err)
		}
	}

	// The key is quarantined; the pool still works for other specs.
	_, err := s.Submit(context.Background(), spec)
	if errStatus(err) != http.StatusUnprocessableEntity {
		t.Errorf("resubmit of panicked spec = %v (status %d), want 422", err, errStatus(err))
	}
	res, err := s.Submit(context.Background(), JobSpec{Microbench: 4})
	if err != nil || res.Counters.Cycles != 42 {
		t.Errorf("pool did not survive the panic: %+v, %v", res, err)
	}
	m := s.MetricsSnapshot()
	if m.Panics != 1 || m.QuarantineHits != 1 {
		t.Errorf("metrics = panics %d, quarantine hits %d; want 1/1", m.Panics, m.QuarantineHits)
	}
}

// TestDrainCompletesQueuedJobs: SIGTERM-style drain with a busy worker
// AND queued jobs behind it — every queued job still completes with a
// correct result before Drain returns.
func TestDrainCompletesQueuedJobs(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s := New(Options{Workers: 1, QueueDepth: 4})
	started := make(chan struct{}, 3)
	release := make(chan struct{})
	s.runSim = fakeSim(started, release)

	specs := []JobSpec{{Microbench: 1}, {Microbench: 2}, {Microbench: 4}}
	type outcome struct {
		res JobResult
		err error
	}
	outc := make(chan outcome, len(specs))
	for _, spec := range specs {
		go func(spec JobSpec) {
			res, err := s.Submit(context.Background(), spec)
			outc <- outcome{res, err}
		}(spec)
	}
	<-started // one on the worker...
	waitFor(t, func() bool { return s.queue.Len() == 2 })

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, func() bool { return s.draining.Load() })
	close(release) // let all three run to completion

	for i := 0; i < len(specs); i++ {
		o := <-outc
		if o.err != nil || o.res.Counters.Cycles != 42 {
			t.Errorf("queued job did not complete during drain: %+v, %v", o.res, o.err)
		}
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain with queued jobs: %v", err)
	}
	if got := s.jobsDone.Load(); got != 3 {
		t.Errorf("jobsDone = %d, want 3", got)
	}
}

// TestRetryAfterDerivedFromLatency: the 429's Retry-After is modeled
// from the p95 job latency and the load ahead, and the JSON body
// carries the queue depth.
func TestRetryAfterDerivedFromLatency(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	// Seed the latency histogram: every job takes 2s at p95.
	s.latMu.Lock()
	for i := 0; i < 3; i++ {
		s.latency.Observe(2_000_000)
	}
	s.latMu.Unlock()

	started := make(chan struct{}, 2)
	release := make(chan struct{})
	s.runSim = fakeSim(started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for _, size := range []int{1, 2} {
		wg.Add(1)
		go func(size int) {
			defer wg.Done()
			postJob(t, ts, JobSpec{Microbench: size})
		}(size)
	}
	go func() { wg.Wait(); close(done) }()
	<-started
	waitFor(t, func() bool { return s.queue.Len() == 1 })

	code, hdr, body := postRaw(t, ts, "/v1/jobs", JobSpec{Microbench: 4})
	if code != http.StatusTooManyRequests {
		t.Fatalf("overload POST = %d, want 429", code)
	}
	// 1 queued + 1 in flight + this one = 3 jobs; p95 2s / 1 worker -> 6s.
	if got := hdr.Get("Retry-After"); got != "6" {
		t.Errorf("Retry-After = %q, want %q (p95-derived)", got, "6")
	}
	if qd, _ := body["queue_depth"].(float64); qd != 1 {
		t.Errorf("429 body queue_depth = %v, want 1: %v", body["queue_depth"], body)
	}
	if ra, _ := body["retry_after_sec"].(float64); ra != 6 {
		t.Errorf("429 body retry_after_sec = %v, want 6: %v", body["retry_after_sec"], body)
	}

	close(release)
	<-done
}
