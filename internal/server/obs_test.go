package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"subwarpsim/internal/faults"
	"subwarpsim/internal/obs"
	"subwarpsim/internal/simcache"
)

// requiredSeries are the metric names the acceptance criteria demand
// on every scrape, before any job has run.
var requiredSeries = []string{
	"sisimd_queue_depth",
	"sisimd_cache_hits_total",
	"sisimd_cache_misses_total",
	"sisimd_stage_latency_seconds_bucket",
	"sisimd_degraded",
	"sisimd_breaker_state",
	"sisimd_si_idle_cycles_total",
	"sisimd_si_subwarp_switches_total",
	"sisimd_si_tst_overflows_total",
	"sisimd_si_max_live_subwarps",
	"sisimd_go_goroutines",
	"sisimd_build_info",
	// ISSUE 9 sandbox instruments: pre-registered labeled series for
	// every admission reason and budget resource, plus the default
	// tenant's queue-depth gauge and the rate-limit counter.
	`sisimd_admission_rejects_total{reason="cfg"}`,
	`sisimd_admission_rejects_total{reason="parse"}`,
	`sisimd_budget_kills_total{resource="cycles"}`,
	`sisimd_budget_kills_total{resource="instructions"}`,
	`sisimd_budget_kills_total{resource="memory"}`,
	`sisimd_tenant_queue_depth{tenant="default"}`,
	"sisimd_rate_limited_total",
}

func scrape(t *testing.T, ts *httptest.Server, accept string) (string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics (Accept %q) = %d", accept, resp.StatusCode)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestMetricsContentNegotiation: text/plain gets valid Prometheus
// exposition with every required series; the default stays the
// backward-compatible JSON shape.
func TestMetricsContentNegotiation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One real job so per-workload and latency series have data too.
	if _, code := postJob(t, ts, JobSpec{Microbench: 4}); code != http.StatusOK {
		t.Fatalf("job = %d", code)
	}

	text, cty := scrape(t, ts, "text/plain")
	if !strings.HasPrefix(cty, "text/plain") {
		t.Errorf("prometheus content-type = %q", cty)
	}
	if err := obs.Lint(strings.NewReader(text)); err != nil {
		t.Fatalf("exposition failed lint: %v", err)
	}
	for _, name := range requiredSeries {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing required series %s", name)
		}
	}
	// SI roll-ups actually accumulated from the simulation.
	if !strings.Contains(text, `sisimd_si_workload_jobs_total{workload="micro/4"} 1`) {
		t.Errorf("per-workload SI roll-up missing:\n%s", grepLines(text, "si_workload"))
	}

	jsonBody, cty := scrape(t, ts, "")
	if !strings.HasPrefix(cty, "application/json") {
		t.Errorf("default content-type = %q", cty)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(jsonBody), &m); err != nil {
		t.Fatalf("JSON /metrics no longer decodes into Metrics: %v", err)
	}
	if m.JobsTotal != 1 || m.JobsDone != 1 {
		t.Errorf("jobs_total=%d jobs_done=%d, want 1/1", m.JobsTotal, m.JobsDone)
	}
	// The satellite additions: p99 plus separate queue-wait/exec.
	var raw map[string]any
	json.Unmarshal([]byte(jsonBody), &raw)
	for _, k := range []string{"latency_p99_ms", "queue_wait_p50_ms", "queue_wait_p99_ms", "exec_p50_ms", "exec_p99_ms"} {
		if _, ok := raw[k]; !ok {
			t.Errorf("JSON /metrics missing %s", k)
		}
	}
	if m.ExecP99MS <= 0 {
		t.Errorf("exec_p99_ms = %v after a completed job, want > 0", m.ExecP99MS)
	}
}

// logCapture collects slog records for assertion.
type logCapture struct {
	mu    sync.Mutex
	lines []string
	buf   bytes.Buffer
	h     slog.Handler
}

func newLogCapture() *logCapture {
	c := &logCapture{}
	c.h = slog.NewTextHandler(&syncWriter{c: c}, &slog.HandlerOptions{Level: slog.LevelDebug})
	return c
}

type syncWriter struct{ c *logCapture }

func (w *syncWriter) Write(p []byte) (int, error) {
	w.c.mu.Lock()
	defer w.c.mu.Unlock()
	w.c.lines = append(w.c.lines, string(p))
	return len(p), nil
}

func (c *logCapture) all() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.lines...)
}

// TestTraceIDPropagationEndToEnd follows one client-supplied trace ID
// through the whole plane: echoed on the response and in the body,
// present in a structured log line, attached to the exported span
// timeline, and carried by fault events in the debug ring.
func TestTraceIDPropagationEndToEnd(t *testing.T) {
	capture := newLogCapture()
	in := faults.New(7, faults.Rule{Site: faults.SiteServerExec, Kind: faults.KindLatency, Delay: 1, N: 1})
	o := obs.New(MetricsNamespace, 64, 16, slog.New(capture.h))
	s := newTestServer(t, Options{Workers: 1, Faults: in, Obs: o})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const traceID = "e2e-trace-0042"
	body, _ := json.Marshal(JobSpec{Microbench: 4})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Trace-ID", traceID)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Trace-ID"); got != traceID {
		t.Errorf("response X-Trace-ID = %q, want %q", got, traceID)
	}
	var res JobResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.TraceID != traceID {
		t.Errorf("JobResult.TraceID = %q, want %q", res.TraceID, traceID)
	}

	// Structured log line keyed by the trace ID.
	found := false
	for _, line := range capture.all() {
		if strings.Contains(line, "trace_id="+traceID) && strings.Contains(line, "simulation complete") {
			found = true
		}
	}
	if !found {
		t.Errorf("no structured log line carries trace_id=%s:\n%s", traceID, strings.Join(capture.all(), ""))
	}

	// Span export: the stored trace renders to Perfetto JSON including
	// the per-stage spans and the per-SM exec spans.
	tr := o.Traces.Get(traceID)
	if tr == nil {
		t.Fatalf("trace %s not retained (have %v)", traceID, o.Traces.IDs())
	}
	spanNames := map[string]bool{}
	for _, sp := range tr.Spans() {
		spanNames[sp.Name] = true
	}
	for _, want := range []string{"admit", "cache", "dedup", "queue", "exec", "sm 0"} {
		if !spanNames[want] {
			t.Errorf("trace missing span %q (have %v)", want, tr.Spans())
		}
	}
	var perf bytes.Buffer
	if err := tr.WritePerfetto(&perf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if !json.Valid(perf.Bytes()) || !strings.Contains(perf.String(), traceID) {
		t.Error("perfetto export invalid or missing the trace ID")
	}

	// The injected fault landed in the ring with the same trace ID.
	evs := o.Ring.Events()
	faultSeen := false
	for _, ev := range evs {
		if ev.Kind == obs.EventFault && ev.TraceID == traceID && ev.Site == faults.SiteServerExec {
			faultSeen = true
		}
	}
	if !faultSeen {
		t.Errorf("ring has no fault event with trace %s: %+v", traceID, evs)
	}

	// And /debug endpoints serve all of it over HTTP.
	for path, want := range map[string]string{
		"/debug/events":            traceID,
		"/debug/traces":            traceID,
		"/debug/traces/" + traceID: `"traceEvents"`,
	} {
		r2, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK || !strings.Contains(string(b), want) {
			t.Errorf("GET %s = %d, body missing %q", path, r2.StatusCode, want)
		}
	}
}

// TestDebugEventsCaptureIncidents: panic quarantines and breaker
// transitions land in the ring.
func TestDebugEventsCaptureIncidents(t *testing.T) {
	in := faults.New(1, faults.Rule{Site: faults.SiteServerExec, Kind: faults.KindPanic, N: 1})
	s := newTestServer(t, Options{Workers: 1, Faults: in})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, code := postJob(t, ts, JobSpec{Microbench: 4}); code != http.StatusInternalServerError {
		t.Fatalf("panicking job = %d, want 500", code)
	}
	var quarantineSeen, faultSeen bool
	for _, ev := range s.obs.Ring.Events() {
		switch ev.Kind {
		case obs.EventQuarantine:
			quarantineSeen = true
		case obs.EventFault:
			faultSeen = true
		}
	}
	if !faultSeen || !quarantineSeen {
		t.Errorf("ring missing fault/quarantine events: %+v", s.obs.Ring.Events())
	}
}

// TestBreakerTransitionEvents: a dying disk trips the breaker and the
// transition is observable in the ring and as a metric.
func TestBreakerTransitionEvents(t *testing.T) {
	in := faults.New(1, faults.Rule{Site: faults.SiteDiskRead, Kind: faults.KindError})
	disk := simcache.NewDisk(t.TempDir())
	disk.Faults = in
	cache := simcache.NewResilient(disk, simcache.ResilientOptions{
		Retries: -1, TripAfter: 1,
		Sleep: func(d time.Duration) {},
	})
	s := newTestServer(t, Options{Workers: 1, Cache: cache, Faults: in})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		postJob(t, ts, JobSpec{Microbench: 2 + i})
	}
	var breakerSeen bool
	for _, ev := range s.obs.Ring.Events() {
		if ev.Kind == obs.EventBreaker && strings.Contains(ev.Detail, "open") {
			breakerSeen = true
		}
	}
	if !breakerSeen {
		t.Errorf("no breaker transition in ring: %+v", s.obs.Ring.Events())
	}
	text, _ := scrape(t, ts, "text/plain")
	if !strings.Contains(text, "sisimd_degraded 1") {
		t.Errorf("degraded gauge not 1:\n%s", grepLines(text, "degraded"))
	}
	if !strings.Contains(text, "sisimd_breaker_transitions_total") {
		t.Error("breaker transition counter missing")
	}
}

// TestSanitizeTraceID rejects IDs that would damage logs or labels.
func TestSanitizeTraceID(t *testing.T) {
	for in, want := range map[string]string{
		"abc-123":               "abc-123",
		"":                      "",
		"has space":             "",
		"quote\"inside":         "",
		"back\\slash":           "",
		"ctrl\x01":              "",
		strings.Repeat("x", 65): "",
	} {
		if got := sanitizeTraceID(in); got != want {
			t.Errorf("sanitizeTraceID(%q) = %q, want %q", in, got, want)
		}
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return fmt.Sprintf("%s", strings.Join(out, "\n"))
}
