package server

import (
	"fmt"
	"strings"

	"subwarpsim/internal/config"
	"subwarpsim/internal/simcache"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/workload"
)

// JobSpec is the wire form of one simulation job: a workload (an
// application trace name, a microbenchmark subwarp size, or a
// registered workload-family name) plus the architecture/policy knobs
// the sisim CLI exposes. The zero value of every knob means "paper
// default".
type JobSpec struct {
	// App names an application trace (see workload.AppNames).
	// Exactly one of App, Microbench, and Workload must be set.
	App string `json:"app,omitempty"`
	// Microbench runs the divergence microbenchmark with this subwarp
	// size (1, 2, 4, 8, 16, or 32).
	Microbench int `json:"microbench,omitempty"`
	// Workload names a registered synthetic workload family
	// (see workload.GeneratorNames: "gemm", "bfs", "texture", ...).
	Workload string `json:"workload,omitempty"`

	// SI enables Subwarp Interleaving; DWS models Dynamic Warp
	// Subdivision instead (mutually exclusive with SI).
	SI  bool `json:"si,omitempty"`
	DWS bool `json:"dws,omitempty"`
	// Yield enables subwarp-yield (the paper's "Both" mode).
	Yield bool `json:"yield,omitempty"`
	// Trigger is the subwarp-select trigger: "any", "half" (default),
	// or "all".
	Trigger string `json:"trigger,omitempty"`
	// LatencyCycles overrides the L1 miss latency (default 600).
	LatencyCycles int `json:"latency_cycles,omitempty"`
	// WarpSlots overrides warp slots per processing block (default 8).
	WarpSlots int `json:"warp_slots,omitempty"`
	// MaxSubwarps caps TST entries per warp (0 = unlimited).
	MaxSubwarps int `json:"max_subwarps,omitempty"`
	// Order is the divergent-path activation order: "taken" (default),
	// "fallthrough", "largest", or "random".
	Order string `json:"order,omitempty"`
	// Policy is the warp-scheduler arbitration rule: "lrr" (default),
	// "gto", or "wasp".
	Policy string `json:"policy,omitempty"`
	// Compile selects the execution engine: "on" (pre-decoded streams
	// with basic-block fast-forward), "off" (the per-cycle
	// interpreter), or "" for the server's default. The engines are
	// bit-identical, so this is a debugging knob, not a result knob;
	// the cache key ignores it.
	Compile string `json:"compile,omitempty"`

	// TimeoutMS bounds this job's simulation wall time; 0 uses the
	// server default. The server clamps it to its configured maximum.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ParseOrder maps a CLI/API order name onto the config constant.
func ParseOrder(name string) (config.SubwarpOrder, error) {
	switch strings.ToLower(name) {
	case "", "taken":
		return config.OrderTakenFirst, nil
	case "fallthrough":
		return config.OrderFallthroughFirst, nil
	case "largest":
		return config.OrderLargestFirst, nil
	case "random":
		return config.OrderRandom, nil
	default:
		return 0, fmt.Errorf("unknown order %q (taken, fallthrough, largest, random)", name)
	}
}

// ParseTrigger maps a CLI/API trigger name onto the config constant.
func ParseTrigger(name string) (config.SelectTrigger, error) {
	switch strings.ToLower(name) {
	case "any":
		return config.TriggerAnyStalled, nil
	case "", "half":
		return config.TriggerHalfStalled, nil
	case "all":
		return config.TriggerAllStalled, nil
	default:
		return 0, fmt.Errorf("unknown trigger %q (any, half, all)", name)
	}
}

// ParseCompile maps a CLI/API engine name onto the config.Compiled
// bit. The empty string means "default" and parses as compiled.
func ParseCompile(name string) (bool, error) {
	switch strings.ToLower(name) {
	case "", "on":
		return true, nil
	case "off":
		return false, nil
	default:
		return false, fmt.Errorf("unknown compile mode %q (on, off)", name)
	}
}

// ParsePolicy maps a CLI/API scheduler-policy name onto the config
// constant. The empty string means "default" and parses as LRR.
func ParsePolicy(name string) (config.SchedPolicy, error) {
	return config.ParseSchedPolicy(name)
}

// workloadCount counts how many of the three workload selectors the
// spec sets; exactly one must be.
func (j JobSpec) workloadCount() int {
	n := 0
	if j.App != "" {
		n++
	}
	if j.Microbench != 0 {
		n++
	}
	if j.Workload != "" {
		n++
	}
	return n
}

// Validate reports the first problem with the spec.
func (j JobSpec) Validate() error {
	switch {
	case j.workloadCount() == 0:
		return fmt.Errorf("spec needs a workload: set app, microbench, or workload")
	case j.workloadCount() > 1:
		return fmt.Errorf("spec sets more than one of app, microbench, and workload; pick one")
	case j.Microbench < 0:
		return fmt.Errorf("microbench subwarp size %d must be positive", j.Microbench)
	case j.SI && j.DWS:
		return fmt.Errorf("spec sets both si and dws; pick one")
	case j.LatencyCycles < 0 || j.WarpSlots < 0 || j.MaxSubwarps < 0 || j.TimeoutMS < 0:
		return fmt.Errorf("negative knob values are invalid")
	}
	switch {
	case j.App != "":
		if _, err := workload.ProfileByName(j.App); err != nil {
			return err
		}
	case j.Workload != "":
		// Generators validate their (default) parameters at build time;
		// here only the name needs to resolve.
		if _, err := workload.GeneratorByName(j.Workload); err != nil {
			return err
		}
	default:
		if err := workload.DefaultMicrobench(j.Microbench).Validate(); err != nil {
			return err
		}
	}
	if _, err := ParseTrigger(j.Trigger); err != nil {
		return err
	}
	if _, err := ParsePolicy(j.Policy); err != nil {
		return err
	}
	if _, err := ParseOrder(j.Order); err != nil {
		return err
	}
	if _, err := ParseCompile(j.Compile); err != nil {
		return err
	}
	return nil
}

// Config builds the architecture configuration the spec describes,
// starting from the paper's Table I defaults.
func (j JobSpec) Config() (config.Config, error) {
	cfg := config.Default()
	if err := j.Validate(); err != nil {
		return cfg, err
	}
	if j.LatencyCycles > 0 {
		cfg.L1MissLatency = j.LatencyCycles
	}
	if j.WarpSlots > 0 {
		cfg.WarpSlotsPerBlock = j.WarpSlots
	}
	order, _ := ParseOrder(j.Order)
	cfg.Order = order
	policy, _ := ParsePolicy(j.Policy)
	cfg.SchedPolicy = policy
	compiled, _ := ParseCompile(j.Compile)
	cfg.Compiled = compiled
	if j.DWS {
		cfg = cfg.WithDWS()
	} else if j.SI {
		trigger, _ := ParseTrigger(j.Trigger)
		cfg = cfg.WithSI(j.Yield, trigger)
		cfg.SI.MaxSubwarps = j.MaxSubwarps
	}
	return cfg, cfg.Validate()
}

// BuildKernel constructs a fresh kernel for the spec's workload.
// Kernels carry mutable functional state, so every simulation needs
// its own.
func (j JobSpec) BuildKernel() (*sm.Kernel, error) {
	switch {
	case j.App != "":
		p, err := workload.ProfileByName(j.App)
		if err != nil {
			return nil, err
		}
		return workload.Megakernel(p)
	case j.Workload != "":
		return workload.BuildByName(j.Workload)
	default:
		return workload.Microbench(workload.DefaultMicrobench(j.Microbench))
	}
}

// CacheKey computes the spec's content address — the same
// simcache.Key Submit uses — without running anything. The cluster
// coordinator hashes it onto the consistent-hash ring so that a spec
// routes to the node whose memory LRU already holds its result.
// Building the kernel makes this costlier than a pure hash; routing
// layers should memoize per spec (JobSpec is comparable).
func (j JobSpec) CacheKey() (simcache.Key, error) {
	cfg, err := j.Config()
	if err != nil {
		return simcache.Key{}, err
	}
	kernel, err := j.BuildKernel()
	if err != nil {
		return simcache.Key{}, err
	}
	return simcache.KeyOf(cfg, kernel, j.WorkloadID()), nil
}

// WorkloadID is the workload half of the cache key: a stable name for
// how BuildKernel constructs the kernel.
func (j JobSpec) WorkloadID() string {
	switch {
	case j.App != "":
		return "app/" + j.App
	case j.Workload != "":
		return "gen/" + j.Workload
	default:
		return fmt.Sprintf("micro/%d", j.Microbench)
	}
}
