package scene

import (
	"testing"

	"subwarpsim/internal/rtcore"
)

func defaultParams() Params {
	return Params{Seed: 1, Triangles: 400, Materials: 6, Clusters: 12, Extent: 50}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if a.BVH.NumTriangles() != b.BVH.NumTriangles() {
		t.Fatal("triangle counts differ across identical seeds")
	}
	for i := 0; i < a.BVH.NumTriangles(); i++ {
		if a.BVH.Triangle(i) != b.BVH.Triangle(i) {
			t.Fatalf("triangle %d differs across identical seeds", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := defaultParams()
	a, _ := Generate(p)
	p.Seed = 2
	b, _ := Generate(p)
	same := 0
	for i := 0; i < a.BVH.NumTriangles(); i++ {
		if a.BVH.Triangle(i) == b.BVH.Triangle(i) {
			same++
		}
	}
	if same == a.BVH.NumTriangles() {
		t.Error("different seeds produced identical scenes")
	}
}

func TestGenerateValidBVH(t *testing.T) {
	s, err := Generate(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.BVH.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.BVH.NumTriangles() != 400 {
		t.Errorf("triangles = %d, want 400", s.BVH.NumTriangles())
	}
}

func TestGenerateMaterialsInRange(t *testing.T) {
	p := defaultParams()
	p.MaterialSkew = 0.5
	s, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < s.BVH.NumTriangles(); i++ {
		m := s.BVH.Triangle(i).Material
		if m < 0 || m >= p.Materials {
			t.Fatalf("material %d out of range", m)
		}
		seen[m]++
	}
	if len(seen) < 2 {
		t.Errorf("only %d materials used, want variety", len(seen))
	}
}

func TestMaterialSkewBiasesLowIndices(t *testing.T) {
	uniform := defaultParams()
	uniform.Triangles = 3000
	skewed := uniform
	skewed.MaterialSkew = 0.9

	count := func(p Params) int {
		s, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		zero := 0
		for i := 0; i < s.BVH.NumTriangles(); i++ {
			if s.BVH.Triangle(i).Material == 0 {
				zero++
			}
		}
		return zero
	}
	if count(skewed) <= count(uniform) {
		t.Error("skew should concentrate material 0")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Params{
		{Seed: 1, Triangles: -1, Materials: 1, Clusters: 1, Extent: 1},
		{Seed: 1, Triangles: 1, Materials: 0, Clusters: 1, Extent: 1},
		{Seed: 1, Triangles: 1, Materials: 1, Clusters: 0, Extent: 1},
		{Seed: 1, Triangles: 1, Materials: 1, Clusters: 1, Extent: 0},
		{Seed: 1, Triangles: 1, Materials: 1, Clusters: 1, Extent: 1, MaterialSkew: 1.5},
	}
	for i, p := range bad {
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestCameraPrimaryRaysHitScene(t *testing.T) {
	s, err := Generate(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cam := NewCamera(s.BVH.Bounds(), 32, 32)
	hits := 0
	for px := uint32(0); px < 1024; px++ {
		ray := cam.PrimaryRay(px)
		if s.BVH.Traverse(ray, 1e-4, rtcore.InfinityT).Ok {
			hits++
		}
	}
	// The camera frames the scene, so a reasonable share of primary
	// rays must hit geometry (and some must miss so miss shaders run).
	if hits < 64 {
		t.Errorf("only %d/1024 primary rays hit the scene", hits)
	}
	if hits == 1024 {
		t.Error("every ray hit; no miss-shader divergence possible")
	}
}

func TestCameraPixelWraps(t *testing.T) {
	cam := NewCamera(rtcore.AABB{Min: rtcore.V(-1, -1, -1), Max: rtcore.V(1, 1, 1)}, 4, 4)
	a := cam.PrimaryRay(3)
	b := cam.PrimaryRay(3 + 16)
	if a != b {
		t.Error("pixel index should wrap modulo pixel count")
	}
}

func TestRayGenGenerations(t *testing.T) {
	s, err := Generate(defaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cam := NewCamera(s.BVH.Bounds(), 16, 16)
	gen := s.RayGen(cam)
	pixels := uint32(16 * 16)

	// Generation 0 matches the camera exactly.
	if gen(5) != cam.PrimaryRay(5) {
		t.Error("generation 0 should be the primary ray")
	}
	// Bounce rays differ from primaries and are deterministic.
	b1 := gen(5 + pixels)
	b2 := gen(5 + pixels)
	if b1 != b2 {
		t.Error("bounce rays must be deterministic")
	}
	if b1 == gen(5) {
		t.Error("bounce ray should differ from primary")
	}
	// Distinct IDs give distinct bounce rays (almost surely).
	if gen(5+pixels) == gen(6+pixels) {
		t.Error("adjacent bounce rays identical")
	}
}

func TestWarpDivergenceEmerges(t *testing.T) {
	// 32 consecutive pixels (one warp) must dispatch more than one
	// shader on a clustered multi-material scene — the Figure 5 effect.
	p := defaultParams()
	p.Clusters = 24
	s, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	cam := NewCamera(s.BVH.Bounds(), 64, 64)
	gen := s.RayGen(cam)
	shaders := make(map[int]bool)
	for lane := uint32(0); lane < 32; lane++ {
		hit := s.BVH.Traverse(gen(2048+lane), 1e-4, rtcore.InfinityT)
		mat := rtcore.MissMaterial
		if hit.Ok {
			mat = hit.Material
		}
		shaders[mat] = true
	}
	if len(shaders) < 2 {
		t.Errorf("warp stayed convergent (%d shader); scene should splinter it", len(shaders))
	}
}
