// Package scene procedurally generates raytracing scenes and cameras.
//
// Scenes stand in for the game content behind the paper's application
// traces (Table II): clustered triangle geometry whose materials select
// hit shaders. The per-thread divergence patterns that drive Subwarp
// Interleaving emerge from real BVH traversals over this geometry — a
// warp's 32 camera rays hit different objects and therefore dispatch
// different shaders, exactly the splintering of Figure 5.
package scene

import (
	"fmt"
	"math"
	"math/rand"

	"subwarpsim/internal/rtcore"
)

// Params configures procedural scene generation.
type Params struct {
	// Seed makes generation deterministic.
	Seed int64
	// Triangles is the primitive count.
	Triangles int
	// Materials is the number of distinct hit-shader materials; rays
	// that miss everything dispatch the miss shader instead.
	Materials int
	// Clusters groups triangles into that many objects. More clusters
	// with mixed materials raises intra-warp divergence; fewer, larger
	// single-material objects keep neighbouring rays convergent.
	Clusters int
	// Extent is the half-width of the scene cube.
	Extent float32
	// MaterialSkew in [0,1] biases material assignment: 0 is uniform,
	// values toward 1 make one material dominate (predominant shader).
	MaterialSkew float64
}

// Validate reports the first invalid parameter.
func (p Params) Validate() error {
	switch {
	case p.Triangles < 0:
		return fmt.Errorf("scene: negative triangle count")
	case p.Materials <= 0:
		return fmt.Errorf("scene: need at least one material")
	case p.Clusters <= 0:
		return fmt.Errorf("scene: need at least one cluster")
	case p.Extent <= 0:
		return fmt.Errorf("scene: non-positive extent")
	case p.MaterialSkew < 0 || p.MaterialSkew > 1:
		return fmt.Errorf("scene: MaterialSkew outside [0,1]")
	}
	return nil
}

// Scene is generated geometry with its acceleration structure.
type Scene struct {
	Params Params
	BVH    *rtcore.BVH
}

// Generate builds a deterministic scene from the parameters.
func Generate(p Params) (*Scene, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))

	centers := make([]rtcore.Vec3, p.Clusters)
	clusterMat := make([]int, p.Clusters)
	for i := range centers {
		centers[i] = rtcore.V(
			(rng.Float32()*2-1)*p.Extent,
			(rng.Float32()*2-1)*p.Extent,
			(rng.Float32()*2-1)*p.Extent*0.5+p.Extent, // in front of camera plane
		)
		clusterMat[i] = pickMaterial(rng, p.Materials, p.MaterialSkew)
	}

	clusterRadius := p.Extent / float32(math.Cbrt(float64(p.Clusters)+1))
	tris := make([]rtcore.Triangle, 0, p.Triangles)
	for i := 0; i < p.Triangles; i++ {
		c := rng.Intn(p.Clusters)
		base := centers[c].Add(rtcore.V(
			(rng.Float32()*2-1)*clusterRadius,
			(rng.Float32()*2-1)*clusterRadius,
			(rng.Float32()*2-1)*clusterRadius,
		))
		size := clusterRadius * (0.2 + rng.Float32()*0.6)
		mat := clusterMat[c]
		// A minority of triangles take a fresh material so even large
		// objects produce some shader mixing at silhouettes.
		if rng.Float64() < 0.15 {
			mat = pickMaterial(rng, p.Materials, p.MaterialSkew)
		}
		tris = append(tris, rtcore.Triangle{
			V0:       base,
			V1:       base.Add(rtcore.V(size*(rng.Float32()-0.3), size*rng.Float32(), size*(rng.Float32()-0.5))),
			V2:       base.Add(rtcore.V(size*rng.Float32(), size*(rng.Float32()-0.3), size*(rng.Float32()-0.5))),
			Material: mat,
		})
	}
	return &Scene{Params: p, BVH: rtcore.BuildBVH(tris)}, nil
}

// pickMaterial draws a material index with geometric skew: skew 0 is
// uniform; higher skew concentrates probability on low indices.
func pickMaterial(rng *rand.Rand, materials int, skew float64) int {
	if materials == 1 {
		return 0
	}
	if skew <= 0 {
		return rng.Intn(materials)
	}
	// With probability proportional to (1-skew)^i choose material i.
	p := 0.35 + 0.6*skew
	for i := 0; i < materials-1; i++ {
		if rng.Float64() < p {
			return i
		}
	}
	return materials - 1
}

// Camera shoots primary rays through a pixel grid covering the scene.
type Camera struct {
	Origin     rtcore.Vec3
	lowerLeft  rtcore.Vec3
	horizontal rtcore.Vec3
	vertical   rtcore.Vec3
	Width      int
	Height     int
}

// NewCamera positions a camera on the -Z side of the scene bounds,
// framing the whole extent with a wxh pixel grid.
func NewCamera(bounds rtcore.AABB, w, h int) Camera {
	center := bounds.Centroid()
	span := bounds.Max.Sub(bounds.Min)
	dist := span.Len()
	if dist == 0 {
		dist = 10
	}
	origin := center.Sub(rtcore.V(0, 0, dist*1.2))
	planeW := span.X * 1.1
	planeH := span.Y * 1.1
	if planeW == 0 {
		planeW = 1
	}
	if planeH == 0 {
		planeH = 1
	}
	lowerLeft := center.Sub(rtcore.V(planeW/2, planeH/2, 0))
	return Camera{
		Origin:     origin,
		lowerLeft:  lowerLeft,
		horizontal: rtcore.V(planeW, 0, 0),
		vertical:   rtcore.V(0, planeH, 0),
		Width:      w,
		Height:     h,
	}
}

// PrimaryRay returns the camera ray through pixel index (row-major).
func (c Camera) PrimaryRay(pixel uint32) rtcore.Ray {
	n := uint32(c.Width * c.Height)
	if n == 0 {
		n = 1
	}
	pixel %= n
	x := int(pixel) % c.Width
	y := int(pixel) / c.Width
	u := (float32(x) + 0.5) / float32(c.Width)
	v := (float32(y) + 0.5) / float32(c.Height)
	target := c.lowerLeft.Add(c.horizontal.Scale(u)).Add(c.vertical.Scale(v))
	return rtcore.NewRay(c.Origin, target.Sub(c.Origin))
}

// RayGen returns the ray generator binding ray IDs to rays: ID bits
// [0, pixels) select a pixel; the generation field (id / pixels) greater
// than zero produces stochastically scattered bounce rays, standing in
// for the recursive TraceRay calls of Figure 5.
func (s *Scene) RayGen(cam Camera) rtcore.RayGen {
	pixels := uint32(cam.Width * cam.Height)
	if pixels == 0 {
		pixels = 1
	}
	bounds := s.BVH.Bounds()
	center := bounds.Centroid()
	extent := s.Params.Extent
	return func(id uint32) rtcore.Ray {
		pixel := id % pixels
		gen := id / pixels
		if gen == 0 {
			return cam.PrimaryRay(pixel)
		}
		// Bounce ray: origin jittered near the scene, direction from a
		// deterministic hash of the ID (stochastic scatter).
		h := hash32(id)
		origin := center.Add(rtcore.V(
			unit(h)*extent, unit(h>>8)*extent, unit(h>>16)*extent*0.5,
		))
		dir := rtcore.V(unit(h>>4), unit(h>>12), unit(h>>20)+0.01)
		return rtcore.NewRay(origin, dir)
	}
}

// unit maps byte bits to [-1, 1).
func unit(h uint32) float32 { return float32(h&0xFF)/128 - 1 }

func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7FEB352D
	x ^= x >> 15
	x *= 0x846CA68B
	x ^= x >> 16
	return x
}
