package gpu

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/workload"
)

// slowKernel builds a microbenchmark long enough that cancellation
// lands mid-simulation rather than after completion.
func slowKernel(t *testing.T) *sm.Kernel {
	t.Helper()
	p := workload.DefaultMicrobench(4)
	p.Iterations *= 100
	k, err := workload.Microbench(p)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestCancelMidRunReturnsPromptly cancels a long simulation and
// expects RunContext back within the stride-check latency, wrapping
// context.Canceled.
func TestCancelMidRunReturnsPromptly(t *testing.T) {
	for _, workers := range []int{1, 2} {
		ctx, cancel := context.WithCancel(context.Background())
		errc := make(chan error, 1)
		go func() {
			_, err := RunContext(ctx, config.Default(), slowKernel(t), workers)
			errc <- err
		}()
		time.Sleep(20 * time.Millisecond) // let the simulation get going
		cancel()

		start := time.Now()
		select {
		case err := <-errc:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: cancelled simulation did not return", workers)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("workers=%d: return took %v after cancel", workers, elapsed)
		}
	}
}

// TestDeadlineExceededSurfaces runs under a 1ms budget and expects a
// context.DeadlineExceeded-compatible error.
func TestDeadlineExceededSurfaces(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, config.Default(), slowKernel(t), 0)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestPreCancelledContextRefusesToRun: an already-dead context must
// fail before simulating anything.
func TestPreCancelledContextRefusesToRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := RunContext(ctx, config.Default(), slowKernel(t), 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("pre-cancelled run took %v", elapsed)
	}
}

// TestCancelLeavesNoGoroutines: repeated cancelled runs must not
// accumulate SM worker goroutines.
func TestCancelLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		RunContext(ctx, config.Default(), slowKernel(t), 2)
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after cancelled runs",
				before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestContextlessRunUnaffected: the plain entry points still complete
// and match a Background-context run bit for bit.
func TestContextlessRunUnaffected(t *testing.T) {
	mk := func() *sm.Kernel {
		k, err := workload.Microbench(workload.DefaultMicrobench(4))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	plain, err := RunWorkers(config.Default(), mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunContext(context.Background(), config.Default(), mk(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Counters != viaCtx.Counters {
		t.Error("RunContext(Background) must be bit-identical to RunWorkers")
	}
}
