package gpu

import (
	"errors"
	"testing"
	"time"

	"subwarpsim/internal/config"
	"subwarpsim/internal/faults"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/workload"
)

// TestSMPanicIsRecovered: an injected panic inside an SM goroutine
// must surface as a *PanicError instead of killing the process, on
// both the sequential and the parallel path.
func TestSMPanicIsRecovered(t *testing.T) {
	for _, workers := range []int{1, 2} {
		cfg := config.Default()
		cfg.Faults = faults.New(1, faults.Rule{Site: faults.SiteSMRun, Kind: faults.KindPanic, N: 1})
		k, err := workload.Microbench(workload.DefaultMicrobench(4))
		if err != nil {
			t.Fatal(err)
		}
		_, err = RunWorkers(cfg, k, workers)
		if err == nil {
			t.Fatalf("workers=%d: injected panic produced no error", workers)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value == nil || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic error lacks value/stack: %+v", workers, pe)
		}
		if pv, ok := pe.Value.(*faults.PanicValue); !ok || pv.Site != faults.SiteSMRun {
			t.Errorf("workers=%d: panic value = %#v, want injected PanicValue", workers, pe.Value)
		}
	}
}

// TestSMInjectedErrorSurfaces: an error rule at the SM site fails the
// run with an error wrapping faults.ErrInjected.
func TestSMInjectedErrorSurfaces(t *testing.T) {
	cfg := config.Default()
	cfg.Faults = faults.New(1, faults.Rule{Site: faults.SiteSMRun, Kind: faults.KindError, N: 1})
	k, err := workload.Microbench(workload.DefaultMicrobench(4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(cfg, k)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want wrapped faults.ErrInjected", err)
	}
}

// TestSMLatencyInjectionIsResultTransparent: injected wall-clock
// latency must not change simulated counters — the determinism
// contract survives slow backends.
func TestSMLatencyInjectionIsResultTransparent(t *testing.T) {
	mk := func() *sm.Kernel {
		k, err := workload.Microbench(workload.DefaultMicrobench(4))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	clean, err := RunWorkers(config.Default(), mk(), 2)
	if err != nil {
		t.Fatal(err)
	}

	cfg := config.Default()
	cfg.Faults = faults.New(1, faults.Rule{
		Site: faults.SiteSMRun, Kind: faults.KindLatency, Delay: time.Millisecond})
	slow, err := RunWorkers(cfg, mk(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if slow.Counters != clean.Counters {
		t.Errorf("latency injection changed counters:\n  clean %+v\n  slow  %+v",
			clean.Counters, slow.Counters)
	}
	if len(cfg.Faults.Events()) != cfg.NumSMs {
		t.Errorf("latency fired %d times, want once per SM (%d)",
			len(cfg.Faults.Events()), cfg.NumSMs)
	}
}
