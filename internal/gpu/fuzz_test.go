package gpu

import (
	"fmt"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// fuzzMaxCycles tightens the global simulation budget while fuzzing:
// generated kernels are tiny, so a run that needs more cycles than
// this is a hang, and a short budget keeps exec rates useful.
const fuzzMaxCycles = 500_000

// fuzzProgram maps fuzz bytes onto a small always-valid, always-
// terminating kernel program. Byte by byte it picks from a menu of ALU
// ops, scoreboarded loads/textures with consumers, private-slot
// stores, lane-predicated divergence regions (BSSY/@!P BRA/BSYNC),
// bounded lane-divergent loops, BRX jump-table dispatches whose
// lanes scatter over 2 or 4 reconverging case bodies, and BFS-style
// data-dependent loops whose trip count comes from memory (including a
// frontier-empty pre-test that skips the walk entirely). Register,
// predicate, barrier, and scoreboard indices are reduced into valid
// ranges by construction, so any input yields a program Build accepts;
// interesting inputs differ in control structure, not validity. Every
// divergent construct arms a convergence barrier before it branches —
// the structural guarantee real compilers provide — because
// unstructured fragmentation lets warp fragments re-arm reused barrier
// indices at skewed program points and cross-block at BSYNC. TRACE
// stays excluded — RT-core state needs coordinated setup the generator
// doesn't model.
func fuzzProgram(data []byte) (*isa.Program, error) {
	b := isa.NewBuilder("fuzzrun")
	// Fixed prologue: r0 = lane, r1 = global tid, r2 = private output
	// slot (never loaded by other threads), r3 = shared read-only table.
	b.S2R(0, isa.SRLaneID)
	b.S2R(1, isa.SRThreadID)
	b.Shl(2, 1, 2)
	b.Movi(4, 0x0080_0000)
	b.Iadd(2, 2, 4)
	b.Movi(3, 0x1000)

	pos := 0
	next := func() byte {
		if pos >= len(data) {
			return 0
		}
		c := data[pos]
		pos++
		return c
	}
	// reg picks from the r4..r11 working set the prologue leaves free.
	reg := func(c byte) uint8 { return 4 + c%8 }

	type region struct {
		bar  uint8
		join string
	}
	var open []region
	labels := 0
	sb := 0
	for op := 0; op < 64 && pos < len(data); op++ {
		c := next()
		switch c % 12 {
		case 0:
			b.Iadd(reg(next()), reg(next()), reg(next()))
		case 1:
			b.Imuli(reg(next()), reg(next()), int32(next())%64)
		case 2:
			b.Ffma(reg(next()), reg(next()), reg(next()), reg(next()))
		case 3: // shared-table load with a dependent consumer
			rd := reg(next())
			b.Ldg(rd, 3, int32(next()%64)*4, sb)
			b.Iadd(reg(next()), rd, rd).Req(sb)
			sb = (sb + 1) % isa.NumBarriers
		case 4: // texture-path load with a dependent consumer
			rd := reg(next())
			b.Tld(rd, 3, int32(next()%64)*4, sb)
			b.Fadd(reg(next()), rd, rd).Req(sb)
			sb = (sb + 1) % isa.NumBarriers
		case 5: // store to the thread's private slot
			b.Stg(2, 0, reg(next()))
		case 6: // open a lane-predicated divergence region
			if len(open) >= 4 {
				break
			}
			bar := uint8(len(open))
			join := fmt.Sprintf("join%d", labels)
			labels++
			pred := c % 3
			b.Isetpi(isa.CmpLT, pred, 0, int32(next()%33))
			b.Bssy(bar, join)
			b.BraP(pred, true, join)
			open = append(open, region{bar: bar, join: join})
		case 7: // close the innermost divergence region
			if len(open) == 0 {
				break
			}
			r := open[len(open)-1]
			open = open[:len(open)-1]
			b.Label(r.join)
			b.Bsync(r.bar)
		case 8: // bounded loop with lane-divergent trip counts
			loop := fmt.Sprintf("loop%d", labels)
			ctr := reg(next())
			b.Movi(ctr, 3)
			if len(open) >= 4 {
				// No convergence barrier free: emit the loop with a
				// uniform trip count. Divergent trip counts are only
				// legal under an armed barrier — a splinter that
				// outlives the loop leaves the warp permanently
				// fragmented, and fragments that later re-arm a reused
				// barrier index at skewed points cross-block at BSYNC
				// (the structural guarantee real compilers provide by
				// emitting BSSY before every divergent branch).
				labels++
				b.Iaddi(ctr, ctr, int32(next()%3)+1)
				b.Label(loop)
				b.Iaddi(ctr, ctr, -1)
				b.Isetpi(isa.CmpGT, 3, ctr, 0)
				b.BraP(3, false, loop)
				break
			}
			bar := uint8(len(open))
			join := fmt.Sprintf("loopjoin%d", labels)
			labels++
			b.Iand(ctr, 0, ctr)
			b.Iaddi(ctr, ctr, int32(next()%3)+1)
			b.Bssy(bar, join)
			b.Label(loop)
			b.Iaddi(ctr, ctr, -1)
			b.Isetpi(isa.CmpGT, 3, ctr, 0)
			b.BraP(3, false, loop)
			b.Label(join)
			b.Bsync(bar)
		case 9:
			b.Yield()
		case 10: // BRX jump-table dispatch over reconverging case bodies
			if len(open) >= 4 {
				break
			}
			ways := 2 << (next() % 2) // 2 or 4 targets (power of two for IAND)
			bar := uint8(len(open))
			join := fmt.Sprintf("brxjoin%d", labels)
			labels++
			sel := reg(next())
			b.Movi(sel, int32(ways-1))
			b.Iand(sel, 0, sel) // lane & (ways-1): interleaved lanes per target
			b.Bssy(bar, join)
			const caseLen = 3 // IADDI + BRA + NOP pad
			b.Imuli(sel, sel, caseLen)
			caseBase := b.PC() + 2 // past the IADDI and BRX below
			b.Iaddi(sel, sel, int32(caseBase))
			b.Brx(sel)
			for wy := 0; wy < ways; wy++ {
				b.Iaddi(reg(byte(wy)), 0, int32(wy*7+1))
				b.Bra(join)
				b.Nop() // pad to caseLen
			}
			b.Label(join)
			b.Bsync(bar)
		case 11: // BFS-style data-dependent loop with frontier-empty pre-test
			if len(open) >= 4 {
				break
			}
			bar := uint8(len(open))
			join := fmt.Sprintf("ddjoin%d", labels)
			loop := fmt.Sprintf("ddloop%d", labels)
			labels++
			// Per-lane trip count from memory: lane & loaded value, masked
			// to 0..3, so counts are data-dependent, lane-divergent, and
			// often zero (the frontier-empty boundary).
			cnt := reg(next())
			b.Ldg(cnt, 3, int32(next()%64)*4, sb)
			b.Iand(cnt, 0, cnt).Req(sb)
			sb = (sb + 1) % isa.NumBarriers
			b.Shl(cnt, cnt, 30)
			b.Shr(cnt, cnt, 30)
			b.Isetpi(isa.CmpGT, 4, cnt, 0)
			b.Bssy(bar, join)
			b.BraP(4, true, join) // empty-frontier lanes skip the walk
			b.Label(loop)
			b.Iaddi(cnt, cnt, -1)
			b.Isetpi(isa.CmpGT, 4, cnt, 0)
			b.BraP(4, false, loop)
			b.Label(join)
			b.Bsync(bar)
		}
	}
	for len(open) > 0 {
		r := open[len(open)-1]
		open = open[:len(open)-1]
		b.Label(r.join)
		b.Bsync(r.bar)
	}
	return b.Exit().Build()
}

// fuzzMemory builds the deterministic shared table generated loads
// read from.
func fuzzMemory() *mem.Memory {
	m := mem.NewMemory()
	for i := uint64(0); i < 64; i++ {
		m.Store(0x1000+4*i, uint32(i*2654435761))
	}
	return m
}

// FuzzRun feeds generated kernels to the whole-device simulator and
// checks the properties no input may break: the simulator never
// panics; a parallel run is bit-identical to a sequential run of the
// same kernel (counters, final memory image, and error outcome); and
// the interpreter (Compiled=false) is bit-identical to the compiled
// engine — all with SI off and on. Run errors themselves (e.g. the
// tightened cycle budget) are tolerated as long as every variant
// agrees.
func FuzzRun(f *testing.F) {
	old := MaxCycles
	MaxCycles = fuzzMaxCycles
	f.Cleanup(func() { MaxCycles = old })

	f.Add([]byte{2, 0})                          // tiny straight-line kernel
	f.Add([]byte{16, 6, 9, 3, 1, 2, 7, 5, 0})    // divergence region with mixed body
	f.Add([]byte{7, 8, 4, 4, 26, 17, 6, 20, 16}) // loop plus memory traffic
	f.Add([]byte{
		31, 6, 9, 6, 3, 3, 1, 8, 2, 2, 7, 4, 4, 7, 5, 5, // nested regions, loop, stores
	})
	f.Add([]byte{32, 10, 0, 1, 3, 2, 2, 10, 1, 0, 5, 1}) // BRX dispatches around loads

	// Seeds stressing fast-forward boundary conditions.
	f.Add([]byte{ // long straight-line ALU run (maximal FF windows)
		9, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2,
	})
	f.Add([]byte{18, 6, 1, 7, 6, 2, 7, 9})    // blocks ending in BSYNC, plus a YIELD
	f.Add([]byte{40, 0, 3, 5, 3, 9, 0, 4, 1}) // scoreboard hazards mid-block
	f.Add([]byte{                             // deep nesting + BRX scatter: TST pressure under the capped-SI config
		255, 6, 6, 6, 6, 3, 10, 7, 7, 7, 7, 5,
	})

	// Seeds stressing the scheduler-policy zoo.
	f.Add([]byte{ // many warps + back-to-back scoreboard chains: GTO keeps
		// re-picking the oldest warp while younger ones sit load-stalled
		// (the starvation edge LRR's circular scan never exhibits)
		0x4b, 3, 1, 3, 2, 3, 5, 3, 0, 3, 4, 3, 1, 3, 2,
	})
	f.Add([]byte{ // data-dependent loops (c%12==11): frontier-empty lanes
		// skip past the walk while sibling lanes iterate
		0x26, 11, 0, 4, 23, 8, 2, 11, 1, 5,
	})
	f.Add([]byte{ // empty-frontier boundary back to back with divergence regions
		0x3a, 11, 2, 63, 6, 1, 11, 3, 0, 7, 5,
	})

	// tinyTST caps the TST at 2 entries so generated divergence can
	// overflow it (the overflow path leaves the subwarp waiting in
	// place, which fast-forward must reproduce cycle-exactly).
	tinyTST := config.Default().WithSI(true, config.TriggerAnyStalled)
	tinyTST.SI.MaxSubwarps = 2

	// The scheduler-policy zoo: GTO's oldest-first fallback can starve
	// young ready warps behind a long-latency veteran, and the WaSP-style
	// phase policy deliberately runs its leader group ahead; both must
	// stay deterministic and engine-identical like LRR.
	gto := config.Default()
	gto.SchedPolicy = config.SchedGTO
	waspSI := config.Default().WithSI(true, config.TriggerHalfStalled)
	waspSI.SchedPolicy = config.SchedWaSP

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		prog, err := fuzzProgram(data[1:])
		if err != nil {
			t.Fatalf("generator produced an invalid program: %v", err)
		}
		warps := int(data[0])%12 + 1
		wpc := int(data[0]>>4)%4 + 1

		run := func(cfg config.Config, workers int) (Result, uint64, error) {
			k := &sm.Kernel{
				Program:     prog,
				NumWarps:    warps,
				WarpsPerCTA: wpc,
				Memory:      fuzzMemory(),
			}
			res, err := RunWorkers(cfg, k, workers)
			return res, k.Memory.Fingerprint(), err
		}
		for _, cfg := range []config.Config{
			config.Default(),
			config.Default().WithSI(true, config.TriggerHalfStalled),
			tinyTST,
			gto,
			waspSI,
		} {
			seqRes, seqFP, seqErr := run(cfg, 1)
			parRes, parFP, parErr := run(cfg, 4)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("error outcomes diverge: sequential %v, parallel %v", seqErr, parErr)
			}
			interp := cfg
			interp.Compiled = false
			intRes, intFP, intErr := run(interp, 1)
			if (seqErr == nil) != (intErr == nil) {
				t.Fatalf("error outcomes diverge: compiled %v, interpreted %v", seqErr, intErr)
			}
			if seqErr != nil {
				continue
			}
			if seqRes.Counters != parRes.Counters {
				t.Fatalf("counters diverge:\n  sequential %+v\n  parallel   %+v",
					seqRes.Counters, parRes.Counters)
			}
			if seqFP != parFP {
				t.Fatalf("final memory images diverge: sequential %#x, parallel %#x", seqFP, parFP)
			}
			if seqRes.Counters != intRes.Counters {
				t.Fatalf("engines diverge:\n  compiled    %+v\n  interpreted %+v",
					seqRes.Counters, intRes.Counters)
			}
			if seqFP != intFP {
				t.Fatalf("engine memory images diverge: compiled %#x, interpreted %#x",
					seqFP, intFP)
			}
		}
	})
}
