package gpu

import (
	"errors"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// The gas-metering determinism contract: the same (config, kernel,
// budget) kills at the same point — same SM, same resource, same
// usage, same cycle — for every worker count and in both execution
// engines, and the partial memory image at the kill is bit-identical.
// These tests are the proof obligation ISSUE 9 names.

// spinStore loops forever, storing to a fresh word each iteration —
// exercises all three budget resources depending on which limit is
// tightest.
func spinStore(t *testing.T) *isa.Program {
	t.Helper()
	p, err := isa.Assemble("spinstore", `
.regs 8
    S2R R0, SR3
    SHL R0, R0, 8
loop:
    STG [R0+0], R0
    IADD R0, R0, 4
    BRA loop
`)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func budgetKernel(t *testing.T, p *isa.Program, b sm.Budget) *sm.Kernel {
	t.Helper()
	return &sm.Kernel{
		Program:     p,
		NumWarps:    8,
		WarpsPerCTA: 2,
		Memory:      mem.NewMemory(),
		Budget:      &b,
	}
}

// killPoint runs the kernel and requires a BudgetError, returning it
// with the memory fingerprint at the kill.
func killPoint(t *testing.T, cfg config.Config, p *isa.Program, b sm.Budget, workers int) (sm.BudgetError, uint64) {
	t.Helper()
	k := budgetKernel(t, p, b)
	_, err := RunWorkers(cfg, k, workers)
	var be *sm.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	return *be, k.Memory.Fingerprint()
}

func TestBudgetKillBitIdentical(t *testing.T) {
	p := spinStore(t)
	budgets := map[string]sm.Budget{
		sm.ResourceCycles:       {MaxCycles: 3000},
		sm.ResourceInstructions: {MaxInstrs: 2000},
		sm.ResourceMemory:       {MaxMemBytes: 4096},
	}
	for resource, b := range budgets {
		t.Run(resource, func(t *testing.T) {
			var ref sm.BudgetError
			var refFP uint64
			first := true
			for _, compiled := range []bool{true, false} {
				for _, workers := range []int{1, 4} {
					cfg := config.Default()
					cfg.Compiled = compiled
					be, fp := killPoint(t, cfg, p, b, workers)
					if be.Resource != resource {
						t.Fatalf("compiled=%v workers=%d: killed on %q, want %q (%+v)",
							compiled, workers, be.Resource, resource, be)
					}
					if first {
						ref, refFP, first = be, fp, false
						continue
					}
					if be != ref {
						t.Errorf("compiled=%v workers=%d: kill point %+v differs from reference %+v",
							compiled, workers, be, ref)
					}
					if fp != refFP {
						t.Errorf("compiled=%v workers=%d: memory fingerprint %x differs from reference %x",
							compiled, workers, fp, refFP)
					}
				}
			}
		})
	}
}

// TestBudgetLargeEnoughIsInvisible: a budget the kernel fits inside
// must not perturb the simulation — counters and memory identical to
// an unbudgeted run.
func TestBudgetLargeEnoughIsInvisible(t *testing.T) {
	prog, err := isa.Assemble("bounded", `
.regs 8
    S2R R0, SR3
    SHL R1, R0, 2
    LDG R2, [R1+0] &wr=sb0
    IADD R2, R2, 7 &req=sb0
    STG [R1+4096], R2
    EXIT
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, compiled := range []bool{true, false} {
		cfg := config.Default()
		cfg.Compiled = compiled
		free := &sm.Kernel{Program: prog, NumWarps: 8, WarpsPerCTA: 2, Memory: mem.NewMemory()}
		resFree, err := Run(cfg, free)
		if err != nil {
			t.Fatalf("unbudgeted: %v", err)
		}
		capped := budgetKernel(t, prog, sm.Budget{MaxCycles: 1 << 30, MaxInstrs: 1 << 30, MaxMemBytes: 1 << 30})
		resCapped, err := Run(cfg, capped)
		if err != nil {
			t.Fatalf("budgeted: %v", err)
		}
		if resFree.Counters != resCapped.Counters {
			t.Errorf("compiled=%v: counters differ with a generous budget:\nfree:   %+v\ncapped: %+v",
				compiled, resFree.Counters, resCapped.Counters)
		}
		if a, b := free.Memory.Fingerprint(), capped.Memory.Fingerprint(); a != b {
			t.Errorf("compiled=%v: memory fingerprints differ: %x vs %x", compiled, a, b)
		}
	}
}

// TestBudgetErrorNamesSM: the wrapped error keeps the deterministic
// "first failing SM in SM order" contract and unwraps via errors.As.
func TestBudgetErrorNamesSM(t *testing.T) {
	cfg := config.Default()
	k := budgetKernel(t, spinStore(t), sm.Budget{MaxCycles: 500})
	_, err := RunWorkers(cfg, k, 4)
	var be *sm.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	if be.SM != 0 {
		t.Errorf("first failing SM should be 0 (both exceed; SM order breaks the tie), got %d", be.SM)
	}
}
