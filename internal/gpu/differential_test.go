package gpu

import (
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/trace"
	"subwarpsim/internal/workload"
)

// The differential-equivalence layer: every workload must produce
// bit-identical results across (a) sequential vs parallel SM simulation
// and (b) must retire the same work with SI on vs off. These tests are
// the proof obligation behind RunWorkers' determinism contract.

// diffWorkload is one named kernel factory; fresh state per call.
type diffWorkload struct {
	name string
	mk   func() (*sm.Kernel, error)
}

// shrink trims an application profile the same way the experiments
// package does for Quick runs: keep per-block occupancy, drop follow-on
// waves and extra bounces, so the differential suite stays fast while
// still exercising divergence, RT traces, and both SMs.
func shrink(p workload.AppProfile) workload.AppProfile {
	resident := 512 / p.RegsPerThread
	if resident > 8 {
		resident = 8
	}
	if resident < 1 {
		resident = 1
	}
	if oneWave := 8 * resident; p.NumWarps > oneWave {
		p.NumWarps = oneWave
	}
	if p.Iterations > 2 {
		p.Iterations = 2
	}
	return p
}

// diffWorkloads returns every application trace (shrunk) plus the
// divergence microbenchmark.
func diffWorkloads(t *testing.T) []diffWorkload {
	t.Helper()
	var ws []diffWorkload
	for _, app := range workload.Apps() {
		p := shrink(app)
		ws = append(ws, diffWorkload{
			name: p.Name,
			mk:   func() (*sm.Kernel, error) { return workload.Megakernel(p) },
		})
	}
	ws = append(ws, diffWorkload{
		name: "microbench4",
		mk:   func() (*sm.Kernel, error) { return workload.Microbench(workload.DefaultMicrobench(4)) },
	})
	return ws
}

// runWith simulates a fresh kernel and returns the result plus the
// final functional memory fingerprint.
func runWith(t *testing.T, w diffWorkload, cfg config.Config, workers int) (Result, uint64) {
	t.Helper()
	k, err := w.mk()
	if err != nil {
		t.Fatalf("%s: build kernel: %v", w.name, err)
	}
	res, err := RunWorkers(cfg, k, workers)
	if err != nil {
		t.Fatalf("%s: RunWorkers(workers=%d): %v", w.name, workers, err)
	}
	return res, k.Memory.Fingerprint()
}

// TestParallelMatchesSequential asserts that for every workload and
// for SI off and on, a parallel run (forced >= 2 workers, independent
// of GOMAXPROCS) is bit-identical to a sequential run: the full
// counter set and the final architectural memory image match exactly.
func TestParallelMatchesSequential(t *testing.T) {
	cfgs := map[string]config.Config{
		"baseline": config.Default(),
		"si":       config.Default().WithSI(true, config.TriggerHalfStalled),
	}
	for _, w := range diffWorkloads(t) {
		for cname, cfg := range cfgs {
			w, cfg := w, cfg
			t.Run(w.name+"/"+cname, func(t *testing.T) {
				t.Parallel()
				seqRes, seqFP := runWith(t, w, cfg, 1)
				parRes, parFP := runWith(t, w, cfg, 4)
				if seqRes.Counters != parRes.Counters {
					t.Errorf("counters diverge:\n  sequential %+v\n  parallel   %+v",
						seqRes.Counters, parRes.Counters)
				}
				if seqRes.Derived() != parRes.Derived() {
					t.Errorf("derived metrics diverge:\n  sequential %+v\n  parallel   %+v",
						seqRes.Derived(), parRes.Derived())
				}
				if seqFP != parFP {
					t.Errorf("final memory images diverge: sequential %#x, parallel %#x",
						seqFP, parFP)
				}
			})
		}
	}
}

// TestSIPreservesArchitecturalState asserts that Subwarp Interleaving
// is a pure scheduling optimisation: with SI on, every workload retires
// the same per-thread instruction count (Counters.ActiveThreads sums
// participating threads over every issue, i.e. thread-granularity
// retired work) and leaves the identical final memory image as the
// baseline. Cycle counts and stall decompositions legitimately differ,
// and so does IssuedInstrs by a small margin: SI regroups which threads
// travel together through reconvergence tails (a barrier can release
// participants while a sibling subwarp is STALLED rather than blocked),
// so the same thread-level work arrives at join blocks in a different
// number of subwarp-granularity pieces.
func TestSIPreservesArchitecturalState(t *testing.T) {
	base := config.Default()
	si := config.Default().WithSI(true, config.TriggerHalfStalled)
	for _, w := range diffWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			bRes, bFP := runWith(t, w, base, 0)
			sRes, sFP := runWith(t, w, si, 0)
			if bRes.Counters.ActiveThreads == 0 {
				t.Fatal("baseline retired no thread-instructions; comparison is vacuous")
			}
			if bRes.Counters.ActiveThreads != sRes.Counters.ActiveThreads {
				t.Errorf("thread-retired instruction counts diverge: baseline %d, SI %d",
					bRes.Counters.ActiveThreads, sRes.Counters.ActiveThreads)
			}
			if bFP != sFP {
				t.Errorf("final memory images diverge: baseline %#x, SI %#x", bFP, sFP)
			}
		})
	}
}

// TestParallelTraceMatchesSequential asserts the exported trace stream
// — the event sequence, drop count, and histogram set — is identical
// whether SMs simulate sequentially or concurrently.
func TestParallelTraceMatchesSequential(t *testing.T) {
	w := diffWorkload{
		name: "microbench4",
		mk:   func() (*sm.Kernel, error) { return workload.Microbench(workload.DefaultMicrobench(4)) },
	}
	traced := func(workers int) *trace.Recorder {
		rec := trace.NewRecorder()
		cfg := config.Default().WithSI(true, config.TriggerHalfStalled)
		cfg.Trace = rec
		k, err := w.mk()
		if err != nil {
			t.Fatalf("build kernel: %v", err)
		}
		if _, err := RunWorkers(cfg, k, workers); err != nil {
			t.Fatalf("RunWorkers(workers=%d): %v", workers, err)
		}
		return rec
	}
	seq := traced(1)
	par := traced(4)

	if seq.Len() == 0 {
		t.Fatal("sequential run recorded no events; trace comparison is vacuous")
	}
	if seq.Len() != par.Len() {
		t.Fatalf("event counts diverge: sequential %d, parallel %d", seq.Len(), par.Len())
	}
	if seq.Dropped() != par.Dropped() {
		t.Errorf("dropped counts diverge: sequential %d, parallel %d", seq.Dropped(), par.Dropped())
	}
	se, pe := seq.Events(), par.Events()
	for i := range se {
		if se[i] != pe[i] {
			t.Fatalf("event %d diverges:\n  sequential %s\n  parallel   %s", i, se[i], pe[i])
		}
	}
	sh, ph := seq.Histograms(), par.Histograms()
	if len(sh) != len(ph) {
		t.Fatalf("histogram counts diverge: sequential %d, parallel %d", len(sh), len(ph))
	}
	for i := range sh {
		if sh[i].String() != ph[i].String() {
			t.Errorf("histogram %d diverges:\n  sequential:\n%s\n  parallel:\n%s",
				i, sh[i], ph[i])
		}
	}
}
