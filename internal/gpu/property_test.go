package gpu

import (
	"math/rand"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/workload"
)

// Property/metamorphic suite: invariants that must hold for every
// kernel, checked over a deterministic generated corpus (seeded PRNG
// driving the FuzzRun byte generator) so they run in ordinary `go
// test` without the fuzz engine.

// propBytes derives a deterministic byte stream for fuzzProgram.
// allowDivergence=false restricts control bytes to the straight-line
// menu entries (ALU, loads, textures, stores: c%12 in 0..5), so the
// generated kernel never splinters a warp.
func propBytes(seed int64, n int, allowDivergence bool) []byte {
	r := rand.New(rand.NewSource(seed))
	data := make([]byte, n)
	for i := range data {
		if allowDivergence {
			data[i] = byte(r.Intn(256))
		} else {
			// Uniform over {v < 246 : v%12 <= 5}; valid for control and
			// operand positions alike.
			data[i] = byte(r.Intn(21)*12 + r.Intn(6))
		}
	}
	return data
}

// propKernel instantiates a fresh kernel for one generated program.
func propKernel(t *testing.T, prog *isa.Program, shape byte) *sm.Kernel {
	t.Helper()
	return &sm.Kernel{
		Program:     prog,
		NumWarps:    int(shape)%12 + 1,
		WarpsPerCTA: int(shape>>4)%4 + 1,
		Memory:      fuzzMemory(),
	}
}

func propRun(t *testing.T, cfg config.Config, prog *isa.Program, shape byte, workers int) Result {
	t.Helper()
	res, err := RunWorkers(cfg, propKernel(t, prog, shape), workers)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// siConfigs are the policy points the properties quantify over.
func siConfigs() map[string]config.Config {
	return map[string]config.Config{
		"SOS half":  config.Default().WithSI(false, config.TriggerHalfStalled),
		"SOS any":   config.Default().WithSI(false, config.TriggerAnyStalled),
		"Both half": config.Default().WithSI(true, config.TriggerHalfStalled),
		"Both all":  config.Default().WithSI(true, config.TriggerAllStalled),
	}
}

// TestPropertySITransparencyWithoutDivergence: on kernels that never
// diverge, Subwarp Interleaving must be a strict no-op — every counter
// of every SI policy run is cycle-exact against the baseline, because
// a warp with a single subwarp gives the subwarp scheduler nothing to
// interleave.
func TestPropertySITransparencyWithoutDivergence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		data := propBytes(seed, 48, false)
		prog, err := fuzzProgram(data[1:])
		if err != nil {
			t.Fatal(err)
		}
		base := propRun(t, config.Default(), prog, data[0], 1)
		if base.Counters.DivergentBranches != 0 {
			t.Fatalf("seed %d: straight-line generator produced %d divergent branches",
				seed, base.Counters.DivergentBranches)
		}
		for name, cfg := range siConfigs() {
			got := propRun(t, cfg, prog, data[0], 1)
			if got.Counters != base.Counters {
				t.Errorf("seed %d: %s is not transparent without divergence:\n  baseline %+v\n  SI       %+v",
					seed, name, base.Counters, got.Counters)
			}
		}
	}
}

// TestPropertyGeneratedProgramsTerminate: every generated program must
// run to completion without tripping the deadlock detector or the cycle
// budget. This guards fuzzProgram's structural guarantee that all
// divergent constructs arm a convergence barrier before branching —
// without it, warp fragments from an unprotected splinter re-arm reused
// barrier indices at skewed program points and cross-block at BSYNC.
func TestPropertyGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 16; seed++ {
		data := propBytes(seed, 48, true)
		prog, err := fuzzProgram(data[1:])
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for name, cfg := range map[string]config.Config{
			"baseline": config.Default(),
			"SI":       config.Default().WithSI(true, config.TriggerHalfStalled),
		} {
			if _, err := RunWorkers(cfg, propKernel(t, prog, data[0]), 1); err != nil {
				t.Errorf("seed %d, %s: %v", seed, name, err)
			}
		}
	}
}

// TestPropertyIdleBucketsConserveIdleCycles: the five idle-attribution
// buckets partition idle time exactly, for every kernel and policy.
func TestPropertyIdleBucketsConserveIdleCycles(t *testing.T) {
	configs := siConfigs()
	configs["baseline"] = config.Default()
	configs["DWS"] = config.Default().WithDWS()
	for seed := int64(0); seed < 6; seed++ {
		data := propBytes(seed, 48, true)
		prog, err := fuzzProgram(data[1:])
		if err != nil {
			t.Fatal(err)
		}
		for name, cfg := range configs {
			c := propRun(t, cfg, prog, data[0], 1).Counters
			sum := c.IdleLoadCycles + c.IdleFetchCycles + c.IdleSwitchCycles +
				c.IdleBarrierCycles + c.IdleNoWarpCycles
			if sum != c.IdleCycles {
				t.Errorf("seed %d, %s: idle buckets sum to %d, IdleCycles = %d (load %d fetch %d switch %d barrier %d nowarp %d)",
					seed, name, sum, c.IdleCycles, c.IdleLoadCycles, c.IdleFetchCycles,
					c.IdleSwitchCycles, c.IdleBarrierCycles, c.IdleNoWarpCycles)
			}
			if c.IssueCycles+c.IdleCycles == 0 {
				t.Errorf("seed %d, %s: empty run", seed, name)
			}
		}
	}
}

// TestPropertyWorkInvariantAcrossScheduling: scheduling policy (SI
// mode, divergent-path order) and simulation parallelism change *when*
// instructions issue, never *what* executes: the lane-weighted work
// (ActiveThreads) and the final memory image are identical everywhere.
func TestPropertyWorkInvariantAcrossScheduling(t *testing.T) {
	type outcome struct {
		name    string
		threads int64
		fp      uint64
	}
	for seed := int64(10); seed < 16; seed++ {
		data := propBytes(seed, 48, true)
		prog, err := fuzzProgram(data[1:])
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []outcome
		record := func(name string, cfg config.Config, workers int) {
			k := propKernel(t, prog, data[0])
			res, err := RunWorkers(cfg, k, workers)
			if err != nil {
				t.Fatal(err)
			}
			outcomes = append(outcomes, outcome{name, res.Counters.ActiveThreads, k.Memory.Fingerprint()})
		}
		record("baseline w1", config.Default(), 1)
		record("baseline w4", config.Default(), 4)
		for name, cfg := range siConfigs() {
			record(name, cfg, 1)
		}
		for _, ord := range []config.SubwarpOrder{
			config.OrderFallthroughFirst, config.OrderLargestFirst, config.OrderRandom,
		} {
			cfg := config.Default().WithSI(true, config.TriggerHalfStalled)
			cfg.Order = ord
			record("order variant", cfg, 1)
		}
		for _, o := range outcomes[1:] {
			if o.threads != outcomes[0].threads {
				t.Errorf("seed %d: %s retired %d thread-instructions, %s retired %d",
					seed, o.name, o.threads, outcomes[0].name, outcomes[0].threads)
			}
			if o.fp != outcomes[0].fp {
				t.Errorf("seed %d: %s final memory %#x differs from %s %#x",
					seed, o.name, o.fp, outcomes[0].name, outcomes[0].fp)
			}
		}
	}
}

// TestPropertySpeedupMonotoneInSwitchLatency: every extra cycle of
// subwarp-switch overhead can only erode SI's benefit. On the
// divergence microbenchmark, SI cycle counts are non-decreasing and
// speedup over the (switch-latency-independent) baseline is
// non-increasing as the switch latency grows.
func TestPropertySpeedupMonotoneInSwitchLatency(t *testing.T) {
	run := func(cfg config.Config) int64 {
		k, err := workload.Microbench(workload.DefaultMicrobench(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWorkers(cfg, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.Counters.Cycles
	}
	base := run(config.Default())
	prev := int64(0)
	prevLat := -1
	for _, lat := range []int{0, 1, 2, 4, 8, 16, 32} {
		cfg := config.Default().WithSI(true, config.TriggerHalfStalled)
		cfg.SI.SwitchLatency = lat
		cycles := run(cfg)
		if prevLat >= 0 && cycles < prev {
			t.Errorf("switch latency %d -> %d cycles, but latency %d -> %d: SI got faster with more overhead",
				lat, cycles, prevLat, prev)
		}
		prev, prevLat = cycles, lat
	}
	if prev <= 0 || base <= 0 {
		t.Fatal("degenerate run")
	}
}
