package gpu

import (
	"strings"
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/isa"
	"subwarpsim/internal/mem"
	"subwarpsim/internal/sm"
)

// storeTID builds a kernel where each thread stores its global ID.
func storeTID() *sm.Kernel {
	b := isa.NewBuilder("storetid")
	b.S2R(1, isa.SRThreadID)
	b.Shl(2, 1, 2)
	b.Movi(3, 0x4000)
	b.Iadd(2, 2, 3)
	b.Stg(2, 0, 1)
	return &sm.Kernel{
		Program:     b.Exit().MustBuild(),
		NumWarps:    20,
		WarpsPerCTA: 2,
		Memory:      mem.NewMemory(),
	}
}

func TestRunDistributesAllWarps(t *testing.T) {
	k := storeTID()
	res, err := Run(config.Default(), k)
	if err != nil {
		t.Fatal(err)
	}
	// All 20 warps x 32 threads stored their global IDs.
	for tid := 0; tid < 20*32; tid++ {
		if got := k.Memory.Load(uint64(0x4000 + tid*4)); got != uint32(tid) {
			t.Fatalf("tid %d stored %d", tid, got)
		}
	}
	if res.Counters.IssuedInstrs != 20*6 {
		t.Errorf("IssuedInstrs = %d, want %d", res.Counters.IssuedInstrs, 20*6)
	}
	if res.Blocks != 8 {
		t.Errorf("Blocks = %d, want 8 (2 SMs x 4)", res.Blocks)
	}
}

func TestRunValidatesConfig(t *testing.T) {
	bad := config.Default()
	bad.NumSMs = 0
	if _, err := Run(bad, storeTID()); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRunValidatesKernel(t *testing.T) {
	k := storeTID()
	k.NumWarps = 0
	if _, err := Run(config.Default(), k); err == nil {
		t.Fatal("invalid kernel accepted")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(config.Default(), storeTID())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(config.Default(), storeTID())
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Errorf("nondeterministic counters:\n%+v\n%+v", a.Counters, b.Counters)
	}
}

func TestDerived(t *testing.T) {
	res, err := Run(config.Default(), storeTID())
	if err != nil {
		t.Fatal(err)
	}
	d := res.Derived()
	if d.Cycles != res.Counters.Cycles {
		t.Error("Derived cycles mismatch")
	}
	if d.IPC <= 0 {
		t.Error("IPC should be positive")
	}
}

func TestCompare(t *testing.T) {
	base := config.Default()
	si := base.WithSI(true, config.TriggerHalfStalled)
	rb, rt, sp, err := Compare(base, si, storeTID)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Counters.Cycles == 0 || rt.Counters.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	// A convergent kernel: SI neither helps nor hurts materially.
	if sp < -0.05 || sp > 0.05 {
		t.Errorf("speedup on convergent kernel = %.3f, want ~0", sp)
	}
}

func TestCompareErrorPropagates(t *testing.T) {
	bad := func() *sm.Kernel {
		k := storeTID()
		k.Program = nil
		return k
	}
	if _, _, _, err := Compare(config.Default(), config.Default(), bad); err == nil {
		t.Fatal("expected error")
	}
}

func TestRunErrorNamesSM(t *testing.T) {
	// An infinite loop exhausts the cycle budget and the error should
	// identify which SM failed.
	b := isa.NewBuilder("spin")
	b.Label("top")
	b.Movi(1, 1)
	b.Bra("top")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	k := &sm.Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: mem.NewMemory()}
	old := MaxCycles
	MaxCycles = 100_000
	defer func() { MaxCycles = old }()
	_, err = Run(config.Default(), k)
	if err == nil {
		t.Fatal("expected cycle-budget error")
	}
	if !strings.Contains(err.Error(), "SM") {
		t.Errorf("error should identify the SM: %v", err)
	}
}

func TestSingleWarpSmallerThanSMCount(t *testing.T) {
	k := storeTID()
	k.NumWarps = 1
	res, err := Run(config.Default(), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.IssuedInstrs != 6 {
		t.Errorf("IssuedInstrs = %d, want 6", res.Counters.IssuedInstrs)
	}
}
