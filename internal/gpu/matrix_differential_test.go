package gpu

import (
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/workload"
)

// The cross-matrix differential layer: every workload-family x
// scheduler-policy x SI cell must be bit-identical across worker
// counts and across the compiled and interpreted engines. This is the
// proof obligation behind adding scheduler policies at all — a policy
// that broke greedy stickiness or drew on time-dependent state would
// show up here as a compiled-vs-interpreted or w1-vs-w4 divergence.

// smallGenWorkloads returns the three generator families with trip
// counts shrunk for test speed but occupancy kept at the default 64
// warps (8 per processing block): below full occupancy the GTO and
// WaSP fallback orders collapse toward LRR's, and a differential test
// over identical schedules would be vacuous.
func smallGenWorkloads(t *testing.T) []diffWorkload {
	t.Helper()
	gemm := workload.DefaultGEMM()
	gemm.TilesK = 4
	bfs := workload.DefaultBFS()
	bfs.Levels = 1
	tex := workload.DefaultTexture()
	tex.Iterations = 2
	return []diffWorkload{
		{name: "gemm", mk: func() (*sm.Kernel, error) { return workload.GEMM(gemm) }},
		{name: "bfs", mk: func() (*sm.Kernel, error) { return workload.BFS(bfs) }},
		{name: "texture", mk: func() (*sm.Kernel, error) { return workload.Texture(tex) }},
	}
}

// schedPolicies enumerates every registered scheduler policy.
func schedPolicies() []config.SchedPolicy {
	pols := make([]config.SchedPolicy, config.NumSchedPolicies)
	for i := range pols {
		pols[i] = config.SchedPolicy(i)
	}
	return pols
}

// TestMatrixDifferential runs every family x policy x {baseline, SI}
// cell three ways — compiled sequential, compiled with 4 workers, and
// interpreted sequential — and requires bit-identical counters,
// derived metrics, and final memory images.
func TestMatrixDifferential(t *testing.T) {
	for _, w := range smallGenWorkloads(t) {
		for _, pol := range schedPolicies() {
			for _, mode := range []string{"baseline", "si"} {
				w, pol, mode := w, pol, mode
				t.Run(w.name+"/"+pol.String()+"/"+mode, func(t *testing.T) {
					t.Parallel()
					cfg := config.Default()
					cfg.SchedPolicy = pol
					if mode == "si" {
						cfg = cfg.WithSI(true, config.TriggerHalfStalled)
					}
					seqRes, seqFP := runWith(t, w, cfg, 1)
					parRes, parFP := runWith(t, w, cfg, 4)
					intRes, intFP := runWith(t, w, interpreted(cfg), 1)
					if seqRes.Counters != parRes.Counters {
						t.Errorf("worker counts diverge:\n  w1 %+v\n  w4 %+v",
							seqRes.Counters, parRes.Counters)
					}
					if seqFP != parFP {
						t.Errorf("worker-count memory images diverge: w1 %#x, w4 %#x", seqFP, parFP)
					}
					if seqRes.Counters != intRes.Counters {
						t.Errorf("engines diverge:\n  compiled    %+v\n  interpreted %+v",
							seqRes.Counters, intRes.Counters)
					}
					if seqRes.Derived() != intRes.Derived() {
						t.Errorf("derived metrics diverge:\n  compiled    %+v\n  interpreted %+v",
							seqRes.Derived(), intRes.Derived())
					}
					if seqFP != intFP {
						t.Errorf("engine memory images diverge: compiled %#x, interpreted %#x",
							seqFP, intFP)
					}
				})
			}
		}
	}
}

// TestPropertyGEMMSITransparency: the tiled-GEMM family never
// diverges, so under every scheduler policy each SI configuration must
// be cycle-exact against that policy's baseline — the full counter
// set, not just cycles.
func TestPropertyGEMMSITransparency(t *testing.T) {
	p := workload.DefaultGEMM()
	p.TilesK = 4
	w := diffWorkload{
		name: "gemm",
		mk:   func() (*sm.Kernel, error) { return workload.GEMM(p) },
	}
	for _, pol := range schedPolicies() {
		base := config.Default()
		base.SchedPolicy = pol
		bRes, _ := runWith(t, w, base, 0)
		if bRes.Counters.DivergentBranches != 0 {
			t.Fatalf("%s: GEMM diverged %d times; transparency check is mis-targeted",
				pol, bRes.Counters.DivergentBranches)
		}
		for name, cfg := range siConfigs() {
			cfg.SchedPolicy = pol
			got, _ := runWith(t, w, cfg, 0)
			if got.Counters != bRes.Counters {
				t.Errorf("%s/%s is not transparent on divergence-free GEMM:\n  baseline %+v\n  SI       %+v",
					pol, name, bRes.Counters, got.Counters)
			}
		}
	}
}

// TestPropertyGeneratorInvariants quantifies two invariants over every
// generator family, scheduler policy, and SI mode: the five
// idle-attribution buckets partition IdleCycles exactly, and the
// lane-weighted retired work plus the final memory image never depend
// on the schedule (policies and SI may only reorder execution, not
// change what executes).
func TestPropertyGeneratorInvariants(t *testing.T) {
	for _, w := range smallGenWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			t.Parallel()
			type outcome struct {
				name    string
				threads int64
				fp      uint64
			}
			var outcomes []outcome
			for _, pol := range schedPolicies() {
				for _, mode := range []string{"baseline", "si"} {
					cfg := config.Default()
					cfg.SchedPolicy = pol
					if mode == "si" {
						cfg = cfg.WithSI(true, config.TriggerHalfStalled)
					}
					res, fp := runWith(t, w, cfg, 0)
					c := res.Counters
					sum := c.IdleLoadCycles + c.IdleFetchCycles + c.IdleSwitchCycles +
						c.IdleBarrierCycles + c.IdleNoWarpCycles
					if sum != c.IdleCycles {
						t.Errorf("%s/%s: idle buckets sum to %d, IdleCycles = %d",
							pol, mode, sum, c.IdleCycles)
					}
					if c.ActiveThreads == 0 {
						t.Fatalf("%s/%s: retired no thread-instructions", pol, mode)
					}
					outcomes = append(outcomes, outcome{pol.String() + "/" + mode, c.ActiveThreads, fp})
				}
			}
			for _, o := range outcomes[1:] {
				if o.threads != outcomes[0].threads {
					t.Errorf("%s retired %d thread-instructions, %s retired %d",
						o.name, o.threads, outcomes[0].name, outcomes[0].threads)
				}
				if o.fp != outcomes[0].fp {
					t.Errorf("%s final memory %#x differs from %s %#x",
						o.name, o.fp, outcomes[0].name, outcomes[0].fp)
				}
			}
		})
	}
}
