// Package gpu assembles streaming multiprocessors into a whole device
// and launches kernels across them, mirroring the paper's simulated
// configuration of Table I (2 SMs of 4 processing blocks each).
package gpu

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"subwarpsim/internal/config"
	"subwarpsim/internal/faults"
	"subwarpsim/internal/obs"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
	"subwarpsim/internal/trace"
)

// PanicError reports a panic recovered inside one SM's simulation
// goroutine. A panicking SM must never take down the process (the
// serving layer runs many unrelated jobs on the same worker pool), so
// RunContext converts it into an error carrying the panic value and
// stack; callers detect it with errors.As and can quarantine the
// offending job.
type PanicError struct {
	// SM is the index of the SM whose simulation panicked.
	SM int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("sm %d panicked: %v", e.SM, e.Value)
}

// MaxCycles bounds a single simulation; kernels that exceed it are
// reported as errors rather than hanging the harness. It is a variable
// so tests can tighten it.
var MaxCycles = int64(200_000_000)

// Result is the outcome of one kernel launch.
type Result struct {
	// Config the launch ran under.
	Config config.Config
	// Counters merged across all SMs and processing blocks.
	Counters stats.Counters
	// Blocks is the total processing block count, the normalization
	// denominator for per-cycle fractions.
	Blocks int
}

// Derived computes the normalized metrics for this result.
func (r Result) Derived() stats.Derived {
	return r.Counters.Derive(r.Blocks)
}

// Run launches the kernel on a freshly constructed GPU with the given
// configuration and simulates to completion, using up to GOMAXPROCS
// worker goroutines. It is shorthand for RunWorkers(cfg, kernel, 0).
func Run(cfg config.Config, kernel *sm.Kernel) (Result, error) {
	return RunWorkers(cfg, kernel, 0)
}

// RunWorkers is RunContext with a background context (no cancellation
// or deadline).
func RunWorkers(cfg config.Config, kernel *sm.Kernel, workers int) (Result, error) {
	return RunContext(context.Background(), cfg, kernel, workers)
}

// RunContext launches the kernel on a freshly constructed GPU and
// simulates every SM to completion on a bounded pool of workers goroutines
// (0 means GOMAXPROCS; 1 simulates SMs one after another).
//
// The context cancels the run: every SM observes ctx and returns
// promptly (within a few thousand simulated cycles) once it is
// cancelled or its deadline passes, and the returned error wraps
// ctx.Err() so callers can errors.Is it against context.Canceled or
// context.DeadlineExceeded. A cancelled run's partial effects follow
// the same deterministic epilogue as any failing run.
//
// Warps distribute round-robin across SMs, and within an SM across its
// processing blocks; warps beyond the register-limited occupancy run as
// follow-on waves. SMs only share read-only launch state (program, BVH,
// ray generator), so each simulates independently in its own goroutine:
// every SM executes loads and stores against a private copy-on-write
// view of the functional memory image (mem.View), and traces into a
// private shard recorder (trace.Recorder.Child) when cfg.Trace is set.
// After all SMs finish, views publish, counters merge, and trace shards
// absorb in ascending SM order, so counters, derived metrics, the final
// memory image, and exported trace streams are bit-identical for every
// worker count and goroutine interleaving. A consequence of the
// sharded image is that warps on different SMs never observe each
// other's stores mid-run — like CUDA kernels without atomics, cross-SM
// communication within a launch is undefined.
func RunContext(ctx context.Context, cfg config.Config, kernel *sm.Kernel, workers int) (Result, error) {
	res := Result{Config: cfg, Blocks: cfg.NumSMs * cfg.BlocksPerSM}
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	if err := kernel.Validate(); err != nil {
		return res, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	parent := cfg.Trace
	shards := make([]*trace.Recorder, cfg.NumSMs)
	sms := make([]*sm.SM, cfg.NumSMs)
	for i := range sms {
		smCfg := cfg
		if parent != nil {
			shards[i] = parent.Child()
			smCfg.Trace = shards[i]
		}
		s, err := sm.NewSM(i, smCfg, kernel)
		if err != nil {
			return res, err
		}
		s.DeferMemoryPublish()
		sms[i] = s
	}

	perSMSeq := make([]int, cfg.NumSMs)
	for w := 0; w < kernel.NumWarps; w++ {
		smIdx := w % cfg.NumSMs
		ctaID := w / kernel.WarpsPerCTA
		warpInCTA := w % kernel.WarpsPerCTA
		sms[smIdx].Admit(perSMSeq[smIdx], w, ctaID, warpInCTA)
		perSMSeq[smIdx]++
	}

	maxCycles := MaxCycles
	counters := make([]stats.Counters, len(sms))
	errs := make([]error, len(sms))
	// runSM simulates one SM, converting a panic — whether injected
	// via cfg.Faults or a genuine model bug — into a *PanicError so a
	// single bad job can never kill the process (or, on the parallel
	// path, an unrecoverable worker goroutine).
	// reqTrace is the request-scoped wall-clock trace, when the launch
	// came in through a traced serving path; nil (the common CLI case)
	// records nothing.
	reqTrace := obs.TraceFrom(ctx)
	runSM := func(i int, s *sm.SM) (c stats.Counters, err error) {
		defer reqTrace.StartSpan(fmt.Sprintf("sm %d", i))()
		defer func() {
			if v := recover(); v != nil {
				err = &PanicError{SM: i, Value: v, Stack: debug.Stack()}
			}
		}()
		if ierr := cfg.Faults.FireCtx(ctx, faults.SiteSMRun); ierr != nil {
			return c, fmt.Errorf("sm %d: %w", i, ierr)
		}
		return s.RunContext(ctx, maxCycles)
	}
	if workers == 1 || len(sms) == 1 {
		for i, s := range sms {
			counters[i], errs[i] = runSM(i, s)
			if errs[i] != nil {
				break // later SMs stay unsimulated, as before parallelism
			}
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, s := range sms {
			wg.Add(1)
			go func(i int, s *sm.SM) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				counters[i], errs[i] = runSM(i, s)
			}(i, s)
		}
		wg.Wait()
	}

	// Deterministic epilogue: merge, publish, and absorb strictly in SM
	// order. On error, only state up to and including the first failing
	// SM is kept — exactly what a sequential run would have produced.
	for i, s := range sms {
		s.PublishMemory()
		if parent != nil {
			parent.Absorb(shards[i])
		}
		if errs[i] != nil {
			// The failing SM's partial stores and trace are kept (it did
			// simulate up to the failure), its counters are not.
			return res, fmt.Errorf("gpu: SM %d: %w", i, errs[i])
		}
		res.Counters.Merge(counters[i])
	}
	return res, nil
}

// Compare runs the kernel under a baseline and a test configuration on
// identical fresh state and returns both results with the speedup of
// test over baseline.
func Compare(base, test config.Config, mkKernel func() *sm.Kernel) (Result, Result, float64, error) {
	rb, err := Run(base, mkKernel())
	if err != nil {
		return rb, Result{}, 0, err
	}
	rt, err := Run(test, mkKernel())
	if err != nil {
		return rb, rt, 0, err
	}
	return rb, rt, stats.Speedup(rb.Counters, rt.Counters), nil
}
