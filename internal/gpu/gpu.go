// Package gpu assembles streaming multiprocessors into a whole device
// and launches kernels across them, mirroring the paper's simulated
// configuration of Table I (2 SMs of 4 processing blocks each).
package gpu

import (
	"fmt"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/stats"
)

// MaxCycles bounds a single simulation; kernels that exceed it are
// reported as errors rather than hanging the harness. It is a variable
// so tests can tighten it.
var MaxCycles = int64(200_000_000)

// Result is the outcome of one kernel launch.
type Result struct {
	// Config the launch ran under.
	Config config.Config
	// Counters merged across all SMs and processing blocks.
	Counters stats.Counters
	// Blocks is the total processing block count, the normalization
	// denominator for per-cycle fractions.
	Blocks int
}

// Derived computes the normalized metrics for this result.
func (r Result) Derived() stats.Derived {
	return r.Counters.Derive(r.Blocks)
}

// Run launches the kernel on a freshly constructed GPU with the given
// configuration and simulates to completion.
//
// Warps distribute round-robin across SMs, and within an SM across its
// processing blocks; warps beyond the register-limited occupancy run as
// follow-on waves. SMs simulate sequentially (they share only the
// functional memory image), keeping runs deterministic.
func Run(cfg config.Config, kernel *sm.Kernel) (Result, error) {
	res := Result{Config: cfg, Blocks: cfg.NumSMs * cfg.BlocksPerSM}
	if err := cfg.Validate(); err != nil {
		return res, err
	}
	if err := kernel.Validate(); err != nil {
		return res, err
	}

	sms := make([]*sm.SM, cfg.NumSMs)
	for i := range sms {
		s, err := sm.NewSM(i, cfg, kernel)
		if err != nil {
			return res, err
		}
		sms[i] = s
	}

	perSMSeq := make([]int, cfg.NumSMs)
	for w := 0; w < kernel.NumWarps; w++ {
		smIdx := w % cfg.NumSMs
		ctaID := w / kernel.WarpsPerCTA
		warpInCTA := w % kernel.WarpsPerCTA
		sms[smIdx].Admit(perSMSeq[smIdx], w, ctaID, warpInCTA)
		perSMSeq[smIdx]++
	}

	for i, s := range sms {
		c, err := s.Run(MaxCycles)
		if err != nil {
			return res, fmt.Errorf("gpu: SM %d: %w", i, err)
		}
		res.Counters.Merge(c)
	}
	return res, nil
}

// Compare runs the kernel under a baseline and a test configuration on
// identical fresh state and returns both results with the speedup of
// test over baseline.
func Compare(base, test config.Config, mkKernel func() *sm.Kernel) (Result, Result, float64, error) {
	rb, err := Run(base, mkKernel())
	if err != nil {
		return rb, Result{}, 0, err
	}
	rt, err := Run(test, mkKernel())
	if err != nil {
		return rb, rt, 0, err
	}
	return rb, rt, stats.Speedup(rb.Counters, rt.Counters), nil
}
