package gpu

import (
	"testing"

	"subwarpsim/internal/config"
	"subwarpsim/internal/sm"
	"subwarpsim/internal/trace"
	"subwarpsim/internal/workload"
)

// The two-mode differential layer: the compiled engine (pre-decoded
// operation stream + basic-block fast-forward) must be bit-identical
// to the per-cycle interpreter on every workload, configuration, and
// observable — counters, derived metrics, final memory images, and
// trace streams. These tests are the proof obligation behind
// Config.Compiled being excluded from the result-cache key.

// engineConfigs are the policy points the two-mode comparison quantifies
// over: the baseline, both SI modes (yield exercises the FFLen vs
// FFLenYieldInert table split), DWS (eager selection stresses the
// ffStable gate), and randomized activation order (per-divergence RNG
// draws must happen on identical cycles in both modes).
func engineConfigs() map[string]config.Config {
	rnd := config.Default().WithSI(true, config.TriggerHalfStalled)
	rnd.Order = config.OrderRandom
	return map[string]config.Config{
		"baseline": config.Default(),
		"sos":      config.Default().WithSI(false, config.TriggerAnyStalled),
		"both":     config.Default().WithSI(true, config.TriggerHalfStalled),
		"dws":      config.Default().WithDWS(),
		"random":   rnd,
	}
}

// interpreted returns the configuration with the compiled engine
// disabled (the -compile=off escape hatch).
func interpreted(cfg config.Config) config.Config {
	cfg.Compiled = false
	return cfg
}

// TestCompiledMatchesInterpreted runs every differential workload under
// every engine configuration in both execution modes and requires
// bit-identical counters, derived metrics, and final memory images.
func TestCompiledMatchesInterpreted(t *testing.T) {
	for _, w := range diffWorkloads(t) {
		for cname, cfg := range engineConfigs() {
			w, cfg := w, cfg
			t.Run(w.name+"/"+cname, func(t *testing.T) {
				t.Parallel()
				cfg.Compiled = true
				cRes, cFP := runWith(t, w, cfg, 0)
				iRes, iFP := runWith(t, w, interpreted(cfg), 0)
				if cRes.Counters != iRes.Counters {
					t.Errorf("counters diverge:\n  compiled    %+v\n  interpreted %+v",
						cRes.Counters, iRes.Counters)
				}
				if cRes.Derived() != iRes.Derived() {
					t.Errorf("derived metrics diverge:\n  compiled    %+v\n  interpreted %+v",
						cRes.Derived(), iRes.Derived())
				}
				if cFP != iFP {
					t.Errorf("final memory images diverge: compiled %#x, interpreted %#x",
						cFP, iFP)
				}
			})
		}
	}
}

// TestCompiledMatchesInterpretedProperty extends the comparison to the
// randomized divergent corpus (the deterministic property-test
// generator behind FuzzRun): generated kernels full of BSSY/BSYNC
// regions, lane-divergent loops, BRX dispatches, and scoreboarded
// loads must retire identically in both modes under every SI policy.
func TestCompiledMatchesInterpretedProperty(t *testing.T) {
	cfgs := siConfigs()
	cfgs["baseline"] = config.Default()
	cfgs["dws"] = config.Default().WithDWS()
	for seed := int64(0); seed < 6; seed++ {
		data := propBytes(seed, 48, true)
		prog, err := fuzzProgram(data[1:])
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for cname, cfg := range cfgs {
			cfg.Compiled = true
			cRes := propRun(t, cfg, prog, data[0], 0)
			iRes := propRun(t, interpreted(cfg), prog, data[0], 0)
			if cRes.Counters != iRes.Counters {
				t.Errorf("seed %d %s: counters diverge:\n  compiled    %+v\n  interpreted %+v",
					seed, cname, cRes.Counters, iRes.Counters)
			}
		}
	}
}

// TestCompiledTraceMatchesInterpreted asserts the exported trace
// stream — event sequence, drop count, histogram set — is identical in
// both modes. With a recorder attached the compiled engine disables
// fast-forward and steps cycle by cycle, so every KindIssue/KindStall
// event is emitted at exactly the interpreter's cycle.
func TestCompiledTraceMatchesInterpreted(t *testing.T) {
	mk := func() (*sm.Kernel, error) { return workload.Microbench(workload.DefaultMicrobench(4)) }
	traced := func(compiled bool) *trace.Recorder {
		rec := trace.NewRecorder()
		cfg := config.Default().WithSI(true, config.TriggerHalfStalled)
		cfg.Compiled = compiled
		cfg.Trace = rec
		k, err := mk()
		if err != nil {
			t.Fatalf("build kernel: %v", err)
		}
		if _, err := RunWorkers(cfg, k, 0); err != nil {
			t.Fatalf("RunWorkers(compiled=%v): %v", compiled, err)
		}
		return rec
	}
	comp := traced(true)
	interp := traced(false)

	if comp.Len() == 0 {
		t.Fatal("compiled run recorded no events; trace comparison is vacuous")
	}
	if comp.Len() != interp.Len() {
		t.Fatalf("event counts diverge: compiled %d, interpreted %d", comp.Len(), interp.Len())
	}
	if comp.Dropped() != interp.Dropped() {
		t.Errorf("dropped counts diverge: compiled %d, interpreted %d",
			comp.Dropped(), interp.Dropped())
	}
	ce, ie := comp.Events(), interp.Events()
	for i := range ce {
		if ce[i] != ie[i] {
			t.Fatalf("event %d diverges:\n  compiled    %s\n  interpreted %s", i, ce[i], ie[i])
		}
	}
	ch, ih := comp.Histograms(), interp.Histograms()
	if len(ch) != len(ih) {
		t.Fatalf("histogram counts diverge: compiled %d, interpreted %d", len(ch), len(ih))
	}
	for i := range ch {
		if ch[i].String() != ih[i].String() {
			t.Errorf("histogram %d diverges:\n  compiled:\n%s\n  interpreted:\n%s",
				i, ch[i], ih[i])
		}
	}
}

// TestCompiledOncePerRun asserts the compile pass is cached at the
// Program: a whole-device run across multiple SMs (each SM constructs
// its own execution state from the same kernel) lowers the program
// exactly once.
func TestCompiledOncePerRun(t *testing.T) {
	k, err := workload.Microbench(workload.DefaultMicrobench(4))
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.Default() // 2 SMs, compiled by default
	if got := k.Program.CompileCount(); got != 0 {
		t.Fatalf("program pre-compiled: CompileCount = %d before the run", got)
	}
	if _, err := RunWorkers(cfg, k, 0); err != nil {
		t.Fatal(err)
	}
	if got := k.Program.CompileCount(); got != 1 {
		t.Errorf("CompileCount after a %d-SM run = %d, want 1", cfg.NumSMs, got)
	}
}
