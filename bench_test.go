package subwarpsim

// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment and
// reports its headline metric alongside wall-clock cost:
//
//	go test -bench=. -benchmem
//
// Benchmarks use the experiments' Quick mode (fewer waves/bounces) so a
// full -bench=. pass stays in the tens of seconds; cmd/experiments
// regenerates the full-size artifacts.

import (
	"testing"

	"subwarpsim/internal/experiments"
)

func benchExperiment(b *testing.B, id string, metrics map[string]string) {
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	opts := experiments.Options{Quick: true}
	for i := 0; i < b.N; i++ {
		r, err := e.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		for key, unit := range metrics {
			b.ReportMetric(r.Values[key]*100, unit)
		}
	}
}

// BenchmarkFig3 regenerates the baseline stall characterisation.
func BenchmarkFig3(b *testing.B) {
	benchExperiment(b, "fig3", map[string]string{
		"mean/total":     "mean-stall-%",
		"mean/divergent": "mean-divstall-%",
	})
}

// BenchmarkTable3 regenerates the microbenchmark divergence sweep.
func BenchmarkTable3(b *testing.B) {
	benchExperiment(b, "table3", map[string]string{
		"speedup_16": "speedup16x-x100",
		"speedup_32": "speedup32x-x100",
	})
}

// BenchmarkFig12a regenerates the per-application policy sweep.
func BenchmarkFig12a(b *testing.B) {
	benchExperiment(b, "fig12a", map[string]string{
		"mean/Both,N>=0.5": "mean-speedup-%",
		"BFV2/Both,N>=0.5": "bfv2-speedup-%",
	})
}

// BenchmarkFig12b regenerates the stall-reduction analysis.
func BenchmarkFig12b(b *testing.B) {
	benchExperiment(b, "fig12b", map[string]string{
		"mean/divergent": "divstall-reduction-%",
		"mean/total":     "stall-reduction-%",
	})
}

// BenchmarkFig13 regenerates the L1 miss latency sensitivity.
func BenchmarkFig13(b *testing.B) {
	benchExperiment(b, "fig13", map[string]string{
		"lat300/BestOf": "best300-%",
		"lat900/BestOf": "best900-%",
	})
}

// BenchmarkFig14 regenerates the warp-slot sensitivity.
func BenchmarkFig14(b *testing.B) {
	benchExperiment(b, "fig14", map[string]string{
		"mean/warps8":  "warps8-%",
		"mean/warps32": "warps32-%",
	})
}

// BenchmarkFig15 regenerates the TST-size sensitivity.
func BenchmarkFig15(b *testing.B) {
	benchExperiment(b, "fig15", map[string]string{
		"mean/tst2":  "tst2-%",
		"mean/tst32": "unlimited-%",
	})
}

// BenchmarkICacheSizing regenerates the Section V-C4 study.
func BenchmarkICacheSizing(b *testing.B) {
	benchExperiment(b, "icache", map[string]string{
		"mean/big":   "big-caches-%",
		"mean/small": "small-caches-%",
	})
}

// BenchmarkOrderAblation regenerates the activation-order ablation.
func BenchmarkOrderAblation(b *testing.B) {
	benchExperiment(b, "order", map[string]string{
		"taken-first": "taken-first-%",
		"random":      "random-%",
	})
}

// BenchmarkYieldAblation regenerates the yield-threshold ablation.
func BenchmarkYieldAblation(b *testing.B) {
	benchExperiment(b, "yield", map[string]string{
		"threshold1": "threshold1-%",
		"threshold8": "threshold8-%",
	})
}

// BenchmarkSimulationRate measures raw simulator throughput: simulated
// cycles per wall second on one application baseline. Kernel assembly
// and BVH construction happen with the timer stopped, so the reported
// rate covers simulation alone (benchjson derives
// sim_cycles_per_wall_second from the sim-cycles/op metric and ns/op).
func BenchmarkSimulationRate(b *testing.B) {
	app, err := Application("Ctrl")
	if err != nil {
		b.Fatal(err)
	}
	app.NumWarps = 32
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k, err := BuildMegakernel(app)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := Run(DefaultConfig(), k)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Counters.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

// benchEngine times one execution engine on the paper's divergence
// microbenchmark scaled to 256 warps: a scheduler-bound workload with
// no RT-core functional work, so what is measured is instruction
// dispatch and scheduling — exactly what the compiled engine and
// basic-block fast-forward accelerate. Kernel assembly happens with
// the timer stopped; program lowering (Program.Compiled) is left
// inside the timed region because a real run pays it too.
func benchEngine(b *testing.B, compiled bool) {
	p := DefaultMicrobenchmark(4)
	p.NumWarps = 256
	cfg := DefaultConfig()
	cfg.Compiled = compiled
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k, err := BuildMicrobenchmark(p)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := Run(cfg, k)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Counters.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

// BenchmarkGPURunCompiled times the pre-decoded engine with basic-block
// fast-forward (the Config.Compiled default).
func BenchmarkGPURunCompiled(b *testing.B) { benchEngine(b, true) }

// BenchmarkGPURunInterpreted times the per-cycle decoding interpreter
// (the -compile=off escape hatch) on the same workload; both engines
// retire identical cycle counts, so the sim-cycles/op metrics match and
// only wall time differs.
func BenchmarkGPURunInterpreted(b *testing.B) { benchEngine(b, false) }

// benchGenerator times one synthetic workload family end to end at its
// default full-occupancy size. Kernel construction happens with the
// timer stopped so the reported rate covers simulation alone; the
// sim-cycles/op metric lets benchjson derive throughput per family
// (irregular BFS simulates slower per cycle than divergence-free GEMM).
func benchGenerator(b *testing.B, name string) {
	var cycles int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		k, err := BuildWorkload(name)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := Run(DefaultConfig(), k)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Counters.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "sim-cycles/op")
}

// BenchmarkGPURunGEMM times the divergence-free tiled-GEMM family: the
// compute-regular end of the workload spectrum, where basic-block
// fast-forward sees its longest straight-line windows.
func BenchmarkGPURunGEMM(b *testing.B) { benchGenerator(b, "gemm") }

// BenchmarkGPURunBFS times the irregular frontier-traversal family: the
// divergence-heavy SI stress case, dominated by data-dependent branch
// splits and reconvergence work.
func BenchmarkGPURunBFS(b *testing.B) { benchGenerator(b, "bfs") }

// BenchmarkGPURunTexture times the mixed-latency graphics family:
// texture-path loads interleaved with ALU work.
func BenchmarkGPURunTexture(b *testing.B) { benchGenerator(b, "texture") }

// benchGPURun measures one whole-device simulation at a fixed worker
// count, on an 8-SM device so SM-level parallelism has work to spread.
func benchGPURun(b *testing.B, workers int) {
	app, err := Application("Ctrl")
	if err != nil {
		b.Fatal(err)
	}
	app.NumWarps = 256
	cfg := DefaultConfig()
	cfg.NumSMs = 8
	for i := 0; i < b.N; i++ {
		k, err := BuildMegakernel(app)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunWorkers(cfg, k, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPURunSequential simulates all SMs on one goroutine; the
// baseline BenchmarkGPURunParallel is compared against.
func BenchmarkGPURunSequential(b *testing.B) { benchGPURun(b, 1) }

// BenchmarkGPURunParallel simulates one SM per goroutine, up to
// GOMAXPROCS at a time. Results are bit-identical to the sequential
// run; only wall-clock changes (no speedup on a single-core host).
func BenchmarkGPURunParallel(b *testing.B) { benchGPURun(b, 0) }

// benchSweep measures a whole experiment sweep at a fixed
// simulation-level worker count.
func benchSweep(b *testing.B, workers int) {
	e, ok := experiments.ByID("fig12a")
	if !ok {
		b.Fatal("unknown experiment fig12a")
	}
	opts := experiments.Options{Quick: true, Workers: workers}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentsSweepSequential runs the Fig. 12a policy sweep
// one simulation at a time.
func BenchmarkExperimentsSweepSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkExperimentsSweepParallel runs the same sweep on the bounded
// worker pool (GOMAXPROCS simulations in flight).
func BenchmarkExperimentsSweepParallel(b *testing.B) { benchSweep(b, 0) }

// BenchmarkDWSComparison regenerates the SI-vs-DWS extension study.
func BenchmarkDWSComparison(b *testing.B) {
	benchExperiment(b, "dws", map[string]string{
		"mean/dws": "dws-mean-%",
		"mean/si":  "si-mean-%",
	})
}
