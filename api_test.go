package subwarpsim

import (
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.NumSMs != 2 || cfg.BlocksPerSM != 4 || cfg.WarpSlotsPerBlock != 8 {
		t.Errorf("Table I geometry wrong: %+v", cfg)
	}
	if cfg.L1MissLatency != 600 || cfg.SI.SwitchLatency != 6 {
		t.Error("Table I latencies wrong")
	}
	if cfg.SI.Enabled {
		t.Error("default must be the baseline")
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplicationsSurface(t *testing.T) {
	apps := Applications()
	if len(apps) != 10 {
		t.Fatalf("Applications = %d, want 10", len(apps))
	}
	names := ApplicationNames()
	for i, a := range apps {
		if names[i] != a.Name {
			t.Errorf("name order mismatch at %d", i)
		}
		got, err := Application(a.Name)
		if err != nil || got.Name != a.Name {
			t.Errorf("Application(%s): %v", a.Name, err)
		}
	}
	if _, err := Application("bogus"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestBuildAndRunMegakernel(t *testing.T) {
	if testing.Short() {
		t.Skip("full app run")
	}
	app, err := Application("MC")
	if err != nil {
		t.Fatal(err)
	}
	app.NumWarps = 16
	app.Iterations = 2
	k, err := BuildMegakernel(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Cycles == 0 || res.Counters.RTTraces == 0 {
		t.Errorf("suspicious run: %+v", res.Counters)
	}
}

func TestMicrobenchmarkSurface(t *testing.T) {
	p := DefaultMicrobenchmark(8)
	if p.DivergenceFactor() != 4 {
		t.Errorf("DivergenceFactor = %d", p.DivergenceFactor())
	}
	p.Iterations = 2
	k, err := BuildMicrobenchmark(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(DefaultConfig(), k)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.MaxLiveSubwarps != 4 {
		t.Errorf("MaxLiveSubwarps = %d, want 4", res.Counters.MaxLiveSubwarps)
	}
}

func TestExperimentsSurface(t *testing.T) {
	all := Experiments()
	if len(all) < 8 {
		t.Fatalf("Experiments = %d, want >= 8", len(all))
	}
	for _, id := range []string{"fig3", "table3", "fig12a", "fig12b", "fig13", "fig14", "fig15", "icache"} {
		if _, ok := ExperimentByID(id); !ok {
			t.Errorf("missing %s", id)
		}
	}
}

func TestAssembleSurface(t *testing.T) {
	prog, err := Assemble("t", "S2R R0, SR0\nIADD R1, R0, 1\nEXIT")
	if err != nil {
		t.Fatal(err)
	}
	if prog.Len() != 3 {
		t.Errorf("Len = %d", prog.Len())
	}
	if !strings.Contains(prog.Disassemble(), "IADD") {
		t.Error("disassembly missing IADD")
	}
	k := &Kernel{Program: prog, NumWarps: 1, WarpsPerCTA: 1, Memory: NewMemory()}
	if _, err := Run(DefaultConfig(), k); err != nil {
		t.Fatal(err)
	}
}

func TestRaytracingSurface(t *testing.T) {
	sc, err := GenerateScene(SceneParams{
		Seed: 7, Triangles: 200, Materials: 4, Clusters: 6, Extent: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	cam := NewCamera(sc.BVH, 16, 16)
	hits := 0
	for px := uint32(0); px < 256; px++ {
		if sc.BVH.Traverse(cam.PrimaryRay(px), 1e-4, InfinityT).Ok {
			hits++
		}
	}
	if hits == 0 {
		t.Error("camera should hit the scene")
	}
	// Direct BVH use.
	bvh := BuildBVH([]Triangle{{V0: V(-1, -1, 5), V1: V(1, -1, 5), V2: V(0, 1, 5), Material: 2}})
	hit := bvh.Traverse(NewRay(V(0, 0, 0), V(0, 0, 1)), 1e-4, InfinityT)
	if !hit.Ok || hit.Material != 2 {
		t.Errorf("hit = %+v", hit)
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := Counters{Cycles: 1100}
	b := Counters{Cycles: 1000}
	if s := Speedup(a, b); math.Abs(s-0.1) > 1e-9 {
		t.Errorf("Speedup = %v", s)
	}
}

// Property: any assembled straight-line integer program produces the
// same architectural result under baseline and SI (SI is timing-only).
func TestQuickSITransparencyOnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("random program sweep")
	}
	f := func(seed uint8, imm1, imm2 int32) bool {
		// Build a small divergent kernel parameterized by the inputs.
		split := int32(seed % 31)
		src := strings.ReplaceAll(strings.ReplaceAll(strings.ReplaceAll(`
			S2R R0, SR0
			S2R R1, SR3
			SHL R2, R1, 7
			ISETP.LT P0, R0, SPLIT
			BSSY B0, join
			@P0 BRA left
			IADD R3, R2, 0x110000
			LDG R4, [R3+0] &wr=sb0
			IMUL R5, R4, IMM1 &req=sb0
			BRA join
		left:
			IADD R3, R2, 0x220000
			LDG R4, [R3+0] &wr=sb1
			IMUL R5, R4, IMM2 &req=sb1
			BRA join
		join:
			BSYNC B0
			SHL R6, R1, 2
			IADD R6, R6, 0x330000
			STG [R6+0], R5
			EXIT`,
			"SPLIT", itoa(split)), "IMM1", itoa(imm1%1000)), "IMM2", itoa(imm2%1000))

		prog, err := Assemble("rand", src)
		if err != nil {
			t.Fatalf("assembly failed: %v\n%s", err, src)
		}
		outputs := func(cfg Config) []uint32 {
			k := &Kernel{Program: prog, NumWarps: 4, WarpsPerCTA: 1, Memory: NewMemory()}
			if _, err := Run(cfg, k); err != nil {
				t.Fatal(err)
			}
			var out []uint32
			for tid := 0; tid < 4*32; tid++ {
				out = append(out, k.Memory.Load(uint64(0x330000+tid*4)))
			}
			return out
		}
		base := outputs(DefaultConfig())
		si := outputs(DefaultConfig().WithSI(true, TriggerHalfStalled))
		for i := range base {
			if base[i] != si[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func itoa(v int32) string { return strconv.Itoa(int(v)) }
